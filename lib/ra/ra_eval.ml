module Tensor = Cortex_tensor.Tensor
module Nonlinear = Cortex_tensor.Nonlinear
module Node = Cortex_ds.Node
module Structure = Cortex_ds.Structure
open Ra

(* Ra exports arithmetic on rexprs; restore integer arithmetic here. *)
let ( - ) = Stdlib.( - )

type t = {
  program : Ra.t;
  structure : Structure.t;
  values : (string, Tensor.t) Hashtbl.t array;  (* per node.id: op name -> value *)
}

let apply_bop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let init_value program ~params st dims =
  match st.st_init with
  | Zero -> Tensor.zeros (Array.of_list dims)
  | Init_param p ->
    ignore program;
    params p

let run program ~params structure =
  Ra.validate program;
  (* Check parameter shapes once. *)
  List.iter
    (fun (name, dims) ->
      let t = params name in
      if Array.to_list t.Tensor.shape <> dims then
        invalid_arg
          (Printf.sprintf "Ra_eval: parameter %s has shape %s, declared %s" name
             (Cortex_tensor.Shape.to_string t.Tensor.shape)
             (String.concat "," (List.map string_of_int dims))))
    program.params;
  let n = Structure.num_nodes structure in
  let values = Array.init n (fun _ -> Hashtbl.create 8) in
  let state_dims st = op_dims (find_op program.rec_ops st.st_op) in
  (* Value a ChildState reference sees for a missing child. *)
  let missing_child_value st =
    init_value program ~params st (state_dims st)
  in
  let rec eval_node (node : Node.t) =
    if Hashtbl.length values.(node.id) = 0 then begin
      Array.iter eval_node node.children;
      let is_leaf = Node.is_leaf node in
      let ops =
        match (is_leaf, program.leaf_ops) with
        | true, Some ops -> ops
        | true, None | false, _ -> program.rec_ops
      in
      List.iter (eval_op node) ops
    end
  and eval_op (node : Node.t) op =
    let dims = Array.of_list (op_dims op) in
    let out =
      Tensor.init dims (fun idx ->
          let env =
            List.mapi (fun i (a, _) -> (a, idx.(i))) op.op_axes
          in
          eval_expr node env None op.op_body)
    in
    Hashtbl.replace values.(node.id) op.op_name out
  and eval_expr (node : Node.t) env current_child e =
    let eval_idx = function
      | IAxis a ->
        (try List.assoc a env
         with Not_found -> failwith ("Ra_eval: unbound axis " ^ a))
      | IConst k -> k
      | IPayload ->
        if node.payload < 0 then
          failwith (Printf.sprintf "Ra_eval: node %d has no payload" node.id)
        else node.payload
    in
    match e with
    | Const v -> v
    | Param (p, idx) -> Tensor.get (params p) (Array.of_list (List.map eval_idx idx))
    | Temp (name, idx) ->
      let t = Hashtbl.find values.(node.id) name in
      Tensor.get t (Array.of_list (List.map eval_idx idx))
    | ChildState (st_name, sel, idx) ->
      let st = state_by_name program st_name in
      let value =
        match sel with
        | Current ->
          (match current_child with
           | Some (c : Node.t) -> Hashtbl.find values.(c.id) st.st_op
           | None -> failwith "Ra_eval: Current child outside ChildSum")
        | Child k ->
          if k < Array.length node.children then
            Hashtbl.find values.((Node.child node k).id) st.st_op
          else missing_child_value st
      in
      Tensor.get value (Array.of_list (List.map eval_idx idx))
    | Binop (op, a, b) ->
      apply_bop op (eval_expr node env current_child a) (eval_expr node env current_child b)
    | Math (k, a) -> Nonlinear.apply k (eval_expr node env current_child a)
    | Sum (ax, extent, body) ->
      let acc = ref 0.0 in
      for i = 0 to extent - 1 do
        acc := !acc +. eval_expr node ((ax, i) :: env) current_child body
      done;
      !acc
    | ChildSum body ->
      Array.fold_left
        (fun acc c -> acc +. eval_expr node env (Some c) body)
        0.0 node.children
  in
  List.iter eval_node structure.Structure.roots;
  { program; structure; values }

let op_value t name (node : Node.t) =
  match Hashtbl.find_opt t.values.(node.id) name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Ra_eval: no value for %s at node %d" name node.id)

let state t st_name node =
  let st = state_by_name t.program st_name in
  op_value t st.st_op node

let root_outputs t =
  List.map
    (fun out ->
      (out, List.map (fun root -> state t out root) t.structure.Structure.roots))
    t.program.outputs
