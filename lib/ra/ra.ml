module Nonlinear = Cortex_tensor.Nonlinear

type bop = Add | Sub | Mul | Div | Min | Max

type child_sel = Child of int | Current

type ridx = IAxis of string | IConst of int | IPayload

type rexpr =
  | Const of float
  | Param of string * ridx list
  | ChildState of string * child_sel * ridx list
  | Temp of string * ridx list
  | Binop of bop * rexpr * rexpr
  | Math of Nonlinear.kind * rexpr
  | Sum of string * int * rexpr
  | ChildSum of rexpr

type op = {
  op_name : string;
  op_axes : (string * int) list;
  op_body : rexpr;
  op_phase : int;
  op_precompute : bool;
}

type init = Zero | Init_param of string

type state = { st_name : string; st_op : string; st_init : init }

type t = {
  name : string;
  kind : Cortex_ds.Structure.kind;
  max_children : int;
  params : (string * int list) list;
  rec_ops : op list;
  leaf_ops : op list option;
  states : state list;
  outputs : string list;
}

let op ?(phase = 0) ?(precompute = false) op_name ~axes op_body =
  { op_name; op_axes = axes; op_body; op_phase = phase; op_precompute = precompute }

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let tanh_ a = Math (Nonlinear.Tanh, a)
let sigmoid_ a = Math (Nonlinear.Sigmoid, a)
let relu_ a = Math (Nonlinear.Relu, a)

exception Invalid_program of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_program s)) fmt

let op_dims o = List.map snd o.op_axes

let find_op ops name =
  match List.find_opt (fun o -> o.op_name = name) ops with
  | Some o -> o
  | None -> fail "no operator named %s" name

let state_by_name t name =
  match List.find_opt (fun s -> s.st_name = name) t.states with
  | Some s -> s
  | None -> fail "no state named %s" name

let num_phases ops = Stdlib.( + ) 1 (List.fold_left (fun m o -> max m o.op_phase) 0 ops)

let rec expr_uses_children e =
  match e with
  | ChildState _ | ChildSum _ -> true
  | Const _ | Param _ | Temp _ -> false
  | Binop (_, a, b) -> expr_uses_children a || expr_uses_children b
  | Math (_, a) -> expr_uses_children a
  | Sum (_, _, b) -> expr_uses_children b

let op_uses_children o = expr_uses_children o.op_body

let rec expr_uses_fixed_child e =
  match e with
  | ChildState (_, Child _, _) -> true
  | ChildState (_, Current, _) | Const _ | Param _ | Temp _ -> false
  | Binop (_, a, b) -> expr_uses_fixed_child a || expr_uses_fixed_child b
  | Math (_, a) | Sum (_, _, a) | ChildSum a -> expr_uses_fixed_child a

let uses_fixed_children t =
  List.exists (fun o -> expr_uses_fixed_child o.op_body) t.rec_ops

(* ---------- validation ---------- *)

let validate_case t ~is_leaf ops =
  (* Unique names and temp ordering. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun o ->
      if Hashtbl.mem seen o.op_name then fail "duplicate operator %s" o.op_name;
      Hashtbl.add seen o.op_name o)
    ops;
  (* Phases dense from 0. *)
  let phases = List.sort_uniq compare (List.map (fun o -> o.op_phase) ops) in
  List.iteri
    (fun i p -> if p <> i then fail "phases are not dense from 0 (found %d)" p)
    phases;
  let param_dims name =
    match List.assoc_opt name t.params with
    | Some dims -> dims
    | None -> fail "unknown parameter %s" name
  in
  let defined_before = Hashtbl.create 16 in
  List.iter
    (fun o ->
      let rec check_expr ~axes ~in_childsum e =
        match e with
        | Const _ -> ()
        | Param (p, idx) ->
          let dims = param_dims p in
          if List.length idx <> List.length dims then
            fail "%s: parameter %s indexed with %d of %d dims" o.op_name p
              (List.length idx) (List.length dims);
          List.iter (check_idx ~axes) idx
        | Temp (name, idx) ->
          (match Hashtbl.find_opt defined_before name with
           | None -> fail "%s: temp %s not defined earlier" o.op_name name
           | Some def ->
             if List.length idx <> List.length def.op_axes then
               fail "%s: temp %s indexed with %d of %d dims" o.op_name name
                 (List.length idx)
                 (List.length def.op_axes));
          List.iter (check_idx ~axes) idx
        | ChildState (st, sel, idx) ->
          if is_leaf then fail "leaf operator %s references children" o.op_name;
          if o.op_precompute then fail "precompute operator %s references children" o.op_name;
          (match List.find_opt (fun s -> s.st_name = st) t.states with
           | None -> fail "%s: unknown state %s" o.op_name st
           | Some _ -> ());
          (match sel with
           | Current ->
             if not in_childsum then fail "%s: Current child outside ChildSum" o.op_name
           | Child k ->
             if k < 0 || k >= t.max_children then
               fail "%s: child %d out of range" o.op_name k);
          List.iter (check_idx ~axes) idx
        | Binop (_, a, b) ->
          check_expr ~axes ~in_childsum a;
          check_expr ~axes ~in_childsum b
        | Math (_, a) -> check_expr ~axes ~in_childsum a
        | Sum (ax, extent, body) ->
          if extent <= 0 then fail "%s: reduction %s has extent %d" o.op_name ax extent;
          if List.mem_assoc ax axes then fail "%s: axis %s shadowed" o.op_name ax;
          check_expr ~axes:((ax, extent) :: axes) ~in_childsum body
        | ChildSum body ->
          if is_leaf then fail "leaf operator %s uses ChildSum" o.op_name;
          if in_childsum then fail "%s: nested ChildSum" o.op_name;
          check_expr ~axes ~in_childsum:true body
      and check_idx ~axes = function
        | IAxis a -> if not (List.mem_assoc a axes) then fail "%s: unbound axis %s" o.op_name a
        | IConst _ | IPayload -> ()
      in
      List.iter
        (fun (a, extent) ->
          if extent <= 0 then fail "%s: axis %s has extent %d" o.op_name a extent)
        o.op_axes;
      check_expr ~axes:o.op_axes ~in_childsum:false o.op_body;
      Hashtbl.add defined_before o.op_name o)
    ops

let validate t =
  if t.max_children < 1 then fail "max_children must be positive";
  (match t.kind with
   | Cortex_ds.Structure.Sequence ->
     if t.max_children <> 1 then fail "sequences have max_children = 1"
   | Cortex_ds.Structure.Tree | Cortex_ds.Structure.Dag -> ());
  let param_seen = Hashtbl.create 16 in
  List.iter
    (fun (p, dims) ->
      if Hashtbl.mem param_seen p then fail "duplicate parameter %s" p;
      Hashtbl.add param_seen p ();
      List.iter (fun d -> if d <= 0 then fail "parameter %s has extent %d" p d) dims)
    t.params;
  validate_case t ~is_leaf:false t.rec_ops;
  (match t.leaf_ops with
   | Some ops -> validate_case t ~is_leaf:true ops
   | None -> ());
  if t.states = [] then fail "a program needs at least one state";
  List.iter
    (fun st ->
      let rec_op = find_op t.rec_ops st.st_op in
      (match t.leaf_ops with
       | Some ops ->
         let leaf_op = find_op ops st.st_op in
         if op_dims leaf_op <> op_dims rec_op then
           fail "state %s has mismatched dims between cases" st.st_name
       | None -> ());
      (match st.st_init with
       | Zero -> ()
       | Init_param p ->
         (match List.assoc_opt p t.params with
          | Some dims when dims = op_dims rec_op -> ()
          | Some _ -> fail "init parameter %s has wrong dims for state %s" p st.st_name
          | None -> fail "unknown init parameter %s" p)))
    t.states;
  List.iter (fun o -> ignore (state_by_name t o)) t.outputs;
  if t.outputs = [] then fail "a program needs at least one output state"

(* ---------- printing ---------- *)

let bop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"

let ridx_to_string = function
  | IAxis a -> a
  | IConst k -> string_of_int k
  | IPayload -> "payload(n)"

let sel_to_string = function Child k -> Printf.sprintf "child%d" k | Current -> "k"

let rec rexpr_to_string e =
  let idx l = String.concat ", " (List.map ridx_to_string l) in
  match e with
  | Const v -> Printf.sprintf "%g" v
  | Param (p, i) -> Printf.sprintf "%s[%s]" p (idx i)
  | ChildState (s, sel, i) -> Printf.sprintf "%s@%s[%s]" s (sel_to_string sel) (idx i)
  | Temp (name, i) -> Printf.sprintf "%s[%s]" name (idx i)
  | Binop ((Min | Max) as o, a, b) ->
    Printf.sprintf "%s(%s, %s)" (bop_name o) (rexpr_to_string a) (rexpr_to_string b)
  | Binop (o, a, b) ->
    Printf.sprintf "(%s %s %s)" (rexpr_to_string a) (bop_name o) (rexpr_to_string b)
  | Math (k, a) -> Printf.sprintf "%s(%s)" (Nonlinear.name k) (rexpr_to_string a)
  | Sum (ax, extent, b) -> Printf.sprintf "sum(%s<%d, %s)" ax extent (rexpr_to_string b)
  | ChildSum b -> Printf.sprintf "childsum(%s)" (rexpr_to_string b)

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "model %s (max_children=%d)\n" t.name t.max_children);
  List.iter
    (fun (p, dims) ->
      Buffer.add_string buf
        (Printf.sprintf "  param %s[%s]\n" p
           (String.concat "," (List.map string_of_int dims))))
    t.params;
  let case label ops =
    Buffer.add_string buf (Printf.sprintf "  %s:\n" label);
    List.iter
      (fun o ->
        let axes =
          String.concat ","
            (List.map (fun (a, e) -> Printf.sprintf "%s<%d" a e) o.op_axes)
        in
        let tags =
          (if o.op_phase > 0 then Printf.sprintf " @phase%d" o.op_phase else "")
          ^ if o.op_precompute then " @precompute" else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "    %s(%s)%s = %s\n" o.op_name axes tags
             (rexpr_to_string o.op_body)))
      ops
  in
  case "recursive case" t.rec_ops;
  (match t.leaf_ops with Some ops -> case "leaf case" ops | None -> ());
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  state %s = %s\n" s.st_name s.st_op))
    t.states;
  Buffer.add_string buf
    (Printf.sprintf "  outputs: %s\n" (String.concat ", " t.outputs));
  Buffer.contents buf
