open Ra
module Nonlinear = Cortex_tensor.Nonlinear

let leaf_substitute (program : Ra.t) e =
  let init_of st_name idx =
    let st = state_by_name program st_name in
    match st.st_init with
    | Zero -> Const 0.0
    | Init_param p -> Param (p, idx)
  in
  let rec go e =
    match e with
    | ChildSum _ -> Const 0.0
    | ChildState (st, Child _, idx) -> init_of st idx
    | ChildState (_, Current, _) ->
      (* Unreachable after ChildSum substitution, but keep it total. *)
      Const 0.0
    | Const _ | Param _ | Temp _ -> e
    | Binop (op, a, b) -> Binop (op, go a, go b)
    | Math (k, a) -> Math (k, go a)
    | Sum (ax, n, b) -> Sum (ax, n, go b)
  in
  go e

let is_zero = function Const 0.0 -> true | _ -> false
let is_one = function Const 1.0 -> true | _ -> false

let rec fold e =
  match e with
  | Const _ | Param _ | ChildState _ | Temp _ -> e
  | Binop (op, a, b) ->
    let a = fold a and b = fold b in
    (match (op, a, b) with
     | Add, Const x, Const y -> Const (x +. y)
     | Sub, Const x, Const y -> Const (x -. y)
     | Mul, Const x, Const y -> Const (x *. y)
     | Div, Const x, Const y when y <> 0.0 -> Const (x /. y)
     | Min, Const x, Const y -> Const (Float.min x y)
     | Max, Const x, Const y -> Const (Float.max x y)
     | Add, z, x when is_zero z -> x
     | Add, x, z when is_zero z -> x
     | Sub, x, z when is_zero z -> x
     | Mul, z, _ when is_zero z -> Const 0.0
     | Mul, _, z when is_zero z -> Const 0.0
     | Mul, o, x when is_one o -> x
     | Mul, x, o when is_one o -> x
     | Div, x, o when is_one o -> x
     | _ -> Binop (op, a, b))
  | Math (k, a) ->
    (match fold a with
     | Const v -> Const (Nonlinear.apply k v)
     | a -> Math (k, a))
  | Sum (ax, n, b) ->
    (match fold b with
     | Const 0.0 -> Const 0.0
     | Const v -> Const (float_of_int n *. v)
     | b -> Sum (ax, n, b))
  | ChildSum b ->
    (match fold b with Const 0.0 -> Const 0.0 | b -> ChildSum b)

let rec node_dependent ~ops e =
  match e with
  | Const _ -> false
  | Param (_, idx) | Temp (_, idx) | ChildState (_, _, idx)
    when List.exists (function IPayload -> true | IAxis _ | IConst _ -> false) idx ->
    true
  | Param _ -> false
  | ChildState _ | ChildSum _ -> true
  | Temp (name, _) ->
    (match List.find_opt (fun o -> o.op_name = name) ops with
     | Some def -> node_dependent ~ops def.op_body
     | None -> true)
  | Binop (_, a, b) -> node_dependent ~ops a || node_dependent ~ops b
  | Math (_, a) | Sum (_, _, a) -> node_dependent ~ops a

let is_const_zero e = is_zero (fold e)

let rec subst_const_temps lookup e =
  match e with
  | Temp (name, _) -> (match lookup name with Some v -> Const v | None -> e)
  | Const _ | Param _ | ChildState _ -> e
  | Binop (op, a, b) -> Binop (op, subst_const_temps lookup a, subst_const_temps lookup b)
  | Math (k, a) -> Math (k, subst_const_temps lookup a)
  | Sum (ax, n, a) -> Sum (ax, n, subst_const_temps lookup a)
  | ChildSum a -> ChildSum (subst_const_temps lookup a)

let const_propagate ops =
  let consts : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (o : op) ->
      let body = fold (subst_const_temps (Hashtbl.find_opt consts) o.op_body) in
      (match body with
       | Const v -> Hashtbl.replace consts o.op_name v
       | _ -> ());
      { o with op_body = body })
    ops
