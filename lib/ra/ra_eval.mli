(** Direct recursive evaluation of RA programs.

    This is the executable semantics of the Recursive API: it walks the
    pointer-linked structure exactly as the user's recursive program
    would (children before parents, memoized for DAGs) and evaluates
    every operator numerically.  The compiled pipeline — linearizer +
    lowered ILIR — must agree with this evaluator bit-for-bit on every
    input; the property tests enforce that. *)

type t
(** Evaluation result: per-node operator values. *)

val run :
  Ra.t ->
  params:(string -> Cortex_tensor.Tensor.t) ->
  Cortex_ds.Structure.t ->
  t
(** Evaluates the program on a structure.  [params] resolves each
    declared parameter name; shapes are checked against the
    declaration.  Raises [Ra.Invalid_program] on malformed programs and
    [Invalid_argument] on shape mismatches. *)

val state : t -> string -> Cortex_ds.Node.t -> Cortex_tensor.Tensor.t
(** Value of a state at a node. *)

val op_value : t -> string -> Cortex_ds.Node.t -> Cortex_tensor.Tensor.t
(** Value of any operator at a node (leaf nodes expose their leaf-case
    operators). *)

val root_outputs : t -> (string * Cortex_tensor.Tensor.t list) list
(** For each output state, the values at the structure's roots. *)
