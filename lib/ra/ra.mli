(** The Recursive API (§3 of the paper).

    A recursive model is a DAG of per-node operators over feature axes.
    Each operator produces, for every node of the input structure, a
    small dense tensor (its [dims]); operator bodies may read model
    parameters, earlier operators of the same node ([Temp]), and the
    recursively computed states of the node's children ([ChildState] /
    [ChildSum]) — never of the node itself (property P.2) and never of a
    sibling's result (property P.3).  All control flow is a function of
    the input structure (property P.1).

    A program has a recursive case and an optional leaf case.  When the
    leaf case is [None] (child-sum style models), leaves evaluate the
    recursive case with an empty child set: [ChildSum] contributes the
    zero tensor and a fixed-child reference ([Child k]) of a missing
    child reads the state's declared initial value (§4.3).  That is
    what makes leaf computations constant-foldable and hoistable when
    the program is specialized.

    Operators carry a [phase]: within one dynamic batch, operators of
    phase [p+1] read, across parallel lanes, values produced in phase
    [p] (e.g. a matrix-vector product over a gated vector), so lowering
    separates phases with a synchronization point.  Most models are
    single-phase; GRU-style cells have two. *)

type bop = Add | Sub | Mul | Div | Min | Max

type child_sel =
  | Child of int  (** fixed child position, e.g. left/right *)
  | Current  (** the iterated child inside [ChildSum] *)

type ridx =
  | IAxis of string  (** an output or reduction axis *)
  | IConst of int
  | IPayload  (** this node's integer payload (e.g. word id) *)

type rexpr =
  | Const of float
  | Param of string * ridx list
  | ChildState of string * child_sel * ridx list
  | Temp of string * ridx list  (** an earlier operator of this node *)
  | Binop of bop * rexpr * rexpr
  | Math of Cortex_tensor.Nonlinear.kind * rexpr
  | Sum of string * int * rexpr  (** reduction axis: name, extent, body *)
  | ChildSum of rexpr  (** sum of the body over this node's children *)

type op = {
  op_name : string;
  op_axes : (string * int) list;  (** output axes: name and extent *)
  op_body : rexpr;
  op_phase : int;
  op_precompute : bool;
      (** operator depends only on parameters and the node payload; it
          is hoisted into an upfront kernel over all nodes at once
          (GRNN-style input matrix multiplications). *)
}

type init =
  | Zero  (** the common zero initial state, special-cased by §4.3 *)
  | Init_param of string  (** a learned initial-state parameter *)

type state = {
  st_name : string;
  st_op : string;  (** operator whose value is published as this state *)
  st_init : init;  (** value a [ChildState] reference sees below a leaf *)
}

type t = {
  name : string;
  kind : Cortex_ds.Structure.kind;
  max_children : int;
  params : (string * int list) list;
  rec_ops : op list;
  leaf_ops : op list option;
  states : state list;
  outputs : string list;  (** states read out at the roots *)
}

val op : ?phase:int -> ?precompute:bool -> string -> axes:(string * int) list -> rexpr -> op

val ( + ) : rexpr -> rexpr -> rexpr
val ( - ) : rexpr -> rexpr -> rexpr
val ( * ) : rexpr -> rexpr -> rexpr
val tanh_ : rexpr -> rexpr
val sigmoid_ : rexpr -> rexpr
val relu_ : rexpr -> rexpr

exception Invalid_program of string

val validate : t -> unit
(** Checks: unique op names; temps reference earlier ops; states name
    existing ops of both cases with equal dims; axis references are
    bound; parameter arities match declared shapes; [Current] appears
    only under [ChildSum]; [Child k] is within [max_children] and only
    used when a leaf case exists; leaf operators reference no children;
    precompute operators reference no children or temps that are not
    themselves precompute; phases are dense from 0.
    Raises [Invalid_program] otherwise. *)

val op_dims : op -> int list
val op_uses_children : op -> bool
val find_op : op list -> string -> op
val state_by_name : t -> string -> state
val num_phases : op list -> int
val uses_fixed_children : t -> bool
val rexpr_to_string : rexpr -> string
val to_string : t -> string
