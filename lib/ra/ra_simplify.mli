(** Constant propagation over RA expressions (§4.3 of the paper).

    Specialization substitutes the recursive case's child references
    with the states' initial values at the leaves; this module then
    folds the constants through, which is what removes the child-sum
    matrix-vector products from the leaf loop nests (the dominant win
    the paper attributes to specialization), and detects operators whose
    leaf value no longer depends on the node at all so the lowerer can
    hoist them out of the per-leaf loop. *)

val leaf_substitute : Ra.t -> Ra.rexpr -> Ra.rexpr
(** Replace [ChildSum] with zero and fixed-child state references with
    the state's initial value ([Zero] or its init parameter). *)

val fold : Ra.rexpr -> Ra.rexpr
(** Algebraic constant folding: [x*0 -> 0], [x+0 -> x], [x*1 -> x],
    [Sum] of a body without the reduction axis -> scaled body, [Sum] of
    zero -> zero, nonlinearities of constants evaluated. *)

val node_dependent : ops:Ra.op list -> Ra.rexpr -> bool
(** True when the expression's value can differ between nodes: it reads
    the payload, a child, or a temp whose defining operator (looked up
    in [ops]) is node-dependent.  Hoisting applies to leaf operators
    that are not node-dependent after substitution and folding. *)

val is_const_zero : Ra.rexpr -> bool

val subst_const_temps : (string -> float option) -> Ra.rexpr -> Ra.rexpr
(** Replace temp references whose defining operator folded to a
    constant. *)

val const_propagate : Ra.op list -> Ra.op list
(** Fold each operator's body, propagating operators that become
    constants into their consumers (in definition order).  This is the
    §4.3 constant propagation that deletes the child-sum matrix-vector
    products from specialized leaf nests. *)
