(** The end-to-end Cortex runtime: compile a recursive model, linearize
    inputs, execute numerically or cost it on a simulated backend.

    This is the layer the examples and the benchmark harness talk to.
    [execute] runs the compiled kernels through the ILIR interpreter
    (real numbers, used at small hidden sizes and in every test);
    [simulate] walks the same compiled kernels with the static cost
    analyzer and prices the counts on a backend model (used at the
    paper's hidden sizes). *)

open Cortex_ilir
module Linearizer = Cortex_linearizer.Linearizer
module M = Cortex_models.Models_common

type compiled = Cortex_lower.Lower.compiled

val compile :
  ?obs:Cortex_obs.Obs.t ->
  ?options:Cortex_lower.Lower.options ->
  Cortex_ra.Ra.t ->
  compiled
(** [obs] profiles the lowering passes on the ["compile"] wall-clock
    track ({!Cortex_lower.Lower.lower}). *)

val options_for :
  ?base:Cortex_lower.Lower.options -> M.t -> Cortex_lower.Lower.options
(** The model's schedule metadata (refactoring publication list,
    block-local unrolling) merged into [base] (default
    [Lower.default]). *)

type execution = {
  exec_compiled : compiled;
  exec_bound : Cortex_lower.Lower.bound;
}

val execute_lin :
  ?preload:(Cortex_lower.Lower.bound -> unit) ->
  compiled ->
  params:(string -> Cortex_tensor.Tensor.t) ->
  Linearizer.t ->
  execution
(** Bind an already-linearized input (a single structure or a serving
    engine's forest) and run the kernels numerically.  [preload] runs
    after parameter binding and before the kernels — the serving
    engine's sessions use it ({!Cortex_lower.Lower.set_state_lin}) to
    seed a conversation's persistent hidden states into the context so
    a delta run over the grown tail continues from them.  One call may
    seed boundary rows for {e several} sessions at once: a packed
    multi-session window ({!Cortex_linearizer.Linearizer.pack_views})
    lays every member's old prefix out in its id space, and the engine
    preloads each member's rows at their packed ids before the single
    launch sequence. *)

val execute :
  compiled ->
  params:(string -> Cortex_tensor.Tensor.t) ->
  Cortex_ds.Structure.t ->
  execution
(** Linearize, bind, run the kernels numerically.  Thin wrapper around
    {!execute_lin}; kept as the convenient one-structure entry point —
    for streams of requests, use [Cortex.Engine] instead. *)

val state :
  execution -> string -> Cortex_ds.Node.t -> Cortex_tensor.Tensor.t

type report = {
  latency : Cortex_backend.Backend.latency;
  cost : Cost.t;
  linearize_us : float;  (** measured wall clock of the real linearizer *)
  device_memory_bytes : float;
      (** peak device footprint: parameters + global tensors + the
          linearizer's arrays *)
  num_nodes : int;
  occupancy : float;
      (** flop-weighted mean lane occupancy on this backend
          ({!Cortex_backend.Backend.mean_occupancy}) — how full the
          machine was where the work was *)
}

val simulate_lin :
  ?lock_free:bool ->
  ?linearize_us:float ->
  compiled ->
  backend:Cortex_backend.Backend.t ->
  Linearizer.t ->
  report
(** Statically cost the compiled kernels against an already-linearized
    input and price them on [backend] — the engine-reusable core of
    {!simulate}.  [linearize_us] (default 0) is recorded verbatim in the
    report; the serving engine passes the wall clock it measured for the
    whole forest. *)

val simulate :
  ?lock_free:bool ->
  compiled ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ds.Structure.t ->
  report
(** Linearize (timed), statically cost the compiled kernels against the
    concrete structure and price them on [backend].  [lock_free]
    selects the faster global-barrier implementation (default false:
    the paper's Cortex uses the lock-based one, §7.2).  Thin wrapper
    around {!simulate_lin}; for streams of requests, use
    [Cortex.Engine]. *)

val total_ms : report -> float
(** Simulated end-to-end inference latency in milliseconds, including
    the measured linearization time (§7.5: linearization runs on the
    host before any tensor computation). *)

val scale_report : report -> float -> report
(** The report with its device-side latency scaled by a factor
    ({!Cortex_backend.Backend.scale_latency}) — the serving engine's
    straggler pricing.  Cost counts, traffic and the host-side
    linearization time are unchanged. *)

(** Register-pressure schedule validity (Appendix D). *)
module Schedule_check : sig
  type verdict = Valid | Invalid of string

  val check :
    backend:Cortex_backend.Backend.t ->
    hidden:int ->
    states:int ->
    Cortex_lower.Lower.options ->
    cost:Cost.t ->
    verdict
  (** Rejects schedules whose register demand exceeds the backend's
      persistence budget: persistence + unrolling is out (live child
      states double), and persistence + loop peeling is out for models
      whose persisted weights already nearly fill the budget (the
      TreeLSTM case the appendix describes). *)

  val peeling : Cortex_lower.Lower.options -> bool
  (** Whether the schedule's variable-bound loops are peeled (we peel by
      default whenever dynamic batching is on). *)

  val check_capacity :
    backend:Cortex_backend.Backend.t ->
    Cortex_lower.Lower.options ->
    cost:Cost.t ->
    verdict
  (** On-chip capacity feasibility of a (possibly plan-scheduled)
      program: persisted weights plus the liveness-planned
      Shared/Register temporary footprint
      ([Cost.onchip_planned_bytes], the {!Cortex_ilir.Mem_plan} arena
      high-water mark over all temporaries, staging buffers added by
      [Lower.apply_plan] included) must fit the backend's
      [onchip_capacity_bytes].  Buffers whose live ranges never
      intersect share arena space, so this admits schedules the
      sum-of-buffers worst case would reject. *)
end

val grid_search :
  candidates:Cortex_lower.Lower.options list ->
  eval:(Cortex_lower.Lower.options -> float) ->
  Cortex_lower.Lower.options * float
(** §6's auto-tuning: exhaustively evaluate schedule candidates and keep
    the fastest. *)
