module Lower = Cortex_lower.Lower
module Backend = Cortex_backend.Backend
module M = Cortex_models.Models_common
module Ra = Cortex_ra.Ra
module Structure = Cortex_ds.Structure
module Ir = Cortex_ilir.Ir
module Schedule = Cortex_ilir.Schedule
module Cost = Cortex_ilir.Cost
module Roofline = Cortex_roofline.Roofline
module Linearizer = Cortex_linearizer.Linearizer
module Stats = Cortex_util.Stats

type candidate = { options : Lower.options; label : string; report : Runtime.report }

let label_of (o : Lower.options) =
  let tag cond name = if cond then [ name ] else [] in
  let tags =
    tag o.Lower.fuse "fuse" @ tag o.Lower.specialize "spec"
    @ tag o.Lower.dynamic_batch "batch"
    @ tag o.Lower.persist "persist" @ tag o.Lower.unroll "unroll"
    @ tag o.Lower.refactor "refactor"
  in
  if tags = [] then "plain" else String.concat "+" tags

let candidates (spec : M.t) =
  let program = spec.M.program in
  let tree_like = program.Ra.kind <> Structure.Dag in
  let bools = [ false; true ] in
  let combos =
    List.concat_map
      (fun fuse ->
        List.concat_map
          (fun specialize ->
            List.concat_map
              (fun persist ->
                List.concat_map
                  (fun unroll ->
                    List.map
                      (fun refactor ->
                        {
                          Lower.default with
                          Lower.fuse;
                          specialize;
                          persist;
                          unroll;
                          refactor;
                        })
                      bools)
                  bools)
              bools)
          bools)
      bools
  in
  combos
  |> List.filter (fun (o : Lower.options) ->
         (* Structural validity: same restrictions the lowerer enforces. *)
         ((not o.Lower.unroll)
          || (tree_like && o.Lower.specialize && o.Lower.fuse && o.Lower.dynamic_batch))
         && ((not o.Lower.refactor)
             || (tree_like && Ra.num_phases program.Ra.rec_ops >= 2))
         && not (o.Lower.unroll && o.Lower.refactor))
  |> List.map (fun o -> (label_of o, Runtime.options_for ~base:o spec))

(* Widest output axis of the state ops stands in for the hidden size
   (what the App. D register check needs). *)
let hidden_of_ra (ra : Ra.t) =
  List.fold_left
    (fun acc (st : Ra.state) ->
      let o = Ra.find_op ra.Ra.rec_ops st.Ra.st_op in
      List.fold_left max acc (Ra.op_dims o))
    1 ra.Ra.states

let tune (spec : M.t) ~backend structure =
  let hidden = hidden_of_ra spec.M.program in
  let states = List.length spec.M.program.Ra.states in
  candidates spec
  |> List.filter_map (fun (label, options) ->
         let compiled = Runtime.compile ~options spec.M.program in
         let report = Runtime.simulate compiled ~backend structure in
         match
           Runtime.Schedule_check.check ~backend ~hidden ~states options
             ~cost:report.Runtime.cost
         with
         | Runtime.Schedule_check.Invalid _ -> None
         | Runtime.Schedule_check.Valid -> Some { options; label; report })
  |> List.sort (fun a b ->
         compare (Runtime.total_ms a.report) (Runtime.total_ms b.report))

let best spec ~backend structure =
  match tune spec ~backend structure with
  | [] -> invalid_arg "Tuner.best: no valid schedule"
  | c :: _ -> c

(* ---------- level 2: loop-schedule plans ---------- *)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* Serial constant-extent loops that can be bound onto the backend's
   vector lanes: reductions and small feature loops the lowerer left
   serial.  Copy-in loops from earlier staging are already vectorized
   and excluded by the Serial test. *)
let bind_targets (prog : Ir.program) =
  List.concat_map
    (fun (k : Ir.kernel) ->
      List.rev
        (Ir.fold_stmt
           ~expr:(fun acc _ -> acc)
           ~stmt:(fun acc s ->
             match s with
             | Ir.For { v; extent = Ir.Int n; kind = Ir.Serial; _ }
               when n >= 2 && n <= 512 ->
               Ir.Var.name v :: acc
             | _ -> acc)
           [] k.Ir.body))
    prog.Ir.kernels

(* Directly nested constant-extent loop pairs: the 2-D tiling sites. *)
let tile_targets (prog : Ir.program) =
  List.concat_map
    (fun (k : Ir.kernel) ->
      List.rev
        (Ir.fold_stmt
           ~expr:(fun acc _ -> acc)
           ~stmt:(fun acc s ->
             match s with
             | Ir.For
                 {
                   v;
                   extent = Ir.Int no;
                   body = Ir.For { v = vi; extent = Ir.Int ni; _ };
                   _;
                 }
               when no >= 8 && ni >= 8 ->
               (Ir.Var.name v, Ir.Var.name vi, no, ni) :: acc
             | _ -> acc)
           [] k.Ir.body))
    prog.Ir.kernels

(* Constant-extent parameter tensors read under a loop, attributed to
   their outermost enclosing loop: the staging candidates, with their
   on-chip footprint in bytes. *)
let stage_targets (prog : Ir.program) =
  let acc = ref [] in
  let add loop (t : Ir.tensor) =
    let bytes =
      List.fold_left
        (fun a e ->
          match (a, e) with
          | Some a, Ir.Int n when n > 0 -> Some (a *. float_of_int n)
          | _ -> None)
        (Some (float_of_int Cost.bytes_per_elem))
        t.Ir.extents
    in
    match bytes with
    | Some b ->
      if not (List.exists (fun (l, n, _) -> l = loop && n = t.Ir.tname) !acc) then
        acc := (loop, t.Ir.tname, b) :: !acc
    | None -> ()
  in
  let visit_expr loop e =
    match loop with
    | None -> ()
    | Some l ->
      Ir.fold_expr
        (fun () e ->
          match e with
          | Ir.Load (t, _) when t.Ir.space = Ir.Param -> add l t
          | _ -> ())
        () e
  in
  let rec go loop s =
    match s with
    | Ir.For { v; extent; body; _ } ->
      visit_expr loop extent;
      let loop = match loop with None -> Some (Ir.Var.name v) | some -> some in
      go loop body
    | Ir.Seq ss -> List.iter (go loop) ss
    | Ir.Let (_, e, body) ->
      visit_expr loop e;
      go loop body
    | Ir.If (c, a, b) ->
      visit_expr loop c;
      go loop a;
      Option.iter (go loop) b
    | Ir.Store (_, idx, v) ->
      List.iter (visit_expr loop) idx;
      visit_expr loop v
    | Ir.Barrier | Ir.Nop -> ()
  in
  List.iter (fun (k : Ir.kernel) -> go None k.Ir.body) prog.Ir.kernels;
  List.rev !acc

(* The loop-parameter lattice for one compiled artifact, most promising
   first (the tuning budget truncates the tail): lane bindings, staged
   parameter regions, power-of-two tile sizes, and their combinations. *)
let loop_plans ?(max_binds = 12) ?(max_stages = 3) ?(stage_cap_bytes = 8.0e6)
    (compiled : Lower.compiled) =
  let prog = compiled.Lower.prog in
  let binds = take max_binds (bind_targets prog) in
  let stages =
    take max_stages
      (List.filter (fun (_, _, b) -> b <= stage_cap_bytes) (stage_targets prog))
  in
  let tiles = take 1 (tile_targets prog) in
  let bind_all =
    List.map (fun l -> Schedule.Bind { loop = l; kind = Ir.Vectorized }) binds
  in
  let stage_of (l, t, _) = Schedule.Stage { loop = l; tensor = t } in
  let tile_plans =
    List.concat_map
      (fun (o, i, no, ni) ->
        List.filter_map
          (fun f ->
            if no mod f = 0 && ni mod f = 0 then
              Some
                [
                  Schedule.Tile
                    { outer = o; inner = i; factor_outer = f; factor_inner = f };
                ]
            else None)
          [ 8; 16 ])
      tiles
  in
  let plans =
    [ [] ]
    @ (if bind_all = [] then [] else [ bind_all ])
    @ (if List.length binds > 1 then
         List.map (fun l -> [ Schedule.Bind { loop = l; kind = Ir.Vectorized } ]) binds
       else [])
    @ List.map (fun s -> bind_all @ [ stage_of s ]) stages
    @ (if List.length stages > 1 then [ bind_all @ List.map stage_of stages ] else [])
    @ List.map (fun s -> [ stage_of s ]) stages
    @ List.map (fun tp -> bind_all @ tp) tile_plans
    @ tile_plans
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let key = Schedule.plan_to_string p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    plans

let tensor_bytes (prog : Ir.program) name =
  let find = List.find_opt (fun (t : Ir.tensor) -> t.Ir.tname = name) in
  match (find prog.Ir.params, find prog.Ir.temporaries) with
  | Some t, _ | None, Some t ->
    List.fold_left
      (fun a e ->
        match (a, e) with
        | Some a, Ir.Int n when n > 0 -> Some (a *. float_of_int n)
        | _ -> None)
      (Some (float_of_int Cost.bytes_per_elem))
      t.Ir.extents
  | None, None -> None

let plan_staged_bytes prog plan =
  List.fold_left
    (fun acc d ->
      match d with
      | Schedule.Stage { tensor; _ } -> (
        match tensor_bytes prog tensor with Some b -> acc +. b | None -> acc)
      | _ -> acc)
    0.0 plan

let feasible ~backend ~hidden ~states options (report : Runtime.report) =
  (match
     Runtime.Schedule_check.check ~backend ~hidden ~states options
       ~cost:report.Runtime.cost
   with
   | Runtime.Schedule_check.Valid -> true
   | Runtime.Schedule_check.Invalid _ -> false)
  &&
  match
    Runtime.Schedule_check.check_capacity ~backend options ~cost:report.Runtime.cost
  with
  | Runtime.Schedule_check.Valid -> true
  | Runtime.Schedule_check.Invalid _ -> false

let total_us (r : Runtime.report) = r.Runtime.latency.Backend.total_us

let tune_loops ?(budget = 16) ?(linearize_us = 0.0) (compiled : Lower.compiled)
    ~backend lin =
  let hidden = hidden_of_ra compiled.Lower.ra in
  let states = List.length compiled.Lower.ra.Ra.states in
  let options = compiled.Lower.options in
  let base = Runtime.simulate_lin ~linearize_us compiled ~backend lin in
  let prog = compiled.Lower.prog in
  let cap = backend.Backend.onchip_capacity_bytes in
  let base_onchip = base.Runtime.cost.Cost.onchip_peak_bytes in
  let plans = List.filter (fun p -> p <> []) (take budget (loop_plans compiled)) in
  let scheduled =
    List.filter_map
      (fun plan ->
        (* static capacity pre-prune: staged bytes only ever add *)
        if base_onchip +. plan_staged_bytes prog plan > cap then None
        else
          match Lower.apply_plan plan compiled with
          | exception Schedule.Schedule_error _ -> None
          | applied ->
            let report = Runtime.simulate_lin ~linearize_us applied ~backend lin in
            if feasible ~backend ~hidden ~states options report then
              Some (plan, report)
            else None)
      plans
  in
  (* The empty plan (the artifact as compiled) is always a candidate;
     stable sort keeps it ahead of plans that merely tie it. *)
  List.stable_sort
    (fun (_, a) (_, b) -> Float.compare (total_us a) (total_us b))
    (([], base) :: scheduled)

(* ---------- two-level search: options lattice x loop plans ---------- *)

type plan_candidate = {
  pc_options : Lower.options;
  pc_label : string;  (** options label, e.g. "fuse+spec+batch+persist" *)
  pc_plan : Schedule.plan;
  pc_report : Runtime.report;
}

let pc_full_label c =
  c.pc_label ^ " | " ^ Schedule.plan_to_string c.pc_plan

let tune2 ?(plan_budget = 16) (spec : M.t) ~backend structure =
  let hidden = hidden_of_ra spec.M.program in
  let states = List.length spec.M.program.Ra.states in
  let lin, linearize_us = Stats.time_us (fun () -> Linearizer.run structure) in
  let eff =
    Float.max backend.Backend.roofline_efficiency backend.Backend.gemm_efficiency
  in
  let best_us = ref infinity in
  let results = ref [] in
  List.iter
    (fun (label, options) ->
      let compiled = Runtime.compile ~options spec.M.program in
      let base = Runtime.simulate_lin ~linearize_us compiled ~backend lin in
      let base_ok = feasible ~backend ~hidden ~states options base in
      if base_ok then begin
        results :=
          { pc_options = options; pc_label = label; pc_plan = []; pc_report = base }
          :: !results;
        best_us := Float.min !best_us (total_us base)
      end;
      (* Roofline prune: plans change neither FLOPs nor barrier/launch
         counts, so no plan of this options point can beat this bound.
         Only sweep when the bound still beats the best found so far. *)
      let bound =
        Roofline.lower_bound_us
          ~flops:(Cost.total_flops base.Runtime.cost)
          ~bytes:0.0
          ~peak_flops:(backend.Backend.peak_flops *. eff)
          ~mem_bw:backend.Backend.mem_bw
        +. base.Runtime.latency.Backend.barrier_us
        +. base.Runtime.latency.Backend.launch_us
      in
      if base_ok && bound < !best_us then
        List.iter
          (fun (plan, report) ->
            if plan <> [] then begin
              results :=
                { pc_options = options; pc_label = label; pc_plan = plan; pc_report = report }
                :: !results;
              best_us := Float.min !best_us (total_us report)
            end)
          (tune_loops ~budget:plan_budget ~linearize_us compiled ~backend lin))
    (candidates spec);
  List.stable_sort
    (fun a b -> Float.compare (total_us a.pc_report) (total_us b.pc_report))
    (List.rev !results)

let best2 ?plan_budget spec ~backend structure =
  match tune2 ?plan_budget spec ~backend structure with
  | [] -> invalid_arg "Tuner.best2: no valid schedule"
  | c :: _ -> c

(* Re-check a (possibly plan-applied) artifact's feasibility from
   scratch — what `cortex tune` prints and CI asserts. *)
let plan_feasible ~backend (compiled : Lower.compiled) (report : Runtime.report) =
  feasible ~backend
    ~hidden:(hidden_of_ra compiled.Lower.ra)
    ~states:(List.length compiled.Lower.ra.Ra.states)
    compiled.Lower.options report
