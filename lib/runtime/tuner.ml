module Lower = Cortex_lower.Lower
module Backend = Cortex_backend.Backend
module M = Cortex_models.Models_common
module Ra = Cortex_ra.Ra
module Structure = Cortex_ds.Structure

type candidate = { options : Lower.options; label : string; report : Runtime.report }

let label_of (o : Lower.options) =
  let tag cond name = if cond then [ name ] else [] in
  let tags =
    tag o.Lower.fuse "fuse" @ tag o.Lower.specialize "spec"
    @ tag o.Lower.dynamic_batch "batch"
    @ tag o.Lower.persist "persist" @ tag o.Lower.unroll "unroll"
    @ tag o.Lower.refactor "refactor"
  in
  if tags = [] then "plain" else String.concat "+" tags

let candidates (spec : M.t) =
  let program = spec.M.program in
  let tree_like = program.Ra.kind <> Structure.Dag in
  let bools = [ false; true ] in
  let combos =
    List.concat_map
      (fun fuse ->
        List.concat_map
          (fun specialize ->
            List.concat_map
              (fun persist ->
                List.concat_map
                  (fun unroll ->
                    List.map
                      (fun refactor ->
                        {
                          Lower.default with
                          Lower.fuse;
                          specialize;
                          persist;
                          unroll;
                          refactor;
                        })
                      bools)
                  bools)
              bools)
          bools)
      bools
  in
  combos
  |> List.filter (fun (o : Lower.options) ->
         (* Structural validity: same restrictions the lowerer enforces. *)
         ((not o.Lower.unroll)
          || (tree_like && o.Lower.specialize && o.Lower.fuse && o.Lower.dynamic_batch))
         && ((not o.Lower.refactor)
             || (tree_like && Ra.num_phases program.Ra.rec_ops >= 2))
         && not (o.Lower.unroll && o.Lower.refactor))
  |> List.map (fun o -> (label_of o, Runtime.options_for ~base:o spec))

let tune (spec : M.t) ~backend structure =
  let hidden =
    (* widest output axis of the state ops stands in for the hidden size *)
    List.fold_left
      (fun acc (st : Ra.state) ->
        let o = Ra.find_op spec.M.program.Ra.rec_ops st.Ra.st_op in
        List.fold_left max acc (Ra.op_dims o))
      1 spec.M.program.Ra.states
  in
  let states = List.length spec.M.program.Ra.states in
  candidates spec
  |> List.filter_map (fun (label, options) ->
         let compiled = Runtime.compile ~options spec.M.program in
         let report = Runtime.simulate compiled ~backend structure in
         match
           Runtime.Schedule_check.check ~backend ~hidden ~states options
             ~cost:report.Runtime.cost
         with
         | Runtime.Schedule_check.Invalid _ -> None
         | Runtime.Schedule_check.Valid -> Some { options; label; report })
  |> List.sort (fun a b ->
         compare (Runtime.total_ms a.report) (Runtime.total_ms b.report))

let best spec ~backend structure =
  match tune spec ~backend structure with
  | [] -> invalid_arg "Tuner.best: no valid schedule"
  | c :: _ -> c
