(** §6-style schedule auto-tuning by grid search.

    The paper's prototype uses manually defined schedules plus grid
    search over schedule parameters; this module enumerates the
    recursion-scheduling lattice for a model — fusion, specialization,
    dynamic batching, persistence, unrolling (with the model's
    block-local flag), recursive refactoring — filters out combinations
    that are invalid for the model's structure kind or rejected by the
    Appendix-D register-pressure check, costs each candidate on the
    target backend, and returns them ranked. *)

type candidate = {
  options : Cortex_lower.Lower.options;
  label : string;  (** e.g. "fuse+spec+persist" *)
  report : Runtime.report;
}

val candidates : Cortex_models.Models_common.t -> (string * Cortex_lower.Lower.options) list
(** The valid schedule lattice for this model (structurally valid; the
    App. D check is applied during {!tune} because it needs the cost). *)

val tune :
  Cortex_models.Models_common.t ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ds.Structure.t ->
  candidate list
(** All valid candidates costed on [backend], fastest first. *)

val best :
  Cortex_models.Models_common.t ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ds.Structure.t ->
  candidate

(** {2 Level 2: loop-schedule parameters}

    The second search level sweeps loop-level schedule parameters —
    lane bindings, on-chip staging per parameter tensor, power-of-two
    tile sizes — as serializable {!Cortex_ilir.Schedule.plan}s applied
    post-lowering via [Lower.apply_plan].  Candidates are pruned by a
    static on-chip-capacity check before they are even applied, and by
    the {!Cortex_roofline.Roofline.lower_bound_us} bound before a whole
    plan sweep starts. *)

val bind_targets : Cortex_ilir.Ir.program -> string list
(** Serial constant-extent loops (canonical names) that are lane-bind
    candidates. *)

val tile_targets : Cortex_ilir.Ir.program -> (string * string * int * int) list
(** Directly nested constant-extent loop pairs
    [(outer, inner, extent_outer, extent_inner)]. *)

val stage_targets : Cortex_ilir.Ir.program -> (string * string * float) list
(** [(outermost loop, parameter tensor, on-chip bytes)] staging
    candidates. *)

val loop_plans :
  ?max_binds:int ->
  ?max_stages:int ->
  ?stage_cap_bytes:float ->
  Cortex_lower.Lower.compiled ->
  Cortex_ilir.Schedule.plan list
(** The plan lattice for one compiled artifact, most promising first
    and starting with the empty plan; a tuning budget truncates the
    tail.  Staging candidates above [stage_cap_bytes] (default 8 MB)
    are dropped up front — they cannot fit any backend's on-chip
    storage next to the persisted weights. *)

val tune_loops :
  ?budget:int ->
  ?linearize_us:float ->
  Cortex_lower.Lower.compiled ->
  backend:Cortex_backend.Backend.t ->
  Cortex_linearizer.Linearizer.t ->
  (Cortex_ilir.Schedule.plan * Runtime.report) list
(** Evaluate up to [budget] (default 16) plans against an
    already-linearized input, keeping only feasible ones (register
    pressure + on-chip capacity), fastest first.  The empty plan (the
    artifact as compiled) is always included and wins ties, so the
    result is never empty — this is what the serving engine's plan
    cache runs on a class miss.  The budget counts candidate plans, not
    wall time, so tuning is deterministic. *)

type plan_candidate = {
  pc_options : Cortex_lower.Lower.options;
  pc_label : string;  (** options label, e.g. "fuse+spec+batch+persist" *)
  pc_plan : Cortex_ilir.Schedule.plan;
  pc_report : Runtime.report;
}

val pc_full_label : plan_candidate -> string
(** ["<options label> | <plan>"]. *)

val tune2 :
  ?plan_budget:int ->
  Cortex_models.Models_common.t ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ds.Structure.t ->
  plan_candidate list
(** Two-level search: every structurally valid options point crossed
    with up to [plan_budget] loop plans, pruned by the App. D register
    check, the on-chip capacity check and the roofline bound; all
    feasible candidates ranked fastest first. *)

val best2 :
  ?plan_budget:int ->
  Cortex_models.Models_common.t ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ds.Structure.t ->
  plan_candidate

val plan_feasible :
  backend:Cortex_backend.Backend.t ->
  Cortex_lower.Lower.compiled ->
  Runtime.report ->
  bool
(** Both feasibility checks — App. D register pressure and on-chip
    capacity — against a (possibly plan-applied) compiled artifact and
    its costed report.  [tune_loops]/[tune2] apply this internally;
    exposed so callers (the CLI, CI) can re-assert a winning plan. *)
