(** §6-style schedule auto-tuning by grid search.

    The paper's prototype uses manually defined schedules plus grid
    search over schedule parameters; this module enumerates the
    recursion-scheduling lattice for a model — fusion, specialization,
    dynamic batching, persistence, unrolling (with the model's
    block-local flag), recursive refactoring — filters out combinations
    that are invalid for the model's structure kind or rejected by the
    Appendix-D register-pressure check, costs each candidate on the
    target backend, and returns them ranked. *)

type candidate = {
  options : Cortex_lower.Lower.options;
  label : string;  (** e.g. "fuse+spec+persist" *)
  report : Runtime.report;
}

val candidates : Cortex_models.Models_common.t -> (string * Cortex_lower.Lower.options) list
(** The valid schedule lattice for this model (structurally valid; the
    App. D check is applied during {!tune} because it needs the cost). *)

val tune :
  Cortex_models.Models_common.t ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ds.Structure.t ->
  candidate list
(** All valid candidates costed on [backend], fastest first. *)

val best :
  Cortex_models.Models_common.t ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ds.Structure.t ->
  candidate
