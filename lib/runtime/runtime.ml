open Cortex_ilir
module Lower = Cortex_lower.Lower
module Linearizer = Cortex_linearizer.Linearizer
module Backend = Cortex_backend.Backend
module Tensor = Cortex_tensor.Tensor
module Stats = Cortex_util.Stats
module M = Cortex_models.Models_common

type compiled = Lower.compiled

let compile ?obs ?options ra = Lower.lower ?obs ?options ra

let options_for ?(base = Lower.default) (spec : M.t) =
  {
    base with
    Lower.refactor_publish =
      (if base.Lower.refactor then spec.M.refactor_publish else []);
    refactor_removes_barrier = spec.M.refactor_removes_barrier;
    block_local_unroll = base.Lower.unroll && spec.M.block_local_unroll;
  }

type execution = { exec_compiled : compiled; exec_bound : Lower.bound }

let execute_lin ?preload compiled ~params lin =
  let bound = Lower.bind compiled lin in
  List.iter
    (fun (name, t) -> Interp.bind_tensor bound.Lower.ctx t (params name))
    compiled.Lower.param_tensors;
  (* Sessions pre-seed persistent hidden states into the fresh context
     (after parameters, before the kernels) so a delta run over a grown
     tail reads the conversation's existing rows instead of zeros. *)
  (match preload with None -> () | Some f -> f bound);
  Interp.run_program bound.Lower.ctx compiled.Lower.prog;
  { exec_compiled = compiled; exec_bound = bound }

let execute compiled ~params structure =
  execute_lin compiled ~params (Linearizer.run structure)

let state e st node = Lower.state_value e.exec_bound e.exec_compiled st node

type report = {
  latency : Backend.latency;
  cost : Cost.t;
  linearize_us : float;
  device_memory_bytes : float;
  num_nodes : int;
  occupancy : float;
}

(* Bytes of the device-resident tensors: parameters, plus every
   Global-space tensor of the program (states and, without fusion,
   materialized temporaries), plus the linearizer's arrays. *)
let device_memory compiled (bound : Lower.bound) =
  let eval_extent e =
    match e with
    | Ir.Int n -> n
    | Ir.UfCall (u, []) -> bound.Lower.uf_resolver u [||]
    | _ -> failwith "Runtime.device_memory: unexpected extent"
  in
  let tensor_bytes (t : Ir.tensor) =
    let elems = List.fold_left (fun acc e -> acc * eval_extent e) 1 t.Ir.extents in
    float_of_int (elems * Cost.bytes_per_elem)
  in
  let prog = compiled.Lower.prog in
  let globals =
    List.filter (fun (t : Ir.tensor) -> t.Ir.space = Ir.Global) prog.Ir.temporaries
  in
  List.fold_left (fun acc t -> acc +. tensor_bytes t) 0.0 prog.Ir.params
  +. List.fold_left (fun acc t -> acc +. tensor_bytes t) 0.0 prog.Ir.outputs
  +. List.fold_left (fun acc t -> acc +. tensor_bytes t) 0.0 globals
  +. float_of_int (Linearizer.memory_bytes bound.Lower.lin)

let simulate_lin ?(lock_free = false) ?(linearize_us = 0.0) compiled ~backend lin =
  let bound = Lower.bind compiled lin in
  let cost =
    Cost.analyze ~uf:bound.Lower.uf_resolver
      ~num_internal_batches:bound.Lower.num_batch_launches compiled.Lower.prog
  in
  let latency =
    Backend.simulate backend ~persist:compiled.Lower.options.Lower.persist ~lock_free cost
  in
  {
    latency;
    cost;
    linearize_us;
    device_memory_bytes = device_memory compiled bound;
    num_nodes = lin.Linearizer.num_nodes;
    occupancy = Backend.mean_occupancy backend cost;
  }

let simulate ?lock_free compiled ~backend structure =
  let linearize_us =
    Stats.min_time_us ~repeats:5 (fun () -> Linearizer.run structure)
  in
  simulate_lin ?lock_free ~linearize_us compiled ~backend (Linearizer.run structure)

let total_ms r = (r.latency.Backend.total_us +. r.linearize_us) /. 1000.0

let scale_report r factor = { r with latency = Backend.scale_latency r.latency factor }

module Schedule_check = struct
  type verdict = Valid | Invalid of string

  let peeling (options : Lower.options) = options.Lower.dynamic_batch

  let check ~backend ~hidden ~states (options : Lower.options) ~(cost : Cost.t) =
    if not options.Lower.persist then Valid
    else begin
      let persisted = Backend.persisted_bytes backend cost in
      if persisted = 0.0 then Valid
      else begin
        (* Registers also hold the live states of the unrolled group
           (child + parent per lane) and the peeled loop bodies roughly
           double the live range of the persisted weights. *)
        let state_bytes =
          float_of_int (states * hidden * Cost.bytes_per_elem) *. backend.Backend.width
        in
        let demand = persisted +. (if options.Lower.unroll then 2.0 *. state_bytes else 0.0) in
        let demand = if peeling options then demand *. 1.25 else demand in
        if options.Lower.unroll && demand > backend.Backend.persist_budget_bytes then
          Invalid "persistence + unrolling exceeds the register budget (App. D)"
        else if
          peeling options && demand > backend.Backend.persist_budget_bytes
        then Invalid "persistence + loop peeling exceeds the register budget (App. D)"
        else Valid
      end
    end

  (* On-chip capacity feasibility: persisted weights plus the
     Shared/Register temporaries (caches, staging buffers,
     accumulators) must fit the backend's on-chip storage.  The
     temporaries are charged at their liveness-planned footprint
     ([Cost.onchip_planned_bytes], the Mem_plan arena high-water mark),
     not the sum-of-buffers worst case: buffers whose live ranges never
     intersect share arena space, so only the planned peak must be
     resident at once.  Planned <= worst always, so the switch only
     admits schedules. *)
  let check_capacity ~backend (options : Lower.options) ~(cost : Cost.t) =
    let persisted =
      if options.Lower.persist then Backend.persisted_bytes backend cost else 0.0
    in
    let demand = persisted +. cost.Cost.onchip_planned_bytes in
    if demand > backend.Backend.onchip_capacity_bytes then
      Invalid
        (Printf.sprintf "on-chip demand %.0f bytes exceeds capacity %.0f bytes"
           demand backend.Backend.onchip_capacity_bytes)
    else Valid
end

let grid_search ~candidates ~eval =
  match candidates with
  | [] -> invalid_arg "Runtime.grid_search: no candidates"
  | first :: rest ->
    List.fold_left
      (fun (best, best_t) cand ->
        let t = eval cand in
        if t < best_t then (cand, t) else (best, best_t))
      (first, eval first) rest
