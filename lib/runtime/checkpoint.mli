(** Parameter checkpoints: a small, stable binary format for model
    parameter tables.

    Models are trained elsewhere (Cortex, like the paper's prototype, is
    an inference compiler); this module persists and restores the
    [(name, tensor)] parameter tables the runtime binds, so weights can
    be shipped with an application.  Format: a magic string, a tensor
    count, then per tensor its name, shape and row-major float64
    payload, all little-endian.  The format is independent of the host's
    OCaml version (no [Marshal]).

    One hardened reader serves both byte sources: files ({!read},
    {!read_manifest}) and in-memory strings ({!of_string},
    {!manifest_of_string} — bundles embed a checkpoint as a section). *)

type t = (string * Cortex_tensor.Tensor.t) list

type manifest = (string * int array) list
(** Parameter names and shapes, without the payloads. *)

exception Corrupt of string

val write : out_channel -> t -> unit

val to_string : t -> string
(** The serialized bytes as a string (what {!write} would emit). *)

val read : in_channel -> t
(** Raises {!Corrupt} on bad magic or truncated data.  Hardened against
    adversarial headers: tensor counts, name lengths and payload sizes
    are bounded against the bytes actually remaining in the channel
    (when it is seekable) {e before} any allocation, and the extent
    product is overflow-checked — a bit-flipped header fails fast with
    {!Corrupt} instead of attempting a huge allocation. *)

val read_manifest : in_channel -> manifest
(** Names and shapes only — payloads are seek-skipped, never copied.
    Same hardening and {!Corrupt} behaviour as {!read}. *)

val of_string : string -> t
(** {!read} from in-memory bytes. *)

val manifest_of_string : string -> manifest
(** {!read_manifest} from in-memory bytes. *)

val save : string -> t -> unit
(** Write to a file path. *)

val load : string -> t
(** Read from a file path. *)

val resolver : t -> string -> Cortex_tensor.Tensor.t
(** Lookup function in the shape model specs expect; raises
    [Invalid_argument] for unknown names. *)

val of_spec :
  Cortex_models.Models_common.t -> seed:int -> t
(** Materialize a model's initializer into a checkpointable table. *)
