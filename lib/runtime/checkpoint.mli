(** Parameter checkpoints: a small, stable binary format for model
    parameter tables.

    Models are trained elsewhere (Cortex, like the paper's prototype, is
    an inference compiler); this module persists and restores the
    [(name, tensor)] parameter tables the runtime binds, so weights can
    be shipped with an application.  Format: a magic string, a tensor
    count, then per tensor its name, shape and row-major float64
    payload, all little-endian.  The format is independent of the host's
    OCaml version (no [Marshal]).

    One hardened reader serves both byte sources: files ({!read},
    {!read_manifest}) and in-memory strings ({!of_string},
    {!manifest_of_string} — bundles embed a checkpoint as a section). *)

type t = (string * Cortex_tensor.Tensor.t) list

type manifest = (string * int array) list
(** Parameter names and shapes, without the payloads. *)

exception Corrupt of string

val write : out_channel -> t -> unit

val to_string : t -> string
(** The serialized bytes as a string (what {!write} would emit). *)

val read : in_channel -> t
(** Raises {!Corrupt} on bad magic or truncated data.  Hardened against
    adversarial headers: tensor counts, name lengths and payload sizes
    are bounded against the bytes actually remaining in the channel
    (when it is seekable) {e before} any allocation, and the extent
    product is overflow-checked — a bit-flipped header fails fast with
    {!Corrupt} instead of attempting a huge allocation. *)

val read_manifest : in_channel -> manifest
(** Names and shapes only — payloads are seek-skipped, never copied.
    Same hardening and {!Corrupt} behaviour as {!read}. *)

val of_string : string -> t
(** {!read} from in-memory bytes. *)

val manifest_of_string : string -> manifest
(** {!read_manifest} from in-memory bytes. *)

val save : string -> t -> unit
(** Write to a file path. *)

val load : string -> t
(** Read from a file path. *)

(** {2 Session-state sections}

    A spilled serving session: the model it belongs to, how many nodes
    of conversation prefix its state rows cover, a content digest of
    that prefix (the engine refuses to graft spilled states onto a
    different conversation), and the per-node hidden states as a plain
    tensor table.  Float64 payloads round-trip bitwise, so an evicted
    conversation restores exactly.  The reader shares the hardened
    [src] walk with the parameter format: truncation, implausible
    lengths, overflow extents and wrong-model payloads all raise
    {!Corrupt} — never [Marshal] failures. *)

type session_state = {
  ss_model : string;  (** [Ra] program name the states were computed under. *)
  ss_nodes : int;  (** Conversation prefix length the states cover. *)
  ss_digest : string;  (** Content digest of that prefix. *)
  ss_states : t;  (** Per-node hidden-state rows. *)
}

val session_to_string : session_state -> string
val write_session : out_channel -> session_state -> unit

val session_of_string : ?expect_model:string -> string -> session_state
(** Parse a session section from in-memory bytes.  With [expect_model],
    a payload written for a different model raises {!Corrupt} before
    any tensor is materialized. *)

val read_session : ?expect_model:string -> in_channel -> session_state
(** {!session_of_string} over a channel. *)

val save_session : string -> session_state -> unit
(** Write a session section to a file path. *)

val load_session : ?expect_model:string -> string -> session_state
(** Read a session section from a file path. *)

val resolver : t -> string -> Cortex_tensor.Tensor.t
(** Lookup function in the shape model specs expect; raises
    [Invalid_argument] for unknown names. *)

val of_spec :
  Cortex_models.Models_common.t -> seed:int -> t
(** Materialize a model's initializer into a checkpointable table. *)
