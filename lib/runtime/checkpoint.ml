module Tensor = Cortex_tensor.Tensor
module M = Cortex_models.Models_common

type t = (string * Tensor.t) list
type manifest = (string * int array) list

exception Corrupt of string

let magic = "CORTEXP1"

(* ---------- writing ---------- *)

let buf_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let buf_f64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  Buffer.add_bytes buf b

let add_to_buffer buf (table : t) =
  Buffer.add_string buf magic;
  buf_i64 buf (List.length table);
  List.iter
    (fun (name, tensor) ->
      buf_i64 buf (String.length name);
      Buffer.add_string buf name;
      let shape = (tensor : Tensor.t).Tensor.shape in
      buf_i64 buf (Array.length shape);
      Array.iter (buf_i64 buf) shape;
      for i = 0 to Tensor.numel tensor - 1 do
        buf_f64 buf (Tensor.get_flat tensor i)
      done)
    table

let to_string table =
  let buf = Buffer.create 4096 in
  add_to_buffer buf table;
  Buffer.contents buf

let write oc (table : t) =
  let buf = Buffer.create 4096 in
  add_to_buffer buf table;
  Buffer.output_buffer oc buf

(* ---------- reading ---------- *)

(* One reader over two byte sources (a channel and an in-memory string
   — bundles embed checkpoints as a section).  [src_remaining] is the
   hardening hook: every count read from the header is bounded against
   the bytes actually left before any allocation, so a bit-flipped
   count or extent fails fast with {!Corrupt} instead of driving a
   gigabyte [Tensor.zeros] or a 10^6-iteration loop over a 100-byte
   file.  A non-seekable channel reports [None] and falls back to the
   static caps plus [read_exactly]'s truncation check. *)
type src = {
  src_read : int -> Bytes.t;
  src_remaining : unit -> int option;
  src_skip : int -> unit;
}

let src_of_channel ic =
  let read n =
    let b = Bytes.create n in
    (try really_input ic b 0 n
     with End_of_file -> raise (Corrupt "truncated checkpoint"));
    b
  in
  {
    src_read = read;
    src_remaining =
      (fun () -> try Some (in_channel_length ic - pos_in ic) with Sys_error _ -> None);
    src_skip =
      (fun n ->
        try seek_in ic (pos_in ic + n)
        with Sys_error _ -> ignore (read n));
  }

let src_of_string s =
  let pos = ref 0 in
  let need n =
    if n < 0 || !pos + n > String.length s then raise (Corrupt "truncated checkpoint")
  in
  {
    src_read =
      (fun n ->
        need n;
        let b = Bytes.of_string (String.sub s !pos n) in
        pos := !pos + n;
        b);
    src_remaining = (fun () -> Some (String.length s - !pos));
    src_skip =
      (fun n ->
        need n;
        pos := !pos + n);
  }

let read_i64 src = Int64.to_int (Bytes.get_int64_le (src.src_read 8) 0)
let read_f64 src = Int64.float_of_bits (Bytes.get_int64_le (src.src_read 8) 0)

let check_remaining src ~need what =
  match src.src_remaining () with
  | Some left when need > left ->
    raise
      (Corrupt
         (Printf.sprintf "%s: %d bytes claimed, %d left in the file" what need left))
  | _ -> ()

(* The shared walk.  [payload] decides whether the float data is
   materialized ([read]) or skipped in place ([read_manifest] — names
   and shapes only, no copy of the tensor payloads). *)
let parse ~payload src =
  let m = Bytes.to_string (src.src_read (String.length magic)) in
  if m <> magic then raise (Corrupt ("bad magic " ^ m));
  let count = read_i64 src in
  if count < 0 || count > 1_000_000 then raise (Corrupt "implausible tensor count");
  (* Each tensor needs at least name_len + rank + one payload word. *)
  check_remaining src ~need:(count * 24) "tensor count";
  List.init count (fun _ ->
      let name_len = read_i64 src in
      if name_len < 0 || name_len > 4096 then raise (Corrupt "implausible name length");
      check_remaining src ~need:name_len "name length";
      let name = Bytes.to_string (src.src_read name_len) in
      let rank = read_i64 src in
      if rank < 0 || rank > 8 then raise (Corrupt "implausible rank");
      let shape = Array.init rank (fun _ -> read_i64 src) in
      Array.iter
        (fun d -> if d <= 0 || d > 100_000_000 then raise (Corrupt "bad extent"))
        shape;
      let numel =
        Array.fold_left
          (fun acc d ->
            if acc > max_int / d then raise (Corrupt "extent product overflows");
            acc * d)
          1 shape
      in
      check_remaining src ~need:(numel * 8) "tensor payload";
      if payload then begin
        let tensor = Tensor.zeros shape in
        for i = 0 to numel - 1 do
          Tensor.set_flat tensor i (read_f64 src)
        done;
        (name, shape, Some tensor)
      end
      else begin
        src.src_skip (numel * 8);
        (name, shape, None)
      end)

let table_of_parse entries =
  List.map
    (fun (name, _, tensor) ->
      match tensor with
      | Some t -> (name, t)
      | None -> raise (Corrupt "missing payload"))
    entries

let manifest_of_parse entries = List.map (fun (name, shape, _) -> (name, shape)) entries

let read ic = table_of_parse (parse ~payload:true (src_of_channel ic))
let read_manifest ic = manifest_of_parse (parse ~payload:false (src_of_channel ic))
let of_string s = table_of_parse (parse ~payload:true (src_of_string s))

let manifest_of_string s =
  manifest_of_parse (parse ~payload:false (src_of_string s))

let save path table =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc table)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

(* ---------- session-state sections ---------- *)

(* A spilled serving session: which model and conversation prefix the
   state rows belong to, then a plain tensor table (the per-node hidden
   states, names encoding (state, node)).  Same byte discipline as the
   parameter format — counts and lengths little-endian i64, payloads
   float64 bits — so restore is bitwise exact, and the same hardened
   [src] walk, so a truncated or bit-flipped spill file fails with
   {!Corrupt}, never a [Marshal] or allocation failure. *)

let session_magic = "CORTEXS1"

type session_state = {
  ss_model : string;
  ss_nodes : int;
  ss_digest : string;
  ss_states : t;
}

let add_session_to_buffer buf ss =
  Buffer.add_string buf session_magic;
  buf_i64 buf (String.length ss.ss_model);
  Buffer.add_string buf ss.ss_model;
  buf_i64 buf ss.ss_nodes;
  buf_i64 buf (String.length ss.ss_digest);
  Buffer.add_string buf ss.ss_digest;
  add_to_buffer buf ss.ss_states

let session_to_string ss =
  let buf = Buffer.create 4096 in
  add_session_to_buffer buf ss;
  Buffer.contents buf

let write_session oc ss =
  let buf = Buffer.create 4096 in
  add_session_to_buffer buf ss;
  Buffer.output_buffer oc buf

let read_string_field src ~what =
  let len = read_i64 src in
  if len < 0 || len > 4096 then
    raise (Corrupt (Printf.sprintf "implausible %s length" what));
  check_remaining src ~need:len (what ^ " length");
  Bytes.to_string (src.src_read len)

let parse_session ?expect_model src =
  let m = Bytes.to_string (src.src_read (String.length session_magic)) in
  if m <> session_magic then raise (Corrupt ("bad session magic " ^ m));
  let model = read_string_field src ~what:"model name" in
  (match expect_model with
  | Some want when want <> model ->
    raise
      (Corrupt
         (Printf.sprintf "session checkpoint is for model %S, engine serves %S" model
            want))
  | _ -> ());
  let nodes = read_i64 src in
  if nodes < 0 || nodes > 1_000_000_000 then
    raise (Corrupt "implausible session node count");
  let digest = read_string_field src ~what:"digest" in
  let states = table_of_parse (parse ~payload:true src) in
  { ss_model = model; ss_nodes = nodes; ss_digest = digest; ss_states = states }

let session_of_string ?expect_model s = parse_session ?expect_model (src_of_string s)
let read_session ?expect_model ic = parse_session ?expect_model (src_of_channel ic)

let save_session path ss =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_session oc ss)

let load_session ?expect_model path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_session ?expect_model ic)

let resolver table name =
  match List.assoc_opt name table with
  | Some t -> t
  | None -> invalid_arg ("Checkpoint.resolver: unknown parameter " ^ name)

let of_spec (spec : M.t) ~seed =
  let f = spec.M.init_params (Cortex_util.Rng.create seed) in
  List.map (fun (name, _) -> (name, f name)) spec.M.program.Cortex_ra.Ra.params
