module Tensor = Cortex_tensor.Tensor
module M = Cortex_models.Models_common

type t = (string * Tensor.t) list

exception Corrupt of string

let magic = "CORTEXP1"

let write_i64 oc v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  output_bytes oc b

let write_f64 oc v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  output_bytes oc b

let read_exactly ic n =
  let b = Bytes.create n in
  (try really_input ic b 0 n with End_of_file -> raise (Corrupt "truncated checkpoint"));
  b

let read_i64 ic = Int64.to_int (Bytes.get_int64_le (read_exactly ic 8) 0)
let read_f64 ic = Int64.float_of_bits (Bytes.get_int64_le (read_exactly ic 8) 0)

let write oc (table : t) =
  output_string oc magic;
  write_i64 oc (List.length table);
  List.iter
    (fun (name, tensor) ->
      write_i64 oc (String.length name);
      output_string oc name;
      let shape = (tensor : Tensor.t).Tensor.shape in
      write_i64 oc (Array.length shape);
      Array.iter (write_i64 oc) shape;
      for i = 0 to Tensor.numel tensor - 1 do
        write_f64 oc (Tensor.get_flat tensor i)
      done)
    table

(* Bytes left in the channel, when it is seekable (a pipe or socket is
   not — there we fall back to the static caps and let [read_exactly]
   catch the truncation).  Every count read from the header is bounded
   against this before any allocation: a bit-flipped count or extent
   must not drive a gigabyte [Tensor.zeros] or a 10^6-iteration loop
   over a 100-byte file. *)
let remaining ic =
  try Some (in_channel_length ic - pos_in ic) with Sys_error _ -> None

let check_remaining ic ~need what =
  match remaining ic with
  | Some left when need > left ->
    raise
      (Corrupt
         (Printf.sprintf "%s: %d bytes claimed, %d left in the file" what need left))
  | _ -> ()

let read ic =
  let m = Bytes.to_string (read_exactly ic (String.length magic)) in
  if m <> magic then raise (Corrupt ("bad magic " ^ m));
  let count = read_i64 ic in
  if count < 0 || count > 1_000_000 then raise (Corrupt "implausible tensor count");
  (* Each tensor needs at least name_len + rank + one payload word. *)
  check_remaining ic ~need:(count * 24) "tensor count";
  List.init count (fun _ ->
      let name_len = read_i64 ic in
      if name_len < 0 || name_len > 4096 then raise (Corrupt "implausible name length");
      check_remaining ic ~need:name_len "name length";
      let name = Bytes.to_string (read_exactly ic name_len) in
      let rank = read_i64 ic in
      if rank < 0 || rank > 8 then raise (Corrupt "implausible rank");
      let shape = Array.init rank (fun _ -> read_i64 ic) in
      Array.iter (fun d -> if d <= 0 || d > 100_000_000 then raise (Corrupt "bad extent")) shape;
      let numel =
        Array.fold_left
          (fun acc d ->
            if acc > max_int / d then raise (Corrupt "extent product overflows");
            acc * d)
          1 shape
      in
      check_remaining ic ~need:(numel * 8) "tensor payload";
      let tensor = Tensor.zeros shape in
      for i = 0 to numel - 1 do
        Tensor.set_flat tensor i (read_f64 ic)
      done;
      (name, tensor))

let save path table =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc table)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

let resolver table name =
  match List.assoc_opt name table with
  | Some t -> t
  | None -> invalid_arg ("Checkpoint.resolver: unknown parameter " ^ name)

let of_spec (spec : M.t) ~seed =
  let f = spec.M.init_params (Cortex_util.Rng.create seed) in
  List.map (fun (name, _) -> (name, f name)) spec.M.program.Cortex_ra.Ra.params
