open Cortex_ilir
open Cortex_ra
open Ra

(* [open Ra] brings rexpr-building operators into scope; restore integer
   arithmetic for the compiler's own bookkeeping. *)
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let ( * ) = Stdlib.( * )

module Linearizer = Cortex_linearizer.Linearizer
module Unrolling = Cortex_linearizer.Unrolling
module Tensor = Cortex_tensor.Tensor
module Obs = Cortex_obs.Obs

exception Lowering_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lowering_error s)) fmt

type options = {
  dynamic_batch : bool;
  specialize : bool;
  fuse : bool;
  persist : bool;
  unroll : bool;
  block_local_unroll : bool;
  refactor : bool;
  refactor_publish : string list;
  refactor_removes_barrier : bool;
  barrier_mode : Barrier.mode;
}

let default =
  {
    dynamic_batch = true;
    specialize = true;
    fuse = true;
    persist = true;
    unroll = false;
    block_local_unroll = false;
    refactor = false;
    refactor_publish = [];
    refactor_removes_barrier = true;
    barrier_mode = Barrier.Carrier;
  }

let baseline =
  { default with specialize = false; fuse = false; persist = false }

(* Canonical textual form for options, round-tripping through bundle
   manifests and engine config files.  Comma-joined tokens: a flag name
   present means the boolean is on; [publish=a|b] carries the
   refactoring publication list; [keep_barrier] and
   [barrier=conservative] mark the non-default barrier settings.  The
   empty token list (printed ["none"]) is all-off; [default] names
   {!default}. *)
let options_to_string o =
  if o = default then "default"
  else begin
    let toks = ref [] in
    let add tok = toks := tok :: !toks in
    if o.dynamic_batch then add "dynamic_batch";
    if o.specialize then add "specialize";
    if o.fuse then add "fuse";
    if o.persist then add "persist";
    if o.unroll then add "unroll";
    if o.block_local_unroll then add "block_local_unroll";
    if o.refactor then add "refactor";
    if o.refactor_publish <> [] then
      add ("publish=" ^ String.concat "|" o.refactor_publish);
    if not o.refactor_removes_barrier then add "keep_barrier";
    if o.barrier_mode = Barrier.Conservative then add "barrier=conservative";
    match List.rev !toks with [] -> "none" | toks -> String.concat "," toks
  end

let options_of_string s =
  let s = String.trim s in
  if s = "default" then Some default
  else if s = "none" || s = "" then
    Some
      {
        dynamic_batch = false;
        specialize = false;
        fuse = false;
        persist = false;
        unroll = false;
        block_local_unroll = false;
        refactor = false;
        refactor_publish = [];
        refactor_removes_barrier = true;
        barrier_mode = Barrier.Carrier;
      }
  else begin
    let o =
      ref
        {
          dynamic_batch = false;
          specialize = false;
          fuse = false;
          persist = false;
          unroll = false;
          block_local_unroll = false;
          refactor = false;
          refactor_publish = [];
          refactor_removes_barrier = true;
          barrier_mode = Barrier.Carrier;
        }
    in
    let ok = ref true in
    List.iter
      (fun tok ->
        match String.trim tok with
        | "" -> ()
        | "dynamic_batch" -> o := { !o with dynamic_batch = true }
        | "specialize" -> o := { !o with specialize = true }
        | "fuse" -> o := { !o with fuse = true }
        | "persist" -> o := { !o with persist = true }
        | "unroll" -> o := { !o with unroll = true }
        | "block_local_unroll" -> o := { !o with block_local_unroll = true }
        | "refactor" -> o := { !o with refactor = true }
        | "keep_barrier" -> o := { !o with refactor_removes_barrier = false }
        | "barrier=conservative" -> o := { !o with barrier_mode = Barrier.Conservative }
        | "barrier=carrier" -> o := { !o with barrier_mode = Barrier.Carrier }
        | tok when String.length tok > 8 && String.sub tok 0 8 = "publish=" ->
          let names = String.sub tok 8 (String.length tok - 8) in
          o :=
            {
              !o with
              refactor_publish =
                String.split_on_char '|' names |> List.filter (fun n -> n <> "");
            }
        | _ -> ok := false)
      (String.split_on_char ',' s);
    if !ok then Some !o else None
  end

type ufs = {
  u_num_nodes : Ir.Uf.t;
  u_num_leaves : Ir.Uf.t;
  u_leaf_begin : Ir.Uf.t;
  u_num_internal : Ir.Uf.t;
  u_num_batches : Ir.Uf.t;
  u_batch_begin : Ir.Uf.t;
  u_batch_len : Ir.Uf.t;
  u_max_batch_len : Ir.Uf.t;
  u_child : Ir.Uf.t;
  u_num_children : Ir.Uf.t;
  u_payload : Ir.Uf.t;
  u_order : Ir.Uf.t;
  u_sched_node : Ir.Uf.t;
  u_role : Ir.Uf.t;
  u_needs_sync : Ir.Uf.t;
}

type compiled = {
  ra : Ra.t;
  options : options;
  prog : Ir.program;
  ufs : ufs;
  state_tensors : (string * Ir.tensor) list;
  param_tensors : (string * Ir.tensor) list;
  aliases : (Ir.tensor * Ir.tensor) list;
  phases : int;
}

(* ---------- compile-time state ---------- *)

type temp_index = By_pos | By_node | Hoisted

type temp_info = { ti_tensor : Ir.tensor; ti_index : temp_index }

type cstate = {
  ra : Ra.t;
  opts : options;
  ufs : ufs;
  d_node : Ir.Dim.t;
  d_pos : Ir.Dim.t;
  d_child : Ir.Dim.t;
  d_feat : Ir.Dim.t;
  params : (string, Ir.tensor) Hashtbl.t;
  states : (string, Ir.tensor) Hashtbl.t;  (* state name -> global tensor *)
  state_mirrors : (string, Ir.tensor) Hashtbl.t;  (* on-chip mirror under unrolling *)
  caches : (string, Ir.tensor) Hashtbl.t;  (* state name -> child cache tensor *)
  mutable temporaries : Ir.tensor list;
  mutable fresh : int;
}

let uf0 name = Ir.Uf.fresh name ~arity:0
let uf1 name = Ir.Uf.fresh name ~arity:1

let make_ufs () =
  {
    u_num_nodes = uf0 "num_nodes";
    u_num_leaves = uf0 "num_leaves";
    u_leaf_begin = uf0 "leaf_begin";
    u_num_internal = uf0 "num_internal";
    u_num_batches = uf0 "num_batches";
    u_batch_begin = uf1 "batch_begin";
    u_batch_len = uf1 "batch_len";
    u_max_batch_len = uf0 "max_batch_len";
    u_child = Ir.Uf.fresh "child" ~arity:2;
    u_num_children = uf1 "num_children";
    u_payload = uf1 "payload";
    u_order = uf1 "order";
    u_sched_node = uf1 "sched_node";
    u_role = Ir.Uf.fresh "batch_role" ~arity:1 ~range:(0, 1);
    u_needs_sync = Ir.Uf.fresh "needs_sync" ~arity:1 ~range:(0, 1);
  }

let nullary u = Ir.UfCall (u, [])

(* Extent of the position dimension of temporaries.  Fused kernels use
   the dense batch-position layout of Â§5.1 (one slot per node live at
   once: the widest batch, or a single slot when execution is
   serialized); unfused kernels materialize temporaries per node in
   global memory, so the position index is the node id itself. *)
let pos_extent c =
  if c.opts.fuse then nullary c.ufs.u_max_batch_len else nullary c.ufs.u_num_nodes

let record_temp c t =
  c.temporaries <- t :: c.temporaries;
  t

let fresh_name c base =
  c.fresh <- c.fresh + 1;
  Printf.sprintf "%s_%d" base c.fresh

(* ---------- expression lowering ---------- *)

type ectx = {
  c : cstate;
  axes : (string * Ir.Var.t * int) list;  (* axis name, loop var, extent *)
  node : Ir.expr;
  pos : Ir.expr;
  pos_ext : Ir.expr;  (* extent of the position dimension of temps *)
  temps : (string, temp_info) Hashtbl.t;
  current_child : Ir.expr option;
  nests : Ir.stmt list ref;
  in_reduction : bool;
  op_name : string;
  stages : (string, Ir.tensor) Hashtbl.t;
      (* §A.3 caches for parameters gathered by the node payload *)
}

let bop_to_ir = function
  | Ra.Add -> Ir.Add
  | Ra.Sub -> Ir.Sub
  | Ra.Mul -> Ir.Mul
  | Ra.Div -> Ir.Div
  | Ra.Min -> Ir.Min
  | Ra.Max -> Ir.Max

let lower_idx ectx = function
  | IAxis a ->
    (match List.find_opt (fun (n, _, _) -> n = a) ectx.axes with
     | Some (_, v, _) -> Ir.Var v
     | None -> fail "unbound axis %s in %s" a ectx.op_name)
  | IConst k -> Ir.Int k
  | IPayload -> Ir.UfCall (ectx.c.ufs.u_payload, [ ectx.node ])

let init_expr c st idx_exprs =
  let st = state_by_name c.ra st in
  match st.st_init with
  | Zero -> Ir.Flt 0.0
  | Init_param p -> Ir.Load (Hashtbl.find c.params p, idx_exprs)

let temp_load ectx info idx_exprs =
  match info.ti_index with
  | By_pos -> Ir.Load (info.ti_tensor, ectx.pos :: idx_exprs)
  | By_node -> Ir.Load (info.ti_tensor, ectx.node :: idx_exprs)
  | Hoisted -> Ir.Load (info.ti_tensor, idx_exprs)

(* Loops over the op's output axes with fresh variables; [f] receives
   the fresh vars in axis order and produces the innermost statement. *)
let axis_loops ectx ~tag f =
  let fresh_axes =
    List.map
      (fun (a, _, extent) ->
        (a, Ir.Var.fresh (Printf.sprintf "%s_%s%s" ectx.op_name a tag), extent))
      ectx.axes
  in
  let inner = f (List.map (fun (_, v, _) -> Ir.Var v) fresh_axes) fresh_axes in
  List.fold_right
    (fun (_, v, extent) body ->
      Ir.For { v; extent = Ir.Int extent; kind = Ir.Vectorized; dim = Some ectx.c.d_feat; body })
    fresh_axes inner

let rec lower_rexpr ectx (e : rexpr) : Ir.expr =
  match e with
  | Const v -> Ir.Flt v
  | Param (p, idx) when ectx.in_reduction && List.mem IPayload idx ->
    (* A payload-gathered parameter read inside a reduction would touch
       the row once per reduction step; stage the row on-chip first
       (§A.3: caching tensors indexed by non-affine expressions). *)
    let stage = payload_stage ectx p idx in
    let rest = List.filter (fun i -> i <> IPayload) idx in
    Ir.Load (stage, ectx.pos :: List.map (lower_idx ectx) rest)
  | Param (p, idx) ->
    Ir.Load (Hashtbl.find ectx.c.params p, List.map (lower_idx ectx) idx)
  | Temp (name, idx) ->
    (match Hashtbl.find_opt ectx.temps name with
     | Some info -> temp_load ectx info (List.map (lower_idx ectx) idx)
     | None -> fail "temp %s not lowered before use in %s" name ectx.op_name)
  | ChildState (st, sel, idx) ->
    let cache =
      match Hashtbl.find_opt ectx.c.caches st with
      | Some t -> t
      | None -> fail "state %s read but no cache was created (%s)" st ectx.op_name
    in
    let k =
      match sel with
      | Child k -> Ir.Int k
      | Current ->
        (match ectx.current_child with
         | Some k -> k
         | None -> fail "Current child outside ChildSum in %s" ectx.op_name)
    in
    Ir.Load (cache, k :: ectx.pos :: List.map (lower_idx ectx) idx)
  | Binop (op, a, b) -> Ir.Binop (bop_to_ir op, lower_rexpr ectx a, lower_rexpr ectx b)
  | Math (k, a) -> Ir.Math (k, lower_rexpr ectx a)
  | Sum (ax, extent, body) ->
    if ectx.in_reduction then
      fail "nested reductions in %s: introduce an explicit operator" ectx.op_name;
    lower_sum ectx ax extent body
  | ChildSum body ->
    if ectx.in_reduction then
      fail "nested reductions in %s: introduce an explicit operator" ectx.op_name;
    lower_childsum ectx body

and payload_stage ectx p idx =
  match Hashtbl.find_opt ectx.stages p with
  | Some t -> t
  | None ->
    let c = ectx.c in
    let param_t = Hashtbl.find c.params p in
    (* Fresh loop vars for the non-payload dimensions, with the
       parameter's declared extents. *)
    let slots =
      List.mapi
        (fun k i ->
          match i with
          | IPayload -> None
          | IAxis _ | IConst _ ->
            Some (Ir.Var.fresh (Printf.sprintf "%s_%s_s%d" ectx.op_name p k),
                  List.nth param_t.Ir.extents k))
        idx
    in
    let vars = List.filter_map Fun.id slots in
    let stage =
      record_temp c
        (Ir.tensor ~space:Ir.Shared
           (fresh_name c ("stage_" ^ p))
           (c.d_pos :: List.map (fun _ -> c.d_feat) vars)
           (ectx.pos_ext :: List.map snd vars))
    in
    let src_idx =
      List.map
        (function
          | None -> Ir.UfCall (c.ufs.u_payload, [ ectx.node ])
          | Some (v, _) -> Ir.Var v)
        slots
    in
    let fill =
      List.fold_right
        (fun (v, extent) body ->
          Ir.For { v; extent; kind = Ir.Vectorized; dim = Some c.d_feat; body })
        vars
        (Ir.Store
           ( stage,
             ectx.pos :: List.map (fun (v, _) -> Ir.Var v) vars,
             Ir.Load (param_t, src_idx) ))
    in
    ectx.nests := !(ectx.nests) @ [ fill ];
    Hashtbl.replace ectx.stages p stage;
    stage

and reduction_temp ectx base =
  let c = ectx.c in
  let dims = c.d_pos :: List.map (fun _ -> c.d_feat) ectx.axes in
  let extents = ectx.pos_ext :: List.map (fun (_, _, e) -> Ir.Int e) ectx.axes in
  (* Reduction accumulators live in registers regardless of fusion. *)
  record_temp c (Ir.tensor ~space:Ir.Register (fresh_name c base) dims extents)

and lower_sum ectx ax extent body =
  let red = reduction_temp ectx (Printf.sprintf "r_%s" ectx.op_name) in
  let init =
    axis_loops ectx ~tag:"_z" (fun vars _ -> Ir.Store (red, ectx.pos :: vars, Ir.Flt 0.0))
  in
  let accum =
    axis_loops ectx ~tag:"_a" (fun vars fresh_axes ->
        let rv = Ir.Var.fresh (Printf.sprintf "%s_%s" ectx.op_name ax) in
        let body_ectx =
          {
            ectx with
            axes = (ax, rv, extent) :: fresh_axes;
            in_reduction = true;
          }
        in
        let body' = lower_rexpr body_ectx body in
        Ir.For
          {
            v = rv;
            extent = Ir.Int extent;
            kind = Ir.Serial;
            dim = Some ectx.c.d_feat;
            body =
              Ir.Store
                ( red,
                  ectx.pos :: vars,
                  Ir.Binop (Ir.Add, Ir.Load (red, ectx.pos :: vars), body') );
          })
  in
  ectx.nests := !(ectx.nests) @ [ init; accum ];
  Ir.Load (red, ectx.pos :: List.map (fun (_, v, _) -> Ir.Var v) ectx.axes)

and lower_childsum ectx body =
  let c = ectx.c in
  let cs = reduction_temp ectx (Printf.sprintf "cs_%s" ectx.op_name) in
  let init =
    axis_loops ectx ~tag:"_csz" (fun vars _ -> Ir.Store (cs, ectx.pos :: vars, Ir.Flt 0.0))
  in
  let kvar = Ir.Var.fresh (Printf.sprintf "%s_k" ectx.op_name) in
  let kbuf = ref [] in
  let accum =
    axis_loops ectx ~tag:"_csa" (fun vars fresh_axes ->
        let body_ectx =
          {
            ectx with
            axes = fresh_axes;
            current_child = Some (Ir.Var kvar);
            nests = kbuf;
          }
        in
        let body' = lower_rexpr body_ectx body in
        Ir.Store
          (cs, ectx.pos :: vars, Ir.Binop (Ir.Add, Ir.Load (cs, ectx.pos :: vars), body')))
  in
  let k_loop =
    Ir.For
      {
        v = kvar;
        extent = Ir.UfCall (c.ufs.u_num_children, [ ectx.node ]);
        kind = Ir.Serial;
        dim = Some c.d_child;
        body = Ir.seq (!kbuf @ [ accum ]);
      }
  in
  ectx.nests := !(ectx.nests) @ [ init; k_loop ];
  Ir.Load (cs, ectx.pos :: List.map (fun (_, v, _) -> Ir.Var v) ectx.axes)

(* ---------- per-op lowering ---------- *)

(* Lower one operator for one node into a statement sequence; registers
   its output temp in [temps]. *)
let lower_op c ~temps ~node ~pos ~(index : temp_index) (o : op) : Ir.stmt =
  let axes =
    List.map (fun (a, extent) -> (a, Ir.Var.fresh (Printf.sprintf "%s_%s" o.op_name a), extent)) o.op_axes
  in
  let pos_ext =
    match index with
    | Hoisted -> Ir.Int 1
    | By_node -> nullary c.ufs.u_num_nodes
    | By_pos -> pos_extent c
  in
  let ectx =
    {
      c;
      axes;
      node;
      pos;
      pos_ext;
      temps;
      current_child = None;
      nests = ref [];
      in_reduction = false;
      op_name = o.op_name;
      stages = Hashtbl.create 2;
    }
  in
  let out_tensor, out_index =
    match index with
    | Hoisted ->
      let dims = List.map (fun _ -> c.d_feat) o.op_axes in
      let extents = List.map (fun (_, _, e) -> Ir.Int e) axes in
      (record_temp c (Ir.tensor ~space:Ir.Global (fresh_name c o.op_name) dims extents), Hoisted)
    | By_pos ->
      let dims = c.d_pos :: List.map (fun _ -> c.d_feat) o.op_axes in
      let extents = pos_extent c :: List.map (fun (_, _, e) -> Ir.Int e) axes in
      let space = if c.opts.fuse then Ir.Shared else Ir.Global in
      (record_temp c (Ir.tensor ~space (fresh_name c o.op_name) dims extents), By_pos)
    | By_node ->
      let dims = c.d_node :: List.map (fun _ -> c.d_feat) o.op_axes in
      let extents =
        nullary c.ufs.u_num_nodes :: List.map (fun (_, _, e) -> Ir.Int e) axes
      in
      (record_temp c (Ir.tensor ~space:Ir.Global (fresh_name c o.op_name) dims extents), By_node)
  in
  let body' = lower_rexpr ectx o.op_body in
  let store =
    let prefix =
      match out_index with Hoisted -> [] | By_pos -> [ pos ] | By_node -> [ node ]
    in
    List.fold_right
      (fun (_, v, extent) body ->
        Ir.For { v; extent = Ir.Int extent; kind = Ir.Vectorized; dim = Some c.d_feat; body })
      axes
      (Ir.Store (out_tensor, prefix @ List.map (fun (_, v, _) -> Ir.Var v) axes, body'))
  in
  Hashtbl.replace temps o.op_name { ti_tensor = out_tensor; ti_index = out_index };
  Ir.seq (!(ectx.nests) @ [ store ])

(* Copy an op's value into a node-indexed global tensor (state
   publication, or extra publication under refactoring). *)
let publish_nest c ~temps ~node ~pos (o : op) (target : Ir.tensor) : Ir.stmt =
  let info =
    match Hashtbl.find_opt temps o.op_name with
    | Some i -> i
    | None -> fail "publish: op %s has no lowered temp" o.op_name
  in
  let axes =
    List.map
      (fun (a, extent) -> (Ir.Var.fresh (Printf.sprintf "%s_%s_pub" o.op_name a), extent))
      o.op_axes
  in
  let vars = List.map (fun (v, _) -> Ir.Var v) axes in
  let value =
    match info.ti_index with
    | By_pos -> Ir.Load (info.ti_tensor, pos :: vars)
    | By_node -> Ir.Load (info.ti_tensor, node :: vars)
    | Hoisted -> Ir.Load (info.ti_tensor, vars)
  in
  List.fold_right
    (fun (v, extent) body ->
      Ir.For { v; extent = Ir.Int extent; kind = Ir.Vectorized; dim = Some c.d_feat; body })
    axes
    (Ir.Store (target, node :: vars, value))

(* ---------- op-set utilities ---------- *)

let rec temp_refs acc (e : rexpr) =
  match e with
  | Temp (name, _) -> name :: acc
  | Const _ | Param _ | ChildState _ -> acc
  | Binop (_, a, b) -> temp_refs (temp_refs acc a) b
  | Math (_, a) | Sum (_, _, a) | ChildSum a -> temp_refs acc a

(* Keep only operators transitively needed by [roots], preserving
   order. *)
let prune_ops ops roots =
  let by_name = Hashtbl.create 16 in
  List.iter (fun (o : op) -> Hashtbl.replace by_name o.op_name o) ops;
  let needed = Hashtbl.create 16 in
  let rec need name =
    if not (Hashtbl.mem needed name) then begin
      Hashtbl.add needed name ();
      match Hashtbl.find_opt by_name name with
      | Some (o : op) -> List.iter need (temp_refs [] o.op_body)
      | None -> ()
    end
  in
  List.iter need roots;
  List.filter (fun (o : op) -> Hashtbl.mem needed o.op_name) ops

let state_op_names (ra : Ra.t) = List.map (fun s -> s.st_op) ra.states

(* States read through ChildState/ChildSum in the recursive case: these
   need child caches. *)
let cached_states (ra : Ra.t) =
  let acc = ref [] in
  let rec go e =
    match e with
    | ChildState (st, _, _) -> if not (List.mem st !acc) then acc := st :: !acc
    | Const _ | Param _ | Temp _ -> ()
    | Binop (_, a, b) ->
      go a;
      go b
    | Math (_, a) | Sum (_, _, a) -> go a
    | ChildSum a -> go a
  in
  List.iter (fun (o : op) -> go o.op_body) ra.rec_ops;
  List.rev !acc

let state_feat_dims (ra : Ra.t) st_name =
  let st = state_by_name ra st_name in
  op_dims (find_op ra.rec_ops st.st_op)

(* ---------- cache fill ---------- *)

let feat_loops c ~base vars_dims f =
  let axes = List.map (fun d -> (Ir.Var.fresh base, d)) vars_dims in
  let vars = List.map (fun (v, _) -> Ir.Var v) axes in
  List.fold_right
    (fun (v, extent) body ->
      Ir.For { v; extent = Ir.Int extent; kind = Ir.Vectorized; dim = Some c.d_feat; body })
    axes (f vars)

let cache_fill_stmt c ~node ~pos ~src st_name =
  let cache = Hashtbl.find c.caches st_name in
  let dims = state_feat_dims c.ra st_name in
  let kvar = Ir.Var.fresh "k_fill" in
  let k = Ir.Var kvar in
  let child_id = Ir.UfCall (c.ufs.u_child, [ k; node ]) in
  let from_child =
    feat_loops c ~base:"j_fill" dims (fun vars ->
        Ir.Store (cache, k :: pos :: vars, Ir.Load (src, child_id :: vars)))
  in
  let from_init =
    feat_loops c ~base:"j_init" dims (fun vars ->
        Ir.Store (cache, k :: pos :: vars, init_expr c st_name vars))
  in
  Ir.For
    {
      v = kvar;
      extent = Ir.Int c.ra.max_children;
      kind = Ir.Serial;
      dim = Some c.d_child;
      body =
        Ir.If
          ( Ir.Cmp (Ir.Lt, k, Ir.UfCall (c.ufs.u_num_children, [ node ])),
            from_child,
            Some from_init );
    }

let cache_fill_all c ~node ~pos ~from_mirror =
  let src st =
    if from_mirror then Hashtbl.find c.state_mirrors st else Hashtbl.find c.states st
  in
  Ir.seq (List.map (fun st -> cache_fill_stmt c ~node ~pos ~src:(src st) st) (cached_states c.ra))

(* ---------- per-case statement generation ---------- *)

(* Lower an op list (already filtered to one phase, or a whole serial
   case) for one node; registers temps as it goes so later phases can
   reference earlier phases' outputs through the shared table.
   [publish] maps op names to extra global targets. *)
let lower_ops c ~temps ~node ~pos ~index ~publish ops =
  let stmts =
    List.concat_map
      (fun (o : op) ->
        let stmt = lower_op c ~temps ~node ~pos ~index o in
        let pubs =
          List.filter_map
            (fun (name, target) ->
              if name = o.op_name then Some (publish_nest c ~temps ~node ~pos o target)
              else None)
            publish
        in
        stmt :: pubs)
      ops
  in
  Ir.seq stmts

let phase_ops p ops = List.filter (fun (o : op) -> o.op_phase = p) ops

let sort_by_phase ops =
  List.stable_sort (fun (a : op) (b : op) -> compare a.op_phase b.op_phase) ops

(* Leaf-case operators after specialization: substituted, folded,
   pruned; split into hoisted and per-leaf parts. *)
let leaf_case_ops c =
  let ra = c.ra in
  let base =
    match ra.leaf_ops with
    | Some ops -> ops
    | None ->
      List.filter_map
        (fun (o : op) ->
          if o.op_precompute then None
          else
            Some { o with op_body = Ra_simplify.leaf_substitute ra o.op_body; op_phase = 0 })
        ra.rec_ops
  in
  let folded = if c.opts.specialize then Ra_simplify.const_propagate base else base in
  let pruned = prune_ops folded (state_op_names ra) in
  if c.opts.specialize then
    List.partition
      (fun (o : op) -> not (Ra_simplify.node_dependent ~ops:pruned o.op_body))
      pruned
  else ([], pruned)

let rec_case_ops c =
  let ra = c.ra in
  let non_pre = List.filter (fun (o : op) -> not o.op_precompute) ra.rec_ops in
  prune_ops non_pre (state_op_names ra @ (if c.opts.refactor then c.opts.refactor_publish else []))

(* ---------- kernel assembly ---------- *)

let isleaf c node = Ir.Cmp (Ir.Ge, node, nullary c.ufs.u_leaf_begin)

let par_node_loop name extent f =
  let v = Ir.Var.fresh name in
  Ir.For { v; extent; kind = Ir.Parallel; dim = None; body = f (Ir.Var v) }

let with_node ~node_expr f =
  let nv = Ir.Var.fresh "node" in
  Ir.Let (nv, node_expr, f (Ir.Var nv))

(* Statements for the publication targets of the recursive case. *)
let rec_publish c pub_tensors =
  List.map (fun s -> (s.st_op, Hashtbl.find c.states s.st_name)) c.ra.states
  @ pub_tensors

let leaf_publish c =
  List.map (fun s -> (s.st_op, Hashtbl.find c.states s.st_name)) c.ra.states

(* The leaf phase: a parallel loop over the leaf batch (plus hoisted
   computations, which the caller places in the setup kernel). *)
let leaf_phase_stmt c ~leaf_temps leaf_ops =
  if num_phases leaf_ops > 1 then fail "leaf cases must be single-phase";
  par_node_loop "n_leaf" (nullary c.ufs.u_num_leaves) (fun n_idx ->
      with_node ~node_expr:(Ir.Binop (Ir.Add, nullary c.ufs.u_leaf_begin, n_idx))
        (fun node ->
          lower_ops c ~temps:leaf_temps ~node ~pos:n_idx ~index:By_pos
            ~publish:(leaf_publish c) leaf_ops))

let hoisted_stmts c ~leaf_temps hoisted =
  List.map
    (fun (o : op) ->
      lower_op c ~temps:leaf_temps ~node:(Ir.Int 0) ~pos:(Ir.Int 0) ~index:Hoisted o)
    hoisted

let precompute_stmt c ~temps o =
  par_node_loop "n_pre" (nullary c.ufs.u_num_nodes) (fun n ->
      with_node ~node_expr:n (fun node ->
          lower_op c ~temps ~node ~pos:node ~index:By_node o))

let node_of_batch c ~b ~n_idx =
  let linear = Ir.Binop (Ir.Add, Ir.UfCall (c.ufs.u_batch_begin, [ b ]), n_idx) in
  if c.opts.unroll then Ir.UfCall (c.ufs.u_sched_node, [ linear ]) else linear

(* The fused internal-batch loop. *)
let batch_loop_stmt c ~rec_temps ~leaf_temps ~rec_ops ~leaf_ops ~pub_tensors =
  let ufs = c.ufs in
  let bvar = Ir.Var.fresh "b" in
  let b = Ir.Var bvar in
  let blen = Ir.UfCall (ufs.u_batch_len, [ b ]) in
  let cache_nest =
    if cached_states c.ra = [] then Ir.Nop
    else
      par_node_loop "n_cache" blen (fun n_idx ->
          with_node ~node_expr:(node_of_batch c ~b ~n_idx) (fun node ->
              if c.opts.unroll then
                Ir.If
                  ( Ir.Cmp (Ir.Eq, Ir.UfCall (ufs.u_role, [ b ]), Ir.Int 1),
                    cache_fill_all c ~node ~pos:n_idx ~from_mirror:true,
                    Some (cache_fill_all c ~node ~pos:n_idx ~from_mirror:false) )
              else cache_fill_all c ~node ~pos:n_idx ~from_mirror:false))
  in
  (* Build per-phase node loops.  With specialization the batch only
     holds internal nodes; without it the leaf batch is included and
     programs with an explicit leaf case branch per node (§5.2's
     conditional operator). *)
  let phases = num_phases rec_ops in
  (* Build the per-phase node loops strictly in phase order: each phase
     lowers only its own operators, registering their temporaries in the
     shared table so later phases load the values the earlier loops
     stored. *)
  let phase_loops = ref [] in
  for p = 0 to phases - 1 do
    let loop =
      par_node_loop (Printf.sprintf "n_p%d" p) blen (fun n_idx ->
          with_node ~node_expr:(node_of_batch c ~b ~n_idx) (fun node ->
              let rec_stmt =
                lower_ops c ~temps:rec_temps ~node ~pos:n_idx ~index:By_pos
                  ~publish:(rec_publish c pub_tensors) (phase_ops p rec_ops)
              in
              if (not c.opts.specialize) && c.ra.leaf_ops <> None then begin
                let leaf_stmt =
                  if p = 0 then
                    lower_ops c ~temps:leaf_temps ~node ~pos:n_idx ~index:By_pos
                      ~publish:(leaf_publish c) leaf_ops
                  else Ir.Nop
                in
                Ir.If (isleaf c node, leaf_stmt, Some rec_stmt)
              end
              else rec_stmt))
    in
    phase_loops := loop :: !phase_loops
  done;
  let phase_loops = List.rev !phase_loops in
  let interphase p =
    let removed = c.opts.refactor && c.opts.refactor_removes_barrier in
    if p > 0 && not removed then [ Ir.Barrier ] else []
  in
  let body_parts =
    List.concat (List.mapi (fun p loop -> interphase p @ [ loop ]) phase_loops)
  in
  let sync =
    if c.opts.unroll then
      [ Ir.If (Ir.Cmp (Ir.Ge, Ir.UfCall (ufs.u_needs_sync, [ b ]), Ir.Int 1), Ir.Barrier, None) ]
    else []
  in
  Ir.For
    {
      v = bvar;
      extent = nullary ufs.u_num_batches;
      kind = Ir.Serial;
      dim = None;
      body = Ir.seq (sync @ [ cache_nest ] @ body_parts);
    }

(* Serialized execution when dynamic batching is off: one node at a
   time in a dependence-respecting order. *)
let order_loop_stmt c ~rec_temps ~leaf_temps ~rec_ops ~leaf_ops ~pub_tensors =
  let ufs = c.ufs in
  let extent =
    if c.opts.specialize then nullary ufs.u_num_internal else nullary ufs.u_num_nodes
  in
  let ivar = Ir.Var.fresh "i_ord" in
  let i = Ir.Var ivar in
  Ir.For
    {
      v = ivar;
      extent;
      kind = Ir.Serial;
      dim = None;
      body =
        with_node ~node_expr:(Ir.UfCall (ufs.u_order, [ i ])) (fun node ->
            let cache =
              if cached_states c.ra = [] then Ir.Nop
              else cache_fill_all c ~node ~pos:(Ir.Int 0) ~from_mirror:false
            in
            let rec_stmt =
              lower_ops c ~temps:rec_temps ~node ~pos:(Ir.Int 0) ~index:By_pos
                ~publish:(rec_publish c pub_tensors) (sort_by_phase rec_ops)
            in
            if (not c.opts.specialize) && c.ra.leaf_ops <> None then
              let leaf_stmt =
                lower_ops c ~temps:leaf_temps ~node ~pos:(Ir.Int 0) ~index:By_pos
                  ~publish:(leaf_publish c) leaf_ops
              in
              Ir.If (isleaf c node, leaf_stmt, Some (Ir.seq [ cache; rec_stmt ]))
            else Ir.seq [ cache; rec_stmt ])
    }

(* ---------- whole-program assembly ---------- *)

let assemble c =
  let ra = c.ra in
  let opts = c.opts in
  let rec_temps : (string, temp_info) Hashtbl.t = Hashtbl.create 16 in
  let leaf_temps : (string, temp_info) Hashtbl.t = Hashtbl.create 16 in
  let hoisted, leaf_ops = leaf_case_ops c in
  let rec_ops = sort_by_phase (rec_case_ops c) in
  let pre_ops = List.filter (fun (o : op) -> o.op_precompute) ra.rec_ops in
  let pub_tensors =
    if opts.refactor then
      List.map
        (fun name ->
          let o = find_op ra.rec_ops name in
          let dims = c.d_node :: List.map (fun _ -> c.d_feat) o.op_axes in
          let extents =
            nullary c.ufs.u_num_nodes :: List.map (fun d -> Ir.Int d) (op_dims o)
          in
          (name, record_temp c (Ir.tensor ~space:Ir.Global ("pub_" ^ name) dims extents)))
        opts.refactor_publish
    else []
  in
  (* Setup: precompute operators over all nodes, then hoisted leaf
     computations (computed once, §4.3). *)
  let setup_pre =
    List.map
      (fun (o : op) ->
        let s = precompute_stmt c ~temps:rec_temps o in
        Hashtbl.replace leaf_temps o.op_name (Hashtbl.find rec_temps o.op_name);
        s)
      pre_ops
  in
  let setup_hoist = hoisted_stmts c ~leaf_temps hoisted in
  let hoisted_state_ops =
    List.filter
      (fun (o : op) -> List.exists (fun s -> s.st_op = o.op_name) ra.states)
      hoisted
  in
  if opts.fuse then begin
    (* One kernel for the whole model. *)
    let leaf_part =
      if opts.specialize then
        [ (let base = leaf_phase_stmt c ~leaf_temps leaf_ops in
           (* Hoisted state operators still publish per leaf. *)
           if hoisted_state_ops = [] then base
           else
             par_node_loop "n_leafp" (nullary c.ufs.u_num_leaves) (fun n_idx ->
                 with_node
                   ~node_expr:(Ir.Binop (Ir.Add, nullary c.ufs.u_leaf_begin, n_idx))
                   (fun node ->
                     Ir.seq
                       (List.map
                          (fun (o : op) ->
                            let target =
                              Hashtbl.find c.states
                                (List.find (fun s -> s.st_op = o.op_name) ra.states).st_name
                            in
                            publish_nest c ~temps:leaf_temps ~node ~pos:n_idx o target)
                          hoisted_state_ops)))
             |> fun pub -> Ir.seq [ base; pub ]) ]
      else []
    in
    let body_main =
      if opts.dynamic_batch then
        batch_loop_stmt c ~rec_temps ~leaf_temps ~rec_ops ~leaf_ops ~pub_tensors
      else order_loop_stmt c ~rec_temps ~leaf_temps ~rec_ops ~leaf_ops ~pub_tensors
    in
    let body = Ir.seq (leaf_part @ [ body_main ]) in
    let body =
      (* Unrolled schedules emit their (conditional) barriers themselves. *)
      if opts.unroll then body else Barrier.insert opts.barrier_mode body
    in
    let setup_body = setup_pre @ setup_hoist in
    (if setup_body = [] then []
     else [ { Ir.kname = "setup"; launch = Ir.Once; body = Ir.seq setup_body } ])
    @ [ { Ir.kname = "main"; launch = Ir.Once; body } ]
  end
  else begin
    (* One kernel per operator: setup kernels, leaf kernels, then the
       per-batch gather + operator kernels. *)
    let setup_kernels =
      List.map2
        (fun (o : op) s -> { Ir.kname = "pre_" ^ o.op_name; launch = Ir.Once; body = s })
        pre_ops setup_pre
      @ List.map2
          (fun (o : op) s ->
            { Ir.kname = "hoist_" ^ o.op_name; launch = Ir.Once; body = s })
          hoisted setup_hoist
    in
    let publish_for temps (o : op) node pos =
      let state_targets =
        List.filter_map
          (fun s ->
            if s.st_op = o.op_name then Some (Hashtbl.find c.states s.st_name) else None)
          ra.states
      in
      let extra =
        List.filter_map
          (fun (name, t) -> if name = o.op_name then Some t else None)
          pub_tensors
      in
      List.map (fun t -> publish_nest c ~temps ~node ~pos o t) (state_targets @ extra)
    in
    let leaf_kernels =
      List.map
        (fun (o : op) ->
          let body =
            par_node_loop "n_leaf" (nullary c.ufs.u_num_leaves) (fun n_idx ->
                with_node
                  ~node_expr:(Ir.Binop (Ir.Add, nullary c.ufs.u_leaf_begin, n_idx))
                  (fun node ->
                    let main = lower_op c ~temps:leaf_temps ~node ~pos:node ~index:By_node o in
                    Ir.seq (main :: publish_for leaf_temps o node node)))
          in
          { Ir.kname = "leaf_" ^ o.op_name; launch = Ir.Once; body })
        leaf_ops
      @ List.map
          (fun (o : op) ->
            let body =
              par_node_loop "n_leafp" (nullary c.ufs.u_num_leaves) (fun n_idx ->
                  with_node
                    ~node_expr:(Ir.Binop (Ir.Add, nullary c.ufs.u_leaf_begin, n_idx))
                    (fun node -> Ir.seq (publish_for leaf_temps o node node)))
            in
            { Ir.kname = "leafpub_" ^ o.op_name; launch = Ir.Once; body })
          hoisted_state_ops
    in
    let bvar = Ir.Var.fresh "b" in
    let b = Ir.Var bvar in
    let blen = Ir.UfCall (c.ufs.u_batch_len, [ b ]) in
    let gather_kernels =
      List.map
        (fun st ->
          let body =
            par_node_loop "n_g" blen (fun n_idx ->
                with_node ~node_expr:(node_of_batch c ~b ~n_idx) (fun node ->
                    cache_fill_stmt c ~node ~pos:node ~src:(Hashtbl.find c.states st) st))
          in
          { Ir.kname = "gather_" ^ st; launch = Ir.PerInternalBatch bvar; body })
        (cached_states ra)
    in
    let op_kernels =
      List.map
        (fun (o : op) ->
          let body =
            par_node_loop "n_op" blen (fun n_idx ->
                with_node ~node_expr:(node_of_batch c ~b ~n_idx) (fun node ->
                    let main = lower_op c ~temps:rec_temps ~node ~pos:node ~index:By_node o in
                    Ir.seq (main :: publish_for rec_temps o node node)))
          in
          { Ir.kname = "op_" ^ o.op_name; launch = Ir.PerInternalBatch bvar; body })
        rec_ops
    in
    setup_kernels @ leaf_kernels @ gather_kernels @ op_kernels
  end

(* ---------- entry point ---------- *)

let lower ?obs ?(options = default) (ra : Ra.t) =
  let pass name f = Obs.wall_span obs ~track:"compile" name f in
  pass "lower" @@ fun () ->
  pass "validate" (fun () ->
      Ra.validate ra;
      let tree_like =
        match ra.kind with
        | Cortex_ds.Structure.Tree | Cortex_ds.Structure.Sequence -> true
        | Cortex_ds.Structure.Dag -> false
      in
      if options.unroll then begin
        if not tree_like then
          fail "unrolling is restricted to trees and sequences (%s)" ra.name;
        if not (options.specialize && options.dynamic_batch && options.fuse) then
          fail "unrolling requires specialization, dynamic batching and fusion"
      end;
      if options.block_local_unroll && not options.unroll then
        fail "block_local_unroll requires unroll";
      if options.refactor then begin
        if not tree_like then
          fail "recursive refactoring is restricted to trees and sequences";
        if num_phases ra.rec_ops < 2 then
          fail "recursive refactoring needs a multi-phase recursive case";
        List.iter
          (fun name -> ignore (find_op ra.rec_ops name))
          options.refactor_publish
      end);
  let ufs = make_ufs () in
  let c =
    {
      ra;
      opts = options;
      ufs;
      d_node = Ir.Dim.fresh "d_node";
      d_pos = Ir.Dim.fresh "d_pos";
      d_child = Ir.Dim.fresh "d_child";
      d_feat = Ir.Dim.fresh "d_feat";
      params = Hashtbl.create 8;
      states = Hashtbl.create 4;
      state_mirrors = Hashtbl.create 4;
      caches = Hashtbl.create 4;
      temporaries = [];
      fresh = 0;
    }
  in
  pass "declare" (fun () ->
  List.iter
    (fun (p, dims) ->
      let t =
        Ir.tensor ~space:Ir.Param p
          (List.map (fun _ -> c.d_feat) dims)
          (List.map (fun d -> Ir.Int d) dims)
      in
      Hashtbl.replace c.params p t)
    ra.params;
  List.iter
    (fun st ->
      let feats = state_feat_dims ra st.st_name in
      let dims = c.d_node :: List.map (fun _ -> c.d_feat) feats in
      let extents = nullary ufs.u_num_nodes :: List.map (fun d -> Ir.Int d) feats in
      let glob = Ir.tensor ~space:Ir.Global ("st_" ^ st.st_name) dims extents in
      Hashtbl.replace c.states st.st_name glob;
      if options.unroll then begin
        let mirror = Ir.tensor ~space:Ir.Shared ("stloc_" ^ st.st_name) dims extents in
        Hashtbl.replace c.state_mirrors st.st_name mirror
      end)
    ra.states;
  List.iter
    (fun st ->
      let feats = state_feat_dims ra st in
      let dims = c.d_child :: c.d_pos :: List.map (fun _ -> c.d_feat) feats in
      let pos_ext =
        if options.fuse then
          (if options.dynamic_batch then nullary ufs.u_max_batch_len else Ir.Int 1)
        else nullary ufs.u_num_nodes
      in
      let extents =
        Ir.Int ra.max_children :: pos_ext :: List.map (fun d -> Ir.Int d) feats
      in
      let space = if options.fuse then Ir.Shared else Ir.Global in
      let t = record_temp c (Ir.tensor ~space ("cache_" ^ st) dims extents) in
      Hashtbl.replace c.caches st t)
    (cached_states ra));
  let kernels = pass "assemble" (fun () -> assemble c) in
  let state_tensors =
    List.map (fun st -> (st.st_name, Hashtbl.find c.states st.st_name)) ra.states
  in
  let aliases =
    List.filter_map
      (fun st ->
        match Hashtbl.find_opt c.state_mirrors st.st_name with
        | Some mirror -> Some (Hashtbl.find c.states st.st_name, mirror)
        | None -> None)
      ra.states
  in
  let param_tensors =
    List.map (fun (p, _) -> (p, Hashtbl.find c.params p)) ra.params
  in
  let prog =
    {
      Ir.pname = ra.name;
      params = List.map snd param_tensors;
      inputs = [];
      temporaries = c.temporaries;
      outputs = List.map snd state_tensors;
      kernels;
    }
  in
  (* Canonical loop names: unique across the whole program, so
     serialized schedule plans address loops unambiguously. *)
  let prog = Schedule.canonicalize prog in
  {
    ra;
    options;
    prog;
    ufs;
    state_tensors;
    param_tensors;
    aliases;
    phases = num_phases ra.rec_ops;
  }

(* ---------- post-lowering schedule plans ---------- *)

let apply_plan (plan : Schedule.plan) compiled =
  match plan with
  | [] -> compiled
  | _ ->
    let prog = compiled.prog in
    let kernels = Array.of_list prog.Ir.kernels in
    let modified = Array.make (Array.length kernels) false in
    let staged = ref [] in
    List.iter
      (fun d ->
        let target =
          match Schedule.directive_loops d with
          | [] -> raise (Schedule.Schedule_error "apply_plan: directive names no loop")
          | n :: _ -> n
        in
        let holders = ref [] in
        Array.iteri
          (fun i k ->
            if List.mem target (Schedule.loop_names k.Ir.body) then holders := i :: !holders)
          kernels;
        match !holders with
        | [ i ] ->
          let body', ts = Schedule.apply_directive d kernels.(i).Ir.body in
          staged := !staged @ ts;
          modified.(i) <- true;
          kernels.(i) <- { (kernels.(i)) with Ir.body = body' }
        | [] ->
          raise
            (Schedule.Schedule_error
               (Printf.sprintf "apply_plan: no kernel contains loop %s" target))
        | hs ->
          raise
            (Schedule.Schedule_error
               (Printf.sprintf "apply_plan: loop %s appears in %d kernels" target
                  (List.length hs))))
      plan;
    (* Re-simplify only the kernels a directive touched, so rebased
       indices fold back into the form the cost model counts
       multiplicatively. *)
    Array.iteri
      (fun i k ->
        if modified.(i) then kernels.(i) <- { k with Ir.body = Simplify.stmt k.Ir.body })
      kernels;
    {
      compiled with
      prog =
        {
          prog with
          Ir.kernels = Array.to_list kernels;
          Ir.temporaries = prog.Ir.temporaries @ !staged;
        };
    }

(* ---------- runtime binding ---------- *)

type bound = {
  ctx : Interp.context;
  lin : Linearizer.t;
  uf_resolver : Ir.Uf.t -> int array -> int;
  num_batch_launches : int;
}

let bind ?(count = false) compiled (lin : Linearizer.t) =
  let opts = compiled.options in
  let internal = Linearizer.internal_batches lin in
  let internal_postorder =
    Array.of_list
      (List.filter
         (fun id -> not (Linearizer.is_leaf lin id))
         (Array.to_list lin.postorder))
  in
  (* The batch table the compiled batch loop iterates over. *)
  let batch_table, sched_nodes, roles =
    if opts.unroll then begin
      let u = Unrolling.compute lin in
      let sched = Array.concat (Array.to_list u.Unrolling.batches) in
      let table = Array.make (Array.length u.Unrolling.batches) (0, 0) in
      let off = ref 0 in
      Array.iteri
        (fun i nodes ->
          table.(i) <- (!off, Array.length nodes);
          off := !off + Array.length nodes)
        u.Unrolling.batches;
      (table, Some sched, Some u.Unrolling.roles)
    end
    else if not opts.fuse then
      if opts.dynamic_batch then (internal, None, None)
      else
        ( Array.map (fun id -> (id, 1)) internal_postorder,
          None,
          None )
    else if not opts.dynamic_batch then ([||], None, None)
    else if opts.specialize then (internal, None, None)
    else (lin.batches, None, None)
  in
  let nb = Array.length batch_table in
  let max_batch_len =
    Array.fold_left (fun m (_, len) -> max m len) lin.num_leaves batch_table
  in
  let ctx = Interp.create ~count ~num_internal_batches:nb () in
  let u = compiled.ufs in
  let resolver = Hashtbl.create 16 in
  let bind1 (uf : Ir.Uf.t) f =
    Hashtbl.replace resolver uf.Ir.Uf.uid f;
    Interp.bind_uf ctx uf f
  in
  bind1 u.u_num_nodes (fun _ -> lin.num_nodes);
  bind1 u.u_num_leaves (fun _ -> lin.num_leaves);
  bind1 u.u_leaf_begin (fun _ -> lin.leaf_begin);
  bind1 u.u_num_internal (fun _ -> lin.num_nodes - lin.num_leaves);
  bind1 u.u_num_batches (fun _ -> nb);
  bind1 u.u_batch_begin (fun a -> fst batch_table.(a.(0)));
  bind1 u.u_batch_len (fun a -> snd batch_table.(a.(0)));
  bind1 u.u_max_batch_len (fun _ -> max_batch_len);
  bind1 u.u_child (fun a -> lin.child.(a.(0)).(a.(1)));
  bind1 u.u_num_children (fun a -> lin.num_children.(a.(0)));
  bind1 u.u_payload (fun a ->
      let p = lin.payload.(a.(0)) in
      if p < 0 then
        raise (Interp.Runtime_error (Printf.sprintf "node %d has no payload" a.(0)))
      else p);
  bind1 u.u_order (fun a ->
      if opts.specialize then internal_postorder.(a.(0)) else lin.postorder.(a.(0)));
  bind1 u.u_sched_node (fun a ->
      match sched_nodes with
      | Some s -> s.(a.(0))
      | None -> raise (Interp.Runtime_error "sched_node unbound (no unrolling)"));
  bind1 u.u_role (fun a ->
      match roles with
      | Some r ->
        (match r.(a.(0)) with Unrolling.Parent_phase -> 1 | Unrolling.Child_phase -> 0)
      | None -> 0);
  bind1 u.u_needs_sync (fun a ->
      match roles with
      | Some r ->
        (match r.(a.(0)) with
         | Unrolling.Child_phase -> 1
         | Unrolling.Parent_phase -> if opts.block_local_unroll then 0 else 1)
      | None -> 1);
  (* Allocate states and wire on-chip mirrors to the same storage. *)
  List.iter
    (fun (_, t) -> ignore (Interp.get_tensor ctx t))
    compiled.state_tensors;
  List.iter
    (fun (glob, mirror) -> Interp.bind_tensor ctx mirror (Interp.get_tensor ctx glob))
    compiled.aliases;
  let uf_resolver (uf : Ir.Uf.t) args =
    match Hashtbl.find_opt resolver uf.Ir.Uf.uid with
    | Some f -> f args
    | None ->
      raise (Interp.Runtime_error ("unbound uninterpreted function " ^ uf.Ir.Uf.uname))
  in
  { ctx; lin; uf_resolver; num_batch_launches = nb }

let state_value_lin bound compiled st_name lin_id =
  let tensor =
    match List.assoc_opt st_name compiled.state_tensors with
    | Some t -> t
    | None -> fail "no state named %s" st_name
  in
  let storage = Interp.get_tensor bound.ctx tensor in
  let dims = Array.of_list (state_feat_dims compiled.ra st_name) in
  let elems = Array.fold_left Stdlib.( * ) 1 dims in
  let data = Array.init elems (fun i -> Tensor.get_flat storage ((lin_id * elems) + i)) in
  Tensor.of_array dims data

let state_value bound compiled st_name (node : Cortex_ds.Node.t) =
  state_value_lin bound compiled st_name
    bound.lin.Linearizer.new_of_old.(node.Cortex_ds.Node.id)

let set_state_lin bound compiled st_name lin_id value =
  let tensor =
    match List.assoc_opt st_name compiled.state_tensors with
    | Some t -> t
    | None -> fail "no state named %s" st_name
  in
  let storage = Interp.get_tensor bound.ctx tensor in
  let dims = Array.of_list (state_feat_dims compiled.ra st_name) in
  let elems = Array.fold_left Stdlib.( * ) 1 dims in
  if Tensor.numel value <> elems then
    fail "set_state_lin: state %s expects %d elements" st_name elems;
  for i = 0 to elems - 1 do
    Tensor.set_flat storage ((lin_id * elems) + i) (Tensor.get_flat value i)
  done

(* Delta-view serving (sessions) re-runs only the grown tail of a
   structure against a freshly bound context, pre-seeding the old rows
   of the state tensors.  That is only sound when the compiled program's
   only cross-node dataflow is through those state tensors and the
   batch loop comes from the bound batch table: the specialized
   dynamic-batching pipeline.  Unrolling schedules from the full
   linearization, and refactoring publishes temporaries that are read
   across nodes without being states — both would read garbage for the
   pre-seeded prefix. *)
let delta_compatible (opts : options) =
  opts.dynamic_batch && opts.specialize && opts.fuse && not opts.unroll
  && not opts.refactor
