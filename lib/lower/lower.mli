(** RA -> ILIR lowering (§4 of the paper).

    Lowering turns the recursive model into loop nests over the
    linearizer's arrays: recursion becomes iteration over dynamic
    batches (or a serialized topological order when dynamic batching is
    off), data-structure accesses become uninterpreted-function calls,
    and every temporary is made explicit (§4.1).  The produced
    {!compiled} artifact carries the ILIR program plus the
    uninterpreted-function handles the runtime must bind against a
    concrete {!Cortex_linearizer.Linearizer.t}.

    Optimizations implemented here:
    - {b specialization} (§3.1): separate leaf and internal loop nests;
      child references in the leaf version are replaced by the states'
      initial values and constant-folded, which deletes the child-sum
      matrix-vector products from the leaf nests;
    - {b computation hoisting + constant propagation} (§4.3): leaf
      operators that become node-independent are computed once in the
      setup kernel instead of per leaf;
    - {b child-state caching} (§A.3): child states read inside
      reductions are staged into an on-chip cache tensor with an extra
      child dimension, turning H^2 indirect global reads into H;
    - {b dense intermediate layouts} (§5.1, Fig. 5): under fusion,
      per-node temporaries live in scratchpad tensors indexed by the
      batch position rather than the node id;
    - {b kernel fusion}: one kernel for the whole model with barriers
      between dynamic batches, versus one kernel per operator per batch;
    - {b unrolling} and {b recursive refactoring} (§3.1, §7.4): see
      {!Cortex_linearizer.Unrolling} and the [refactor] option. *)

open Cortex_ilir
open Cortex_ra

type options = {
  dynamic_batch : bool;
  specialize : bool;
  fuse : bool;
  persist : bool;  (** model persistence; consumed by the backend model *)
  unroll : bool;
  block_local_unroll : bool;
      (** schedule one unroll group per thread block, making the
          parent-phase synchronization free (TreeRNN schedule, §7.4) *)
  refactor : bool;
  refactor_publish : string list;
      (** recursive-case temporaries that must additionally be published
          to global memory when refactoring moves the final phase across
          the recursion backedge *)
  refactor_removes_barrier : bool;
      (** whether the backedge change actually eliminates the
          inter-phase synchronization — §7.4 found it does for the
          simplified GRU cell but not for the full child-sum TreeGRU,
          whose deferred combine still feeds a synchronized
          matrix-vector stage *)
  barrier_mode : Cortex_ilir.Barrier.mode;
}

val default : options
(** Everything on (the "Cortex" configuration): dynamic batching,
    specialization, fusion, persistence; no unrolling or refactoring;
    carrier barrier placement. *)

val baseline : options
(** Everything off except dynamic batching — the leftmost bar of
    Fig. 10a. *)

val options_to_string : options -> string
(** Canonical textual form: comma-joined flag tokens
    (e.g. ["dynamic_batch,specialize,fuse,persist"]), plus
    [publish=a|b], [keep_barrier] and [barrier=conservative] for the
    non-default settings.  {!default} prints as ["default"], the
    all-off record as ["none"].  Round-trips through
    {!options_of_string}; bundle manifests and [Engine.Config] files
    store this form. *)

val options_of_string : string -> options option
(** Inverse of {!options_to_string}; [None] on an unknown token. *)

type ufs = {
  u_num_nodes : Ir.Uf.t;
  u_num_leaves : Ir.Uf.t;
  u_leaf_begin : Ir.Uf.t;
  u_num_internal : Ir.Uf.t;
  u_num_batches : Ir.Uf.t;  (** batch-loop trip count *)
  u_batch_begin : Ir.Uf.t;
  u_batch_len : Ir.Uf.t;
  u_max_batch_len : Ir.Uf.t;
  u_child : Ir.Uf.t;  (** child(k, n) *)
  u_num_children : Ir.Uf.t;
  u_payload : Ir.Uf.t;
  u_order : Ir.Uf.t;  (** execution order without dynamic batching *)
  u_sched_node : Ir.Uf.t;  (** node table for unrolled batches *)
  u_role : Ir.Uf.t;  (** 1 when an unrolled batch is a parent phase *)
  u_needs_sync : Ir.Uf.t;  (** 1 when a batch needs a global barrier *)
}

type compiled = {
  ra : Ra.t;
  options : options;
  prog : Ir.program;
  ufs : ufs;
  state_tensors : (string * Ir.tensor) list;
  param_tensors : (string * Ir.tensor) list;
  aliases : (Ir.tensor * Ir.tensor) list;
      (** pairs that must share storage (global state and its on-chip
          mirror under unrolling) *)
  phases : int;  (** phases of the recursive case *)
}

exception Lowering_error of string

val lower : ?obs:Cortex_obs.Obs.t -> ?options:options -> Ra.t -> compiled
(** Validates the program and options (unrolling and refactoring only
    for trees and sequences; refactoring needs >= 2 phases; unrolling
    requires specialization) and produces the compiled artifact.

    [obs] records the passes (validate, declare, assemble, under an
    enclosing [lower] span) as wall-clock spans on the ["compile"]
    track; the default [None] records nothing.

    Loop names in the produced program are canonical
    ({!Schedule.canonicalize}): unique across the whole program and
    stable for a given (model, options), so schedule plans can address
    them. *)

val apply_plan : Schedule.plan -> compiled -> compiled
(** Apply a loop-schedule plan to a compiled model: each directive is
    routed to the unique kernel containing its (canonical) target loop,
    staging tensors are added to the program's temporaries, and touched
    kernels are re-simplified.  The empty plan returns the artifact
    unchanged.  Raises {!Schedule.Schedule_error} when a directive's
    loop is missing/ambiguous or its legality checks fail — the tuner
    treats that as an infeasible candidate. *)

type bound = {
  ctx : Cortex_ilir.Interp.context;
  lin : Cortex_linearizer.Linearizer.t;
  uf_resolver : Ir.Uf.t -> int array -> int;
  num_batch_launches : int;
}

val bind :
  ?count:bool ->
  compiled ->
  Cortex_linearizer.Linearizer.t ->
  bound
(** Builds an interpreter context with every uninterpreted function
    bound against the linearized structure (and the unrolled schedule
    when the compilation unrolled), state tensors allocated, and aliases
    wired to shared storage.  Parameters still need [Interp.bind_tensor]
    before running. *)

val state_value :
  bound -> compiled -> string -> Cortex_ds.Node.t -> Cortex_tensor.Tensor.t
(** Read a state of one node (by original node) out of the executed
    context. *)

val state_value_lin :
  bound -> compiled -> string -> int -> Cortex_tensor.Tensor.t
(** Same, addressed by linearized id — the serving engine reads
    per-request results out of a batched forest through its span
    tables, where the original nodes belong to a different (pre-merge)
    structure. *)

val set_state_lin :
  bound -> compiled -> string -> int -> Cortex_tensor.Tensor.t -> unit
(** Write one node's row of a state tensor before running — the
    serving engine pre-seeds a session's persistent hidden states into
    a freshly bound context so a delta run over the grown tail reads
    the old nodes' values instead of zeros.  Raises [Failure] on an
    unknown state or an element-count mismatch. *)

val delta_compatible : options -> bool
(** Whether delta-view serving (re-running only the grown tail with
    pre-seeded states) is sound for these options: the specialized
    dynamic-batching pipeline ([dynamic_batch], [specialize], [fuse]),
    without unrolling (schedules from the full linearization) or
    refactoring (publishes cross-node temporaries that are not
    states). *)
