(** Per-shape-class cache of tuned loop-schedule plans.

    The serving engine compiles a model once, but the best loop
    schedule depends on the backend a window lands on and on how much
    parallelism its linearized batch exposes — captured here by the
    dispatcher's size class ({!Dispatch.size_bucket}).  On the first
    window of a (backend, class) pair the cache runs a loop-schedule
    search ({!Cortex_runtime.Tuner.tune_loops}) under a candidate-count
    budget — deterministic by construction — applies the winning plan
    with [Lower.apply_plan], and keeps the applied artifact; later
    windows of the class reuse it.

    The search's host wall time is recorded in the stats and through
    {!Cortex_obs.Obs} ("plan_cache.tune_ms"), but never charged to the
    simulated device clock: the simulation must stay a pure function of
    (seed, spec, trace) for the fault tests' determinism, and plan
    tuning is a once-per-class deployment cost, not a per-request
    one. *)

type entry = {
  pe_backend : string;  (** [Backend.short] of the tuned-for device *)
  pe_bucket : int;  (** {!Dispatch.size_bucket} of the window's nodes *)
  pe_packed : bool;
      (** tuned on a packed multi-session window — packed windows key
          separately from regular forest windows of the same size class
          (their level-merged batch tables are shaped differently) *)
  pe_plan : Cortex_ilir.Schedule.plan;  (** winning plan; [[]] = default *)
  pe_compiled : Cortex_lower.Lower.compiled;  (** plan applied *)
  pe_default_us : float;  (** simulated latency of the default schedule *)
  pe_tuned_us : float;  (** simulated latency under the winning plan *)
  pe_tune_ms : float;  (** host wall time the search took *)
}

type stats = {
  pc_entries : int;
  pc_hits : int;
  pc_misses : int;  (** = number of searches run *)
  pc_tune_ms : float;  (** total host wall time spent tuning *)
}

type t

val create : ?budget:int -> unit -> t
(** [budget] (default 16) caps the candidate plans evaluated per class;
    it counts plans, not wall time, so a given artifact and
    linearization always tune to the same winner. *)

val budget : t -> int

val find_or_tune :
  ?obs:Cortex_obs.Obs.t ->
  ?packed:bool ->
  t ->
  compiled:Cortex_lower.Lower.compiled ->
  backend:Cortex_backend.Backend.t ->
  lin:Cortex_linearizer.Linearizer.t ->
  nodes:int ->
  entry * bool
(** The entry for the window's (backend, size-class, packed), tuning on
    first contact.  [packed] (default [false]) selects the packed
    multi-session key space.  The boolean is [true] on a cache hit. *)

val preload :
  t ->
  backend_short:string ->
  bucket:int ->
  plan:Cortex_ilir.Schedule.plan ->
  compiled:Cortex_lower.Lower.compiled ->
  default_us:float ->
  tuned_us:float ->
  unit
(** Seed the cache with a plan tuned ahead of time (a bundle's tuned
    plans): the plan is applied to [compiled] now, so the first window
    of the class is a hit and no search runs ([pe_tune_ms = 0]).
    Bundles only carry regular-window plans, so preloads always land in
    the unpacked key space. *)

val stats : t -> stats
val hit_rate : stats -> float
val entries : t -> entry list
(** All entries, sorted by (backend, bucket, packed) for deterministic
    reporting. *)

val clear : t -> unit
