module Rng = Cortex_util.Rng
module Structure = Cortex_ds.Structure

type event = { at_us : float; deadline_us : float option; structure : Structure.t }
type t = event list

let check_deadline = function
  | Some d when d <= 0.0 -> invalid_arg "Trace: deadline must be positive"
  | _ -> ()

let poisson ?deadline_us rng ~rate_rps ~duration_ms ~gen =
  if rate_rps <= 0.0 then invalid_arg "Trace.poisson: rate must be positive";
  if duration_ms <= 0.0 then invalid_arg "Trace.poisson: duration must be positive";
  check_deadline deadline_us;
  let rate_per_us = rate_rps /. 1.0e6 in
  let horizon_us = duration_ms *. 1000.0 in
  let rec go acc t =
    let dt = -.Float.log (1.0 -. Rng.uniform rng) /. rate_per_us in
    let t = t +. dt in
    if t >= horizon_us then List.rev acc
    else
      let deadline_us = Option.map (fun d -> t +. d) deadline_us in
      go ({ at_us = t; deadline_us; structure = gen rng } :: acc) t
  in
  go [] 0.0

let of_structures ?(spacing_us = 0.0) ?deadline_us structures =
  if spacing_us < 0.0 then invalid_arg "Trace.of_structures: spacing must be >= 0";
  check_deadline deadline_us;
  List.mapi
    (fun i s ->
      let at_us = spacing_us *. float_of_int i in
      { at_us; deadline_us = Option.map (fun d -> at_us +. d) deadline_us; structure = s })
    structures

let length = List.length

let num_nodes t =
  List.fold_left (fun acc e -> acc + Structure.num_nodes e.structure) 0 t
