module Rng = Cortex_util.Rng
module Structure = Cortex_ds.Structure

type event = { at_us : float; structure : Structure.t }
type t = event list

let poisson rng ~rate_rps ~duration_ms ~gen =
  if rate_rps <= 0.0 then invalid_arg "Trace.poisson: rate must be positive";
  let rate_per_us = rate_rps /. 1.0e6 in
  let horizon_us = duration_ms *. 1000.0 in
  let rec go acc t =
    let dt = -.Float.log (1.0 -. Rng.uniform rng) /. rate_per_us in
    let t = t +. dt in
    if t >= horizon_us then List.rev acc
    else go ({ at_us = t; structure = gen rng } :: acc) t
  in
  go [] 0.0

let of_structures ?(spacing_us = 0.0) structures =
  List.mapi
    (fun i s -> { at_us = spacing_us *. float_of_int i; structure = s })
    structures

let length = List.length

let num_nodes t =
  List.fold_left (fun acc e -> acc + Structure.num_nodes e.structure) 0 t
