module Rng = Cortex_util.Rng

type fault =
  | Fail_stop of { device : int; at_us : float }
  | Transient of { device : int; prob : float; from_us : float; until_us : float }
  | Straggler of { device : int; factor : float; from_us : float; until_us : float }

type spec = fault list

(* ---------- the spec grammar ---------- *)

let device_to_string d = if d < 0 then "*" else string_of_int d

let fault_to_string = function
  | Fail_stop { device; at_us } ->
    Printf.sprintf "failstop@%s:%g" (device_to_string device) at_us
  | Transient { device; prob; from_us; until_us } ->
    Printf.sprintf "transient@%s:%g,%g,%g" (device_to_string device) prob from_us
      until_us
  | Straggler { device; factor; from_us; until_us } ->
    Printf.sprintf "straggler@%s:%g,%g,%g" (device_to_string device) factor from_us
      until_us

let to_string spec = String.concat ";" (List.map fault_to_string spec)

let ( let* ) r f = Result.bind r f

(* Every parse error names the offending clause: its 1-based position
   in the semicolon-separated spec and its text, so a user can fix a
   long grammar string without bisecting it by hand. *)
let clause_err ~clause str fmt =
  Printf.ksprintf
    (fun msg -> Error (Printf.sprintf "fault clause %d (%S): %s" clause str msg))
    fmt

let parse_device ~clause str s =
  let s = String.trim s in
  if s = "*" then Ok (-1)
  else
    match int_of_string_opt s with
    | Some d when d >= 0 -> Ok d
    | _ -> clause_err ~clause str "bad device %S (expected an index or *)" s

let parse_floats ~clause str s =
  let parts = String.split_on_char ',' s in
  let rec go acc pos = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match float_of_string_opt (String.trim p) with
      | Some f -> go (f :: acc) (pos + 1) rest
      | None -> clause_err ~clause str "bad number %S at argument %d" p pos)
  in
  go [] 1 parts

(* The arity each kind expects, spelled out so a wrong count names what
   was missing instead of a generic complaint. *)
let arity_of = function
  | "failstop" -> "at_us (1 number)"
  | "transient" -> "prob,from_us,until_us (3 numbers)"
  | "straggler" -> "factor,from_us,until_us (3 numbers)"
  | _ -> assert false

let parse_one ~clause str =
  let* kind, rest =
    match String.index_opt str '@' with
    | Some i ->
      Ok
        ( String.trim (String.sub str 0 i),
          String.sub str (i + 1) (String.length str - i - 1) )
    | None -> clause_err ~clause str "missing @device"
  in
  let* dev, args =
    match String.index_opt rest ':' with
    | Some i ->
      Ok (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
    | None -> clause_err ~clause str "missing :args after the device"
  in
  let* device = parse_device ~clause str dev in
  let* nums = parse_floats ~clause str args in
  match (kind, nums) with
  | "failstop", [ at_us ] ->
    if at_us >= 0.0 then Ok (Fail_stop { device; at_us })
    else clause_err ~clause str "fail time must be >= 0"
  | "transient", [ prob; from_us; until_us ] ->
    if not (prob > 0.0 && prob <= 1.0) then
      clause_err ~clause str "probability must be in (0, 1]"
    else if from_us > until_us then clause_err ~clause str "from > until"
    else Ok (Transient { device; prob; from_us; until_us })
  | "straggler", [ factor; from_us; until_us ] ->
    if not (factor >= 1.0) then clause_err ~clause str "straggler factor must be >= 1"
    else if from_us > until_us then clause_err ~clause str "from > until"
    else Ok (Straggler { device; factor; from_us; until_us })
  | (("failstop" | "transient" | "straggler") as kind), got ->
    clause_err ~clause str "wrong arity for %s: expected %s, got %d" kind
      (arity_of kind) (List.length got)
  | _ ->
    clause_err ~clause str "unknown kind %S (failstop | transient | straggler)" kind

let kind_key = function
  | Fail_stop _ -> "failstop"
  | Transient _ -> "transient"
  | Straggler _ -> "straggler"

let fault_device = function
  | Fail_stop { device; _ } | Transient { device; _ } | Straggler { device; _ } ->
    device

let parse s =
  let parts =
    List.filter
      (fun (_, p) -> String.trim p <> "")
      (List.mapi (fun i p -> (i + 1, p)) (String.split_on_char ';' s))
  in
  (* Duplicate targets are rejected: two clauses of the same kind
     naming the same device (or both the wildcard) would silently
     compose — a doubled transient draw, two fail times — which is
     never what a sweep means.  The error names both clauses. *)
  let seen = Hashtbl.create 8 in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (clause, p) :: rest ->
      let str = String.trim p in
      let* f = parse_one ~clause str in
      let key = (kind_key f, fault_device f) in
      (match Hashtbl.find_opt seen key with
       | Some first ->
         clause_err ~clause str "duplicate %s for device %s (first at clause %d)"
           (kind_key f)
           (device_to_string (fault_device f))
           first
       | None ->
         Hashtbl.add seen key clause;
         go (f :: acc) rest)
  in
  go [] parts

(* ---------- retry policy ---------- *)

type retry = {
  max_retries : int;
  backoff_base_us : float;
  backoff_cap_us : float;
}

let default_retry = { max_retries = 4; backoff_base_us = 50.0; backoff_cap_us = 800.0 }

(* ---------- the injector ---------- *)

type t = { spec : spec; inj_seed : int; streams : Rng.t array }

let create ~seed ~devices spec =
  List.iter
    (fun f ->
      let d = fault_device f in
      if d >= devices then
        invalid_arg
          (Printf.sprintf "Fault.create: fault %s names device %d of %d"
             (fault_to_string f) d devices))
    spec;
  let root = Rng.create seed in
  (* One independent stream per device, split in index order: the draws
     of device i never move device j's stream, so adding a fault on one
     device cannot perturb another's decisions. *)
  let streams = Array.make (max 1 devices) root in
  for i = 0 to devices - 1 do
    streams.(i) <- Rng.split root
  done;
  { spec; inj_seed = seed; streams }

let seed t = t.inj_seed

let matches device fault_dev = fault_dev < 0 || fault_dev = device

let fail_at t device =
  List.fold_left
    (fun acc f ->
      match f with
      | Fail_stop { device = d; at_us } when matches device d -> Float.min acc at_us
      | _ -> acc)
    infinity t.spec

let latency_factor t ~device ~at_us =
  List.fold_left
    (fun acc f ->
      match f with
      | Straggler { device = d; factor; from_us; until_us }
        when matches device d && at_us >= from_us && at_us < until_us ->
        acc *. factor
      | _ -> acc)
    1.0 t.spec

let draw_transient t ~device ~at_us =
  List.fold_left
    (fun aborted f ->
      match f with
      | Transient { device = d; prob; from_us; until_us }
        when matches device d && at_us >= from_us && at_us < until_us ->
        (* Draw even when already aborted: the number of draws per
           dispatch depends only on the spec and the dispatch time, so
           the stream position stays aligned across runs. *)
        let u = Rng.uniform t.streams.(device) in
        aborted || u < prob
      | _ -> aborted)
    false t.spec

let backoff_us t ~retry ~device ~attempt =
  let expo = retry.backoff_base_us *. (2.0 ** float_of_int attempt) in
  Float.min retry.backoff_cap_us expo
  +. Rng.float t.streams.(device) retry.backoff_base_us
