module Rng = Cortex_util.Rng

type fault =
  | Fail_stop of { device : int; at_us : float }
  | Transient of { device : int; prob : float; from_us : float; until_us : float }
  | Straggler of { device : int; factor : float; from_us : float; until_us : float }

type spec = fault list

(* ---------- the spec grammar ---------- *)

let device_to_string d = if d < 0 then "*" else string_of_int d

let fault_to_string = function
  | Fail_stop { device; at_us } ->
    Printf.sprintf "failstop@%s:%g" (device_to_string device) at_us
  | Transient { device; prob; from_us; until_us } ->
    Printf.sprintf "transient@%s:%g,%g,%g" (device_to_string device) prob from_us
      until_us
  | Straggler { device; factor; from_us; until_us } ->
    Printf.sprintf "straggler@%s:%g,%g,%g" (device_to_string device) factor from_us
      until_us

let to_string spec = String.concat ";" (List.map fault_to_string spec)

let ( let* ) r f = Result.bind r f

let parse_device s =
  let s = String.trim s in
  if s = "*" then Ok (-1)
  else
    match int_of_string_opt s with
    | Some d when d >= 0 -> Ok d
    | _ -> Error (Printf.sprintf "bad device %S (an index or *)" s)

let parse_floats s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match float_of_string_opt (String.trim p) with
      | Some f -> go (f :: acc) rest
      | None -> Error (Printf.sprintf "bad number %S" p))
  in
  go [] parts

let parse_one str =
  let* kind, rest =
    match String.index_opt str '@' with
    | Some i ->
      Ok
        ( String.trim (String.sub str 0 i),
          String.sub str (i + 1) (String.length str - i - 1) )
    | None -> Error (Printf.sprintf "fault %S: missing @device" str)
  in
  let* dev, args =
    match String.index_opt rest ':' with
    | Some i ->
      Ok (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
    | None -> Error (Printf.sprintf "fault %S: missing :args" str)
  in
  let* device = parse_device dev in
  let* nums = parse_floats args in
  match (kind, nums) with
  | "failstop", [ at_us ] ->
    if at_us >= 0.0 then Ok (Fail_stop { device; at_us })
    else Error (Printf.sprintf "fault %S: fail time must be >= 0" str)
  | "transient", [ prob; from_us; until_us ] ->
    if not (prob > 0.0 && prob <= 1.0) then
      Error (Printf.sprintf "fault %S: probability must be in (0, 1]" str)
    else if from_us > until_us then Error (Printf.sprintf "fault %S: from > until" str)
    else Ok (Transient { device; prob; from_us; until_us })
  | "straggler", [ factor; from_us; until_us ] ->
    if not (factor >= 1.0) then
      Error (Printf.sprintf "fault %S: straggler factor must be >= 1" str)
    else if from_us > until_us then Error (Printf.sprintf "fault %S: from > until" str)
    else Ok (Straggler { device; factor; from_us; until_us })
  | ("failstop" | "transient" | "straggler"), _ ->
    Error (Printf.sprintf "fault %S: wrong number of arguments" str)
  | _ -> Error (Printf.sprintf "fault %S: unknown kind %S" str kind)

let parse s =
  let parts =
    List.filter
      (fun p -> String.trim p <> "")
      (String.split_on_char ';' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      let* f = parse_one (String.trim p) in
      go (f :: acc) rest
  in
  go [] parts

(* ---------- retry policy ---------- *)

type retry = {
  max_retries : int;
  backoff_base_us : float;
  backoff_cap_us : float;
}

let default_retry = { max_retries = 4; backoff_base_us = 50.0; backoff_cap_us = 800.0 }

(* ---------- the injector ---------- *)

type t = { spec : spec; inj_seed : int; streams : Rng.t array }

let fault_device = function
  | Fail_stop { device; _ } | Transient { device; _ } | Straggler { device; _ } ->
    device

let create ~seed ~devices spec =
  List.iter
    (fun f ->
      let d = fault_device f in
      if d >= devices then
        invalid_arg
          (Printf.sprintf "Fault.create: fault %s names device %d of %d"
             (fault_to_string f) d devices))
    spec;
  let root = Rng.create seed in
  (* One independent stream per device, split in index order: the draws
     of device i never move device j's stream, so adding a fault on one
     device cannot perturb another's decisions. *)
  let streams = Array.make (max 1 devices) root in
  for i = 0 to devices - 1 do
    streams.(i) <- Rng.split root
  done;
  { spec; inj_seed = seed; streams }

let seed t = t.inj_seed

let matches device fault_dev = fault_dev < 0 || fault_dev = device

let fail_at t device =
  List.fold_left
    (fun acc f ->
      match f with
      | Fail_stop { device = d; at_us } when matches device d -> Float.min acc at_us
      | _ -> acc)
    infinity t.spec

let latency_factor t ~device ~at_us =
  List.fold_left
    (fun acc f ->
      match f with
      | Straggler { device = d; factor; from_us; until_us }
        when matches device d && at_us >= from_us && at_us < until_us ->
        acc *. factor
      | _ -> acc)
    1.0 t.spec

let draw_transient t ~device ~at_us =
  List.fold_left
    (fun aborted f ->
      match f with
      | Transient { device = d; prob; from_us; until_us }
        when matches device d && at_us >= from_us && at_us < until_us ->
        (* Draw even when already aborted: the number of draws per
           dispatch depends only on the spec and the dispatch time, so
           the stream position stays aligned across runs. *)
        let u = Rng.uniform t.streams.(device) in
        aborted || u < prob
      | _ -> aborted)
    false t.spec

let backoff_us t ~retry ~device ~attempt =
  let expo = retry.backoff_base_us *. (2.0 ** float_of_int attempt) in
  Float.min retry.backoff_cap_us expo
  +. Rng.float t.streams.(device) retry.backoff_base_us
