(** A seeded, deterministic fault model for the serving simulation.

    The engine built in the earlier serving PRs assumes a perfect fleet:
    no device ever dies, no kernel ever aborts, no window ever runs
    slow.  This module gives the simulated devices a failure model the
    engine can inject into its per-device clocks and respond to —
    fail-stop ({e this device is gone from time t}), transient kernel
    faults ({e a window's execution aborts with probability p inside
    this interval}) and stragglers ({e this device runs k times slower
    inside this interval}).

    Everything is deterministic in a single seed: the injector derives
    one {!Cortex_util.Rng.t} stream per device via [Rng.split], so the
    transient draws and backoff jitter of one device never perturb
    another's, and two runs with the same seed, spec and trace take
    bit-identical decisions.  Times are microseconds on the engine's
    simulated clock (the same clock arrivals and device pricing use). *)

type fault =
  | Fail_stop of { device : int; at_us : float }
      (** the device fails permanently at [at_us]: windows in flight
          abort at that instant and must fail over *)
  | Transient of { device : int; prob : float; from_us : float; until_us : float }
      (** a window dispatched on the device inside [from_us, until_us)
          aborts with probability [prob] (detected at what would have
          been its completion; the wasted execution still occupies the
          device) *)
  | Straggler of { device : int; factor : float; from_us : float; until_us : float }
      (** device-side latency of windows dispatched inside
          [from_us, until_us) is multiplied by [factor] *)

type spec = fault list
(** [device = -1] (spelled [*] in the grammar) applies a fault to every
    device. *)

val parse : string -> (spec, string) result
(** Parse the CLI fault grammar: semicolon-separated faults, each
    [kind@device:args] with [device] an index or [*]:
    {v
      failstop@1:5000                fail-stop device 1 at t=5000us
      transient@*:0.05,0,1e6        every window in [0,1e6) aborts w.p. 0.05
      straggler@0:3,2000,8000       device 0 runs 3x slower in [2000,8000)
    v}
    Validates: [at >= 0], [0 < prob <= 1], [factor >= 1],
    [from <= until].  Two clauses of the same kind naming the same
    device (or both naming [*]) are rejected as duplicates.  Every
    error names the offending clause: its 1-based position, its text
    and what was wrong with it (including which argument of a
    wrong-arity clause failed to parse). *)

val to_string : spec -> string
(** Inverse of {!parse} (up to float formatting). *)

val fault_to_string : fault -> string

(** {2 Retry policy} *)

type retry = {
  max_retries : int;  (** transient re-executions per window before it is lost *)
  backoff_base_us : float;  (** first backoff step; also the jitter bound *)
  backoff_cap_us : float;  (** exponential backoff is capped here *)
}

val default_retry : retry
(** [{ max_retries = 4; backoff_base_us = 50.0; backoff_cap_us = 800.0 }] *)

(** {2 The injector} *)

type t
(** One drain's worth of fault decisions: the spec plus one rng stream
    per device, all derived from a single seed. *)

val create : seed:int -> devices:int -> spec -> t
(** Raises [Invalid_argument] if the spec names a device index
    [>= devices]. *)

val seed : t -> int

val fail_at : t -> int -> float
(** When the device fail-stops ([infinity] if never): the earliest
    matching {!Fail_stop}. *)

val latency_factor : t -> device:int -> at_us:float -> float
(** Product of the {!Straggler} factors covering a dispatch at [at_us]
    on [device] (1.0 when none). *)

val draw_transient : t -> device:int -> at_us:float -> bool
(** Whether a window dispatched at [at_us] on [device] aborts with a
    transient fault.  Draws one uniform from the device's stream per
    covering {!Transient}; consumes no randomness when none covers, so
    fault-free devices stay deterministic regardless of spec order. *)

val backoff_us : t -> retry:retry -> device:int -> attempt:int -> float
(** Capped exponential backoff with jitter for re-dispatching after the
    [attempt]-th transient abort:
    [min cap (base * 2^attempt) + uniform [0, base)] drawn from the
    device's stream. *)
