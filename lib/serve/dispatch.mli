(** Multi-device dispatch for the serving engine.

    The engine's drain plays batch windows through a set of simulated
    devices, each with its own free-time clock and accounting.  The
    dispatch policy decides which device a ready window lands on; the
    window then occupies that device from [max(device free, ready)]
    until completion, priced on {e that device's} backend model —
    device lists may be heterogeneous (2 GPUs + 1 Intel host, say). *)

module Backend = Cortex_backend.Backend

type policy =
  | Round_robin  (** cycle through the devices in index order *)
  | Least_loaded
      (** earliest-free device (ties to the lowest index) — the work
          balancer of choice for heterogeneous device lists, where the
          faster device frees up more often *)
  | Size_affinity
      (** route by the window's power-of-two node-count bucket
          ([bucket mod num_devices]) — windows of similar shape share a
          device, keeping each device's working set (and a per-device
          shape cache, were it split) homogeneous *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** Accepts the long names and the abbreviations [rr]/[ll]/[sa]. *)

(** One simulated device: its backend model, free-time clock, and
    cumulative accounting for the drain's device reports. *)
type device = {
  dev_index : int;
  dev_backend : Backend.t;
  mutable dev_free_us : float;
      (** when the device next falls idle; [neg_infinity] when it has
          never run (so a window dispatches at its own ready time, even
          a negative one) *)
  mutable dev_busy_us : float;
  mutable dev_windows : int;
  mutable dev_requests : int;
  mutable dev_nodes : int;
  mutable dev_occ_weight : float;  (** busy-time-weighted occupancy sum *)
  mutable dev_failed : bool;
      (** fail-stopped: the device takes no further windows; set by the
          engine's fault handling via {!fail} *)
}

type t

val create : policy:policy -> Backend.t list -> t
(** Fresh idle devices, one per backend, in list order.  Raises
    [Invalid_argument] on an empty list. *)

val num_devices : t -> int
val devices : t -> device array
val policy : t -> policy

val fail : device -> unit
(** Mark a device fail-stopped: {!select} never picks it again. *)

val alive : t -> int
(** How many devices have not fail-stopped. *)

val size_bucket : int -> int
(** [size_bucket n] is [floor (log2 (max 1 n))]: node counts
    [2^b .. 2^(b+1)-1] share bucket [b]. *)

val select : t -> nodes:int -> device
(** Pick the device for a window of [nodes] total nodes, per the
    policy, among the devices that have not {!fail}-stopped:
    round-robin advances its cursor past dead devices, least-loaded
    folds over the survivors, size-affinity redistributes its buckets
    over the survivors in index order.  Raises [Invalid_argument] when
    every device has failed. *)

val commit :
  device ->
  dispatch_us:float ->
  completion_us:float ->
  requests:int ->
  nodes:int ->
  occupancy:float ->
  unit
(** Record a window's execution on its device: advances the free clock
    to [completion_us] and accumulates busy time, window/request/node
    counts and busy-weighted occupancy. *)

val mean_occupancy : device -> float
(** Busy-time-weighted mean occupancy of everything committed so far
    (0 for an idle device). *)
