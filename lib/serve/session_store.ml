type policy = Lru | Ttl

let policy_to_string = function Lru -> "lru" | Ttl -> "ttl"

let policy_of_string = function
  | "lru" -> Some Lru
  | "ttl" -> Some Ttl
  | _ -> None

type config = {
  budget_bytes : int option;
  ttl_us : float option;
  policy : policy;
  spill_dir : string option;
  pack_window : int;
  pack_wait_us : float;
}

let default_config =
  {
    budget_bytes = None;
    ttl_us = None;
    policy = Lru;
    spill_dir = None;
    pack_window = 1;
    pack_wait_us = 0.0;
  }

type stats = {
  st_live : int;
  st_bytes : int;
  st_budget_bytes : int option;
  st_spilled : int;
  st_evictions : int;
  st_expired : int;
  st_spills : int;
  st_restores : int;
  st_spilled_bytes : int;
  st_spill_us : float;
  st_restore_us : float;
}

type entry = { mutable e_bytes : int; mutable e_last_us : float }

(* A held spill: bytes live in memory, or on disk when the store is
   file-backed (the record then only carries the size). *)
type spill_rec = { sp_data : string option; sp_bytes : int }

(* Per-name lifetime counters, surviving evict/restore cycles (the
   session record itself is destroyed on eviction). *)
type counters = { mutable c_evictions : int; mutable c_restores : int }

type t = {
  mutable cfg : config;
  live : (string, entry) Hashtbl.t;
  spilled : (string, spill_rec) Hashtbl.t;
  counts : (string, counters) Hashtbl.t;
  mutable total_bytes : int;
  mutable evictions : int;
  mutable expired : int;
  mutable spills : int;
  mutable restores : int;
  mutable spilled_bytes : int;
  mutable spill_us : float;
  mutable restore_us : float;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    live = Hashtbl.create 64;
    spilled = Hashtbl.create 64;
    counts = Hashtbl.create 64;
    total_bytes = 0;
    evictions = 0;
    expired = 0;
    spills = 0;
    restores = 0;
    spilled_bytes = 0;
    spill_us = 0.0;
    restore_us = 0.0;
  }

let config t = t.cfg
let set_budget t b = t.cfg <- { t.cfg with budget_bytes = b }

let counters_of t name =
  match Hashtbl.find_opt t.counts name with
  | Some c -> c
  | None ->
    let c = { c_evictions = 0; c_restores = 0 } in
    Hashtbl.replace t.counts name c;
    c

let touch t name ~bytes ~now_us =
  match Hashtbl.find_opt t.live name with
  | Some e ->
    t.total_bytes <- t.total_bytes - e.e_bytes + bytes;
    e.e_bytes <- bytes;
    e.e_last_us <- Float.max e.e_last_us now_us
  | None ->
    Hashtbl.replace t.live name { e_bytes = bytes; e_last_us = now_us };
    t.total_bytes <- t.total_bytes + bytes

let bytes t = t.total_bytes

let session_bytes t name =
  Option.map (fun e -> e.e_bytes) (Hashtbl.find_opt t.live name)

(* ---------- priced spill/restore costs ---------- *)

(* Deterministic cost models, in the spirit of the backend latency
   tables: a fixed submission overhead plus a bytes-over-bandwidth
   term (~2 GB/s out, ~4 GB/s back — restores read sequentially from
   a warm page cache).  Priced, never measured, so chaos-mode drains
   that evict stay byte-reproducible. *)
let spill_cost_us ~bytes = 20.0 +. (float_of_int bytes /. 2048.0)
let restore_cost_us ~bytes = 15.0 +. (float_of_int bytes /. 4096.0)

(* ---------- victim selection ---------- *)

let victims t ~now_us =
  let all =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.live []
    |> List.sort (fun (na, ea) (nb, eb) ->
           let c = compare ea.e_last_us eb.e_last_us in
           if c <> 0 then c else compare na nb)
  in
  let expired, alive =
    match t.cfg.ttl_us with
    | Some ttl -> List.partition (fun (_, e) -> now_us -. e.e_last_us > ttl) all
    | None -> ([], all)
  in
  let over_budget =
    match t.cfg.budget_bytes with
    | None -> []
    | Some budget ->
      (* [alive] is already least-recent-first, which is also
         nearest-expiry-first under the uniform TTL both policies
         share today — [Ttl] diverges from [Lru] only if per-session
         TTLs ever appear. *)
      let remaining =
        List.fold_left (fun acc (_, e) -> acc + e.e_bytes) 0 alive
      in
      let rec take acc remaining = function
        | [] -> List.rev acc
        | _ when remaining <= budget -> List.rev acc
        | (name, e) :: rest -> take ((name, `Budget) :: acc) (remaining - e.e_bytes) rest
      in
      take [] remaining alive
  in
  List.map (fun (name, _) -> (name, `Ttl)) expired @ over_budget

(* ---------- spilling ---------- *)

let spill_path t name =
  match t.cfg.spill_dir with
  | None -> None
  | Some dir ->
    (* Session names are client strings: sanitize for the filesystem
       and disambiguate sanitization collisions with a digest of the
       raw name. *)
    let safe =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
        name
    in
    let tag = String.sub (Digest.to_hex (Digest.string name)) 0 8 in
    Some (Filename.concat dir (Printf.sprintf "%s-%s.csx" safe tag))

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let drop_live t name =
  match Hashtbl.find_opt t.live name with
  | None -> ()
  | Some e ->
    t.total_bytes <- t.total_bytes - e.e_bytes;
    Hashtbl.remove t.live name

let count_eviction t name ~expired =
  t.evictions <- t.evictions + 1;
  if expired then t.expired <- t.expired + 1;
  (counters_of t name).c_evictions <- (counters_of t name).c_evictions + 1

let spill t name ~data ~now_us:_ ~expired =
  drop_live t name;
  count_eviction t name ~expired;
  let size = String.length data in
  (match spill_path t name with
  | None -> Hashtbl.replace t.spilled name { sp_data = Some data; sp_bytes = size }
  | Some path ->
    Option.iter ensure_dir t.cfg.spill_dir;
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc data);
    Hashtbl.replace t.spilled name { sp_data = None; sp_bytes = size });
  t.spills <- t.spills + 1;
  t.spilled_bytes <- t.spilled_bytes + size;
  let cost = spill_cost_us ~bytes:size in
  t.spill_us <- t.spill_us +. cost;
  cost

let drop t name =
  drop_live t name;
  count_eviction t name ~expired:false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let has_spill t name =
  Hashtbl.mem t.spilled name
  || match spill_path t name with Some p -> Sys.file_exists p | None -> false

let restore t name =
  let finish data =
    Hashtbl.remove t.spilled name;
    (match spill_path t name with
    | Some p when Sys.file_exists p -> Sys.remove p
    | _ -> ());
    t.restores <- t.restores + 1;
    (counters_of t name).c_restores <- (counters_of t name).c_restores + 1;
    let cost = restore_cost_us ~bytes:(String.length data) in
    t.restore_us <- t.restore_us +. cost;
    Some (data, cost)
  in
  match Hashtbl.find_opt t.spilled name with
  | Some { sp_data = Some data; _ } -> finish data
  | Some { sp_data = None; _ } | None -> (
    (* File-backed, or a fresh store finding its predecessor's files
       after an engine restart. *)
    match spill_path t name with
    | Some p when Sys.file_exists p -> (
      match read_file p with data -> finish data | exception Sys_error _ -> None)
    | _ -> None)

let forget t name =
  drop_live t name;
  Hashtbl.remove t.spilled name;
  (match spill_path t name with
  | Some p when Sys.file_exists p -> ( try Sys.remove p with Sys_error _ -> ())
  | _ -> ());
  Hashtbl.remove t.counts name

let evictions_of t name =
  match Hashtbl.find_opt t.counts name with Some c -> c.c_evictions | None -> 0

let restores_of t name =
  match Hashtbl.find_opt t.counts name with Some c -> c.c_restores | None -> 0

let stats t =
  {
    st_live = Hashtbl.length t.live;
    st_bytes = t.total_bytes;
    st_budget_bytes = t.cfg.budget_bytes;
    st_spilled = Hashtbl.length t.spilled;
    st_evictions = t.evictions;
    st_expired = t.expired;
    st_spills = t.spills;
    st_restores = t.restores;
    st_spilled_bytes = t.spilled_bytes;
    st_spill_us = t.spill_us;
    st_restore_us = t.restore_us;
  }
