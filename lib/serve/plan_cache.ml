module Backend = Cortex_backend.Backend
module Lower = Cortex_lower.Lower
module Runtime = Cortex_runtime.Runtime
module Tuner = Cortex_runtime.Tuner
module Linearizer = Cortex_linearizer.Linearizer
module Schedule = Cortex_ilir.Schedule
module Stats = Cortex_util.Stats
module Obs = Cortex_obs.Obs

(* A per-shape-class cache of tuned loop-schedule plans.

   The serving engine compiles a model once, but the best loop schedule
   depends on the backend it lands on and on how much parallelism the
   linearized batch exposes — a size-class worth of shape information.
   The first window of a class pays for a loop-schedule search
   (Tuner.tune_loops, a candidate-count budget, so the search is a
   deterministic function of the compiled artifact and the
   linearization); every later window of the class reuses the applied
   artifact.  The tuning wall clock is host time spent once per class at
   first contact — the moral equivalent of a JIT warmup — and is
   recorded in the stats and through Obs, never charged to the
   simulated device clock (which must stay a pure function of the trace
   for the chaos tests' determinism). *)

type entry = {
  pe_backend : string;  (* Backend.short *)
  pe_bucket : int;  (* Dispatch.size_bucket of the window's node count *)
  pe_packed : bool;  (* tuned on a packed multi-session window *)
  pe_plan : Schedule.plan;
  pe_compiled : Lower.compiled;  (* the plan applied to the engine's artifact *)
  pe_default_us : float;
  pe_tuned_us : float;
  pe_tune_ms : float;  (* host wall time of the search *)
}

type stats = {
  pc_entries : int;
  pc_hits : int;
  pc_misses : int;
  pc_tune_ms : float;
}

type t = {
  budget : int;
  table : (string * int * bool, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable tune_ms : float;
}

let create ?(budget = 16) () =
  if budget < 1 then invalid_arg "Plan_cache.create: budget must be >= 1";
  { budget; table = Hashtbl.create 8; hits = 0; misses = 0; tune_ms = 0.0 }

let budget t = t.budget

let find_or_tune ?obs ?(packed = false) t ~(compiled : Lower.compiled)
    ~(backend : Backend.t) ~(lin : Linearizer.t) ~nodes =
  (* Packed multi-session windows tune in their own key space: their
     batch tables are level-merged session deltas, shaped nothing like
     a regular forest window of the same node count, so sharing a plan
     across the two would let whichever shape tuned first dictate the
     other's schedule. *)
  let bucket = Dispatch.size_bucket nodes in
  let key = (backend.Backend.short, bucket, packed) in
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    Obs.incr obs "plan_cache.hits";
    (e, true)
  | None ->
    t.misses <- t.misses + 1;
    let ranked, wall_us =
      Stats.time_us (fun () -> Tuner.tune_loops ~budget:t.budget compiled ~backend lin)
    in
    (* tune_loops always includes the empty plan, so both the winner and
       the default baseline are present. *)
    let best_plan, best_report = List.hd ranked in
    let _, default_report = List.find (fun (p, _) -> p = []) ranked in
    let applied =
      if best_plan = [] then compiled else Lower.apply_plan best_plan compiled
    in
    let tune_ms = wall_us /. 1000.0 in
    let e =
      {
        pe_backend = backend.Backend.short;
        pe_bucket = bucket;
        pe_packed = packed;
        pe_plan = best_plan;
        pe_compiled = applied;
        pe_default_us =
          default_report.Runtime.latency.Backend.total_us;
        pe_tuned_us = best_report.Runtime.latency.Backend.total_us;
        pe_tune_ms = tune_ms;
      }
    in
    Hashtbl.replace t.table key e;
    t.tune_ms <- t.tune_ms +. tune_ms;
    Obs.incr obs "plan_cache.misses";
    Obs.observe obs "plan_cache.tune_ms" tune_ms;
    (e, false)

(* Seed the cache with a plan tuned ahead of time (a bundle's tuned
   plans): the applied artifact is ready before the first window, so
   first contact with the class is a hit and costs no tuning wall
   time. *)
let preload t ~(backend_short : string) ~bucket ~plan ~(compiled : Lower.compiled)
    ~default_us ~tuned_us =
  let applied = if plan = [] then compiled else Lower.apply_plan plan compiled in
  (* Bundles only carry regular-window plans; packed classes re-tune at
     first contact. *)
  Hashtbl.replace t.table (backend_short, bucket, false)
    {
      pe_backend = backend_short;
      pe_bucket = bucket;
      pe_packed = false;
      pe_plan = plan;
      pe_compiled = applied;
      pe_default_us = default_us;
      pe_tuned_us = tuned_us;
      pe_tune_ms = 0.0;
    }

let stats t =
  {
    pc_entries = Hashtbl.length t.table;
    pc_hits = t.hits;
    pc_misses = t.misses;
    pc_tune_ms = t.tune_ms;
  }

let hit_rate s =
  let total = s.pc_hits + s.pc_misses in
  if total = 0 then 0.0 else float_of_int s.pc_hits /. float_of_int total

let entries t =
  List.sort
    (fun a b ->
      compare
        (a.pe_backend, a.pe_bucket, a.pe_packed)
        (b.pe_backend, b.pe_bucket, b.pe_packed))
    (Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  t.tune_ms <- 0.0
