(** Bounded session-table accounting: budgets, LRU/TTL eviction policy
    and spill/restore bookkeeping for the engine's pinned sessions.

    PR 7's sessions hold per-node hidden states on their device forever
    — a million-user fleet cannot.  This module is the pure bookkeeping
    half of the bounded table: it tracks each live session's accounted
    bytes (layout + state rows, priced by
    {!Cortex_linearizer.Linearizer.layout_bytes} and
    [state_rows_bytes]) and its last-use simulated timestamp, decides
    {e which} sessions a drain must evict ({!victims}: TTL expiries
    first, then least-recently-used — or nearest-expiry under the [Ttl]
    policy — until the table fits the budget), and holds the spilled
    {!Cortex_runtime.Checkpoint} session sections until the
    conversation is re-admitted.  The engine keeps the sessions
    themselves; the store never touches tensors or devices.

    Spills live in memory by default, or as one [.csx] file per session
    under [spill_dir] — the file-backed form is what lets a
    conversation survive a full engine restart from a bundle.

    Spill and restore costs are {e priced}, not measured: a
    deterministic function of the byte count (fixed overhead plus a
    bytes-over-bandwidth term, like the backend latency models), so
    chaos-mode drains that evict stay byte-reproducible. *)

type policy =
  | Lru  (** Budget evicts the least-recently-used session first. *)
  | Ttl
      (** Budget evicts the session nearest its TTL expiry first —
          with a uniform [ttl_us] this coincides with LRU order; the
          policies differ only under per-session TTLs. *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type config = {
  budget_bytes : int option;
      (** Accounted-bytes ceiling across live sessions; [None] = unbounded. *)
  ttl_us : float option;
      (** Idle time after which a session expires; [None] = never. *)
  policy : policy;  (** Victim order for the budget pass. *)
  spill_dir : string option;
      (** Directory for spill files; [None] keeps spills in memory. *)
  pack_window : int;
      (** Most session tokens one packed forest window may merge;
          1 disables packing (every token is its own size-1 window,
          the PR 7 behaviour). *)
  pack_wait_us : float;
      (** How far past a pack's first member arrival a later token may
          land and still join it; 0 packs only same-instant tokens. *)
}

val default_config : config
(** Unbounded, no TTL, [Lru], in-memory spills, packing off — the PR 7
    behaviour. *)

type stats = {
  st_live : int;  (** Sessions currently accounted (live in the engine). *)
  st_bytes : int;  (** Their accounted bytes. *)
  st_budget_bytes : int option;  (** The ceiling in force, if any. *)
  st_spilled : int;  (** Sessions currently evicted with a spill held. *)
  st_evictions : int;  (** Cumulative evictions (TTL + budget). *)
  st_expired : int;  (** Of which TTL expiries. *)
  st_spills : int;  (** Cumulative spill records written. *)
  st_restores : int;  (** Cumulative spill records consumed. *)
  st_spilled_bytes : int;  (** Cumulative serialized bytes spilled. *)
  st_spill_us : float;  (** Cumulative priced spill cost. *)
  st_restore_us : float;  (** Cumulative priced restore cost. *)
}

type t

val create : ?config:config -> unit -> t
(** A store with no live sessions.  With a file-backed [spill_dir] the
    directory is created on first spill, not here. *)

val config : t -> config

val set_budget : t -> int option -> unit
(** Change the byte ceiling in place — takes effect at the next
    eviction pass (the harness's budget-shrink lifecycle op). *)

val touch : t -> string -> bytes:int -> now_us:float -> unit
(** Account [name] as live at [bytes] total, last used at [now_us].
    Creates the entry on first touch (admission and re-admission both
    land here). *)

val bytes : t -> int
(** Accounted bytes across live sessions. *)

val session_bytes : t -> string -> int option
(** Accounted bytes of one live session. *)

val victims : t -> now_us:float -> (string * [ `Ttl | `Budget ]) list
(** The sessions an eviction pass at [now_us] must remove, in eviction
    order: every live session idle past [ttl_us] first, then — if the
    survivors still exceed [budget_bytes] — sessions in policy order
    until the table fits.  Deterministic: ties break on the session
    name.  Empty when neither bound is configured or the table fits. *)

val spill : t -> string -> data:string -> now_us:float -> expired:bool -> float
(** Evict [name]: drop its live accounting and hold [data] (a
    serialized checkpoint session section) for re-admission — in
    memory, or as a file under [spill_dir].  Returns the priced spill
    cost in microseconds and folds it into {!stats}. *)

val drop : t -> string -> unit
(** Evict [name] without keeping a spill (counts the eviction, not a
    spill): used when there is no state worth keeping. *)

val has_spill : t -> string -> bool
(** A spill is held for [name] — in memory or on disk (a fresh engine
    finds the files its predecessor wrote). *)

val restore : t -> string -> (string * float) option
(** Consume the spill held for [name]: the serialized bytes and the
    priced restore cost in microseconds.  Removes the record (and the
    file).  [None] when nothing is held. *)

val forget : t -> string -> unit
(** Remove every trace of [name]: live accounting, spill record, spill
    file, per-session counters ([Engine.close_session]). *)

val evictions_of : t -> string -> int
(** Cumulative evictions of [name], surviving evict/restore cycles. *)

val restores_of : t -> string -> int
(** Cumulative restores of [name]. *)

val stats : t -> stats

val spill_cost_us : bytes:int -> float
(** The deterministic price of spilling [bytes]. *)

val restore_cost_us : bytes:int -> float
(** The deterministic price of restoring [bytes]. *)
