module Backend = Cortex_backend.Backend

type policy = Round_robin | Least_loaded | Size_affinity

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Size_affinity -> "size-affinity"

let policy_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "size-affinity" | "sa" -> Some Size_affinity
  | _ -> None

type device = {
  dev_index : int;
  dev_backend : Backend.t;
  mutable dev_free_us : float;
  mutable dev_busy_us : float;
  mutable dev_windows : int;
  mutable dev_requests : int;
  mutable dev_nodes : int;
  mutable dev_occ_weight : float;
  mutable dev_failed : bool;
}

type t = { policy : policy; devices : device array; mutable cursor : int }

let create ~policy backends =
  if backends = [] then invalid_arg "Dispatch.create: no devices";
  let devices =
    Array.of_list
      (List.mapi
         (fun i b ->
           {
             dev_index = i;
             dev_backend = b;
             (* Idle since forever: the first window dispatches at its
                own ready time even when that time is negative. *)
             dev_free_us = Float.neg_infinity;
             dev_busy_us = 0.0;
             dev_windows = 0;
             dev_requests = 0;
             dev_nodes = 0;
             dev_occ_weight = 0.0;
             dev_failed = false;
           })
         backends)
  in
  { policy; devices; cursor = 0 }

let num_devices t = Array.length t.devices
let devices t = t.devices
let policy t = t.policy

let fail d = d.dev_failed <- true

let alive t =
  Array.fold_left (fun acc d -> if d.dev_failed then acc else acc + 1) 0 t.devices

(* Power-of-two size bucket: forests of 2^b..2^(b+1)-1 nodes share a
   bucket.  Used both by the engine's By_size windowing and by the
   size-affinity dispatch policy. *)
let size_bucket nodes =
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 (max 1 nodes)

let select t ~nodes =
  let n = Array.length t.devices in
  if alive t = 0 then invalid_arg "Dispatch.select: all devices failed";
  match t.policy with
  | Round_robin ->
    (* Skip fail-stopped devices; the cursor advances past them so the
       survivors keep alternating. *)
    let rec find k =
      let d = t.devices.((t.cursor + k) mod n) in
      if d.dev_failed then find (k + 1)
      else begin
        t.cursor <- (t.cursor + k + 1) mod n;
        d
      end
    in
    find 0
  | Least_loaded ->
    (* Earliest-free surviving device; ties go to the lowest index. *)
    let best = ref None in
    Array.iter
      (fun d ->
        if not d.dev_failed then
          match !best with
          | Some b when b.dev_free_us <= d.dev_free_us -> ()
          | _ -> best := Some d)
      t.devices;
    Option.get !best
  | Size_affinity ->
    (* Bucket-to-device assignment over the survivors, in index order:
       when a device dies its buckets redistribute over the rest. *)
    let survivors = Array.of_seq (Seq.filter (fun d -> not d.dev_failed) (Array.to_seq t.devices)) in
    survivors.(size_bucket nodes mod Array.length survivors)

let commit d ~dispatch_us ~completion_us ~requests ~nodes ~occupancy =
  let busy = completion_us -. dispatch_us in
  d.dev_free_us <- completion_us;
  d.dev_busy_us <- d.dev_busy_us +. busy;
  d.dev_windows <- d.dev_windows + 1;
  d.dev_requests <- d.dev_requests + requests;
  d.dev_nodes <- d.dev_nodes + nodes;
  d.dev_occ_weight <- d.dev_occ_weight +. (occupancy *. busy)

let mean_occupancy d =
  if d.dev_busy_us > 0.0 then d.dev_occ_weight /. d.dev_busy_us else 0.0
