(** Synthetic request traces for the serving engine.

    A trace is a time-stamped stream of inference requests — the input
    of [Engine.run_trace].  Arrival times are in microseconds on the
    engine's simulated clock (the same clock the backend latency model
    prices device time on). *)

type event = { at_us : float; structure : Cortex_ds.Structure.t }

type t = event list
(** Sorted by arrival time. *)

val poisson :
  Cortex_util.Rng.t ->
  rate_rps:float ->
  duration_ms:float ->
  gen:(Cortex_util.Rng.t -> Cortex_ds.Structure.t) ->
  t
(** Open-loop Poisson arrivals at [rate_rps] requests/second for
    [duration_ms] of simulated time; each request's structure is drawn
    from [gen] (e.g. an SST-length parse tree, a grid DAG).
    Deterministic in the rng seed. *)

val of_structures : ?spacing_us:float -> Cortex_ds.Structure.t list -> t
(** A degenerate trace: the [i]-th structure arrives at
    [i * spacing_us] (default 0 — everything arrives at once, the
    offered-load-saturated case used by the batching-policy sweeps). *)

val length : t -> int
val num_nodes : t -> int
(** Total nodes across all requests. *)
