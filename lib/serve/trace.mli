(** Synthetic request traces for the serving engine.

    A trace is a time-stamped stream of inference requests — the input
    of [Engine.run_trace].  Arrival times are in microseconds on the
    engine's simulated clock (the same clock the backend latency model
    prices device time on); the optional per-request deadline is an
    absolute point on the same clock. *)

type event = {
  at_us : float;
  deadline_us : float option;
      (** absolute completion deadline on the simulated clock; a request
          finishing after it still completes but counts as an SLO miss *)
  structure : Cortex_ds.Structure.t;
}

type t = event list
(** Sorted by arrival time ([Engine.run_trace] rejects unsorted
    traces with a typed error). *)

val poisson :
  ?deadline_us:float ->
  Cortex_util.Rng.t ->
  rate_rps:float ->
  duration_ms:float ->
  gen:(Cortex_util.Rng.t -> Cortex_ds.Structure.t) ->
  t
(** Open-loop Poisson arrivals at [rate_rps] requests/second for
    [duration_ms] of simulated time; each request's structure is drawn
    from [gen] (e.g. an SST-length parse tree, a grid DAG).
    [deadline_us] is {e relative}: each event's absolute deadline is its
    arrival plus [deadline_us].  Deterministic in the rng seed.  Raises
    [Invalid_argument] on a non-positive rate, duration or deadline. *)

val of_structures :
  ?spacing_us:float -> ?deadline_us:float -> Cortex_ds.Structure.t list -> t
(** A degenerate trace: the [i]-th structure arrives at
    [i * spacing_us] (default 0 — everything arrives at once, the
    offered-load-saturated case used by the batching-policy sweeps),
    with absolute deadline [arrival + deadline_us] when given.  Raises
    [Invalid_argument] on a negative spacing or non-positive
    deadline. *)

val length : t -> int
val num_nodes : t -> int
(** Total nodes across all requests. *)
