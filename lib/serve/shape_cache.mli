(** Shape-keyed linearization cache.

    Relay-style whole-program compilation leaves the inspector — the
    linearizer's host-side traversal — as the serving hot path.  But
    repeated requests overwhelmingly repeat {e shapes} (the same parse
    topology over different words, the same grid over different
    payloads), and every array the linearizer produces except the
    payload table is a pure function of the shape.  This cache keys
    cold linearizations by {!Cortex_linearizer.Linearizer.shape_key}
    (an exact canonical encoding — equality on keys {e is} shape
    equality, no collision handling needed) and serves repeats by
    payload re-binding ({!Linearizer.rebind_forest}): O(nodes) stores
    into a fresh payload table instead of a full traversal, numbering
    and child tables shared.

    One cache serves one compiled model: the numbering also depends on
    the model's [max_children] (child-table width), which the owning
    engine passes as a constant. *)

module Linearizer = Cortex_linearizer.Linearizer

type t

type stats = { hits : int; misses : int; entries : int }

val create : ?capacity:int -> unit -> t
(** An empty cache holding at most [capacity] shapes (default 1024).
    When the table fills, it is dropped wholesale (epoch eviction) —
    hot shapes re-enter within a request or two.  [capacity = 0]
    disables caching: every lookup is a miss that stores nothing (used
    by the benches' cold-path comparisons). *)

val find_or_linearize :
  ?obs:Cortex_obs.Obs.t ->
  t ->
  max_children:int ->
  Cortex_ds.Structure.t list ->
  Linearizer.forest * bool
(** The forest linearization of [structures], and whether it was served
    from the cache.  On a miss, runs
    {!Linearizer.run_forest}[ ~max_children] and caches the result; on a
    hit, re-binds the requests' payloads into the cached numbering.
    Raises {!Linearizer.Rejected} exactly as [run_forest] would (a
    rejection counts as neither hit nor miss), and a raising rebind
    counts as neither too — both counters move only after the work the
    cache accounts for actually succeeded.

    [obs] records the inspector work as a wall-clock span on the
    ["inspector"] track ([linearize] for a miss, [rebind] for a hit)
    and bumps the [cache.hits]/[cache.misses] counters. *)

val put :
  t ->
  max_children:int ->
  Cortex_ds.Structure.t list ->
  Linearizer.forest ->
  string option
(** Insert a forest produced outside the cache — a delta extension —
    under [structures]' shape key, making it available for hits (a
    session failover re-binds its pinned conversation through the
    cache).  Moves neither counter; respects capacity and epoch
    eviction; keeps an existing entry for the same key; no-op when
    caching is disabled.  Returns the key when this call actually
    inserted an entry ([None] for an existing key or a disabled cache)
    so the publisher can later {!remove} exactly what it added. *)

val remove : t -> string -> unit
(** Drop the entry under [key] if present.  Counters never move; a key
    already gone (epoch flush) is a no-op.  Closing or evicting a
    session frees its published layouts through here instead of
    leaving them parked until the next flush. *)

val stats : t -> stats
(** Cumulative hit/miss counters and current entry count. *)

val hit_rate : stats -> float
(** Hits over lookups, 0 when no lookups happened. *)

val clear : t -> unit
(** Drop all entries and zero the counters. *)
