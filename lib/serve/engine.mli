(** The cross-request serving engine.

    The paper's dynamic batching (§4.2, App. B) batches the independent
    nodes {e within} one input structure.  A production server instead
    sees a stream of small independent requests — the setting Cavs and
    Jeong et al.'s recursion work attack with {e cross-instance} dynamic
    batching.  This engine closes that gap: it owns one compiled model
    (model persistence, §5.3 — compile once, serve forever) and
    processes a queue of inference requests by {e forest linearization}:
    the structures of a batch window are merged and linearized as one
    forest ({!Cortex_linearizer.Linearizer.run_forest}), so a single
    kernel sequence — one launch per level — covers every request in the
    window, amortizing kernel launches and filling the device's lanes
    with the union of the requests' per-level batches.

    The engine is the intended public entry point of the stack; the
    lower-level [Runtime.compile]/[execute]/[simulate] functions remain
    as documented thin wrappers for single-structure use.

    Two ways in:
    - {b serving simulation}: {!submit} requests with arrival times (or
      {!run_trace} a whole {!Trace.t}), then {!drain}; windows form
      according to the {!policy}, each window's forest is linearized for
      real (measured wall clock, through a shape-keyed cache — repeated
      shapes skip the inspector and are payload-rebound instead), a
      {!Dispatch.policy} spreads the windows across the engine's
      simulated devices (possibly heterogeneous), and you get
      per-request reports plus throughput/p50/p99 aggregates,
      per-device utilization/occupancy accounting and cache hit rates;
    - {b numeric execution}: {!execute} a forest of structures and read
      bitwise-exact per-request states back through the span tables
      (also shape-cached; a hit is bitwise identical to a cold run).

    {b Fault tolerance.}  With a {!Fault.spec} installed the drain plays
    its windows against an imperfect fleet: fail-stopped devices leave
    the dispatch pool (in-flight windows abort at the instant of death
    and {e fail over} to a survivor, re-binding through the shape cache
    — never re-linearizing), transient kernel aborts are {e retried}
    with capped exponential backoff until the retry budget runs out, and
    stragglers are priced through
    {!Cortex_backend.Backend.scale_latency}.  Under overload the engine
    {e sheds} load at an optional queue cap (a typed {!Shed} rejection,
    not an exception) and can {e degrade} its batching policy past a
    queue-depth watermark.  Per-request deadlines feed an SLO block in
    the summary: on-time counts, deadline misses and goodput (on-time
    completions per second) next to raw throughput.

    Installing a fault spec — even an empty one — puts the drain in
    {e chaos mode}: the simulated clock charges zero linearization cost
    instead of the measured host wall clock, making the whole summary a
    pure function of (seed, spec, trace) so runs can be diffed
    byte-for-byte in CI. *)

module Linearizer = Cortex_linearizer.Linearizer
module Runtime = Cortex_runtime.Runtime
module M = Cortex_models.Models_common

(** {2 Batching policies} *)

type bucketing =
  | Fifo  (** window over the queue in arrival order *)
  | By_size
      (** bucket queued requests by size (power-of-two node count)
          before windowing, so a window's trees are similarly shaped and
          the forest's levels stay uniformly wide *)

type policy = {
  max_batch : int;  (** close a window when it holds this many requests *)
  max_wait_us : float;
      (** ... or when the oldest member has waited this long *)
  bucketing : bucketing;
}

val default_policy : policy
(** [{ max_batch = 8; max_wait_us = 200.0; bucketing = Fifo }] *)

(** {2 Errors} *)

type error =
  | Kind_mismatch of {
      expected : Cortex_ds.Structure.kind;
      got : Cortex_ds.Structure.kind;
    }
      (** e.g. a DAG (shared subtrees) submitted to a tree model — the
          guard that keeps per-child traversal from revisiting nodes *)
  | Rejected of Linearizer.rejection
      (** fanout beyond the model's [max_children], mixed kinds, … *)
  | Shed of { cap : int }
      (** the queue was at its cap — load shedding, counted in the
          summary's SLO block, not a caller error *)
  | Unsorted_trace of { index : int; at_us : float; prev_us : float }
      (** [run_trace] saw an event arriving before its predecessor *)

exception Error of error

val error_to_string : error -> string

(** {2 Configuration} *)

(** Everything {!create} is configured by, grouped by concern.  The
    record replaces the fifteen labelled optional arguments the old
    entry point took; {!Config.make} is the migration bridge carrying
    those labels, {!Config.default} the old all-defaults engine.

    {!Config.to_string}/{!Config.of_string} give the record a stable
    [key=value] textual form (what [cortex serve --config FILE] reads
    and a bundle's manifest embeds).  The two runtime objects — the
    [obs] handle and the [params] resolver — are carried by the record
    but never serialized. *)
module Config : sig
  type compile = {
    options : Cortex_lower.Lower.options option;
        (** lowering options; [None] = [Lower.default] ({!of_spec}
            treats this as the base its schedule metadata merges into,
            the old [?base] contract) *)
    lock_free : bool;
        (** price the lock-free global barrier (§7.2) *)
    params : (string -> Cortex_tensor.Tensor.t) option;
        (** parameter resolver; enables numeric serving (each completed
            window also executes numerically and per-request root
            outputs land in [summary.results]) *)
  }

  type dispatch = {
    batching : policy;  (** window formation: size/timeout/bucketing *)
    selection : Dispatch.policy;
        (** which simulated device a ready window lands on *)
    devices : Cortex_backend.Backend.t list option;
        (** the simulated fleet, possibly heterogeneous; [None] =
            [[ backend ]] at {!create} *)
    cache_capacity : int option;
        (** shape-cache bound ({!Shape_cache.create}); [0] disables *)
  }

  type reliability = {
    queue_cap : int option;
        (** {!submit} sheds ([Error (Shed _)]) past this depth *)
    degrade_watermark : int option;
        (** a drain finding more than this many queued requests halves
            [max_batch] and forces [By_size] for that drain *)
    faults : Fault.spec option;
        (** install a fault model — switches drains into deterministic
            chaos mode (see the module docs) *)
    seed : int;  (** fault-injector rng seed *)
    retry : Fault.retry;  (** transient retry budget and backoff *)
  }

  type observability = {
    obs : Cortex_obs.Obs.t option;
        (** spans + metrics handle; recording is read-only (observed and
            unobserved drains are bitwise identical) *)
  }

  type tuning = {
    autotune : bool;
        (** stand up a {!Plan_cache}: first window of each (backend,
            size-class) runs a loop-schedule search, later windows
            reuse the tuned artifact *)
    tune_budget : int option;
        (** candidate-count budget per class (default 16) — a count,
            not wall time, so serving stays deterministic *)
  }

  type t = {
    compile : compile;
    dispatch : dispatch;
    reliability : reliability;
    observability : observability;
    tuning : tuning;
    sessions : Session_store.config;
        (** the bounded session table: accounted-bytes budget, idle
            TTL, eviction policy and spill directory
            ({!Session_store.config}; the default is unbounded with
            in-memory spills — the PR 7 behaviour) *)
  }

  val default : t
  (** The old all-defaults engine: FIFO windows of 8 / 200 us,
      round-robin over [[ backend ]], unbounded queue and cache, no
      faults, no observability, no tuning, unbounded sessions. *)

  val make :
    ?base:t ->
    ?policy:policy ->
    ?options:Cortex_lower.Lower.options ->
    ?lock_free:bool ->
    ?dispatch:Dispatch.policy ->
    ?devices:Cortex_backend.Backend.t list ->
    ?cache_capacity:int ->
    ?queue_cap:int ->
    ?degrade_watermark:int ->
    ?faults:Fault.spec ->
    ?seed:int ->
    ?retry:Fault.retry ->
    ?params:(string -> Cortex_tensor.Tensor.t) ->
    ?obs:Cortex_obs.Obs.t ->
    ?autotune:bool ->
    ?tune_budget:int ->
    ?session_budget_bytes:int ->
    ?session_ttl_us:float ->
    ?session_policy:Session_store.policy ->
    ?session_spill_dir:string ->
    ?session_pack_window:int ->
    ?session_pack_wait_us:float ->
    unit ->
    t
  (** [base] (default {!default}) overridden by whichever of the old
      labelled arguments are passed — the migration bridge from the
      15-argument [create].  [session_pack_window] > 1 turns on
      multi-session delta packing (see {!summary}); the default of 1
      keeps every session token its own size-1 window. *)

  val to_string : t -> string
  (** Deterministic [key=value] lines, unset optionals omitted; [obs]
      and [params] are not serialized.  Session-table keys serialize
      as [sessions.budget_bytes], [sessions.ttl_us], [sessions.policy]
      ([lru]|[ttl]) and [sessions.spill_dir];
      [sessions.pack_window] / [sessions.pack_wait_us] print only when
      set away from their defaults, so bundles built before packing
      existed stay byte-identical. *)

  val of_string : string -> (t, string) result
  (** Parse {!to_string}'s form (newline- or tab-separated lines; [#]
      comments and blank lines ignored) over {!default}.  [Error]
      carries a human-readable reason (unknown key, malformed value,
      unknown backend name…). *)
end

(** {2 Engine lifecycle} *)

type t

val create :
  ?config:Config.t ->
  model:Cortex_ra.Ra.t ->
  backend:Cortex_backend.Backend.t ->
  unit ->
  t
(** Compile [model] once (per [config.compile.options], default
    {!Cortex_lower.Lower.default}) and stand up an empty queue
    configured by [config] (default {!Config.default}).  [backend] is
    the single-request pricing device for {!run_one} and the default
    fleet when [config.dispatch.devices] is unset.  Raises
    [Invalid_argument] on malformed config values (non-positive
    [max_batch], negative caps, empty device list, a fault spec that
    does not fit the fleet). *)

val create_legacy :
  ?policy:policy ->
  ?options:Cortex_lower.Lower.options ->
  ?lock_free:bool ->
  ?dispatch:Dispatch.policy ->
  ?devices:Cortex_backend.Backend.t list ->
  ?cache_capacity:int ->
  ?queue_cap:int ->
  ?degrade_watermark:int ->
  ?faults:Fault.spec ->
  ?seed:int ->
  ?retry:Fault.retry ->
  ?params:(string -> Cortex_tensor.Tensor.t) ->
  ?obs:Cortex_obs.Obs.t ->
  ?autotune:bool ->
  ?tune_budget:int ->
  model:Cortex_ra.Ra.t ->
  backend:Cortex_backend.Backend.t ->
  unit ->
  t
[@@ocaml.deprecated
  "Engine.create_legacy is the pre-Config entry point; use Engine.create \
   ?config (Config.make carries the same labels)."]
(** The old 15-argument entry point, kept as a thin wrapper over
    {!Config.make} + {!create} for out-of-tree callers.
    @deprecated use {!create} with a {!Config.t}. *)

val of_spec :
  ?config:Config.t ->
  M.t ->
  backend:Cortex_backend.Backend.t ->
  t
(** {!create} for a model-zoo spec: the spec's schedule metadata is
    merged into [config.compile.options] (treated as the base) via
    [Runtime.options_for]. *)

val of_bundle :
  ?config:Config.t ->
  ?expect_model:string ->
  Cortex_bundle.Bundle.t ->
  backend:Cortex_backend.Backend.t ->
  t
(** Stand up an engine from an ahead-of-time compiled bundle
    ([cortex build]): the bundle's artifact is installed as-is — {e
    zero} lowering passes run at serve time (pinned by the Obs test
    counting ["lower"] wall spans) — and any tuned plans ride along
    into the plan cache, so first contact with their (backend,
    size-class) is a hit with no search.

    [config] (default: parsed from the bundle's embedded config text)
    configures everything else.  Bundle weights are {e not}
    auto-installed as [params]; pass
    [Config.make ~params:(Bundle.resolver b) ()] to serve numerically.

    Raises [Bundle.Error (Backend_mismatch _)] when the artifact was
    built for a different backend than [backend],
    [Bundle.Error (Model_mismatch _)] when [expect_model] disagrees
    with the bundle's recorded model name, and
    [Bundle.Error (Corrupt_section _)] when no [config] is supplied
    and the bundle's embedded config text does not parse. *)

val compiled : t -> Cortex_lower.Lower.compiled
val backend : t -> Cortex_backend.Backend.t
val policy : t -> policy
val dispatch_policy : t -> Dispatch.policy
val devices : t -> Cortex_backend.Backend.t list
val num_devices : t -> int
val cache_stats : t -> Shape_cache.stats
(** Cumulative shape-cache counters (both the drain and the numeric
    {!execute} path go through the cache). *)

val pending : t -> int
(** Requests queued and not yet drained. *)

val fault_spec : t -> Fault.spec option
val seed : t -> int

val obs : t -> Cortex_obs.Obs.t option
(** The observability handle installed at {!create}, if any. *)

val autotune : t -> bool
val plan_cache_stats : t -> Plan_cache.stats option
(** Cumulative plan-cache counters when [autotune] is on. *)

val config : t -> Config.t
(** The configuration the engine was created with. *)

(** {2 Serving simulation} *)

val submit :
  t ->
  ?arrival_us:float ->
  ?deadline_us:float ->
  ?session:string ->
  Cortex_ds.Structure.t ->
  (int, error) result
(** Validate a request against the compiled model (kind, fanout) and
    enqueue it; returns its request id.  [arrival_us] (default 0)
    stamps the simulated arrival clock; [deadline_us] is the {e
    absolute} completion deadline on the same clock (default none — the
    request can never miss).  The queue cap is checked {e before}
    validation — an overloaded server drops before it parses — so a
    shed invalid request counts as shed, not rejected.

    [session] pins the request to a named growing conversation: it is
    served in its own window on the session's pinned device, and when
    the structure is the session's previous structure plus appended
    nodes (same [Node.t] values, new nodes on top) the engine serves
    only the delta — {!Linearizer.extend}-style numbering reuse on the
    host, pre-seeded persistent hidden states on the device — instead
    of re-linearizing and re-executing the whole conversation.  Any
    other structure under the same name re-linearizes cold and (if it
    is not a pure prefix-growth of the previous one) drops the
    persisted state. *)

val submit_exn :
  t ->
  ?arrival_us:float ->
  ?deadline_us:float ->
  ?session:string ->
  Cortex_ds.Structure.t ->
  int
(** {!submit}, raising {!Error} on rejection (including {!Shed}). *)

type request_report = {
  rr_id : int;
  rr_nodes : int;
  rr_window : int;  (** index of the window that served it *)
  rr_window_size : int;  (** how many requests shared that window *)
  rr_device : int;  (** index of the device the window ran on *)
  rr_arrival_us : float;
  rr_deadline_us : float;  (** absolute; [infinity] when none was set *)
  rr_queue_us : float;  (** arrival -> window dispatch *)
  rr_linearize_us : float;
      (** the window's measured linearization wall clock (a cache hit's
          payload re-bind, or a miss's full inspector pass; 0 in chaos
          mode) *)
  rr_device_us : float;  (** simulated device latency of the window *)
  rr_total_us : float;  (** arrival -> completion *)
  rr_on_time : bool;  (** completed at or before its deadline *)
}

type window_report = {
  wr_index : int;
  wr_size : int;
  wr_nodes : int;
  wr_device : int;  (** index of the device it (finally) ran on *)
  wr_cache_hit : bool;
      (** whether the forest numbering came out of the shape cache *)
  wr_attempts : int;
      (** executions charged against the retry budget (1 = clean run;
          failover re-dispatches after a fail-stop are not counted) *)
  wr_dispatch_us : float;
  wr_report : Runtime.report;  (** full backend report for the forest *)
  wr_session : string option;
      (** the session this (size-1, device-pinned) window belongs to;
          [None] for regular batched windows and for packed windows *)
  wr_packed : string list;
      (** member session names of a packed multi-session window, in
          pack order; [[]] for regular and size-1 session windows *)
}

type device_report = {
  dr_index : int;
  dr_backend : Cortex_backend.Backend.t;
  dr_failed : bool;  (** fail-stopped during this drain *)
  dr_windows : int;
  dr_requests : int;
  dr_nodes : int;
  dr_busy_us : float;  (** total time occupied by windows *)
  dr_utilization : float;
      (** busy time over the drain's makespan — the classic
          open-systems utilization; near 1 means this device is the
          bottleneck, near 0 that dispatch starved it *)
  dr_occupancy : float;
      (** busy-time-weighted mean lane occupancy of the windows it ran
          ({!Cortex_backend.Backend.mean_occupancy}) — how full the
          device's lanes were {e while} it was busy *)
}

type aggregate = {
  num_requests : int;
  num_windows : int;
  mean_window : float;  (** requests per window *)
  throughput_rps : float;  (** completed requests per simulated second *)
  mean_us : float;  (** mean request latency (arrival -> completion) *)
  p50_us : float;
  p99_us : float;
  makespan_us : float;
}

(** SLO accounting for one drain. *)
type slo = {
  slo_seed : int;  (** the engine's fault-injection seed, for the report *)
  slo_chaos : bool;  (** a fault spec was installed (deterministic mode) *)
  slo_degraded : bool;  (** the drain ran with the degraded policy *)
  slo_completed : int;
  slo_lost : int;
      (** requests whose window exhausted retries or found no live
          device *)
  slo_shed : int;  (** submissions bounced off the queue cap *)
  slo_rejected : int;  (** submissions that failed validation *)
  slo_transients : int;  (** transient aborts observed *)
  slo_retries : int;  (** re-executions after a transient abort *)
  slo_failovers : int;  (** re-dispatches after an in-flight fail-stop *)
  slo_deadline_misses : int;  (** completed, but after the deadline *)
  slo_on_time : int;
  slo_goodput_rps : float;
      (** on-time completions per simulated second, against
          [aggregate.throughput_rps]'s all-completions count *)
  slo_first_damage_us : float option;
      (** the earliest SLO-visible damage on the simulated clock — the
          first shed arrival, lost window, or passed deadline; [None]
          when the drain hurt nothing.  The FMECA campaign measures
          detectability lead against this instant. *)
}

(** Per-session counters, cumulative over the session's lifetime. *)
type session_report = {
  sn_name : string;
  sn_nodes : int;  (** nodes of the session's current structure *)
  sn_windows : int;  (** tokens served (each its own window) *)
  sn_delta_nodes : int;  (** nodes served through delta views *)
  sn_extends : int;  (** windows served as deltas *)
  sn_cold : int;  (** windows that re-linearized the whole conversation *)
  sn_materializations : int;
      (** geometric {!Linearizer.extend} materializations — the
          amortization making per-token host cost O(delta) *)
  sn_rebinds : int;
      (** failovers that re-bound the session's layout through the
          shape cache onto a surviving device *)
  sn_packed : int;
      (** tokens of this session served inside packed multi-session
          windows (a subset of [sn_extends]) *)
  sn_deadline_misses : int;
      (** tokens that completed after their deadline *)
  sn_device : int;  (** pinned device index; -1 before the first window *)
  sn_bytes : int;
      (** accounted bytes: the conversation's layout
          ({!Cortex_linearizer.Linearizer.layout_bytes}) plus the state
          rows it pins — what the session-table budget prices *)
  sn_evictions : int;  (** times this name was evicted (spilled) *)
  sn_restores : int;  (** times this name was restored from a spill *)
}

type plan_report = {
  pr_backend : string;  (** [Backend.short] *)
  pr_bucket : int;  (** {!Dispatch.size_bucket} shape class *)
  pr_plan : string;  (** serialized plan; ["default"] if the empty plan won *)
  pr_default_us : float;  (** simulated latency of the default schedule *)
  pr_tuned_us : float;  (** simulated latency under the winning plan *)
}

type summary = {
  aggregate : aggregate;
  requests : request_report list;  (** by request id; completed only *)
  windows : window_report list;
  device_reports : device_report list;  (** one per device, in index order *)
  cache : Shape_cache.stats;
      (** cumulative shape-cache counters at the end of this drain *)
  slo : slo;
  results : (int * Cortex_tensor.Tensor.t) list;
      (** with [params]: each completed request's root output (first
          declared model output at its structure's first root), by
          request id *)
  sessions : session_report list;
      (** one per live session, by name; sessions persist across
          drains (an evicted session is not live — it reappears here
          after a restore) *)
  session_table : Session_store.stats;
      (** bounded-table accounting at the end of this drain: live
          sessions and bytes against the budget, spills/restores and
          their cumulative priced costs *)
  packed_windows : int;
      (** packed multi-session windows this drain played — windows
          whose level batches merged several sessions' delta views
          ([sessions.pack_window] > 1); each saved its members' worth
          of per-level kernel launches minus one *)
  packed_tokens : int;
      (** session tokens served inside those packed windows *)
  metrics : Cortex_obs.Metrics.snapshot option;
      (** with [obs]: the metrics registry at the end of this drain —
          request/fault counters, queue and utilization gauges, latency
          and window-size histograms; [None] when no handle is
          installed *)
  metrics_at_damage : Cortex_obs.Metrics.snapshot option;
      (** with [obs]: the registry as it stood when the first
          SLO-visible damage was observed — which counters had already
          moved before anything was hurt.  [None] without [obs] or when
          [slo.slo_first_damage_us] is [None]. *)
  plans : plan_report list;
      (** with [autotune]: one line per tuned (backend, size-class),
          sorted, with default-vs-tuned simulated latency *)
  plan_cache : Plan_cache.stats option;
      (** with [autotune]: cumulative hit/miss counters and the host
          wall time spent tuning *)
}

val drain : t -> summary
(** Form windows over everything queued (per the engine's {!policy},
    degraded past the watermark), linearize each window's forest exactly
    once through the shape cache (timing that one run — a hit re-binds
    payloads, a miss runs the inspector), and play the windows through
    the engine's simulated devices in ready order: the
    {!Dispatch.policy} picks a live device, the window occupies it from
    [max(device free, ready)] to completion, priced on that device's
    backend through the fault model (stragglers scale the price,
    transients abort-and-retry with backoff, fail-stops abort in flight
    and fail over).  Device clocks and fault streams are fresh per
    drain; the shape cache persists across drains.  An explicit drain
    is a flush: the trailing partial window is ready at its last
    member's arrival, not after the batching timer.  Empties the queue
    and resets the shed/rejected counters into the summary. *)

val run_trace : t -> Trace.t -> summary
(** {!submit} every event of the trace at its arrival time (with its
    deadline), then {!drain}.  A {!Shed} result is tolerated and
    counted; any other rejection raises {!Error}.  Raises
    [Error (Unsorted_trace _)] if the trace is not sorted by arrival
    time. *)

val sessions : t -> session_report list
(** Live sessions, by name.  A session is created by the first
    {!submit}[ ~session] under its name and lives (layout, pinned
    device, persisted states, counters) until {!close_session}. *)

val session_state :
  t -> string -> string -> Cortex_ds.Node.t -> Cortex_tensor.Tensor.t option
(** [session_state t name st node] reads a node's persisted row of
    state [st] from session [name]'s on-device store (by the node's
    identity in the conversation) — [None] when the session, node or
    state is unknown, or the engine serves without [params]. *)

val close_session : t -> string -> unit
(** Drop a session for good: its layout pin and persisted states are
    released, the shape-cache entries its materializations published
    are freed (not merely parked until the next epoch flush), and any
    held spill — record and file — is discarded.  Unknown names are
    ignored. *)

(** {2 Bounded session table}

    Sessions are priced ([Linearizer.layout_bytes] of the current
    conversation plus the state rows it pins) and accounted against
    [Config.sessions]: after every session window and at the end of
    every drain, sessions idle past [ttl_us] expire and — if the
    survivors still exceed [budget_bytes] — sessions are evicted in
    policy order (LRU by default) until the table fits.  An evicted
    session's restorable state is spilled through the
    {!Cortex_runtime.Checkpoint} session-section format (in memory, or
    one file per session under [spill_dir]); when its conversation
    comes back — grown, under the same name — it is validated by
    content digest, restored, and the next token serves as a delta
    with its boundary states preloaded: bitwise identical to a
    never-evicted run, and the deterministic priced restore cost is
    charged to that token.  With a [spill_dir], restore also works
    across a full engine restart from a bundle. *)

val session_table_stats : t -> Session_store.stats
(** The bounded-table accounting right now (between drains). *)

val set_session_budget : t -> int option -> unit
(** Change the accounted-bytes budget in place ([None] = unbounded).
    Takes effect at the next eviction pass — the next session window
    or drain end. *)

val evict_session : t -> string -> bool
(** Evict one live session immediately (spilling its restorable
    state), regardless of budget and TTL — operational lever and test
    hook.  [false] when the name is not live. *)

val run_one : t -> Cortex_ds.Structure.t -> Runtime.report
(** Single-request convenience: validate, linearize (timed) and price
    one structure on the engine's backend — what
    [Runtime.compile] + [Runtime.simulate] used to spell per call
    site, minus the recompilation. *)

(** {2 Numeric execution} *)

type execution

val execute :
  t ->
  params:(string -> Cortex_tensor.Tensor.t) ->
  Cortex_ds.Structure.t list ->
  execution
(** Validate and forest-linearize the requests, then run the compiled
    kernels numerically over the merged forest (one pass serves every
    request).  Raises {!Error} on a malformed request. *)

val execute_one :
  t ->
  params:(string -> Cortex_tensor.Tensor.t) ->
  Cortex_ds.Structure.t ->
  execution

val state :
  execution -> ?request:int -> string -> Cortex_ds.Node.t -> Cortex_tensor.Tensor.t
(** [state e ~request st node] reads state [st] of [node] {e of request
    [request]'s original structure} (default request 0) out of the
    executed forest, through the linearizer's span tables.  Bitwise
    identical to executing that request alone. *)

val forest : execution -> Linearizer.forest
(** The forest linearization backing this execution. *)
