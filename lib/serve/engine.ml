module Structure = Cortex_ds.Structure
module Node = Cortex_ds.Node
module Linearizer = Cortex_linearizer.Linearizer
module Ra = Cortex_ra.Ra
module Lower = Cortex_lower.Lower
module Backend = Cortex_backend.Backend
module Runtime = Cortex_runtime.Runtime
module Stats = Cortex_util.Stats
module M = Cortex_models.Models_common

(* ---------- policies ---------- *)

type bucketing = Fifo | By_size

type policy = { max_batch : int; max_wait_us : float; bucketing : bucketing }

let default_policy = { max_batch = 8; max_wait_us = 200.0; bucketing = Fifo }

(* ---------- errors ---------- *)

type error =
  | Kind_mismatch of { expected : Structure.kind; got : Structure.kind }
  | Rejected of Linearizer.rejection

exception Error of error

let kind_name = function
  | Structure.Sequence -> "sequence"
  | Structure.Tree -> "tree"
  | Structure.Dag -> "dag"

let error_to_string = function
  | Kind_mismatch { expected; got } ->
    Printf.sprintf "structure kind mismatch: the model expects a %s, the request is a %s"
      (kind_name expected) (kind_name got)
  | Rejected r -> Linearizer.rejection_to_string r

(* ---------- engine state ---------- *)

type pending = {
  p_id : int;
  p_arrival : float;
  p_structure : Structure.t;
  p_nodes : int;
}

type t = {
  model : Ra.t;
  eng_backend : Backend.t;
  eng_policy : policy;
  lock_free : bool;
  eng_compiled : Lower.compiled;
  eng_dispatch : Dispatch.policy;
  eng_devices : Backend.t list;
  eng_cache : Shape_cache.t;
  mutable next_id : int;
  mutable queue : pending list;  (* newest first *)
}

let create ?(policy = default_policy) ?options ?(lock_free = false)
    ?(dispatch = Dispatch.Round_robin) ?devices ?cache_capacity ~model ~backend () =
  if policy.max_batch < 1 then invalid_arg "Engine.create: max_batch must be >= 1";
  if policy.max_wait_us < 0.0 then invalid_arg "Engine.create: max_wait_us must be >= 0";
  let devices = Option.value devices ~default:[ backend ] in
  if devices = [] then invalid_arg "Engine.create: empty device list";
  {
    model;
    eng_backend = backend;
    eng_policy = policy;
    lock_free;
    eng_compiled = Runtime.compile ?options model;
    eng_dispatch = dispatch;
    eng_devices = devices;
    eng_cache = Shape_cache.create ?capacity:cache_capacity ();
    next_id = 0;
    queue = [];
  }

let of_spec ?policy ?base ?lock_free ?dispatch ?devices ?cache_capacity
    (spec : M.t) ~backend =
  create ?policy ~options:(Runtime.options_for ?base spec) ?lock_free ?dispatch
    ?devices ?cache_capacity ~model:spec.M.program ~backend ()

let compiled t = t.eng_compiled
let backend t = t.eng_backend
let policy t = t.eng_policy
let dispatch_policy t = t.eng_dispatch
let devices t = t.eng_devices
let num_devices t = List.length t.eng_devices
let cache_stats t = Shape_cache.stats t.eng_cache
let pending t = List.length t.queue

(* ---------- validation ---------- *)

(* Reject what would crash — or worse, silently mis-number — the
   compiled kernels: a structure of the wrong kind (a DAG's shared
   subtrees re-enter a tree model's traversal, the moral equivalent of a
   cycle) or a node whose arity exceeds the child-table width the model
   was compiled for. *)
let validate t (s : Structure.t) =
  if Structure.num_nodes s = 0 then Some (Rejected Linearizer.Empty_structure)
  else if s.Structure.kind <> t.model.Ra.kind then
    Some (Kind_mismatch { expected = t.model.Ra.kind; got = s.Structure.kind })
  else begin
    let mc = t.model.Ra.max_children in
    let bad = ref None in
    Array.iter
      (fun (node : Node.t) ->
        let arity = Array.length node.Node.children in
        if arity > mc && !bad = None then
          bad :=
            Some
              (Rejected
                 (Linearizer.Fanout_exceeded
                    { node = node.Node.id; arity; max_children = mc })))
      s.Structure.nodes;
    !bad
  end

let validate_exn t s =
  match validate t s with Some e -> raise (Error e) | None -> ()

(* ---------- serving simulation ---------- *)

let submit t ?(arrival_us = 0.0) structure =
  match validate t structure with
  | Some e -> Stdlib.Error e
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    t.queue <-
      {
        p_id = id;
        p_arrival = arrival_us;
        p_structure = structure;
        p_nodes = Structure.num_nodes structure;
      }
      :: t.queue;
    Ok id

let submit_exn t ?arrival_us structure =
  match submit t ?arrival_us structure with
  | Ok id -> id
  | Stdlib.Error e -> raise (Error e)

type request_report = {
  rr_id : int;
  rr_nodes : int;
  rr_window : int;
  rr_window_size : int;
  rr_device : int;
  rr_arrival_us : float;
  rr_queue_us : float;
  rr_linearize_us : float;
  rr_device_us : float;
  rr_total_us : float;
}

type window_report = {
  wr_index : int;
  wr_size : int;
  wr_nodes : int;
  wr_device : int;
  wr_cache_hit : bool;
  wr_dispatch_us : float;
  wr_report : Runtime.report;
}

type device_report = {
  dr_index : int;
  dr_backend : Backend.t;
  dr_windows : int;
  dr_requests : int;
  dr_nodes : int;
  dr_busy_us : float;
  dr_utilization : float;
  dr_occupancy : float;
}

type aggregate = {
  num_requests : int;
  num_windows : int;
  mean_window : float;
  throughput_rps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  makespan_us : float;
}

type summary = {
  aggregate : aggregate;
  requests : request_report list;
  windows : window_report list;
  device_reports : device_report list;
  cache : Shape_cache.stats;
}

(* Cut an arrival-ordered run of requests into windows: a window closes
   when it reaches [max_batch] members or when the next arrival falls
   past the oldest member's [max_wait_us] deadline.  Each window carries
   its ready time: a full window is ready when its last member arrives,
   a timer-closed partial one when the batching timer fires — and the
   trailing partial window when its last member arrives, because an
   explicit [drain] is a flush: nothing else is coming, so making the
   tail wait out the timer would charge queueing delay no real server
   would incur. *)
let form_windows policy pendings =
  let close ~flush first window_rev size =
    let members = List.rev window_rev in
    let last_arrival =
      (* neg_infinity, not 0: a 0 init would mask negative arrival
         clocks (a trace whose origin predates the simulation start). *)
      List.fold_left (fun m p -> Float.max m p.p_arrival) Float.neg_infinity members
    in
    let ready =
      if size >= policy.max_batch || flush then last_arrival
      else first +. policy.max_wait_us
    in
    (ready, members)
  in
  let rec go acc window size first = function
    | [] ->
      List.rev (if window = [] then acc else close ~flush:true first window size :: acc)
    | p :: rest ->
      if window = [] then go acc [ p ] 1 p.p_arrival rest
      else if size >= policy.max_batch || p.p_arrival > first +. policy.max_wait_us
      then go (close ~flush:false first window size :: acc) [ p ] 1 p.p_arrival rest
      else go acc (p :: window) (size + 1) first rest
  in
  go [] [] 0 0.0 pendings

let form_windows_bucketed policy pendings =
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let key = Dispatch.size_bucket p.p_nodes in
      let prev = Option.value (Hashtbl.find_opt buckets key) ~default:[] in
      Hashtbl.replace buckets key (p :: prev))
    pendings;
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) buckets []) in
  List.concat_map
    (fun k -> form_windows policy (List.rev (Hashtbl.find buckets k)))
    keys

let empty_aggregate =
  {
    num_requests = 0;
    num_windows = 0;
    mean_window = 0.0;
    throughput_rps = 0.0;
    mean_us = 0.0;
    p50_us = 0.0;
    p99_us = 0.0;
    makespan_us = 0.0;
  }

let aggregate_of requests ~num_windows =
  match requests with
  | [] -> empty_aggregate
  | _ ->
    let n = List.length requests in
    let totals = List.map (fun r -> r.rr_total_us) requests in
    let first_arrival =
      List.fold_left (fun m r -> Float.min m r.rr_arrival_us) infinity requests
    in
    let last_completion =
      List.fold_left
        (fun m r -> Float.max m (r.rr_arrival_us +. r.rr_total_us))
        0.0 requests
    in
    let makespan_us = last_completion -. first_arrival in
    {
      num_requests = n;
      num_windows;
      mean_window = float_of_int n /. float_of_int (max 1 num_windows);
      throughput_rps =
        (if makespan_us > 0.0 then float_of_int n /. makespan_us *. 1.0e6 else 0.0);
      mean_us = Stats.mean totals;
      p50_us = Stats.p50 totals;
      p99_us = Stats.p99 totals;
      makespan_us;
    }

let drain t =
  let pendings =
    List.stable_sort
      (fun a b -> compare (a.p_arrival, a.p_id) (b.p_arrival, b.p_id))
      (List.rev t.queue)
  in
  t.queue <- [];
  let windows =
    match t.eng_policy.bucketing with
    | Fifo -> form_windows t.eng_policy pendings
    | By_size -> form_windows_bucketed t.eng_policy pendings
  in
  (* Play the windows through the simulated devices in ready order: the
     dispatch policy picks a device per window, the window occupies it
     from max(device free, window ready) until completion, priced on
     that device's own backend model.  Device clocks are fresh per
     drain (the simulation's origin is the trace's arrival clock); the
     shape cache persists across drains. *)
  let windows =
    List.stable_sort (fun (ra, _) (rb, _) -> compare ra rb) windows
  in
  let disp = Dispatch.create ~policy:t.eng_dispatch t.eng_devices in
  let wreports = ref [] in
  let rreports = ref [] in
  List.iteri
    (fun i (ready, members) ->
      let structures = List.map (fun p -> p.p_structure) members in
      (* Linearize exactly once and reuse the result, timing that one
         run: a cache hit is a payload re-bind, a miss the full
         inspector pass — either way the wall clock measured is the
         wall clock charged. *)
      let (fl, hit), lin_us =
        Stats.time_us (fun () ->
            Shape_cache.find_or_linearize t.eng_cache
              ~max_children:t.model.Ra.max_children structures)
      in
      let nodes = fl.Linearizer.lin.Linearizer.num_nodes in
      let dev = Dispatch.select disp ~nodes in
      let report =
        Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us:lin_us
          t.eng_compiled ~backend:dev.Dispatch.dev_backend fl.Linearizer.lin
      in
      let dispatch = Float.max dev.Dispatch.dev_free_us ready in
      let device_us = report.Runtime.latency.Backend.total_us in
      let completion = dispatch +. lin_us +. device_us in
      let size = List.length members in
      Dispatch.commit dev ~dispatch_us:dispatch ~completion_us:completion
        ~requests:size ~nodes ~occupancy:report.Runtime.occupancy;
      wreports :=
        {
          wr_index = i;
          wr_size = size;
          wr_nodes = nodes;
          wr_device = dev.Dispatch.dev_index;
          wr_cache_hit = hit;
          wr_dispatch_us = dispatch;
          wr_report = report;
        }
        :: !wreports;
      List.iter
        (fun p ->
          rreports :=
            {
              rr_id = p.p_id;
              rr_nodes = p.p_nodes;
              rr_window = i;
              rr_window_size = size;
              rr_device = dev.Dispatch.dev_index;
              rr_arrival_us = p.p_arrival;
              rr_queue_us = dispatch -. p.p_arrival;
              rr_linearize_us = lin_us;
              rr_device_us = device_us;
              rr_total_us = completion -. p.p_arrival;
            }
            :: !rreports)
        members)
    windows;
  let requests = List.sort (fun a b -> compare a.rr_id b.rr_id) !rreports in
  let windows = List.rev !wreports in
  let aggregate = aggregate_of requests ~num_windows:(List.length windows) in
  let device_reports =
    Array.to_list
      (Array.map
         (fun (d : Dispatch.device) ->
           {
             dr_index = d.Dispatch.dev_index;
             dr_backend = d.Dispatch.dev_backend;
             dr_windows = d.Dispatch.dev_windows;
             dr_requests = d.Dispatch.dev_requests;
             dr_nodes = d.Dispatch.dev_nodes;
             dr_busy_us = d.Dispatch.dev_busy_us;
             dr_utilization =
               (if aggregate.makespan_us > 0.0 then
                  d.Dispatch.dev_busy_us /. aggregate.makespan_us
                else 0.0);
             dr_occupancy = Dispatch.mean_occupancy d;
           })
         (Dispatch.devices disp))
  in
  { aggregate; requests; windows; device_reports; cache = Shape_cache.stats t.eng_cache }

let run_trace t trace =
  List.iter
    (fun (e : Trace.event) ->
      ignore (submit_exn t ~arrival_us:e.Trace.at_us e.Trace.structure))
    trace;
  drain t

let run_one t structure =
  validate_exn t structure;
  let mc = t.model.Ra.max_children in
  (* One timed run, reused — not a timing loop whose results are thrown
     away followed by an untimed live run. *)
  let lin, linearize_us =
    Stats.time_us (fun () -> Linearizer.run ~max_children:mc structure)
  in
  Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us t.eng_compiled
    ~backend:t.eng_backend lin

(* ---------- numeric execution ---------- *)

type execution = { ex_forest : Linearizer.forest; ex_exec : Runtime.execution }

let execute t ~params structures =
  List.iter (validate_exn t) structures;
  (* The numeric path shares the drain's shape cache: a repeated shape
     skips the inspector here too, and the equivalence tests pin the
     rebound numbering bitwise to a cold linearization. *)
  let forest =
    try
      fst
        (Shape_cache.find_or_linearize t.eng_cache
           ~max_children:t.model.Ra.max_children structures)
    with Linearizer.Rejected r -> raise (Error (Rejected r))
  in
  let ex = Runtime.execute_lin t.eng_compiled ~params forest.Linearizer.lin in
  { ex_forest = forest; ex_exec = ex }

let execute_one t ~params structure = execute t ~params [ structure ]

let state e ?(request = 0) st_name (node : Node.t) =
  let spans = e.ex_forest.Linearizer.spans in
  if request < 0 || request >= Array.length spans then
    invalid_arg "Engine.state: no such request";
  let span = spans.(request) in
  Lower.state_value_lin e.ex_exec.Runtime.exec_bound e.ex_exec.Runtime.exec_compiled
    st_name
    span.Linearizer.span_ids.(node.Node.id)

let forest e = e.ex_forest
