module Structure = Cortex_ds.Structure
module Node = Cortex_ds.Node
module Linearizer = Cortex_linearizer.Linearizer
module Ra = Cortex_ra.Ra
module Lower = Cortex_lower.Lower
module Backend = Cortex_backend.Backend
module Runtime = Cortex_runtime.Runtime
module Stats = Cortex_util.Stats
module M = Cortex_models.Models_common

(* ---------- policies ---------- *)

type bucketing = Fifo | By_size

type policy = { max_batch : int; max_wait_us : float; bucketing : bucketing }

let default_policy = { max_batch = 8; max_wait_us = 200.0; bucketing = Fifo }

(* ---------- errors ---------- *)

type error =
  | Kind_mismatch of { expected : Structure.kind; got : Structure.kind }
  | Rejected of Linearizer.rejection

exception Error of error

let kind_name = function
  | Structure.Sequence -> "sequence"
  | Structure.Tree -> "tree"
  | Structure.Dag -> "dag"

let error_to_string = function
  | Kind_mismatch { expected; got } ->
    Printf.sprintf "structure kind mismatch: the model expects a %s, the request is a %s"
      (kind_name expected) (kind_name got)
  | Rejected r -> Linearizer.rejection_to_string r

(* ---------- engine state ---------- *)

type pending = {
  p_id : int;
  p_arrival : float;
  p_structure : Structure.t;
  p_nodes : int;
}

type t = {
  model : Ra.t;
  eng_backend : Backend.t;
  eng_policy : policy;
  lock_free : bool;
  eng_compiled : Lower.compiled;
  mutable next_id : int;
  mutable queue : pending list;  (* newest first *)
}

let create ?(policy = default_policy) ?options ?(lock_free = false) ~model ~backend () =
  if policy.max_batch < 1 then invalid_arg "Engine.create: max_batch must be >= 1";
  if policy.max_wait_us < 0.0 then invalid_arg "Engine.create: max_wait_us must be >= 0";
  {
    model;
    eng_backend = backend;
    eng_policy = policy;
    lock_free;
    eng_compiled = Runtime.compile ?options model;
    next_id = 0;
    queue = [];
  }

let of_spec ?policy ?base ?lock_free (spec : M.t) ~backend =
  create ?policy ~options:(Runtime.options_for ?base spec) ?lock_free
    ~model:spec.M.program ~backend ()

let compiled t = t.eng_compiled
let backend t = t.eng_backend
let policy t = t.eng_policy
let pending t = List.length t.queue

(* ---------- validation ---------- *)

(* Reject what would crash — or worse, silently mis-number — the
   compiled kernels: a structure of the wrong kind (a DAG's shared
   subtrees re-enter a tree model's traversal, the moral equivalent of a
   cycle) or a node whose arity exceeds the child-table width the model
   was compiled for. *)
let validate t (s : Structure.t) =
  if s.Structure.kind <> t.model.Ra.kind then
    Some (Kind_mismatch { expected = t.model.Ra.kind; got = s.Structure.kind })
  else begin
    let mc = t.model.Ra.max_children in
    let bad = ref None in
    Array.iter
      (fun (node : Node.t) ->
        let arity = Array.length node.Node.children in
        if arity > mc && !bad = None then
          bad :=
            Some
              (Rejected
                 (Linearizer.Fanout_exceeded
                    { node = node.Node.id; arity; max_children = mc })))
      s.Structure.nodes;
    !bad
  end

let validate_exn t s =
  match validate t s with Some e -> raise (Error e) | None -> ()

(* ---------- serving simulation ---------- *)

let submit t ?(arrival_us = 0.0) structure =
  match validate t structure with
  | Some e -> Stdlib.Error e
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    t.queue <-
      {
        p_id = id;
        p_arrival = arrival_us;
        p_structure = structure;
        p_nodes = Structure.num_nodes structure;
      }
      :: t.queue;
    Ok id

let submit_exn t ?arrival_us structure =
  match submit t ?arrival_us structure with
  | Ok id -> id
  | Stdlib.Error e -> raise (Error e)

type request_report = {
  rr_id : int;
  rr_nodes : int;
  rr_window : int;
  rr_window_size : int;
  rr_arrival_us : float;
  rr_queue_us : float;
  rr_linearize_us : float;
  rr_device_us : float;
  rr_total_us : float;
}

type window_report = {
  wr_index : int;
  wr_size : int;
  wr_nodes : int;
  wr_dispatch_us : float;
  wr_report : Runtime.report;
}

type aggregate = {
  num_requests : int;
  num_windows : int;
  mean_window : float;
  throughput_rps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  makespan_us : float;
}

type summary = {
  aggregate : aggregate;
  requests : request_report list;
  windows : window_report list;
}

(* Cut an arrival-ordered run of requests into windows: a window closes
   when it reaches [max_batch] members or when the next arrival falls
   past the oldest member's [max_wait_us] deadline.  Each window carries
   its ready time: a full window is ready when its last member arrives,
   a partial one when the batching timer fires. *)
let form_windows policy pendings =
  let close first window_rev size =
    let members = List.rev window_rev in
    let ready =
      if size >= policy.max_batch then
        List.fold_left (fun m p -> Float.max m p.p_arrival) 0.0 members
      else first +. policy.max_wait_us
    in
    (ready, members)
  in
  let rec go acc window size first = function
    | [] -> List.rev (if window = [] then acc else close first window size :: acc)
    | p :: rest ->
      if window = [] then go acc [ p ] 1 p.p_arrival rest
      else if size >= policy.max_batch || p.p_arrival > first +. policy.max_wait_us
      then go (close first window size :: acc) [ p ] 1 p.p_arrival rest
      else go acc (p :: window) (size + 1) first rest
  in
  go [] [] 0 0.0 pendings

(* Power-of-two size bucket: trees of 2^b..2^(b+1)-1 nodes batch
   together, keeping the forest's levels uniformly wide. *)
let bucket_of nodes =
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  go 0 (max 1 nodes)

let form_windows_bucketed policy pendings =
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let key = bucket_of p.p_nodes in
      let prev = Option.value (Hashtbl.find_opt buckets key) ~default:[] in
      Hashtbl.replace buckets key (p :: prev))
    pendings;
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) buckets []) in
  List.concat_map
    (fun k -> form_windows policy (List.rev (Hashtbl.find buckets k)))
    keys

let empty_aggregate =
  {
    num_requests = 0;
    num_windows = 0;
    mean_window = 0.0;
    throughput_rps = 0.0;
    mean_us = 0.0;
    p50_us = 0.0;
    p99_us = 0.0;
    makespan_us = 0.0;
  }

let aggregate_of requests ~num_windows =
  match requests with
  | [] -> empty_aggregate
  | _ ->
    let n = List.length requests in
    let totals = List.map (fun r -> r.rr_total_us) requests in
    let first_arrival =
      List.fold_left (fun m r -> Float.min m r.rr_arrival_us) infinity requests
    in
    let last_completion =
      List.fold_left
        (fun m r -> Float.max m (r.rr_arrival_us +. r.rr_total_us))
        0.0 requests
    in
    let makespan_us = last_completion -. first_arrival in
    {
      num_requests = n;
      num_windows;
      mean_window = float_of_int n /. float_of_int (max 1 num_windows);
      throughput_rps =
        (if makespan_us > 0.0 then float_of_int n /. makespan_us *. 1.0e6 else 0.0);
      mean_us = Stats.mean totals;
      p50_us = Stats.p50 totals;
      p99_us = Stats.p99 totals;
      makespan_us;
    }

let drain t =
  let pendings =
    List.stable_sort
      (fun a b -> compare (a.p_arrival, a.p_id) (b.p_arrival, b.p_id))
      (List.rev t.queue)
  in
  t.queue <- [];
  let windows =
    match t.eng_policy.bucketing with
    | Fifo -> form_windows t.eng_policy pendings
    | By_size -> form_windows_bucketed t.eng_policy pendings
  in
  (* Play the windows through one simulated device in ready order: the
     device is busy for a window's forest latency, so a window dispatches
     at max(device free, window ready). *)
  let windows =
    List.stable_sort (fun (ra, _) (rb, _) -> compare ra rb) windows
  in
  let device_free = ref 0.0 in
  let wreports = ref [] in
  let rreports = ref [] in
  List.iteri
    (fun i (ready, members) ->
      let structures = List.map (fun p -> p.p_structure) members in
      (* Min over a few repeats: a single wall-clock sample is at the
         mercy of GC pauses, and one noisy window skews a whole sweep. *)
      let lin_us =
        Stats.min_time_us ~repeats:3 (fun () ->
            Linearizer.run_forest ~max_children:t.model.Ra.max_children structures)
      in
      let fl = Linearizer.run_forest ~max_children:t.model.Ra.max_children structures in
      let report =
        Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us:lin_us
          t.eng_compiled ~backend:t.eng_backend fl.Linearizer.lin
      in
      let dispatch = Float.max !device_free ready in
      let device_us = report.Runtime.latency.Backend.total_us in
      let completion = dispatch +. lin_us +. device_us in
      device_free := completion;
      let size = List.length members in
      wreports :=
        {
          wr_index = i;
          wr_size = size;
          wr_nodes = fl.Linearizer.lin.Linearizer.num_nodes;
          wr_dispatch_us = dispatch;
          wr_report = report;
        }
        :: !wreports;
      List.iter
        (fun p ->
          rreports :=
            {
              rr_id = p.p_id;
              rr_nodes = p.p_nodes;
              rr_window = i;
              rr_window_size = size;
              rr_arrival_us = p.p_arrival;
              rr_queue_us = dispatch -. p.p_arrival;
              rr_linearize_us = lin_us;
              rr_device_us = device_us;
              rr_total_us = completion -. p.p_arrival;
            }
            :: !rreports)
        members)
    windows;
  let requests = List.sort (fun a b -> compare a.rr_id b.rr_id) !rreports in
  let windows = List.rev !wreports in
  { aggregate = aggregate_of requests ~num_windows:(List.length windows); requests; windows }

let run_trace t trace =
  List.iter
    (fun (e : Trace.event) ->
      ignore (submit_exn t ~arrival_us:e.Trace.at_us e.Trace.structure))
    trace;
  drain t

let run_one t structure =
  validate_exn t structure;
  let mc = t.model.Ra.max_children in
  let linearize_us =
    Stats.min_time_us ~repeats:5 (fun () -> Linearizer.run ~max_children:mc structure)
  in
  Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us t.eng_compiled
    ~backend:t.eng_backend
    (Linearizer.run ~max_children:mc structure)

(* ---------- numeric execution ---------- *)

type execution = { ex_forest : Linearizer.forest; ex_exec : Runtime.execution }

let execute t ~params structures =
  List.iter (validate_exn t) structures;
  let forest =
    try Linearizer.run_forest ~max_children:t.model.Ra.max_children structures
    with Linearizer.Rejected r -> raise (Error (Rejected r))
  in
  let ex = Runtime.execute_lin t.eng_compiled ~params forest.Linearizer.lin in
  { ex_forest = forest; ex_exec = ex }

let execute_one t ~params structure = execute t ~params [ structure ]

let state e ?(request = 0) st_name (node : Node.t) =
  let spans = e.ex_forest.Linearizer.spans in
  if request < 0 || request >= Array.length spans then
    invalid_arg "Engine.state: no such request";
  let span = spans.(request) in
  Lower.state_value_lin e.ex_exec.Runtime.exec_bound e.ex_exec.Runtime.exec_compiled
    st_name
    span.Linearizer.span_ids.(node.Node.id)

let forest e = e.ex_forest
