module Structure = Cortex_ds.Structure
module Node = Cortex_ds.Node
module Linearizer = Cortex_linearizer.Linearizer
module Ra = Cortex_ra.Ra
module Lower = Cortex_lower.Lower
module Backend = Cortex_backend.Backend
module Runtime = Cortex_runtime.Runtime
module Checkpoint = Cortex_runtime.Checkpoint
module Stats = Cortex_util.Stats
module Tensor = Cortex_tensor.Tensor
module M = Cortex_models.Models_common
module Obs = Cortex_obs.Obs
module Metrics = Cortex_obs.Metrics
module CT = Cortex_obs.Chrome_trace
module Bundle = Cortex_bundle.Bundle

(* ---------- policies ---------- *)

type bucketing = Fifo | By_size

type policy = { max_batch : int; max_wait_us : float; bucketing : bucketing }

let default_policy = { max_batch = 8; max_wait_us = 200.0; bucketing = Fifo }

(* ---------- errors ---------- *)

type error =
  | Kind_mismatch of { expected : Structure.kind; got : Structure.kind }
  | Rejected of Linearizer.rejection
  | Shed of { cap : int }
  | Unsorted_trace of { index : int; at_us : float; prev_us : float }

exception Error of error

let kind_name = function
  | Structure.Sequence -> "sequence"
  | Structure.Tree -> "tree"
  | Structure.Dag -> "dag"

let error_to_string = function
  | Kind_mismatch { expected; got } ->
    Printf.sprintf "structure kind mismatch: the model expects a %s, the request is a %s"
      (kind_name expected) (kind_name got)
  | Rejected r -> Linearizer.rejection_to_string r
  | Shed { cap } ->
    Printf.sprintf "request shed: the queue is at its cap of %d" cap
  | Unsorted_trace { index; at_us; prev_us } ->
    Printf.sprintf
      "unsorted trace: event %d arrives at %g us after an event at %g us" index
      at_us prev_us

(* ---------- configuration ---------- *)

module Config = struct
  (* One record for everything [create] used to take as fifteen
     labelled optional arguments, grouped by concern.  [default] is the
     old all-defaults engine; [make] is the migration bridge with the
     old labels.  Runtime objects ([obs], [params]) live in the record
     but are not serialized. *)

  type compile = {
    options : Lower.options option;  (* None = Lower.default *)
    lock_free : bool;
    params : (string -> Tensor.t) option;  (* enables numeric serving *)
  }

  type dispatch = {
    batching : policy;
    selection : Dispatch.policy;  (* which device a window lands on *)
    devices : Backend.t list option;  (* None = [backend] at create *)
    cache_capacity : int option;  (* shape-cache entries; None = unbounded *)
  }

  type reliability = {
    queue_cap : int option;
    degrade_watermark : int option;
    faults : Fault.spec option;
    seed : int;
    retry : Fault.retry;
  }

  type observability = { obs : Obs.t option }
  type tuning = { autotune : bool; tune_budget : int option }

  type t = {
    compile : compile;
    dispatch : dispatch;
    reliability : reliability;
    observability : observability;
    tuning : tuning;
    sessions : Session_store.config;  (* bounded session table *)
  }

  let default =
    {
      compile = { options = None; lock_free = false; params = None };
      dispatch =
        {
          batching = default_policy;
          selection = Dispatch.Round_robin;
          devices = None;
          cache_capacity = None;
        };
      reliability =
        {
          queue_cap = None;
          degrade_watermark = None;
          faults = None;
          seed = 0;
          retry = Fault.default_retry;
        };
      observability = { obs = None };
      tuning = { autotune = false; tune_budget = None };
      sessions = Session_store.default_config;
    }

  let make ?(base = default) ?policy ?options ?lock_free ?dispatch ?devices
      ?cache_capacity ?queue_cap ?degrade_watermark ?faults ?seed ?retry ?params
      ?obs ?autotune ?tune_budget ?session_budget_bytes ?session_ttl_us
      ?session_policy ?session_spill_dir ?session_pack_window
      ?session_pack_wait_us () =
    let keep opt prev = match opt with Some _ -> opt | None -> prev in
    {
      compile =
        {
          options = keep options base.compile.options;
          lock_free = Option.value lock_free ~default:base.compile.lock_free;
          params = keep params base.compile.params;
        };
      dispatch =
        {
          batching = Option.value policy ~default:base.dispatch.batching;
          selection = Option.value dispatch ~default:base.dispatch.selection;
          devices = keep devices base.dispatch.devices;
          cache_capacity = keep cache_capacity base.dispatch.cache_capacity;
        };
      reliability =
        {
          queue_cap = keep queue_cap base.reliability.queue_cap;
          degrade_watermark = keep degrade_watermark base.reliability.degrade_watermark;
          faults = keep faults base.reliability.faults;
          seed = Option.value seed ~default:base.reliability.seed;
          retry = Option.value retry ~default:base.reliability.retry;
        };
      observability = { obs = keep obs base.observability.obs };
      tuning =
        {
          autotune = Option.value autotune ~default:base.tuning.autotune;
          tune_budget = keep tune_budget base.tuning.tune_budget;
        };
      sessions =
        {
          Session_store.budget_bytes =
            keep session_budget_bytes base.sessions.Session_store.budget_bytes;
          ttl_us = keep session_ttl_us base.sessions.Session_store.ttl_us;
          policy =
            Option.value session_policy ~default:base.sessions.Session_store.policy;
          spill_dir = keep session_spill_dir base.sessions.Session_store.spill_dir;
          pack_window =
            Option.value session_pack_window
              ~default:base.sessions.Session_store.pack_window;
          pack_wait_us =
            Option.value session_pack_wait_us
              ~default:base.sessions.Session_store.pack_wait_us;
        };
    }

  (* Textual form: key=value lines, deterministic order, omitting unset
     optionals.  [obs] and [params] are runtime objects and are not
     serialized; parsing never sets them.  Bundles store this text on a
     single manifest line with tabs for newlines — [of_string] accepts
     both separators (no legitimate value contains a tab; fault specs
     contain ';' and publication lists '|', so neither of those can
     separate). *)

  let bucketing_to_string = function Fifo -> "fifo" | By_size -> "by_size"

  let to_string c =
    let buf = Buffer.create 256 in
    let line k v = Buffer.add_string buf (k ^ "=" ^ v ^ "\n") in
    let p = c.dispatch.batching in
    line "max_batch" (string_of_int p.max_batch);
    line "max_wait_us" (Printf.sprintf "%g" p.max_wait_us);
    line "bucketing" (bucketing_to_string p.bucketing);
    line "selection" (Dispatch.policy_to_string c.dispatch.selection);
    (match c.dispatch.devices with
     | Some ds ->
       line "devices"
         (String.concat "," (List.map (fun (b : Backend.t) -> b.Backend.short) ds))
     | None -> ());
    (match c.dispatch.cache_capacity with
     | Some n -> line "cache_capacity" (string_of_int n)
     | None -> ());
    line "lock_free" (string_of_bool c.compile.lock_free);
    (match c.compile.options with
     | Some o -> line "options" (Lower.options_to_string o)
     | None -> ());
    (match c.reliability.queue_cap with
     | Some n -> line "queue_cap" (string_of_int n)
     | None -> ());
    (match c.reliability.degrade_watermark with
     | Some n -> line "degrade_watermark" (string_of_int n)
     | None -> ());
    (match c.reliability.faults with
     | Some spec -> line "faults" (Fault.to_string spec)
     | None -> ());
    line "seed" (string_of_int c.reliability.seed);
    line "max_retries" (string_of_int c.reliability.retry.Fault.max_retries);
    line "backoff_base_us" (Printf.sprintf "%g" c.reliability.retry.Fault.backoff_base_us);
    line "backoff_cap_us" (Printf.sprintf "%g" c.reliability.retry.Fault.backoff_cap_us);
    line "autotune" (string_of_bool c.tuning.autotune);
    (match c.tuning.tune_budget with
     | Some n -> line "tune_budget" (string_of_int n)
     | None -> ());
    (match c.sessions.Session_store.budget_bytes with
     | Some n -> line "sessions.budget_bytes" (string_of_int n)
     | None -> ());
    (match c.sessions.Session_store.ttl_us with
     | Some x -> line "sessions.ttl_us" (Printf.sprintf "%g" x)
     | None -> ());
    if c.sessions.Session_store.policy <> Session_store.default_config.Session_store.policy
    then
      line "sessions.policy"
        (Session_store.policy_to_string c.sessions.Session_store.policy);
    (match c.sessions.Session_store.spill_dir with
     | Some d -> line "sessions.spill_dir" d
     | None -> ());
    (* Printed only when set, so pre-packing bundles stay byte-identical. *)
    if c.sessions.Session_store.pack_window <> 1 then
      line "sessions.pack_window"
        (string_of_int c.sessions.Session_store.pack_window);
    if c.sessions.Session_store.pack_wait_us <> 0.0 then
      line "sessions.pack_wait_us"
        (Printf.sprintf "%g" c.sessions.Session_store.pack_wait_us);
    Buffer.contents buf

  let backend_of_short s =
    List.find_opt
      (fun (b : Backend.t) ->
        String.lowercase_ascii b.Backend.short = String.lowercase_ascii s)
      Backend.all

  let of_string text =
    let lines =
      String.split_on_char '\n' text
      |> List.concat_map (String.split_on_char '\t')
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let err fmt = Printf.ksprintf (fun s -> Stdlib.Error s) fmt in
    let rec go c = function
      | [] -> Ok c
      | line :: rest -> (
        match String.index_opt line '=' with
        | None -> err "config: missing '=' in %S" line
        | Some i -> (
          let key = String.trim (String.sub line 0 i) in
          let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          let int_field f =
            match int_of_string_opt v with
            | Some n -> go (f n) rest
            | None -> err "config: %s wants an integer, got %S" key v
          in
          let float_field f =
            match float_of_string_opt v with
            | Some x -> go (f x) rest
            | None -> err "config: %s wants a number, got %S" key v
          in
          let bool_field f =
            match bool_of_string_opt v with
            | Some b -> go (f b) rest
            | None -> err "config: %s wants true/false, got %S" key v
          in
          match key with
          | "max_batch" ->
            int_field (fun n ->
                { c with
                  dispatch =
                    { c.dispatch with
                      batching = { c.dispatch.batching with max_batch = n } } })
          | "max_wait_us" ->
            float_field (fun x ->
                { c with
                  dispatch =
                    { c.dispatch with
                      batching = { c.dispatch.batching with max_wait_us = x } } })
          | "bucketing" -> (
            match v with
            | "fifo" ->
              go
                { c with
                  dispatch =
                    { c.dispatch with
                      batching = { c.dispatch.batching with bucketing = Fifo } } }
                rest
            | "by_size" ->
              go
                { c with
                  dispatch =
                    { c.dispatch with
                      batching = { c.dispatch.batching with bucketing = By_size } } }
                rest
            | _ -> err "config: unknown bucketing %S" v)
          | "selection" -> (
            match Dispatch.policy_of_string v with
            | Some p -> go { c with dispatch = { c.dispatch with selection = p } } rest
            | None -> err "config: unknown selection policy %S" v)
          | "devices" -> (
            let shorts =
              String.split_on_char ',' v |> List.map String.trim
              |> List.filter (fun s -> s <> "")
            in
            let resolved = List.map backend_of_short shorts in
            if List.exists Option.is_none resolved then
              err "config: unknown backend in devices %S" v
            else
              go
                { c with
                  dispatch =
                    { c.dispatch with
                      devices = Some (List.filter_map Fun.id resolved) } }
                rest)
          | "cache_capacity" ->
            int_field (fun n ->
                { c with dispatch = { c.dispatch with cache_capacity = Some n } })
          | "lock_free" ->
            bool_field (fun b -> { c with compile = { c.compile with lock_free = b } })
          | "options" -> (
            match Lower.options_of_string v with
            | Some o -> go { c with compile = { c.compile with options = Some o } } rest
            | None -> err "config: malformed options %S" v)
          | "queue_cap" ->
            int_field (fun n ->
                { c with reliability = { c.reliability with queue_cap = Some n } })
          | "degrade_watermark" ->
            int_field (fun n ->
                { c with
                  reliability = { c.reliability with degrade_watermark = Some n } })
          | "faults" -> (
            match Fault.parse v with
            | Ok spec ->
              go { c with reliability = { c.reliability with faults = Some spec } } rest
            | Stdlib.Error e -> err "config: %s" e)
          | "seed" ->
            int_field (fun n -> { c with reliability = { c.reliability with seed = n } })
          | "max_retries" ->
            int_field (fun n ->
                { c with
                  reliability =
                    { c.reliability with
                      retry = { c.reliability.retry with Fault.max_retries = n } } })
          | "backoff_base_us" ->
            float_field (fun x ->
                { c with
                  reliability =
                    { c.reliability with
                      retry = { c.reliability.retry with Fault.backoff_base_us = x } } })
          | "backoff_cap_us" ->
            float_field (fun x ->
                { c with
                  reliability =
                    { c.reliability with
                      retry = { c.reliability.retry with Fault.backoff_cap_us = x } } })
          | "autotune" ->
            bool_field (fun b -> { c with tuning = { c.tuning with autotune = b } })
          | "tune_budget" ->
            int_field (fun n -> { c with tuning = { c.tuning with tune_budget = Some n } })
          | "sessions.budget_bytes" ->
            int_field (fun n ->
                { c with
                  sessions =
                    { c.sessions with Session_store.budget_bytes = Some n } })
          | "sessions.ttl_us" ->
            float_field (fun x ->
                { c with
                  sessions = { c.sessions with Session_store.ttl_us = Some x } })
          | "sessions.policy" -> (
            match Session_store.policy_of_string v with
            | Some p ->
              go { c with sessions = { c.sessions with Session_store.policy = p } } rest
            | None -> err "config: unknown sessions.policy %S" v)
          | "sessions.spill_dir" ->
            go { c with sessions = { c.sessions with Session_store.spill_dir = Some v } } rest
          | "sessions.pack_window" ->
            int_field (fun n ->
                { c with
                  sessions = { c.sessions with Session_store.pack_window = n } })
          | "sessions.pack_wait_us" ->
            float_field (fun x ->
                { c with
                  sessions = { c.sessions with Session_store.pack_wait_us = x } })
          | _ -> err "config: unknown key %S" key))
    in
    go default lines
end

(* ---------- engine state ---------- *)

type pending = {
  p_id : int;
  p_arrival : float;
  p_deadline : float;  (* absolute; [infinity] when none *)
  p_structure : Structure.t;
  p_nodes : int;
  p_session : string option;  (* pinned-conversation serving *)
}

(* A session pins a growing conversation: its device, its layout (the
   materialized forest, refreshed geometrically through
   [Linearizer.extend]), its persistent hidden states (host-side ground
   truth, keyed by stable request-local node identity), and the scratch
   tables the per-token delta views window over.  The scratch arrays
   are capacity-doubling: each appended node is assigned a {e session
   id} (stable until the session resets) and its child/payload/level
   rows live at that id, so building a token's delta view is O(delta)
   — no per-token re-traversal of the conversation. *)
type session = {
  sx_name : string;
  mutable sx_structure : Structure.t option;  (* last structure served *)
  mutable sx_forest : Linearizer.forest option;  (* materialized layout *)
  mutable sx_mat_nodes : int;  (* size at the last materialization *)
  mutable sx_device : int option;  (* pinned device index *)
  mutable sx_windows : int;
  mutable sx_extends : int;  (* windows served from a delta view *)
  mutable sx_cold : int;  (* windows served by full (re)linearization *)
  mutable sx_materializations : int;  (* geometric [extend] rebuilds *)
  mutable sx_rebinds : int;  (* failover re-binds through the cache *)
  mutable sx_delta_nodes : int;  (* nodes served via delta views *)
  mutable sx_packed : int;  (* windows served inside a packed window *)
  mutable sx_deadline_misses : int;  (* tokens completed past deadline *)
  mutable sx_height : int;  (* max scratch level: prices the layout *)
  mutable sx_row_bytes : int;  (* one node's state-row bytes (0 = shapes only) *)
  mutable sx_put_keys : string list;
      (* shape-cache keys this session's [put]s inserted, freed on
         close/evict instead of waiting out the epoch flush *)
  mutable sx_restored_base : int option;
      (* Some b: the first b nodes were just restored from a spill —
         the next token's delta view trusts the content digest instead
         of physical prefix identity (meaningless across an eviction) *)
  sx_states : (string * int, Tensor.t) Hashtbl.t;
      (* (state name, request-local node id) -> persisted row *)
  mutable sc_used : int;  (* session ids in use *)
  mutable sc_child : int array array;  (* child.(k).(sid), k < max_children *)
  mutable sc_num_children : int array;
  mutable sc_payload : int array;
  mutable sc_level : int array;
  mutable sc_sid : int array;  (* request-local node id -> session id *)
}

type t = {
  model : Ra.t;
  eng_backend : Backend.t;
  eng_policy : policy;
  lock_free : bool;
  eng_compiled : Lower.compiled;
  eng_dispatch : Dispatch.policy;
  eng_devices : Backend.t list;
  eng_cache : Shape_cache.t;
  eng_queue_cap : int option;
  eng_watermark : int option;
  eng_faults : Fault.spec option;
  eng_seed : int;
  eng_retry : Fault.retry;
  eng_params : (string -> Tensor.t) option;
  eng_obs : Obs.t option;
  eng_plans : Plan_cache.t option;  (* Some = plan cache active *)
  eng_sessions : (string, session) Hashtbl.t;
  eng_store : Session_store.t;  (* bounded-table accounting + spills *)
  eng_config : Config.t;
  mutable eng_clock_us : float;
      (* monotone simulated clock across drains: the LRU/TTL "now",
         and the timestamp eviction/restore trace instants stamp so
         the "sessions" track stays monotone *)
  mutable next_id : int;
  mutable queue : pending list;  (* newest first *)
  mutable queued : int;
  mutable n_shed : int;
  mutable n_rejected : int;
  mutable first_shed_us : float;
      (* earliest shed arrival since the last drain: sheds happen at
         submit time, before the drain can see them, so the drain's
         first-damage clock needs the time carried over *)
}

(* Shared construction: validate the config, then obtain the compiled
   artifact — a thunk, so [of_bundle] installs a deserialized artifact
   without ever invoking the compiler, and [create] does not pay for
   lowering when validation is going to reject the config anyway. *)
let build ~(config : Config.t) ~model ~backend ~compiled =
  let policy = config.Config.dispatch.Config.batching in
  if policy.max_batch < 1 then invalid_arg "Engine.create: max_batch must be >= 1";
  if policy.max_wait_us < 0.0 then invalid_arg "Engine.create: max_wait_us must be >= 0";
  (match config.Config.reliability.Config.queue_cap with
   | Some c when c < 0 -> invalid_arg "Engine.create: queue_cap must be >= 0"
   | _ -> ());
  (match config.Config.reliability.Config.degrade_watermark with
   | Some w when w < 0 -> invalid_arg "Engine.create: degrade_watermark must be >= 0"
   | _ -> ());
  if config.Config.reliability.Config.retry.Fault.max_retries < 0 then
    invalid_arg "Engine.create: max_retries must be >= 0";
  if config.Config.sessions.Session_store.pack_window < 1 then
    invalid_arg "Engine.create: sessions.pack_window must be >= 1";
  if config.Config.sessions.Session_store.pack_wait_us < 0.0 then
    invalid_arg "Engine.create: sessions.pack_wait_us must be >= 0";
  let devices =
    Option.value config.Config.dispatch.Config.devices ~default:[ backend ]
  in
  if devices = [] then invalid_arg "Engine.create: empty device list";
  let seed = config.Config.reliability.Config.seed in
  (* Validate the fault spec against the device count up front, not at
     the first drain. *)
  (match config.Config.reliability.Config.faults with
   | Some spec -> ignore (Fault.create ~seed ~devices:(List.length devices) spec)
   | None -> ());
  {
    model;
    eng_backend = backend;
    eng_policy = policy;
    lock_free = config.Config.compile.Config.lock_free;
    eng_compiled = compiled ();
    eng_dispatch = config.Config.dispatch.Config.selection;
    eng_devices = devices;
    eng_cache =
      Shape_cache.create ?capacity:config.Config.dispatch.Config.cache_capacity ();
    eng_queue_cap = config.Config.reliability.Config.queue_cap;
    eng_watermark = config.Config.reliability.Config.degrade_watermark;
    eng_faults = config.Config.reliability.Config.faults;
    eng_seed = seed;
    eng_retry = config.Config.reliability.Config.retry;
    eng_params = config.Config.compile.Config.params;
    eng_obs = config.Config.observability.Config.obs;
    eng_plans =
      (if config.Config.tuning.Config.autotune then
         Some (Plan_cache.create ?budget:config.Config.tuning.Config.tune_budget ())
       else None);
    (* The session table is part of [build], so engines stood up from a
       bundle ([of_bundle]) serve sessions exactly like compiled ones —
       and a file-backed store finds the spill files its predecessor
       wrote, which is how a conversation survives a full restart. *)
    eng_sessions = Hashtbl.create 16;
    eng_store = Session_store.create ~config:config.Config.sessions ();
    eng_config = config;
    eng_clock_us = 0.0;
    next_id = 0;
    queue = [];
    queued = 0;
    n_shed = 0;
    n_rejected = 0;
    first_shed_us = infinity;
  }

let create ?(config = Config.default) ~model ~backend () =
  build ~config ~model ~backend ~compiled:(fun () ->
      Runtime.compile
        ?obs:config.Config.observability.Config.obs
        ?options:config.Config.compile.Config.options model)

let create_legacy ?policy ?options ?lock_free ?dispatch ?devices ?cache_capacity
    ?queue_cap ?degrade_watermark ?faults ?seed ?retry ?params ?obs ?autotune
    ?tune_budget ~model ~backend () =
  create
    ~config:
      (Config.make ?policy ?options ?lock_free ?dispatch ?devices ?cache_capacity
         ?queue_cap ?degrade_watermark ?faults ?seed ?retry ?params ?obs ?autotune
         ?tune_budget ())
    ~model ~backend ()

let of_spec ?(config = Config.default) (spec : M.t) ~backend =
  (* The config's options act as the base the model's schedule metadata
     merges into — the old [?base] argument's contract. *)
  let options = Runtime.options_for ?base:config.Config.compile.Config.options spec in
  let config =
    {
      config with
      Config.compile = { config.Config.compile with Config.options = Some options };
    }
  in
  create ~config ~model:spec.M.program ~backend ()

let of_bundle ?config ?expect_model (b : Bundle.t) ~backend =
  if b.Bundle.b_backend <> backend.Backend.short then
    raise
      (Bundle.Error
         (Bundle.Backend_mismatch
            { bundle = b.Bundle.b_backend; requested = backend.Backend.short }));
  (match expect_model with
   | Some m when m <> b.Bundle.b_model ->
     raise
       (Bundle.Error (Bundle.Model_mismatch { bundle = b.Bundle.b_model; requested = m }))
   | _ -> ());
  let config =
    match config with
    | Some c -> c
    | None -> (
      match Config.of_string b.Bundle.b_config with
      | Ok c -> c
      | Stdlib.Error reason ->
        (* The section passed the digest check, so the writer produced
           garbage — surface it rather than silently serving defaults. *)
        raise (Bundle.Error (Bundle.Corrupt_section { section = "config"; reason })))
  in
  (* The bundle IS the compiled artifact: the thunk returns it as-is,
     so serving from a bundle runs zero lowering passes (the Obs test
     pins this by counting "lower" wall spans). *)
  let t =
    build ~config ~model:b.Bundle.b_compiled.Lower.ra ~backend ~compiled:(fun () ->
        b.Bundle.b_compiled)
  in
  if b.Bundle.b_plans = [] then t
  else begin
    (* Tuned plans ride along: seed the plan cache so first contact
       with each (backend, size-class) is a hit.  Plans tuned for
       backends not in this engine's device list are skipped. *)
    let pc =
      match t.eng_plans with
      | Some pc -> pc
      | None -> Plan_cache.create ?budget:config.Config.tuning.Config.tune_budget ()
    in
    List.iter
      (fun (e : Bundle.plan_entry) ->
        if
          List.exists
            (fun (d : Backend.t) -> d.Backend.short = e.Bundle.bp_backend)
            t.eng_devices
        then
          Plan_cache.preload pc ~backend_short:e.Bundle.bp_backend
            ~bucket:e.Bundle.bp_bucket ~plan:e.Bundle.bp_plan
            ~compiled:b.Bundle.b_compiled ~default_us:e.Bundle.bp_default_us
            ~tuned_us:e.Bundle.bp_tuned_us)
      b.Bundle.b_plans;
    { t with eng_plans = Some pc }
  end

let compiled t = t.eng_compiled
let backend t = t.eng_backend
let policy t = t.eng_policy
let dispatch_policy t = t.eng_dispatch
let devices t = t.eng_devices
let num_devices t = List.length t.eng_devices
let cache_stats t = Shape_cache.stats t.eng_cache
let pending t = t.queued
let fault_spec t = t.eng_faults
let seed t = t.eng_seed
let obs t = t.eng_obs
let autotune t = t.eng_plans <> None
let plan_cache_stats t = Option.map Plan_cache.stats t.eng_plans
let config t = t.eng_config

(* ---------- validation ---------- *)

(* Reject what would crash — or worse, silently mis-number — the
   compiled kernels: a structure of the wrong kind (a DAG's shared
   subtrees re-enter a tree model's traversal, the moral equivalent of a
   cycle) or a node whose arity exceeds the child-table width the model
   was compiled for. *)
let validate t (s : Structure.t) =
  if Structure.num_nodes s = 0 then Some (Rejected Linearizer.Empty_structure)
  else if s.Structure.kind <> t.model.Ra.kind then
    Some (Kind_mismatch { expected = t.model.Ra.kind; got = s.Structure.kind })
  else begin
    let mc = t.model.Ra.max_children in
    let bad = ref None in
    Array.iter
      (fun (node : Node.t) ->
        let arity = Array.length node.Node.children in
        if arity > mc && !bad = None then
          bad :=
            Some
              (Rejected
                 (Linearizer.Fanout_exceeded
                    { node = node.Node.id; arity; max_children = mc })))
      s.Structure.nodes;
    !bad
  end

let validate_exn t s =
  match validate t s with Some e -> raise (Error e) | None -> ()

(* ---------- serving simulation ---------- *)

let submit t ?(arrival_us = 0.0) ?deadline_us ?session structure =
  (* The queue cap is the front door: load shedding happens before
     validation, the way a real server drops on the floor before it
     parses.  A shed is typed [Shed] and counted separately from
     validation rejections. *)
  match t.eng_queue_cap with
  | Some cap when t.queued >= cap ->
    t.n_shed <- t.n_shed + 1;
    t.first_shed_us <- Float.min t.first_shed_us arrival_us;
    Stdlib.Error (Shed { cap })
  | _ -> (
    match validate t structure with
    | Some e ->
      t.n_rejected <- t.n_rejected + 1;
      Stdlib.Error e
    | None ->
      (* Early warning ahead of the cap: the instant the queue crosses
         80% of [queue_cap], stamp a [queue_pressure] instant on the slo
         track.  Sheds damage the SLO at submit time, before the drain
         can see anything, so this is the only signal that can lead them
         — the FMECA campaign counts it as a warning signal.  Fires once
         per fill (depth resets at drain). *)
      (match t.eng_queue_cap with
       | Some cap when t.queued + 1 = max 1 (((4 * cap) + 4) / 5) ->
         (match t.eng_obs with
          | None -> ()
          | Some _ ->
            Obs.sim_instant t.eng_obs ~track:"slo" ~name:"queue_pressure"
              ~args:[ ("depth", CT.Int (t.queued + 1)); ("cap", CT.Int cap) ]
              ~ts_us:arrival_us ())
       | _ -> ());
      let id = t.next_id in
      t.next_id <- id + 1;
      t.queue <-
        {
          p_id = id;
          p_arrival = arrival_us;
          p_deadline = Option.value deadline_us ~default:infinity;
          p_structure = structure;
          p_nodes = Structure.num_nodes structure;
          p_session = session;
        }
        :: t.queue;
      t.queued <- t.queued + 1;
      Ok id)

let submit_exn t ?arrival_us ?deadline_us ?session structure =
  match submit t ?arrival_us ?deadline_us ?session structure with
  | Ok id -> id
  | Stdlib.Error e -> raise (Error e)

(* ---------- sessions ---------- *)

let session_of t name =
  match Hashtbl.find_opt t.eng_sessions name with
  | Some sx -> sx
  | None ->
    let mc = max 1 t.model.Ra.max_children in
    let sx =
      {
        sx_name = name;
        sx_structure = None;
        sx_forest = None;
        sx_mat_nodes = 0;
        sx_device = None;
        sx_windows = 0;
        sx_extends = 0;
        sx_cold = 0;
        sx_materializations = 0;
        sx_rebinds = 0;
        sx_delta_nodes = 0;
        sx_packed = 0;
        sx_deadline_misses = 0;
        sx_height = 0;
        sx_row_bytes = 0;
        sx_put_keys = [];
        sx_restored_base = None;
        sx_states = Hashtbl.create 64;
        sc_used = 0;
        sc_child = Array.make mc [||];
        sc_num_children = [||];
        sc_payload = [||];
        sc_level = [||];
        sc_sid = [||];
      }
    in
    Hashtbl.add t.eng_sessions name sx;
    sx

(* Doubling growth, so n appended nodes cost O(n) total copying. *)
let ensure_session_capacity sx n =
  let cap = Array.length sx.sc_num_children in
  if n > cap then begin
    let cap' = max n (max 16 (2 * cap)) in
    let grow a =
      let a' = Array.make cap' (-1) in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    sx.sc_child <- Array.map grow sx.sc_child;
    sx.sc_num_children <- grow sx.sc_num_children;
    sx.sc_payload <- grow sx.sc_payload;
    sx.sc_level <- grow sx.sc_level;
    sx.sc_sid <- grow sx.sc_sid
  end

(* Assign the next session id to [node] and fill its scratch rows.
   Children must already hold session ids (callers push children
   first). *)
let push_node sx (node : Node.t) =
  let sid = sx.sc_used in
  sx.sc_used <- sid + 1;
  sx.sc_sid.(node.Node.id) <- sid;
  let ch = node.Node.children in
  let arity = Array.length ch in
  sx.sc_num_children.(sid) <- arity;
  sx.sc_payload.(sid) <- node.Node.payload;
  let lv = ref 0 in
  let mc = Array.length sx.sc_child in
  for k = 0 to mc - 1 do
    if k < arity then begin
      let csid = sx.sc_sid.(ch.(k).Node.id) in
      sx.sc_child.(k).(sid) <- csid;
      if sx.sc_level.(csid) + 1 > !lv then lv := sx.sc_level.(csid) + 1
    end
    else sx.sc_child.(k).(sid) <- -1
  done;
  sx.sc_level.(sid) <- !lv;
  if !lv > sx.sx_height then sx.sx_height <- !lv

(* A different conversation took over the name: its node identities
   mean something else, so the persisted rows and the scratch numbering
   are dropped (the counters stay — they are cumulative). *)
let reset_session sx =
  sx.sx_structure <- None;
  sx.sx_forest <- None;
  sx.sx_mat_nodes <- 0;
  sx.sx_height <- 0;
  sx.sx_restored_base <- None;
  sx.sc_used <- 0;
  Hashtbl.reset sx.sx_states

(* How one session submission is served this window. *)
type session_serve =
  | S_delta of {
      sd_view : Linearizer.t;  (* delta view over the grown tail *)
      sd_news : Node.t array;  (* the appended nodes, in view batch order *)
      sd_base : int;  (* node-id boundary: ids < sd_base are old *)
    }
  | S_cold of Linearizer.forest * bool  (* full (re)linearization, cache hit *)

(* Validate that [s] purely grows the session's pinned conversation and
   build the token's delta view: a [Linearizer.t] whose batch table
   covers only the appended nodes (the leaf run first — possibly empty,
   a sequence token appends no leaf — then one batch per level run,
   children-first), while its node-id space, and therefore the bound
   state tensors, covers the whole conversation so the boundary rows
   can be pre-seeded.  O(delta) work: the prefix is checked by physical
   identity at its endpoints and every appended node is validated in
   full.  Returns [None] when [s] is not pure growth — the caller falls
   back to a cold run. *)
let session_delta_view sx (s : Structure.t) =
  let n = Structure.num_nodes s in
  let nodes = s.Structure.nodes in
  let base =
    match sx.sx_structure with
    | Some prev ->
      let b = Structure.num_nodes prev in
      if
        n <= b
        || s.Structure.kind <> prev.Structure.kind
        || not (nodes.(0) == prev.Structure.nodes.(0))
        || not (nodes.(b - 1) == prev.Structure.nodes.(b - 1))
      then None
      else Some b
    | None -> (
      (* A restored session: the spilled prefix was validated against
         [s] by content digest (physical identity cannot survive an
         eviction, let alone an engine restart) and the scratch tables
         were rebuilt over nodes [0, b). *)
      match sx.sx_restored_base with Some b when n > b && b > 0 -> Some b | _ -> None)
  in
  match base with
  | None -> None
  | Some b ->
    begin
      let mc = Array.length sx.sc_child in
      let ok = ref true in
      for i = b to n - 1 do
        let nd = nodes.(i) in
        if nd.Node.id <> i || Array.length nd.Node.children > mc then ok := false
        else
          Array.iter
            (fun (c : Node.t) ->
              if c.Node.id >= i || not (nodes.(c.Node.id) == c) then ok := false)
            nd.Node.children
      done;
      if not !ok then None
      else begin
        ensure_session_capacity sx n;
        let d = n - b in
        (* Levels of the appended nodes (children precede parents by id). *)
        let dlv = Array.make d 0 in
        for i = 0 to d - 1 do
          let nd = nodes.(b + i) in
          Array.iter
            (fun (c : Node.t) ->
              let cl =
                if c.Node.id < b then sx.sc_level.(sx.sc_sid.(c.Node.id))
                else dlv.(c.Node.id - b)
              in
              if cl + 1 > dlv.(i) then dlv.(i) <- cl + 1)
            nd.Node.children
        done;
        (* Level-sort the delta (stable), so every view batch is a
           contiguous session-id run and children come first. *)
        let order = Array.init d (fun i -> i) in
        Array.stable_sort (fun i j -> compare (dlv.(i), i) (dlv.(j), j)) order;
        let sid_base = sx.sc_used in
        let news = Array.map (fun i -> nodes.(b + i)) order in
        Array.iter (fun nd -> push_node sx nd) news;
        let leaves = ref 0 in
        Array.iter (fun i -> if dlv.(i) = 0 then incr leaves) order;
        let batches = ref [] in
        let i = ref !leaves in
        while !i < d do
          let l = dlv.(order.(!i)) in
          let j = ref !i in
          while !j < d && dlv.(order.(!j)) = l do
            incr j
          done;
          batches := (sid_base + !i, !j - !i) :: !batches;
          i := !j
        done;
        let batches = Array.of_list ((sid_base, !leaves) :: List.rev !batches) in
        let view =
          {
            Linearizer.structure = s;
            num_nodes = sx.sc_used;
            num_leaves = !leaves;
            max_children = mc;
            (* Host-side inspector state the executor never resolves;
               left empty so the view costs O(delta) to build. *)
            new_of_old = [||];
            old_of_new = [||];
            leaf_begin = sid_base;
            child = sx.sc_child;
            num_children = sx.sc_num_children;
            payload = sx.sc_payload;
            level_of = sx.sc_level;
            batches;
            postorder = [||];
          }
        in
        Some (view, news, b)
      end
    end

(* Geometric materialization: once the conversation has doubled since
   the last full layout, [Linearizer.extend] rebuilds an exact
   invariant-true forest from the cached one (O(n) mapping passes,
   amortized O(1) per appended node) and publishes it to the shape
   cache so a failover can re-bind the session's layout as a hit. *)
let session_materialize ?obs t sx (s : Structure.t) =
  let n = Structure.num_nodes s in
  let mc = t.model.Ra.max_children in
  if n >= 2 * sx.sx_mat_nodes then begin
    let f' =
      match sx.sx_forest with
      | Some f -> (
        try
          let dl =
            {
              Linearizer.d_request = 0;
              d_roots = s.Structure.roots;
              d_nodes =
                Array.sub s.Structure.nodes sx.sx_mat_nodes (n - sx.sx_mat_nodes);
            }
          in
          let f' = Linearizer.extend f dl in
          (match Shape_cache.put t.eng_cache ~max_children:mc [ s ] f' with
           | Some key -> sx.sx_put_keys <- key :: sx.sx_put_keys
           | None -> ());
          f'
        with Linearizer.Rejected _ ->
          fst (Shape_cache.find_or_linearize ?obs t.eng_cache ~max_children:mc [ s ]))
      | None ->
        fst (Shape_cache.find_or_linearize ?obs t.eng_cache ~max_children:mc [ s ])
    in
    sx.sx_forest <- Some f';
    sx.sx_mat_nodes <- n;
    sx.sx_materializations <- sx.sx_materializations + 1
  end

(* ---------- bounded session table ---------- *)

(* What a live session costs its device, in closed form: the four
   resolved layout tables of the current conversation (a structure of
   height h lays out as h + 1 level batches — [sx_height] tracks the
   max scratch level, so no re-traversal) plus the per-node state rows
   it pins.  The QCheck accounting property holds this equal to
   [Linearizer.memory_bytes] of the session's own forest. *)
let session_accounted_bytes t sx =
  let n =
    match sx.sx_structure with Some s -> Structure.num_nodes s | None -> 0
  in
  if n = 0 then 0
  else
    Linearizer.layout_bytes ~num_nodes:n ~num_batches:(sx.sx_height + 1)
      ~max_children:t.model.Ra.max_children
    + Linearizer.state_rows_bytes ~num_nodes:n ~bytes_per_node:sx.sx_row_bytes

(* Content digest of a conversation prefix: payloads and child ids of
   nodes [0, n).  This is what lets spilled state survive eviction and
   engine restarts — physical node identity (the live-session prefix
   check) cannot.  Payloads are included deliberately: the shape key
   excludes them, but grafting states onto a same-shaped conversation
   with different tokens would be silent corruption. *)
let prefix_digest (s : Structure.t) n =
  let buf = Buffer.create (n * 12) in
  for i = 0 to n - 1 do
    let nd = s.Structure.nodes.(i) in
    Buffer.add_string buf (string_of_int nd.Node.payload);
    Buffer.add_char buf ':';
    Array.iter
      (fun (c : Node.t) ->
        Buffer.add_string buf (string_of_int c.Node.id);
        Buffer.add_char buf ',')
      nd.Node.children;
    Buffer.add_char buf ';'
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Serialize a session's restorable half as a Checkpoint session
   section: conversation size, prefix digest, and the persisted state
   rows under "state@node" names (sorted, so the spill bytes — and
   therefore the priced costs and CI diffs — are deterministic).
   Float64 payloads round-trip bitwise, which is what makes
   evict -> restore ≡ never-evicted an exact statement. *)
let spill_payload t sx =
  match sx.sx_structure with
  | None -> None
  | Some s ->
    let n = Structure.num_nodes s in
    if n = 0 then None
    else
      let states =
        Hashtbl.fold
          (fun (st, id) v acc ->
            if id < n then (Printf.sprintf "%s@%d" st id, v) :: acc else acc)
          sx.sx_states []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Some
        (Checkpoint.session_to_string
           {
             Checkpoint.ss_model = t.model.Ra.name;
             ss_nodes = n;
             ss_digest = prefix_digest s n;
             ss_states = states;
           })

(* Re-admit a spilled conversation: validate the spill against the
   incoming structure (model, prefix digest, strict growth), rebuild
   the scratch numbering over the prefix in node-id order (children
   link strictly smaller ids, the same invariant the cold re-seed
   relies on) and repopulate the persisted rows.  On success the next
   token serves as a delta with its boundary states preloaded — the
   restored run is bitwise the never-evicted run.  Any mismatch or
   corruption falls back to a fresh cold serve, which is always
   correct.  Returns the priced restore cost. *)
let try_restore t sx (s : Structure.t) =
  match Session_store.restore t.eng_store sx.sx_name with
  | None -> None
  | Some (data, cost) ->
    let ok =
      try
        let ss =
          Checkpoint.session_of_string ~expect_model:t.model.Ra.name data
        in
        let b = ss.Checkpoint.ss_nodes in
        let n = Structure.num_nodes s in
        if b <= 0 || n <= b || prefix_digest s b <> ss.Checkpoint.ss_digest then
          false
        else begin
          sx.sc_used <- 0;
          sx.sx_height <- 0;
          ensure_session_capacity sx n;
          for i = 0 to b - 1 do
            push_node sx s.Structure.nodes.(i)
          done;
          Hashtbl.reset sx.sx_states;
          List.iter
            (fun (name, v) ->
              match String.rindex_opt name '@' with
              | None -> raise Exit
              | Some i ->
                let st = String.sub name 0 i in
                let id =
                  int_of_string (String.sub name (i + 1) (String.length name - i - 1))
                in
                if id < 0 || id >= b then raise Exit;
                Hashtbl.replace sx.sx_states (st, id) v)
            ss.Checkpoint.ss_states;
          (* Numeric serving needs every prefix row present: a partial
             spill would fail at the delta boundary mid-execution, so
             check up front and fall back cold instead. *)
          (match t.eng_params with
           | Some _ ->
             List.iter
               (fun (st, _) ->
                 for i = 0 to b - 1 do
                   if not (Hashtbl.mem sx.sx_states (st, i)) then raise Exit
                 done)
               t.eng_compiled.Lower.state_tensors
           | None -> ());
          sx.sx_restored_base <- Some b;
          sx.sx_structure <- None;
          sx.sx_forest <- None;
          sx.sx_mat_nodes <- 0;
          true
        end
      with
      | Checkpoint.Corrupt _ | Exit | Failure _ | Invalid_argument _ -> false
    in
    if ok then Some cost
    else begin
      (* The spill belongs to a different conversation (or is damaged):
         it was consumed above, so the name starts over fresh. *)
      reset_session sx;
      None
    end

let bump_clock t at = if at > t.eng_clock_us then t.eng_clock_us <- at

(* Evict one session now: spill its restorable state, free the shape
   cache entries it published, drop it from the live table.  The trace
   instant stamps the monotone engine clock so the "sessions" track
   validates. *)
let evict_session_now ?obs t name ~reason =
  match Hashtbl.find_opt t.eng_sessions name with
  | None -> false
  | Some sx ->
    let now = t.eng_clock_us in
    let spill_us =
      match spill_payload t sx with
      | Some data ->
        Session_store.spill t.eng_store name ~data ~now_us:now
          ~expired:(reason = `Ttl)
      | None ->
        Session_store.drop t.eng_store name;
        0.0
    in
    List.iter (Shape_cache.remove t.eng_cache) sx.sx_put_keys;
    Hashtbl.remove t.eng_sessions name;
    Obs.incr obs "sessions.evictions";
    (match obs with
     | None -> ()
     | Some _ ->
       Obs.sim_instant obs ~track:"sessions" ~name:"evict"
         ~args:
           [ ("session", CT.Str name);
             ("reason",
              CT.Str
                (match reason with
                 | `Ttl -> "ttl"
                 | `Budget -> "budget"
                 | `Explicit -> "explicit"));
             ("spill_us", CT.Float spill_us) ]
         ~ts_us:now ());
    true

(* The eviction pass: every session idle past its TTL, then — if the
   survivors still bust the budget — sessions in policy order until
   the table fits.  Runs after every session window and at the end of
   each drain, so the accounted-bytes invariant holds at both points. *)
let enforce_sessions ?obs t =
  match Session_store.victims t.eng_store ~now_us:t.eng_clock_us with
  | [] -> ()
  | victims ->
    List.iter
      (fun (name, reason) ->
        ignore
          (evict_session_now ?obs t name
             ~reason:(match reason with `Ttl -> `Ttl | `Budget -> `Budget)))
      victims

type request_report = {
  rr_id : int;
  rr_nodes : int;
  rr_window : int;
  rr_window_size : int;
  rr_device : int;
  rr_arrival_us : float;
  rr_deadline_us : float;
  rr_queue_us : float;
  rr_linearize_us : float;
  rr_device_us : float;
  rr_total_us : float;
  rr_on_time : bool;
}

type window_report = {
  wr_index : int;
  wr_size : int;
  wr_nodes : int;
  wr_device : int;
  wr_cache_hit : bool;
  wr_attempts : int;
  wr_dispatch_us : float;
  wr_report : Runtime.report;
  wr_session : string option;  (* Some = a session's per-token window *)
  wr_packed : string list;
      (* member session names of a packed multi-session window, in pack
         order; [] for regular and size-1 session windows *)
}

type device_report = {
  dr_index : int;
  dr_backend : Backend.t;
  dr_failed : bool;
  dr_windows : int;
  dr_requests : int;
  dr_nodes : int;
  dr_busy_us : float;
  dr_utilization : float;
  dr_occupancy : float;
}

type aggregate = {
  num_requests : int;
  num_windows : int;
  mean_window : float;
  throughput_rps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  makespan_us : float;
}

type slo = {
  slo_seed : int;
  slo_chaos : bool;
  slo_degraded : bool;
  slo_completed : int;
  slo_lost : int;
  slo_shed : int;
  slo_rejected : int;
  slo_transients : int;
  slo_retries : int;
  slo_failovers : int;
  slo_deadline_misses : int;
  slo_on_time : int;
  slo_goodput_rps : float;
  slo_first_damage_us : float option;
      (* earliest SLO-visible damage on the simulated clock: the first
         shed arrival, lost window, or completion past its deadline —
         what the FMECA campaign measures detectability lead against *)
}

type plan_report = {
  pr_backend : string;
  pr_bucket : int;
  pr_plan : string;  (* serialized; "default" when the empty plan won *)
  pr_default_us : float;
  pr_tuned_us : float;
}

type session_report = {
  sn_name : string;
  sn_nodes : int;  (* current conversation size *)
  sn_windows : int;
  sn_delta_nodes : int;  (* nodes served via delta views *)
  sn_extends : int;  (* delta-view windows *)
  sn_cold : int;  (* full (re)linearizations *)
  sn_materializations : int;  (* geometric extend rebuilds *)
  sn_rebinds : int;  (* failover re-binds through the cache *)
  sn_packed : int;  (* tokens served inside packed multi-session windows *)
  sn_deadline_misses : int;  (* tokens completed past their deadline *)
  sn_device : int;  (* pinned device; -1 before the first window *)
  sn_bytes : int;  (* accounted bytes (layout + pinned state rows) *)
  sn_evictions : int;  (* times evicted, surviving restore cycles *)
  sn_restores : int;  (* times restored from a spill *)
}

type summary = {
  aggregate : aggregate;
  requests : request_report list;
  windows : window_report list;
  device_reports : device_report list;
  cache : Shape_cache.stats;
  slo : slo;
  results : (int * Tensor.t) list;
  sessions : session_report list;  (* by name; empty without sessions *)
  session_table : Session_store.stats;  (* bounded-table accounting *)
  packed_windows : int;  (* multi-session packed windows this drain *)
  packed_tokens : int;  (* session tokens those windows carried *)
  metrics : Metrics.snapshot option;
  metrics_at_damage : Metrics.snapshot option;
      (* the registry at the first observed SLO damage (with [obs]):
         which counters had already moved before anything was hurt *)
  plans : plan_report list;  (* per (backend, size-class), autotune only *)
  plan_cache : Plan_cache.stats option;
}

let session_report_of t sx =
  {
    sn_name = sx.sx_name;
    sn_nodes =
      (match sx.sx_structure with Some s -> Structure.num_nodes s | None -> 0);
    sn_windows = sx.sx_windows;
    sn_delta_nodes = sx.sx_delta_nodes;
    sn_extends = sx.sx_extends;
    sn_cold = sx.sx_cold;
    sn_materializations = sx.sx_materializations;
    sn_rebinds = sx.sx_rebinds;
    sn_packed = sx.sx_packed;
    sn_deadline_misses = sx.sx_deadline_misses;
    sn_device = Option.value sx.sx_device ~default:(-1);
    sn_bytes = session_accounted_bytes t sx;
    sn_evictions = Session_store.evictions_of t.eng_store sx.sx_name;
    sn_restores = Session_store.restores_of t.eng_store sx.sx_name;
  }

let sessions t =
  Hashtbl.fold (fun _ sx acc -> session_report_of t sx :: acc) t.eng_sessions []
  |> List.sort (fun a b -> compare a.sn_name b.sn_name)

let session_state t name st (node : Node.t) =
  match Hashtbl.find_opt t.eng_sessions name with
  | None -> None
  | Some sx -> Hashtbl.find_opt sx.sx_states (st, node.Node.id)

let close_session t name =
  (* Free the shape-cache entries the session's materializations
     published: before this, closed conversations parked their layouts
     in the cache until the next epoch flush. *)
  (match Hashtbl.find_opt t.eng_sessions name with
   | Some sx -> List.iter (Shape_cache.remove t.eng_cache) sx.sx_put_keys
   | None -> ());
  Session_store.forget t.eng_store name;
  Hashtbl.remove t.eng_sessions name

let session_table_stats t = Session_store.stats t.eng_store

let set_session_budget t budget = Session_store.set_budget t.eng_store budget

let evict_session t name = evict_session_now t name ~reason:`Explicit

(* Cut an arrival-ordered run of requests into windows: a window closes
   when it reaches [max_batch] members or when the next arrival falls
   past the oldest member's [max_wait_us] deadline.  Each window carries
   its ready time: a full window is ready when its last member arrives,
   a timer-closed partial one when the batching timer fires — and the
   trailing partial window when its last member arrives, because an
   explicit [drain] is a flush: nothing else is coming, so making the
   tail wait out the timer would charge queueing delay no real server
   would incur. *)
let form_windows policy pendings =
  let close ~flush first window_rev size =
    let members = List.rev window_rev in
    let last_arrival =
      (* neg_infinity, not 0: a 0 init would mask negative arrival
         clocks (a trace whose origin predates the simulation start). *)
      List.fold_left (fun m p -> Float.max m p.p_arrival) Float.neg_infinity members
    in
    let ready =
      if size >= policy.max_batch || flush then last_arrival
      else first +. policy.max_wait_us
    in
    (ready, members)
  in
  let rec go acc window size first = function
    | [] ->
      List.rev (if window = [] then acc else close ~flush:true first window size :: acc)
    | p :: rest ->
      if window = [] then go acc [ p ] 1 p.p_arrival rest
      else if size >= policy.max_batch || p.p_arrival > first +. policy.max_wait_us
      then go (close ~flush:false first window size :: acc) [ p ] 1 p.p_arrival rest
      else go acc (p :: window) (size + 1) first rest
  in
  go [] [] 0 0.0 pendings

let form_windows_bucketed policy pendings =
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let key = Dispatch.size_bucket p.p_nodes in
      let prev = Option.value (Hashtbl.find_opt buckets key) ~default:[] in
      Hashtbl.replace buckets key (p :: prev))
    pendings;
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) buckets []) in
  List.concat_map
    (fun k -> form_windows policy (List.rev (Hashtbl.find buckets k)))
    keys

let empty_aggregate =
  {
    num_requests = 0;
    num_windows = 0;
    mean_window = 0.0;
    throughput_rps = 0.0;
    mean_us = 0.0;
    p50_us = 0.0;
    p99_us = 0.0;
    makespan_us = 0.0;
  }

let aggregate_of requests ~num_windows =
  match requests with
  | [] -> empty_aggregate
  | _ ->
    let n = List.length requests in
    let totals = List.map (fun r -> r.rr_total_us) requests in
    let first_arrival =
      List.fold_left (fun m r -> Float.min m r.rr_arrival_us) infinity requests
    in
    let last_completion =
      List.fold_left
        (fun m r -> Float.max m (r.rr_arrival_us +. r.rr_total_us))
        0.0 requests
    in
    let makespan_us = last_completion -. first_arrival in
    {
      num_requests = n;
      num_windows;
      mean_window = float_of_int n /. float_of_int (max 1 num_windows);
      throughput_rps =
        (if makespan_us > 0.0 then float_of_int n /. makespan_us *. 1.0e6 else 0.0);
      mean_us = Stats.mean totals;
      p50_us = Stats.p50 totals;
      p99_us = Stats.p99 totals;
      makespan_us;
    }

(* The outcome of playing one window through the fault model. *)
type attempt_outcome =
  | Completed of {
      ao_dev : Dispatch.device;
      ao_dispatch : float;
      ao_completion : float;
      ao_report : Runtime.report;
      ao_attempts : int;
      ao_compiled : Lower.compiled;  (* what actually ran (tuned or not) *)
    }
  | Lost_window of float  (* the sim instant the window was declared lost *)

(* One playable drain item: a batched window of stranger requests, a
   single session token, or a packed window merging several sessions'
   ready tokens into one forest launch. *)
type drain_item =
  | I_regular of pending list
  | I_session of pending
  | I_pack of pending list

let drain t =
  let pendings =
    List.stable_sort
      (fun a b -> compare (a.p_arrival, a.p_id) (b.p_arrival, b.p_id))
      (List.rev t.queue)
  in
  t.queue <- [];
  t.queued <- 0;
  let shed = t.n_shed and rejected = t.n_rejected in
  let shed_at = t.first_shed_us in
  t.n_shed <- 0;
  t.n_rejected <- 0;
  t.first_shed_us <- infinity;
  let depth = List.length pendings in
  (* Degrade under overload: past the watermark, halve the batch window
     and force size bucketing — smaller, shape-homogeneous windows
     dispatch sooner, trading peak throughput for bounded latency. *)
  let degraded =
    match t.eng_watermark with Some w -> depth > w | None -> false
  in
  let policy =
    if degraded then
      {
        t.eng_policy with
        max_batch = max 1 (t.eng_policy.max_batch / 2);
        bucketing = By_size;
      }
    else t.eng_policy
  in
  (* Session submissions bypass batching: a token of a pinned
     conversation cannot share a forest with strangers — its layout and
     device are pinned — so each is its own size-1 window, ready at
     arrival. *)
  let sessionp, regular = List.partition (fun p -> p.p_session <> None) pendings in
  let windows =
    match policy.bucketing with
    | Fifo -> form_windows policy regular
    | By_size -> form_windows_bucketed policy regular
  in
  let pack_w = t.eng_config.Config.sessions.Session_store.pack_window in
  let pack_wait = t.eng_config.Config.sessions.Session_store.pack_wait_us in
  let session_items =
    if pack_w <= 1 then List.map (fun p -> (p.p_arrival, I_session p)) sessionp
    else begin
      (* Multi-session packing: group ready session tokens by pinned
         device into packed windows of up to [pack_window] members,
         admitting a token only within [pack_wait_us] of the pack's
         first arrival.  Only tokens predicted to serve as deltas pack
         (the authoritative delta check at play time falls any
         mispredicted member back to its own size-1 window); the
         prediction replays each session's structure evolution across
         the drain, so a conversation's second token can pack even when
         its first token of the same drain is what pins the session.
         Sessions not yet pinned group under a sentinel device (-1):
         playing their pack selects one device and pins every member to
         it, exactly as a size-1 window would pin its one session.  Two
         rules keep a session's own tokens in submission order: a token
         may only join a pack opened after the session's previous item,
         and an item's ready time is bumped to at least the ready time
         of every member session's previous item below. *)
      let last_item = Hashtbl.create 16 in
      let seq = ref 0 in
      let items = ref [] in  (* newest first *)
      let open_packs = ref [] in  (* oldest first *)
      (* name -> (pinned device, structure as of the session's last
         token below) — the grouping-time mirror of what
         [session_delta_view] will see when the token plays. *)
      let pred = Hashtbl.create 16 in
      let pred_of name =
        match Hashtbl.find_opt pred name with
        | Some st -> st
        | None ->
          let st =
            match Hashtbl.find_opt t.eng_sessions name with
            | None -> (None, `Fresh)
            | Some sx ->
              ( sx.sx_device,
                (match sx.sx_structure with
                 | Some s -> `Struct s
                 | None -> (
                   match sx.sx_restored_base with
                   | Some b -> `Restored b
                   | None -> `Fresh)) )
          in
          Hashtbl.replace pred name st;
          st
      in
      let predicted p =
        let name = Option.get p.p_session in
        let dev, base = pred_of name in
        let s = p.p_structure in
        let n = Structure.num_nodes s in
        let nodes = s.Structure.nodes in
        let ok =
          Lower.delta_compatible t.eng_compiled.Lower.options
          && (match base with
              | `Struct prev ->
                let b = Structure.num_nodes prev in
                n > b && b > 0
                && s.Structure.kind = prev.Structure.kind
                && nodes.(0) == prev.Structure.nodes.(0)
                && nodes.(b - 1) == prev.Structure.nodes.(b - 1)
              | `Restored b -> n > b && b > 0
              | `Fresh -> false)
        in
        Hashtbl.replace pred name (dev, `Struct s);
        if ok then Some (match dev with Some d -> d | None -> -1) else None
      in
      List.iter
        (fun p ->
          let name = Option.get p.p_session in
          let after_last oseq =
            match Hashtbl.find_opt last_item name with
            | Some ls -> oseq > ls
            | None -> true
          in
          match predicted p with
          | None ->
            incr seq;
            Hashtbl.replace last_item name !seq;
            items := (!seq, `Single p) :: !items
          | Some d -> (
            let joinable (oseq, odev, ofirst, _, ocount) =
              odev = d && !ocount < pack_w
              && p.p_arrival <= ofirst +. pack_wait
              && after_last oseq
            in
            match List.find_opt joinable !open_packs with
            | Some (oseq, _, _, oms, ocount) ->
              oms := p :: !oms;
              incr ocount;
              Hashtbl.replace last_item name oseq
            | None ->
              incr seq;
              let op = (!seq, d, p.p_arrival, ref [ p ], ref 1) in
              open_packs := !open_packs @ [ op ];
              Hashtbl.replace last_item name !seq;
              items := (!seq, `Pack op) :: !items))
        sessionp;
      (* Materialize in creation order; a pack is ready when its last
         member arrives, and every item waits for its member sessions'
         previous items so no session's tokens can reorder. *)
      let prev_ready = Hashtbl.create 16 in
      let ready_of base names =
        let r =
          List.fold_left
            (fun r nm ->
              match Hashtbl.find_opt prev_ready nm with
              | Some pr -> Float.max r pr
              | None -> r)
            base names
        in
        List.iter (fun nm -> Hashtbl.replace prev_ready nm r) names;
        r
      in
      List.rev_map
        (fun (_, item) ->
          match item with
          | `Single p ->
            (ready_of p.p_arrival [ Option.get p.p_session ], I_session p)
          | `Pack (_, _, _, oms, ocount) ->
            let members = List.rev !oms in
            if !ocount = 1 then
              let p = List.hd members in
              (ready_of p.p_arrival [ Option.get p.p_session ], I_session p)
            else
              let base =
                List.fold_left
                  (fun m p -> Float.max m p.p_arrival)
                  Float.neg_infinity members
              in
              let names = List.map (fun p -> Option.get p.p_session) members in
              (ready_of base names, I_pack members))
        (List.rev !items)
      |> List.rev
    end
  in
  let windows =
    List.map (fun (r, ms) -> (r, I_regular ms)) windows @ session_items
  in
  (* Play the windows through the simulated devices in ready order: the
     dispatch policy picks a device per window, the window occupies it
     from max(device free, window ready) until completion, priced on
     that device's own backend model.  Device clocks are fresh per
     drain (the simulation's origin is the trace's arrival clock); the
     shape cache persists across drains. *)
  let windows =
    List.stable_sort (fun (ra, _) (rb, _) -> compare ra rb) windows
  in
  (* Observability is read-only: every span and metric below copies a
     value the simulation already computed.  The [None] path allocates
     nothing (the guards keep even the args lists unbuilt). *)
  let obs = t.eng_obs in
  let device_track d = Printf.sprintf "device %d" d in
  (match obs with
   | None -> ()
   | Some _ ->
     List.iter
       (fun p ->
         Obs.sim_instant obs ~track:"requests" ~name:"arrival"
           ~args:[ ("id", CT.Int p.p_id); ("nodes", CT.Int p.p_nodes) ]
           ~ts_us:p.p_arrival ())
       pendings);
  let disp = Dispatch.create ~policy:t.eng_dispatch t.eng_devices in
  (* Chaos mode: with a fault spec installed (even an empty one), the
     simulated clock charges a zero linearization cost instead of the
     measured host wall clock, so every fault decision — and therefore
     the whole summary — is a pure function of (seed, spec, trace).
     The measured wall clock would leak nondeterminism into dispatch
     times and flip marginal fault draws between identical runs. *)
  let chaos = t.eng_faults <> None in
  let inj =
    Option.map
      (fun spec ->
        Fault.create ~seed:t.eng_seed ~devices:(List.length t.eng_devices) spec)
      t.eng_faults
  in
  let fail_at d =
    match inj with Some i -> Fault.fail_at i d | None -> infinity
  in
  let transients = ref 0 and retries = ref 0 and failovers = ref 0 in
  let lost = ref 0 in
  (* First SLO-visible damage on the simulated clock — the earliest
     shed arrival, lost window, or missed deadline — and the metrics
     registry as it stood when damage was first observed in processing
     order.  These are the FMECA campaign's detectability inputs: how
     long before anything was hurt, and which counters had already
     moved by then. *)
  let first_damage = ref infinity in
  let damage_metrics = ref None in
  let note_damage at =
    (match !damage_metrics with
     | None -> damage_metrics := Obs.snapshot obs
     | Some _ -> ());
    if at < !first_damage then first_damage := at
  in
  if shed > 0 then note_damage shed_at;
  let wreports = ref [] in
  let rreports = ref [] in
  let results = ref [] in
  let windex = ref 0 in
  (* Mark fail-stopped devices whose time has come, so dispatch avoids
     them; an in-flight abort is detected separately below. *)
  let mark_dead now =
    Array.iter
      (fun (d : Dispatch.device) ->
        if (not d.Dispatch.dev_failed) && fail_at d.Dispatch.dev_index <= now then
          Dispatch.fail d)
      (Dispatch.devices disp)
  in
  (* The retry/failover loop, shared by regular and session windows.
     [n] counts transient re-executions (the retry budget); failover
     re-dispatches after a fail-stop are free — the work was lost to
     the fleet, not to a flaky kernel.  A window's linearization is
     never redone on a retry: the forest (or delta view) is already
     built, and a failover on a cached shape re-uses the same numbering
     (that is the shape cache's contract).  [price dev] returns what
     actually runs on [dev] (the plan-tuned artifact for regular
     windows) and its backend report.  [sxs] pins a session window (or
     a packed window's members) to its device; when the pinned device
     died, every member session re-pins and re-binds its materialized
     layout through the shape cache onto the survivor — a payload
     re-bind, never a fresh linearization. *)
  let play ~sxs ~size ~nodes ~lin_us ~price ready0 =
    let rec attempt n ready =
      mark_dead ready;
      if Dispatch.alive disp = 0 then Lost_window ready
      else begin
        let dev =
          match sxs with
          | [] -> Dispatch.select disp ~nodes
          | _ ->
            let devs = Dispatch.devices disp in
            (* The window's pinned device: the first member's, if it
               survives (a packed window's members share a pin by
               construction; they can only diverge when an earlier
               failover this drain re-pinned some of them). *)
            let dev =
              match
                List.find_map
                  (fun sx ->
                    match sx.sx_device with
                    | Some di when not devs.(di).Dispatch.dev_failed ->
                      Some devs.(di)
                    | _ -> None)
                  sxs
              with
              | Some d -> d
              | None -> Dispatch.select disp ~nodes
            in
            List.iter
              (fun sx ->
                match sx.sx_device with
                | Some di when di = dev.Dispatch.dev_index -> ()
                | prev ->
                  (match (prev, sx.sx_forest) with
                   | Some _, Some f ->
                     sx.sx_rebinds <- sx.sx_rebinds + 1;
                     let ss =
                       Array.to_list
                         (Array.map
                            (fun sp -> sp.Linearizer.span_structure)
                            f.Linearizer.spans)
                     in
                     ignore
                       (Shape_cache.find_or_linearize ?obs t.eng_cache
                          ~max_children:t.model.Ra.max_children ss)
                   | _ -> ());
                  sx.sx_device <- Some dev.Dispatch.dev_index)
              sxs;
            dev
        in
        let dispatch = Float.max dev.Dispatch.dev_free_us ready in
        let ft = fail_at dev.Dispatch.dev_index in
        if ft <= dispatch then begin
          (* The device dies while the window waits in its queue slot:
             nothing was in flight, just pick another device. *)
          Dispatch.fail dev;
          attempt n ready
        end
        else begin
          let compiled, report = price dev in
          let factor =
            match inj with
            | Some i ->
              Fault.latency_factor i ~device:dev.Dispatch.dev_index ~at_us:dispatch
            | None -> 1.0
          in
          let report =
            if factor = 1.0 then report else Runtime.scale_report report factor
          in
          let device_us = report.Runtime.latency.Backend.total_us in
          (* The host-side linearization is charged once, on the first
             execution; a retry re-launches kernels, not the
             inspector. *)
          let lin_charge = if n = 0 then lin_us else 0.0 in
          let completion = dispatch +. lin_charge +. device_us in
          if ft < completion then begin
            (* In-flight fail-stop: the window aborts at the instant
               the device dies and fails over to a survivor. *)
            Dispatch.commit dev ~dispatch_us:dispatch ~completion_us:ft
              ~requests:0 ~nodes:0 ~occupancy:report.Runtime.occupancy;
            Dispatch.fail dev;
            incr failovers;
            Obs.incr obs "faults.failovers";
            (match obs with
             | None -> ()
             | Some _ ->
               Obs.sim_span obs ~track:(device_track dev.Dispatch.dev_index)
                 ~name:"abort"
                 ~args:[ ("fault", CT.Str "failstop"); ("size", CT.Int size);
                         ("nodes", CT.Int nodes) ]
                 ~start_us:dispatch ~end_us:ft ());
            attempt n ft
          end
          else begin
            let aborted =
              match inj with
              | Some i ->
                Fault.draw_transient i ~device:dev.Dispatch.dev_index
                  ~at_us:dispatch
              | None -> false
            in
            if aborted then begin
              (* The kernel ran and the fault was detected at
                 completion: the wasted execution still occupied the
                 device. *)
              incr transients;
              Obs.incr obs "faults.transients";
              Dispatch.commit dev ~dispatch_us:dispatch ~completion_us:completion
                ~requests:0 ~nodes ~occupancy:report.Runtime.occupancy;
              (match obs with
               | None -> ()
               | Some _ ->
                 Obs.sim_span obs ~track:(device_track dev.Dispatch.dev_index)
                   ~name:"transient"
                   ~args:[ ("attempt", CT.Int (n + 1)); ("size", CT.Int size);
                           ("nodes", CT.Int nodes) ]
                   ~start_us:dispatch ~end_us:completion ());
              if n >= t.eng_retry.Fault.max_retries then Lost_window completion
              else begin
                incr retries;
                Obs.incr obs "faults.retries";
                let delay =
                  Fault.backoff_us (Option.get inj) ~retry:t.eng_retry
                    ~device:dev.Dispatch.dev_index ~attempt:n
                in
                attempt (n + 1) (completion +. delay)
              end
            end
            else begin
              Dispatch.commit dev ~dispatch_us:dispatch ~completion_us:completion
                ~requests:size ~nodes ~occupancy:report.Runtime.occupancy;
              Completed
                {
                  ao_dev = dev;
                  ao_dispatch = dispatch;
                  ao_completion = completion;
                  ao_report = report;
                  ao_attempts = n + 1;
                  ao_compiled = compiled;
                }
            end
          end
        end
      end
    in
    attempt 0 ready0
  in
  let record_window ~i ~size ~nodes ~hit ~session ?(packed = []) ~dev ~dispatch
      ~completion ~report ~attempts () =
    (match obs with
     | None -> ()
     | Some _ ->
       Obs.sim_span obs ~track:(device_track dev.Dispatch.dev_index)
         ~name:"window"
         ~args:
           ([ ("index", CT.Int i); ("size", CT.Int size);
              ("nodes", CT.Int nodes); ("hit", CT.Bool hit);
              ("attempts", CT.Int attempts) ]
           @ (match session with
              | Some s -> [ ("session", CT.Str s) ]
              | None -> [])
           @
           match packed with
           | [] -> []
           | names -> [ ("packed", CT.Str (String.concat "," names)) ])
         ~start_us:dispatch ~end_us:completion ());
    wreports :=
      {
        wr_index = i;
        wr_size = size;
        wr_nodes = nodes;
        wr_device = dev.Dispatch.dev_index;
        wr_cache_hit = hit;
        wr_attempts = attempts;
        wr_dispatch_us = dispatch;
        wr_report = report;
        wr_session = session;
        wr_packed = packed;
      }
      :: !wreports
  in
  let record_request ~i ~size ~lin_us ~dev ~dispatch ~completion ~device_us p =
    bump_clock t completion;
    rreports :=
      {
        rr_id = p.p_id;
        rr_nodes = p.p_nodes;
        rr_window = i;
        rr_window_size = size;
        rr_device = dev.Dispatch.dev_index;
        rr_arrival_us = p.p_arrival;
        rr_deadline_us = p.p_deadline;
        rr_queue_us = dispatch -. p.p_arrival;
        rr_linearize_us = lin_us;
        rr_device_us = device_us;
        rr_total_us = completion -. p.p_arrival;
        rr_on_time = completion <= p.p_deadline;
      }
      :: !rreports;
    (* A missed deadline hurts the SLO the instant the deadline passes
       without a completion, not when the late answer finally lands. *)
    if completion > p.p_deadline then note_damage p.p_deadline
  in
  let packed_windows = ref 0 and packed_tokens = ref 0 in
  (* ---- session serving helpers (shared by size-1 and packed windows) ----
     [serve_token] does one token's inspector work (restore if spilled,
     then the delta/cold decision), mutating the session's scratch
     tables — a packed window's members are all served, in pack order,
     before any of them plays.  [play_session_single] is the PR 7
     size-1 path; [play_session_packed] merges the members' delta views
     into one packed forest window and splits the results back out. *)
  let serve_token p =
    let name = Option.get p.p_session in
    let s = p.p_structure in
    let sx = session_of t name in
    let n = Structure.num_nodes s in
    (* Re-admission: a spilled conversation coming back under its name
       restores its scratch numbering and persisted rows before the
       token is served; the priced restore cost is charged into this
       token's linearization charge (it is deterministic, so chaos mode
       stays byte-reproducible). *)
    let restore_us =
      if
        sx.sx_structure = None
        && sx.sx_restored_base = None
        && Session_store.has_spill t.eng_store name
      then begin
        match try_restore t sx s with
        | Some cost ->
          Obs.incr obs "sessions.restores";
          (match obs with
           | None -> ()
           | Some _ ->
             Obs.sim_instant obs ~track:"sessions" ~name:"restore"
               ~args:
                 [ ("session", CT.Str name); ("nodes", CT.Int n);
                   ("restore_us", CT.Float cost) ]
               ~ts_us:t.eng_clock_us ());
          cost
        | None -> 0.0
      end
      else 0.0
    in
    (* All inspector work for the token — delta validation, scratch
       append, view construction, geometric materialization, or the
       cold fallback through the cache — under one timer: that is the
       per-token cost BENCH_incremental compares against a cold
       re-linearization. *)
    let serve, lin_wall =
      Stats.time_us (fun () ->
          let compat = Lower.delta_compatible t.eng_compiled.Lower.options in
          let dv = if compat then session_delta_view sx s else None in
          match dv with
          | Some (view, news, base) ->
            sx.sx_structure <- Some s;
            sx.sx_restored_base <- None;
            sx.sx_extends <- sx.sx_extends + 1;
            sx.sx_delta_nodes <- sx.sx_delta_nodes + Array.length news;
            session_materialize ?obs t sx s;
            S_delta { sd_view = view; sd_news = news; sd_base = base }
          | None ->
            (* Not pure growth of the pinned conversation (or the
               compiled options cannot serve deltas): full
               (re)linearization through the shape cache.  A different
               conversation under the same name drops the persisted
               state — its node identities no longer mean the same
               thing. *)
            let fresh =
              match sx.sx_structure with
              | Some prev ->
                Structure.num_nodes prev = 0 || n = 0
                || not (s.Structure.nodes.(0) == prev.Structure.nodes.(0))
              | None -> false
            in
            if fresh then reset_session sx;
            let fl, hit =
              Shape_cache.find_or_linearize ?obs t.eng_cache
                ~max_children:t.model.Ra.max_children [ s ]
            in
            sx.sx_structure <- Some s;
            sx.sx_restored_base <- None;
            sx.sx_forest <- Some fl;
            sx.sx_mat_nodes <- n;
            sx.sx_cold <- sx.sx_cold + 1;
            sx.sx_height <-
              Array.length fl.Linearizer.lin.Linearizer.batches - 1;
            if Lower.delta_compatible t.eng_compiled.Lower.options then begin
              (* Re-seed the scratch numbering so the next token can be
                 served as a delta. *)
              sx.sc_used <- 0;
              ensure_session_capacity sx n;
              Array.iter (fun nd -> push_node sx nd) s.Structure.nodes
            end;
            S_cold (fl, hit))
    in
    sx.sx_windows <- sx.sx_windows + 1;
    (p, name, sx, serve, lin_wall, restore_us)
  in
  (* Bounded-table bookkeeping for a token just served: learn the
     model's per-node state-row bytes from the rows actually stored
     (hidden sizes are not knowable at build time), re-account the
     session at its new size, then run the eviction pass — the budget
     invariant holds after every session window, not just at drain end,
     which is also what makes evict/restore churn observable inside a
     single drain. *)
  let account_session p sx =
    let s = p.p_structure in
    (if sx.sx_row_bytes = 0 && t.eng_params <> None then
       match s.Structure.roots with
       | root :: _ ->
         sx.sx_row_bytes <-
           List.fold_left
             (fun acc (st, _) ->
               match Hashtbl.find_opt sx.sx_states (st, root.Node.id) with
               | Some v -> acc + (8 * Tensor.numel v)
               | None -> acc)
             0 t.eng_compiled.Lower.state_tensors
       | [] -> ());
    Session_store.touch t.eng_store sx.sx_name
      ~bytes:(session_accounted_bytes t sx) ~now_us:t.eng_clock_us;
    enforce_sessions ?obs t
  in
  let play_session_single ~ready (p, name, sx, serve, lin_wall, restore_us) =
    let s = p.p_structure in
    let n = Structure.num_nodes s in
    let lin_us = (if chaos then 0.0 else lin_wall) +. restore_us in
    let nodes, hit, run_lin =
      match serve with
      | S_delta { sd_view; sd_news; _ } ->
        (Array.length sd_news, false, sd_view)
      | S_cold (fl, hit) -> (n, hit, fl.Linearizer.lin)
    in
    let size = 1 in
    (* Size-1 session windows skip plan tuning: they are deliberately
       tiny (a token's delta), not the size-classes the tuner buckets,
       and the pinned device would make the tuned artifact churn on
       every failover. *)
    let price dev =
      ( t.eng_compiled,
        Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us:lin_us
          t.eng_compiled ~backend:dev.Dispatch.dev_backend run_lin )
    in
    (match play ~sxs:[ sx ] ~size ~nodes ~lin_us ~price ready with
     | Lost_window at ->
       lost := !lost + size;
       note_damage at;
       bump_clock t at
     | Completed { ao_dev = dev; ao_dispatch = dispatch;
                   ao_completion = completion; ao_report = report;
                   ao_attempts = attempts; ao_compiled = _ } ->
       let i = !windex in
       incr windex;
       let device_us = report.Runtime.latency.Backend.total_us in
       record_window ~i ~size ~nodes ~hit ~session:(Some name) ~dev
         ~dispatch ~completion ~report ~attempts ();
       (* Numeric serving: a delta run pre-seeds the boundary rows (the
          old children of appended nodes) from the session's persisted
          states, executes only the delta batches, and persists the
          appended nodes' states — bitwise identical to re-running the
          whole conversation, which is what the cold path does. *)
       (match t.eng_params with
        | Some params ->
          let st_names = List.map fst t.eng_compiled.Lower.state_tensors in
          let store_states ex (nd : Node.t) sid =
            List.iter
              (fun st ->
                Hashtbl.replace sx.sx_states (st, nd.Node.id)
                  (Lower.state_value_lin ex.Runtime.exec_bound
                     ex.Runtime.exec_compiled st sid))
              st_names
          in
          (match serve with
           | S_delta { sd_view; sd_news; sd_base } ->
             let preload bound =
               Array.iter
                 (fun (nd : Node.t) ->
                   Array.iter
                     (fun (c : Node.t) ->
                       if c.Node.id < sd_base then
                         List.iter
                           (fun st ->
                             match
                               Hashtbl.find_opt sx.sx_states (st, c.Node.id)
                             with
                             | Some v ->
                               Lower.set_state_lin bound t.eng_compiled st
                                 sx.sc_sid.(c.Node.id) v
                             | None ->
                               failwith
                                 "Engine: missing persisted state at the \
                                  session's delta boundary")
                           st_names)
                     nd.Node.children)
                 sd_news
             in
             let ex =
               Runtime.execute_lin ~preload t.eng_compiled ~params sd_view
             in
             Array.iter
               (fun nd -> store_states ex nd sx.sc_sid.(nd.Node.id))
               sd_news
           | S_cold (fl, _) ->
             let ex =
               Runtime.execute_lin t.eng_compiled ~params fl.Linearizer.lin
             in
             let span = fl.Linearizer.spans.(0) in
             Array.iter
               (fun (nd : Node.t) ->
                 store_states ex nd span.Linearizer.span_ids.(nd.Node.id))
               s.Structure.nodes);
          let out = List.hd t.model.Ra.outputs in
          (match s.Structure.roots with
           | [] -> ()
           | root :: _ -> (
             match Hashtbl.find_opt sx.sx_states (out, root.Node.id) with
             | Some v -> results := (p.p_id, v) :: !results
             | None -> ()))
        | None -> ());
       record_request ~i ~size ~lin_us ~dev ~dispatch ~completion ~device_us
         p;
       if completion > p.p_deadline then
         sx.sx_deadline_misses <- sx.sx_deadline_misses + 1);
    account_session p sx
  in
  let play_session_packed ~ready toks pk =
    let size = List.length toks in
    let names = List.map (fun (_, name, _, _, _, _) -> name) toks in
    let sxs = List.map (fun (_, _, sx, _, _, _) -> sx) toks in
    let view = pk.Linearizer.pk_view in
    (* The window's work is its delta nodes; the old-prefix rows below
       [pk_base] exist only to receive pre-seeded boundary states and
       are never iterated by a batch. *)
    let nodes = view.Linearizer.num_nodes - pk.Linearizer.pk_base in
    let lin_us =
      List.fold_left
        (fun acc (_, _, _, _, lw, ru) ->
          acc +. (if chaos then 0.0 else lw) +. ru)
        0.0 toks
    in
    let price dev =
      (* Packed windows are real batch work, so under autotune they do
         consult the plan cache — in the packed key space, so a plan
         tuned for regular windows of the same size class is never
         silently reused for level-merged session batches. *)
      let compiled =
        match t.eng_plans with
        | None -> t.eng_compiled
        | Some pc ->
          let entry, _hit =
            Plan_cache.find_or_tune ?obs:t.eng_obs pc ~packed:true
              ~compiled:t.eng_compiled ~backend:dev.Dispatch.dev_backend
              ~lin:view ~nodes
          in
          entry.Plan_cache.pe_compiled
      in
      ( compiled,
        Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us:lin_us
          compiled ~backend:dev.Dispatch.dev_backend view )
    in
    (match play ~sxs ~size ~nodes ~lin_us ~price ready with
     | Lost_window at ->
       lost := !lost + size;
       note_damage at;
       bump_clock t at
     | Completed { ao_dev = dev; ao_dispatch = dispatch;
                   ao_completion = completion; ao_report = report;
                   ao_attempts = attempts; ao_compiled = ran_compiled } ->
       let i = !windex in
       incr windex;
       incr packed_windows;
       packed_tokens := !packed_tokens + size;
       Obs.incr obs "sessions.packed_windows";
       Obs.incr obs ~by:size "sessions.packed_tokens";
       let device_us = report.Runtime.latency.Backend.total_us in
       record_window ~i ~size ~nodes ~hit:false ~session:None ~packed:names
         ~dev ~dispatch ~completion ~report ~attempts ();
       (* Numeric serving, one launch for every member: pre-seed each
          member's boundary rows at their packed ids, execute the merged
          batches once, then split the appended nodes' states and the
          per-request results back out per member — bitwise identical
          to serving the members as size-1 windows. *)
       (match t.eng_params with
        | Some params ->
          let st_names = List.map fst t.eng_compiled.Lower.state_tensors in
          let preload bound =
            List.iteri
              (fun mi (_, _, sx, serve, _, _) ->
                match serve with
                | S_cold _ -> assert false
                | S_delta { sd_news; sd_base; _ } ->
                  Array.iter
                    (fun (nd : Node.t) ->
                      Array.iter
                        (fun (c : Node.t) ->
                          if c.Node.id < sd_base then
                            List.iter
                              (fun st ->
                                match
                                  Hashtbl.find_opt sx.sx_states (st, c.Node.id)
                                with
                                | Some v ->
                                  Lower.set_state_lin bound ran_compiled st
                                    (Linearizer.pack_id pk ~member:mi
                                       sx.sc_sid.(c.Node.id))
                                    v
                                | None ->
                                  failwith
                                    "Engine: missing persisted state at a \
                                     packed window's delta boundary")
                              st_names)
                        nd.Node.children)
                    sd_news)
              toks
          in
          let ex = Runtime.execute_lin ~preload ran_compiled ~params view in
          let out = List.hd t.model.Ra.outputs in
          List.iteri
            (fun mi (p, _, sx, serve, _, _) ->
              match serve with
              | S_cold _ -> assert false
              | S_delta { sd_news; _ } ->
                Array.iter
                  (fun (nd : Node.t) ->
                    let pid =
                      Linearizer.pack_id pk ~member:mi sx.sc_sid.(nd.Node.id)
                    in
                    List.iter
                      (fun st ->
                        Hashtbl.replace sx.sx_states (st, nd.Node.id)
                          (Lower.state_value_lin ex.Runtime.exec_bound
                             ex.Runtime.exec_compiled st pid))
                      st_names)
                  sd_news;
                (match p.p_structure.Structure.roots with
                 | [] -> ()
                 | root :: _ -> (
                   match Hashtbl.find_opt sx.sx_states (out, root.Node.id) with
                   | Some v -> results := (p.p_id, v) :: !results
                   | None -> ())))
            toks
        | None -> ());
       List.iter
         (fun (p, _, sx, _, lw, ru) ->
           let tok_lin = (if chaos then 0.0 else lw) +. ru in
           record_request ~i ~size ~lin_us:tok_lin ~dev ~dispatch ~completion
             ~device_us p;
           sx.sx_packed <- sx.sx_packed + 1;
           if completion > p.p_deadline then
             sx.sx_deadline_misses <- sx.sx_deadline_misses + 1)
         toks);
    List.iter (fun (p, _, sx, _, _, _) -> account_session p sx) toks
  in
  List.iter
    (fun (ready, item) ->
      (* Advance the monotone engine clock window by window (windows
         play in ready order): sessions age against the simulated time
         the drain has actually reached, so a conversation that went
         quiet early shows real idle time to the TTL pass instead of
         being backdated to the drain's newest arrival. *)
      bump_clock t ready;
      match item with
      | I_regular members ->
        let structures = List.map (fun p -> p.p_structure) members in
        (* Linearize exactly once and reuse the result, timing that one
           run: a cache hit is a payload re-bind, a miss the full
           inspector pass — either way the wall clock measured is the
           wall clock charged (chaos mode charges zero; see above). *)
        let (fl, hit), lin_wall =
          Stats.time_us (fun () ->
              Shape_cache.find_or_linearize ?obs t.eng_cache
                ~max_children:t.model.Ra.max_children structures)
        in
        let lin_us = if chaos then 0.0 else lin_wall in
        let nodes = fl.Linearizer.lin.Linearizer.num_nodes in
        let size = List.length members in
        let price dev =
          (* With autotune on, the window runs the plan tuned for this
             device's (backend, size-class); the first window of a
             class pays the (host-side) search.  The plan preserves
             semantics bitwise, so retries and failovers across
             differently-tuned devices cannot change results. *)
          let compiled =
            match t.eng_plans with
            | None -> t.eng_compiled
            | Some pc ->
              let entry, _hit =
                Plan_cache.find_or_tune ?obs:t.eng_obs pc
                  ~compiled:t.eng_compiled ~backend:dev.Dispatch.dev_backend
                  ~lin:fl.Linearizer.lin ~nodes
              in
              entry.Plan_cache.pe_compiled
          in
          let report =
            Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us:lin_us
              compiled ~backend:dev.Dispatch.dev_backend fl.Linearizer.lin
          in
          (compiled, report)
        in
        (match play ~sxs:[] ~size ~nodes ~lin_us ~price ready with
         | Lost_window at ->
           lost := !lost + size;
           note_damage at;
           bump_clock t at
         | Completed { ao_dev = dev; ao_dispatch = dispatch;
                       ao_completion = completion; ao_report = report;
                       ao_attempts = attempts; ao_compiled = ran_compiled } ->
           let i = !windex in
           incr windex;
           let device_us = report.Runtime.latency.Backend.total_us in
           record_window ~i ~size ~nodes ~hit ~session:None ~dev ~dispatch
             ~completion ~report ~attempts ();
           (* Numeric serving: with a parameter resolver installed, run
              the window's forest through the compiled kernels once
              (retries and failovers re-dispatch the same
              linearization, so the numbers cannot depend on the fault
              history — the property the chaos tests pin bitwise). *)
           (match t.eng_params with
            | Some params ->
              let ex = Runtime.execute_lin ran_compiled ~params fl.Linearizer.lin in
              let out = List.hd t.model.Ra.outputs in
              List.iteri
                (fun k p ->
                  match p.p_structure.Structure.roots with
                  | [] -> ()
                  | root :: _ ->
                    let span = fl.Linearizer.spans.(k) in
                    let v =
                      Lower.state_value_lin ex.Runtime.exec_bound
                        ex.Runtime.exec_compiled out
                        span.Linearizer.span_ids.(root.Node.id)
                    in
                    results := (p.p_id, v) :: !results)
                members
            | None -> ());
           List.iter
             (record_request ~i ~size ~lin_us ~dev ~dispatch ~completion
                ~device_us)
             members)
      | I_session p -> play_session_single ~ready (serve_token p)
      | I_pack members ->
        (* Serve every member's inspector work first, in pack order
           (scratch appends are per-session, so order across sessions
           only matters for determinism, which pack order provides);
           members that came out cold — or whose delta views refuse to
           merge — fall back to the size-1 path, still at this pack's
           ready time. *)
        let served = List.map serve_token members in
        let deltas, colds =
          List.partition
            (fun (_, _, _, serve, _, _) ->
              match serve with S_delta _ -> true | S_cold _ -> false)
            served
        in
        List.iter (play_session_single ~ready) colds;
        (match deltas with
         | [] -> ()
         | [ one ] -> play_session_single ~ready one
         | toks -> (
           let views =
             List.map
               (fun (_, _, _, serve, _, _) ->
                 match serve with
                 | S_delta d -> d.sd_view
                 | S_cold _ -> assert false)
               toks
           in
           match Linearizer.pack_views views with
           | pk -> play_session_packed ~ready toks pk
           | exception Linearizer.Rejected _ ->
             List.iter (play_session_single ~ready) toks)))
    windows;
  (* End-of-drain eviction pass at the drain's high-water simulated
     clock: TTL expiries age out here even when their session saw no
     traffic, and a mid-drain budget change (set_session_budget) takes
     effect.  Runs before the trace bounds are read so the eviction
     instants land inside the drain span. *)
  enforce_sessions ?obs t;
  let session_table = Session_store.stats t.eng_store in
  let requests = List.sort (fun a b -> compare a.rr_id b.rr_id) !rreports in
  let windows = List.rev !wreports in
  let aggregate = aggregate_of requests ~num_windows:(List.length windows) in
  let device_reports =
    Array.to_list
      (Array.map
         (fun (d : Dispatch.device) ->
           {
             dr_index = d.Dispatch.dev_index;
             dr_backend = d.Dispatch.dev_backend;
             dr_failed = d.Dispatch.dev_failed;
             dr_windows = d.Dispatch.dev_windows;
             dr_requests = d.Dispatch.dev_requests;
             dr_nodes = d.Dispatch.dev_nodes;
             dr_busy_us = d.Dispatch.dev_busy_us;
             dr_utilization =
               (if aggregate.makespan_us > 0.0 then
                  d.Dispatch.dev_busy_us /. aggregate.makespan_us
                else 0.0);
             dr_occupancy = Dispatch.mean_occupancy d;
           })
         (Dispatch.devices disp))
  in
  let on_time = List.length (List.filter (fun r -> r.rr_on_time) requests) in
  let slo =
    {
      slo_seed = t.eng_seed;
      slo_chaos = chaos;
      slo_degraded = degraded;
      slo_completed = aggregate.num_requests;
      slo_lost = !lost;
      slo_shed = shed;
      slo_rejected = rejected;
      slo_transients = !transients;
      slo_retries = !retries;
      slo_failovers = !failovers;
      slo_deadline_misses = aggregate.num_requests - on_time;
      slo_on_time = on_time;
      slo_goodput_rps =
        (if aggregate.makespan_us > 0.0 then
           float_of_int on_time /. aggregate.makespan_us *. 1.0e6
         else 0.0);
      slo_first_damage_us =
        (if !first_damage < infinity then Some !first_damage else None);
    }
  in
  (* Metrics and the enclosing drain span, recorded last so the span
     covers everything (lost-window activity included — [sim_bounds] is
     the recorded extent, not the completed makespan). *)
  (match obs with
   | None -> ()
   | Some o ->
     Obs.incr obs ~by:aggregate.num_requests "requests.completed";
     Obs.incr obs ~by:!lost "requests.lost";
     Obs.incr obs ~by:shed "requests.shed";
     Obs.incr obs ~by:rejected "requests.rejected";
     Obs.incr obs ~by:(List.length windows) "windows.formed";
     Obs.set_gauge obs "queue.depth" (float_of_int depth);
     Obs.set_gauge obs "drain.degraded" (if degraded then 1.0 else 0.0);
     Obs.set_gauge obs "cache.hit_rate"
       (Shape_cache.hit_rate (Shape_cache.stats t.eng_cache));
     if
       session_table.Session_store.st_live > 0
       || session_table.Session_store.st_spilled > 0
       || session_table.Session_store.st_evictions > 0
     then begin
       Obs.set_gauge obs "sessions.live"
         (float_of_int session_table.Session_store.st_live);
       Obs.set_gauge obs "sessions.bytes"
         (float_of_int session_table.Session_store.st_bytes)
     end;
     List.iter
       (fun d ->
         Obs.set_gauge obs
           (Printf.sprintf "device%d.utilization" d.dr_index)
           d.dr_utilization)
       device_reports;
     List.iter
       (fun r ->
         Obs.observe obs "latency.total_us" r.rr_total_us;
         Obs.observe obs "latency.queue_us" r.rr_queue_us)
       requests;
     List.iter
       (fun w -> Obs.observe obs "window.size" (float_of_int w.wr_size))
       windows;
     (* Stamped before the drain span so [sim_bounds] covers it: a
        trace scanner measuring detectability reads this instant as
        "the SLO was first hurt here". *)
     if !first_damage < infinity then
       Obs.sim_instant obs ~track:"slo" ~name:"slo_damage"
         ~args:[ ("at_us", CT.Float !first_damage) ]
         ~ts_us:!first_damage ();
     (match Obs.sim_bounds o with
      | Some (lo, hi) ->
        Obs.sim_span obs ~track:"engine" ~name:"drain"
          ~args:[ ("requests", CT.Int aggregate.num_requests);
                  ("windows", CT.Int (List.length windows));
                  ("lost", CT.Int !lost) ]
          ~start_us:lo ~end_us:hi ()
      | None -> ()));
  let plans =
    match t.eng_plans with
    | None -> []
    | Some pc ->
      List.map
        (fun (e : Plan_cache.entry) ->
          {
            pr_backend = e.Plan_cache.pe_backend;
            pr_bucket = e.Plan_cache.pe_bucket;
            pr_plan = Cortex_ilir.Schedule.plan_to_string e.Plan_cache.pe_plan;
            pr_default_us = e.Plan_cache.pe_default_us;
            pr_tuned_us = e.Plan_cache.pe_tuned_us;
          })
        (Plan_cache.entries pc)
  in
  let plan_cache = Option.map Plan_cache.stats t.eng_plans in
  (match plan_cache with
   | None -> ()
   | Some s ->
     Obs.set_gauge obs "plan_cache.hit_rate" (Plan_cache.hit_rate s);
     Obs.set_gauge obs "plan_cache.entries" (float_of_int s.Plan_cache.pc_entries));
  {
    aggregate;
    requests;
    windows;
    device_reports;
    cache = Shape_cache.stats t.eng_cache;
    slo;
    results = List.sort (fun (a, _) (b, _) -> compare a b) !results;
    sessions = sessions t;
    session_table;
    packed_windows = !packed_windows;
    packed_tokens = !packed_tokens;
    metrics = Obs.snapshot obs;
    metrics_at_damage = !damage_metrics;
    plans;
    plan_cache;
  }

let run_trace t trace =
  (* The trace contract says sorted by arrival; silently windowing an
     unsorted one would interleave bursts that never coexisted.  Reject
     it with a typed error instead. *)
  ignore
    (List.fold_left
       (fun (i, prev) (e : Trace.event) ->
         if e.Trace.at_us < prev then
           raise
             (Error (Unsorted_trace { index = i; at_us = e.Trace.at_us; prev_us = prev }));
         (i + 1, e.Trace.at_us))
       (0, neg_infinity) trace);
  List.iter
    (fun (e : Trace.event) ->
      match
        submit t ~arrival_us:e.Trace.at_us ?deadline_us:e.Trace.deadline_us
          e.Trace.structure
      with
      | Ok _ -> ()
      (* Load shedding is the cap doing its job, not a caller error:
         the drop is counted in the summary's SLO block. *)
      | Stdlib.Error (Shed _) -> ()
      | Stdlib.Error err -> raise (Error err))
    trace;
  drain t

let run_one t structure =
  validate_exn t structure;
  let mc = t.model.Ra.max_children in
  (* One timed run, reused — not a timing loop whose results are thrown
     away followed by an untimed live run. *)
  let lin, linearize_us =
    Stats.time_us (fun () -> Linearizer.run ~max_children:mc structure)
  in
  Runtime.simulate_lin ~lock_free:t.lock_free ~linearize_us t.eng_compiled
    ~backend:t.eng_backend lin

(* ---------- numeric execution ---------- *)

type execution = { ex_forest : Linearizer.forest; ex_exec : Runtime.execution }

let execute t ~params structures =
  List.iter (validate_exn t) structures;
  (* The numeric path shares the drain's shape cache: a repeated shape
     skips the inspector here too, and the equivalence tests pin the
     rebound numbering bitwise to a cold linearization. *)
  let forest =
    try
      fst
        (Shape_cache.find_or_linearize ?obs:t.eng_obs t.eng_cache
           ~max_children:t.model.Ra.max_children structures)
    with Linearizer.Rejected r -> raise (Error (Rejected r))
  in
  let ex = Runtime.execute_lin t.eng_compiled ~params forest.Linearizer.lin in
  { ex_forest = forest; ex_exec = ex }

let execute_one t ~params structure = execute t ~params [ structure ]

let state e ?(request = 0) st_name (node : Node.t) =
  let spans = e.ex_forest.Linearizer.spans in
  if request < 0 || request >= Array.length spans then
    invalid_arg "Engine.state: no such request";
  let span = spans.(request) in
  Lower.state_value_lin e.ex_exec.Runtime.exec_bound e.ex_exec.Runtime.exec_compiled
    st_name
    span.Linearizer.span_ids.(node.Node.id)

let forest e = e.ex_forest
