module Structure = Cortex_ds.Structure
module Linearizer = Cortex_linearizer.Linearizer
module Obs = Cortex_obs.Obs
module Chrome_trace = Cortex_obs.Chrome_trace

type stats = { hits : int; misses : int; entries : int }

type t = {
  capacity : int;
  table : (string, Linearizer.forest) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 1024) () =
  if capacity < 0 then invalid_arg "Shape_cache.create: capacity must be >= 0";
  { capacity; table = Hashtbl.create (min 64 (max 1 capacity)); hits = 0; misses = 0 }

let find_or_linearize ?obs t ~max_children structures =
  (* The inspector track: a hit's payload re-bind and a miss's full
     linearizer pass both appear as wall-clock spans, with the request
     count and node total as args.  Recording only reads values — the
     measured charge the engine bills stays its own [Stats.time_us]
     measurement, so the observed and unobserved drains price
     identically (chaos mode charges zero either way). *)
  let span name f =
    Obs.wall_span obs ~track:"inspector"
      ~args:[ ("requests", Chrome_trace.Int (List.length structures)) ]
      name f
  in
  let key = Linearizer.shape_key ~max_children structures in
  match Hashtbl.find_opt t.table key with
  | Some cached ->
    let f = span "rebind" (fun () -> Linearizer.rebind_forest cached structures) in
    (* Count the hit only after a successful rebind, mirroring the miss
       accounting below: a raising rebind served nothing, and counting
       it would overstate the hit rate the reports print. *)
    t.hits <- t.hits + 1;
    Obs.incr obs "cache.hits";
    (f, true)
  | None ->
    let f = span "linearize" (fun () -> Linearizer.run_forest ~max_children structures) in
    (* Count the miss only after a successful linearization: a rejected
       request is not inspector work the cache could have saved. *)
    t.misses <- t.misses + 1;
    Obs.incr obs "cache.misses";
    if t.capacity > 0 then begin
      (* Epoch eviction: when the table fills, drop it wholesale.  The
         serving workloads this cache targets have a few hot shapes that
         are re-inserted within a window or two of the flush; tracking
         recency per entry costs more than re-running the inspector once
         per epoch per hot shape. *)
      if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
      Hashtbl.add t.table key f
    end;
    (f, false)

(* Insert a forest produced outside the cache (delta extension): the
   inspector work already happened, so neither counter moves, but the
   layout becomes available for hits — a session failover re-binds its
   conversation through here.  Same capacity policy as a miss. *)
let put t ~max_children structures forest =
  if t.capacity > 0 then begin
    let key = Linearizer.shape_key ~max_children structures in
    if Hashtbl.mem t.table key then None
    else begin
      if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
      Hashtbl.add t.table key forest;
      Some key
    end
  end
  else None

(* Drop one entry by key.  Sessions record the keys their [put]s
   actually inserted so closing or evicting a conversation frees its
   published layouts instead of leaving them parked until the next
   epoch flush.  Missing keys (already flushed) are a no-op, and the
   hit/miss counters never move — removal is bookkeeping, not
   inspector work. *)
let remove t key = Hashtbl.remove t.table key

let stats t = { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table }

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0
