open Ir

type violation = { tensor : string; index : string; detail : string }

(* ---------- named-dimension arity check ---------- *)

let check_named_dims (p : program) =
  let out = ref [] in
  let note t (idx : expr list) =
    let want = List.length t.dims in
    let got = List.length idx in
    if want <> got then
      out :=
        {
          tensor = t.tname;
          index = String.concat ", " (List.map expr_to_string idx);
          detail = Printf.sprintf "%d indices for %d named dimensions" got want;
        }
        :: !out
  in
  let on_expr () e = match e with Load (t, idx) -> note t idx | _ -> () in
  let on_stmt () s = match s with Store (t, idx, _) -> note t idx | _ -> () in
  List.iter (fun k -> fold_stmt ~expr:on_expr ~stmt:on_stmt () k.body) p.kernels;
  List.rev !out

(* ---------- hybrid interval walker ---------- *)

type iv = int * int

let exact (lo, hi) = lo = hi

module Walk = struct
  type state = {
    uf : Uf.t -> int array -> int;
    mutable violations : violation list;
  }

  let rec eval st env e : iv option =
    match e with
    | Int n -> Some (n, n)
    | Var v -> List.assoc_opt v.Var.vid env
    | Binop (op, a, b) ->
      (match (eval st env a, eval st env b) with
       | Some (al, ah), Some (bl, bh) ->
         (match op with
          | Add -> Some (al + bl, ah + bh)
          | Sub -> Some (al - bh, ah - bl)
          | Mul ->
            let ps = [ al * bl; al * bh; ah * bl; ah * bh ] in
            Some (List.fold_left min max_int ps, List.fold_left max min_int ps)
          | Div when bl = bh && bl > 0 -> Some (al / bl, ah / bl)
          | Div -> None
          | Mod when bl = bh && bl > 0 ->
            if al >= 0 then Some (0, min ah (bl - 1)) else None
          | Mod -> None
          | Min -> Some (min al bl, min ah bh)
          | Max -> Some (max al bl, max ah bh))
       | _ -> None)
    | Select (c, a, b) ->
      (match eval st env c with
       | Some (l, _) when exact (l, l) && l <> 0 -> eval st env a
       | Some (0, 0) -> eval st env b
       | _ ->
         (match (eval st env a, eval st env b) with
          | Some (al, ah), Some (bl, bh) -> Some (min al bl, max ah bh)
          | _ -> None))
    | Cmp (op, a, b) ->
      (match (eval st env a, eval st env b) with
       | Some (al, ah), Some (bl, bh) ->
         let t v = Some ((if v then 1 else 0), if v then 1 else 0) in
         (match op with
          | Lt -> if ah < bl then t true else if al >= bh then t false else Some (0, 1)
          | Le -> if ah <= bl then t true else if al > bh then t false else Some (0, 1)
          | Gt -> if al > bh then t true else if ah <= bl then t false else Some (0, 1)
          | Ge -> if al >= bh then t true else if ah < bl then t false else Some (0, 1)
          | Eq ->
            if al = ah && bl = bh && al = bl then t true
            else if ah < bl || al > bh then t false
            else Some (0, 1)
          | Ne ->
            if ah < bl || al > bh then t true
            else if al = ah && bl = bh && al = bl then t false
            else Some (0, 1))
       | _ -> None)
    | And (a, b) ->
      (match (eval st env a, eval st env b) with
       | Some (0, 0), _ | _, Some (0, 0) -> Some (0, 0)
       | Some (la, _), Some (lb, _) when la >= 1 && lb >= 1 -> Some (1, 1)
       | _ -> Some (0, 1))
    | Or (a, b) ->
      (match (eval st env a, eval st env b) with
       | Some (la, _), _ when la >= 1 -> Some (1, 1)
       | _, Some (lb, _) when lb >= 1 -> Some (1, 1)
       | Some (0, 0), Some (0, 0) -> Some (0, 0)
       | _ -> Some (0, 1))
    | Not a ->
      (match eval st env a with
       | Some (0, 0) -> Some (1, 1)
       | Some (l, _) when l >= 1 -> Some (0, 0)
       | _ -> Some (0, 1))
    | UfCall (u, args) ->
      let args' = List.map (eval st env) args in
      if List.for_all (function Some iv -> exact iv | None -> false) args' then begin
        let concrete =
          Array.of_list (List.map (function Some (l, _) -> l | None -> 0) args')
        in
        let v = st.uf u concrete in
        Some (v, v)
      end
      else u.Uf.range
    | Flt _ | Load _ | Math _ -> None

  let note st t idx detail =
    st.violations <-
      {
        tensor = t.tname;
        index = String.concat ", " (List.map expr_to_string idx);
        detail;
      }
      :: st.violations

  let check_access st env t idx =
    let extents = List.map (eval st env) t.extents in
    List.iteri
      (fun k i ->
        match (eval st env i, List.nth extents k) with
        | Some (lo, hi), Some (elo, _) ->
          if lo < 0 then
            note st t idx (Printf.sprintf "dim %d may be negative (lo=%d)" k lo)
          else if hi >= elo then
            note st t idx
              (Printf.sprintf "dim %d may reach %d with extent %d" k hi elo)
        | None, _ -> note st t idx (Printf.sprintf "dim %d not boundable" k)
        | _, None -> note st t idx (Printf.sprintf "extent of dim %d not evaluable" k))
      idx

  let rec check_expr st env e =
    match e with
    | Load (t, idx) ->
      check_access st env t idx;
      List.iter (check_expr st env) idx
    | Int _ | Flt _ | Var _ -> ()
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      check_expr st env a;
      check_expr st env b
    | Not a | Math (_, a) -> check_expr st env a
    | Select (c, a, b) ->
      check_expr st env c;
      check_expr st env a;
      check_expr st env b
    | UfCall (_, args) -> List.iter (check_expr st env) args

  (* Narrow a variable's interval under a branch condition of the form
     [v < e] / [v <= e] / [v >= e] / [v > e] with [e] exactly known. *)
  let narrow st env cond ~holds =
    match cond with
    | Cmp (op, Var v, e) ->
      (match (List.assoc_opt v.Var.vid env, eval st env e) with
       | Some (lo, hi), Some (elo, ehi) when elo = ehi ->
         let lo', hi' =
           match (op, holds) with
           | Lt, true -> (lo, min hi (elo - 1))
           | Lt, false -> (max lo elo, hi)
           | Le, true -> (lo, min hi elo)
           | Le, false -> (max lo (elo + 1), hi)
           | Ge, true -> (max lo elo, hi)
           | Ge, false -> (lo, min hi (elo - 1))
           | Gt, true -> (max lo (elo + 1), hi)
           | Gt, false -> (lo, min hi elo)
           | (Eq | Ne), _ -> (lo, hi)
         in
         (v.Var.vid, (lo', hi')) :: env
       | _ -> env)
    | _ -> env

  (* A loop can be walked as one interval iteration when nothing in its
     body demands an exact loop value: no UF call whose argument depends
     (transitively through Lets) on the loop variable, and no nested
     variable-extent loop.  [vset] is the tainted-variable set. *)
  let rec needs_concrete vset s =
    let uses_tainted e =
      fold_expr
        (fun acc e ->
          acc || match e with Var v' -> List.exists (Var.equal v') vset | _ -> false)
        false e
    in
    let expr_needs e =
      fold_expr
        (fun acc e ->
          acc || match e with UfCall (_, args) -> List.exists uses_tainted args | _ -> false)
        false e
    in
    match s with
    | Store (_, idx, value) -> List.exists expr_needs idx || expr_needs value
    | Let (w, e, body) ->
      let vset' = if uses_tainted e then w :: vset else vset in
      expr_needs e || needs_concrete vset' body
    | Seq ss -> List.exists (needs_concrete vset) ss
    | If (c, a, b) ->
      expr_needs c || needs_concrete vset a
      || (match b with Some b -> needs_concrete vset b | None -> false)
    | For r -> expr_needs r.extent || needs_concrete vset r.body
    | Barrier | Nop -> false

  let rec check_stmt st env s =
    match s with
    | Nop | Barrier -> ()
    | Seq ss -> List.iter (check_stmt st env) ss
    | Let (v, e, body) ->
      check_expr st env e;
      let iv = eval st env e in
      let env' = match iv with Some iv -> (v.Var.vid, iv) :: env | None -> env in
      check_stmt st env' body
    | Store (t, idx, value) ->
      check_access st env t idx;
      List.iter (check_expr st env) idx;
      check_expr st env value
    | If (c, a, b) ->
      check_expr st env c;
      (match eval st env c with
       | Some (l, _) when l >= 1 -> check_stmt st env a
       | Some (0, 0) -> (match b with Some b -> check_stmt st env b | None -> ())
       | _ ->
         check_stmt st (narrow st env c ~holds:true) a;
         (match b with
          | Some b -> check_stmt st (narrow st env c ~holds:false) b
          | None -> ()))
    | For { v; extent; body; _ } ->
      check_expr st env extent;
      (match eval st env extent with
       | Some (n, n') when n = n' ->
         if n <= 0 then ()
         else if needs_concrete [ v ] body then
           for i = 0 to n - 1 do
             check_stmt st ((v.Var.vid, (i, i)) :: env) body
           done
         else check_stmt st ((v.Var.vid, (0, n - 1)) :: env) body
       | Some (lo, hi) ->
         if hi > 0 then
           check_stmt st ((v.Var.vid, (0, hi - 1)) :: env) body
         else ();
         ignore lo
       | None ->
         st.violations <-
           { tensor = "<loop>"; index = Var.name v; detail = "extent not boundable" }
           :: st.violations)
end

let check ~uf ~num_internal_batches (p : program) =
  let st = { Walk.uf; violations = [] } in
  List.iter
    (fun k ->
      match k.launch with
      | Once -> Walk.check_stmt st [] k.body
      | PerInternalBatch bvar ->
        for b = 0 to num_internal_batches - 1 do
          Walk.check_stmt st [ (bvar.Var.vid, (b, b)) ] k.body
        done)
    p.kernels;
  List.rev st.Walk.violations
