open Ir

module VarMap = Map.Make (Int)

type env = (expr * expr) VarMap.t
(* vid -> inclusive (lo, hi) bound expressions *)

let empty_env = VarMap.empty
let bind_range env (v : Var.t) ~lo ~hi = VarMap.add v.Var.vid (lo, hi) env

(* ---------- linear normal form over integer expressions ----------

   lin = const + sum of coeff * atom, where an atom is any
   non-decomposable integer expression (a variable, a UF call, a
   division, ...).  Atoms are compared structurally, which is sound
   because all id-carrying records compare by their ids. *)

type lin = { const : int; terms : (expr * int) list }

let lin_const c = { const = c; terms = [] }
let lin_atom a = { const = 0; terms = [ (a, 1) ] }

let lin_add a b =
  let merged =
    List.fold_left
      (fun acc (atom, c) ->
        let existing = try List.assoc atom acc with Not_found -> 0 in
        (atom, existing + c) :: List.remove_assoc atom acc)
      a.terms b.terms
  in
  { const = a.const + b.const; terms = List.filter (fun (_, c) -> c <> 0) merged }

let lin_scale k l =
  if k = 0 then lin_const 0
  else { const = k * l.const; terms = List.map (fun (a, c) -> (a, k * c)) l.terms }

let lin_neg = lin_scale (-1)

(* Linearize an integer expression; [None] when it is float-valued or
   not linear-decomposable in a useful way (the whole expr then becomes
   an atom at the caller's discretion). *)
let rec linearize e =
  match e with
  | Int n -> Some (lin_const n)
  | Var _ | UfCall _ -> Some (lin_atom e)
  | Binop (Add, a, b) -> map2_lin lin_add a b
  | Binop (Sub, a, b) -> map2_lin (fun la lb -> lin_add la (lin_neg lb)) a b
  | Binop (Mul, Int k, b) | Binop (Mul, b, Int k) ->
    Option.map (lin_scale k) (linearize b)
  | Binop ((Mul | Div | Mod | Min | Max), _, _) -> Some (lin_atom e)
  | Select _ | Cmp _ | And _ | Or _ | Not _ -> Some (lin_atom e)
  | Flt _ | Load _ | Math _ -> None

and map2_lin f a b =
  match (linearize a, linearize b) with
  | Some la, Some lb -> Some (f la lb)
  | _ -> None

(* Rebuild a canonical expression from a lin: atoms in a deterministic
   order, constants folded. *)
let delinearize l =
  let sorted = List.sort compare l.terms in
  let term (atom, c) =
    if c = 1 then atom else Binop (Mul, Int c, atom)
  in
  match sorted with
  | [] -> Int l.const
  | first :: rest ->
    let body =
      List.fold_left
        (fun acc t ->
          let atom, c = t in
          if c < 0 then Binop (Sub, acc, term (atom, -c)) else Binop (Add, acc, term t))
        (term first) rest
    in
    if l.const = 0 then body
    else if l.const < 0 then Binop (Sub, body, Int (-l.const))
    else Binop (Add, body, Int l.const)

(* ---------- interval arithmetic ---------- *)

let rec interval env e =
  match e with
  | Int n -> Some (n, n)
  | Var v ->
    (match VarMap.find_opt v.Var.vid env with
     | None -> None
     | Some (lo, hi) ->
       (match (interval env lo, interval env hi) with
        | Some (l, _), Some (_, h) -> Some (l, h)
        | _ -> None))
  | UfCall (u, _) -> u.Uf.range
  | Binop (op, a, b) ->
    (match (interval env a, interval env b) with
     | Some (al, ah), Some (bl, bh) ->
       (match op with
        | Add -> Some (al + bl, ah + bh)
        | Sub -> Some (al - bh, ah - bl)
        | Mul ->
          let products = [ al * bl; al * bh; ah * bl; ah * bh ] in
          Some (List.fold_left min max_int products, List.fold_left max min_int products)
        | Min -> Some (min al bl, min ah bh)
        | Max -> Some (max al bl, max ah bh)
        | Div when bl > 0 -> Some (min (al / bl) (al / bh), max (ah / bl) (ah / bh))
        | Div -> None
        | Mod when bl > 0 -> Some (0, bh - 1)
        | Mod -> None)
     | _ -> None)
  | Select (_, a, b) ->
    (match (interval env a, interval env b) with
     | Some (al, ah), Some (bl, bh) -> Some (min al bl, max ah bh)
     | _ -> None)
  | Cmp _ | And _ | Or _ | Not _ -> Some (0, 1)
  | Flt _ | Load _ | Math _ -> None

(* ---------- the prover ---------- *)

(* Bound a lin from above ([upper = true]) or below by substituting
   variable atoms with their env bounds and UF atoms with their declared
   ranges, re-linearizing after every substitution so that symbolic
   terms (e.g. batch_len(b)) cancel.  Depth-limited; sound. *)
let rec bound_lin ~upper env depth l =
  if depth = 0 then None
  else begin
    let substitutable =
      List.find_opt
        (fun (atom, _) ->
          match atom with
          | Var v -> VarMap.mem v.Var.vid env
          | UfCall (u, _) -> u.Uf.range <> None
          | Int _ | Flt _ | Binop _ | Cmp _ | And _ | Or _ | Not _ | Select _ | Load _
          | Math _ -> false)
        l.terms
    in
    match substitutable with
    | None -> if l.terms = [] then Some l.const else None
    | Some ((atom, c) as term) ->
      let rest = { l with terms = List.filter (fun t -> t != term) l.terms } in
      let replacement =
        (* Raising the expression: positive coefficient wants the upper
           bound of the atom, negative wants the lower (and vice versa
           when bounding below). *)
        let want_upper = if c > 0 then upper else not upper in
        match atom with
        | Var v ->
          let lo, hi = VarMap.find v.Var.vid env in
          let b = if want_upper then hi else lo in
          linearize b
        | UfCall (u, _) ->
          (match u.Uf.range with
           | Some (lo, hi) -> Some (lin_const (if want_upper then hi else lo))
           | None -> None)
        | Int _ | Flt _ | Binop _ | Cmp _ | And _ | Or _ | Not _ | Select _ | Load _
        | Math _ -> None
      in
      (match replacement with
       | None -> None
       | Some repl -> bound_lin ~upper env (depth - 1) (lin_add rest (lin_scale c repl)))
  end

let upper_bound env e =
  match linearize e with None -> None | Some l -> bound_lin ~upper:true env 8 l

let lower_bound env e =
  match linearize e with None -> None | Some l -> bound_lin ~upper:false env 8 l

let rec prove env (cond : expr) =
  match cond with
  | Int 0 -> Some false
  | Int _ -> Some true
  | Cmp (op, a, b) ->
    let d = Binop (Sub, a, b) in
    let hi = upper_bound env d in
    let lo = lower_bound env d in
    let decide ~true_when_hi_le ~false_when_lo_ge =
      match (hi, lo) with
      | Some h, _ when h <= true_when_hi_le -> Some true
      | _, Some l when l >= false_when_lo_ge -> Some false
      | _ -> None
    in
    (match op with
     | Lt -> decide ~true_when_hi_le:(-1) ~false_when_lo_ge:0
     | Le -> decide ~true_when_hi_le:0 ~false_when_lo_ge:1
     | Gt ->
       (match prove env (Cmp (Le, a, b)) with Some v -> Some (not v) | None -> None)
     | Ge ->
       (match prove env (Cmp (Lt, a, b)) with Some v -> Some (not v) | None -> None)
     | Eq ->
       (match (hi, lo) with
        | Some 0, Some 0 -> Some true
        | Some h, _ when h < 0 -> Some false
        | _, Some l when l > 0 -> Some false
        | _ -> None)
     | Ne ->
       (match prove env (Cmp (Eq, a, b)) with Some v -> Some (not v) | None -> None))
  | And (a, b) ->
    (match (prove env a, prove env b) with
     | Some false, _ | _, Some false -> Some false
     | Some true, Some true -> Some true
     | _ -> None)
  | Or (a, b) ->
    (match (prove env a, prove env b) with
     | Some true, _ | _, Some true -> Some true
     | Some false, Some false -> Some false
     | _ -> None)
  | Not a -> (match prove env a with Some v -> Some (not v) | None -> None)
  | Var _ | Binop _ | Select _ | UfCall _ | Flt _ | Load _ | Math _ ->
    (match interval env cond with
     | Some (lo, _) when lo >= 1 -> Some true
     | Some (_, hi) when hi <= 0 -> Some false
     | _ -> None)

(* ---------- algebraic simplification ---------- *)

let is_zero_const = function Int 0 -> true | Flt 0.0 -> true | _ -> false
let is_one_const = function Int 1 -> true | Flt 1.0 -> true | _ -> false

let rec simp env e =
  let e =
    match e with
    | Int _ | Flt _ | Var _ -> e
    | Binop (op, a, b) -> simp_binop op (simp env a) (simp env b)
    | Cmp (op, a, b) ->
      let a = simp env a and b = simp env b in
      let folded =
        match (a, b) with
        | Int x, Int y ->
          let v =
            match op with
            | Lt -> x < y
            | Le -> x <= y
            | Gt -> x > y
            | Ge -> x >= y
            | Eq -> x = y
            | Ne -> x <> y
          in
          Some (Int (if v then 1 else 0))
        | _ ->
          (match prove env (Cmp (op, a, b)) with
           | Some v -> Some (Int (if v then 1 else 0))
           | None -> None)
      in
      (match folded with Some f -> f | None -> Cmp (op, a, b))
    | And (a, b) ->
      (match (simp env a, simp env b) with
       | Int 0, _ | _, Int 0 -> Int 0
       | Int _, x | x, Int _ -> x
       | a, b -> And (a, b))
    | Or (a, b) ->
      (match (simp env a, simp env b) with
       | Int 0, x | x, Int 0 -> x
       | (Int _ as t), _ | _, (Int _ as t) -> t
       | a, b -> Or (a, b))
    | Not a ->
      (match simp env a with
       | Int n -> Int (if n = 0 then 1 else 0)
       | Not inner -> inner
       | a -> Not a)
    | Select (c, a, b) ->
      (match simp env c with
       | Int 0 -> simp env b
       | Int _ -> simp env a
       | c ->
         let a = simp env a and b = simp env b in
         if a = b then a else Select (c, a, b))
    | Load (t, idx) -> Load (t, List.map (simp env) idx)
    | UfCall (u, args) -> UfCall (u, List.map (simp env) args)
    | Math (k, a) ->
      (match simp env a with
       | Flt v -> Flt (Cortex_tensor.Nonlinear.apply k v)
       | a -> Math (k, a))
  in
  (* Canonicalize integer arithmetic through the linear normal form so
     nested additions fold. *)
  match e with
  | Binop ((Add | Sub), _, _) ->
    (match linearize e with Some l -> delinearize l | None -> e)
  | Int _ | Flt _ | Var _ | Binop _ | Cmp _ | And _ | Or _ | Not _ | Select _ | Load _
  | UfCall _ | Math _ -> e

and simp_binop op a b =
  match (op, a, b) with
  | Add, Int x, Int y -> Int (x + y)
  | Sub, Int x, Int y -> Int (x - y)
  | Mul, Int x, Int y -> Int (x * y)
  | Div, Int x, Int y when y <> 0 -> Int (x / y)
  | Mod, Int x, Int y when y <> 0 -> Int (x mod y)
  | Min, Int x, Int y -> Int (min x y)
  | Max, Int x, Int y -> Int (max x y)
  | Add, Flt x, Flt y -> Flt (x +. y)
  | Sub, Flt x, Flt y -> Flt (x -. y)
  | Mul, Flt x, Flt y -> Flt (x *. y)
  | Div, Flt x, Flt y when y <> 0.0 -> Flt (x /. y)
  | Min, Flt x, Flt y -> Flt (Float.min x y)
  | Max, Flt x, Flt y -> Flt (Float.max x y)
  | Add, z, x when is_zero_const z -> x
  | Add, x, z when is_zero_const z -> x
  | Sub, x, z when is_zero_const z -> x
  | Mul, z, _ when is_zero_const z -> z
  | Mul, _, z when is_zero_const z -> z
  | Mul, o, x when is_one_const o -> x
  | Mul, x, o when is_one_const o -> x
  | Div, x, o when is_one_const o -> x
  | (Min | Max), x, y when x = y -> x
  | _ -> Binop (op, a, b)

let expr e = simp empty_env e
let expr_in env e = simp env e

let rec simp_stmt env s =
  match s with
  | For ({ v; extent; body; _ } as r) ->
    let extent = simp env extent in
    (match extent with
     | Int n when n <= 0 -> Nop
     | _ ->
       let env' = bind_range env v ~lo:(Int 0) ~hi:(Binop (Sub, extent, Int 1)) in
       let body = simp_stmt env' body in
       (match body with Nop -> Nop | _ -> For { r with extent; body }))
  | Let (v, e, body) ->
    let e = simp env e in
    (* Propagate the bound value's interval to uses of [v]. *)
    let env' =
      match interval env e with
      | Some (lo, hi) -> bind_range env v ~lo:(Int lo) ~hi:(Int hi)
      | None -> bind_range env v ~lo:e ~hi:e
    in
    let body = simp_stmt env' body in
    (match body with Nop -> Nop | _ -> Let (v, e, body))
  | Store (t, idx, value) -> Store (t, List.map (simp env) idx, simp env value)
  | If (c, a, b) ->
    let c = simp env c in
    (match prove env c with
     | Some true -> simp_stmt env a
     | Some false -> (match b with Some b -> simp_stmt env b | None -> Nop)
     | None ->
       let a = simp_stmt env a in
       let b = Option.map (simp_stmt env) b in
       (match (a, b) with
        | Nop, None | Nop, Some Nop -> Nop
        | _, Some Nop -> If (c, a, None)
        | _ -> If (c, a, b)))
  | Seq ss ->
    let ss =
      List.concat_map
        (fun s ->
          match simp_stmt env s with Nop -> [] | Seq inner -> inner | s -> [ s ])
        ss
    in
    (match ss with [] -> Nop | [ s ] -> s | ss -> Seq ss)
  | Barrier | Nop -> s

let stmt ?(env = empty_env) s = simp_stmt env s

let is_zero_f e = match expr e with Flt 0.0 -> true | Int 0 -> true | _ -> false
