(** Expression simplification and interval analysis over the ILIR.

    The paper (§A.1) uses the Z3 SMT solver to simplify expressions
    containing uninterpreted functions, mainly to prove bounds checks
    redundant (loop peeling, §A.5) and to clean up lowered index
    arithmetic.  This module is the native substitute: a linear
    normalizer over atoms (variables and UF calls are atoms) combined
    with interval arithmetic seeded by loop ranges and UF range
    metadata.  It decides the same class of facts Cortex needs. *)

type env
(** Known integer ranges for variables (inclusive). *)

val empty_env : env
val bind_range : env -> Ir.Var.t -> lo:Ir.expr -> hi:Ir.expr -> env
(** Functional update: the returned env knows [lo <= v <= hi].  Bounds
    may be symbolic (e.g. [hi = batch_len(b) - 1]), which is what lets
    the prover cancel UF terms the way the paper leans on Z3. *)

val interval : env -> Ir.expr -> (int * int) option
(** Inclusive interval of an integer expression, when derivable.
    UF calls fall back to their declared ranges. *)

val prove : env -> Ir.expr -> bool option
(** [prove env cond] is [Some true]/[Some false] when the boolean
    expression is decided by linear normalization + intervals, [None]
    otherwise.  Sound: never returns a wrong verdict. *)

val expr : Ir.expr -> Ir.expr
(** Algebraic simplification: constant folding, [x*0], [x+0], [x*1],
    [select] with constant condition, nested add/mul flattening via the
    linear normal form, [min]/[max] with equal arguments. *)

val expr_in : env -> Ir.expr -> Ir.expr
(** Like [expr] but also resolves comparisons provable under [env]. *)

val stmt : ?env:env -> Ir.stmt -> Ir.stmt
(** Simplifies every contained expression; prunes [If] branches whose
    condition is decided (possibly using ranges of enclosing loop
    variables, which it accumulates while descending); removes empty
    loops and flattens [Seq]s. *)

val is_zero_f : Ir.expr -> bool
(** True when the expression is the float constant 0 (after
    simplification).  Used by constant propagation in the lowerer. *)
