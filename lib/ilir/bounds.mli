(** Bounds checking for ILIR programs (§5.1 / §A.2).

    In a traditional tensor compiler, loops and tensor dimensions
    correspond one-to-one and bounds inference is immediate.  The ILIR
    breaks that correspondence (three loops feed the two dimensions of
    [rnn] in the paper's Listing 2), which is why tensors and loops
    carry named dimensions.  This module provides two facilities:

    - [check_named_dims]: a structural check that every access supplies
      exactly one index per named tensor dimension;
    - [check]: a hybrid static checker that walks node/batch loops
      concretely (driven by the bound uninterpreted functions, like the
      cost walker) while treating constant feature loops as intervals,
      and proves every [Load]/[Store] index within its tensor's extent.
      This is the role Z3-backed simplification plays in the paper's
      prototype, made concrete against a given linearized input. *)

type violation = { tensor : string; index : string; detail : string }

val check_named_dims : Ir.program -> violation list

val check :
  uf:(Ir.Uf.t -> int array -> int) ->
  num_internal_batches:int ->
  Ir.program ->
  violation list
(** Empty when every access is provably in bounds for this input. *)
