(** C/CUDA-flavoured code emission from the ILIR.

    The reference prototype in the paper generates CUDA/C through TVM's
    codegen; this environment cannot invoke nvcc, so the interpreter is
    the executing target — but the lowered kernels still print as the
    code a device backend would compile.  The emitter maps:

    - tensors to flat [float*] buffers with explicit row-major indexing
      and a memory-space qualifier comment ([__shared__] etc.);
    - uninterpreted functions to [const int*] lookup tables produced by
      the linearizer ([child(k, n)] becomes [ds_child[k * num_nodes + n]]
      and nullary functions become scalar kernel arguments);
    - [Parallel] loops to block-parallel loops, [Vectorized] loops to
      thread-lane loops, [Unrolled] loops to [#pragma unroll];
    - [Barrier] to a grid-wide synchronization ([grid.sync()]).

    The output is deterministic and human-readable; the test suite
    checks its structure, and `cortex dump-c MODEL` prints it. *)

val program : Ir.program -> string
(** Emit every kernel of the program, preceded by the buffer/lookup
    signature derived from its tensors and uninterpreted functions. *)

val kernel : Ir.kernel -> string
(** Emit a single kernel body. *)
