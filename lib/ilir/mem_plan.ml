open Ir

(* Static memory planning over a lowered program.

   The worst case charges every constant-extent temporary its own
   buffer for the whole run.  But a lowered program touches its
   temporaries in phases — setup kernels stage activations, the leaf
   loop uses its scratch, the batch loop its accumulators — and buffers
   whose live ranges never intersect can share arena space.  This
   module computes per-tensor live ranges over a program-order walk and
   packs the buffers into one reusable arena, first-fit on offset; the
   arena high-water mark is the *planned* peak footprint, the number
   capacity checks and the bundle manifest report instead of the
   sum-of-buffers worst case.

   Liveness is static and conservative: each Load/Store advances an
   event clock, a tensor's range is the hull of its access events, and
   every range is widened to cover the full interval of any loop (or
   per-batch kernel launch) containing one of its accesses — iteration
   2 of a loop may read what iteration 1 wrote, so two tensors used in
   the same loop always conflict.  No plan produced here can alias two
   simultaneously-live buffers; the QCheck property tests pin that. *)

type placement = {
  pl_tensor : tensor;
  pl_bytes : int;
  pl_offset : int;
  pl_first : int;  (* first event of the live range, inclusive *)
  pl_last : int;  (* last event, inclusive *)
}

type t = {
  arena_bytes : int;  (* planned peak: max over placements of offset+bytes *)
  worst_bytes : int;  (* every planned buffer charged separately *)
  placements : placement list;
  unplanned : tensor list;
      (* temporaries of the requested spaces whose extent depends on the
         linearized input: streamed scratch, not statically packable *)
}

let ranges_overlap a b = a.pl_first <= b.pl_last && b.pl_first <= a.pl_last

let offsets_overlap a b =
  a.pl_offset < b.pl_offset + b.pl_bytes && b.pl_offset < a.pl_offset + a.pl_bytes

(* Extent evaluation: compile-time constants always, UF calls when a
   resolver (a bound linearization's [Lower.uf_resolver]) is supplied.
   Anything else — a loop variable in an extent — is not a static
   buffer size. *)
let rec eval_extent ?uf e =
  match e with
  | Int n -> Some n
  | UfCall (u, args) -> (
    match uf with
    | None -> None
    | Some f ->
      let args = List.map (eval_extent ?uf) args in
      if List.for_all Option.is_some args then
        match f u (Array.of_list (List.map Option.get args)) with
        | n -> Some n
        | exception _ -> None
      else None)
  | Binop (op, a, b) -> (
    match (eval_extent ?uf a, eval_extent ?uf b) with
    | Some _, Some 0 when op = Div || op = Mod ->
      (* a zero denominator makes the extent non-static, not a crash *)
      None
    | Some x, Some y ->
      Some
        (match op with
         | Add -> x + y
         | Sub -> x - y
         | Mul -> x * y
         | Div -> x / y
         | Mod -> x mod y
         | Min -> Stdlib.min x y
         | Max -> Stdlib.max x y)
    | _ -> None)
  | _ -> None

let static_bytes ?uf ~bytes_per_elem (t : tensor) =
  let elems =
    List.fold_left
      (fun acc e ->
        match (acc, eval_extent ?uf e) with
        | Some n, Some k -> Some (n * k)
        | _ -> None)
      (Some 1) t.extents
  in
  Option.map (fun n -> n * bytes_per_elem) elems

(* ---------- live ranges ---------- *)

(* One entry per tensor: insertion-ordered by first touch so the
   packing below is deterministic. *)
type range_acc = {
  mutable order : int list;  (* tids, reversed first-touch order *)
  table : (int, tensor * int ref * int ref) Hashtbl.t;
}

let live_ranges ~spaces (p : program) =
  let clock = ref 0 in
  let acc = { order = []; table = Hashtbl.create 16 } in
  let touch (t : tensor) =
    if List.mem t.space spaces then begin
      incr clock;
      match Hashtbl.find_opt acc.table t.tid with
      | None ->
        acc.order <- t.tid :: acc.order;
        Hashtbl.replace acc.table t.tid (t, ref !clock, ref !clock)
      | Some (_, _, hi) -> hi := !clock
    end
  in
  let rec walk_expr e =
    match e with
    | Load (t, idx) ->
      touch t;
      List.iter walk_expr idx
    | Int _ | Flt _ | Var _ -> ()
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      walk_expr a;
      walk_expr b
    | Not a | Math (_, a) -> walk_expr a
    | Select (c, a, b) ->
      walk_expr c;
      walk_expr a;
      walk_expr b
    | UfCall (_, args) -> List.iter walk_expr args
  in
  (* Widen every tensor touched inside [lo_evt, !clock] to cover that
     whole interval: the enclosing loop re-executes its body, so a
     buffer's last static use is not its last dynamic one. *)
  let widen_since lo_evt =
    Hashtbl.iter
      (fun _ (_, lo, hi) ->
        if !hi > lo_evt then begin
          if !lo > lo_evt then lo := lo_evt;
          hi := !clock
        end)
      acc.table
  in
  let rec walk_stmt s =
    match s with
    | For { extent; body; _ } ->
      walk_expr extent;
      let lo_evt = !clock in
      walk_stmt body;
      widen_since lo_evt
    | Let (_, e, body) ->
      walk_expr e;
      walk_stmt body
    | Store (t, idx, value) ->
      touch t;
      List.iter walk_expr idx;
      walk_expr value
    | If (c, a, b) ->
      walk_expr c;
      walk_stmt a;
      Option.iter walk_stmt b
    | Seq ss -> List.iter walk_stmt ss
    | Barrier | Nop -> ()
  in
  (* Mirror [Interp.run_program]: a maximal run of consecutive
     per-batch kernels executes batch-major — for each batch, every
     kernel of the run — so the whole run is one enclosing loop.
     Tensors touched by different kernels of the same run are
     simultaneously live across batch iterations; widening per kernel
     instead of per run would let the packer alias them. *)
  let is_per_batch (k : kernel) =
    match k.launch with PerInternalBatch _ -> true | Once -> false
  in
  let rec go = function
    | [] -> ()
    | ({ launch = Once; body; _ } : kernel) :: rest ->
      walk_stmt body;
      go rest
    | kernels ->
      let rec take_prefix acc = function
        | k :: tl when is_per_batch k -> take_prefix (k :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let group, rest = take_prefix [] kernels in
      let lo_evt = !clock in
      List.iter (fun (k : kernel) -> walk_stmt k.body) group;
      widen_since lo_evt;
      go rest
  in
  go p.kernels;
  List.rev_map
    (fun tid ->
      let t, lo, hi = Hashtbl.find acc.table tid in
      (t, (!lo, !hi)))
    acc.order

(* ---------- first-fit packing ---------- *)

let align_up ~align n = (n + align - 1) / align * align

let plan ?(bytes_per_elem = 4) ?(align = 64) ?uf ~spaces (p : program) =
  let ranges = live_ranges ~spaces p in
  let sized, unplanned =
    List.partition_map
      (fun (t, range) ->
        match static_bytes ?uf ~bytes_per_elem t with
        | Some bytes -> Left (t, range, bytes)
        | None -> Right t)
      ranges
  in
  (* First-fit on offset, candidates in (first event, larger first, tid)
     order: earlier phases claim the arena bottom, and within a phase
     the big buffers go first so small ones fill the gaps. *)
  let sized =
    List.sort
      (fun (ta, (la, _), ba) (tb, (lb, _), bb) ->
        match compare la lb with
        | 0 -> ( match compare bb ba with 0 -> compare ta.tid tb.tid | c -> c)
        | c -> c)
      sized
  in
  let placements =
    List.fold_left
      (fun placed (t, (first, last), bytes) ->
        let probe = { pl_tensor = t; pl_bytes = bytes; pl_offset = 0; pl_first = first; pl_last = last } in
        let conflicts =
          List.filter (fun q -> ranges_overlap probe q) placed
          |> List.sort (fun a b -> compare a.pl_offset b.pl_offset)
        in
        let offset =
          List.fold_left
            (fun off q ->
              if off + bytes <= q.pl_offset then off
              else Stdlib.max off (align_up ~align (q.pl_offset + q.pl_bytes)))
            0 conflicts
        in
        { probe with pl_offset = offset } :: placed)
      [] sized
  in
  let placements = List.rev placements in
  let arena_bytes =
    List.fold_left (fun m q -> Stdlib.max m (q.pl_offset + q.pl_bytes)) 0 placements
  in
  (* The worst case allocates every buffer separately at the same
     alignment the arena uses — otherwise alignment padding alone could
     make the packed arena "exceed" an unaligned sum. *)
  let worst_bytes =
    List.fold_left (fun s q -> s + align_up ~align q.pl_bytes) 0 placements
  in
  { arena_bytes; worst_bytes; placements; unplanned }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "arena %d bytes (worst case %d), %d buffers planned, %d unplanned\n"
       t.arena_bytes t.worst_bytes (List.length t.placements) (List.length t.unplanned));
  List.iter
    (fun q ->
      Buffer.add_string buf
        (Printf.sprintf "  [%7d, %7d) %-20s %8d bytes  live [%d, %d]\n" q.pl_offset
           (q.pl_offset + q.pl_bytes) q.pl_tensor.tname q.pl_bytes q.pl_first q.pl_last))
    t.placements;
  Buffer.contents buf
