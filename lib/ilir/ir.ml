(* The Irregular Loops IR (§5 of the paper).

   The ILIR is the loop-based, data-structure-agnostic program
   representation that recursion is lowered into.  It extends a
   tensor-compiler IR with (1) non-affine index expressions represented
   as uninterpreted functions of loop variables, (2) loops with variable
   (UF-valued) bounds and (3) a conditional operator.  Tensor dimensions
   and loops carry *named dimensions* (§A.2) so bounds inference can
   relate the two even when the correspondence is not one-to-one. *)

(* ---------- named dimensions ---------- *)

module Dim = struct
  type t = { dname : string; did : int }

  let counter = ref 0

  let fresh dname =
    incr counter;
    { dname; did = !counter }

  let equal a b = a.did = b.did
  let name d = d.dname
end

(* ---------- uninterpreted functions ---------- *)

module Uf = struct
  (* An uninterpreted integer function backed at runtime by linearizer
     output (e.g. [child0(n)], [batch_len(b)]).  [range] is an inclusive
     interval on the result when one is known statically; the
     simplifier's interval analysis uses it the way the paper uses Z3
     facts. *)
  type t = { uname : string; uid : int; arity : int; range : (int * int) option }

  let counter = ref 0

  let fresh ?range uname ~arity =
    incr counter;
    { uname; uid = !counter; arity; range }

  let equal a b = a.uid = b.uid
end

(* ---------- variables ---------- *)

module Var = struct
  type t = { vname : string; vid : int }

  let counter = ref 0

  let fresh vname =
    incr counter;
    { vname; vid = !counter }

  let equal a b = a.vid = b.vid
  let name v = v.vname
end

(* ---------- memory spaces and tensors ---------- *)

type space =
  | Param  (* model weights: global memory, candidates for persistence *)
  | Global  (* off-chip memory *)
  | Shared  (* on-chip scratchpad *)
  | Register  (* per-thread registers *)

let space_name = function
  | Param -> "param"
  | Global -> "global"
  | Shared -> "shared"
  | Register -> "register"

type binop = Add | Sub | Mul | Div | Mod | Min | Max
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Flt of float
  | Var of Var.t
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr  (* 1 when true, 0 when false *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Select of expr * expr * expr  (* cond, then, else *)
  | Load of tensor * expr list
  | UfCall of Uf.t * expr list
  | Math of Cortex_tensor.Nonlinear.kind * expr

and tensor = {
  tname : string;
  tid : int;
  dims : Dim.t list;  (* named dimension per tensor dimension *)
  extents : expr list;  (* per-dimension extents; may contain UF calls *)
  space : space;
}

type loop_kind =
  | Serial
  | Parallel  (* maps to GPU threads / CPU cores *)
  | Vectorized  (* maps to SIMD lanes on CPUs *)
  | Unrolled

type stmt =
  | For of { v : Var.t; extent : expr; kind : loop_kind; dim : Dim.t option; body : stmt }
  | Let of Var.t * expr * stmt  (* node = batch_begin(b) + n_idx, etc. *)
  | Store of tensor * expr list * expr
  | If of expr * stmt * stmt option  (* the conditional operator, §5.2 *)
  | Seq of stmt list
  | Barrier  (* global synchronization point *)
  | Nop

(* A kernel is the unit of device launch.  [PerInternalBatch b] kernels
   are launched once per internal dynamic batch with [b] bound to the
   batch index — this is what execution looks like when kernel fusion is
   off and each operator becomes its own launch. *)
type launch = Once | PerInternalBatch of Var.t

type kernel = { kname : string; launch : launch; body : stmt }

type program = {
  pname : string;
  params : tensor list;
  inputs : tensor list;  (* per-node model inputs (e.g. embedded words) *)
  temporaries : tensor list;
  outputs : tensor list;
  kernels : kernel list;
}

(* ---------- constructors ---------- *)

let tensor_counter = ref 0

let tensor ?(space = Global) tname dims extents =
  if List.length dims <> List.length extents then
    invalid_arg (Printf.sprintf "Ir.tensor %s: %d dims, %d extents" tname (List.length dims) (List.length extents));
  incr tensor_counter;
  { tname; tid = !tensor_counter; dims; extents; space }

let tensor_equal a b = a.tid = b.tid

let int n = Int n
let flt v = Flt v
let var v = Var v
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( <: ) a b = Cmp (Lt, a, b)
let ( >=: ) a b = Cmp (Ge, a, b)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)

let for_ ?(kind = Serial) ?dim v extent body = For { v; extent; kind; dim; body }
let seq stmts = match stmts with [ s ] -> s | stmts -> Seq stmts

(* ---------- traversals ---------- *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Flt _ | Var _ -> acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    fold_expr f (fold_expr f acc a) b
  | Not a | Math (_, a) -> fold_expr f acc a
  | Select (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b
  | Load (_, idx) | UfCall (_, idx) -> List.fold_left (fold_expr f) acc idx

let rec fold_stmt ~expr ~stmt acc s =
  let acc = stmt acc s in
  match s with
  | For { extent; body; _ } -> fold_stmt ~expr ~stmt (fold_expr expr acc extent) body
  | Let (_, e, body) -> fold_stmt ~expr ~stmt (fold_expr expr acc e) body
  | Store (_, idx, value) ->
    fold_expr expr (List.fold_left (fold_expr expr) acc idx) value
  | If (c, a, b) ->
    let acc = fold_expr expr acc c in
    let acc = fold_stmt ~expr ~stmt acc a in
    (match b with Some b -> fold_stmt ~expr ~stmt acc b | None -> acc)
  | Seq ss -> List.fold_left (fold_stmt ~expr ~stmt) acc ss
  | Barrier | Nop -> acc

let rec map_expr f e =
  match f e with
  | Some e' -> e'
  | None ->
    (match e with
     | Int _ | Flt _ | Var _ -> e
     | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
     | Cmp (op, a, b) -> Cmp (op, map_expr f a, map_expr f b)
     | And (a, b) -> And (map_expr f a, map_expr f b)
     | Or (a, b) -> Or (map_expr f a, map_expr f b)
     | Not a -> Not (map_expr f a)
     | Select (c, a, b) -> Select (map_expr f c, map_expr f a, map_expr f b)
     | Load (t, idx) -> Load (t, List.map (map_expr f) idx)
     | UfCall (u, idx) -> UfCall (u, List.map (map_expr f) idx)
     | Math (k, a) -> Math (k, map_expr f a))

let rec map_stmt ?(expr = fun _ -> None) ?(stmt = fun _ -> None) s =
  match stmt s with
  | Some s' -> s'
  | None ->
    (match s with
     | For r -> For { r with extent = map_expr expr r.extent; body = map_stmt ~expr ~stmt r.body }
     | Let (v, e, body) -> Let (v, map_expr expr e, map_stmt ~expr ~stmt body)
     | Store (t, idx, value) -> Store (t, List.map (map_expr expr) idx, map_expr expr value)
     | If (c, a, b) ->
       If (map_expr expr c, map_stmt ~expr ~stmt a, Option.map (map_stmt ~expr ~stmt) b)
     | Seq ss -> Seq (List.map (map_stmt ~expr ~stmt) ss)
     | Barrier | Nop -> s)

let subst_var v replacement =
  map_expr (function Var v' when Var.equal v v' -> Some replacement | _ -> None)

let subst_var_stmt v replacement s =
  map_stmt ~expr:(function Var v' when Var.equal v v' -> Some replacement | _ -> None) s

(* A program read back from a bundle carries the dim/var/uf/tensor ids
   it was compiled with.  Advance the global counters past every id it
   uses, or the next [fresh] in this process (a staging tensor added by
   [Lower.apply_plan], a split loop's new var) could collide with an
   unmarshalled id and alias a distinct object in every id-keyed
   table. *)
let claim_ids (p : program) =
  let claim r id = if id > !r then r := id in
  let claim_dim (d : Dim.t) = claim Dim.counter d.Dim.did in
  let claim_var (v : Var.t) = claim Var.counter v.Var.vid in
  let claim_uf (u : Uf.t) = claim Uf.counter u.Uf.uid in
  let rec claim_tensor t =
    claim tensor_counter t.tid;
    List.iter claim_dim t.dims;
    List.iter (fold_expr claim_expr ()) t.extents
  and claim_expr () e =
    match e with
    | Var v -> claim_var v
    | Load (t, _) -> claim_tensor t
    | UfCall (u, _) -> claim_uf u
    | _ -> ()
  in
  let claim_stmt () s =
    match s with
    | For { v; dim; _ } ->
      claim_var v;
      Option.iter claim_dim dim
    | Let (v, _, _) -> claim_var v
    | Store (t, _, _) -> claim_tensor t
    | _ -> ()
  in
  List.iter claim_tensor p.params;
  List.iter claim_tensor p.inputs;
  List.iter claim_tensor p.temporaries;
  List.iter claim_tensor p.outputs;
  List.iter
    (fun k ->
      (match k.launch with PerInternalBatch v -> claim_var v | Once -> ());
      fold_stmt ~expr:claim_expr ~stmt:claim_stmt () k.body)
    p.kernels

(* ---------- pretty printing ---------- *)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmpop_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec expr_to_string e =
  match e with
  | Int n -> string_of_int n
  | Flt v -> Printf.sprintf "%g" v
  | Var v -> Var.name v
  | Binop ((Min | Max) as op, a, b) ->
    Printf.sprintf "%s(%s, %s)" (binop_name op) (expr_to_string a) (expr_to_string b)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op) (expr_to_string b)
  | Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (cmpop_name op) (expr_to_string b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (expr_to_string a) (expr_to_string b)
  | Not a -> Printf.sprintf "!(%s)" (expr_to_string a)
  | Select (c, a, b) ->
    Printf.sprintf "select(%s, %s, %s)" (expr_to_string c) (expr_to_string a)
      (expr_to_string b)
  | Load (t, idx) ->
    Printf.sprintf "%s[%s]" t.tname (String.concat ", " (List.map expr_to_string idx))
  | UfCall (u, args) ->
    Printf.sprintf "%s(%s)" u.Uf.uname (String.concat ", " (List.map expr_to_string args))
  | Math (k, a) ->
    Printf.sprintf "%s(%s)" (Cortex_tensor.Nonlinear.name k) (expr_to_string a)

let loop_kind_name = function
  | Serial -> "for"
  | Parallel -> "parallel_for"
  | Vectorized -> "vector_for"
  | Unrolled -> "unrolled_for"

let rec stmt_to_buf buf indent s =
  let pad = String.make indent ' ' in
  match s with
  | For { v; extent; kind; dim; body } ->
    let dim_note = match dim with Some d -> "  # " ^ Dim.name d | None -> "" in
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s = 0:%s:%s\n" pad (loop_kind_name kind) (Var.name v)
         (expr_to_string extent) dim_note);
    stmt_to_buf buf (indent + 2) body
  | Let (v, e, body) ->
    Buffer.add_string buf (Printf.sprintf "%s%s = %s\n" pad (Var.name v) (expr_to_string e));
    stmt_to_buf buf indent body
  | Store (t, idx, value) ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s[%s] = %s\n" pad t.tname
         (String.concat ", " (List.map expr_to_string idx))
         (expr_to_string value))
  | If (c, a, b) ->
    Buffer.add_string buf (Printf.sprintf "%sif %s:\n" pad (expr_to_string c));
    stmt_to_buf buf (indent + 2) a;
    (match b with
     | Some b ->
       Buffer.add_string buf (Printf.sprintf "%selse:\n" pad);
       stmt_to_buf buf (indent + 2) b
     | None -> ())
  | Seq ss -> List.iter (stmt_to_buf buf indent) ss
  | Barrier -> Buffer.add_string buf (Printf.sprintf "%sbarrier()\n" pad)
  | Nop -> ()

let stmt_to_string s =
  let buf = Buffer.create 256 in
  stmt_to_buf buf 0 s;
  Buffer.contents buf

let program_to_string p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" p.pname);
  let tensor_line role t =
    Buffer.add_string buf
      (Printf.sprintf "  %s %s%s : %s  # dims %s\n" role (space_name t.space) t.tname
         ("[" ^ String.concat ", " (List.map expr_to_string t.extents) ^ "]")
         (String.concat "," (List.map Dim.name t.dims)))
  in
  List.iter (tensor_line "param") p.params;
  List.iter (tensor_line "input") p.inputs;
  List.iter (tensor_line "temp ") p.temporaries;
  List.iter (tensor_line "out  ") p.outputs;
  List.iter
    (fun k ->
      let launch =
        match k.launch with
        | Once -> "once"
        | PerInternalBatch v -> "per internal batch " ^ Var.name v
      in
      Buffer.add_string buf (Printf.sprintf "kernel %s (%s):\n" k.kname launch);
      stmt_to_buf buf 2 k.body)
    p.kernels;
  Buffer.contents buf
