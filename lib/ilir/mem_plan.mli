(** Static memory planning: per-tensor live ranges over a lowered
    program and greedy first-fit packing into one reusable arena.

    The worst case charges every constant-extent temporary its own
    buffer for the whole run; a lowered program touches its buffers in
    phases, and buffers whose live ranges never intersect can share
    arena space.  The arena high-water mark is the {e planned} peak
    footprint — what {!Cost.analyze} records as
    [onchip_planned_bytes] and capacity checks compare against the
    backend's on-chip storage, instead of the sum-of-buffers worst
    case.

    Liveness is static and conservative: each Load/Store advances an
    event clock, a tensor's range is the hull of its access events,
    widened to the full interval of any loop (or per-batch kernel
    launch) containing one of its accesses — iteration 2 may read what
    iteration 1 wrote, so two tensors used in the same loop always
    conflict.  The packing never aliases two simultaneously-live
    buffers (the property tests pin this). *)

type placement = {
  pl_tensor : Ir.tensor;
  pl_bytes : int;
  pl_offset : int;  (** byte offset in the arena *)
  pl_first : int;  (** first event of the live range, inclusive *)
  pl_last : int;  (** last event, inclusive *)
}

type t = {
  arena_bytes : int;  (** planned peak: max of [offset + bytes] *)
  worst_bytes : int;
      (** every planned buffer charged its own aligned allocation —
          the sum-of-buffers baseline the arena packs against *)
  placements : placement list;
  unplanned : Ir.tensor list;
      (** temporaries of the requested spaces whose extent depends on
          the linearized input: streamed scratch, not statically
          packable (and not charged by either number) *)
}

val ranges_overlap : placement -> placement -> bool
(** Live-range intersection (inclusive endpoints). *)

val offsets_overlap : placement -> placement -> bool
(** Arena-interval intersection ([[offset, offset + bytes)]). *)

val live_ranges :
  spaces:Ir.space list -> Ir.program -> (Ir.tensor * (int * int)) list
(** Per-tensor [(first, last)] access-event ranges over a program-order
    walk of all kernels, in first-touch order, restricted to tensors of
    the given memory spaces. *)

val plan :
  ?bytes_per_elem:int ->
  ?align:int ->
  ?uf:(Ir.Uf.t -> int array -> int) ->
  spaces:Ir.space list ->
  Ir.program ->
  t
(** Pack the statically-sized tensors of [spaces] (default alignment 64
    bytes, fp32 elements) first-fit on offset, candidates ordered by
    (first event, size descending) — deterministic for a given program.
    Without [uf], only compile-time-constant extents are sized (the
    capacity-check configuration, safe before any input is seen); with
    [uf] — a bound linearization's [Lower.uf_resolver] — UF-valued
    extents such as [max_batch_len()] resolve too, giving the concrete
    planned-vs-worst footprint the bundle manifest and the bench
    report. *)

val to_string : t -> string
