(** Data-race detection for compiled ILIR kernels.

    The fused kernels execute dynamic batches under a persistent-threads
    model: every iteration of a [Parallel] loop is a different thread
    (group), vectorized feature lanes of one node belong to that node's
    thread group (block-local synchronization is free), and cross-thread
    data only becomes visible at a global [Barrier].

    This pass replays a program's kernels sequentially (like the
    interpreter) while tracking, for every tensor cell, which thread
    group wrote it in which barrier epoch.  A read of a cell written in
    the *current* epoch by a *different* thread group is a data race:
    on real hardware the reader could observe stale memory.  Removing
    the barrier the §A.4 pass inserts on the dependence-carrying batch
    loop makes exactly such reads appear — the test suite checks both
    directions.

    Granularity: thread groups are identified by the values of the
    enclosing [Parallel] loop variables, so the detector finds
    cross-node races (what global barriers guard), not intra-node
    cross-lane ordering (block-local synchronization, which the cost
    model treats as free). *)

type race = {
  tensor : string;
  offset : int;  (** flat cell offset *)
  writer : string;  (** thread-group id that wrote the cell *)
  reader : string;  (** thread-group id that read it in the same epoch *)
  epoch : int;
}

val to_string : race -> string

val check_program :
  ctx:Interp.context ->
  Ir.program ->
  race list
(** Replays the program inside [ctx] (which must have its uninterpreted
    functions and parameters bound, exactly as for [Interp.run_program])
    and returns the races found (bounded to the first 32).  The replay
    performs all stores, so [ctx] ends in the same state as a normal
    run. *)
