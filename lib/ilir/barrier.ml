open Ir
module IntSet = Set.Make (Int)

type mode = Carrier | Conservative

(* Tensors written, and tensors read through a UF-containing index, in
   a statement subtree. *)
let accesses s =
  let expr_has_uf e =
    fold_expr (fun acc e -> acc || match e with UfCall _ -> true | _ -> false) false e
  in
  let writes = ref IntSet.empty in
  let uf_reads = ref IntSet.empty in
  let note_expr () e =
    match e with
    | Load (t, idx) when t.space <> Param && List.exists expr_has_uf idx ->
      uf_reads := IntSet.add t.tid !uf_reads
    | _ -> ()
  in
  let note_stmt () s =
    match s with
    | Store (t, _, _) when t.space <> Param -> writes := IntSet.add t.tid !writes
    | _ -> ()
  in
  fold_stmt ~expr:note_expr ~stmt:note_stmt () s;
  (!writes, !uf_reads)

let carries_dependence s =
  let writes, uf_reads = accesses s in
  not (IntSet.is_empty (IntSet.inter writes uf_reads))

let prepend_barrier body = Seq [ Barrier; body ]

let rec insert_carrier s =
  match s with
  | For r when carries_dependence r.body ->
    (* Outermost carrying loop: synchronize at the top of every
       iteration and stop descending. *)
    For { r with body = prepend_barrier r.body }
  | For r -> For { r with body = insert_carrier r.body }
  | Seq ss -> Seq (List.map insert_carrier ss)
  | Let (v, e, body) -> Let (v, e, insert_carrier body)
  | If (c, a, b) -> If (c, insert_carrier a, Option.map insert_carrier b)
  | Store _ | Barrier | Nop -> s

(* Stock-TVM conservatism (§A.4): given the whole kernel's write set,
   synchronize in the innermost loop whose body performs an indirect
   read of a written tensor — one barrier per node instead of one per
   batch. *)
let has_uf_read_of writes s =
  let _, uf_reads = accesses s in
  not (IntSet.is_empty (IntSet.inter writes uf_reads))

(* Synchronization sits at loop-body granularity, never inside the
   vectorized (thread-lane) feature loops. *)
let rec insert_conservative writes s =
  match s with
  | For r when r.kind <> Vectorized ->
    if has_uf_read_of writes r.body && not (nested_loop_reads writes r.body) then
      For { r with body = prepend_barrier r.body }
    else For { r with body = insert_conservative writes r.body }
  | For r -> For { r with body = insert_conservative writes r.body }
  | Seq ss -> Seq (List.map (insert_conservative writes) ss)
  | Let (v, e, body) -> Let (v, e, insert_conservative writes body)
  | If (c, a, b) ->
    If (c, insert_conservative writes a, Option.map (insert_conservative writes) b)
  | Store _ | Barrier | Nop -> s

and nested_loop_reads writes s =
  match s with
  | For r when r.kind <> Vectorized ->
    has_uf_read_of writes r.body || nested_loop_reads writes r.body
  | For r -> nested_loop_reads writes r.body
  | Seq ss -> List.exists (nested_loop_reads writes) ss
  | Let (_, _, body) -> nested_loop_reads writes body
  | If (_, a, b) ->
    nested_loop_reads writes a
    || (match b with Some b -> nested_loop_reads writes b | None -> false)
  | Store _ | Barrier | Nop -> false

let insert mode s =
  match mode with
  | Carrier -> insert_carrier s
  | Conservative ->
    let writes, _ = accesses s in
    insert_conservative writes s

let count s =
  fold_stmt
    ~expr:(fun acc _ -> acc)
    ~stmt:(fun acc s -> match s with Barrier -> acc + 1 | _ -> acc)
    0 s
