(** Reference interpreter for ILIR programs.

    Executes compiled kernels numerically over real tensors — this is
    the "target" our code generation retargets to, playing the role the
    CUDA/C backends play in the paper's prototype.  Parallel and
    vectorized loops run serially (the ILIR's parallel loops are
    data-race-free between barriers, so the serial order is a valid
    schedule).  The interpreter also counts loads, stores and FLOPs per
    memory space, which the tests cross-check against the static cost
    walker. *)

type value = Vi of int | Vf of float

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable loads_by_space : int array;  (** indexed by [space_index] *)
  mutable stores_by_space : int array;
}

val space_index : Ir.space -> int
val fresh_counters : unit -> counters

type context

val create : ?count:bool -> num_internal_batches:int -> unit -> context
(** [count] enables the load/store/flop counters (default off). *)

val counters : context -> counters

val num_internal_batches : context -> int
(** The per-batch launch count this context was created with. *)

val bind_uf : context -> Ir.Uf.t -> (int array -> int) -> unit
val bind_uf0 : context -> Ir.Uf.t -> int -> unit
(** Bind a nullary UF to a constant (e.g. [num_leaves()]). *)

val bind_tensor : context -> Ir.tensor -> Cortex_tensor.Tensor.t -> unit
(** Provide storage for a tensor (parameters, inputs, or outputs the
    caller wants to inspect).  Unbound temporaries/outputs are allocated
    zero-filled on first use, with extents evaluated in the context. *)

val get_tensor : context -> Ir.tensor -> Cortex_tensor.Tensor.t
(** Storage of a tensor; allocates if not yet bound. *)

val eval_expr : context -> (int * value) list -> Ir.expr -> value
(** Evaluate an expression under variable bindings (vid -> value). *)

val run_stmt : context -> (int * value) list -> Ir.stmt -> unit

val run_program : context -> Ir.program -> unit
(** Runs the kernels in order.  A maximal run of consecutive
    [PerInternalBatch] kernels executes batch-major: for each batch in
    order, every kernel of the run is launched with the batch variable
    bound — the launch interleaving an unfused framework actually
    performs along the dependence-carrying batch sequence. *)

exception Runtime_error of string
