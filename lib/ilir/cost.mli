(** Static cost analysis of scheduled ILIR programs.

    Walks a program against a *concrete* linearized input (the
    uninterpreted functions are bound to the linearizer's arrays) and
    produces exact FLOP and byte counts per memory space, split into
    *segments* — the regions between global barriers.  Loops with
    constant extents and branch-free bodies are counted
    multiplicatively, so the walk costs O(nodes), not O(nodes * H^2).

    The backend model (lib/backend) converts these counts into simulated
    latency.  Segments carry the maximum concurrent lane count so the
    backend can model occupancy, and the set of parameter tensors they
    touch so it can model model persistence (persistent weights are
    fetched once; otherwise once per segment, i.e. per dynamic batch). *)

type segment = {
  flops : float;
  dep_flops : float;
      (** subset of [flops] issued on a loop-carried dependency chain:
          reductions accumulating into a Register temporary whose
          innermost enclosing loop is Serial.  Each FMA waits on the
          previous one, so backends price these at their serial issue
          rate; a schedule that binds the reduction loop onto lanes (or
          unrolls it into distinct accumulators) moves the work back to
          full throughput *)
  reads : float array;  (** bytes read per [Interp.space_index] *)
  writes : float array;  (** bytes written per space *)
  lanes : float;  (** max concurrent lanes while this segment ran *)
  param_footprint : float;  (** bytes of distinct Param tensors touched *)
  param_raw : (int * float) list;
      (** raw bytes read per Param tensor (by id): the demand stream
          before any caching; gather-style accesses (embedding rows)
          touch far less than the tensor's footprint *)
}

type kernel_cost = { kname : string; launches : int; segments : segment list }
(** [segments] concatenates the segments of all launches in order. *)

type t = {
  kernels : kernel_cost list;
  param_total_bytes : float;  (** distinct Param bytes across the program *)
  param_sizes : (int * float) list;  (** bytes per Param tensor id *)
  barrier_count : int;  (** total global barriers executed *)
  onchip_peak_bytes : float;
      (** resident footprint of constant-extent Shared/Register
          temporaries (staging buffers, fixed-shape caches,
          accumulators) — checked against the backend's on-chip
          capacity for schedule feasibility.  Scratch whose extent
          depends on the linearized input is streamed, not resident,
          and is priced through on-chip bandwidth instead *)
  onchip_planned_bytes : float;
      (** the same buffers after static memory planning
          ({!Mem_plan.plan}): temporaries whose live ranges never
          intersect share arena space, so this is the footprint that
          must actually be resident together.  Always
          [<= onchip_peak_bytes]; capacity feasibility checks use
          this *)
}

val bytes_per_elem : int
(** 4: the models run in fp32 on the paper's hardware. *)

val analyze :
  uf:(Ir.Uf.t -> int array -> int) ->
  num_internal_batches:int ->
  Ir.program ->
  t

val total_flops : t -> float
val global_traffic : t -> float
(** Bytes moved to/from off-chip memory, excluding parameters (which the
    backend accounts for separately depending on persistence). *)

val onchip_traffic : t -> float
val total_launches : t -> int
