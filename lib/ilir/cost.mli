(** Static cost analysis of scheduled ILIR programs.

    Walks a program against a *concrete* linearized input (the
    uninterpreted functions are bound to the linearizer's arrays) and
    produces exact FLOP and byte counts per memory space, split into
    *segments* — the regions between global barriers.  Loops with
    constant extents and branch-free bodies are counted
    multiplicatively, so the walk costs O(nodes), not O(nodes * H^2).

    The backend model (lib/backend) converts these counts into simulated
    latency.  Segments carry the maximum concurrent lane count so the
    backend can model occupancy, and the set of parameter tensors they
    touch so it can model model persistence (persistent weights are
    fetched once; otherwise once per segment, i.e. per dynamic batch). *)

type segment = {
  flops : float;
  reads : float array;  (** bytes read per [Interp.space_index] *)
  writes : float array;  (** bytes written per space *)
  lanes : float;  (** max concurrent lanes while this segment ran *)
  param_footprint : float;  (** bytes of distinct Param tensors touched *)
  param_raw : (int * float) list;
      (** raw bytes read per Param tensor (by id): the demand stream
          before any caching; gather-style accesses (embedding rows)
          touch far less than the tensor's footprint *)
}

type kernel_cost = { kname : string; launches : int; segments : segment list }
(** [segments] concatenates the segments of all launches in order. *)

type t = {
  kernels : kernel_cost list;
  param_total_bytes : float;  (** distinct Param bytes across the program *)
  param_sizes : (int * float) list;  (** bytes per Param tensor id *)
  barrier_count : int;  (** total global barriers executed *)
}

val bytes_per_elem : int
(** 4: the models run in fp32 on the paper's hardware. *)

val analyze :
  uf:(Ir.Uf.t -> int array -> int) ->
  num_internal_batches:int ->
  Ir.program ->
  t

val total_flops : t -> float
val global_traffic : t -> float
(** Bytes moved to/from off-chip memory, excluding parameters (which the
    backend accounts for separately depending on persistence). *)

val onchip_traffic : t -> float
val total_launches : t -> int
