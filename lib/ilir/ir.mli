(** The Irregular Loops IR (§5 of the paper).

    The ILIR is the loop-based, data-structure-agnostic representation
    recursion is lowered into.  It extends a tensor-compiler IR with the
    three features §5 calls out: (1) non-affine index expressions,
    represented as {e uninterpreted functions} of loop variables whose
    runtime meaning is supplied by the data structure linearizer;
    (2) loops with variable (UF-valued) bounds; (3) a conditional
    operator.  Tensors and loops carry {e named dimensions} (§A.2) so
    bounds reasoning can relate loops to tensor dimensions even when the
    correspondence is not one-to-one. *)

(** Named dimensions (§A.2): identifiers shared between tensor
    dimensions and the loops that iterate them. *)
module Dim : sig
  type t = { dname : string; did : int }

  val fresh : string -> t
  val equal : t -> t -> bool
  val name : t -> string
end

(** Uninterpreted integer functions (§5.1): the compile-time handle on
    linearizer outputs such as [child(k, n)] or [batch_len(b)].
    [range] is an inclusive bound on the result when one is statically
    known; the simplifier's interval analysis consumes it the way the
    paper's prototype feeds facts to Z3. *)
module Uf : sig
  type t = { uname : string; uid : int; arity : int; range : (int * int) option }

  val fresh : ?range:int * int -> string -> arity:int -> t
  val equal : t -> t -> bool
end

module Var : sig
  type t = { vname : string; vid : int }

  val fresh : string -> t
  val equal : t -> t -> bool
  val name : t -> string
end

(** Memory spaces.  [Param] marks model weights (the candidates for
    model persistence); [Shared]/[Register] are on-chip. *)
type space = Param | Global | Shared | Register

val space_name : space -> string

type binop = Add | Sub | Mul | Div | Mod | Min | Max
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Flt of float
  | Var of Var.t
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr  (** 1 when true, 0 when false *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Select of expr * expr * expr  (** cond, then, else *)
  | Load of tensor * expr list
  | UfCall of Uf.t * expr list
  | Math of Cortex_tensor.Nonlinear.kind * expr

and tensor = {
  tname : string;
  tid : int;  (** identity: two tensors alias iff their ids are equal *)
  dims : Dim.t list;
  extents : expr list;  (** per-dimension extents; may contain UF calls *)
  space : space;
}

type loop_kind =
  | Serial
  | Parallel  (** maps to GPU thread blocks / CPU cores *)
  | Vectorized  (** maps to thread lanes / SIMD *)
  | Unrolled

type stmt =
  | For of { v : Var.t; extent : expr; kind : loop_kind; dim : Dim.t option; body : stmt }
  | Let of Var.t * expr * stmt
  | Store of tensor * expr list * expr
  | If of expr * stmt * stmt option  (** the conditional operator, §5.2 *)
  | Seq of stmt list
  | Barrier  (** global synchronization point *)
  | Nop

(** The unit of device launch.  [PerInternalBatch b] kernels are
    launched once per internal dynamic batch with [b] bound to the batch
    index — the shape execution takes when kernel fusion is off and each
    operator is its own launch. *)
type launch = Once | PerInternalBatch of Var.t

type kernel = { kname : string; launch : launch; body : stmt }

type program = {
  pname : string;
  params : tensor list;
  inputs : tensor list;
  temporaries : tensor list;
  outputs : tensor list;
  kernels : kernel list;
}

(** {2 Constructors} *)

val tensor : ?space:space -> string -> Dim.t list -> expr list -> tensor
(** Fresh tensor; raises [Invalid_argument] when [dims] and [extents]
    disagree in length. *)

val tensor_equal : tensor -> tensor -> bool

val int : int -> expr
val flt : float -> expr
val var : Var.t -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val min_ : expr -> expr -> expr
val max_ : expr -> expr -> expr

val for_ : ?kind:loop_kind -> ?dim:Dim.t -> Var.t -> expr -> stmt -> stmt
val seq : stmt list -> stmt
(** Flattens the singleton case. *)

(** {2 Traversals} *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and all subexpressions, including
    index expressions of loads and UF calls. *)

val fold_stmt : expr:('a -> expr -> 'a) -> stmt:('a -> stmt -> 'a) -> 'a -> stmt -> 'a
(** Pre-order fold over a statement tree; [expr] also visits loop
    extents, bound values, indices and stored values. *)

val map_expr : (expr -> expr option) -> expr -> expr
(** Top-down rewriting: where [f] returns [Some e'], the subtree is
    replaced (and not descended into); otherwise children are mapped. *)

val map_stmt :
  ?expr:(expr -> expr option) -> ?stmt:(stmt -> stmt option) -> stmt -> stmt

val subst_var : Var.t -> expr -> expr -> expr
val subst_var_stmt : Var.t -> expr -> stmt -> stmt

val claim_ids : program -> unit
(** Advance the global dim/var/uf/tensor id counters past every id the
    program uses.  Call after deserializing a program (bundle load): the
    next [fresh] in this process must not collide with an id baked into
    the deserialized program, or two distinct objects would alias in the
    id-keyed tables the interpreter and schedulers build. *)

(** {2 Printing} *)

val binop_name : binop -> string
val cmpop_name : cmpop -> string
val loop_kind_name : loop_kind -> string
val expr_to_string : expr -> string
val stmt_to_string : stmt -> string
val program_to_string : program -> string
