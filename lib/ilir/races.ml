open Ir
module Tensor = Cortex_tensor.Tensor
module Shape = Cortex_tensor.Shape
module Nonlinear = Cortex_tensor.Nonlinear

type race = {
  tensor : string;
  offset : int;
  writer : string;
  reader : string;
  epoch : int;
}

let to_string r =
  Printf.sprintf "race on %s[%d]: written by %s, read by %s in epoch %d" r.tensor r.offset
    r.writer r.reader r.epoch

let max_races = 32

type state = {
  ctx : Interp.context;
  writes : (int * int, int * string) Hashtbl.t;  (* (tid, offset) -> epoch, task *)
  mutable epoch : int;
  mutable races : race list;
  mutable race_count : int;
}

let record st tensor offset ~writer ~reader =
  if st.race_count < max_races then
    st.races <- { tensor; offset; writer; reader; epoch = st.epoch } :: st.races;
  st.race_count <- st.race_count + 1

let as_int = function
  | Interp.Vi n -> n
  | Interp.Vf _ -> failwith "Races: expected int"

let as_float = function Interp.Vf v -> v | Interp.Vi n -> float_of_int n

(* Expression evaluation mirroring the interpreter, with read
   interception; [task] identifies the current thread group. *)
let rec eval st env ~task e =
  match e with
  | Int _ | Flt _ | Var _ | UfCall _ -> Interp.eval_expr st.ctx env e
  | Binop (op, a, b) ->
    let va = eval st env ~task a and vb = eval st env ~task b in
    (match (va, vb) with
     | Interp.Vi x, Interp.Vi y ->
       Interp.Vi
         (match op with
          | Add -> x + y
          | Sub -> x - y
          | Mul -> x * y
          | Div -> x / y
          | Mod -> x mod y
          | Min -> min x y
          | Max -> max x y)
     | _ ->
       let x = as_float va and y = as_float vb in
       Interp.Vf
         (match op with
          | Add -> x +. y
          | Sub -> x -. y
          | Mul -> x *. y
          | Div -> x /. y
          | Mod -> Float.rem x y
          | Min -> Float.min x y
          | Max -> Float.max x y))
  | Cmp (op, a, b) ->
    let x = as_float (eval st env ~task a) and y = as_float (eval st env ~task b) in
    let r =
      match op with Lt -> x < y | Le -> x <= y | Gt -> x > y | Ge -> x >= y | Eq -> x = y | Ne -> x <> y
    in
    Interp.Vi (if r then 1 else 0)
  | And (a, b) ->
    Interp.Vi
      (if as_int (eval st env ~task a) <> 0 && as_int (eval st env ~task b) <> 0 then 1 else 0)
  | Or (a, b) ->
    Interp.Vi
      (if as_int (eval st env ~task a) <> 0 || as_int (eval st env ~task b) <> 0 then 1 else 0)
  | Not a -> Interp.Vi (if as_int (eval st env ~task a) = 0 then 1 else 0)
  | Select (c, a, b) ->
    if as_int (eval st env ~task c) <> 0 then eval st env ~task a else eval st env ~task b
  | Math (k, a) -> Interp.Vf (Nonlinear.apply k (as_float (eval st env ~task a)))
  | Load (t, idx) ->
    let storage = Interp.get_tensor st.ctx t in
    let offsets = Array.of_list (List.map (fun i -> as_int (eval st env ~task i)) idx) in
    let off = Shape.flatten_index storage.Tensor.shape offsets in
    (match Hashtbl.find_opt st.writes (t.tid, off) with
     | Some (e, writer) when e = st.epoch && writer <> task && t.space <> Param ->
       record st t.tname off ~writer ~reader:task
     | Some _ | None -> ());
    Interp.Vf (Tensor.get_flat storage off)

let rec run st env ~task s =
  match s with
  | Nop -> ()
  | Barrier -> st.epoch <- st.epoch + 1
  | Seq ss -> List.iter (run st env ~task) ss
  | Let (v, e, body) -> run st ((v.Var.vid, eval st env ~task e) :: env) ~task body
  | Store (t, idx, value) ->
    let storage = Interp.get_tensor st.ctx t in
    let offsets = Array.of_list (List.map (fun i -> as_int (eval st env ~task i)) idx) in
    let off = Shape.flatten_index storage.Tensor.shape offsets in
    let v = as_float (eval st env ~task value) in
    Tensor.set_flat storage off v;
    Hashtbl.replace st.writes (t.tid, off) (st.epoch, task)
  | If (c, a, b) ->
    if as_int (eval st env ~task c) <> 0 then run st env ~task a
    else (match b with Some b -> run st env ~task b | None -> ())
  | For { v; extent; kind; body; _ } ->
    let n = as_int (eval st env ~task extent) in
    for i = 0 to n - 1 do
      let task' =
        match kind with
        | Parallel -> Printf.sprintf "%s.%d" task i
        | Serial | Vectorized | Unrolled -> task
      in
      run st ((v.Var.vid, Interp.Vi i) :: env) ~task:task' body
    done

(* Mirrors [Interp.run_program]'s batch-major grouping of consecutive
   per-batch kernels so the replay produces the same final state; every
   kernel launch starts a fresh epoch (launches synchronize the
   device). *)
let check_program ~ctx (p : program) =
  let st = { ctx; writes = Hashtbl.create 1024; epoch = 0; races = []; race_count = 0 } in
  let launches = Interp.num_internal_batches ctx in
  let is_per_batch k = match k.launch with PerInternalBatch _ -> true | Once -> false in
  let rec go = function
    | [] -> ()
    | ({ launch = Once; body; _ } : kernel) :: rest ->
      st.epoch <- st.epoch + 1;
      run st [] ~task:"t" body;
      go rest
    | kernels ->
      let rec take_prefix acc = function
        | k :: tl when is_per_batch k -> take_prefix (k :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let group, rest = take_prefix [] kernels in
      for b = 0 to launches - 1 do
        List.iter
          (fun k ->
            st.epoch <- st.epoch + 1;
            match k.launch with
            | PerInternalBatch bvar -> run st [ (bvar.Var.vid, Interp.Vi b) ] ~task:"t" k.body
            | Once -> assert false)
          group
      done;
      go rest
  in
  go p.kernels;
  List.rev st.races
