(** Barrier insertion (§A.4 of the paper).

    The lowered loop nests iterate sequentially over dynamic batches,
    and the dependence between a node and its children manifests as a
    loop-carried dependence of the batch loop: a tensor (e.g. [rnn]) is
    written at [node] and read at [child_k(node)].  Threads must
    synchronize between batches.

    TVM's stock pass places the barrier conservatively in the innermost
    loop containing the dependent accesses (one barrier per node);
    Cortex's modified pass places it in the body of the loop that
    actually carries the dependence (one barrier per batch).  Both modes
    are implemented so the ablation bench can show the difference. *)

type mode =
  | Carrier  (** Cortex: barrier in the outermost dependence-carrying loop *)
  | Conservative  (** stock TVM: barrier in the innermost loop with both accesses *)

val insert : mode -> Ir.stmt -> Ir.stmt
(** Inserts [Barrier] at the start of the chosen loops' bodies.
    [Carrier] targets loops whose body both writes some non-Param tensor
    and reads the same tensor through an uninterpreted-function index
    (i.e. reads another node's entry); [Conservative] synchronizes at
    the innermost loop performing such a read of any tensor the kernel
    writes, the way the stock pass over-synchronizes per node. *)

val count : Ir.stmt -> int
(** Number of syntactic [Barrier] statements. *)
