open Ir
module Nonlinear = Cortex_tensor.Nonlinear
module IntSet = Set.Make (Int)

let bytes_per_elem = 4

type segment = {
  flops : float;
  dep_flops : float;
      (* subset of [flops] issued on a loop-carried dependency chain: a
         reduction accumulating into a Register temporary under a Serial
         loop.  Backends price these at their serial issue rate unless a
         schedule binds the loop onto lanes. *)
  reads : float array;
  writes : float array;
  lanes : float;
  param_footprint : float;
  param_raw : (int * float) list;
      (* per Param-tensor raw read bytes in this segment, by tensor id *)
}

type kernel_cost = { kname : string; launches : int; segments : segment list }

type t = {
  kernels : kernel_cost list;
  param_total_bytes : float;
  param_sizes : (int * float) list;  (* bytes per Param tensor id *)
  barrier_count : int;
  onchip_peak_bytes : float;  (* Shared/Register temporary footprint *)
  onchip_planned_bytes : float;  (* same buffers, liveness-packed (Mem_plan) *)
}

(* Mutable accumulator for the segment being built. *)
type acc = {
  mutable a_flops : float;
  mutable a_dep : float;
  a_reads : float array;
  a_writes : float array;
  mutable a_lanes : float;
  mutable a_params : IntSet.t;
  a_param_raw : (int, float) Hashtbl.t;
}

let fresh_acc () =
  {
    a_flops = 0.0;
    a_dep = 0.0;
    a_reads = Array.make 4 0.0;
    a_writes = Array.make 4 0.0;
    a_lanes = 1.0;
    a_params = IntSet.empty;
    a_param_raw = Hashtbl.create 4;
  }

let is_empty_acc a =
  a.a_flops = 0.0
  && Array.for_all (( = ) 0.0) a.a_reads
  && Array.for_all (( = ) 0.0) a.a_writes

type state = {
  uf : Uf.t -> int array -> int;
  param_sizes : (int, float) Hashtbl.t;  (* tid -> bytes *)
  mutable current : acc;
  mutable segs_rev : segment list;
  mutable barriers : int;
}

let close_segment st =
  if not (is_empty_acc st.current) then begin
    let a = st.current in
    let footprint =
      IntSet.fold
        (fun tid sum -> sum +. (try Hashtbl.find st.param_sizes tid with Not_found -> 0.0))
        a.a_params 0.0
    in
    let param_raw = Hashtbl.fold (fun tid b acc -> (tid, b) :: acc) a.a_param_raw [] in
    st.segs_rev <-
      {
        flops = a.a_flops;
        dep_flops = a.a_dep;
        reads = Array.copy a.a_reads;
        writes = Array.copy a.a_writes;
        lanes = a.a_lanes;
        param_footprint = footprint;
        param_raw;
      }
      :: st.segs_rev
  end;
  st.current <- fresh_acc ()

(* ---------- integer evaluation of extents and conditions ----------
   Control flow in lowered recursive models never depends on tensor
   data (property P.1), so extents and conditions evaluate with UFs and
   loop variables alone. *)

let rec eval_int st env e =
  match e with
  | Int n -> n
  | Var v ->
    (try List.assoc v.Var.vid env
     with Not_found -> failwith ("Cost.eval_int: unbound " ^ v.Var.vname))
  | Binop (op, a, b) ->
    let x = eval_int st env a and y = eval_int st env b in
    (match op with
     | Add -> x + y
     | Sub -> x - y
     | Mul -> x * y
     | Div -> x / y
     | Mod -> x mod y
     | Min -> min x y
     | Max -> max x y)
  | Cmp (op, a, b) ->
    let x = eval_int st env a and y = eval_int st env b in
    let r =
      match op with Lt -> x < y | Le -> x <= y | Gt -> x > y | Ge -> x >= y | Eq -> x = y | Ne -> x <> y
    in
    if r then 1 else 0
  | And (a, b) -> if eval_int st env a <> 0 && eval_int st env b <> 0 then 1 else 0
  | Or (a, b) -> if eval_int st env a <> 0 || eval_int st env b <> 0 then 1 else 0
  | Not a -> if eval_int st env a = 0 then 1 else 0
  | Select (c, a, b) -> if eval_int st env c <> 0 then eval_int st env a else eval_int st env b
  | UfCall (u, args) -> st.uf u (Array.of_list (List.map (eval_int st env) args))
  | Flt _ | Load _ | Math _ -> failwith "Cost.eval_int: data-dependent control flow"

(* ---------- float-valuedness (to charge FLOPs only for tensor math) *)

let rec is_float = function
  | Flt _ | Load _ | Math _ -> true
  | Int _ | Var _ | UfCall _ | Cmp _ | And _ | Or _ | Not _ -> false
  | Binop (_, a, b) -> is_float a || is_float b
  | Select (_, a, b) -> is_float a || is_float b

(* ---------- expression cost ---------- *)

let rec count_expr st mult lanes e =
  match e with
  | Int _ | Flt _ | Var _ -> ()
  | Binop (_, a, b) ->
    if is_float e then st.current.a_flops <- st.current.a_flops +. mult;
    count_expr st mult lanes a;
    count_expr st mult lanes b
  | Cmp (_, a, b) ->
    if is_float a || is_float b then st.current.a_flops <- st.current.a_flops +. mult;
    count_expr st mult lanes a;
    count_expr st mult lanes b
  | And (a, b) | Or (a, b) ->
    count_expr st mult lanes a;
    count_expr st mult lanes b
  | Not a -> count_expr st mult lanes a
  | Select (c, a, b) ->
    if is_float e then st.current.a_flops <- st.current.a_flops +. mult;
    count_expr st mult lanes c;
    count_expr st mult lanes a;
    count_expr st mult lanes b
  | Load (t, idx) ->
    let s = Interp.space_index t.space in
    st.current.a_reads.(s) <-
      st.current.a_reads.(s) +. (mult *. float_of_int bytes_per_elem);
    if t.space = Param then begin
      st.current.a_params <- IntSet.add t.tid st.current.a_params;
      let prev = try Hashtbl.find st.current.a_param_raw t.tid with Not_found -> 0.0 in
      Hashtbl.replace st.current.a_param_raw t.tid
        (prev +. (mult *. float_of_int bytes_per_elem))
    end;
    List.iter (count_expr st mult lanes) idx
  | UfCall (_, args) -> List.iter (count_expr st mult lanes) args
  | Math (k, a) ->
    st.current.a_flops <- st.current.a_flops +. (mult *. float_of_int (Nonlinear.flops k));
    count_expr st mult lanes a

(* A statement can be counted multiplicatively when executing it the
   same number of times with different loop-variable values cannot
   change the counts: no branches, no barriers, and only
   constant-extent inner loops. *)
let rec multipliable = function
  | Store _ | Nop -> true
  | Let (_, _, body) -> multipliable body
  | Seq ss -> List.for_all multipliable ss
  | For { extent = Int _; body; _ } -> multipliable body
  | For _ | If _ | Barrier -> false

(* Vectorized (feature) lanes of one operator instance cap at a thread
   block's worth of threads; parallel (node) lanes do not. *)
let vec_lane_cap = 512.0

(* [ser] tracks whether the *innermost* enclosing loop is Serial: a
   reduction accumulating into a Register temporary inside such a loop
   runs on a loop-carried dependency chain (each FMA waits on the
   previous one), so its FLOPs are additionally recorded as
   [dep_flops].  The innermost loop is the chain carrier — outer loops
   re-initialize the accumulator per iteration — so binding just the
   reduction loop onto lanes (or unrolling it into distinct
   accumulators) lifts the classification. *)
let rec count_stmt st env mult (par, vec) ser s =
  st.current.a_lanes <- Float.max st.current.a_lanes (par *. vec);
  let lanes = (par, vec) in
  match s with
  | Nop -> ()
  | Barrier ->
    close_segment st;
    st.barriers <- st.barriers + 1
  | Seq ss -> List.iter (count_stmt st env mult lanes ser) ss
  | Let (v, e, body) ->
    (* Bound values are integer node ids; evaluate them when control
       flow below may need them, otherwise a dummy binding suffices for
       multiplicative counting. *)
    let value = try eval_int st env e with Failure _ -> 0 in
    count_expr st mult lanes e;
    count_stmt st ((v.Var.vid, value) :: env) mult lanes ser body
  | Store (t, idx, value) ->
    let sp = Interp.space_index t.space in
    st.current.a_writes.(sp) <-
      st.current.a_writes.(sp) +. (mult *. float_of_int bytes_per_elem);
    List.iter (count_expr st mult lanes) idx;
    let before = st.current.a_flops in
    count_expr st mult lanes value;
    if ser && t.space = Register then
      st.current.a_dep <- st.current.a_dep +. (st.current.a_flops -. before)
  | If (c, a, b) ->
    count_expr st mult lanes c;
    if eval_int st env c <> 0 then count_stmt st env mult lanes ser a
    else (match b with Some b -> count_stmt st env mult lanes ser b | None -> ())
  | For { v; extent; kind; body; _ } ->
    let n = eval_int st env extent in
    if n <= 0 then ()
    else begin
      let lanes' =
        match kind with
        | Parallel -> (par *. float_of_int n, vec)
        | Vectorized -> (par, Float.min vec_lane_cap (vec *. float_of_int n))
        | Serial | Unrolled -> lanes
      in
      let ser' = kind = Serial in
      if multipliable body then
        count_stmt st ((v.Var.vid, 0) :: env) (mult *. float_of_int n) lanes' ser' body
      else
        for i = 0 to n - 1 do
          count_stmt st ((v.Var.vid, i) :: env) mult lanes' ser' body
        done
    end

let analyze ~uf ~num_internal_batches (p : program) =
  let param_sizes = Hashtbl.create 8 in
  let dummy_state =
    { uf; param_sizes; current = fresh_acc (); segs_rev = []; barriers = 0 }
  in
  let total_params = ref 0.0 in
  List.iter
    (fun t ->
      let elems =
        List.fold_left (fun acc e -> acc * eval_int dummy_state [] e) 1 t.extents
      in
      let bytes = float_of_int (elems * bytes_per_elem) in
      Hashtbl.replace param_sizes t.tid bytes;
      total_params := !total_params +. bytes)
    p.params;
  let kernels =
    List.map
      (fun k ->
        let st = { uf; param_sizes; current = fresh_acc (); segs_rev = []; barriers = 0 } in
        let launches =
          match k.launch with
          | Once ->
            count_stmt st [] 1.0 (1.0, 1.0) false k.body;
            close_segment st;
            1
          | PerInternalBatch bvar ->
            for b = 0 to num_internal_batches - 1 do
              count_stmt st [ (bvar.Var.vid, b) ] 1.0 (1.0, 1.0) false k.body;
              close_segment st
            done;
            num_internal_batches
        in
        dummy_state.barriers <- dummy_state.barriers + st.barriers;
        { kname = k.kname; launches; segments = List.rev st.segs_rev })
      p.kernels
  in
  let param_sizes = Hashtbl.fold (fun tid b acc -> (tid, b) :: acc) param_sizes [] in
  (* Resident on-chip footprint: constant-extent Shared/Register
     temporaries (staging buffers, caches of fixed shape, accumulators,
     unroll-local state) are live for a whole launch and must fit
     capacity together.  Scratch sized by the linearized input
     (UF-valued extents) is processed in flight — it is priced through
     on-chip bandwidth, not held resident — so it does not count. *)
  let onchip_peak_bytes =
    List.fold_left
      (fun acc t ->
        match t.space with
        | Shared | Register ->
          let elems =
            List.fold_left
              (fun n e -> match (n, e) with Some n, Int k -> Some (n * k) | _ -> None)
              (Some 1) t.extents
          in
          (match elems with
           | Some elems -> acc +. float_of_int (elems * bytes_per_elem)
           | None -> acc)
        | Param | Global -> acc)
      0.0 p.temporaries
  in
  (* The same buffers, liveness-packed: temporaries whose live ranges
     never intersect share arena space, so the planned footprint is
     what must actually be resident together.  Always <= the worst
     case above, so switching the capacity check to it only admits
     schedules. *)
  let onchip_planned_bytes =
    float_of_int
      (Mem_plan.plan ~bytes_per_elem ~spaces:[ Shared; Register ] p).Mem_plan.arena_bytes
  in
  {
    kernels;
    param_total_bytes = !total_params;
    param_sizes;
    barrier_count = dummy_state.barriers;
    onchip_peak_bytes;
    onchip_planned_bytes;
  }

let total_flops t =
  List.fold_left
    (fun acc k -> List.fold_left (fun acc s -> acc +. s.flops) acc k.segments)
    0.0 t.kernels

let traffic_of_space t si =
  List.fold_left
    (fun acc k ->
      List.fold_left (fun acc s -> acc +. s.reads.(si) +. s.writes.(si)) acc k.segments)
    0.0 t.kernels

let global_traffic t = traffic_of_space t (Interp.space_index Global)

let onchip_traffic t =
  traffic_of_space t (Interp.space_index Shared) +. traffic_of_space t (Interp.space_index Register)

let total_launches t = List.fold_left (fun acc k -> acc + k.launches) 0 t.kernels
