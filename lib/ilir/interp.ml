open Ir
module Tensor = Cortex_tensor.Tensor
module Nonlinear = Cortex_tensor.Nonlinear

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type value = Vi of int | Vf of float

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable loads_by_space : int array;
  mutable stores_by_space : int array;
}

let space_index = function Param -> 0 | Global -> 1 | Shared -> 2 | Register -> 3

let fresh_counters () =
  { loads = 0; stores = 0; flops = 0; loads_by_space = Array.make 4 0; stores_by_space = Array.make 4 0 }

type context = {
  ufs : (int, int array -> int) Hashtbl.t;
  storage : (int, Tensor.t) Hashtbl.t;
  tensors_meta : (int, tensor) Hashtbl.t;
  num_internal_batches : int;
  count : bool;
  ctrs : counters;
}

let create ?(count = false) ~num_internal_batches () =
  {
    ufs = Hashtbl.create 16;
    storage = Hashtbl.create 16;
    tensors_meta = Hashtbl.create 16;
    num_internal_batches;
    count;
    ctrs = fresh_counters ();
  }

let counters ctx = ctx.ctrs
let num_internal_batches ctx = ctx.num_internal_batches

let bind_uf ctx (u : Uf.t) f = Hashtbl.replace ctx.ufs u.Uf.uid f
let bind_uf0 ctx u v = bind_uf ctx u (fun _ -> v)

let bind_tensor ctx (t : tensor) storage =
  Hashtbl.replace ctx.tensors_meta t.tid t;
  Hashtbl.replace ctx.storage t.tid storage

let as_int = function
  | Vi n -> n
  | Vf v -> fail "expected int, got float %g" v

let as_float = function Vf v -> v | Vi n -> float_of_int n

let rec eval ctx env e =
  match e with
  | Int n -> Vi n
  | Flt v -> Vf v
  | Var v ->
    (try List.assoc v.Var.vid env with Not_found -> fail "unbound variable %s" v.Var.vname)
  | Binop (op, a, b) ->
    let va = eval ctx env a and vb = eval ctx env b in
    (match (va, vb) with
     | Vi x, Vi y ->
       Vi
         (match op with
          | Add -> x + y
          | Sub -> x - y
          | Mul -> x * y
          | Div -> if y = 0 then fail "division by zero" else x / y
          | Mod -> if y = 0 then fail "mod by zero" else x mod y
          | Min -> min x y
          | Max -> max x y)
     | _ ->
       if ctx.count then ctx.ctrs.flops <- ctx.ctrs.flops + 1;
       let x = as_float va and y = as_float vb in
       Vf
         (match op with
          | Add -> x +. y
          | Sub -> x -. y
          | Mul -> x *. y
          | Div -> x /. y
          | Mod -> Float.rem x y
          | Min -> Float.min x y
          | Max -> Float.max x y))
  | Cmp (op, a, b) ->
    let x = eval ctx env a and y = eval ctx env b in
    let r =
      match (x, y) with
      | Vi x, Vi y -> (
        match op with
        | Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y
        | Eq -> x = y
        | Ne -> x <> y)
      | _ ->
        let x = as_float x and y = as_float y in
        (match op with
         | Lt -> x < y
         | Le -> x <= y
         | Gt -> x > y
         | Ge -> x >= y
         | Eq -> x = y
         | Ne -> x <> y)
    in
    Vi (if r then 1 else 0)
  | And (a, b) -> Vi (if as_int (eval ctx env a) <> 0 && as_int (eval ctx env b) <> 0 then 1 else 0)
  | Or (a, b) -> Vi (if as_int (eval ctx env a) <> 0 || as_int (eval ctx env b) <> 0 then 1 else 0)
  | Not a -> Vi (if as_int (eval ctx env a) = 0 then 1 else 0)
  | Select (c, a, b) -> if as_int (eval ctx env c) <> 0 then eval ctx env a else eval ctx env b
  | Load (t, idx) ->
    let storage = get_tensor_ ctx t in
    let offsets = Array.of_list (List.map (fun i -> as_int (eval ctx env i)) idx) in
    if ctx.count then begin
      ctx.ctrs.loads <- ctx.ctrs.loads + 1;
      let s = space_index t.space in
      ctx.ctrs.loads_by_space.(s) <- ctx.ctrs.loads_by_space.(s) + 1
    end;
    (try Vf (Tensor.get storage offsets)
     with Invalid_argument msg -> fail "load %s: %s" t.tname msg)
  | UfCall (u, args) ->
    let f =
      match Hashtbl.find_opt ctx.ufs u.Uf.uid with
      | Some f -> f
      | None -> fail "unbound uninterpreted function %s" u.Uf.uname
    in
    let args = Array.of_list (List.map (fun a -> as_int (eval ctx env a)) args) in
    Vi (f args)
  | Math (k, a) ->
    if ctx.count then ctx.ctrs.flops <- ctx.ctrs.flops + Nonlinear.flops k;
    Vf (Nonlinear.apply k (as_float (eval ctx env a)))

and get_tensor_ ctx (t : tensor) =
  match Hashtbl.find_opt ctx.storage t.tid with
  | Some s -> s
  | None ->
    let extents =
      Array.of_list (List.map (fun e -> as_int (eval ctx [] e)) t.extents)
    in
    let storage = Tensor.zeros extents in
    bind_tensor ctx t storage;
    storage

let eval_expr = eval
let get_tensor ctx t = get_tensor_ ctx t

let rec run_stmt ctx env s =
  match s with
  | For { v; extent; body; _ } ->
    let n = as_int (eval ctx env extent) in
    for i = 0 to n - 1 do
      run_stmt ctx ((v.Var.vid, Vi i) :: env) body
    done
  | Let (v, e, body) -> run_stmt ctx ((v.Var.vid, eval ctx env e) :: env) body
  | Store (t, idx, value) ->
    let storage = get_tensor_ ctx t in
    let offsets = Array.of_list (List.map (fun i -> as_int (eval ctx env i)) idx) in
    let v = as_float (eval ctx env value) in
    if ctx.count then begin
      ctx.ctrs.stores <- ctx.ctrs.stores + 1;
      let si = space_index t.space in
      ctx.ctrs.stores_by_space.(si) <- ctx.ctrs.stores_by_space.(si) + 1
    end;
    (try Tensor.set storage offsets v
     with Invalid_argument msg -> fail "store %s: %s" t.tname msg)
  | If (c, a, b) ->
    if as_int (eval ctx env c) <> 0 then run_stmt ctx env a
    else (match b with Some b -> run_stmt ctx env b | None -> ())
  | Seq ss -> List.iter (run_stmt ctx env) ss
  | Barrier | Nop -> ()

(* Consecutive per-batch kernels execute batch-major — for each batch,
   every kernel of the run is launched — matching how an unfused
   framework interleaves operator launches with the dependence-carrying
   batch sequence. *)
let run_program ctx (p : program) =
  let rec go = function
    | [] -> ()
    | { launch = Once; body; _ } :: rest ->
      run_stmt ctx [] body;
      go rest
    | ({ launch = PerInternalBatch _; _ } :: _) as kernels ->
      let is_per_batch k =
        match k.launch with PerInternalBatch _ -> true | Once -> false
      in
      let rec take_prefix acc = function
        | k :: tl when is_per_batch k -> take_prefix (k :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let group, rest = take_prefix [] kernels in
      for b = 0 to ctx.num_internal_batches - 1 do
        List.iter
          (fun k ->
            match k.launch with
            | PerInternalBatch bvar -> run_stmt ctx [ (bvar.Var.vid, Vi b) ] k.body
            | Once -> assert false)
          group
      done;
      go rest
  in
  go p.kernels
