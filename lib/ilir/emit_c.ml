open Ir
module Nonlinear = Cortex_tensor.Nonlinear

let buf_add = Buffer.add_string

(* ---------- expression emission ---------- *)

let rec emit_expr e =
  match e with
  | Int n -> string_of_int n
  | Flt v ->
    if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.1ff" v
    else Printf.sprintf "%gf" v
  | Var v -> Var.name v
  | Binop (Add, a, b) -> Printf.sprintf "(%s + %s)" (emit_expr a) (emit_expr b)
  | Binop (Sub, a, b) -> Printf.sprintf "(%s - %s)" (emit_expr a) (emit_expr b)
  | Binop (Mul, a, b) -> Printf.sprintf "(%s * %s)" (emit_expr a) (emit_expr b)
  | Binop (Div, a, b) -> Printf.sprintf "(%s / %s)" (emit_expr a) (emit_expr b)
  | Binop (Mod, a, b) -> Printf.sprintf "(%s %% %s)" (emit_expr a) (emit_expr b)
  | Binop (Min, a, b) -> Printf.sprintf "MIN(%s, %s)" (emit_expr a) (emit_expr b)
  | Binop (Max, a, b) -> Printf.sprintf "MAX(%s, %s)" (emit_expr a) (emit_expr b)
  | Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (emit_expr a) (cmpop_name op) (emit_expr b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (emit_expr a) (emit_expr b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (emit_expr a) (emit_expr b)
  | Not a -> Printf.sprintf "!(%s)" (emit_expr a)
  | Select (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (emit_expr c) (emit_expr a) (emit_expr b)
  | Load (t, idx) -> Printf.sprintf "%s[%s]" t.tname (emit_offset t idx)
  | UfCall (u, []) -> u.Uf.uname
  | UfCall (u, args) ->
    Printf.sprintf "ds_%s(%s)" u.Uf.uname (String.concat ", " (List.map emit_expr args))
  | Math (k, a) ->
    let f =
      match k with
      | Nonlinear.Tanh -> "tanhf"
      | Nonlinear.Sigmoid -> "sigmoidf"
      | Nonlinear.Relu -> "reluf"
      | Nonlinear.Identity -> ""
    in
    if f = "" then emit_expr a else Printf.sprintf "%s(%s)" f (emit_expr a)

(* Row-major flattening: ((i0 * e1 + i1) * e2 + i2) ... — the leading
   extent never participates in the offset. *)
and emit_offset t idx =
  match (idx, t.extents) with
  | [ i ], _ -> emit_expr i
  | i0 :: rest_idx, _ :: rest_extents ->
    let rec go acc idx extents =
      match (idx, extents) with
      | [], _ -> acc
      | i :: idx', e :: extents' ->
        go (Printf.sprintf "(%s) * %s + %s" acc (emit_expr e) (emit_expr i)) idx' extents'
      | _ :: _, [] -> invalid_arg ("Emit_c: index arity mismatch for " ^ t.tname)
    in
    go (emit_expr i0) rest_idx rest_extents
  | [], _ | _ :: _, [] -> invalid_arg ("Emit_c: bad access to " ^ t.tname)

(* ---------- statement emission ---------- *)

let loop_comment = function
  | Serial -> ""
  | Parallel -> "  /* parallel: one block group per iteration */"
  | Vectorized -> "  /* thread lanes */"
  | Unrolled -> ""

let rec emit_stmt buf indent s =
  let pad = String.make indent ' ' in
  match s with
  | Nop -> ()
  | Barrier -> buf_add buf (pad ^ "grid.sync();\n")
  | Seq ss -> List.iter (emit_stmt buf indent) ss
  | Let (v, e, body) ->
    buf_add buf (Printf.sprintf "%sconst int %s = %s;\n" pad (Var.name v) (emit_expr e));
    emit_stmt buf indent body
  | Store (t, idx, value) ->
    buf_add buf
      (Printf.sprintf "%s%s[%s] = %s;\n" pad t.tname (emit_offset t idx) (emit_expr value))
  | If (c, a, b) ->
    buf_add buf (Printf.sprintf "%sif (%s) {\n" pad (emit_expr c));
    emit_stmt buf (indent + 2) a;
    (match b with
     | Some b ->
       buf_add buf (pad ^ "} else {\n");
       emit_stmt buf (indent + 2) b
     | None -> ());
    buf_add buf (pad ^ "}\n")
  | For { v; extent; kind; body; _ } ->
    if kind = Unrolled then buf_add buf (pad ^ "#pragma unroll\n");
    buf_add buf
      (Printf.sprintf "%sfor (int %s = 0; %s < %s; ++%s) {%s\n" pad (Var.name v) (Var.name v)
         (emit_expr extent) (Var.name v) (loop_comment kind));
    emit_stmt buf (indent + 2) body;
    buf_add buf (pad ^ "}\n")

(* ---------- signatures ---------- *)

let collect_ufs (p : program) =
  let module M = Map.Make (Int) in
  let add acc e = match e with UfCall (u, _) -> M.add u.Uf.uid u acc | _ -> acc in
  let m =
    List.fold_left
      (fun acc k -> fold_stmt ~expr:add ~stmt:(fun acc _ -> acc) acc k.body)
      M.empty p.kernels
  in
  M.bindings m |> List.map snd

let tensor_decl (t : tensor) =
  let qualifier =
    match t.space with
    | Param -> "const float* __restrict__"
    | Global -> "float*"
    | Shared -> "__shared__ float*"
    | Register -> "/* registers */ float*"
  in
  Printf.sprintf "  %s %s;  /* %s */" qualifier t.tname
    ("[" ^ String.concat "][" (List.map expr_to_string t.extents) ^ "]")

let kernel k =
  let buf = Buffer.create 1024 in
  let args =
    match k.launch with
    | Once -> ""
    | PerInternalBatch v -> Printf.sprintf "int %s" (Var.name v)
  in
  buf_add buf (Printf.sprintf "__global__ void %s(%s) {\n" k.kname args);
  emit_stmt buf 2 k.body;
  buf_add buf "}\n";
  Buffer.contents buf

let program (p : program) =
  let buf = Buffer.create 4096 in
  buf_add buf (Printf.sprintf "/* %s: generated from the ILIR */\n" p.pname);
  buf_add buf "#define MIN(a, b) ((a) < (b) ? (a) : (b))\n";
  buf_add buf "#define MAX(a, b) ((a) > (b) ? (a) : (b))\n";
  buf_add buf "__device__ float sigmoidf(float x) { return 0.5f * (1.0f + tanhf(0.5f * x)); }\n";
  buf_add buf "__device__ float reluf(float x) { return MAX(x, 0.0f); }\n\n";
  buf_add buf "/* device buffers */\nstruct buffers {\n";
  List.iter (fun t -> buf_add buf (tensor_decl t ^ "\n")) p.params;
  List.iter (fun t -> buf_add buf (tensor_decl t ^ "\n")) p.temporaries;
  List.iter (fun t -> buf_add buf (tensor_decl t ^ "\n")) p.outputs;
  buf_add buf "};\n\n/* linearizer lookup tables (inspector output) */\n";
  List.iter
    (fun (u : Uf.t) ->
      if u.Uf.arity = 0 then buf_add buf (Printf.sprintf "extern const int %s;\n" u.Uf.uname)
      else begin
        let args = String.concat ", " (List.init u.Uf.arity (fun _ -> "int")) in
        buf_add buf (Printf.sprintf "extern int ds_%s(%s);\n" u.Uf.uname args)
      end)
    (collect_ufs p);
  buf_add buf "\n";
  List.iter
    (fun k ->
      buf_add buf (kernel k);
      buf_add buf "\n")
    p.kernels;
  Buffer.contents buf
