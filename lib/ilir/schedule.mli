(** Loop scheduling primitives over ILIR statements.

    These are the tensor-compiler-style transformations of §5: loop
    splitting/tiling, unrolling, vectorization/parallelization marks,
    loop peeling for variable bounds (§A.5), loop reordering, lane
    binding, on-chip staging and loop fusion.  Loops are addressed by
    their loop-variable name; [canonicalize] (run by the lowerer) makes
    names unique across a whole program so a serialized plan can be
    replayed against any compiled model. *)

exception Schedule_error of string

val split : name:string -> factor:int -> Ir.stmt -> Ir.stmt
(** Split loop [name] into [name_o] / [name_i] with a bounds guard in
    the body.  Safe for variable (UF) extents. *)

val split_peeled : name:string -> factor:int -> Ir.stmt -> Ir.stmt
(** Split with loop peeling: a guard-free main loop over full chunks
    plus a remainder loop (§A.5: the bounds check runs only for the
    last few iterations).  Both loops keep the original loop kind. *)

val unroll : name:string -> Ir.stmt -> Ir.stmt
(** Fully unroll a constant-extent loop into a [Seq] of instances. *)

val set_kind : name:string -> Ir.loop_kind -> Ir.stmt -> Ir.stmt
(** Mark a loop parallel / vectorized / serial / unrolled. *)

val reorder : outer:string -> inner:string -> Ir.stmt -> Ir.stmt
(** Interchange two perfectly nested loops ([inner] directly inside
    [outer], no intervening statements).  Raises [Schedule_error] when
    they are not perfectly nested. *)

val bind : name:string -> Ir.loop_kind -> Ir.stmt -> Ir.stmt
(** Map loop [name] onto the backend's parallel lanes ([Parallel]) or
    machine width ([Vectorized]).  Raises [Schedule_error] for
    [Serial]/[Unrolled] — binding is specifically a lane mapping. *)

val tile :
  outer:string ->
  inner:string ->
  factor_outer:int ->
  factor_inner:int ->
  Ir.stmt ->
  Ir.stmt
(** 2-D tiling of a perfect nest: [outer]/[inner] become
    [outer_o > inner_o > outer_i > inner_i] so a
    [factor_outer x factor_inner] tile is innermost.  The outer tile
    loops keep the original loop kinds; the intra-tile loops are
    [Serial].  Requires constant extents that the factors divide
    exactly, so the result stays guard-free (and the cost model's
    multiplicative fast path still applies). *)

val stage : loop:string -> tensor:string -> Ir.stmt -> Ir.stmt * Ir.tensor
(** Promote every read of [tensor] under loop [loop] into a fresh
    on-chip ([Shared]) copy, populated by an explicit vectorized
    copy-in nest emitted just before the loop.  Returns the rewritten
    statement and the new staging tensor (the caller must add it to the
    program's temporaries).  Requires: [tensor] has constant extents,
    is off-chip ([Param]/[Global]), and is only read — never written —
    under the loop. *)

val fuse_loops : first:string -> second:string -> Ir.stmt -> Ir.stmt
(** Fuse two adjacent loops (consecutive members of a [Seq]) with
    structurally equal extents into one loop running both bodies.
    Conservative safety check: the two bodies must touch disjoint
    tensors (no write/read, write/write overlap) and contain no
    [Barrier], so interleaving iterations cannot reorder dependent
    effects. *)

val loop_names : Ir.stmt -> string list
(** Loop variable names in syntactic (pre-order) program order, each
    name listed once (for schedule discovery and the tuner). *)

val canonicalize : Ir.program -> Ir.program
(** Rename loop variables so every loop name is unique across the whole
    program: the first occurrence of a base name keeps it, later ones
    become [name~2], [name~3], ... in pre-order across kernels.  Run by
    the lowerer so plans address loops unambiguously. *)

(** {2 Serializable schedule plans}

    A plan is an ordered list of directives applied by
    [Lower.apply_plan]; the textual form round-trips through
    [plan_to_string]/[plan_of_string] and is what the plan cache and
    CLI print. *)

type directive =
  | Split of { loop : string; factor : int }
  | Split_peeled of { loop : string; factor : int }
  | Unroll of { loop : string }
  | Reorder of { outer : string; inner : string }
  | Tile of { outer : string; inner : string; factor_outer : int; factor_inner : int }
  | Bind of { loop : string; kind : Ir.loop_kind }
  | Stage of { loop : string; tensor : string }
  | Fuse of { first : string; second : string }

type plan = directive list

val directive_loops : directive -> string list
(** Loop names a directive addresses (used to locate its kernel). *)

val apply_directive : directive -> Ir.stmt -> Ir.stmt * Ir.tensor list
(** Apply one directive; the tensor list holds any staging tensors the
    directive introduced (to be appended to the program temporaries). *)

val directive_to_string : directive -> string

val plan_to_string : plan -> string
(** ["default"] for the empty plan, else [;]-joined directives, e.g.
    ["bind(h_j,vec);stage(b,W_f);tile(h_i,h_j,8,8)"]. *)

val plan_of_string : string -> plan
(** Inverse of [plan_to_string]; raises [Schedule_error] on malformed
    input. *)
