(** Loop scheduling primitives over ILIR statements.

    These are the tensor-compiler-style transformations of §5: loop
    splitting/tiling, unrolling, vectorization/parallelization marks,
    loop peeling for variable bounds (§A.5) and loop reordering.  Loops
    are addressed by their loop-variable name, which the lowerer keeps
    stable and unique within a kernel. *)

exception Schedule_error of string

val split : name:string -> factor:int -> Ir.stmt -> Ir.stmt
(** Split loop [name] into [name_o] / [name_i] with a bounds guard in
    the body.  Safe for variable (UF) extents. *)

val split_peeled : name:string -> factor:int -> Ir.stmt -> Ir.stmt
(** Split with loop peeling: a guard-free main loop over full chunks
    plus a remainder loop (§A.5: the bounds check runs only for the
    last few iterations). *)

val unroll : name:string -> Ir.stmt -> Ir.stmt
(** Fully unroll a constant-extent loop into a [Seq] of instances. *)

val set_kind : name:string -> Ir.loop_kind -> Ir.stmt -> Ir.stmt
(** Mark a loop parallel / vectorized / serial / unrolled. *)

val reorder : outer:string -> inner:string -> Ir.stmt -> Ir.stmt
(** Interchange two perfectly nested loops ([inner] directly inside
    [outer], no intervening statements).  Raises [Schedule_error] when
    they are not perfectly nested. *)

val loop_names : Ir.stmt -> string list
(** Loop variable names in syntactic order (for schedule discovery and
    the grid-search tuner). *)
