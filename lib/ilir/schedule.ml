open Ir
module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

exception Schedule_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Schedule_error s)) fmt

(* Every occurrence of a loop named [name], each described by its chain
   of enclosing loop names (outermost first, the loop itself last) — the
   duplicate sites an ambiguity error reports. *)
let loop_sites ~name s =
  let rec go path acc s =
    match s with
    | For { v; body; _ } ->
      let here = Var.name v in
      let acc = if here = name then List.rev (here :: path) :: acc else acc in
      go (here :: path) acc body
    | Seq ss -> List.fold_left (go path) acc ss
    | Let (_, _, body) -> go path acc body
    | If (_, a, b) -> (
      let acc = go path acc a in
      match b with Some b -> go path acc b | None -> acc)
    | Store _ | Barrier | Nop -> acc
  in
  List.rev (go [] [] s)

(* Apply [f] to the unique loop named [name]; error when absent, and
   when ambiguous list every duplicate site so plan failures against
   lowered programs are actionable. *)
let on_loop ~name f s =
  (match loop_sites ~name s with
   | [] -> fail "schedule: no loop named %s" name
   | [ _ ] -> ()
   | sites ->
     fail "schedule: loop %s is ambiguous (%d sites: %s)" name
       (List.length sites)
       (String.concat ", " (List.map (String.concat " > ") sites)));
  let rec go s =
    match s with
    | For { v; extent; kind; dim; body } when Var.name v = name ->
      f ~v ~extent ~kind ~dim ~body
    | For r -> For { r with body = go r.body }
    | Seq ss -> Seq (List.map go ss)
    | Let (v, e, body) -> Let (v, e, go body)
    | If (c, a, b) -> If (c, go a, Option.map go b)
    | Store _ | Barrier | Nop -> s
  in
  go s

let split ~name ~factor s =
  if factor < 1 then fail "split: factor %d" factor;
  on_loop ~name
    (fun ~v ~extent ~kind ~dim ~body ->
      let vo = Var.fresh (name ^ "_o") in
      let vi = Var.fresh (name ^ "_i") in
      let outer_extent =
        (* ceil(extent / factor) *)
        Binop (Div, Binop (Add, extent, Int (factor - 1)), Int factor)
      in
      let idx = Binop (Add, Binop (Mul, Var vo, Int factor), Var vi) in
      let guarded = Let (v, idx, If (Cmp (Lt, Var v, extent), body, None)) in
      For
        {
          v = vo;
          extent = outer_extent;
          kind;
          dim;
          body = For { v = vi; extent = Int factor; kind = Serial; dim; body = guarded };
        })
    s

let split_peeled ~name ~factor s =
  if factor < 1 then fail "split_peeled: factor %d" factor;
  on_loop ~name
    (fun ~v ~extent ~kind ~dim ~body ->
      let vo = Var.fresh (name ^ "_o") in
      let vi = Var.fresh (name ^ "_i") in
      let vt = Var.fresh (name ^ "_t") in
      let full_chunks = Binop (Div, extent, Int factor) in
      let main =
        For
          {
            v = vo;
            extent = full_chunks;
            kind;
            dim;
            body =
              For
                {
                  v = vi;
                  extent = Int factor;
                  kind = Serial;
                  dim;
                  body = Let (v, Binop (Add, Binop (Mul, Var vo, Int factor), Var vi), body);
                };
          }
      in
      let tail_base = Binop (Mul, full_chunks, Int factor) in
      (* The tail keeps the original loop kind: a peeled parallel loop's
         remainder is still parallel work. *)
      let tail =
        For
          {
            v = vt;
            extent = Binop (Sub, extent, tail_base);
            kind;
            dim;
            body = Let (v, Binop (Add, tail_base, Var vt), body);
          }
      in
      Seq [ main; tail ])
    s

let unroll ~name s =
  on_loop ~name
    (fun ~v ~extent ~kind:_ ~dim:_ ~body ->
      match Simplify.expr extent with
      | Int n when n >= 0 && n <= 1024 ->
        Seq (List.init n (fun i -> subst_var_stmt v (Int i) body))
      | Int n -> fail "unroll: extent %d too large" n
      | _ -> fail "unroll: loop %s has a non-constant extent" name)
    s

let set_kind ~name kind s =
  on_loop ~name (fun ~v ~extent ~kind:_ ~dim ~body -> For { v; extent; kind; dim; body }) s

let reorder ~outer ~inner s =
  on_loop ~name:outer
    (fun ~v ~extent ~kind ~dim ~body ->
      match body with
      | For ri when Var.name ri.v = inner ->
        For { ri with body = For { v; extent; kind; dim; body = ri.body } }
      | _ -> fail "reorder: %s is not perfectly nested inside %s" inner outer)
    s

let bind ~name kind s =
  match kind with
  | Serial | Unrolled ->
    fail "bind: loop %s must map onto Parallel or Vectorized lanes" name
  | Parallel | Vectorized -> set_kind ~name kind s

let const_extent what name e =
  match Simplify.expr e with
  | Int n -> n
  | _ -> fail "%s: %s has a non-constant extent" what name

let tile ~outer ~inner ~factor_outer ~factor_inner s =
  if factor_outer < 1 || factor_inner < 1 then
    fail "tile: factors %dx%d" factor_outer factor_inner;
  on_loop ~name:outer
    (fun ~v ~extent ~kind ~dim ~body ->
      match body with
      | For ri when Var.name ri.v = inner ->
        let no = const_extent "tile" outer extent in
        let ni = const_extent "tile" inner ri.extent in
        if no mod factor_outer <> 0 then
          fail "tile: factor %d does not divide %s's extent %d" factor_outer outer no;
        if ni mod factor_inner <> 0 then
          fail "tile: factor %d does not divide %s's extent %d" factor_inner inner ni;
        let voo = Var.fresh (outer ^ "_o") in
        let voi = Var.fresh (outer ^ "_i") in
        let vio = Var.fresh (inner ^ "_o") in
        let vii = Var.fresh (inner ^ "_i") in
        let rebased =
          Let
            ( v,
              Binop (Add, Binop (Mul, Var voo, Int factor_outer), Var voi),
              Let
                ( ri.v,
                  Binop (Add, Binop (Mul, Var vio, Int factor_inner), Var vii),
                  ri.body ) )
        in
        For
          {
            v = voo;
            extent = Int (no / factor_outer);
            kind;
            dim;
            body =
              For
                {
                  v = vio;
                  extent = Int (ni / factor_inner);
                  kind = ri.kind;
                  dim = ri.dim;
                  body =
                    For
                      {
                        v = voi;
                        extent = Int factor_outer;
                        kind = Serial;
                        dim;
                        body =
                          For
                            {
                              v = vii;
                              extent = Int factor_inner;
                              kind = Serial;
                              dim = ri.dim;
                              body = rebased;
                            };
                      };
                };
          }
      | _ -> fail "tile: %s is not perfectly nested inside %s" inner outer)
    s

let stage ~loop ~tensor s =
  let staged = ref None in
  let s' =
    on_loop ~name:loop
      (fun ~v ~extent ~kind ~dim ~body ->
        let target = ref None in
        ignore
          (fold_stmt
             ~expr:(fun () e ->
               match e with
               | Load (t, _) when t.tname = tensor -> (
                 match !target with
                 | Some t0 when t0.tid <> t.tid ->
                   fail "stage: two distinct tensors named %s under loop %s" tensor loop
                 | _ -> target := Some t)
               | _ -> ())
             ~stmt:(fun () st ->
               match st with
               | Store (t, _, _) when t.tname = tensor ->
                 fail "stage: %s is written inside loop %s" tensor loop
               | _ -> ())
             () body);
        let t =
          match !target with
          | None -> fail "stage: no load of %s under loop %s" tensor loop
          | Some t -> t
        in
        (match t.space with
         | Shared | Register -> fail "stage: %s is already on-chip" tensor
         | Param | Global -> ());
        let ns =
          List.map
            (fun e ->
              match Simplify.expr e with
              | Int n when n > 0 -> n
              | _ -> fail "stage: %s has a non-constant extent" tensor)
            t.extents
        in
        let st_t = Ir.tensor ~space:Shared (t.tname ^ "_stage") t.dims t.extents in
        staged := Some st_t;
        let rec rw e =
          map_expr
            (function
              | Load (t', idx) when t'.tid = t.tid -> Some (Load (st_t, List.map rw idx))
              | _ -> None)
            e
        in
        let body' = map_stmt ~expr:(fun e -> Some (rw e)) body in
        let cp_vars =
          List.mapi (fun i _ -> Var.fresh (Printf.sprintf "%s_cp%d" tensor i)) ns
        in
        let idx = List.map (fun cv -> Var cv) cp_vars in
        let copy_in =
          List.fold_right2
            (fun cv n acc ->
              For { v = cv; extent = Int n; kind = Vectorized; dim = None; body = acc })
            cp_vars ns
            (Store (st_t, idx, Load (t, idx)))
        in
        Seq [ copy_in; For { v; extent; kind; dim; body = body' } ])
      s
  in
  (s', Option.get !staged)

(* Tensor ids read / written inside a statement, plus whether it
   synchronizes — the footprint [fuse_loops] checks for independence. *)
let footprint s =
  let reads = ref IntSet.empty in
  let writes = ref IntSet.empty in
  let barriers = ref false in
  ignore
    (fold_stmt
       ~expr:(fun () e ->
         match e with Load (t, _) -> reads := IntSet.add t.tid !reads | _ -> ())
       ~stmt:(fun () st ->
         match st with
         | Store (t, _, _) -> writes := IntSet.add t.tid !writes
         | Barrier -> barriers := true
         | _ -> ())
       () s);
  (!reads, !writes, !barriers)

let fuse_loops ~first ~second s =
  let found = ref false in
  let rec go s =
    match s with
    | Seq ss ->
      let rec scan = function
        | For ra :: For rb :: rest
          when Var.name ra.v = first && Var.name rb.v = second && not !found ->
          found := true;
          if Simplify.expr ra.extent <> Simplify.expr rb.extent then
            fail "fuse_loops: %s and %s have different extents" first second;
          let reads_a, writes_a, bar_a = footprint ra.body in
          let reads_b, writes_b, bar_b = footprint rb.body in
          if bar_a || bar_b then
            fail "fuse_loops: %s / %s bodies synchronize" first second;
          let clash =
            (not
               (IntSet.is_empty (IntSet.inter writes_a (IntSet.union reads_b writes_b))))
            || not (IntSet.is_empty (IntSet.inter writes_b reads_a))
          in
          if clash then
            fail
              "fuse_loops: %s and %s touch the same tensors (fusion would reorder them)"
              first second;
          let kind = if ra.kind = rb.kind then ra.kind else Serial in
          For
            {
              ra with
              kind;
              body = seq [ ra.body; subst_var_stmt rb.v (Var ra.v) rb.body ];
            }
          :: scan rest
        | st :: rest -> go st :: scan rest
        | [] -> []
      in
      Seq (scan ss)
    | For r -> For { r with body = go r.body }
    | Let (v, e, body) -> Let (v, e, go body)
    | If (c, a, b) -> If (c, go a, Option.map go b)
    | Store _ | Barrier | Nop -> s
  in
  let s' = go s in
  if not !found then fail "fuse_loops: no adjacent loops %s / %s" first second;
  s'

let loop_names s =
  let seen = Hashtbl.create 16 in
  List.rev
    (fold_stmt
       ~expr:(fun acc _ -> acc)
       ~stmt:(fun acc s ->
         match s with
         | For r ->
           let n = Var.name r.v in
           if Hashtbl.mem seen n then acc
           else begin
             Hashtbl.add seen n ();
             n :: acc
           end
         | _ -> acc)
       [] s)

(* ---------- canonical loop names ---------- *)

let canonicalize (p : Ir.program) =
  let counts = Hashtbl.create 32 in
  let subst env e =
    map_expr
      (function
        | Var x -> (
          match IntMap.find_opt x.Var.vid env with
          | Some v' when v'.Var.vname <> x.Var.vname -> Some (Var v')
          | _ -> None)
        | _ -> None)
      e
  in
  let rec go env s =
    match s with
    | For r ->
      let base = Var.name r.v in
      let n = Option.value (Hashtbl.find_opt counts base) ~default:0 in
      Hashtbl.replace counts base (n + 1);
      let name = if n = 0 then base else Printf.sprintf "%s~%d" base (n + 1) in
      let v' = { r.v with Var.vname = name } in
      let env' = IntMap.add r.v.Var.vid v' env in
      For { v = v'; extent = subst env r.extent; kind = r.kind; dim = r.dim; body = go env' r.body }
    | Let (v, e, body) -> Let (v, subst env e, go env body)
    | Store (t, idx, value) -> Store (t, List.map (subst env) idx, subst env value)
    | If (c, a, b) -> If (subst env c, go env a, Option.map (go env) b)
    | Seq ss -> Seq (List.map (go env) ss)
    | Barrier | Nop -> s
  in
  {
    p with
    Ir.kernels =
      List.map (fun k -> { k with Ir.body = go IntMap.empty k.Ir.body }) p.Ir.kernels;
  }

(* ---------- serializable plans ---------- *)

type directive =
  | Split of { loop : string; factor : int }
  | Split_peeled of { loop : string; factor : int }
  | Unroll of { loop : string }
  | Reorder of { outer : string; inner : string }
  | Tile of { outer : string; inner : string; factor_outer : int; factor_inner : int }
  | Bind of { loop : string; kind : loop_kind }
  | Stage of { loop : string; tensor : string }
  | Fuse of { first : string; second : string }

type plan = directive list

let directive_loops = function
  | Split { loop; _ } | Split_peeled { loop; _ } | Unroll { loop } | Bind { loop; _ }
  | Stage { loop; _ } ->
    [ loop ]
  | Reorder { outer; inner } | Tile { outer; inner; _ } -> [ outer; inner ]
  | Fuse { first; second } -> [ first; second ]

let apply_directive d s =
  match d with
  | Split { loop; factor } -> (split ~name:loop ~factor s, [])
  | Split_peeled { loop; factor } -> (split_peeled ~name:loop ~factor s, [])
  | Unroll { loop } -> (unroll ~name:loop s, [])
  | Reorder { outer; inner } -> (reorder ~outer ~inner s, [])
  | Tile { outer; inner; factor_outer; factor_inner } ->
    (tile ~outer ~inner ~factor_outer ~factor_inner s, [])
  | Bind { loop; kind } -> (bind ~name:loop kind s, [])
  | Stage { loop; tensor } ->
    let s', t = stage ~loop ~tensor s in
    (s', [ t ])
  | Fuse { first; second } -> (fuse_loops ~first ~second s, [])

let bind_kind_name = function
  | Parallel -> "par"
  | Vectorized -> "vec"
  | Serial -> "serial"
  | Unrolled -> "unrolled"

let directive_to_string = function
  | Split { loop; factor } -> Printf.sprintf "split(%s,%d)" loop factor
  | Split_peeled { loop; factor } -> Printf.sprintf "peel(%s,%d)" loop factor
  | Unroll { loop } -> Printf.sprintf "unroll(%s)" loop
  | Reorder { outer; inner } -> Printf.sprintf "reorder(%s,%s)" outer inner
  | Tile { outer; inner; factor_outer; factor_inner } ->
    Printf.sprintf "tile(%s,%s,%d,%d)" outer inner factor_outer factor_inner
  | Bind { loop; kind } -> Printf.sprintf "bind(%s,%s)" loop (bind_kind_name kind)
  | Stage { loop; tensor } -> Printf.sprintf "stage(%s,%s)" loop tensor
  | Fuse { first; second } -> Printf.sprintf "fuse(%s,%s)" first second

let plan_to_string = function
  | [] -> "default"
  | ds -> String.concat ";" (List.map directive_to_string ds)

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None -> fail "plan: %s expects an integer, got %S" what s

let parse_directive str =
  let str = String.trim str in
  match String.index_opt str '(' with
  | None -> fail "plan: malformed directive %S" str
  | Some i ->
    if String.length str = 0 || str.[String.length str - 1] <> ')' then
      fail "plan: malformed directive %S" str;
    let name = String.sub str 0 i in
    let args = String.sub str (i + 1) (String.length str - i - 2) in
    let args = List.map String.trim (String.split_on_char ',' args) in
    (match (name, args) with
     | "split", [ loop; f ] -> Split { loop; factor = parse_int "split" f }
     | "peel", [ loop; f ] -> Split_peeled { loop; factor = parse_int "peel" f }
     | "unroll", [ loop ] -> Unroll { loop }
     | "reorder", [ outer; inner ] -> Reorder { outer; inner }
     | "tile", [ outer; inner; fo; fi ] ->
       Tile
         {
           outer;
           inner;
           factor_outer = parse_int "tile" fo;
           factor_inner = parse_int "tile" fi;
         }
     | "bind", [ loop; k ] ->
       let kind =
         match k with
         | "par" -> Parallel
         | "vec" -> Vectorized
         | _ -> fail "plan: bind kind must be par or vec, got %S" k
       in
       Bind { loop; kind }
     | "stage", [ loop; tensor ] -> Stage { loop; tensor }
     | "fuse", [ first; second ] -> Fuse { first; second }
     | _ -> fail "plan: unknown directive %S" str)

let plan_of_string str =
  let str = String.trim str in
  if str = "" || str = "default" then []
  else List.map parse_directive (String.split_on_char ';' str)
