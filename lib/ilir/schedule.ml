open Ir

exception Schedule_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Schedule_error s)) fmt

(* Apply [f] to the unique loop named [name]; error when absent. *)
let on_loop ~name f s =
  let found = ref false in
  let rec go s =
    match s with
    | For { v; extent; kind; dim; body } when Var.name v = name ->
      if !found then fail "schedule: loop %s is ambiguous" name;
      found := true;
      f ~v ~extent ~kind ~dim ~body
    | For r -> For { r with body = go r.body }
    | Seq ss -> Seq (List.map go ss)
    | Let (v, e, body) -> Let (v, e, go body)
    | If (c, a, b) -> If (c, go a, Option.map go b)
    | Store _ | Barrier | Nop -> s
  in
  let s' = go s in
  if not !found then fail "schedule: no loop named %s" name;
  s'

let split ~name ~factor s =
  if factor < 1 then fail "split: factor %d" factor;
  on_loop ~name
    (fun ~v ~extent ~kind ~dim ~body ->
      let vo = Var.fresh (name ^ "_o") in
      let vi = Var.fresh (name ^ "_i") in
      let outer_extent =
        (* ceil(extent / factor) *)
        Binop (Div, Binop (Add, extent, Int (factor - 1)), Int factor)
      in
      let idx = Binop (Add, Binop (Mul, Var vo, Int factor), Var vi) in
      let guarded = Let (v, idx, If (Cmp (Lt, Var v, extent), body, None)) in
      For
        {
          v = vo;
          extent = outer_extent;
          kind;
          dim;
          body = For { v = vi; extent = Int factor; kind = Serial; dim; body = guarded };
        })
    s

let split_peeled ~name ~factor s =
  if factor < 1 then fail "split_peeled: factor %d" factor;
  on_loop ~name
    (fun ~v ~extent ~kind ~dim ~body ->
      let vo = Var.fresh (name ^ "_o") in
      let vi = Var.fresh (name ^ "_i") in
      let vt = Var.fresh (name ^ "_t") in
      let full_chunks = Binop (Div, extent, Int factor) in
      let main =
        For
          {
            v = vo;
            extent = full_chunks;
            kind;
            dim;
            body =
              For
                {
                  v = vi;
                  extent = Int factor;
                  kind = Serial;
                  dim;
                  body = Let (v, Binop (Add, Binop (Mul, Var vo, Int factor), Var vi), body);
                };
          }
      in
      let tail_base = Binop (Mul, full_chunks, Int factor) in
      let tail =
        For
          {
            v = vt;
            extent = Binop (Sub, extent, tail_base);
            kind = Serial;
            dim;
            body = Let (v, Binop (Add, tail_base, Var vt), body);
          }
      in
      Seq [ main; tail ])
    s

let unroll ~name s =
  on_loop ~name
    (fun ~v ~extent ~kind:_ ~dim:_ ~body ->
      match Simplify.expr extent with
      | Int n when n >= 0 && n <= 1024 ->
        Seq (List.init n (fun i -> subst_var_stmt v (Int i) body))
      | Int n -> fail "unroll: extent %d too large" n
      | _ -> fail "unroll: loop %s has a non-constant extent" name)
    s

let set_kind ~name kind s =
  on_loop ~name (fun ~v ~extent ~kind:_ ~dim ~body -> For { v; extent; kind; dim; body }) s

let reorder ~outer ~inner s =
  on_loop ~name:outer
    (fun ~v ~extent ~kind ~dim ~body ->
      match body with
      | For ri when Var.name ri.v = inner ->
        For { ri with body = For { v; extent; kind; dim; body = ri.body } }
      | _ -> fail "reorder: %s is not perfectly nested inside %s" inner outer)
    s

let loop_names s =
  List.rev
    (fold_stmt
       ~expr:(fun acc _ -> acc)
       ~stmt:(fun acc s -> match s with For r -> Var.name r.v :: acc | _ -> acc)
       [] s)
