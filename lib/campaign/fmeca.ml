module Rng = Cortex_util.Rng
module Table = Cortex_util.Table
module Gen = Cortex_ds.Gen
module Structure = Cortex_ds.Structure
module Backend = Cortex_backend.Backend
module Engine = Cortex_serve.Engine
module Fault = Cortex_serve.Fault
module Dispatch = Cortex_serve.Dispatch
module Trace = Cortex_serve.Trace
module Obs = Cortex_obs.Obs
module Metrics = Cortex_obs.Metrics
module Scan = Cortex_obs.Scan
module CT = Cortex_obs.Chrome_trace

type mode = {
  fm_id : string;
  fm_family : string;
  fm_desc : string;
  fm_grammar : string;
  fm_rate : float;
}

type score = {
  sc_mode : mode;
  sc_severity : int;
  sc_occurrence : int;
  sc_detectability : int;
  sc_rpn : int;
  sc_completed : int;
  sc_lost : int;
  sc_shed : int;
  sc_miss_delta : float;
  sc_goodput_loss : float;
  sc_damage_us : float option;
  sc_detection : Scan.detection;
}

type result = { res_seed : int; res_rows : score list }

(* ---------- the mode grid ---------- *)

(* One grid entry: the mode's identity plus the engine knobs that
   realize it.  Every entry runs in chaos mode (a fault spec is always
   installed, [] for pure configuration pressure) on a 2-device fleet
   over the same workload, so severity deltas are apples-to-apples. *)
type setup = {
  su_mode : mode;
  su_faults : Fault.spec;
  su_queue_cap : int option;
  su_watermark : int option;
  su_cache : int option;
  su_sessions : bool;
}

let spec_of_grammar id grammar =
  match Fault.parse grammar with
  | Ok s -> s
  | Error e -> invalid_arg (Printf.sprintf "Fmeca grid %s: %s" id e)

let entry ?queue_cap ?watermark ?cache ?(sessions = false) ~family ~rate ~desc id
    grammar =
  {
    su_mode =
      { fm_id = id; fm_family = family; fm_desc = desc; fm_grammar = grammar;
        fm_rate = rate };
    su_faults = spec_of_grammar id grammar;
    su_queue_cap = queue_cap;
    su_watermark = watermark;
    su_cache = cache;
    su_sessions = sessions;
  }

(* 7 families, 22 modes.  Occurrence rates are declared per mode: a
   transient's rate is its abort probability; rarer events (a whole
   fleet dying) get smaller declared rates; configuration-pressure
   modes declare how often that pressure plausibly arises. *)
let grid =
  [
    (* device: fail-stop coverage per device, at start, and fleet-wide *)
    entry ~family:"device" ~rate:0.02 ~desc:"device 0 fail-stops mid-run"
      "failstop-d0-mid" "failstop@0:2500";
    entry ~family:"device" ~rate:0.02 ~desc:"device 1 fail-stops mid-run"
      "failstop-d1-mid" "failstop@1:2500";
    entry ~family:"device" ~rate:0.01 ~desc:"device 0 dead from the start"
      "failstop-d0-start" "failstop@0:0";
    entry ~family:"device" ~rate:0.005 ~desc:"the whole fleet dies mid-run"
      "failstop-fleet" "failstop@*:2500";
    (* transient: kernel-abort probability sweep *)
    entry ~family:"transient" ~rate:0.02 ~desc:"2% kernel aborts, retried"
      "transient-0.02" "transient@*:0.02,0,1e9";
    entry ~family:"transient" ~rate:0.05 ~desc:"5% kernel aborts, retried"
      "transient-0.05" "transient@*:0.05,0,1e9";
    entry ~family:"transient" ~rate:0.1 ~desc:"10% kernel aborts, retried"
      "transient-0.1" "transient@*:0.1,0,1e9";
    entry ~family:"transient" ~rate:0.3 ~desc:"30% kernel aborts, retried"
      "transient-0.3" "transient@*:0.3,0,1e9";
    (* straggler: magnitude sweep plus a bounded burst *)
    entry ~family:"straggler" ~rate:0.1 ~desc:"device 0 runs 2x slow"
      "straggler-2x" "straggler@0:2,0,1e9";
    entry ~family:"straggler" ~rate:0.1 ~desc:"device 0 runs 4x slow"
      "straggler-4x" "straggler@0:4,0,1e9";
    entry ~family:"straggler" ~rate:0.1 ~desc:"device 0 runs 8x slow"
      "straggler-8x" "straggler@0:8,0,1e9";
    entry ~family:"straggler" ~rate:0.05 ~desc:"fleet-wide 4x burst [1ms,3ms)"
      "straggler-burst" "straggler@*:4,1000,3000";
    (* queue: load-shedding pressure at descending caps *)
    entry ~family:"queue" ~rate:0.3 ~queue_cap:4 ~desc:"queue capped at 4"
      "queue-cap-4" "";
    entry ~family:"queue" ~rate:0.2 ~queue_cap:16 ~desc:"queue capped at 16"
      "queue-cap-16" "";
    entry ~family:"queue" ~rate:0.1 ~queue_cap:64 ~desc:"queue capped at 64"
      "queue-cap-64" "";
    (* degrade: the watermark that halves batches under depth *)
    entry ~family:"degrade" ~rate:0.3 ~watermark:8
      ~desc:"degraded batching past depth 8" "degrade-wm-8" "";
    entry ~family:"degrade" ~rate:0.15 ~watermark:32
      ~desc:"degraded batching past depth 32" "degrade-wm-32" "";
    (* cache: shape-cache epoch thrash and a disabled cache *)
    entry ~family:"cache" ~rate:0.1 ~cache:1
      ~desc:"shape cache capacity 1 (epoch thrash)" "cache-thrash" "";
    entry ~family:"cache" ~rate:0.02 ~cache:0 ~desc:"shape cache disabled"
      "cache-off" "";
    (* session: pinned growing conversations under faults *)
    entry ~family:"session" ~rate:0.02 ~sessions:true
      ~desc:"pinned device dies; sessions re-pin" "session-repin"
      "failstop@0:2500";
    entry ~family:"session" ~rate:0.1 ~sessions:true
      ~desc:"10% aborts under session traffic" "session-transient"
      "transient@*:0.1,0,1e9";
    entry ~family:"session" ~rate:0.1 ~sessions:true
      ~desc:"fleet 3x slow under session traffic" "session-straggler"
      "straggler@*:3,0,1e9";
  ]

let families () =
  List.sort_uniq compare (List.map (fun su -> su.su_mode.fm_family) grid)

let grid_filter = function
  | None -> grid
  | Some fams -> List.filter (fun su -> List.mem su.su_mode.fm_family fams) grid

let modes ?families () = List.map (fun su -> su.su_mode) (grid_filter families)

(* ---------- the shared workload ---------- *)

let model = lazy (Cortex_models.Tree_lstm.spec ~vocab:50 ~hidden:8 ())

(* The shared workload runs the fleet near saturation with a deadline
   only a little above the fault-free tail: headroom small enough that
   losing a device, a retry storm or a straggler detour turns into
   deadline misses the severity score can see, instead of vanishing
   into slack. *)
let deadline_us = 450.0

let trace_of ~seed =
  Trace.poisson ~deadline_us (Rng.create (seed + 1)) ~rate_rps:35000.0
    ~duration_ms:5.0
    ~gen:(fun rng -> Gen.sst_tree rng ~vocab:50 ())

let engine_of ~seed ~obs su =
  let policy =
    { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo }
  in
  Engine.of_spec
    ~config:
      (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
         ~devices:[ Backend.gpu; Backend.gpu ] ?queue_cap:su.su_queue_cap
         ?degrade_watermark:su.su_watermark ?cache_capacity:su.su_cache
         ~faults:su.su_faults ~seed ~obs ())
    (Lazy.force model) ~backend:Backend.gpu

let submit_workload engine ~seed ~sessions =
  let ok = function
    | Ok _ | Error (Engine.Shed _) -> ()
    | Error err ->
      invalid_arg ("Fmeca: workload rejected: " ^ Engine.error_to_string err)
  in
  List.iter
    (fun (e : Trace.event) ->
      ok
        (Engine.submit engine ~arrival_us:e.Trace.at_us
           ?deadline_us:e.Trace.deadline_us e.Trace.structure))
    (trace_of ~seed);
  if sessions then
    (* Three growing conversations ride along with the open-loop load:
       token j of conversation i arrives at 450j + 130i us, pinned to
       its session so the delta path and device re-pins are on the
       fault's critical path. *)
    List.iter
      (fun i ->
        let rng = Rng.create (seed + 100 + i) in
        let g = Gen.growth_start rng ~vocab:50 ~kind:Structure.Tree () in
        let name = Printf.sprintf "conv%d" i in
        let tokens =
          Gen.growth_structure g :: List.init 7 (fun _ -> Gen.grow_one rng g)
        in
        List.iteri
          (fun j s ->
            let at = (450.0 *. float_of_int j) +. (130.0 *. float_of_int i) in
            ok
              (Engine.submit engine ~arrival_us:at
                 ~deadline_us:(at +. deadline_us) ~session:name s))
          tokens)
      [ 0; 1; 2 ]

let run_setup ~seed su =
  let obs = Obs.create ~clock:Obs.Logical () in
  let engine = engine_of ~seed ~obs su in
  submit_workload engine ~seed ~sessions:su.su_sessions;
  let summary = Engine.drain engine in
  (summary, Obs.events obs)

let baseline_setup ~sessions =
  {
    su_mode =
      { fm_id = "baseline"; fm_family = "baseline"; fm_desc = "fault-free";
        fm_grammar = ""; fm_rate = 0.0 };
    su_faults = [];
    su_queue_cap = None;
    su_watermark = None;
    su_cache = None;
    su_sessions = sessions;
  }

(* ---------- scoring ---------- *)

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)
let scale10 x = 1 + int_of_float (Float.round (9.0 *. clamp01 x))

(* The trace signals that count as early warning: the fault spans the
   engine records when a device aborts in flight or a kernel draws a
   transient, plus the [queue_pressure] instant the engine stamps when
   the admission queue crosses 80% of its cap — the leading indicator
   for the configuration-pressure modes (shedding fires only after the
   queue is already full, so pressure leads damage).  Degraded-batching
   damage still has no signal — that mode scoring Undetected is the
   campaign's finding, not a scanner gap. *)
let warning_signals = [ "abort"; "transient"; "queue_pressure" ]

let severity ~(baseline : Engine.summary) (s : Engine.summary) =
  let subs (m : Engine.summary) =
    let slo = m.Engine.slo in
    max 1
      (slo.Engine.slo_completed + slo.Engine.slo_lost + slo.Engine.slo_shed
      + slo.Engine.slo_rejected)
  in
  let miss_frac (m : Engine.summary) =
    float_of_int m.Engine.slo.Engine.slo_deadline_misses
    /. float_of_int (max 1 m.Engine.slo.Engine.slo_completed)
  in
  let slo = s.Engine.slo in
  let n = float_of_int (subs s) in
  let lost_frac = float_of_int slo.Engine.slo_lost /. n in
  let shed_frac = float_of_int slo.Engine.slo_shed /. n in
  let miss_delta = Float.max 0.0 (miss_frac s -. miss_frac baseline) in
  let gb = baseline.Engine.slo.Engine.slo_goodput_rps in
  let goodput_loss =
    if gb > 0.0 then clamp01 (1.0 -. (slo.Engine.slo_goodput_rps /. gb))
    else 0.0
  in
  (* Weights chosen so each damage channel alone can reach mid-scale:
     total loss of half the submissions, an 0.55 miss-rate delta, or a
     total goodput collapse each score about 5; stacked channels
     saturate at 10 via the clamp.  Documented in DESIGN.md — change
     them there and here together. *)
  let sev =
    scale10
      ((0.50 *. (lost_frac +. shed_frac))
      +. (0.80 *. miss_delta)
      +. (0.30 *. goodput_loss))
  in
  (sev, miss_delta, goodput_loss)

let occurrence rate = scale10 (sqrt (clamp01 rate))

let detectability detection (at_damage : Metrics.snapshot option) =
  match detection with
  | Scan.No_damage -> 1
  | Scan.Lead us when us >= 1000.0 -> 2
  | Scan.Lead us when us >= 100.0 -> 3
  | Scan.Lead _ -> 4
  | Scan.Lagged _ -> 7
  | Scan.Undetected -> (
    (* No span fired before the damage — but if a fault counter had
       already moved by damage time, a metrics scraper could still
       have seen it coming: score 8 instead of a blind 10. *)
    match at_damage with
    | Some snap
      when List.exists
             (fun (name, v) ->
               v > 0 && String.length name > 7 && String.sub name 0 7 = "faults.")
             snap.Metrics.counters ->
      8
    | _ -> 10)

let score_of ~baseline su (summary : Engine.summary) events =
  let slo = summary.Engine.slo in
  let sev, miss_delta, goodput_loss = severity ~baseline summary in
  let detection =
    Scan.detect ~signals:warning_signals
      ~damage:slo.Engine.slo_first_damage_us events
  in
  let det = detectability detection summary.Engine.metrics_at_damage in
  let occ = occurrence su.su_mode.fm_rate in
  {
    sc_mode = su.su_mode;
    sc_severity = sev;
    sc_occurrence = occ;
    sc_detectability = det;
    sc_rpn = sev * occ * det;
    sc_completed = slo.Engine.slo_completed;
    sc_lost = slo.Engine.slo_lost;
    sc_shed = slo.Engine.slo_shed;
    sc_miss_delta = miss_delta;
    sc_goodput_loss = goodput_loss;
    sc_damage_us = slo.Engine.slo_first_damage_us;
    sc_detection = detection;
  }

let rank_order a b =
  (* Highest RPN first; ties broken by severity, then by the stable
     (family, id) key so the table is deterministic. *)
  match compare b.sc_rpn a.sc_rpn with
  | 0 -> (
    match compare b.sc_severity a.sc_severity with
    | 0 ->
      compare
        (a.sc_mode.fm_family, a.sc_mode.fm_id)
        (b.sc_mode.fm_family, b.sc_mode.fm_id)
    | c -> c)
  | c -> c

let run ?families ~seed () =
  let setups = grid_filter families in
  let base_plain = lazy (fst (run_setup ~seed (baseline_setup ~sessions:false))) in
  let base_sess = lazy (fst (run_setup ~seed (baseline_setup ~sessions:true))) in
  let rows =
    List.map
      (fun su ->
        let summary, events = run_setup ~seed su in
        let baseline =
          Lazy.force (if su.su_sessions then base_sess else base_plain)
        in
        score_of ~baseline su summary events)
      setups
  in
  { res_seed = seed; res_rows = List.sort rank_order rows }

let run_mode ~seed (m : mode) =
  match List.find_opt (fun su -> su.su_mode.fm_id = m.fm_id) grid with
  | Some su -> run_setup ~seed su
  | None -> invalid_arg ("Fmeca.run_mode: unknown mode " ^ m.fm_id)

(* ---------- rendering ---------- *)

let damage_cell = function
  | None -> "-"
  | Some us -> Printf.sprintf "%.1f" us

let table r =
  let rows =
    List.mapi
      (fun i sc ->
        [
          string_of_int (i + 1);
          sc.sc_mode.fm_id;
          sc.sc_mode.fm_family;
          string_of_int sc.sc_severity;
          string_of_int sc.sc_occurrence;
          string_of_int sc.sc_detectability;
          string_of_int sc.sc_rpn;
          string_of_int sc.sc_lost;
          string_of_int sc.sc_shed;
          Printf.sprintf "%.4f" sc.sc_miss_delta;
          Printf.sprintf "%.4f" sc.sc_goodput_loss;
          Scan.detection_to_string sc.sc_detection;
          damage_cell sc.sc_damage_us;
        ])
      r.res_rows
  in
  Table.render
    ~title:
      (Printf.sprintf "FMECA criticality ranking (seed %d, %d modes)" r.res_seed
         (List.length r.res_rows))
    ~align:[ Table.Right; Table.Left; Table.Left ]
    ~header:
      [ "rank"; "mode"; "family"; "S"; "O"; "D"; "RPN"; "lost"; "shed";
        "miss_delta"; "goodput_loss"; "detection"; "damage_us" ]
    rows

let json_lines r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i sc ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"rank\": %d, \"mode\": %S, \"family\": %S, \"sev\": %d, \
            \"occ\": %d, \"det\": %d, \"rpn\": %d, \"completed\": %d, \
            \"lost\": %d, \"shed\": %d, \"miss_delta\": %.4f, \
            \"goodput_loss\": %.4f, \"damage_us\": %s, \"detect\": %S, \
            \"rate\": %g, \"grammar\": %S}"
           (i + 1) sc.sc_mode.fm_id sc.sc_mode.fm_family sc.sc_severity
           sc.sc_occurrence sc.sc_detectability sc.sc_rpn sc.sc_completed
           sc.sc_lost sc.sc_shed sc.sc_miss_delta sc.sc_goodput_loss
           (damage_cell sc.sc_damage_us
           |> fun s -> if s = "-" then "null" else s)
           (Scan.detection_to_string sc.sc_detection)
           sc.sc_mode.fm_rate sc.sc_mode.fm_grammar))
    r.res_rows;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* ---------- ranking persistence (the --baseline-diff side) ---------- *)

(* A minimal field scanner for the fixed format [json_lines] writes:
   good enough to read back our own artifact, refusing anything that
   does not look like it. *)
let find_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat and llen = String.length line in
  let rec search i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  search 0

let field_int line key =
  match find_field line key with
  | None -> None
  | Some start ->
    let rec stop i =
      if i < String.length line && (line.[i] = '-' || (line.[i] >= '0' && line.[i] <= '9'))
      then stop (i + 1)
      else i
    in
    int_of_string_opt (String.sub line start (stop start - start))

let field_str line key =
  match find_field line key with
  | None -> None
  | Some start ->
    if start >= String.length line || line.[start] <> '"' then None
    else
      let rec stop i =
        if i >= String.length line then None
        else if line.[i] = '"' && line.[i - 1] <> '\\' then Some i
        else stop (i + 1)
      in
      Option.map
        (fun e -> Scanf.unescaped (String.sub line (start + 1) (e - start - 1)))
        (stop (start + 1))

let load_ranking text =
  let lines = String.split_on_char '\n' text in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let t = String.trim line in
      if t = "" || t = "[" || t = "]" then go acc (n + 1) rest
      else (
        match (field_str t "mode", field_int t "rank") with
        | Some id, Some rank -> go ((id, rank) :: acc) (n + 1) rest
        | _ ->
          Error
            (Printf.sprintf "line %d: not a criticality row: %s" n
               (if String.length t > 60 then String.sub t 0 60 ^ "..." else t)))
  in
  match go [] 1 lines with
  | Ok [] -> Error "no criticality rows found"
  | r -> r

let diff_ranking ~baseline r =
  let changes = ref [] in
  List.iteri
    (fun i sc ->
      let rank = i + 1 in
      let id = sc.sc_mode.fm_id in
      match List.assoc_opt id baseline with
      | None -> changes := Printf.sprintf "mode %s: new at rank %d" id rank :: !changes
      | Some old when old <> rank ->
        changes := Printf.sprintf "mode %s: rank %d -> %d" id old rank :: !changes
      | Some _ -> ())
    r.res_rows;
  List.iter
    (fun (id, old) ->
      if not (List.exists (fun sc -> sc.sc_mode.fm_id = id) r.res_rows) then
        changes := Printf.sprintf "mode %s: dropped (was rank %d)" id old :: !changes)
    baseline;
  List.rev !changes
