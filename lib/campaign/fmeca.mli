(** The FMECA reliability campaign: enumerate, score and rank the
    serving stack's failure modes.

    Three PRs built the machinery — deterministic fault {e injection}
    (the [Fault] grammar), the {e instruments} ([Obs] spans and
    [Metrics] counters) and the SLO accounting in [Engine.summary] —
    but nothing says {e which} failure modes actually hurt.  This
    module is the classic FMECA answer: a fixed grid of failure modes
    spanning every component family of the stack (device fail-stops,
    transient kernel-abort rates, straggler magnitudes, queue-cap
    pressure, degrade watermarks, shape-cache pressure, session
    re-pins), one seeded chaos-mode {!Cortex_serve.Engine} run per
    mode, and a ranked criticality table scored by the textbook
    product:

    - {b severity} (1..10) — SLO damage against a fault-free baseline
      run of the same workload: lost and shed fractions, the
      deadline-miss delta and the goodput loss, combined as
      [0.50*(lost+shed) + 0.80*miss_delta + 0.30*goodput_loss]
      (clamped to [0, 1], then scaled to 1..10);
    - {b occurrence} (1..10) — the mode's declared injection rate,
      compressed as [1 + round(9 * sqrt rate)] so rare-but-real events
      are not rounded to oblivion;
    - {b detectability} (1..10, {e higher = worse}) — scanned from the
      run's Chrome trace ({!Cortex_obs.Scan}): how many simulated
      microseconds of warning the fault spans gave before the first
      SLO-visible damage ([slo_first_damage_us]), falling back to the
      damage-time metrics snapshot when no span ever fired.

    [RPN = S * O * D], ranked descending with a deterministic
    tie-break.  Every run is in chaos mode (a fault spec installed,
    [Obs.Logical] clock), so the whole campaign is a pure function of
    its seed: two same-seed runs render byte-identical tables — the
    property CI diffs, and the reason a rank change is a reviewable
    regression rather than noise. *)

module Engine = Cortex_serve.Engine
module Scan = Cortex_obs.Scan

type mode = {
  fm_id : string;  (** stable identifier, e.g. ["transient-0.1"] *)
  fm_family : string;
      (** component family: ["device"], ["transient"], ["straggler"],
          ["queue"], ["degrade"], ["cache"], ["session"] *)
  fm_desc : string;  (** one-line human description *)
  fm_grammar : string;
      (** the {!Cortex_serve.Fault} grammar injected ([""] for pure
          configuration-pressure modes, which still run in chaos mode
          under an empty spec) *)
  fm_rate : float;  (** declared occurrence rate in [0, 1] *)
}

type score = {
  sc_mode : mode;
  sc_severity : int;  (** 1..10 *)
  sc_occurrence : int;  (** 1..10 *)
  sc_detectability : int;  (** 1..10, higher = harder to see coming *)
  sc_rpn : int;  (** severity * occurrence * detectability *)
  sc_completed : int;
  sc_lost : int;
  sc_shed : int;
  sc_miss_delta : float;
      (** deadline-miss fraction minus the baseline's (clamped at 0) *)
  sc_goodput_loss : float;
      (** [1 - goodput/goodput_baseline] (clamped to [0, 1]) *)
  sc_damage_us : float option;
      (** [slo_first_damage_us] of the mode's run *)
  sc_detection : Scan.detection;
      (** how the fault spans relate to that first damage *)
}

type result = {
  res_seed : int;
  res_rows : score list;  (** ranked: highest RPN first *)
}

val families : unit -> string list
(** The component families the grid covers, sorted. *)

val modes : ?families:string list -> unit -> mode list
(** The mode grid, optionally filtered to the named families (unknown
    names simply match nothing).  Grid order, not rank order. *)

val run : ?families:string list -> seed:int -> unit -> result
(** Run the campaign: one chaos-mode engine drain per mode over a
    shared seeded workload (Poisson SST arrivals with deadlines;
    session modes add growing pinned conversations), plus one
    fault-free baseline per workload variant for the severity deltas.
    Deterministic in [seed]. *)

val run_mode : seed:int -> mode -> Engine.summary * Cortex_obs.Chrome_trace.event list
(** Re-run one grid mode (same engine, workload and seed as {!run})
    and return its summary plus the full Chrome trace event stream —
    what [cortex fmeca --trace-out] writes for the top-k modes.
    Raises [Invalid_argument] for a mode not on the grid. *)

val table : result -> string
(** The ranked criticality table as aligned text — byte-identical
    across same-seed runs. *)

val json_lines : result -> string
(** The table as a JSON array, one object per line (the
    [BENCH_fmeca.json] artifact): rank, mode, family, S/O/D, RPN, the
    raw severity inputs, the detection classification and the
    grammar. *)

val load_ranking : string -> ((string * int) list, string) Stdlib.result
(** Parse a {!json_lines} document back to [(mode id, rank)] pairs —
    what [--baseline-diff] reads from the committed artifact. *)

val diff_ranking : baseline:(string * int) list -> result -> string list
(** Rank changes of [result] against a previously saved ranking: one
    human-readable line per moved, new or dropped mode; empty when the
    ranking is unchanged. *)
