open Cortex_ilir
module Lower = Cortex_lower.Lower
module Checkpoint = Cortex_runtime.Checkpoint

(* Ahead-of-time compiled artifacts: everything `cortex serve` needs to
   answer requests without invoking the compiler — the lowered program
   (canonical loop names included), tuned schedule plans, the backend
   the artifact was priced for, and optionally the parameter table.

   Wire format, all integers little-endian i64:

     magic "CORTEXB1" | version | digest (16 raw MD5 bytes)
     | nsections | { name_len | name | payload_len } * nsections
     | payloads, concatenated in table order

   The digest is MD5 over the concatenated payload bytes; it is
   verified BEFORE any payload is parsed, so a bit-flipped file dies
   with {!Digest_mismatch} rather than reaching [Marshal.from_string].
   Every length read from the header is bounded against the bytes
   actually remaining (the checkpoint reader's adversarial posture),
   so truncation dies with {!Truncated} before any allocation.

   Sections (current version 1):
     "manifest"  key=value lines, human-readable (model, backend,
                 options, planned/worst on-chip footprint, counts)
     "compiled"  [Lower.compiled], marshalled — pure data, no closures
     "plans"     one tuned plan per line:
                 backend,bucket,default_us,tuned_us,plan
     "weights"   a [Checkpoint] table (may be empty: zero tensors) *)

let magic = "CORTEXB1"
let version = 1

type plan_entry = {
  bp_backend : string;  (* Backend.short *)
  bp_bucket : int;  (* Dispatch.size_bucket of the tuned shape class *)
  bp_plan : Schedule.plan;
  bp_default_us : float;
  bp_tuned_us : float;
}

type t = {
  b_version : int;
  b_model : string;
  b_size : string;
  b_backend : string;
  b_options : Lower.options;
  b_config : string;  (* opaque Engine.Config text ("" when absent) *)
  b_compiled : Lower.compiled;
  b_plans : plan_entry list;
  b_weights : Checkpoint.t;
  b_planned_onchip_bytes : int;
  b_worst_onchip_bytes : int;
  b_digest : string;  (* MD5 over the section payloads, hex *)
  b_manifest : (string * string) list;
}

type error =
  | Bad_magic of string
  | Unsupported_version of int
  | Truncated of { what : string; need : int; left : int }
  | Digest_mismatch of { expected : string; got : string }
  | Missing_section of string
  | Corrupt_section of { section : string; reason : string }
  | Backend_mismatch of { bundle : string; requested : string }
  | Model_mismatch of { bundle : string; requested : string }

exception Error of error

let error_to_string = function
  | Bad_magic m -> Printf.sprintf "bad magic %S (not a cortex bundle)" m
  | Unsupported_version v -> Printf.sprintf "unsupported bundle version %d" v
  | Truncated { what; need; left } ->
    Printf.sprintf "truncated bundle: %s needs %d bytes, %d left" what need left
  | Digest_mismatch { expected; got } ->
    Printf.sprintf "digest mismatch: manifest says %s, payload hashes to %s" expected
      got
  | Missing_section s -> Printf.sprintf "missing section %S" s
  | Corrupt_section { section; reason } ->
    Printf.sprintf "corrupt section %S: %s" section reason
  | Backend_mismatch { bundle; requested } ->
    Printf.sprintf "bundle was built for backend %s, serving requested %s" bundle
      requested
  | Model_mismatch { bundle; requested } ->
    Printf.sprintf "bundle holds model %s, serving requested %s" bundle requested

let fail e = raise (Error e)

(* ---------- encoding ---------- *)

let buf_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let plan_line e =
  (* The plan string goes last: directives contain commas, the first
     four fields never do. *)
  Printf.sprintf "%s,%d,%.3f,%.3f,%s" e.bp_backend e.bp_bucket e.bp_default_us
    e.bp_tuned_us
    (Schedule.plan_to_string e.bp_plan)

let plans_text plans = String.concat "\n" (List.map plan_line plans)

let manifest_text manifest =
  String.concat "\n" (List.map (fun (k, v) -> k ^ "=" ^ v) manifest)

let sections_of_bundle b =
  [
    ("manifest", manifest_text b.b_manifest);
    ("compiled", Marshal.to_string b.b_compiled []);
    ("plans", plans_text b.b_plans);
    ("weights", Checkpoint.to_string b.b_weights);
  ]

let digest_of_sections sections =
  Digest.to_hex (Digest.string (String.concat "" (List.map snd sections)))

let encode_sections sections =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  buf_i64 buf version;
  Buffer.add_string buf (Digest.string (String.concat "" (List.map snd sections)));
  buf_i64 buf (List.length sections);
  List.iter
    (fun (name, payload) ->
      buf_i64 buf (String.length name);
      Buffer.add_string buf name;
      buf_i64 buf (String.length payload))
    sections;
  List.iter (fun (_, payload) -> Buffer.add_string buf payload) sections;
  Buffer.contents buf

let encode b = encode_sections (sections_of_bundle b)

(* ---------- creation ---------- *)

let create ?(config = "") ?(plans = []) ?(weights = []) ~model ~size ~backend
    (compiled : Lower.compiled) =
  (* The concrete planned-vs-worst numbers want resolved UF extents,
     but a bundle is built before any input exists — record the
     static-extent plan here; `cortex build` adds the resolved numbers
     from its sample linearization to the manifest via
     [with_manifest]. *)
  let mp = Mem_plan.plan ~spaces:[ Ir.Shared; Ir.Register ] compiled.Lower.prog in
  let planned = mp.Mem_plan.arena_bytes in
  let worst = mp.Mem_plan.worst_bytes in
  let manifest =
    [
      ("format", magic);
      ("version", string_of_int version);
      ("model", model);
      ("size", size);
      ("backend", backend);
      ("options", Lower.options_to_string compiled.Lower.options);
      (* Tab-joined onto one manifest line; Engine.Config.of_string
         splits on tabs as well as newlines.  (';' and '|' both occur
         in legitimate values — fault specs and publication lists.) *)
      ("config", String.concat "\t" (String.split_on_char '\n' (String.trim config)));
      ("plans", string_of_int (List.length plans));
      ("weights", string_of_int (List.length weights));
      ("planned_onchip_bytes", string_of_int planned);
      ("worst_onchip_bytes", string_of_int worst);
    ]
  in
  let b =
    {
      b_version = version;
      b_model = model;
      b_size = size;
      b_backend = backend;
      b_options = compiled.Lower.options;
      b_config = config;
      b_compiled = compiled;
      b_plans = plans;
      b_weights = weights;
      b_planned_onchip_bytes = planned;
      b_worst_onchip_bytes = worst;
      b_digest = "";
      b_manifest = manifest;
    }
  in
  { b with b_digest = digest_of_sections (sections_of_bundle b) }

let with_manifest b extra =
  let b = { b with b_manifest = b.b_manifest @ extra } in
  { b with b_digest = digest_of_sections (sections_of_bundle b) }

(* ---------- decoding ---------- *)

type reader = { data : string; mutable pos : int }

let left r = String.length r.data - r.pos

let take r ~what n =
  if n < 0 || n > left r then fail (Truncated { what; need = n; left = left r });
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let take_i64 r ~what =
  Int64.to_int (Bytes.get_int64_le (Bytes.of_string (take r ~what 8)) 0)

let read_header r =
  let m = take r ~what:"magic" (String.length magic) in
  if m <> magic then fail (Bad_magic m);
  let v = take_i64 r ~what:"version" in
  if v <> version then fail (Unsupported_version v);
  let digest = take r ~what:"digest" 16 in
  let nsections = take_i64 r ~what:"section count" in
  if nsections < 0 || nsections > 64 then
    fail (Corrupt_section { section = "(table)"; reason = "implausible section count" });
  let table =
    List.init nsections (fun _ ->
        let name_len = take_i64 r ~what:"section name length" in
        if name_len < 0 || name_len > 256 then
          fail
            (Corrupt_section { section = "(table)"; reason = "implausible name length" });
        let name = take r ~what:"section name" name_len in
        let payload_len = take_i64 r ~what:"payload length" in
        if payload_len < 0 then
          fail (Corrupt_section { section = name; reason = "negative payload length" });
        (name, payload_len))
  in
  (digest, table)

let decode_sections data =
  let r = { data; pos = 0 } in
  let digest, table = read_header r in
  let payload_start = r.pos in
  let sections =
    List.map (fun (name, len) -> (name, take r ~what:("section " ^ name) len)) table
  in
  if left r <> 0 then
    fail
      (Corrupt_section
         { section = "(file)"; reason = Printf.sprintf "%d trailing bytes" (left r) });
  let got =
    Digest.string (String.sub data payload_start (String.length data - payload_start))
  in
  if got <> digest then
    fail
      (Digest_mismatch
         { expected = Digest.to_hex digest; got = Digest.to_hex got });
  (Digest.to_hex digest, sections)

let section sections name =
  match List.assoc_opt name sections with
  | Some payload -> payload
  | None -> fail (Missing_section name)

let parse_manifest text =
  List.filter_map
    (fun line ->
      match String.index_opt line '=' with
      | None -> None
      | Some i ->
        Some
          (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)))
    (String.split_on_char '\n' text)

let manifest_get manifest key =
  match List.assoc_opt key manifest with
  | Some v -> v
  | None ->
    fail (Corrupt_section { section = "manifest"; reason = "missing key " ^ key })

let parse_plan_line line =
  match String.split_on_char ',' line with
  | backend :: bucket :: default_us :: tuned_us :: rest when rest <> [] -> (
    let plan_str = String.concat "," rest in
    try
      {
        bp_backend = backend;
        bp_bucket = int_of_string bucket;
        bp_plan = Schedule.plan_of_string plan_str;
        bp_default_us = float_of_string default_us;
        bp_tuned_us = float_of_string tuned_us;
      }
    with _ ->
      fail (Corrupt_section { section = "plans"; reason = "malformed entry: " ^ line }))
  | _ -> fail (Corrupt_section { section = "plans"; reason = "malformed entry: " ^ line })

let parse_plans text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map parse_plan_line

let decode data =
  let digest, sections = decode_sections data in
  let manifest = parse_manifest (section sections "manifest") in
  let compiled_bytes = section sections "compiled" in
  let compiled : Lower.compiled =
    try Marshal.from_string compiled_bytes 0
    with Failure reason | Invalid_argument reason ->
      fail (Corrupt_section { section = "compiled"; reason })
  in
  (* The deserialized program carries the ids it was compiled with;
     reserve them so later fresh ids (plan staging tensors, split-loop
     vars) cannot alias them. *)
  Ir.claim_ids compiled.Lower.prog;
  let plans = parse_plans (section sections "plans") in
  let weights =
    try Checkpoint.of_string (section sections "weights")
    with Checkpoint.Corrupt reason ->
      fail (Corrupt_section { section = "weights"; reason })
  in
  let int_key key =
    try int_of_string (manifest_get manifest key)
    with Failure _ ->
      fail (Corrupt_section { section = "manifest"; reason = "bad integer for " ^ key })
  in
  {
    b_version = version;
    b_model = manifest_get manifest "model";
    b_size = manifest_get manifest "size";
    b_backend = manifest_get manifest "backend";
    b_options = compiled.Lower.options;
    b_config = manifest_get manifest "config";
    b_compiled = compiled;
    b_plans = plans;
    b_weights = weights;
    b_planned_onchip_bytes = int_key "planned_onchip_bytes";
    b_worst_onchip_bytes = int_key "worst_onchip_bytes";
    b_digest = digest;
    b_manifest = manifest;
  }

(* ---------- files ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save path b =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode b))

let load path = decode (read_file path)

(* ---------- inspection ---------- *)

type info = {
  i_digest : string;
  i_manifest : (string * string) list;
  i_sections : (string * int) list;
  i_weights : Checkpoint.manifest;
  i_plans : (string * int * string) list;
}

(* Verifies header bounds and the digest, parses the manifest, plan
   strings and the weights *shapes* — never materializes a tensor or
   unmarshals the compiled program, so inspection is cheap and safe on
   files that would fail to load. *)
let inspect path =
  let digest, sections = decode_sections (read_file path) in
  let manifest = parse_manifest (section sections "manifest") in
  let plans = parse_plans (section sections "plans") in
  let weights =
    try Checkpoint.manifest_of_string (section sections "weights")
    with Checkpoint.Corrupt reason ->
      fail (Corrupt_section { section = "weights"; reason })
  in
  {
    i_digest = digest;
    i_manifest = manifest;
    i_sections = List.map (fun (name, payload) -> (name, String.length payload)) sections;
    i_weights = weights;
    i_plans =
      List.map
        (fun e -> (e.bp_backend, e.bp_bucket, Schedule.plan_to_string e.bp_plan))
        plans;
  }

let resolver b = Checkpoint.resolver b.b_weights

let info_to_string i =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digest  %s\n" i.i_digest);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-22s %s\n" k v))
    i.i_manifest;
  Buffer.add_string buf "sections:\n";
  List.iter
    (fun (name, bytes) ->
      Buffer.add_string buf (Printf.sprintf "  %-10s %d bytes\n" name bytes))
    i.i_sections;
  if i.i_plans <> [] then begin
    Buffer.add_string buf "plans:\n";
    List.iter
      (fun (backend, bucket, plan) ->
        Buffer.add_string buf (Printf.sprintf "  %-6s bucket %-4d %s\n" backend bucket plan))
      i.i_plans
  end;
  if i.i_weights <> [] then begin
    Buffer.add_string buf "weights:\n";
    List.iter
      (fun (name, shape) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-22s [%s]\n" name
             (String.concat ", " (Array.to_list (Array.map string_of_int shape)))))
      i.i_weights
  end;
  Buffer.contents buf
