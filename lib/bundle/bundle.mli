(** Ahead-of-time compiled artifacts ("bundles"): everything
    [cortex serve] needs to answer requests with zero compiler
    invocations — the lowered program with its canonical loop names,
    tuned schedule plans, the backend identity the artifact was priced
    for, the lowering options, and optionally the parameter table
    (through the hardened {!Cortex_runtime.Checkpoint} codec).

    Wire format (all integers little-endian i64): magic ["CORTEXB1"],
    version, a 16-byte MD5 digest over the concatenated section
    payloads, a section table (name and payload length, each bounded
    against the bytes remaining), then the payloads.  The digest is
    verified {e before} any payload is parsed — a bit-flipped file
    fails with {!Digest_mismatch} rather than reaching [Marshal];
    truncation fails with {!Truncated} before any allocation.  Serving
    refuses artifacts whose recorded backend or model disagree with the
    request ({!Backend_mismatch}, {!Model_mismatch} — raised by
    [Engine.of_bundle]). *)

module Lower = Cortex_lower.Lower
module Checkpoint = Cortex_runtime.Checkpoint

val magic : string
val version : int

type plan_entry = {
  bp_backend : string;  (** [Backend.short] of the backend tuned for *)
  bp_bucket : int;  (** [Dispatch.size_bucket] of the tuned shape class *)
  bp_plan : Cortex_ilir.Schedule.plan;
  bp_default_us : float;  (** simulated latency of the empty plan *)
  bp_tuned_us : float;  (** simulated latency of the tuned plan *)
}

type t = {
  b_version : int;
  b_model : string;
  b_size : string;
  b_backend : string;
  b_options : Lower.options;
  b_config : string;  (** opaque [Engine.Config] text ([""] when absent) *)
  b_compiled : Lower.compiled;
  b_plans : plan_entry list;
  b_weights : Checkpoint.t;
  b_planned_onchip_bytes : int;
      (** liveness-planned Shared/Register arena (static extents) *)
  b_worst_onchip_bytes : int;  (** sum-of-buffers worst case, same set *)
  b_digest : string;  (** MD5 over the section payloads, hex *)
  b_manifest : (string * string) list;
}

type error =
  | Bad_magic of string
  | Unsupported_version of int
  | Truncated of { what : string; need : int; left : int }
  | Digest_mismatch of { expected : string; got : string }
  | Missing_section of string
  | Corrupt_section of { section : string; reason : string }
  | Backend_mismatch of { bundle : string; requested : string }
  | Model_mismatch of { bundle : string; requested : string }

exception Error of error

val error_to_string : error -> string

val create :
  ?config:string ->
  ?plans:plan_entry list ->
  ?weights:Checkpoint.t ->
  model:string ->
  size:string ->
  backend:string ->
  Lower.compiled ->
  t
(** Build a bundle in memory; the manifest (including the static
    planned/worst on-chip footprint from {!Cortex_ilir.Mem_plan}) and
    the content digest are computed here, deterministically. *)

val with_manifest : t -> (string * string) list -> t
(** The bundle with extra manifest entries appended (e.g. the
    UF-resolved planned footprint [cortex build] measures on its sample
    linearization) and the digest recomputed. *)

val encode : t -> string
(** The serialized bytes {!save} writes. *)

val decode : string -> t
(** Parse and validate serialized bytes; raises {!Error}. *)

val save : string -> t -> unit
val load : string -> t
(** Raises {!Error} ({!Bad_magic}, {!Unsupported_version},
    {!Truncated}, {!Digest_mismatch}, {!Missing_section},
    {!Corrupt_section}) and [Sys_error] on unreadable files. *)

val resolver : t -> string -> Cortex_tensor.Tensor.t
(** Parameter lookup over the bundled weights, in the shape
    [Engine.create]'s [params] expects. *)

type info = {
  i_digest : string;
  i_manifest : (string * string) list;
  i_sections : (string * int) list;  (** name, payload bytes *)
  i_weights : Checkpoint.manifest;  (** shapes only, no payload copy *)
  i_plans : (string * int * string) list;
      (** backend, bucket, plan string *)
}

val inspect : string -> info
(** Validate header bounds and the digest and summarize the artifact —
    without unmarshalling the compiled program or materializing any
    tensor, so inspection is cheap and safe even on files {!load} would
    reject later. *)

val info_to_string : info -> string
