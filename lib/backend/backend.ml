module Cost = Cortex_ilir.Cost
module Interp = Cortex_ilir.Interp
module Ir = Cortex_ilir.Ir

type t = {
  name : string;
  short : string;
  peak_flops : float;
  roofline_efficiency : float;
  gemm_efficiency : float;
  mem_bw : float;
  onchip_bw : float;
  width : float;
  launch_overhead_us : float;
  kernel_device_latency_us : float;
  sync_call_overhead_us : float;
  dispatch_overhead_us : float;
  barrier_lock_us : float;
  barrier_lock_free_us : float;
  segment_latency_us : float;
  occupancy_exponent : float;
  vendor_occ_exponent : float;
  min_lanes : float;
  vendor_efficiency : float;
  framework_overhead_scale : float;
  persist_budget_bytes : float;
  persist_tensor_cap_bytes : float;
  onchip_capacity_bytes : float;
  serial_issue_factor : float;
}

let gpu =
  {
    name = "Nvidia Tesla V100 (n1-standard-4)";
    short = "GPU";
    peak_flops = 1.4e7;
    (* Fused irregular cell kernels reach ~0.6-1.2 TFLOP/s on V100
       (derived from Tables 4/5); dense setup GEMMs run near cuBLAS
       speed. *)
    roofline_efficiency = 0.085;
    gemm_efficiency = 0.55;
    mem_bw = 8.1e5;
    onchip_bw = 9.0e6;
    width = 5120.0;
    launch_overhead_us = 3.3;
    kernel_device_latency_us = 3.0;
    sync_call_overhead_us = 26.0;
    dispatch_overhead_us = 2.5;
    (* Lock-based global barrier (Xiao & Feng 2010) across 80 SMs. *)
    barrier_lock_us = 4.5;
    barrier_lock_free_us = 1.2;
    segment_latency_us = 1.5;
    occupancy_exponent = 1.4;
    vendor_occ_exponent = 1.4;
    (* Fused cell kernels parallelize gate rows and the reduction, so a
       persistent kernel never runs below ~1k lanes. *)
    min_lanes = 1024.0;
    vendor_efficiency = 0.085;
    framework_overhead_scale = 1.0;
    persist_budget_bytes = 16.0e6;
    persist_tensor_cap_bytes = 4.0e6;
    (* 80 SMs x 96KB shared + register files x persistent occupancy. *)
    onchip_capacity_bytes = 2.4e7;
    (* A CUDA core retires a dependent-FMA chain at well under peak
       issue rate: 4-cycle latency with no independent work to fill the
       pipeline.  Vendor GEMMs avoid this by blocking; generated serial
       reductions do not until the schedule binds them onto lanes. *)
    serial_issue_factor = 0.7;
  }

let intel =
  {
    name = "8-core/16-thread Intel CascadeLake (n2-standard-16)";
    short = "Intel";
    peak_flops = 2.4e6;
    roofline_efficiency = 0.5;
    gemm_efficiency = 0.6;
    mem_bw = 7.0e4;
    onchip_bw = 2.0e6;
    (* Threads need chunky per-level work before they help; narrow
       dynamic batches underutilize the 16 threads. *)
    width = 8192.0;
    launch_overhead_us = 0.25;
    kernel_device_latency_us = 0.5;
    sync_call_overhead_us = 0.3;
    dispatch_overhead_us = 1.5;
    barrier_lock_us = 0.4;
    barrier_lock_free_us = 0.2;
    segment_latency_us = 0.3;
    occupancy_exponent = 1.0;
    min_lanes = 0.0;
    (* The frameworks' per-level threaded vendor calls degrade faster
       than fused static loops when levels are narrow. *)
    vendor_occ_exponent = 1.25;
    vendor_efficiency = 0.5;
    framework_overhead_scale = 1.0;
    persist_budget_bytes = 1.2e7;
    persist_tensor_cap_bytes = 2.0e6;
    (* L2 slices that behave like scratch under blocking. *)
    onchip_capacity_bytes = 1.6e7;
    (* OoO cores hide most of the FMA latency of a serial reduction. *)
    serial_issue_factor = 0.85;
  }

let arm =
  {
    name = "8-core ARM Graviton2 (c6g.2xlarge)";
    short = "ARM";
    peak_flops = 3.2e5;
    (* Generated NEON code trails OpenBLAS per FLOP on Graviton2 —
       the paper's ARM hl results show DyNet closing the gap and even
       winning on MV-RNN. *)
    roofline_efficiency = 0.45;
    gemm_efficiency = 0.6;
    mem_bw = 4.0e4;
    onchip_bw = 6.0e5;
    width = 2048.0;
    launch_overhead_us = 0.35;
    (* Tiny per-level OpenBLAS/Eigen calls cost ~10us each on Graviton2
       class cores. *)
    kernel_device_latency_us = 8.0;
    sync_call_overhead_us = 0.4;
    dispatch_overhead_us = 2.0;
    barrier_lock_us = 0.35;
    barrier_lock_free_us = 0.18;
    segment_latency_us = 0.3;
    occupancy_exponent = 1.0;
    min_lanes = 0.0;
    vendor_occ_exponent = 1.45;
    vendor_efficiency = 0.65;
    framework_overhead_scale = 2.0;
    persist_budget_bytes = 4.0e6;
    persist_tensor_cap_bytes = 1.0e6;
    (* 8 x 1MB L2 on Graviton2. *)
    onchip_capacity_bytes = 8.0e6;
    (* Neoverse N1 reorders less aggressively than CascadeLake. *)
    serial_issue_factor = 0.8;
  }

let all = [ gpu; intel; arm ]

type latency = {
  total_us : float;
  compute_us : float;
  barrier_us : float;
  launch_us : float;
  param_traffic_bytes : float;
  global_traffic_bytes : float;
  onchip_traffic_bytes : float;
  kernel_launches : int;
  barriers : int;
}

let persistable be size = size <= be.persist_tensor_cap_bytes

let persisted_bytes be (cost : Cost.t) =
  let total =
    List.fold_left
      (fun acc (_, size) -> if persistable be size then acc +. size else acc)
      0.0 cost.Cost.param_sizes
  in
  if total > 0.0 && total <= be.persist_budget_bytes then total else 0.0

(* Setup/precompute/hoist kernels are dense batched GEMMs over all
   nodes at once; everything else is the fused irregular cell code. *)
let is_gemm_kernel (k : Cost.kernel_cost) =
  let is_prefix p = String.length k.Cost.kname >= String.length p
                    && String.sub k.Cost.kname 0 (String.length p) = p in
  is_prefix "setup" || is_prefix "pre_" || is_prefix "hoist_"

let kernel_efficiency be (k : Cost.kernel_cost) =
  if is_gemm_kernel k then be.gemm_efficiency else be.roofline_efficiency

(* Flop-weighted mean of the per-segment lane occupancy the latency
   model prices — how full the machine's lanes are where the work
   actually is.  Narrow levels near tree roots drag this down; the
   serving engine aggregates it per device (busy-time weighted) for the
   utilization reports. *)
let mean_occupancy be (cost : Cost.t) =
  let wsum = ref 0.0 in
  let fsum = ref 0.0 in
  List.iter
    (fun (k : Cost.kernel_cost) ->
      List.iter
        (fun (s : Cost.segment) ->
          let lanes = Float.max s.Cost.lanes be.min_lanes in
          let occ = Float.min 1.0 (lanes /. be.width) in
          wsum := !wsum +. (occ *. s.Cost.flops);
          fsum := !fsum +. s.Cost.flops)
        k.Cost.segments)
    cost.Cost.kernels;
  if !fsum > 0.0 then !wsum /. !fsum else 0.0

let simulate be ~persist ~lock_free (cost : Cost.t) =
  let persist_on = persist && persisted_bytes be cost > 0.0 in
  let size_of tid = try List.assoc tid cost.Cost.param_sizes with Not_found -> 0.0 in
  let charged_once = Hashtbl.create 8 in
  let gi = Interp.space_index Ir.Global in
  let si = Interp.space_index Ir.Shared in
  let compute_us = ref 0.0 in
  let param_traffic = ref 0.0 in
  let global_traffic = ref 0.0 in
  let onchip_traffic = ref 0.0 in
  let launches = ref 0 in
  List.iter
    (fun (k : Cost.kernel_cost) ->
      launches := !launches + k.Cost.launches;
      let eff = kernel_efficiency be k in
      let gemm = is_gemm_kernel k in
      List.iter
        (fun (s : Cost.segment) ->
          let param_bytes =
            List.fold_left
              (fun acc (tid, raw) ->
                let size = size_of tid in
                if persist_on && persistable be size then begin
                  if Hashtbl.mem charged_once tid then acc
                  else begin
                    Hashtbl.add charged_once tid ();
                    acc +. size
                  end
                end
                else acc +. Float.min raw size)
              0.0 s.Cost.param_raw
          in
          let global =
            s.Cost.reads.(gi) +. s.Cost.writes.(gi) +. param_bytes
          in
          let onchip = s.Cost.reads.(si) +. s.Cost.writes.(si) in
          let lanes = Float.max s.Cost.lanes be.min_lanes in
          let occupancy = Float.min 1.0 (lanes /. be.width) in
          let occupancy = Float.max (occupancy ** be.occupancy_exponent) 1e-3 in
          (* Dependency-chained reduction FLOPs issue at the serial
             rate; vendor GEMM efficiency already reflects blocked
             schedules, so GEMM kernels are exempt. *)
          let issued_flops =
            if gemm then s.Cost.flops
            else
              s.Cost.flops -. s.Cost.dep_flops
              +. (s.Cost.dep_flops /. be.serial_issue_factor)
          in
          let flops_t = issued_flops /. (be.peak_flops *. eff *. occupancy) in
          let mem_t = global /. be.mem_bw in
          let onchip_t = onchip /. be.onchip_bw in
          (* On-chip traffic overlaps with compute; off-chip traffic in
             these latency-bound fused kernels largely does not. *)
          let seg = Float.max flops_t onchip_t +. mem_t +. be.segment_latency_us in
          compute_us := !compute_us +. seg;
          param_traffic := !param_traffic +. param_bytes;
          global_traffic := !global_traffic +. (global -. param_bytes);
          onchip_traffic := !onchip_traffic +. onchip)
        k.Cost.segments)
    cost.Cost.kernels;
  let per_barrier = if lock_free then be.barrier_lock_free_us else be.barrier_lock_us in
  let barrier_us = float_of_int cost.Cost.barrier_count *. per_barrier in
  let launch_us =
    float_of_int !launches *. (be.launch_overhead_us +. be.kernel_device_latency_us)
  in
  {
    total_us = !compute_us +. barrier_us +. launch_us;
    compute_us = !compute_us;
    barrier_us;
    launch_us;
    param_traffic_bytes = !param_traffic;
    global_traffic_bytes = !global_traffic;
    onchip_traffic_bytes = !onchip_traffic;
    kernel_launches = !launches;
    barriers = cost.Cost.barrier_count;
  }

(* A straggling device runs everything slower: the serving engine's
   fault model multiplies a window's device-side time by a factor.
   Scaling the whole latency record (not just the total) keeps the
   compute/barrier/launch breakdown consistent in the reports; traffic
   and counts are work, not time, and stay as they are. *)
let scale_latency (l : latency) factor =
  if factor < 0.0 then invalid_arg "Backend.scale_latency: negative factor";
  {
    l with
    total_us = l.total_us *. factor;
    compute_us = l.compute_us *. factor;
    barrier_us = l.barrier_us *. factor;
    launch_us = l.launch_us *. factor;
  }
