(** Backend hardware models and the latency simulator.

    The container this reproduction runs in has no V100, CascadeLake or
    Graviton2 (see DESIGN.md); instead, every backend is described by a
    small set of machine parameters and compiled programs are costed by
    feeding the exact FLOP/byte/barrier/launch counts of
    {!Cortex_ilir.Cost} through a roofline-style model:

    - each barrier-separated segment takes
      [max(flops / (peak * occupancy), global_bytes / mem_bw,
           onchip_bytes / onchip_bw) + segment_latency],
      where occupancy is the segment's concurrent lane count against the
      machine width — this is what makes narrow dynamic batches near the
      tree roots expensive on the GPU;
    - parameter traffic follows model persistence (§3.1): persistable
      tensors (weight matrices, not embedding tables) are fetched once
      when persistence is on and they fit the on-chip budget, and once
      per segment otherwise; gather-style parameters are charged their
      raw demand, never more than their footprint;
    - every kernel launch pays [launch_overhead]; every global barrier
      pays the lock-based or lock-free cost (§7.2's GRNN comparison);
    - Table 6's profiling view uses [sync_call_overhead] per call
      instead of the asynchronous launch cost.

    The absolute constants are calibrated against the paper's anchor
    numbers; every *relative* effect flows from the counts produced by
    the real compiler pipeline. *)

type t = {
  name : string;
  short : string;
  peak_flops : float;  (** FLOPs per microsecond *)
  roofline_efficiency : float;
      (** fraction of the roofline fused irregular cell kernels reach
          (V100: ~0.6-1.2 TFLOP/s, derived from the paper's tables) *)
  gemm_efficiency : float;
      (** fraction dense batched GEMMs (the upfront input products)
          reach *)
  mem_bw : float;  (** off-chip bytes per microsecond *)
  onchip_bw : float;  (** scratchpad/cache bytes per microsecond *)
  width : float;  (** concurrent hardware lanes *)
  launch_overhead_us : float;  (** asynchronous kernel launch (CPU side) *)
  kernel_device_latency_us : float;
      (** minimum device-side time of one kernel execution — what makes
          many tiny kernels slow even when launches are asynchronous *)
  sync_call_overhead_us : float;  (** synchronous call under profiling *)
  dispatch_overhead_us : float;  (** framework-side per-operator cost *)
  barrier_lock_us : float;
  barrier_lock_free_us : float;
  segment_latency_us : float;
  occupancy_exponent : float;
      (** occupancy is raised to this power: > 1 models the
          super-linear cost of very narrow batches on wide machines *)
  vendor_occ_exponent : float;
      (** occupancy exponent for the frameworks' vendor calls (threaded
          BLAS collapses on narrow batches faster than fused loops) *)
  min_lanes : float;
      (** lane floor for compiled kernels: fused cells parallelize gate
          rows and reductions, never dropping below this concurrency *)
  vendor_efficiency : float;
      (** roofline fraction the vendor library (cuBLAS/MKL/OpenBLAS)
          reaches on the frameworks' batched kernels *)
  framework_overhead_scale : float;
      (** multiplier on framework-side CPU costs (graph construction,
          staging copies, dispatch) — > 1 on weaker host cores *)
  persist_budget_bytes : float;  (** on-chip storage for persisted weights *)
  persist_tensor_cap_bytes : float;  (** per-tensor persistence cap *)
  onchip_capacity_bytes : float;
      (** total on-chip storage (shared memory / scratch-usable cache):
          persisted weights plus staged regions plus Shared/Register
          temporaries must fit for a schedule to be feasible *)
  serial_issue_factor : float;
      (** fraction of peak issue rate achieved by a loop-carried
          dependency chain (a serial reduction's FMA waits on the
          previous one).  [Cost.dep_flops] is divided by this in
          non-GEMM kernels; binding the reduction loop onto lanes
          reclassifies the work to full throughput, which is the main
          lever the loop-schedule tuner exploits *)
}

val gpu : t
(** Nvidia V100 (Table 3). *)

val intel : t
(** 8-core/16-thread Intel CascadeLake. *)

val arm : t
(** 8-core ARM Graviton2. *)

val all : t list

type latency = {
  total_us : float;
  compute_us : float;  (** sum of segment roofline times *)
  barrier_us : float;
  launch_us : float;
  param_traffic_bytes : float;
  global_traffic_bytes : float;  (** excluding parameters *)
  onchip_traffic_bytes : float;
  kernel_launches : int;
  barriers : int;
}

val simulate :
  t -> persist:bool -> lock_free:bool -> Cortex_ilir.Cost.t -> latency
(** Cost a compiled program's counts on this backend. *)

val scale_latency : latency -> float -> latency
(** Multiply every time field (total, compute, barrier, launch) by a
    factor, leaving traffic bytes and launch/barrier counts untouched —
    how the serving engine prices a straggling device (its fault model
    slows execution down without changing the work done).  Raises
    [Invalid_argument] on a negative factor. *)

val persisted_bytes : t -> Cortex_ilir.Cost.t -> float
(** How many parameter bytes fit the persistence budget (0 when nothing
    is persistable). *)

val mean_occupancy : t -> Cortex_ilir.Cost.t -> float
(** Flop-weighted mean of the per-segment lane occupancy
    ([min 1 (lanes / width)], with the backend's lane floor applied) —
    the fraction of the machine the program's dynamic batches actually
    fill, before the occupancy exponent inflates the cost of the narrow
    ones.  The serving engine's per-device utilization reports
    aggregate this. *)
