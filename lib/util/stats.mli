(** Small numeric helpers shared by benches and tests. *)

val mean : float list -> float
val median : float list -> float
val geomean : float list -> float
(** Geometric mean; elements must be positive. *)

val clamp : lo:float -> hi:float -> float -> float
val clamp_int : lo:int -> hi:int -> int -> int

val time_us : (unit -> 'a) -> 'a * float
(** [time_us f] runs [f ()] and returns its result with the elapsed wall
    clock in microseconds. *)

val min_time_us : repeats:int -> (unit -> 'a) -> float
(** Best-of-[repeats] wall-clock time of a thunk, in microseconds.  Used
    for the linearizer-overhead measurements (§7.5), which are real
    measurements rather than simulated ones. *)
