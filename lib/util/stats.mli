(** Small numeric helpers shared by benches and tests. *)

val mean : float list -> float
val median : float list -> float
val geomean : float list -> float
(** Geometric mean; elements must be positive. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the exact [p]-th percentile of [xs] with linear
    interpolation between order statistics (the common "type 7" rule:
    rank [p/100 * (n-1)]).  [percentile 50.0] therefore equals {!median}
    on both parities, [percentile 0.0] the minimum and [percentile
    100.0] the maximum.  Raises [Invalid_argument] on an empty list or
    [p] outside [0, 100]. *)

val p50 : float list -> float
val p90 : float list -> float
val p99 : float list -> float
(** Tail-latency shorthands for [percentile 50.0] / [percentile 90.0] /
    [percentile 99.0], used by the serving engine's aggregate reports
    and the observability metrics registry. *)

(** A fixed-bucket histogram over a closed range. *)
type histogram = {
  h_lo : float;
  h_hi : float;
  h_counts : int array;  (** one count per bucket, low range first *)
  h_underflow : int;  (** values below [h_lo] (NaN counts here too) *)
  h_overflow : int;  (** values above [h_hi] *)
  h_total : int;  (** all values seen, including under/overflow *)
}

val histogram : ?bins:int -> lo:float -> hi:float -> float list -> histogram
(** [histogram ~bins ~lo ~hi xs] buckets [xs] into [bins] (default 10)
    equal-width buckets over [[lo, hi]].  The range is closed on the
    right: [hi] lands in the last bucket, so a histogram fitted to
    min..max counts its maximum.  [lo = hi] is allowed (everything equal
    to it lands in bucket 0) — the degenerate all-equal case the metrics
    registry hits when a series never varies.  An empty input gives
    all-zero counts.  Raises [Invalid_argument] if [bins < 1] or
    [lo > hi]. *)

val histogram_to_string : histogram -> string
(** One-line bucket rendering, for metric snapshots and debugging. *)

val clamp : lo:float -> hi:float -> float -> float
val clamp_int : lo:int -> hi:int -> int -> int

val time_us : (unit -> 'a) -> 'a * float
(** [time_us f] runs [f ()] and returns its result with the elapsed wall
    clock in microseconds. *)

val min_time_us : repeats:int -> (unit -> 'a) -> float
(** Best-of-[repeats] wall-clock time of a thunk, in microseconds.  Used
    for the linearizer-overhead measurements (§7.5), which are real
    measurements rather than simulated ones. *)
