type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let default_aligns ncols = List.init ncols (fun i -> if i = 0 then Left else Right)

let render ?title ?align ~header rows =
  let ncols = List.length header in
  let aligns = match align with Some a -> a | None -> default_aligns ncols in
  let aligns = Array.of_list aligns in
  let all = header :: rows in
  let widths = Array.make ncols 0 in
  let note_row row =
    List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_row all;
  let buf = Buffer.create 256 in
  (match title with
   | Some t ->
     Buffer.add_string buf t;
     Buffer.add_char buf '\n'
   | None -> ());
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let a = if i < Array.length aligns then aligns.(i) else Right in
        Buffer.add_string buf (pad a widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      ignore w;
      Buffer.add_string buf (String.make widths.(i) '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title ?align ~header rows =
  print_string (render ?title ?align ~header rows);
  print_newline ()

let fms v =
  if v >= 100.0 then Printf.sprintf "%.0f" v
  else if v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let fx v = Printf.sprintf "%.2f" v
