type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit
     native int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let uniform t =
  (* 53 mantissa bits of the 64-bit output. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let float t bound = uniform t *. bound

let gaussian t ~mean ~std =
  let u1 = max 1e-12 (uniform t) in
  let u2 = uniform t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (std *. r *. cos (2.0 *. Float.pi *. u2))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
