(** Plain-text table rendering for the benchmark harness.

    The evaluation reproduces the paper's tables and figure series as
    aligned ASCII tables on stdout; this module does the layout. *)

type align = Left | Right

val render :
  ?title:string -> ?align:align list -> header:string list -> string list list -> string
(** [render ~title ~header rows] lays the table out with one space of
    padding and a separator under the header.  Columns default to
    right-aligned except the first, which is left-aligned; [align]
    overrides per-column. *)

val print :
  ?title:string -> ?align:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by [print_string] and a newline. *)

val fms : float -> string
(** Milliseconds with sensible precision ("0.39", "12.28"). *)

val fx : float -> string
(** Speedup factor ("13.59", "0.91"). *)
