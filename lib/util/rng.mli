(** Deterministic pseudo-random number generation.

    All randomness in the repository (synthetic datasets, random model
    parameters, property-test inputs) flows through this module so that
    every experiment is reproducible from a seed.  The generator is
    splitmix64, which is fast, has a 64-bit state and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Useful to give each dataset element its own stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val uniform : t -> float
(** [uniform t] is uniform in [0, 1). *)

val gaussian : t -> mean:float -> std:float -> float
(** Box-Muller normal sample. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
