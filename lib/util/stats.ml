let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median = function
  | [] -> invalid_arg "Stats.median: empty"
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (s /. float_of_int (List.length xs))

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    if p < 0.0 || p > 100.0 || Float.is_nan p then
      invalid_arg "Stats.percentile: p outside [0, 100]";
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let p50 xs = percentile 50.0 xs
let p99 xs = percentile 99.0 xs

let clamp ~lo ~hi v = Float.max lo (Float.min hi v)
let clamp_int ~lo ~hi v = max lo (min hi v)

let time_us f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1e6)

let min_time_us ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, us = time_us f in
    if us < !best then best := us
  done;
  !best
