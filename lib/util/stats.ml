let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median = function
  | [] -> invalid_arg "Stats.median: empty"
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (s /. float_of_int (List.length xs))

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    if p < 0.0 || p > 100.0 || Float.is_nan p then
      invalid_arg "Stats.percentile: p outside [0, 100]";
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let p50 xs = percentile 50.0 xs
let p90 xs = percentile 90.0 xs
let p99 xs = percentile 99.0 xs

type histogram = {
  h_lo : float;
  h_hi : float;
  h_counts : int array;
  h_underflow : int;
  h_overflow : int;
  h_total : int;
}

let histogram ?(bins = 10) ~lo ~hi xs =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Stats.histogram: need lo <= hi";
  let counts = Array.make bins 0 in
  let underflow = ref 0 and overflow = ref 0 in
  let width = (hi -. lo) /. float_of_int bins in
  List.iter
    (fun v ->
      if Float.is_nan v || v < lo then incr underflow
      else if v > hi then incr overflow
      else begin
        (* v = hi (and every value when lo = hi) lands in the last
           bucket: the range is closed on the right so the maximum of a
           min..max-fitted histogram is counted, not dropped. *)
        let i =
          if width > 0.0 then
            min (bins - 1) (int_of_float ((v -. lo) /. width))
          else 0
        in
        counts.(i) <- counts.(i) + 1
      end)
    xs;
  {
    h_lo = lo;
    h_hi = hi;
    h_counts = counts;
    h_underflow = !underflow;
    h_overflow = !overflow;
    h_total = List.length xs;
  }

let histogram_to_string h =
  let bins = Array.length h.h_counts in
  let width = (h.h_hi -. h.h_lo) /. float_of_int bins in
  let buf = Buffer.create 128 in
  if h.h_underflow > 0 then
    Buffer.add_string buf (Printf.sprintf "(-inf, %g): %d  " h.h_lo h.h_underflow);
  Array.iteri
    (fun i c ->
      let lo = h.h_lo +. (width *. float_of_int i) in
      let hi = if i = bins - 1 then h.h_hi else lo +. width in
      Buffer.add_string buf (Printf.sprintf "[%g, %g%s: %d  " lo hi (if i = bins - 1 then "]" else ")") c))
    h.h_counts;
  if h.h_overflow > 0 then
    Buffer.add_string buf (Printf.sprintf "(%g, inf): %d  " h.h_hi h.h_overflow);
  String.trim (Buffer.contents buf)

let clamp ~lo ~hi v = Float.max lo (Float.min hi v)
let clamp_int ~lo ~hi v = max lo (min hi v)

let time_us f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1e6)

let min_time_us ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, us = time_us f in
    if us < !best then best := us
  done;
  !best
