open Cortex_ra
open Ra

(* [open Ra] shadows arithmetic with rexpr builders; restore the integer
   operators for shape bookkeeping. *)
let ( +! ) = Stdlib.( + )
let ( *! ) = Stdlib.( * )
let _ = ( +! )
let _ = ( *! )
module Tensor = Cortex_tensor.Tensor
module Rng = Cortex_util.Rng

type variant = Full | Recursive_only

type t = {
  name : string;
  program : Ra.t;
  init_params : Rng.t -> string -> Tensor.t;
  dataset : Rng.t -> batch:int -> Cortex_ds.Structure.t;
  refactor_publish : string list;
  refactor_removes_barrier : bool;
  block_local_unroll : bool;
}

let make_params ~specs ~zero_rows rng =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (name, dims) ->
      let t = Tensor.rand_uniform rng (Array.of_list dims) ~lo:(-0.35) ~hi:0.35 in
      (match List.assoc_opt name zero_rows with
       | Some row ->
         let cols = Stdlib.( / ) (Tensor.numel t) (Tensor.dim t 0) in
         for j = 0 to Stdlib.( - ) cols 1 do
           Tensor.set_flat t (Stdlib.( + ) (row *! cols) j) 0.0
         done
       | None -> ());
      Hashtbl.replace table name t)
    specs;
  fun name ->
    match Hashtbl.find_opt table name with
    | Some t -> t
    | None -> invalid_arg ("Models_common.make_params: unknown parameter " ^ name)

let matvec ~w ~x ~hidden =
  Sum ("j", hidden, Param (w, [ IAxis "i"; IAxis "j" ]) * x [ IAxis "j" ])

let emb_x ~emb idx = Param (emb, IPayload :: idx)

let gate ?x ~u ~over ~bias ~hidden nl =
  let linear = matvec ~w:u ~x:over ~hidden + Param (bias, [ IAxis "i" ]) in
  let linear = match x with Some x -> x + linear | None -> linear in
  Math (nl, linear)
