(** DAG-RNN (Shuai et al., 2015), recursive portion: scene labeling
    over an image grid lowered to a DAG.

    One south-east sweep: [h(i,j) = tanh(x(i,j) + U.(h(i-1,j) +
    h(i,j-1)) + b)] where [x] is the cell's input feature (optionally
    through an input matrix-vector product, hoisted upfront).  The
    paper's synthetic DAGs are 10x10 grids; the single leaf means
    specialization brings no speedup for this model, as §7.3 notes. *)

val spec :
  ?rows:int -> ?cols:int -> ?variant:Models_common.variant -> hidden:int -> unit -> Models_common.t
