open Cortex_ra
open Ra

(* [open Ra] shadows arithmetic with rexpr builders; restore the integer
   operators for shape bookkeeping. *)
let ( +! ) = Stdlib.( + )
let ( *! ) = Stdlib.( * )
let _ = ( +! )
let _ = ( *! )
module C = Models_common
module Gen = Cortex_ds.Gen
module Nonlinear = Cortex_tensor.Nonlinear

let program ~hidden ~vocab ~kind ~max_children ~simple ~(variant : C.variant) =
  let gs = [ "z"; "r"; "h" ] in
  let x_ops =
    match variant with
    | C.Full ->
      List.map
        (fun g ->
          op ("x" ^ g) ~precompute:true
            ~axes:[ ("i", hidden) ]
            (C.matvec ~w:("Wx" ^ g) ~x:(C.emb_x ~emb:"Emb") ~hidden))
        gs
    | C.Recursive_only -> []
  in
  let xref g =
    match variant with
    | C.Full -> Some (Temp ("x" ^ g, [ IAxis "i" ]))
    | C.Recursive_only -> None
  in
  let x_params =
    match variant with
    | C.Full ->
      ("Emb", [ vocab +! 1; hidden ]) :: List.map (fun g -> ("Wx" ^ g, [ hidden; hidden ])) gs
    | C.Recursive_only -> []
  in
  let combine =
    if simple then
      (Const 1.0 - Temp ("z", [ IAxis "i" ])) * Temp ("hc", [ IAxis "i" ])
    else
      (Temp ("z", [ IAxis "i" ]) * Temp ("hsum", [ IAxis "i" ]))
      + ((Const 1.0 - Temp ("z", [ IAxis "i" ])) * Temp ("hc", [ IAxis "i" ]))
  in
  {
    name = (if simple then "simpletreegru" else "treegru");
    kind;
    max_children;
    params =
      x_params
      @ [
          ("Uz", [ hidden; hidden ]);
          ("bz", [ hidden ]);
          ("Ur", [ hidden; hidden ]);
          ("br", [ hidden ]);
          ("Uh", [ hidden; hidden ]);
          ("bh", [ hidden ]);
        ];
    rec_ops =
      x_ops
      @ [
          op "hsum"
            ~axes:[ ("i", hidden) ]
            (ChildSum (ChildState ("h", Current, [ IAxis "i" ])));
          op "z"
            ~axes:[ ("i", hidden) ]
            (C.gate ?x:(xref "z") ~u:"Uz"
               ~over:(fun idx -> Temp ("hsum", idx))
               ~bias:"bz" ~hidden Nonlinear.Sigmoid);
          op "rh"
            ~axes:[ ("i", hidden) ]
            (ChildSum
               (C.gate ?x:(xref "r") ~u:"Ur"
                  ~over:(fun idx -> ChildState ("h", Current, idx))
                  ~bias:"br" ~hidden Nonlinear.Sigmoid
               * ChildState ("h", Current, [ IAxis "i" ])));
          op "hc" ~phase:1
            ~axes:[ ("i", hidden) ]
            (C.gate ?x:(xref "h") ~u:"Uh"
               ~over:(fun idx -> Temp ("rh", idx))
               ~bias:"bh" ~hidden Nonlinear.Tanh);
          op "h" ~phase:1 ~axes:[ ("i", hidden) ] combine;
        ];
    leaf_ops = None;
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let spec ?(vocab = Gen.vocab_size) ?(variant = C.Full) ?(simple = false) ?(sequence = false)
    ?(seq_len = 100) ~hidden () =
  let kind, max_children =
    if sequence then (Cortex_ds.Structure.Sequence, 1) else (Cortex_ds.Structure.Tree, 2)
  in
  let program = program ~hidden ~vocab ~kind ~max_children ~simple ~variant in
  let program =
    if sequence then { program with name = (if simple then "simplegru" else "gru") }
    else program
  in
  let name =
    match (sequence, simple) with
    | true, false -> "GRU"
    | true, true -> "SimpleGRU"
    | false, false -> "TreeGRU"
    | false, true -> "SimpleTreeGRU"
  in
  {
    C.name = name;
    program;
    init_params =
      (fun rng ->
        C.make_params ~specs:program.params
          ~zero_rows:(if variant = C.Full then [ ("Emb", vocab) ] else [])
          rng);
    dataset =
      (fun rng ~batch ->
        if sequence then
          Cortex_ds.Structure.merge
            (List.init batch (fun _ -> Gen.sequence rng ~vocab ~len:seq_len ()))
        else Gen.sst_batch rng ~vocab ~batch ());
    (* The deferred combine needs the child's z (and for the full cell
       also its child-sum) in addition to the candidate state hc, which
       replaces h as a published vector. *)
    refactor_publish = (if simple then [ "z" ] else [ "z"; "hsum" ]);
    (* §7.4: the full cell's deferred combine feeds the candidate
       state's synchronized matrix-vector stage, so the backedge change
       does not eliminate the barrier; the simplified cell's does. *)
    refactor_removes_barrier = simple;
    block_local_unroll = false;
  }
