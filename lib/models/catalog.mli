(** The model zoo as evaluated in §7 (Table 2), by short name.

    Hidden sizes follow the paper: the smaller/larger pairs are 256/512
    for TreeFC, DAG-RNN, TreeGRU and TreeLSTM and 64/128 for MV-RNN. *)

type size = Small | Large

val hidden_of : string -> size -> int
(** [hidden_of short_name size]: h_s / h_l per Table 2's conventions.
    Raises [Invalid_argument] for unknown names. *)

val evaluated : string list
(** The five models of the main evaluation, in the paper's order:
    TreeFC, DAG-RNN, TreeGRU, TreeLSTM, MV-RNN. *)

val get :
  ?variant:Models_common.variant -> string -> size -> Models_common.t
(** Model by short name ("TreeFC", "DAG-RNN", "TreeGRU", "TreeLSTM",
    "MV-RNN", "TreeRNN", "SimpleTreeGRU", "LSTM", "GRU", "SimpleGRU"). *)
