module Tensor = Cortex_tensor.Tensor
module Nonlinear = Cortex_tensor.Nonlinear
module Node = Cortex_ds.Node
module Structure = Cortex_ds.Structure

type resolver = string -> Tensor.t

let tanh_v = Tensor.map Nonlinear.tanh_rational
let relu_v = Tensor.map Nonlinear.relu

(* Memoized children-first recursion over a structure. *)
let memo_rec (structure : Structure.t) f =
  let table : ('a option array) = Array.make (Structure.num_nodes structure) None in
  let rec eval (node : Node.t) =
    match table.(node.id) with
    | Some v -> v
    | None ->
      let v = f eval node in
      table.(node.id) <- Some v;
      v
  in
  eval

let child_sum ~hidden children value =
  let acc = Tensor.zeros [| hidden |] in
  Array.iter (fun c -> Tensor.add_ acc (value c)) children;
  acc

let tree_fc ~params ~hidden structure =
  let wl = params "Wl" and wr = params "Wr" and b = params "b" in
  let emb = params "Emb" in
  memo_rec structure (fun eval (node : Node.t) ->
      if Node.is_leaf node then Tensor.row emb node.payload
      else begin
        let child k =
          if k < Array.length node.children then eval node.children.(k)
          else Tensor.zeros [| hidden |]
        in
        relu_v
          (Tensor.add (Tensor.add (Tensor.matvec wl (child 0)) (Tensor.matvec wr (child 1))) b)
      end)

let tree_rnn ~params ~hidden structure =
  let emb = params "Emb" and u = params "U" and b = params "b" in
  memo_rec structure (fun eval (node : Node.t) ->
      let cs = child_sum ~hidden node.children eval in
      tanh_v (Tensor.add (Tensor.add (Tensor.row emb node.payload) (Tensor.matvec u cs)) b))

let tree_lstm ~params ~hidden ~with_x structure =
  let u g = params ("U" ^ g) and b g = params ("b" ^ g) in
  let x (node : Node.t) g =
    if with_x then Tensor.matvec (params ("Wx" ^ g)) (Tensor.row (params "Emb") node.payload)
    else Tensor.zeros [| hidden |]
  in
  memo_rec structure (fun eval (node : Node.t) ->
      let hc = Array.map eval node.children in
      let hsum = child_sum ~hidden node.children (fun c -> fst (eval c)) in
      let gate g nl over = Tensor.map nl (Tensor.add (Tensor.add (x node g) (Tensor.matvec (u g) over)) (b g)) in
      let i = gate "i" Nonlinear.sigmoid_rational hsum in
      let o = gate "o" Nonlinear.sigmoid_rational hsum in
      let uu = gate "u" Nonlinear.tanh_rational hsum in
      let fc = Tensor.zeros [| hidden |] in
      Array.iter
        (fun (hk, ck) ->
          let f = gate "f" Nonlinear.sigmoid_rational hk in
          Tensor.add_ fc (Tensor.mul f ck))
        hc;
      let c = Tensor.add (Tensor.mul i uu) fc in
      let h = Tensor.mul o (tanh_v c) in
      (h, c))

let nary_tree_lstm ~params ~hidden ~with_x structure =
  let u g k = params (Printf.sprintf "U%s%d" g k) and b g = params ("b" ^ g) in
  let x (node : Node.t) g =
    if with_x then Tensor.matvec (params ("Wx" ^ g)) (Tensor.row (params "Emb") node.payload)
    else Tensor.zeros [| hidden |]
  in
  memo_rec structure (fun eval (node : Node.t) ->
      let child k =
        if k < Array.length node.children then eval node.children.(k)
        else (Tensor.zeros [| hidden |], Tensor.zeros [| hidden |])
      in
      let h0, c0 = child 0 and h1, c1 = child 1 in
      let gate g nl =
        Tensor.map nl
          (Tensor.add
             (Tensor.add (x node g)
                (Tensor.add (Tensor.matvec (u g 0) h0) (Tensor.matvec (u g 1) h1)))
             (b g))
      in
      let i = gate "i" Nonlinear.sigmoid_rational in
      let o = gate "o" Nonlinear.sigmoid_rational in
      let uu = gate "u" Nonlinear.tanh_rational in
      let forget k hk ck =
        let f =
          Tensor.map Nonlinear.sigmoid_rational
            (Tensor.add (Tensor.add (x node "f") (Tensor.matvec (u "f" k) hk)) (b "f"))
        in
        Tensor.mul f ck
      in
      let c = Tensor.add (Tensor.mul i uu) (Tensor.add (forget 0 h0 c0) (forget 1 h1 c1)) in
      let h = Tensor.mul o (tanh_v c) in
      (h, c))

let tree_gru ~params ~hidden ~with_x ~simple structure =
  let u g = params ("U" ^ g) and b g = params ("b" ^ g) in
  let x (node : Node.t) g =
    if with_x then Tensor.matvec (params ("Wx" ^ g)) (Tensor.row (params "Emb") node.payload)
    else Tensor.zeros [| hidden |]
  in
  memo_rec structure (fun eval (node : Node.t) ->
      let hs = Array.map eval node.children in
      let hsum = Tensor.zeros [| hidden |] in
      Array.iter (Tensor.add_ hsum) hs;
      let gate g nl over = Tensor.map nl (Tensor.add (Tensor.add (x node g) (Tensor.matvec (u g) over)) (b g)) in
      let z = gate "z" Nonlinear.sigmoid_rational hsum in
      let rh = Tensor.zeros [| hidden |] in
      Array.iter
        (fun hk ->
          let r = gate "r" Nonlinear.sigmoid_rational hk in
          Tensor.add_ rh (Tensor.mul r hk))
        hs;
      let hcand = gate "h" Nonlinear.tanh_rational rh in
      let one_minus_z = Tensor.map (fun v -> 1.0 -. v) z in
      if simple then Tensor.mul one_minus_z hcand
      else Tensor.add (Tensor.mul z hsum) (Tensor.mul one_minus_z hcand))

let mv_rnn ~params ~hidden structure =
  let w0 = params "W0" and w1 = params "W1" and bp = params "bp" in
  let wm0 = params "WM0" and wm1 = params "WM1" in
  let embv = params "EmbV" and embm = params "EmbM" in
  memo_rec structure (fun eval (node : Node.t) ->
      if Node.is_leaf node then begin
        let p = Tensor.row embv node.payload in
        let a =
          Tensor.init [| hidden; hidden |] (fun idx ->
              Tensor.get embm [| node.payload; idx.(0); idx.(1) |])
        in
        (p, a)
      end
      else begin
        let pl, al = eval node.children.(0) in
        let pr, ar = eval node.children.(1) in
        let u0 = Tensor.matvec ar pl in
        let u1 = Tensor.matvec al pr in
        let p =
          tanh_v (Tensor.add (Tensor.add (Tensor.matvec w0 u0) (Tensor.matvec w1 u1)) bp)
        in
        let a = Tensor.add (Tensor.matmul wm0 al) (Tensor.matmul wm1 ar) in
        (p, a)
      end)

let dag_rnn ~params ~hidden ~with_x structure =
  let xfeat = params "X" and u = params "U" and b = params "b" in
  memo_rec structure (fun eval (node : Node.t) ->
      let cs = child_sum ~hidden node.children eval in
      let x =
        let raw = Tensor.row xfeat node.payload in
        if with_x then Tensor.matvec (params "Wx") raw else raw
      in
      tanh_v (Tensor.add (Tensor.add x (Tensor.matvec u cs)) b))
