(** Hand-written reference implementations.

    Each model is implemented a second time, directly with tensor
    operations and plain recursion over the linked structure — no RA, no
    compiler.  The test suite checks RA evaluation *and* the compiled
    pipeline against these, so a mistake in the RA encoding of a model
    cannot hide behind a matching mistake in the evaluator. *)

module Tensor = Cortex_tensor.Tensor

type resolver = string -> Tensor.t

val tree_fc : params:resolver -> hidden:int -> Cortex_ds.Structure.t -> Cortex_ds.Node.t -> Tensor.t
(** Hidden state of a node under TreeFC. *)

val tree_rnn : params:resolver -> hidden:int -> Cortex_ds.Structure.t -> Cortex_ds.Node.t -> Tensor.t

val tree_lstm :
  params:resolver ->
  hidden:int ->
  with_x:bool ->
  Cortex_ds.Structure.t ->
  Cortex_ds.Node.t ->
  Tensor.t * Tensor.t
(** (h, c) of a node under child-sum TreeLSTM. *)

val nary_tree_lstm :
  params:resolver ->
  hidden:int ->
  with_x:bool ->
  Cortex_ds.Structure.t ->
  Cortex_ds.Node.t ->
  Tensor.t * Tensor.t
(** (h, c) under the N-ary (binary) TreeLSTM. *)

val tree_gru :
  params:resolver ->
  hidden:int ->
  with_x:bool ->
  simple:bool ->
  Cortex_ds.Structure.t ->
  Cortex_ds.Node.t ->
  Tensor.t

val mv_rnn :
  params:resolver -> hidden:int -> Cortex_ds.Structure.t -> Cortex_ds.Node.t -> Tensor.t * Tensor.t
(** (p, A) of a node under MV-RNN. *)

val dag_rnn :
  params:resolver -> hidden:int -> with_x:bool -> Cortex_ds.Structure.t -> Cortex_ds.Node.t -> Tensor.t
