(** MV-RNN (Socher et al., 2012b): every constituent carries a vector
    and a matrix.

    For the node with children (l, r):
    [p = tanh(W0.(A_r p_l) + W1.(A_l p_r) + b)] and
    [A = WM0.A_l + WM1.A_r] (per output column).  Leaves read both from
    embedding tables.  Per-word full matrices make the embedding table
    O(V.H^2); like practical MV-RNN implementations we cap the matrix
    vocabulary (default 256) — the tree shapes, which drive everything
    the paper measures, are unchanged.  Uses the paper's smaller hidden
    sizes (64 / 128). *)

val spec : ?vocab:int -> hidden:int -> unit -> Models_common.t
