open Cortex_ra
open Ra

(* [open Ra] shadows arithmetic with rexpr builders; restore the integer
   operators for shape bookkeeping. *)
let ( +! ) = Stdlib.( + )
let ( *! ) = Stdlib.( * )
let _ = ( +! )
let _ = ( *! )
module C = Models_common
module Gen = Cortex_ds.Gen

let program ~hidden ~vocab =
  {
    name = "treernn";
    kind = Cortex_ds.Structure.Tree;
    max_children = 2;
    params =
      [ ("Emb", [ vocab +! 1; hidden ]); ("U", [ hidden; hidden ]); ("b", [ hidden ]) ];
    rec_ops =
      [
        op "cs" ~axes:[ ("i", hidden) ]
          (ChildSum (ChildState ("h", Current, [ IAxis "i" ])));
        op "h" ~axes:[ ("i", hidden) ]
          (tanh_
             (C.emb_x ~emb:"Emb" [ IAxis "i" ]
             + C.matvec ~w:"U" ~x:(fun idx -> Temp ("cs", idx)) ~hidden
             + Param ("b", [ IAxis "i" ])));
      ];
    leaf_ops = None;
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let spec ?(vocab = Gen.vocab_size) ~hidden () =
  let program = program ~hidden ~vocab in
  {
    C.name = "TreeRNN";
    program;
    init_params =
      (fun rng -> C.make_params ~specs:program.params ~zero_rows:[ ("Emb", vocab) ] rng);
    dataset = (fun rng ~batch -> Gen.sst_batch rng ~vocab ~batch ());
    refactor_publish = [];
    refactor_removes_barrier = true;
    block_local_unroll = true;
  }
