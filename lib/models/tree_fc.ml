open Cortex_ra
open Ra

(* [open Ra] shadows arithmetic with rexpr builders; restore the integer
   operators for shape bookkeeping. *)
let ( +! ) = Stdlib.( + )
let ( *! ) = Stdlib.( * )
let _ = ( +! )
let _ = ( *! )
module C = Models_common

let program ~hidden ~vocab =
  let mv w child =
    Sum ("j", hidden, Param (w, [ IAxis "i"; IAxis "j" ]) * ChildState ("h", Child child, [ IAxis "j" ]))
  in
  {
    name = "treefc";
    kind = Cortex_ds.Structure.Tree;
    max_children = 2;
    params =
      [
        ("Emb", [ vocab +! 1; hidden ]);
        ("Wl", [ hidden; hidden ]);
        ("Wr", [ hidden; hidden ]);
        ("b", [ hidden ]);
      ];
    rec_ops =
      [ op "h" ~axes:[ ("i", hidden) ] (relu_ (mv "Wl" 0 + mv "Wr" 1 + Param ("b", [ IAxis "i" ]))) ];
    leaf_ops = Some [ op "h" ~axes:[ ("i", hidden) ] (Param ("Emb", [ IPayload; IAxis "i" ])) ];
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let spec ?(height = 7) ?(vocab = Cortex_ds.Gen.vocab_size) ~hidden () =
  let program = program ~hidden ~vocab in
  {
    C.name = "TreeFC";
    program;
    init_params =
      (fun rng -> C.make_params ~specs:program.params ~zero_rows:[] rng);
    dataset = (fun rng ~batch -> Cortex_ds.Gen.perfect_batch rng ~vocab ~batch ~height ());
    refactor_publish = [];
    refactor_removes_barrier = true;
    block_local_unroll = false;
  }
