open Cortex_ra
open Ra

(* [open Ra] shadows arithmetic with rexpr builders; restore the integer
   operators for shape bookkeeping. *)
let ( +! ) = Stdlib.( + )
let ( *! ) = Stdlib.( * )
let _ = ( +! )
let _ = ( *! )
module C = Models_common
module Gen = Cortex_ds.Gen

let program ~hidden ~vocab =
  let h = hidden in
  let child_mv name ~mat_child ~vec_child =
    (* A_{mat_child} . p_{vec_child} *)
    op name ~axes:[ ("i", h) ]
      (Sum
         ( "s",
           h,
           ChildState ("A", Child mat_child, [ IAxis "i"; IAxis "s" ])
           * ChildState ("p", Child vec_child, [ IAxis "s" ]) ))
  in
  {
    name = "mvrnn";
    kind = Cortex_ds.Structure.Tree;
    max_children = 2;
    params =
      [
        ("EmbV", [ vocab +! 1; h ]);
        ("EmbM", [ vocab +! 1; h; h ]);
        ("W0", [ h; h ]);
        ("W1", [ h; h ]);
        ("bp", [ h ]);
        ("WM0", [ h; h ]);
        ("WM1", [ h; h ]);
      ];
    rec_ops =
      [
        child_mv "u0" ~mat_child:1 ~vec_child:0;
        child_mv "u1" ~mat_child:0 ~vec_child:1;
        op "p" ~phase:1
          ~axes:[ ("i", h) ]
          (tanh_
             (C.matvec ~w:"W0" ~x:(fun idx -> Temp ("u0", idx)) ~hidden:h
             + C.matvec ~w:"W1" ~x:(fun idx -> Temp ("u1", idx)) ~hidden:h
             + Param ("bp", [ IAxis "i" ])));
        op "A"
          ~axes:[ ("i", h); ("m", h) ]
          (Sum
             ( "s",
               h,
               Param ("WM0", [ IAxis "i"; IAxis "s" ])
               * ChildState ("A", Child 0, [ IAxis "s"; IAxis "m" ]) )
          + Sum
              ( "t",
                h,
                Param ("WM1", [ IAxis "i"; IAxis "t" ])
                * ChildState ("A", Child 1, [ IAxis "t"; IAxis "m" ]) ));
      ];
    leaf_ops =
      Some
        [
          op "p" ~axes:[ ("i", h) ] (Param ("EmbV", [ IPayload; IAxis "i" ]));
          op "A" ~axes:[ ("i", h); ("m", h) ] (Param ("EmbM", [ IPayload; IAxis "i"; IAxis "m" ]));
        ];
    states =
      [
        { st_name = "p"; st_op = "p"; st_init = Zero };
        { st_name = "A"; st_op = "A"; st_init = Zero };
      ];
    outputs = [ "p" ];
  }

let spec ?(vocab = 256) ~hidden () =
  let program = program ~hidden ~vocab in
  {
    C.name = "MV-RNN";
    program;
    init_params =
      (fun rng ->
        C.make_params ~specs:program.params
          ~zero_rows:[ ("EmbV", vocab); ("EmbM", vocab) ]
          rng);
    dataset = (fun rng ~batch -> Gen.sst_batch rng ~vocab ~batch ());
    refactor_publish = [];
    refactor_removes_barrier = true;
    block_local_unroll = false;
  }
