(** Child-sum TreeLSTM (Tai et al., 2015) — the paper's flagship model.

    Gates [i], [o], [u] are computed over the sum of children's hidden
    states; each child gets its own forget gate whose product with the
    child's cell state is child-summed.  [Full] includes the input
    matrix-vector products (hoisted to an upfront kernel as in GRNN);
    [Recursive_only] is the recursive portion used against Cavs and in
    Fig. 7.  With [kind = Sequence] and [max_children = 1] this is
    exactly the sequential LSTM used for the GRNN comparison (Fig. 9). *)

val spec :
  ?vocab:int ->
  ?variant:Models_common.variant ->
  ?sequence:bool ->
  ?seq_len:int ->
  hidden:int ->
  unit ->
  Models_common.t

val nary_spec :
  ?vocab:int -> ?variant:Models_common.variant -> hidden:int -> unit -> Models_common.t
(** The N-ary (binary) TreeLSTM of Tai et al. §3.2: per-child-position
    U matrices and per-position forget gates, expressed with fixed
    [Child 0]/[Child 1] references instead of [ChildSum]. *)
