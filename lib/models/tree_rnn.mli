(** TreeRNN — the tree extension of a vanilla RNN used in §7.4:
    [h = tanh(Emb[word] + U . sum_k h_k + b)].

    Cheap enough that the whole cell for one node fits one thread
    block, which is why its unrolling schedule uses block-local
    synchronization and unrolling *helps* it (Fig. 10b). *)

val spec : ?vocab:int -> hidden:int -> unit -> Models_common.t
