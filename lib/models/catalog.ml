type size = Small | Large

let hidden_of name size =
  match (name, size) with
  | "MV-RNN", Small -> 64
  | "MV-RNN", Large -> 128
  | ("TreeFC" | "DAG-RNN" | "TreeGRU" | "TreeLSTM" | "NaryTreeLSTM" | "TreeRNN" | "SimpleTreeGRU" | "LSTM" | "GRU" | "SimpleGRU"), Small -> 256
  | ("TreeFC" | "DAG-RNN" | "TreeGRU" | "TreeLSTM" | "NaryTreeLSTM" | "TreeRNN" | "SimpleTreeGRU" | "LSTM" | "GRU" | "SimpleGRU"), Large -> 512
  | _ -> invalid_arg ("Catalog.hidden_of: unknown model " ^ name)

let evaluated = [ "TreeFC"; "DAG-RNN"; "TreeGRU"; "TreeLSTM"; "MV-RNN" ]

let get ?(variant = Models_common.Full) name size =
  let hidden = hidden_of name size in
  match name with
  | "TreeFC" -> Tree_fc.spec ~hidden ()
  | "TreeRNN" -> Tree_rnn.spec ~hidden ()
  | "TreeLSTM" -> Tree_lstm.spec ~variant ~hidden ()
  | "NaryTreeLSTM" -> Tree_lstm.nary_spec ~variant ~hidden ()
  | "TreeGRU" -> Tree_gru.spec ~variant ~hidden ()
  | "SimpleTreeGRU" -> Tree_gru.spec ~variant ~simple:true ~hidden ()
  | "MV-RNN" -> Mv_rnn.spec ~hidden ()
  | "DAG-RNN" -> Dag_rnn.spec ~variant ~hidden ()
  | "LSTM" -> Tree_lstm.spec ~variant ~sequence:true ~hidden ()
  | "GRU" -> Tree_gru.spec ~variant ~sequence:true ~hidden ()
  | "SimpleGRU" -> Tree_gru.spec ~variant ~simple:true ~sequence:true ~hidden ()
  | _ -> invalid_arg ("Catalog.get: unknown model " ^ name)
