open Cortex_ra
open Ra

(* [open Ra] shadows arithmetic with rexpr builders; restore the integer
   operators for shape bookkeeping. *)
let ( +! ) = Stdlib.( + )
let ( *! ) = Stdlib.( * )
let _ = ( +! )
let _ = ( *! )
module C = Models_common
module Gen = Cortex_ds.Gen
module Nonlinear = Cortex_tensor.Nonlinear

let gates = [ "i"; "o"; "u"; "f" ]

let program ~hidden ~vocab ~kind ~max_children ~(variant : C.variant) =
  let x_ops =
    match variant with
    | C.Full ->
      List.map
        (fun g ->
          op ("x" ^ g) ~precompute:true
            ~axes:[ ("i", hidden) ]
            (C.matvec ~w:("Wx" ^ g) ~x:(C.emb_x ~emb:"Emb") ~hidden))
        gates
    | C.Recursive_only -> []
  in
  let xref g =
    match variant with
    | C.Full -> Some (Temp ("x" ^ g, [ IAxis "i" ]))
    | C.Recursive_only -> None
  in
  let hsum_over idx = Temp ("hsum", idx) in
  let gate_op name nl =
    op name
      ~axes:[ ("i", hidden) ]
      (C.gate ?x:(xref name) ~u:("U" ^ name) ~over:hsum_over ~bias:("b" ^ name) ~hidden nl)
  in
  let x_params =
    match variant with
    | C.Full ->
      ("Emb", [ vocab +! 1; hidden ])
      :: List.map (fun g -> ("Wx" ^ g, [ hidden; hidden ])) gates
    | C.Recursive_only -> []
  in
  {
    name = "treelstm";
    kind;
    max_children;
    params =
      x_params
      @ List.concat_map
          (fun g -> [ ("U" ^ g, [ hidden; hidden ]); ("b" ^ g, [ hidden ]) ])
          gates;
    rec_ops =
      x_ops
      @ [
          op "hsum"
            ~axes:[ ("i", hidden) ]
            (ChildSum (ChildState ("h", Current, [ IAxis "i" ])));
          gate_op "i" Nonlinear.Sigmoid;
          gate_op "o" Nonlinear.Sigmoid;
          gate_op "u" Nonlinear.Tanh;
          op "fc"
            ~axes:[ ("i", hidden) ]
            (ChildSum
               (C.gate ?x:(xref "f") ~u:"Uf"
                  ~over:(fun idx -> ChildState ("h", Current, idx))
                  ~bias:"bf" ~hidden Nonlinear.Sigmoid
               * ChildState ("c", Current, [ IAxis "i" ])));
          op "c" ~axes:[ ("i", hidden) ]
            ((Temp ("i", [ IAxis "i" ]) * Temp ("u", [ IAxis "i" ])) + Temp ("fc", [ IAxis "i" ]));
          op "h" ~axes:[ ("i", hidden) ]
            (Temp ("o", [ IAxis "i" ]) * tanh_ (Temp ("c", [ IAxis "i" ])));
        ];
    leaf_ops = None;
    states =
      [
        { st_name = "h"; st_op = "h"; st_init = Zero };
        { st_name = "c"; st_op = "c"; st_init = Zero };
      ];
    outputs = [ "h" ];
  }

(* The N-ary TreeLSTM of Tai et al. §3.2 (binary form): separate U
   matrices per child position for each gate, and a per-position forget
   gate f_k = sigmoid(x_f + U_f_k . h_k + b_f).  Exercises fixed-child
   references where the child-sum variant exercises ChildSum. *)
let nary_program ~hidden ~vocab ~(variant : C.variant) =
  let x_ops =
    match variant with
    | C.Full ->
      List.map
        (fun g ->
          op ("x" ^ g) ~precompute:true
            ~axes:[ ("i", hidden) ]
            (C.matvec ~w:("Wx" ^ g) ~x:(C.emb_x ~emb:"Emb") ~hidden))
        gates
    | C.Recursive_only -> []
  in
  let xref g =
    match variant with
    | C.Full -> Some (Temp ("x" ^ g, [ IAxis "i" ]))
    | C.Recursive_only -> None
  in
  let x_params =
    match variant with
    | C.Full ->
      ("Emb", [ vocab +! 1; hidden ])
      :: List.map (fun g -> ("Wx" ^ g, [ hidden; hidden ])) gates
    | C.Recursive_only -> []
  in
  let child_mv g k st =
    Sum
      ( "j",
        hidden,
        Param (Printf.sprintf "U%s%d" g k, [ IAxis "i"; IAxis "j" ])
        * ChildState (st, Child k, [ IAxis "j" ]) )
  in
  let gate_op name nl =
    let linear =
      child_mv name 0 "h" + child_mv name 1 "h" + Param ("b" ^ name, [ IAxis "i" ])
    in
    let linear = match xref name with Some x -> x + linear | None -> linear in
    op name ~axes:[ ("i", hidden) ] (Math (nl, linear))
  in
  let forget k =
    let linear = child_mv "f" k "h" + Param ("bf", [ IAxis "i" ]) in
    let linear = match xref "f" with Some x -> x + linear | None -> linear in
    Math (Nonlinear.Sigmoid, linear) * ChildState ("c", Child k, [ IAxis "i" ])
  in
  {
    name = "narytreelstm";
    kind = Cortex_ds.Structure.Tree;
    max_children = 2;
    params =
      x_params
      @ List.concat_map
          (fun g ->
            [ ("U" ^ g ^ "0", [ hidden; hidden ]); ("U" ^ g ^ "1", [ hidden; hidden ]);
              ("b" ^ g, [ hidden ]) ])
          [ "i"; "o"; "u"; "f" ];
    rec_ops =
      x_ops
      @ [
          gate_op "i" Nonlinear.Sigmoid;
          gate_op "o" Nonlinear.Sigmoid;
          gate_op "u" Nonlinear.Tanh;
          op "fc" ~axes:[ ("i", hidden) ] (forget 0 + forget 1);
          op "c" ~axes:[ ("i", hidden) ]
            ((Temp ("i", [ IAxis "i" ]) * Temp ("u", [ IAxis "i" ])) + Temp ("fc", [ IAxis "i" ]));
          op "h" ~axes:[ ("i", hidden) ]
            (Temp ("o", [ IAxis "i" ]) * tanh_ (Temp ("c", [ IAxis "i" ])));
        ];
    leaf_ops = None;
    states =
      [
        { st_name = "h"; st_op = "h"; st_init = Zero };
        { st_name = "c"; st_op = "c"; st_init = Zero };
      ];
    outputs = [ "h" ];
  }

let nary_spec ?(vocab = Gen.vocab_size) ?(variant = C.Full) ~hidden () =
  let program = nary_program ~hidden ~vocab ~variant in
  {
    C.name = "NaryTreeLSTM";
    program;
    init_params =
      (fun rng ->
        C.make_params ~specs:program.params
          ~zero_rows:(if variant = C.Full then [ ("Emb", vocab) ] else [])
          rng);
    dataset = (fun rng ~batch -> Gen.sst_batch rng ~vocab ~batch ());
    refactor_publish = [];
    refactor_removes_barrier = true;
    block_local_unroll = false;
  }

let spec ?(vocab = Gen.vocab_size) ?(variant = C.Full) ?(sequence = false) ?(seq_len = 100)
    ~hidden () =
  let kind, max_children =
    if sequence then (Cortex_ds.Structure.Sequence, 1) else (Cortex_ds.Structure.Tree, 2)
  in
  let program = program ~hidden ~vocab ~kind ~max_children ~variant in
  let program = { program with name = (if sequence then "lstm" else "treelstm") } in
  {
    C.name = (if sequence then "LSTM" else "TreeLSTM");
    program;
    init_params =
      (fun rng ->
        C.make_params ~specs:program.params
          ~zero_rows:(if variant = C.Full then [ ("Emb", vocab) ] else [])
          rng);
    dataset =
      (fun rng ~batch ->
        if sequence then
          Cortex_ds.Structure.merge
            (List.init batch (fun _ -> Gen.sequence rng ~vocab ~len:seq_len ()))
        else Gen.sst_batch rng ~vocab ~batch ());
    refactor_publish = [];
    refactor_removes_barrier = true;
    block_local_unroll = false;
  }
