(** Shared scaffolding for the model zoo (Table 2 of the paper).

    A {!t} bundles the RA program, a deterministic parameter
    initializer, the dataset generator the paper pairs with the model,
    and the model-specific schedule metadata consumed by the §7.4
    experiments (refactoring publication lists, block-local unrolling).

    Models come in two variants: [Full] includes the input
    matrix-vector products, hoisted to one upfront kernel exactly as the
    GRNN-style schedules do (§7.1); [Recursive_only] drops the input
    terms — the "recursive portion" used for the Cavs comparison and
    Fig. 7. *)

open Cortex_ra

type variant = Full | Recursive_only

type t = {
  name : string;
  program : Ra.t;
  init_params : Cortex_util.Rng.t -> string -> Cortex_tensor.Tensor.t;
      (** Builds the whole parameter table on first use per generator;
          embedding tables have their null-word row zeroed. *)
  dataset : Cortex_util.Rng.t -> batch:int -> Cortex_ds.Structure.t;
  refactor_publish : string list;
  refactor_removes_barrier : bool;
      (** §7.4: whether recursive refactoring actually removes the
          inter-phase barrier for this cell *)
  block_local_unroll : bool;
}

val make_params :
  specs:(string * int list) list ->
  zero_rows:(string * int) list ->
  Cortex_util.Rng.t ->
  string ->
  Cortex_tensor.Tensor.t
(** Uniform [-0.35, 0.35) initialization, memoized per call chain:
    partially apply to an rng to obtain the resolver.  [zero_rows]
    zeroes row [r] of the named rank >= 1 tensors (null-word embedding
    rows). *)

val matvec : w:string -> x:(Ra.ridx list -> Ra.rexpr) -> hidden:int -> Ra.rexpr
(** [sum_j w[i,j] * x[j]] over output axis ["i"]. *)

val emb_x : emb:string -> Ra.ridx list -> Ra.rexpr
(** [emb[payload, idx]]: the node's embedded input. *)

val gate :
  ?x:Ra.rexpr ->
  u:string ->
  over:(Ra.ridx list -> Ra.rexpr) ->
  bias:string ->
  hidden:int ->
  Cortex_tensor.Nonlinear.kind ->
  Ra.rexpr
(** [nl (x + U . over + bias[i])] — the standard RNN gate body over
    output axis ["i"] with reduction axis ["j"]. *)
