(** Child-sum TreeGRU and its §7.4 simplification.

    The GRU cell has two barrier-separated phases per dynamic batch: the
    candidate state's matrix-vector product consumes the reset-gated
    child-sum [rh], which is itself produced by a matrix-vector stage —
    a cross-lane dependence that needs a global synchronization in
    GRNN-style schedules.  Recursive refactoring (Fig. 10c) trades that
    barrier for publishing the phase-0 temporaries across the backedge:

    - full TreeGRU: [h = z.hsum + (1-z).hc] — the deferred combine needs
      the child's [z] and child-sum [hsum] too, so the saving washes out;
    - SimpleTreeGRU: [h = (1-z).hc] — only [z] must be published, and
      refactoring wins ~25%.

    With [sequence = true] this is the sequential GRU of Fig. 9. *)

val spec :
  ?vocab:int ->
  ?variant:Models_common.variant ->
  ?simple:bool ->
  ?sequence:bool ->
  ?seq_len:int ->
  hidden:int ->
  unit ->
  Models_common.t
