open Cortex_ra
open Ra

(* [open Ra] shadows arithmetic with rexpr builders; restore the integer
   operators for shape bookkeeping. *)
let ( +! ) = Stdlib.( + )
let ( *! ) = Stdlib.( * )
let _ = ( +! )
let _ = ( *! )
module C = Models_common
module Gen = Cortex_ds.Gen

let program ~hidden ~cells ~(variant : C.variant) =
  let x_term, x_ops, x_params =
    match variant with
    | C.Full ->
      ( Temp ("xw", [ IAxis "i" ]),
        [
          op "xw" ~precompute:true
            ~axes:[ ("i", hidden) ]
            (C.matvec ~w:"Wx" ~x:(C.emb_x ~emb:"X") ~hidden);
        ],
        [ ("X", [ cells; hidden ]); ("Wx", [ hidden; hidden ]) ] )
    | C.Recursive_only ->
      (C.emb_x ~emb:"X" [ IAxis "i" ], [], [ ("X", [ cells; hidden ]) ])
  in
  {
    name = "dagrnn";
    kind = Cortex_ds.Structure.Dag;
    max_children = 2;
    params = x_params @ [ ("U", [ hidden; hidden ]); ("b", [ hidden ]) ];
    rec_ops =
      x_ops
      @ [
          op "cs" ~axes:[ ("i", hidden) ]
            (ChildSum (ChildState ("h", Current, [ IAxis "i" ])));
          op "h" ~axes:[ ("i", hidden) ]
            (tanh_
               (x_term
               + C.matvec ~w:"U" ~x:(fun idx -> Temp ("cs", idx)) ~hidden
               + Param ("b", [ IAxis "i" ])));
        ];
    leaf_ops = None;
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let spec ?(rows = 10) ?(cols = 10) ?(variant = C.Full) ~hidden () =
  let program = program ~hidden ~cells:(rows *! cols) ~variant in
  {
    C.name = "DAG-RNN";
    program;
    init_params = (fun rng -> C.make_params ~specs:program.params ~zero_rows:[] rng);
    dataset = (fun rng ~batch -> ignore rng; Gen.grid_batch ~batch ~rows ~cols);
    refactor_publish = [];
    refactor_removes_barrier = true;
    block_local_unroll = false;
  }
