(** TreeFC — the benchmarking model of Looks et al. (2017), Table 2.

    A single fully-connected layer applied at every node over the
    children's hidden states, [h = relu(Wl.h_left + Wr.h_right + b)];
    leaves are embedding lookups.  Evaluated on perfect binary trees of
    height 7.  Without specialization the lowered code keeps the §5.2
    conditional operator (a per-node leaf check inside the batched
    loop). *)

val spec : ?height:int -> ?vocab:int -> hidden:int -> unit -> Models_common.t
