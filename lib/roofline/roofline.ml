type quantities = { flops : float; bytes : float; intensity : float }

let fi = float_of_int

(* F = B * N * (4*H*H + H): a matrix-vector product over the
   concatenated children (2H -> H counts 4*H^2 with multiply-add) plus
   the bias. *)
let flops ~n ~b ~h =
  fi b *. fi n *. ((4.0 *. fi h *. fi h) +. fi h)

let make ~n ~b ~h bytes =
  let f = flops ~n ~b ~h in
  { flops = f; bytes; intensity = f /. bytes }

(* Fig. 14's byte counts, 4 bytes per element. *)

let cortex ~n ~b ~h =
  let h' = fi h and n' = fi n and b' = fi b in
  (* Model parameters (matrix W: 2H*H as two H*H reads, bias H) read
     once and cached; per node: read both children's states, write the
     result. *)
  let bytes = 4.0 *. (((2.0 *. h' *. h') +. h') +. (b' *. n' *. 3.0 *. h')) in
  make ~n ~b ~h bytes

let dynet ~n ~b ~h =
  let h' = fi h and n' = fi n and b' = fi b in
  let levels = Float.max 1.0 (Float.round (log (n' +. 1.0) /. log 2.0)) in
  (* Parameters re-read for every dynamic batch (one per level); per
     node: children states gathered into contiguous scratch (read +
     write) then read by the kernel, and the result written back. *)
  let param = levels *. ((2.0 *. h' *. h') +. h') in
  let states = b' *. n' *. 5.0 *. h' in
  make ~n ~b ~h (4.0 *. (param +. states))

let pytorch ~n ~b ~h =
  let h' = fi h and n' = fi n and b' = fi b in
  (* One kernel per node: weights + bias + operand states + result all
     cross the memory bus every call. *)
  let per_node = (2.0 *. h' *. h') +. h' +. (3.0 *. h') in
  make ~n ~b ~h (4.0 *. (b' *. n' *. per_node))

let asymptotic_cortex ~b ~n0 = fi b *. fi n0 /. ((3.0 *. fi b) +. 2.0)

let asymptotic_dynet ~b ~n0 =
  fi b *. fi n0 /. ((5.0 *. fi b) +. (8.0 *. (log (fi n0) /. log 2.0)))

let asymptotic_pytorch () = 0.5

(* Machine-level lower bound used by the tuner to prune schedule
   candidates: no schedule can beat peak compute or the demanded
   off-chip traffic at full bandwidth. *)
let lower_bound_us ~flops ~bytes ~peak_flops ~mem_bw =
  Float.max (flops /. peak_flops) (bytes /. mem_bw)
