(** Appendix C: roofline operational-intensity analysis of TreeFC.

    For a batch of [b] trees of [n] nodes each with hidden size [h],
    the model performs [F = b*n*(4*h^2 + h)] FLOPs in every framework;
    what differs is the bytes moved to/from off-chip memory.  The
    operational intensity [O = F / B] quantifies exploited reuse:
    [O_cortex > O_dynet > O_pytorch] (Fig. 14). *)

type quantities = {
  flops : float;  (** F *)
  bytes : float;  (** B_framework *)
  intensity : float;  (** O = F / B *)
}

val flops : n:int -> b:int -> h:int -> float

val cortex : n:int -> b:int -> h:int -> quantities
(** Weights and bias read once (persisted); hidden states touched once
    per edge. *)

val dynet : n:int -> b:int -> h:int -> quantities
(** Weights re-read for every dynamic batch (one per tree level =
    [log2] of the node count for perfect trees); states + contiguity
    copies. *)

val pytorch : n:int -> b:int -> h:int -> quantities
(** Every operand spills to global memory around each per-node kernel
    call. *)

val asymptotic_cortex : b:int -> n0:int -> float
(** The paper's closed form under [n ~ h = n0 >> b >= 1]:
    [O ~ b*n0 / (3b + 2)]. *)

val asymptotic_dynet : b:int -> n0:int -> float
(** [O ~ b*n0 / (5b + 8*log2 n0)]. *)

val asymptotic_pytorch : unit -> float
(** [~ 0.5]. *)

val lower_bound_us :
  flops:float -> bytes:float -> peak_flops:float -> mem_bw:float -> float
(** [max(flops / peak_flops, bytes / mem_bw)]: the latency floor any
    schedule of a program with these counts must respect on a machine
    with these peaks.  The two-level tuner prunes a schedule family
    when even this bound cannot beat the best latency found so far. *)
