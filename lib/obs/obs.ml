module C = Chrome_trace

type clock = Measured | Logical

type domain = Wall | Sim

(* Spans are stored complete (both endpoints known) and compiled into
   balanced begin/end pairs at export time. *)
type span = {
  sp_track : string;
  sp_name : string;
  sp_start : float;
  sp_end : float;
  sp_args : (string * C.value) list;
  sp_seq : int;
}

type inst = {
  in_track : string;
  in_name : string;
  in_ts : float;
  in_args : (string * C.value) list;
  in_seq : int;
}

type t = {
  clk : clock;
  t0 : float;  (* wall origin, so Measured timestamps start near 0 *)
  mutable tick : float;
  mutable spans : span list;  (* reversed record order *)
  mutable instants : inst list;
  mutable tracks : (string * domain) list;  (* reversed first-use order *)
  mutable seq : int;
  mutable sim_lo : float;
  mutable sim_hi : float;
  m : Metrics.t;
}

let create ?(clock = Measured) () =
  {
    clk = clock;
    t0 = Unix.gettimeofday ();
    tick = 0.0;
    spans = [];
    instants = [];
    tracks = [];
    seq = 0;
    sim_lo = infinity;
    sim_hi = neg_infinity;
    m = Metrics.create ();
  }

let clock t = t.clk
let metrics t = t.m

let now_us t =
  match t.clk with
  | Measured -> (Unix.gettimeofday () -. t.t0) *. 1e6
  | Logical ->
    t.tick <- t.tick +. 1.0;
    t.tick

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let register_track t track domain =
  if not (List.mem_assoc track t.tracks) then t.tracks <- (track, domain) :: t.tracks

let add_span t ~domain ~track ~args name start_us end_us =
  register_track t track domain;
  if domain = Sim then begin
    t.sim_lo <- Float.min t.sim_lo start_us;
    t.sim_hi <- Float.max t.sim_hi end_us
  end;
  t.spans <-
    { sp_track = track; sp_name = name; sp_start = start_us; sp_end = end_us;
      sp_args = args; sp_seq = next_seq t }
    :: t.spans

let wall_span obs ~track ?(args = []) name f =
  match obs with
  | None -> f ()
  | Some t ->
    let start = now_us t in
    let r = f () in
    let finish = now_us t in
    add_span t ~domain:Wall ~track ~args name start finish;
    r

let sim_span obs ~track ?(args = []) ~name ~start_us ~end_us () =
  match obs with
  | None -> ()
  | Some t ->
    if end_us < start_us then invalid_arg "Obs.sim_span: end before start";
    add_span t ~domain:Sim ~track ~args name start_us end_us

let sim_instant obs ~track ?(args = []) ~name ~ts_us () =
  match obs with
  | None -> ()
  | Some t ->
    register_track t track Sim;
    t.sim_lo <- Float.min t.sim_lo ts_us;
    t.sim_hi <- Float.max t.sim_hi ts_us;
    t.instants <-
      { in_track = track; in_name = name; in_ts = ts_us; in_args = args;
        in_seq = next_seq t }
      :: t.instants

let incr obs ?by name = Option.iter (fun t -> Metrics.incr t.m ?by name) obs
let set_gauge obs name v = Option.iter (fun t -> Metrics.set t.m name v) obs
let observe obs name v = Option.iter (fun t -> Metrics.observe t.m name v) obs

let sim_bounds t =
  if t.sim_lo <= t.sim_hi then Some (t.sim_lo, t.sim_hi) else None

let snapshot obs = Option.map (fun t -> Metrics.snapshot t.m) obs

(* ---------- export ---------- *)

let wall_pid = 1
let sim_pid = 2

(* Compile one track's complete spans into balanced B/E pairs.  Spans
   are sorted outer-first ((start asc, end desc), ties broken by record
   order with the later-recorded — enclosing — span first, since a
   nested wall span returns before its parent) and emitted with a
   stack, so properly nested input yields a monotone, balanced event
   stream.  Improper overlap is a recording bug and is rejected. *)
let span_events ~cat ~pid ~tid spans =
  let spans =
    List.sort
      (fun a b ->
        match Float.compare a.sp_start b.sp_start with
        | 0 -> (
          match Float.compare b.sp_end a.sp_end with
          | 0 -> compare b.sp_seq a.sp_seq
          | c -> c)
        | c -> c)
      spans
  in
  let out = ref [] in
  let emit ph name ts args =
    out := C.event ~cat ~args ~name ~ph ~ts_us:ts ~pid ~tid () :: !out
  in
  let stack = ref [] in
  let pop_until limit =
    let rec go () =
      match !stack with
      | top :: rest when top.sp_end <= limit ->
        emit C.End top.sp_name top.sp_end [];
        stack := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  List.iter
    (fun s ->
      pop_until s.sp_start;
      (match !stack with
       | top :: _ when s.sp_end > top.sp_end ->
         invalid_arg
           (Printf.sprintf "Obs: spans %S and %S overlap without nesting"
              top.sp_name s.sp_name)
       | _ -> ());
      emit C.Begin s.sp_name s.sp_start s.sp_args;
      stack := s :: !stack)
    spans;
  pop_until infinity;
  List.rev !out

(* Merge a monotone event stream with instants sorted by timestamp,
   preserving monotonicity. *)
let merge_instants ~cat ~pid ~tid events instants =
  let instants =
    List.sort
      (fun a b ->
        match Float.compare a.in_ts b.in_ts with
        | 0 -> compare a.in_seq b.in_seq
        | c -> c)
      instants
  in
  let rec go acc evs ins =
    match (evs, ins) with
    | [], [] -> List.rev acc
    | [], i :: ins ->
      go (C.event ~cat ~args:i.in_args ~name:i.in_name ~ph:C.Instant ~ts_us:i.in_ts ~pid ~tid () :: acc) [] ins
    | e :: evs', _ when (match ins with [] -> true | i :: _ -> e.C.ev_ts_us <= i.in_ts) ->
      go (e :: acc) evs' ins
    | _, i :: ins ->
      go (C.event ~cat ~args:i.in_args ~name:i.in_name ~ph:C.Instant ~ts_us:i.in_ts ~pid ~tid () :: acc) evs ins
    | _ -> assert false
  in
  go [] events instants

let events t =
  let tracks = List.rev t.tracks in
  let domain_pid = function Wall -> wall_pid | Sim -> sim_pid in
  (* Stable per-process thread ids in first-use order. *)
  let tids = Hashtbl.create 8 in
  let next = Hashtbl.create 2 in
  List.iter
    (fun (name, dom) ->
      let pid = domain_pid dom in
      let n = Option.value (Hashtbl.find_opt next pid) ~default:1 in
      Hashtbl.replace next pid (n + 1);
      Hashtbl.replace tids name n)
    tracks;
  let has dom = List.exists (fun (_, d) -> d = dom) tracks in
  let meta =
    (if has Wall then [ C.process_name ~pid:wall_pid "compile (wall clock)" ] else [])
    @ (if has Sim then [ C.process_name ~pid:sim_pid "serve (simulated clock)" ] else [])
    @ List.map
        (fun (name, dom) ->
          C.thread_name ~pid:(domain_pid dom) ~tid:(Hashtbl.find tids name) name)
        tracks
  in
  let spans = List.rev t.spans in
  let instants = List.rev t.instants in
  let body =
    List.concat_map
      (fun (name, dom) ->
        let pid = domain_pid dom in
        let tid = Hashtbl.find tids name in
        let cat = match dom with Wall -> "wall" | Sim -> "sim" in
        let track_spans = List.filter (fun s -> s.sp_track = name) spans in
        let track_insts = List.filter (fun i -> i.in_track = name) instants in
        merge_instants ~cat ~pid ~tid (span_events ~cat ~pid ~tid track_spans) track_insts)
      tracks
  in
  meta @ body

let to_json t = C.to_json (events t)

let write_json t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_json t))

let reset t =
  t.tick <- 0.0;
  t.spans <- [];
  t.instants <- [];
  t.tracks <- [];
  t.seq <- 0;
  t.sim_lo <- infinity;
  t.sim_hi <- neg_infinity;
  Metrics.reset t.m
