module CT = Chrome_trace

(* A sim-clock occurrence: a span opening or a point event.  End events
   are skipped (their Begin already marked the earliest instant) and so
   is metadata. *)
let sim_occurrence (e : CT.event) =
  e.CT.ev_cat = "sim"
  && match e.CT.ev_ph with CT.Begin | CT.Instant -> true | CT.End | CT.Metadata -> false

let first_sim ~name events =
  List.fold_left
    (fun acc (e : CT.event) ->
      if sim_occurrence e && e.CT.ev_name = name then
        match acc with
        | Some t when t <= e.CT.ev_ts_us -> acc
        | _ -> Some e.CT.ev_ts_us
      else acc)
    None events

let sim_names events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : CT.event) ->
      if sim_occurrence e then
        Hashtbl.replace tbl e.CT.ev_name
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.CT.ev_name)))
    events;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

type detection = No_damage | Undetected | Lead of float | Lagged of float

let detect ~signals ~damage events =
  match damage with
  | None -> No_damage
  | Some damage_us ->
    let first =
      List.fold_left
        (fun acc name ->
          match (acc, first_sim ~name events) with
          | acc, None -> acc
          | None, some -> some
          | Some a, Some b -> Some (Float.min a b))
        None signals
    in
    (match first with
     | None -> Undetected
     | Some t when t <= damage_us -> Lead (damage_us -. t)
     | Some t -> Lagged (t -. damage_us))

let detection_to_string = function
  | No_damage -> "none"
  | Undetected -> "undetected"
  | Lead us -> Printf.sprintf "lead %.1fus" us
  | Lagged us -> Printf.sprintf "lag %.1fus" us
