(** The observability handle: a span tracer over two clocks plus a
    metrics registry, exportable as Chrome trace-event JSON.

    Cortex's serving engine runs on a {e simulated} microsecond clock
    (arrivals, device busy windows, retries, failovers) while its
    compiler and inspector run on the {e host wall clock} (lowering
    passes in [Lower], linearizer runs in [Shape_cache]).  One [Obs.t]
    records spans from both domains on named tracks, keeps a
    {!Metrics.t} registry next to them, and exports everything as one
    Chrome trace: wall-clock tracks under the ["compile (wall clock)"]
    process, simulated tracks (one per device, plus the request arrival
    track and the enclosing drain span) under ["serve (simulated
    clock)"].

    {b Zero interference.}  The handle is passed as an option
    everywhere ([Engine.create ?obs], [Runtime.compile ?obs], ...); the
    default [None] path records nothing and pays nothing.  Recording
    only ever {e reads} the simulation's values — it never feeds a
    measurement back into a decision — so a drain with [obs] installed
    produces bitwise-identical results and an identical summary to the
    same drain without it (pinned by the zero-interference property
    test).

    {b Determinism.}  Simulated-clock spans are deterministic whenever
    the drain is (chaos mode).  Wall-clock spans measure the real host
    by default ({!Measured}); for byte-diffable traces, create the
    handle with the {!Logical} clock — every clock read then returns
    the next tick of a monotone counter, so span {e ordering} survives
    but two identical runs serialize identically (what CI diffs).

    One handle records one serving drain: device clocks restart at each
    drain, so profiling a second drain into the same handle would break
    per-track monotonicity.  {!reset} the handle (or create a fresh
    one) between profiled drains. *)

(** How wall-clock spans are timestamped. *)
type clock =
  | Measured  (** real host time ([Unix.gettimeofday]) *)
  | Logical
      (** a monotone tick counter: deterministic, order-preserving,
          meaningless durations — for byte-diffable traces *)

type t

val create : ?clock:clock -> unit -> t
(** A fresh handle (default {!Measured}). *)

val clock : t -> clock
val metrics : t -> Metrics.t

(** {2 Recording}

    [track] names the horizontal lane the event lands on (["compile"],
    ["inspector"], ["device 0"], ...).  Tracks are created on first
    use.  Within one track, {b spans must be sequential or properly
    nested} — the exporter emits begin/end pairs and {!Validate}
    rejects overlap. *)

val wall_span :
  t option ->
  track:string ->
  ?args:(string * Chrome_trace.value) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [wall_span obs ~track name f] runs [f ()] inside a wall-clock span
    (begin/end read the handle's clock).  [None] just runs [f] — call
    sites stay branch-free.  Exceptions propagate; the span is recorded
    only on normal return. *)

val sim_span :
  t option ->
  track:string ->
  ?args:(string * Chrome_trace.value) list ->
  name:string ->
  start_us:float ->
  end_us:float ->
  unit ->
  unit
(** Record a complete simulated-clock span with explicit endpoints (the
    serving engine's device windows).  Requires [end_us >= start_us]. *)

val sim_instant :
  t option ->
  track:string ->
  ?args:(string * Chrome_trace.value) list ->
  name:string ->
  ts_us:float ->
  unit ->
  unit
(** Record a simulated-clock point event (request arrivals). *)

val incr : t option -> ?by:int -> string -> unit
val set_gauge : t option -> string -> float -> unit
val observe : t option -> string -> float -> unit
(** Metrics shorthands that are no-ops on [None]. *)

val sim_bounds : t -> (float * float) option
(** Least and greatest simulated timestamp recorded so far ([None] when
    no sim event was recorded) — what the engine stamps its enclosing
    ["drain"] span with. *)

val snapshot : t option -> Metrics.snapshot option
(** [Metrics.snapshot] of the registry, [None] on [None]. *)

(** {2 Export} *)

val events : t -> Chrome_trace.event list
(** The recorded profile as a deterministic Chrome event list: process
    and track metadata first, then per track (in first-use order) the
    balanced begin/end sequence of its spans merged with its instants
    in timestamp order.  Raises [Invalid_argument] if some track's
    spans overlap without nesting (a recording bug — the engine and
    compiler produce sequential-or-nested spans by construction). *)

val to_json : t -> string
(** {!events} serialized canonically ({!Chrome_trace.to_json}) — with a
    {!Logical} clock, byte-identical across identical runs. *)

val write_json : t -> string -> unit
(** {!to_json} written to a file. *)

val reset : t -> unit
(** Drop all spans, instants and metrics; the logical clock restarts. *)
