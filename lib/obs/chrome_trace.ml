type phase = Begin | End | Instant | Metadata

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts_us : float;
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * value) list;
}

let event ?(cat = "") ?(args = []) ~name ~ph ~ts_us ~pid ~tid () =
  { ev_name = name; ev_cat = cat; ev_ph = ph; ev_ts_us = ts_us; ev_pid = pid;
    ev_tid = tid; ev_args = args }

let process_name ~pid name =
  event ~name:"process_name" ~ph:Metadata ~ts_us:0.0 ~pid ~tid:0
    ~args:[ ("name", Str name) ] ()

let thread_name ~pid ~tid name =
  event ~name:"thread_name" ~ph:Metadata ~ts_us:0.0 ~pid ~tid
    ~args:[ ("name", Str name) ] ()

(* ---------- serialization ---------- *)

let phase_to_string = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Metadata -> "M"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One fixed float format for every float in the file: plain decimal
   (JSON has no infinities, and %h-style hex floats are not JSON), with
   enough digits to round-trip the sub-microsecond part. *)
let float_to_json v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let value_to_json = function
  | Int i -> string_of_int i
  | Float f -> float_to_json f
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let event_to_json e =
  let args =
    match e.ev_args with
    | [] -> ""
    | args ->
      Printf.sprintf ",\"args\":{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (value_to_json v)) args))
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d%s}"
    (escape e.ev_name) (escape e.ev_cat) (phase_to_string e.ev_ph)
    (float_to_json e.ev_ts_us) e.ev_pid e.ev_tid args

let to_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_to_json e))
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* ---------- parsing ---------- *)

(* A minimal recursive-descent JSON parser — just enough for trace-event
   documents, so `cortex validate-trace` needs no external dependency. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           (* Keep it simple: non-ASCII escapes round-trip as '?'. *)
           Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
         | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); J_obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); J_obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); J_arr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); J_arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> parse_literal "true" (J_bool true)
    | Some 'f' -> parse_literal "false" (J_bool false)
    | Some 'n' -> parse_literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let phase_of_string = function
  | "B" -> Some Begin
  | "E" -> Some End
  | "i" | "I" -> Some Instant
  | "M" -> Some Metadata
  | _ -> None

let event_of_json j =
  match j with
  | J_obj fields ->
    let str k = match List.assoc_opt k fields with Some (J_str s) -> Some s | _ -> None in
    let num k = match List.assoc_opt k fields with Some (J_num f) -> Some f | _ -> None in
    let ph =
      match str "ph" with
      | None -> Error "event missing \"ph\""
      | Some p -> (match phase_of_string p with Some ph -> Ok (Some ph) | None -> Ok None)
    in
    (match ph with
     | Error e -> Error e
     | Ok None -> Ok None (* unmodeled phase: skip *)
     | Ok (Some ph) ->
       (match str "name", num "ts" with
        | None, _ -> Error "event missing \"name\""
        | _, None -> Error "event missing \"ts\""
        | Some name, Some ts ->
          let args =
            match List.assoc_opt "args" fields with
            | Some (J_obj kvs) ->
              List.filter_map
                (fun (k, v) ->
                  match v with
                  | J_str s -> Some (k, Str s)
                  | J_bool b -> Some (k, Bool b)
                  | J_num f ->
                    if Float.is_integer f && Float.abs f <= 1e15 then
                      Some (k, Int (int_of_float f))
                    else Some (k, Float f)
                  | _ -> None)
                kvs
            | _ -> []
          in
          Ok
            (Some
               {
                 ev_name = name;
                 ev_cat = Option.value (str "cat") ~default:"";
                 ev_ph = ph;
                 ev_ts_us = ts;
                 ev_pid = (match num "pid" with Some p -> int_of_float p | None -> 0);
                 ev_tid = (match num "tid" with Some t -> int_of_float t | None -> 0);
                 ev_args = args;
               })))
  | _ -> Error "trace event is not an object"

let parse text =
  let events_of items =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> (
        match event_of_json j with
        | Error e -> Error e
        | Ok None -> go acc rest
        | Ok (Some ev) -> go (ev :: acc) rest)
    in
    go [] items
  in
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | J_arr items -> events_of items
  | J_obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (J_arr items) -> events_of items
    | _ -> Error "no \"traceEvents\" array in trace object")
  | _ -> Error "trace document is neither an array nor an object"
