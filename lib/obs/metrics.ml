module Stats = Cortex_util.Stats

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t;  (* reversed observation order *)
}

let create () =
  { counters = Hashtbl.create 16; gauges = Hashtbl.create 16; series = Hashtbl.create 16 }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let set t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let observe t name v =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.replace t.series name (ref [ v ])

type hist_summary = {
  hs_count : int;
  hs_mean : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_max : float;
  hs_hist : Stats.histogram;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let sorted_bindings tbl value =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])

let summarize xs =
  let lo = List.fold_left Float.min infinity xs in
  let hi = List.fold_left Float.max neg_infinity xs in
  {
    hs_count = List.length xs;
    hs_mean = Stats.mean xs;
    hs_p50 = Stats.p50 xs;
    hs_p90 = Stats.p90 xs;
    hs_p99 = Stats.p99 xs;
    hs_max = hi;
    hs_hist = Stats.histogram ~bins:8 ~lo ~hi xs;
  }

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters (fun r -> !r);
    gauges = sorted_bindings t.gauges (fun r -> !r);
    histograms = sorted_bindings t.series (fun r -> summarize (List.rev !r));
  }

let empty_snapshot = { counters = []; gauges = []; histograms = [] }

let render s =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "counter %-28s %d\n" name v))
    s.counters;
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "gauge   %-28s %.6g\n" name v))
    s.gauges;
  List.iter
    (fun (name, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "hist    %-28s count %d mean %.6g p50 %.6g p90 %.6g p99 %.6g max %.6g\n"
           name h.hs_count h.hs_mean h.hs_p50 h.hs_p90 h.hs_p99 h.hs_max);
      Buffer.add_string buf
        (Printf.sprintf "        %-28s %s\n" "" (Stats.histogram_to_string h.hs_hist)))
    s.histograms;
  Buffer.contents buf

let reset (t : t) =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.series
