(** Structural invariants of an exported trace, with typed rejections.

    A healthy Cortex profile satisfies three invariants {e by
    construction}, and this module re-checks them on the exported (or
    re-parsed) event list so CI can reject a regression in the exporter
    — or a hand-corrupted file — with a precise reason:

    - {b per-track monotonicity}: on each (pid, tid) track, timestamps
      never go backwards;
    - {b balanced nesting}: every [E] closes the most recent open [B]
      of the same name on its track, and every [B] is closed;
    - {b drain containment}: when the trace records a serving drain
      (the engine's enclosing ["drain"] span on its simulated-clock
      track), every simulated-clock event lies inside the union of the
      drain spans — window executions cannot leak past the drain's
      makespan.

    Both the test suite and [cortex validate-trace] (and therefore CI)
    run this same checker. *)

type error =
  | Non_monotone of { track : string; name : string; ts_us : float; prev_us : float }
      (** an event's timestamp precedes its predecessor's on the track *)
  | End_without_begin of { track : string; name : string; ts_us : float }
      (** an [E] with no open span on the track *)
  | Mismatched_end of { track : string; began : string; ended : string; ts_us : float }
      (** an [E] whose name differs from the innermost open [B] *)
  | Unclosed_begin of { track : string; name : string; ts_us : float }
      (** a [B] still open when the track ends *)
  | Outside_drain of { track : string; name : string; ts_us : float; lo_us : float; hi_us : float }
      (** a simulated-clock event outside the drain spans' union *)

val check : Chrome_trace.event list -> (unit, error) result
(** First violated invariant, or [Ok ()].  Metadata events are exempt
    from the timestamp checks; the containment check only applies when
    at least one ["drain"] span is present (a compile-only profile has
    none). *)

val error_to_string : error -> string
