module C = Chrome_trace

type error =
  | Non_monotone of { track : string; name : string; ts_us : float; prev_us : float }
  | End_without_begin of { track : string; name : string; ts_us : float }
  | Mismatched_end of { track : string; began : string; ended : string; ts_us : float }
  | Unclosed_begin of { track : string; name : string; ts_us : float }
  | Outside_drain of { track : string; name : string; ts_us : float; lo_us : float; hi_us : float }

let error_to_string = function
  | Non_monotone { track; name; ts_us; prev_us } ->
    Printf.sprintf "track %S: event %S at %g us precedes the previous event at %g us"
      track name ts_us prev_us
  | End_without_begin { track; name; ts_us } ->
    Printf.sprintf "track %S: end of %S at %g us with no open span" track name ts_us
  | Mismatched_end { track; began; ended; ts_us } ->
    Printf.sprintf "track %S: end of %S at %g us closes an open %S" track ended ts_us began
  | Unclosed_begin { track; name; ts_us } ->
    Printf.sprintf "track %S: span %S begun at %g us never ends" track name ts_us
  | Outside_drain { track; name; ts_us; lo_us; hi_us } ->
    Printf.sprintf
      "track %S: simulated event %S at %g us outside the drain makespan [%g, %g]"
      track name ts_us lo_us hi_us

exception Fail of error

(* Track display names from the thread_name metadata, "pid:tid"
   otherwise. *)
let track_names events =
  let names = Hashtbl.create 8 in
  List.iter
    (fun (e : C.event) ->
      if e.C.ev_ph = C.Metadata && e.C.ev_name = "thread_name" then
        match List.assoc_opt "name" e.C.ev_args with
        | Some (C.Str n) -> Hashtbl.replace names (e.C.ev_pid, e.C.ev_tid) n
        | _ -> ())
    events;
  fun pid tid ->
    match Hashtbl.find_opt names (pid, tid) with
    | Some n -> n
    | None -> Printf.sprintf "%d:%d" pid tid

let check events =
  let name_of = track_names events in
  let body = List.filter (fun (e : C.event) -> e.C.ev_ph <> C.Metadata) events in
  (* Group per (pid, tid), preserving file order within each track. *)
  let tracks = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (e : C.event) ->
      let key = (e.C.ev_pid, e.C.ev_tid) in
      match Hashtbl.find_opt tracks key with
      | Some r -> r := e :: !r
      | None ->
        Hashtbl.replace tracks key (ref [ e ]);
        order := key :: !order)
    body;
  let check_track (pid, tid) (evs : C.event list) =
    let track = name_of pid tid in
    let prev = ref neg_infinity in
    let stack = ref [] in
    List.iter
      (fun (e : C.event) ->
        if e.C.ev_ts_us < !prev then
          raise
            (Fail (Non_monotone { track; name = e.C.ev_name; ts_us = e.C.ev_ts_us; prev_us = !prev }));
        prev := e.C.ev_ts_us;
        match e.C.ev_ph with
        | C.Begin -> stack := (e.C.ev_name, e.C.ev_ts_us) :: !stack
        | C.End -> (
          match !stack with
          | [] ->
            raise (Fail (End_without_begin { track; name = e.C.ev_name; ts_us = e.C.ev_ts_us }))
          | (began, _) :: rest ->
            if began <> e.C.ev_name then
              raise
                (Fail (Mismatched_end { track; began; ended = e.C.ev_name; ts_us = e.C.ev_ts_us }));
            stack := rest)
        | C.Instant | C.Metadata -> ())
      evs;
    match !stack with
    | (name, ts) :: _ -> raise (Fail (Unclosed_begin { track; name; ts_us = ts }))
    | [] -> ()
  in
  let check_drain () =
    (* Union of the drain spans' extents; every simulated-clock event
       must land inside it. *)
    let lo = ref infinity and hi = ref neg_infinity in
    List.iter
      (fun (e : C.event) ->
        if e.C.ev_cat = "sim" && e.C.ev_name = "drain" then begin
          lo := Float.min !lo e.C.ev_ts_us;
          hi := Float.max !hi e.C.ev_ts_us
        end)
      body;
    if !lo <= !hi then
      List.iter
        (fun (e : C.event) ->
          if e.C.ev_cat = "sim" && (e.C.ev_ts_us < !lo || e.C.ev_ts_us > !hi) then
            raise
              (Fail
                 (Outside_drain
                    {
                      track = name_of e.C.ev_pid e.C.ev_tid;
                      name = e.C.ev_name;
                      ts_us = e.C.ev_ts_us;
                      lo_us = !lo;
                      hi_us = !hi;
                    })))
        body
  in
  try
    List.iter
      (fun key -> check_track key (List.rev !(Hashtbl.find tracks key)))
      (List.rev !order);
    check_drain ();
    Ok ()
  with Fail e -> Error e
