(** Read-side queries over a Chrome trace-event stream.

    {!Obs} writes spans; this module answers questions about them.  The
    FMECA campaign's detectability scoring needs exactly two: {e when
    did a named signal first appear on the simulated clock}, and {e was
    that before or after the first SLO-visible damage} (the
    ["slo_damage"] instant the engine stamps).  Both are pure functions
    of the event list, so a scan over a saved trace file gives the same
    answer as a scan over a live {!Obs.events} stream.

    Only [sim]-clock events count: wall-clock spans are host-dependent
    and would make detectability nondeterministic. *)

val first_sim : name:string -> Chrome_trace.event list -> float option
(** The earliest simulated timestamp of an event named [name] — a
    [Begin] span opening or an [Instant]; [None] when the name never
    appears on the sim clock. *)

val sim_names : Chrome_trace.event list -> (string * int) list
(** Inventory of the sim clock: each distinct [Begin]/[Instant] event
    name with its occurrence count, sorted by name.  What a campaign
    prints when asked {e which signals does this failure mode emit at
    all}. *)

type detection =
  | No_damage  (** the run hurt nothing; detectability is moot *)
  | Undetected
      (** damage occurred but none of the candidate signals ever fired *)
  | Lead of float
      (** a signal fired [lead] simulated microseconds {e before} (or
          exactly at) the first damage — the monitoring window an
          operator had *)
  | Lagged of float
      (** the first signal fired [lag] simulated microseconds {e after}
          the damage — monitoring only confirms what the SLO already
          shows *)

val detect :
  signals:string list -> damage:float option -> Chrome_trace.event list -> detection
(** Classify how observable a failure mode was: [damage] is the first
    SLO-visible damage time ([Engine.slo.slo_first_damage_us]), the
    [signals] are the event names that count as early warning (fault
    spans like ["abort"]/["transient"], degrade instants, …).  The
    earliest sim occurrence of any signal is compared against the
    damage instant. *)

val detection_to_string : detection -> string
(** ["none"], ["undetected"], ["lead 123.0us"], ["lag 45.0us"] — fixed
    format, diffable. *)
