(** Chrome trace-event JSON: the event model, a canonical serializer and
    a small parser.

    The {{:https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU}
    trace-event format} is the de-facto interchange for span profiles:
    [chrome://tracing], Perfetto and speedscope all open it.  This
    module keeps just the subset the observability layer emits —
    duration begin/end pairs ([B]/[E]), instants ([i]) and the metadata
    events that name processes and threads ([M]) — and serializes it
    {e canonically}: a fixed field order, a fixed float format and a
    deterministic event order, so two identical runs produce
    byte-identical files (the property CI diffs).

    The parser accepts both the bare-array form and the
    [{"traceEvents": [...]}] object form, and tolerates unknown fields
    and phases it does not model (skipping them), so externally produced
    traces can still be fed to {!Validate}. *)

type phase =
  | Begin  (** ["B"] — span opens at [ts_us] *)
  | End  (** ["E"] — the most recent unmatched [Begin] on the track closes *)
  | Instant  (** ["i"] — a point event *)
  | Metadata  (** ["M"] — names a process or thread *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Argument payloads ([args] in the JSON). *)

type event = {
  ev_name : string;
  ev_cat : string;  (** clock domain: ["wall"] or ["sim"] (or [""]) *)
  ev_ph : phase;
  ev_ts_us : float;
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * value) list;
}

val event :
  ?cat:string ->
  ?args:(string * value) list ->
  name:string ->
  ph:phase ->
  ts_us:float ->
  pid:int ->
  tid:int ->
  unit ->
  event

val process_name : pid:int -> string -> event
(** The [M] event naming a process. *)

val thread_name : pid:int -> tid:int -> string -> event
(** The [M] event naming a thread (a track). *)

val to_json : event list -> string
(** The canonical serialization: a [{"traceEvents": [...]}] object, one
    event per line, fields in a fixed order, timestamps as [%.3f]
    microseconds.  Events are emitted in the given order — the caller
    (normally {!Obs.events}) is responsible for a deterministic order. *)

val parse : string -> (event list, string) result
(** Parse a trace-event JSON document (either form).  Unknown phases
    and fields are skipped; a malformed document or an event missing a
    required field is an [Error] with a human-readable reason. *)
