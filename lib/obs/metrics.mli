(** The metrics registry: named counters, gauges and histograms.

    Counters accumulate integer increments (requests completed, cache
    hits, retries), gauges hold the last written float (queue depth at
    drain, per-device utilization) and histogram metrics accumulate
    float observations (per-request latency, window sizes) that a
    {!snapshot} folds into count/mean/p50/p90/p99/max plus a
    fixed-bucket {!Cortex_util.Stats.histogram} fitted to the observed
    range.

    Snapshots are deterministic: every section is sorted by metric name
    and the histogram statistics are pure functions of the observed
    values, so two identical runs render byte-identical snapshots (the
    property the serving determinism tests pin). *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (creating it at 0), default [by] 1. *)

val set : t -> string -> float -> unit
(** Write a gauge (last write wins). *)

val observe : t -> string -> float -> unit
(** Append an observation to a histogram series. *)

(** Folded view of one histogram series. *)
type hist_summary = {
  hs_count : int;
  hs_mean : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_max : float;
  hs_hist : Cortex_util.Stats.histogram;
      (** 8 equal-width buckets fitted to the observed min..max *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * hist_summary) list;  (** sorted by name *)
}

val snapshot : t -> snapshot

val empty_snapshot : snapshot

val render : snapshot -> string
(** A deterministic multi-line text block ([counter name value] lines
    and so on) — what [cortex serve --metrics] prints and what the
    byte-identity tests compare. *)

val reset : t -> unit
(** Drop every metric. *)
