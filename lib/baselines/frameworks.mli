(** Execution-model simulators for the baseline frameworks of §7.

    Each baseline executes the same RA model, but the way the paper
    describes that framework actually executing it:

    - {b PyTorch}: eager, one vendor call per operator per node — no
      dynamic batching, no fusion; the input matrix-vector products are
      done upfront by one matmul call (§7.1);
    - {b DyNet}: builds a dataflow graph of operator nodes at runtime,
      runs its agenda-based automatic batching, copies operands into
      contiguous buffers before every batched vendor call, then issues
      the batched kernels level by level;
    - {b Cavs}: builds a per-vertex graph (cheaper construction),
      batches by level, and partially fuses: elementwise operators of a
      level collapse into one kernel, dense reductions stay vendor
      calls.

    Numerically all three compute exactly what the reference
    implementations compute (the test suite pins the semantics); what
    differs — and what these simulators price — is kernel granularity,
    framework overheads, and memory behaviour. *)

type t = Pytorch | Dynet | Cavs

val name : t -> string

type result = {
  total_us : float;  (** asynchronous end-to-end latency (Table 5 view) *)
  graph_us : float;  (** graph construction + dynamic batching *)
  memcpy_cpu_us : float;
  memcpy_gpu_us : float;
  device_compute_us : float;
  launch_us : float;
  kernel_calls : int;
  api_sync_us : float;
      (** CPU-side API time under synchronous profiling (Table 6 view) *)
  profiled_total_us : float;  (** Table 6's "Exe. time" *)
  memory_bytes : float;  (** peak device memory (Fig. 12) *)
  traffic_bytes : float;  (** bytes moved over the memory bus (Fig. 8) *)
}

val run :
  t ->
  backend:Cortex_backend.Backend.t ->
  Cortex_ra.Ra.t ->
  Cortex_linearizer.Linearizer.t ->
  result

val dynet_inference_memory :
  backend:Cortex_backend.Backend.t ->
  Cortex_ra.Ra.t ->
  Cortex_linearizer.Linearizer.t ->
  float
(** Peak memory of the modified DyNet that frees forward-pass
    intermediates as soon as they are dead (Fig. 12's
    "DyNet (inference)"). *)
