module Backend = Cortex_backend.Backend
module Linearizer = Cortex_linearizer.Linearizer
module Ra = Cortex_ra.Ra

type t = Pytorch | Dynet | Cavs

let name = function Pytorch -> "PyTorch" | Dynet -> "DyNet" | Cavs -> "Cavs"

type result = {
  total_us : float;
  graph_us : float;
  memcpy_cpu_us : float;
  memcpy_gpu_us : float;
  device_compute_us : float;
  launch_us : float;
  kernel_calls : int;
  api_sync_us : float;
  profiled_total_us : float;
  memory_bytes : float;
  traffic_bytes : float;
}

(* Framework cost constants (microseconds / bytes), calibrated against
   Table 6's measured breakdown for DyNet and Cavs. *)
(* Per *vendor-granularity* graph node (DyNet's graphs hold one node
   per affine/bias/activation/gather step). *)
let dynet_graph_cost_per_op_node = 0.04
let dynet_batching_cost_per_op_node = 0.06
let cavs_graph_cost_per_node = 3.2
let memcpy_cpu_cost_per_copy = 0.55
let memcpy_gpu_cost_per_call = 4.0
let host_copy_bw = 2.0e4 (* bytes/us for CPU-side staging copies *)

(* One batched vendor kernel: [instances] operator instances of
   per-instance work, executed together. *)
let kernel_time (be : Backend.t) ~flops ~global ~lanes =
  let occupancy = Float.min 1.0 (lanes /. be.Backend.width) in
  let occupancy = Float.max (occupancy ** be.Backend.vendor_occ_exponent) 1e-3 in
  let compute = flops /. (be.Backend.peak_flops *. be.Backend.vendor_efficiency *. occupancy) in
  let mem = global /. be.Backend.mem_bw in
  Float.max compute mem +. be.Backend.segment_latency_us

let level_widths (lin : Linearizer.t) =
  Array.map snd (Linearizer.internal_batches lin)

let avg_children (lin : Linearizer.t) =
  let internal = lin.Linearizer.num_nodes - lin.Linearizer.num_leaves in
  if internal = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 lin.Linearizer.num_children)
    /. float_of_int internal

(* Accumulator threading the per-kernel quantities. *)
type accum = {
  mutable compute : float;
  mutable launches : int;
  mutable calls : int;
  mutable copies_cpu : float;
  mutable copies_gpu : float;
  mutable copy_calls : int;
  mutable traffic : float;
}

let fresh () =
  {
    compute = 0.0;
    launches = 0;
    calls = 0;
    copies_cpu = 0.0;
    copies_gpu = 0.0;
    copy_calls = 0;
    traffic = 0.0;
  }

let emit_kernel be acc ~flops ~global ~lanes ~vendor_kernels =
  (* The vendor call count matters for launch/API overheads; the work is
     dominated by the main call, so charge the whole op's work once and
     small fixed times for the auxiliary calls. *)
  acc.traffic <- acc.traffic +. global;
  acc.compute <- acc.compute +. kernel_time be ~flops ~global ~lanes;
  (* Every vendor call pays the device-side minimum kernel time. *)
  acc.compute <-
    acc.compute +. (float_of_int vendor_kernels *. be.Backend.kernel_device_latency_us);
  acc.launches <- acc.launches + vendor_kernels;
  acc.calls <- acc.calls + vendor_kernels

let hidden_lanes (w : Workload.opw) = w.Workload.w_out_bytes /. 4.0

let run kind ~backend (ra : Ra.t) (lin : Linearizer.t) =
  let be = backend in
  let n = float_of_int lin.Linearizer.num_nodes in
  let leaves = float_of_int lin.Linearizer.num_leaves in
  let nc = avg_children lin in
  let internal = Workload.internal_ops ra ~avg_children:nc in
  let pre, rec_ops = List.partition (fun w -> w.Workload.w_precompute) internal in
  let leaf = Workload.leaf_ops ra in
  let widths = level_widths lin in
  let acc = fresh () in
  let graph_us = ref 0.0 in
  (* --- upfront input matrix multiplications --- *)
  (match kind with
   | Pytorch ->
     (* One matmul call per precompute operator over all nodes. *)
     List.iter
       (fun w ->
         emit_kernel be acc
           ~flops:(n *. w.Workload.w_flops)
           ~global:(n *. (w.Workload.w_out_bytes +. w.Workload.w_param_bytes) +. 4.0e5)
           ~lanes:(n *. hidden_lanes w)
           ~vendor_kernels:1)
       pre
   | Dynet | Cavs ->
     (* Their batching folds the input products into the per-level
        batched kernels below. *)
     ());
  (* --- leaves --- *)
  (match kind with
   | Pytorch ->
     List.iter
       (fun w ->
         for _ = 1 to int_of_float leaves do
           emit_kernel be acc ~flops:w.Workload.w_flops
             ~global:(w.Workload.w_out_bytes +. w.Workload.w_state_bytes +. w.Workload.w_param_bytes)
             ~lanes:(hidden_lanes w) ~vendor_kernels:1
         done)
       leaf
   | Dynet | Cavs ->
     (* One batched kernel set over the leaf level. *)
     let fused_elementwise = kind = Cavs in
     let mv, ew = List.partition (fun w -> w.Workload.w_matvec) leaf in
     List.iter
       (fun w ->
         emit_kernel be acc
           ~flops:(leaves *. w.Workload.w_flops)
           ~global:(leaves *. (w.Workload.w_out_bytes +. w.Workload.w_state_bytes) +. w.Workload.w_param_bytes)
           ~lanes:(leaves *. hidden_lanes w)
           ~vendor_kernels:w.Workload.w_vendor_kernels)
       mv;
     if ew <> [] then begin
       let flops = List.fold_left (fun a w -> a +. (leaves *. w.Workload.w_flops)) 0.0 ew in
       let global =
         List.fold_left
           (fun a w -> a +. (leaves *. (w.Workload.w_out_bytes +. w.Workload.w_state_bytes)))
           0.0 ew
       in
       let lanes = leaves *. hidden_lanes (List.hd ew) in
       if fused_elementwise then
         emit_kernel be acc ~flops ~global ~lanes ~vendor_kernels:1
       else
         List.iter
           (fun w ->
             emit_kernel be acc
               ~flops:(leaves *. w.Workload.w_flops)
               ~global:(leaves *. (w.Workload.w_out_bytes +. w.Workload.w_state_bytes))
               ~lanes:(leaves *. hidden_lanes w)
               ~vendor_kernels:w.Workload.w_vendor_kernels)
           ew
     end);
  (* --- internal levels --- *)
  let rec_and_pre =
    match kind with
    | Pytorch -> rec_ops
    | Dynet | Cavs -> pre @ rec_ops
  in
  Array.iter
    (fun width ->
      let w_f = float_of_int width in
      match kind with
      | Pytorch ->
        List.iter
          (fun w ->
            for _ = 1 to width do
              emit_kernel be acc ~flops:w.Workload.w_flops
                ~global:(w.Workload.w_out_bytes +. w.Workload.w_state_bytes +. w.Workload.w_param_bytes)
                ~lanes:(hidden_lanes w) ~vendor_kernels:1
            done)
          rec_and_pre
      | Dynet ->
        List.iter
          (fun w ->
            (* Contiguity copies: one staging copy per operand per node
               (Xu et al. 2018), plus the device-side copy. *)
            if w.Workload.w_state_bytes > 0.0 then begin
              acc.copies_cpu <-
                acc.copies_cpu
                +. (w_f *. memcpy_cpu_cost_per_copy)
                +. (w_f *. w.Workload.w_state_bytes /. host_copy_bw);
              acc.copies_gpu <-
                acc.copies_gpu
                +. memcpy_gpu_cost_per_call
                +. (w_f *. w.Workload.w_state_bytes /. be.Backend.mem_bw);
              acc.copy_calls <- acc.copy_calls + 1
            end;
            emit_kernel be acc
              ~flops:(w_f *. w.Workload.w_flops)
              ~global:(w_f *. (w.Workload.w_out_bytes +. w.Workload.w_state_bytes) +. w.Workload.w_param_bytes)
              ~lanes:(w_f *. hidden_lanes w)
              ~vendor_kernels:w.Workload.w_vendor_kernels)
          rec_and_pre
      | Cavs ->
        let mv, ew = List.partition (fun w -> w.Workload.w_matvec) rec_and_pre in
        List.iter
          (fun w ->
            if w.Workload.w_state_bytes > 0.0 then begin
              acc.copies_cpu <- acc.copies_cpu +. memcpy_cpu_cost_per_copy;
              acc.copies_gpu <-
                acc.copies_gpu
                +. memcpy_gpu_cost_per_call
                +. (w_f *. w.Workload.w_state_bytes /. be.Backend.mem_bw);
              acc.copy_calls <- acc.copy_calls + 1
            end;
            emit_kernel be acc
              ~flops:(w_f *. w.Workload.w_flops)
              ~global:(w_f *. (w.Workload.w_out_bytes +. w.Workload.w_state_bytes) +. w.Workload.w_param_bytes)
              ~lanes:(w_f *. hidden_lanes w)
              ~vendor_kernels:w.Workload.w_vendor_kernels)
          mv;
        if ew <> [] then begin
          let flops = List.fold_left (fun a w -> a +. (w_f *. w.Workload.w_flops)) 0.0 ew in
          let global =
            List.fold_left
              (fun a w -> a +. (w_f *. (w.Workload.w_out_bytes +. w.Workload.w_state_bytes)))
              0.0 ew
          in
          emit_kernel be acc ~flops ~global
            ~lanes:(w_f *. hidden_lanes (List.hd ew))
            ~vendor_kernels:1
        end)
    widths;
  (* --- framework-side graph work --- *)
  (match kind with
   | Pytorch -> graph_us := 0.0
   | Dynet ->
     let vendor_nodes =
       n
       *. float_of_int
            (List.fold_left
               (fun a (w : Workload.opw) -> a + w.Workload.w_vendor_kernels)
               0 internal)
     in
     graph_us :=
       vendor_nodes *. (dynet_graph_cost_per_op_node +. dynet_batching_cost_per_op_node)
   | Cavs -> graph_us := n *. cavs_graph_cost_per_node);
  let scale = be.Backend.framework_overhead_scale in
  graph_us := !graph_us *. scale;
  acc.copies_cpu <- acc.copies_cpu *. scale;
  let dispatch =
    match kind with
    | Pytorch -> float_of_int acc.calls *. be.Backend.dispatch_overhead_us *. scale
    | Dynet | Cavs -> 0.0
  in
  let launch_us = float_of_int acc.launches *. be.Backend.launch_overhead_us in
  let api_sync_us =
    float_of_int (acc.calls + acc.copy_calls) *. be.Backend.sync_call_overhead_us
  in
  let total_us =
    !graph_us +. dispatch +. acc.copies_cpu +. acc.copies_gpu +. launch_us +. acc.compute
  in
  let profiled_total_us =
    !graph_us +. acc.copies_cpu +. acc.copies_gpu +. api_sync_us +. acc.compute
  in
  (* --- memory (Fig. 12) --- *)
  let params_bytes =
    List.fold_left
      (fun a (_, dims) -> a +. (4.0 *. float_of_int (List.fold_left ( * ) 1 dims)))
      0.0 ra.Ra.params
  in
  let all_out = Workload.out_bytes_per_node internal in
  let state_out =
    List.fold_left
      (fun acc (st : Ra.state) ->
        match
          List.find_opt (fun (w : Workload.opw) -> w.Workload.w_name = st.Ra.st_op) internal
        with
        | Some w -> acc +. w.Workload.w_out_bytes
        | None -> acc)
      0.0 ra.Ra.states
  in
  let scratch =
    Array.fold_left
      (fun m width ->
        Float.max m
          (float_of_int width
          *. List.fold_left (fun a w -> a +. w.Workload.w_state_bytes) 0.0 rec_and_pre))
      0.0 widths
  in
  let memory_bytes =
    match kind with
    | Pytorch -> params_bytes +. (n *. state_out) +. (n *. all_out *. 0.15)
    | Dynet -> params_bytes +. (n *. all_out) +. scratch
    | Cavs -> params_bytes +. (n *. all_out *. 0.8) +. scratch
  in
  {
    total_us;
    graph_us = !graph_us;
    memcpy_cpu_us = acc.copies_cpu;
    memcpy_gpu_us = acc.copies_gpu;
    device_compute_us = acc.compute;
    launch_us;
    kernel_calls = acc.calls;
    api_sync_us;
    profiled_total_us;
    memory_bytes;
    traffic_bytes = acc.traffic;
  }

let dynet_inference_memory ~backend (ra : Ra.t) (lin : Linearizer.t) =
  ignore backend;
  let n = float_of_int lin.Linearizer.num_nodes in
  let nc = avg_children lin in
  let internal = Workload.internal_ops ra ~avg_children:nc in
  let params_bytes =
    List.fold_left
      (fun a (_, dims) -> a +. (4.0 *. float_of_int (List.fold_left ( * ) 1 dims)))
      0.0 ra.Ra.params
  in
  let all_out = Workload.out_bytes_per_node internal in
  let state_out =
    List.fold_left
      (fun acc (st : Ra.state) ->
        match
          List.find_opt (fun (w : Workload.opw) -> w.Workload.w_name = st.Ra.st_op) internal
        with
        | Some w -> acc +. w.Workload.w_out_bytes
        | None -> acc)
      0.0 ra.Ra.states
  in
  let widths = level_widths lin in
  let widest = Array.fold_left max 1 (if Array.length widths = 0 then [| 1 |] else widths) in
  (* States stay live for the parents; non-state temporaries live for
     the two widest levels plus the contiguity scratch. *)
  params_bytes +. (n *. state_out)
  +. (2.0 *. float_of_int widest *. all_out)
  +. (float_of_int widest
     *. List.fold_left (fun a w -> a +. w.Workload.w_state_bytes) 0.0 internal)
