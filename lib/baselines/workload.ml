open Cortex_ra
open Ra

let ( * ) = Stdlib.( * )
let ( + ) = Stdlib.( + )
module Nonlinear = Cortex_tensor.Nonlinear

type opw = {
  w_name : string;
  w_matvec : bool;
  w_precompute : bool;
  w_flops : float;
  w_out_bytes : float;
  w_state_bytes : float;
  w_param_bytes : float;
  w_vendor_kernels : int;
}

let bytes = 4.0

(* Per-element analysis of an expression body; [nc] is the number of
   children a ChildSum ranges over.  Operand traffic is the *footprint*
   of each distinct state/temp reference (a vendor kernel streams each
   operand once), not the raw per-element demand. *)
type acc = {
  mutable flops : float;
  mutable param_elems : float;  (* raw parameter loads *)
  mutable has_reduction : bool;
  param_tensors : (string, unit) Hashtbl.t;
  operands : (string, float) Hashtbl.t;  (* distinct operand -> elems *)
}

let rec walk acc ~nc ~mult (e : rexpr) =
  match e with
  | Const _ -> ()
  | Param (p, _) ->
    acc.param_elems <- acc.param_elems +. mult;
    Hashtbl.replace acc.param_tensors p ()
  | ChildState (st, sel, _) ->
    let key =
      match sel with
      | Child k -> Printf.sprintf "%s@%d" st k
      | Current -> st ^ "@k"
    in
    let copies = match sel with Current -> nc | Child _ -> 1.0 in
    Hashtbl.replace acc.operands key copies
  | Temp (name, _) -> Hashtbl.replace acc.operands name 1.0
  | Binop (_, a, b) ->
    acc.flops <- acc.flops +. mult;
    walk acc ~nc ~mult a;
    walk acc ~nc ~mult b
  | Math (k, a) ->
    acc.flops <- acc.flops +. (mult *. float_of_int (Nonlinear.flops k));
    walk acc ~nc ~mult a
  | Sum (_, extent, body) ->
    acc.has_reduction <- true;
    acc.flops <- acc.flops +. (mult *. float_of_int extent) (* accumulate adds *);
    walk acc ~nc ~mult:(mult *. float_of_int extent) body
  | ChildSum body ->
    acc.flops <- acc.flops +. (mult *. nc);
    walk acc ~nc ~mult:(mult *. nc) body

let op_workload ~params ~nc (o : op) =
  let acc =
    {
      flops = 0.0;
      param_elems = 0.0;
      has_reduction = false;
      param_tensors = Hashtbl.create 4;
      operands = Hashtbl.create 4;
    }
  in
  let out_elems = float_of_int (List.fold_left (fun a (_, e) -> a * e) 1 o.op_axes) in
  walk acc ~nc ~mult:out_elems o.op_body;
  (* Operand footprints: each distinct reference streams roughly one
     output-sized vector per copy (child states and temporaries share
     the operator's feature width). *)
  let state_elems =
    Hashtbl.fold (fun _ copies sum -> sum +. (copies *. out_elems)) acc.operands 0.0
  in
  let param_bytes =
    Hashtbl.fold
      (fun p () sum ->
        match List.assoc_opt p params with
        | Some dims -> sum +. (bytes *. float_of_int (List.fold_left ( * ) 1 dims))
        | None -> sum)
      acc.param_tensors 0.0
  in
  (* An affine operator costs a framework a matmul call, a bias add and
     usually an activation; a child-sum adds a gather; a plain
     elementwise operator is one kernel. *)
  let vendor_kernels =
    let has_childsum =
      let rec go = function
        | ChildSum _ -> true
        | Const _ | Param _ | ChildState _ | Temp _ -> false
        | Binop (_, a, b) -> go a || go b
        | Math (_, a) | Sum (_, _, a) -> go a
      in
      go o.op_body
    in
    (if acc.has_reduction then 3 else 1) + if has_childsum then 1 else 0
  in
  {
    w_name = o.op_name;
    w_matvec = acc.has_reduction;
    w_precompute = o.op_precompute;
    w_flops = acc.flops;
    w_out_bytes = bytes *. out_elems;
    w_state_bytes = bytes *. state_elems;
    (* Embedding-style gathers touch one row per node, not the table. *)
    w_param_bytes = Float.min param_bytes (bytes *. acc.param_elems);
    w_vendor_kernels = vendor_kernels;
  }

let internal_ops (ra : Ra.t) ~avg_children =
  List.map (op_workload ~params:ra.params ~nc:avg_children) ra.rec_ops

let leaf_ops (ra : Ra.t) =
  match ra.leaf_ops with
  | Some ops -> List.map (op_workload ~params:ra.params ~nc:0.0) ops
  | None ->
    List.map
      (op_workload ~params:ra.params ~nc:0.0)
      (List.filter (fun (o : op) -> not o.op_precompute) ra.rec_ops)

let out_bytes_per_node ops = List.fold_left (fun acc o -> acc +. o.w_out_bytes) 0.0 ops
