(** Per-operator workload characterization of an RA program.

    The baseline frameworks (PyTorch, DyNet, Cavs) do not go through the
    Cortex compiler; they execute the model as a graph of vendor-library
    operator calls.  This module derives, from the same RA program the
    compiler consumes, what one such operator costs per node: FLOPs,
    bytes of state/temporary traffic, the touched weight footprint, and
    how many vendor kernels a framework typically issues for it (an
    affine operator is a matmul + bias-add + activation, a child-sum is
    a gather + reduce, ...). *)

open Cortex_ra

type opw = {
  w_name : string;
  w_matvec : bool;  (** contains a dense reduction *)
  w_precompute : bool;
  w_flops : float;  (** per node *)
  w_out_bytes : float;  (** output tensor written per node *)
  w_state_bytes : float;  (** child states + temporaries read per node *)
  w_param_bytes : float;  (** distinct weight bytes the op touches *)
  w_vendor_kernels : int;
      (** vendor-library calls a non-fusing framework issues per batched
          instance of this operator *)
}

val internal_ops : Ra.t -> avg_children:float -> opw list
(** Workload of the recursive case for an internal node with
    [avg_children] children (precompute ops included, flagged). *)

val leaf_ops : Ra.t -> opw list
(** Workload at a leaf: the explicit leaf case if there is one,
    otherwise the recursive case with zero children (frameworks do not
    constant-fold the user's cell). *)

val out_bytes_per_node : opw list -> float
(** Sum of the operator outputs — the intermediates a
    training-oriented framework keeps alive (Fig. 12). *)
