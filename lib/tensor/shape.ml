type t = int array

let validate shape =
  Array.iter
    (fun d -> if d <= 0 then invalid_arg (Printf.sprintf "Shape.validate: extent %d" d))
    shape

let numel shape = Array.fold_left ( * ) 1 shape

let strides shape =
  let n = Array.length shape in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * shape.(i + 1)
  done;
  s

let flatten_index shape idx =
  let n = Array.length shape in
  if Array.length idx <> n then
    invalid_arg
      (Printf.sprintf "Shape.flatten_index: rank %d vs %d" (Array.length idx) n);
  let st = strides shape in
  let off = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= shape.(i) then
      invalid_arg
        (Printf.sprintf "Shape.flatten_index: index %d out of [0,%d) at dim %d" idx.(i)
           shape.(i) i);
    off := !off + (idx.(i) * st.(i))
  done;
  !off

let unflatten_index shape off =
  let n = Array.length shape in
  let st = strides shape in
  let idx = Array.make n 0 in
  let rem = ref off in
  for i = 0 to n - 1 do
    idx.(i) <- !rem / st.(i);
    rem := !rem mod st.(i)
  done;
  idx

let equal a b = a = b

let to_string shape =
  "(" ^ String.concat "," (Array.to_list (Array.map string_of_int shape)) ^ ")"
