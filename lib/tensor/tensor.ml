type t = { shape : Shape.t; data : float array }

let create shape v =
  Shape.validate shape;
  { shape; data = Array.make (Shape.numel shape) v }

let zeros shape = create shape 0.0
let ones shape = create shape 1.0

let init shape f =
  Shape.validate shape;
  let n = Shape.numel shape in
  let data = Array.make n 0.0 in
  for off = 0 to n - 1 do
    data.(off) <- f (Shape.unflatten_index shape off)
  done;
  { shape; data }

let of_array shape data =
  Shape.validate shape;
  if Array.length data <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Tensor.of_array: %d elements for shape %s" (Array.length data)
         (Shape.to_string shape));
  { shape; data }

let scalar v = { shape = [||]; data = [| v |] }

let get t idx = t.data.(Shape.flatten_index t.shape idx)
let set t idx v = t.data.(Shape.flatten_index t.shape idx) <- v
let get_flat t off = t.data.(off)
let set_flat t off v = t.data.(off) <- v

let numel t = Array.length t.data
let rank t = Array.length t.shape

let dim t i =
  if i < 0 || i >= rank t then invalid_arg "Tensor.dim";
  t.shape.(i)

let copy t = { shape = t.shape; data = Array.copy t.data }
let fill t v = Array.fill t.data 0 (Array.length t.data) v

let reshape t shape =
  Shape.validate shape;
  if Shape.numel shape <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: %s -> %s" (Shape.to_string t.shape)
         (Shape.to_string shape));
  { shape; data = t.data }

let map f t = { shape = t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg
      (Printf.sprintf "Tensor.map2: %s vs %s" (Shape.to_string a.shape)
         (Shape.to_string b.shape));
  { shape = a.shape; data = Array.map2 f a.data b.data }

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let scale k = map (fun x -> k *. x)

let add_ dst src =
  if not (Shape.equal dst.shape src.shape) then invalid_arg "Tensor.add_";
  for i = 0 to Array.length dst.data - 1 do
    dst.data.(i) <- dst.data.(i) +. src.data.(i)
  done

let matmul a b =
  if rank a <> 2 || rank b <> 2 || a.shape.(1) <> b.shape.(0) then
    invalid_arg
      (Printf.sprintf "Tensor.matmul: %s x %s" (Shape.to_string a.shape)
         (Shape.to_string b.shape));
  let m = a.shape.(0) and k = a.shape.(1) and n = b.shape.(1) in
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = a.data.((i * k) + p) in
      if aip <> 0.0 then
        for j = 0 to n - 1 do
          out.((i * n) + j) <- out.((i * n) + j) +. (aip *. b.data.((p * n) + j))
        done
    done
  done;
  { shape = [| m; n |]; data = out }

let matvec a x =
  if rank a <> 2 || rank x <> 1 || a.shape.(1) <> x.shape.(0) then
    invalid_arg
      (Printf.sprintf "Tensor.matvec: %s x %s" (Shape.to_string a.shape)
         (Shape.to_string x.shape));
  let m = a.shape.(0) and k = a.shape.(1) in
  let out = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let acc = ref 0.0 in
    for p = 0 to k - 1 do
      acc := !acc +. (a.data.((i * k) + p) *. x.data.(p))
    done;
    out.(i) <- !acc
  done;
  { shape = [| m |]; data = out }

let transpose t =
  if rank t <> 2 then invalid_arg "Tensor.transpose: rank-2 only";
  let m = t.shape.(0) and n = t.shape.(1) in
  init [| n; m |] (fun idx -> t.data.((idx.(1) * n) + idx.(0)))

let concat ~axis a b =
  if rank a <> rank b then invalid_arg "Tensor.concat: rank mismatch";
  if axis < 0 || axis >= rank a then invalid_arg "Tensor.concat: bad axis";
  Array.iteri
    (fun i d -> if i <> axis && d <> b.shape.(i) then invalid_arg "Tensor.concat: extent mismatch")
    a.shape;
  let shape = Array.copy a.shape in
  shape.(axis) <- a.shape.(axis) + b.shape.(axis);
  init shape (fun idx ->
      if idx.(axis) < a.shape.(axis) then get a idx
      else begin
        let idx' = Array.copy idx in
        idx'.(axis) <- idx.(axis) - a.shape.(axis);
        get b idx'
      end)

let row m i =
  if rank m <> 2 then invalid_arg "Tensor.row: rank-2 only";
  let n = m.shape.(1) in
  { shape = [| n |]; data = Array.sub m.data (i * n) n }

let sum t = Array.fold_left ( +. ) 0.0 t.data

let dot a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  !acc

let rand_uniform rng shape ~lo ~hi =
  init shape (fun _ -> lo +. Cortex_util.Rng.float rng (hi -. lo))

let rand_gaussian rng shape ~mean ~std =
  init shape (fun _ -> Cortex_util.Rng.gaussian rng ~mean ~std)

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.max_abs_diff";
  let worst = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    let d = Float.abs (a.data.(i) -. b.data.(i)) in
    if d > !worst then worst := d
  done;
  !worst

let approx_equal ?(tol = 1e-6) a b =
  Shape.equal a.shape b.shape
  &&
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    let x = a.data.(i) and y = b.data.(i) in
    let bound = tol *. (1.0 +. Float.max (Float.abs x) (Float.abs y)) in
    if Float.abs (x -. y) > bound then ok := false
  done;
  !ok

let to_string ?(max_elems = 16) t =
  let n = min max_elems (numel t) in
  let cells = List.init n (fun i -> Printf.sprintf "%.4g" t.data.(i)) in
  let suffix = if numel t > n then "; ..." else "" in
  Printf.sprintf "%s[%s%s]" (Shape.to_string t.shape) (String.concat "; " cells) suffix
