(** Tensor shapes: immutable dimension lists with row-major strides. *)

type t = int array
(** A shape is an array of positive extents; [[||]] is a scalar. *)

val numel : t -> int
(** Product of the extents (1 for a scalar). *)

val strides : t -> int array
(** Row-major strides: the last dimension is contiguous. *)

val flatten_index : t -> int array -> int
(** [flatten_index shape idx] is the linear offset of a multi-index.
    Raises [Invalid_argument] when ranks differ or an index is out of
    bounds. *)

val unflatten_index : t -> int -> int array
(** Inverse of [flatten_index]. *)

val equal : t -> t -> bool
val to_string : t -> string
(** e.g. ["(256,256)"]. *)

val validate : t -> unit
(** Raises [Invalid_argument] if an extent is non-positive. *)
