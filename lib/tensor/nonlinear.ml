let tanh_exact = tanh
let sigmoid_exact x = 1.0 /. (1.0 +. exp (-.x))

(* Padé(5,4)-like odd rational approximation:
   tanh x ~= x * (135135 + 17325 x^2 + 378 x^4 + x^6)
           / (135135 + 62370 x^2 + 3150 x^4 + 28 x^6)
   This is the classical continued-fraction truncation; it is monotone
   on the clamp interval and cheap to vectorize. *)
let tanh_rational x =
  if x > 4.97 then 1.0
  else if x < -4.97 then -1.0
  else begin
    let x2 = x *. x in
    let p = x *. (135135.0 +. (x2 *. (17325.0 +. (x2 *. (378.0 +. x2))))) in
    let q = 135135.0 +. (x2 *. (62370.0 +. (x2 *. (3150.0 +. (x2 *. 28.0))))) in
    p /. q
  end

let sigmoid_rational x = 0.5 *. (1.0 +. tanh_rational (0.5 *. x))

let relu x = if x > 0.0 then x else 0.0

type kind = Tanh | Sigmoid | Relu | Identity

let apply = function
  | Tanh -> tanh_rational
  | Sigmoid -> sigmoid_rational
  | Relu -> relu
  | Identity -> Fun.id

let apply_exact = function
  | Tanh -> tanh_exact
  | Sigmoid -> sigmoid_exact
  | Relu -> relu
  | Identity -> Fun.id

let name = function
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Relu -> "relu"
  | Identity -> "id"

(* Rational tanh: 7 multiplies + 6 adds + 1 divide ~ 14; sigmoid adds a
   couple more.  These magnitudes only matter relative to the H^2 matvec
   terms, so round numbers are fine. *)
let flops = function
  | Tanh -> 14
  | Sigmoid -> 17
  | Relu -> 1
  | Identity -> 0
