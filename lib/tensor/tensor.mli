(** Dense float tensors.

    This is the numeric substrate standing in for cuBLAS / MKL /
    OpenBLAS in the paper's stack: everything that actually computes
    values — the model reference implementations, the baseline framework
    simulators and the ILIR interpreter — goes through these operations.
    Data is stored row-major in a flat [float array]. *)

type t = private { shape : Shape.t; data : float array }

val create : Shape.t -> float -> t
(** Filled with a constant. *)

val zeros : Shape.t -> t
val ones : Shape.t -> t

val init : Shape.t -> (int array -> float) -> t
(** [init shape f] fills each cell from its multi-index. *)

val of_array : Shape.t -> float array -> t
(** Shares (does not copy) the array; length must equal [numel shape]. *)

val scalar : float -> t
(** Rank-0 tensor. *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val numel : t -> int
val rank : t -> int
val dim : t -> int -> int
(** Extent of one dimension. *)

val copy : t -> t
val fill : t -> float -> unit

val reshape : t -> Shape.t -> t
(** Shares data; element counts must match. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise; shapes must be equal. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard product. *)

val scale : float -> t -> t
val add_ : t -> t -> unit
(** In-place accumulate: [add_ dst src]. *)

val matmul : t -> t -> t
(** [matmul a b] for a:(m,k) b:(k,n) -> (m,n). *)

val matvec : t -> t -> t
(** [matvec a x] for a:(m,k) x:(k) -> (m). *)

val transpose : t -> t
(** Rank-2 transpose. *)

val concat : axis:int -> t -> t -> t
(** Concatenate two tensors along [axis]; other extents must match. *)

val row : t -> int -> t
(** [row m i] copies row [i] of a rank-2 tensor into a rank-1 tensor. *)

val sum : t -> float
val dot : t -> t -> float

val rand_uniform : Cortex_util.Rng.t -> Shape.t -> lo:float -> hi:float -> t
val rand_gaussian : Cortex_util.Rng.t -> Shape.t -> mean:float -> std:float -> t

val approx_equal : ?tol:float -> t -> t -> bool
(** Same shape and all elements within an absolute+relative tolerance. *)

val max_abs_diff : t -> t -> float
val to_string : ?max_elems:int -> t -> string
