(** Nonlinear activation functions.

    §A.5 of the paper: Cortex uses rational approximations of [tanh] and
    [sigmoid] so the generated loops vectorize on CPUs.  We provide the
    same approximations alongside the exact functions, and the test
    suite bounds the approximation error.  The Cortex execution path
    uses the rational forms; the reference implementations may use
    either (the correctness oracle compares like with like). *)

val tanh_exact : float -> float
val sigmoid_exact : float -> float

val tanh_rational : float -> float
(** Padé-style rational approximation of tanh, clamped to [-1, 1];
    absolute error below 3e-3 on all of R and below 1e-4 on [-3, 3]. *)

val sigmoid_rational : float -> float
(** [sigmoid_rational x = (1 + tanh_rational (x/2)) / 2]. *)

val relu : float -> float

type kind = Tanh | Sigmoid | Relu | Identity

val apply : kind -> float -> float
(** Dispatch using the rational forms for tanh/sigmoid. *)

val apply_exact : kind -> float -> float
val name : kind -> string
val flops : kind -> int
(** FLOP charge used by the cost model for one application. *)
