(* The public facade: one module that re-exports the whole Cortex
   stack under stable names.  Downstream users (the examples and the
   benchmark harness included) depend on [cortex.core] and write
   [Cortex.Runtime.simulate ...]. *)

module Rng = Cortex_util.Rng
module Table = Cortex_util.Table
module Stats = Cortex_util.Stats
module Shape = Cortex_tensor.Shape
module Tensor = Cortex_tensor.Tensor
module Nonlinear = Cortex_tensor.Nonlinear
module Node = Cortex_ds.Node
module Structure = Cortex_ds.Structure
module Gen = Cortex_ds.Gen
module Treebank = Cortex_ds.Treebank
module Linearizer = Cortex_linearizer.Linearizer
module Unrolling = Cortex_linearizer.Unrolling
module Ir = Cortex_ilir.Ir
module Simplify = Cortex_ilir.Simplify
module Schedule = Cortex_ilir.Schedule
module Barrier = Cortex_ilir.Barrier
module Bounds = Cortex_ilir.Bounds
module Races = Cortex_ilir.Races
module Emit_c = Cortex_ilir.Emit_c
module Interp = Cortex_ilir.Interp
module Cost = Cortex_ilir.Cost
module Mem_plan = Cortex_ilir.Mem_plan
module Ra = Cortex_ra.Ra
module Ra_eval = Cortex_ra.Ra_eval
module Ra_simplify = Cortex_ra.Ra_simplify
module Lower = Cortex_lower.Lower
module Backend = Cortex_backend.Backend
module Runtime = Cortex_runtime.Runtime
module Tuner = Cortex_runtime.Tuner
module Checkpoint = Cortex_runtime.Checkpoint
module Bundle = Cortex_bundle.Bundle
module Engine = Cortex_serve.Engine
module Dispatch = Cortex_serve.Dispatch
module Fault = Cortex_serve.Fault
module Shape_cache = Cortex_serve.Shape_cache
module Session_store = Cortex_serve.Session_store
module Plan_cache = Cortex_serve.Plan_cache
module Trace = Cortex_serve.Trace
module Obs = Cortex_obs.Obs
module Metrics = Cortex_obs.Metrics
module Chrome_trace = Cortex_obs.Chrome_trace
module Obs_validate = Cortex_obs.Validate
module Scan = Cortex_obs.Scan
module Fmeca = Cortex_campaign.Fmeca
module Workload = Cortex_baselines.Workload
module Frameworks = Cortex_baselines.Frameworks
module Models = struct
  module Common = Cortex_models.Models_common
  module Tree_fc = Cortex_models.Tree_fc
  module Tree_rnn = Cortex_models.Tree_rnn
  module Tree_lstm = Cortex_models.Tree_lstm
  module Tree_gru = Cortex_models.Tree_gru
  module Mv_rnn = Cortex_models.Mv_rnn
  module Dag_rnn = Cortex_models.Dag_rnn
  module Reference = Cortex_models.Reference
  module Catalog = Cortex_models.Catalog
end
module Roofline = Cortex_roofline.Roofline
