(** Synthetic dataset generators (Table 2 of the paper).

    - TreeFC uses perfect binary trees of height 7;
    - TreeGRU / TreeLSTM / MV-RNN use the Stanford Sentiment Treebank —
      we substitute a synthetic treebank whose sentence-length
      distribution matches SST (see DESIGN.md);
    - DAG-RNN uses synthetic 10x10 grid DAGs;
    - the GRNN comparison (Fig. 9) uses length-100 sequences. *)

val vocab_size : int
(** Vocabulary used by parse-tree leaves (word-id payloads). *)

val null_word : int
(** Payload of internal parse-tree nodes (= [vocab_size]): they carry no
    word, and models reserve a zero embedding row at this index so their
    input contribution is the zero vector. *)

val perfect_tree : Cortex_util.Rng.t -> ?vocab:int -> height:int -> unit -> Structure.t
(** Perfect binary tree with [height] levels: [2^(height-1)] leaves and
    [2^height - 1] nodes.  Leaves carry random word ids from [vocab]. *)

val sst_sentence_length : Cortex_util.Rng.t -> int
(** A sentence length drawn from the SST-like distribution
    (mean ~19.2, std ~9.1, clipped to [3, 60]). *)

val sst_tree : Cortex_util.Rng.t -> ?vocab:int -> ?len:int -> unit -> Structure.t
(** A random binary parse tree over [len] leaves (random bracketing);
    [len] defaults to a draw from [sst_sentence_length].  Leaf payloads
    are drawn from [vocab] (default [vocab_size]); internal nodes get
    the null word [vocab]. *)

val sst_batch : Cortex_util.Rng.t -> ?vocab:int -> batch:int -> unit -> Structure.t
(** [batch] independent SST-like trees merged into one structure. *)

val perfect_batch :
  Cortex_util.Rng.t -> ?vocab:int -> batch:int -> height:int -> unit -> Structure.t

val grid_dag : rows:int -> cols:int -> Structure.t
(** DAG-RNN dependency DAG for one south-east sweep over a [rows] x
    [cols] image grid: cell (i,j) depends on (i-1,j) and (i,j-1); cell
    (0,0) is the unique leaf; the unique root is (rows-1, cols-1).
    Payload of each node is its flat pixel index. *)

val grid_batch : batch:int -> rows:int -> cols:int -> Structure.t

val sequence : Cortex_util.Rng.t -> ?vocab:int -> len:int -> unit -> Structure.t
(** Chain of [len] nodes; the head of the sequence is the leaf and the
    last element is the root.  Payloads are random word ids drawn from
    [vocab]. *)

(** {2 Incremental growth}

    A growing conversation for the serving engine's sessions: each step
    appends nodes via {!Structure.append}, so successive structures
    share their prefix nodes physically.  Sequences grow by one token
    (the new token is the new root); trees and DAGs grow left-branching
    (a new leaf plus a new root over [old root; new leaf]). *)

type growth

val growth_start :
  Cortex_util.Rng.t -> ?vocab:int -> kind:Structure.kind -> unit -> growth
(** A one-node conversation (a single leaf with a random payload). *)

val growth_structure : growth -> Structure.t
(** The current structure (shared with the previous step's prefix). *)

val grow_one : Cortex_util.Rng.t -> growth -> Structure.t
(** Grow by one token and return the new current structure. *)

val random_tree : Cortex_util.Rng.t -> max_nodes:int -> max_children:int -> Structure.t
(** Arbitrary-shape random tree for property tests. *)

val random_dag : Cortex_util.Rng.t -> max_nodes:int -> max_children:int -> Structure.t
(** Random DAG (acyclic by construction: children have smaller ids). *)
