type vocab = { table : (string, int) Hashtbl.t; mutable next : int }

(* Word id 0 is reserved for the null word internal nodes carry, so the
   vocabulary can keep growing while structures are being built. *)
let vocab ?(size_hint = 1024) () =
  let v = { table = Hashtbl.create size_hint; next = 0 } in
  Hashtbl.add v.table "<null>" 0;
  v.next <- 1;
  v

let vocab_size v = v.next

let word_id v token =
  match Hashtbl.find_opt v.table token with
  | Some id -> id
  | None ->
    let id = v.next in
    v.next <- id + 1;
    Hashtbl.add v.table token id;
    id

let lookup v token = Hashtbl.find_opt v.table token
let null_word _ = 0

type tree = { structure : Structure.t; labels : int array; tokens : string array }

exception Parse_error of string * int

let fail pos fmt = Printf.ksprintf (fun s -> raise (Parse_error (s, pos))) fmt

(* ---------- lexing ---------- *)

type token = Lparen | Rparen | Atom of string

let lex input =
  let n = String.length input in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    (match input.[!i] with
     | '(' ->
       out := (Lparen, !i) :: !out;
       incr i
     | ')' ->
       out := (Rparen, !i) :: !out;
       incr i
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | _ ->
       let start = !i in
       while
         !i < n
         && (match input.[!i] with '(' | ')' | ' ' | '\t' | '\n' | '\r' -> false | _ -> true)
       do
         incr i
       done;
       out := (Atom (String.sub input start (!i - start)), start) :: !out);
  done;
  List.rev !out

(* ---------- parsing to an AST ---------- *)

type ast = Leaf of int option * string | Inner of int option * ast list

let is_int s =
  s <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s

let parse_ast tokens =
  let rec tree = function
    | (Atom a, _) :: rest -> (Leaf (None, a), rest)
    | (Lparen, pos) :: rest ->
      let label, rest =
        match rest with
        | (Atom a, _) :: ((Lparen, _) :: _ as tl) when is_int a -> (Some (int_of_string a), tl)
        | (Atom a, _) :: ((Atom _, _) :: _ as tl) when is_int a -> (Some (int_of_string a), tl)
        | _ -> (None, rest)
      in
      let rec children acc rest =
        match rest with
        | (Rparen, _) :: tl -> (List.rev acc, tl)
        | [] -> fail pos "unterminated '('"
        | _ ->
          let child, rest = tree rest in
          children (child :: acc) rest
      in
      let kids, rest = children [] rest in
      (match kids with
       | [] -> fail pos "empty node"
       | [ Leaf (None, token) ] -> (Leaf (label, token), rest)
       | kids -> (Inner (label, kids), rest))
    | (Rparen, pos) :: _ -> fail pos "unexpected ')'"
    | [] -> fail 0 "empty input"
  in
  let t, rest = tree tokens in
  (match rest with
   | [] -> ()
   | (_, pos) :: _ -> fail pos "trailing input after tree");
  t

(* ---------- AST -> structure ---------- *)

let rec max_fanout = function
  | Leaf _ -> 0
  | Inner (_, kids) -> List.fold_left (fun m k -> max m (max_fanout k)) (List.length kids) kids

let build v ast =
  let b = Node.builder () in
  let labels = ref [] and tokens = ref [] in
  let note (node : Node.t) label token =
    labels := (node.Node.id, label) :: !labels;
    tokens := (node.Node.id, token) :: !tokens;
    node
  in
  let rec go = function
    | Leaf (label, token) ->
      note (Node.make b ~payload:(word_id v token) []) (Option.value label ~default:(-1)) token
    | Inner (label, kids) ->
      let children = List.map go kids in
      note
        (Node.make b ~payload:(null_word v) children)
        (Option.value label ~default:(-1))
        ""
  in
  let root = go ast in
  let fanout = max 2 (max_fanout ast) in
  let structure = Structure.create ~kind:Structure.Tree ~max_children:fanout [ root ] in
  let n = Structure.num_nodes structure in
  let label_arr = Array.make n (-1) and token_arr = Array.make n "" in
  List.iter (fun (id, l) -> label_arr.(id) <- l) !labels;
  List.iter (fun (id, t) -> token_arr.(id) <- t) !tokens;
  { structure; labels = label_arr; tokens = token_arr }

let parse v input = build v (parse_ast (lex input))

let parse_many v input =
  String.split_on_char '\n' input
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None else Some (parse v line))

(* ---------- printing ---------- *)

let to_string t =
  let buf = Buffer.create 256 in
  let rec go (node : Node.t) =
    let label = t.labels.(node.Node.id) in
    if Node.is_leaf node then begin
      if label >= 0 then Buffer.add_string buf (Printf.sprintf "(%d %s)" label t.tokens.(node.Node.id))
      else Buffer.add_string buf t.tokens.(node.Node.id)
    end
    else begin
      Buffer.add_char buf '(';
      if label >= 0 then Buffer.add_string buf (string_of_int label);
      Array.iter
        (fun c ->
          Buffer.add_char buf ' ';
          go c)
        node.Node.children;
      Buffer.add_char buf ')'
    end
  in
  (match t.structure.Structure.roots with
   | [ root ] -> go root
   | roots -> List.iter go roots);
  Buffer.contents buf

let merge trees = Structure.merge (List.map (fun t -> t.structure) trees)

let sample_sst =
  String.concat "\n"
    [
      "(3 (2 (2 The) (2 movie)) (4 (3 (2 was) (3 great)) (2 .)))";
      "(1 (2 (2 The) (2 plot)) (1 (1 (2 was) (1 terrible)) (2 .)))";
      "(4 (3 (2 A) (4 (4 wonderful) (2 performance))) (2 (2 by) (2 (2 the) (2 cast))))";
      "(0 (1 (2 An) (1 (0 awful) (2 script))) (1 (1 ruins) (2 (2 the) (2 film))))";
      "(2 (2 It) (2 (2 is) (2 (2 a) (2 (2 dog) (2 .)))))";
      "(3 (2 (2 Surprisingly) (2 ,)) (3 (2 it) (3 (3 (2 mostly) (3 works)) (2 .))))";
      "(4 (4 (4 Brilliant) (2 direction)) (3 (2 and) (3 (3 sharp) (2 writing))))";
      "(1 (2 (2 Two) (2 hours)) (1 (1 (2 I) (1 (2 will) (1 (2 never) (1 (2 get) (2 back))))) (2 .)))";
    ]
