(** A complete input data structure: one or more roots plus metadata.

    The user of the Recursive API must declare the *kind* of structure
    (sequence, tree or DAG) and the maximum number of children per node
    (§3 of the paper); both are verified here at construction time.  A
    [t] may hold several independent roots — that is how a batch of
    trees is presented to the linearizer. *)

type kind = Sequence | Tree | Dag

type t = private {
  kind : kind;
  max_children : int;
  roots : Node.t list;
  nodes : Node.t array;  (** every reachable node, indexed by [Node.id] *)
}

exception Invalid of string

val create : kind:kind -> max_children:int -> Node.t list -> t
(** Walks the roots, collects all reachable nodes and verifies:
    node ids are dense in [0, n); fanout is within [max_children];
    sequences are chains; trees have a unique parent per node; the
    structure is acyclic.  Raises [Invalid] otherwise. *)

val append : t -> roots:Node.t list -> added:Node.t array -> t
(** [append base ~roots ~added] grows [base] in place of a full
    re-[create]: [added] nodes must carry ids continuing [base]'s dense
    range, may only link member nodes with strictly smaller ids (so
    acyclicity is structural), must all be reachable from the new
    [roots], and every old root must either remain a root or be linked
    by an appended node.  Tree/Sequence single-parent rules are
    re-verified.  The result shares [base]'s node values — physical
    equality of the common prefix is what lets the serving engine
    recognise a grown conversation.  Raises [Invalid] otherwise. *)

val num_nodes : t -> int
val num_leaves : t -> int
val num_internal : t -> int

val height : t -> int
(** Length in edges of the longest root-to-leaf path (0 for a single
    node). *)

val level : t -> int array
(** [level t].(id) is the node's height above the leaves: 0 for leaves,
    [1 + max over children] otherwise.  This is the dynamic-batching
    level: all nodes of one level are mutually independent. *)

val level_widths : t -> int array
(** Number of nodes per level, index 0 = leaves. *)

val parents_count : t -> int array
(** Number of parents per node (can exceed 1 only in a DAG). *)

val merge : t list -> t
(** Concatenates several structures of the same kind into one (node ids
    are renumbered); this is how a batch is formed.  Inputs must agree
    on [max_children]; use {!merge_mapped} to relax that. *)

val merge_mapped : t list -> t * int array array
(** Like {!merge} but additionally returns, per input structure, the
    mapping from its node ids to the merged structure's node ids — the
    serving engine uses this to read per-request results back out of a
    batched forest.  Inputs may disagree on [max_children]; the merged
    structure declares the maximum.  Each input's nodes occupy a
    contiguous id range of the merged structure, in input order. *)

val describe : t -> string
