(** Pointer-linked recursive data structure nodes.

    These are the runtime inputs of a recursive model (Fig. 2, stage 5 of
    the paper): parse trees, DAGs or sequences built of heap nodes linked
    by child pointers.  The linearizer (stage 6) lowers them to arrays.

    Nodes carry a creation id that is unique within their structure and
    *distinct from* the linearizer's numbering; and an integer payload
    whose meaning is model-specific (a word id for parse-tree leaves, a
    pixel/feature index for DAG-RNN cells, [-1] for "no input"). *)

type t = private { id : int; payload : int; children : t array }

type builder
(** Allocates nodes with sequential ids starting at 0. *)

val builder : unit -> builder

val builder_from : int -> builder
(** [builder_from n] allocates ids starting at [n] — used to append
    nodes to an existing structure whose ids already cover [0, n). *)

val make : builder -> ?payload:int -> t list -> t
(** [make b children] allocates a fresh node.  In a DAG the same node
    value may appear in several child lists. *)

val count : builder -> int
(** Number of nodes allocated so far. *)

val is_leaf : t -> bool
val num_children : t -> int
val child : t -> int -> t

val equal : t -> t -> bool
(** Physical node identity (by id). *)
