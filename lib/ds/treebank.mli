(** Penn-Treebank-style s-expression parse trees.

    The Stanford Sentiment Treebank distributes its parse trees in PTB
    bracketing, one tree per line, e.g.

      (3 (2 (2 The) (2 movie)) (4 (3 (2 was) (3 great)) (2 .)))

    where every node carries a sentiment label (0-4) and leaves carry
    tokens.  This module parses that format into {!Structure.t} inputs
    for the recursive models: leaves receive word-id payloads from a
    {!vocab} (built on the fly or supplied), internal nodes receive the
    null word.  Node labels are returned side-by-side keyed by node id,
    so a classifier head can be trained/evaluated against them. *)

type vocab
(** Mutable token -> word-id mapping. *)

val vocab : ?size_hint:int -> unit -> vocab
val vocab_size : vocab -> int

val word_id : vocab -> string -> int
(** Id of a token, assigning the next free id to unseen tokens. *)

val lookup : vocab -> string -> int option
(** Id of a token if present (for frozen evaluation vocabularies). *)

val null_word : vocab -> int
(** The reserved no-word id internal nodes carry (always 0; embedding
    tables built for a treebank vocabulary should zero row 0). *)

type tree = {
  structure : Structure.t;
  labels : int array;  (** sentiment label per node id; -1 when absent *)
  tokens : string array;  (** token per node id; "" for internal nodes *)
}

exception Parse_error of string * int
(** Message and byte position. *)

val parse : vocab -> string -> tree
(** Parse one tree.  Accepts labelled nodes [(label child ...)],
    label-less nodes [(child ...)], and bare tokens at the leaves.
    Raises {!Parse_error} on malformed input. *)

val parse_many : vocab -> string -> tree list
(** Parse a whole file's contents (one tree per line; blank lines
    skipped). *)

val to_string : tree -> string
(** Render back to PTB bracketing; [parse] of the result yields an
    isomorphic tree. *)

val merge : tree list -> Structure.t
(** Batch the parsed trees into one structure for inference. *)

val sample_sst : string
(** A small embedded sample in SST format (8 sentences) so examples and
    tests run without any data files. *)
