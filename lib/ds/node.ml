type t = { id : int; payload : int; children : t array }

type builder = { mutable next_id : int }

let builder () = { next_id = 0 }

let builder_from next_id =
  if next_id < 0 then invalid_arg "Node.builder_from";
  { next_id }

let make b ?(payload = -1) children =
  let id = b.next_id in
  b.next_id <- id + 1;
  { id; payload; children = Array.of_list children }

let count b = b.next_id

let is_leaf n = Array.length n.children = 0
let num_children n = Array.length n.children

let child n i =
  if i < 0 || i >= Array.length n.children then invalid_arg "Node.child";
  n.children.(i)

let equal a b = a.id = b.id
