type kind = Sequence | Tree | Dag

type t = {
  kind : kind;
  max_children : int;
  roots : Node.t list;
  nodes : Node.t array;
}

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let collect_reachable roots =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go (n : Node.t) =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      acc := n :: !acc;
      Array.iter go n.children
    end
  in
  List.iter go roots;
  !acc

let check_acyclic roots =
  (* Colors: 0 unvisited, 1 on stack, 2 done. *)
  let color = Hashtbl.create 64 in
  let rec go (n : Node.t) =
    match Hashtbl.find_opt color n.id with
    | Some 1 -> fail "cycle through node %d" n.id
    | Some _ -> ()
    | None ->
      Hashtbl.replace color n.id 1;
      Array.iter go n.children;
      Hashtbl.replace color n.id 2
  in
  List.iter go roots

let create ~kind ~max_children roots =
  if roots = [] then fail "structure with no roots";
  if max_children < 1 then fail "max_children must be >= 1";
  check_acyclic roots;
  let reachable = collect_reachable roots in
  let n = List.length reachable in
  let nodes = Array.make n (List.hd reachable) in
  List.iter
    (fun (node : Node.t) ->
      if node.id < 0 || node.id >= n then
        fail "node ids are not dense: id %d with %d reachable nodes" node.id n;
      nodes.(node.id) <- node)
    reachable;
  Array.iteri
    (fun i (node : Node.t) ->
      if node.id <> i then fail "duplicate node id %d" node.id)
    nodes;
  let parents = Array.make n 0 in
  Array.iter
    (fun (node : Node.t) ->
      if Array.length node.children > max_children then
        fail "node %d has %d children (max %d)" node.id (Array.length node.children)
          max_children;
      Array.iter (fun (c : Node.t) -> parents.(c.id) <- parents.(c.id) + 1) node.children)
    nodes;
  (match kind with
   | Dag -> ()
   | Tree ->
     Array.iteri
       (fun id p -> if p > 1 then fail "node %d has %d parents in a tree" id p)
       parents
   | Sequence ->
     if max_children <> 1 then fail "a sequence must declare max_children = 1";
     Array.iteri
       (fun id p -> if p > 1 then fail "node %d has %d parents in a sequence" id p)
       parents);
  { kind; max_children; roots; nodes }

let num_nodes t = Array.length t.nodes

(* Graft [added] nodes (ids continuing [base]'s) under fresh [roots]
   without re-walking the whole graph.  Acyclicity is free — appended
   nodes may only link nodes with strictly smaller ids — so validation
   is O(|added| * fanout) plus one O(n) parent-count pass for the
   Tree/Sequence single-parent rule. *)
let append base ~roots ~(added : Node.t array) =
  let b = num_nodes base in
  let d = Array.length added in
  Array.iteri
    (fun i (n : Node.t) ->
      if n.id <> b + i then
        fail "appended ids must continue the structure: got %d, want %d" n.id (b + i))
    added;
  let is_base (n : Node.t) = n.id >= 0 && n.id < b && n == base.nodes.(n.id) in
  let is_added (n : Node.t) = n.id >= b && n.id < b + d && n == added.(n.id - b) in
  let member n = is_base n || is_added n in
  let max_children =
    match base.kind with
    | Sequence -> 1 (* a sequence must keep max_children = 1 *)
    | Tree | Dag ->
      Array.fold_left (fun m n -> max m (Node.num_children n)) base.max_children added
  in
  Array.iter
    (fun (n : Node.t) ->
      if Array.length n.children > max_children then
        fail "node %d has %d children (max %d)" n.id (Array.length n.children)
          max_children;
      Array.iter
        (fun (c : Node.t) ->
          if c.id >= n.id then
            fail "appended node %d lists child %d: children must predate their parent"
              n.id c.id;
          if not (member c) then fail "appended node %d links a foreign node %d" n.id c.id)
        n.children)
    added;
  if roots = [] then fail "structure with no roots";
  List.iter
    (fun (r : Node.t) -> if not (member r) then fail "root %d is not a member" r.Node.id)
    roots;
  (* Every appended node must be reachable from the new roots.  Old nodes
     have no new out-edges, so a DFS restricted to appended nodes is
     complete. *)
  let seen = Array.make (max d 1) false in
  let rec mark (n : Node.t) =
    if is_added n && not seen.(n.id - b) then begin
      seen.(n.id - b) <- true;
      Array.iter mark n.children
    end
  in
  List.iter mark roots;
  Array.iteri
    (fun i s ->
      if not s then fail "appended node %d is unreachable from the new roots" (b + i))
    seen;
  (* Every old root must stay reachable: either it remains a root or an
     appended node links it.  (Old non-roots are reachable through their
     old parents, which the base structure already validated.) *)
  let covered = Hashtbl.create 8 in
  List.iter (fun (r : Node.t) -> if is_base r then Hashtbl.replace covered r.id ()) roots;
  Array.iter
    (fun (n : Node.t) ->
      Array.iter
        (fun (c : Node.t) -> if c.id < b then Hashtbl.replace covered c.id ())
        n.children)
    added;
  List.iter
    (fun (r : Node.t) ->
      if not (Hashtbl.mem covered r.id) then
        fail "old root %d is neither a root nor referenced by an appended node" r.id)
    base.roots;
  (match base.kind with
   | Dag -> ()
   | Tree | Sequence ->
     let parents = Array.make (b + d) 0 in
     let count (n : Node.t) =
       Array.iter (fun (c : Node.t) -> parents.(c.id) <- parents.(c.id) + 1) n.children
     in
     Array.iter count base.nodes;
     Array.iter count added;
     let what = match base.kind with Sequence -> "sequence" | _ -> "tree" in
     Array.iteri
       (fun id p -> if p > 1 then fail "node %d has %d parents in a %s" id p what)
       parents);
  { base with max_children; roots; nodes = Array.append base.nodes added }

let num_leaves t =
  Array.fold_left (fun acc n -> if Node.is_leaf n then acc + 1 else acc) 0 t.nodes

let num_internal t = num_nodes t - num_leaves t

let level t =
  let n = num_nodes t in
  let lvl = Array.make n (-1) in
  let rec go (node : Node.t) =
    if lvl.(node.id) < 0 then begin
      let deepest = ref (-1) in
      Array.iter
        (fun (c : Node.t) ->
          go c;
          if lvl.(c.id) > !deepest then deepest := lvl.(c.id))
        node.children;
      lvl.(node.id) <- !deepest + 1
    end
  in
  List.iter go t.roots;
  lvl

let height t = Array.fold_left max 0 (level t)

let level_widths t =
  let lvl = level t in
  let h = Array.fold_left max 0 lvl in
  let widths = Array.make (h + 1) 0 in
  Array.iter (fun l -> widths.(l) <- widths.(l) + 1) lvl;
  widths

let parents_count t =
  let parents = Array.make (num_nodes t) 0 in
  Array.iter
    (fun (node : Node.t) ->
      Array.iter (fun (c : Node.t) -> parents.(c.id) <- parents.(c.id) + 1) node.children)
    t.nodes;
  parents

let merge_mapped structures =
  match structures with
  | [] -> fail "merge of no structures"
  | first :: rest ->
    List.iter
      (fun s -> if s.kind <> first.kind then fail "merge of mixed structure kinds")
      rest;
    let max_children =
      List.fold_left (fun m s -> max m s.max_children) first.max_children rest
    in
    let b = Node.builder () in
    let copy_structure s =
      let memo = Hashtbl.create (num_nodes s) in
      let rec copy (n : Node.t) =
        match Hashtbl.find_opt memo n.id with
        | Some n' -> n'
        | None ->
          let children = Array.to_list (Array.map copy n.children) in
          let n' = Node.make b ~payload:n.payload children in
          Hashtbl.add memo n.id n';
          n'
      in
      let roots = List.map copy s.roots in
      let map =
        Array.map (fun (n : Node.t) -> (Hashtbl.find memo n.id : Node.t).id) s.nodes
      in
      (roots, map)
    in
    let copies = List.map copy_structure structures in
    let roots = List.concat_map fst copies in
    let merged = create ~kind:first.kind ~max_children roots in
    (merged, Array.of_list (List.map snd copies))

let merge structures =
  (match structures with
   | first :: rest ->
     List.iter
       (fun s ->
         if s.max_children <> first.max_children then fail "merge of mixed max_children")
       rest
   | [] -> ());
  fst (merge_mapped structures)

let describe t =
  let kind =
    match t.kind with Sequence -> "sequence" | Tree -> "tree" | Dag -> "dag"
  in
  Printf.sprintf "%s: %d nodes (%d leaves), %d roots, height %d" kind (num_nodes t)
    (num_leaves t) (List.length t.roots) (height t)
