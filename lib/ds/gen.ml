module Rng = Cortex_util.Rng

let vocab_size = 20_000

(* Internal parse-tree nodes carry no word; they are given the reserved
   "null word" id [vocab_size], for which models keep a zero embedding
   row.  This mirrors how TreeLSTM implementations feed x = 0 at
   internal nodes of the sentiment treebank. *)
let null_word = vocab_size

let perfect_tree rng ?(vocab = vocab_size) ~height () =
  if height < 1 then invalid_arg "Gen.perfect_tree";
  let b = Node.builder () in
  let rec build h =
    if h = 1 then Node.make b ~payload:(Rng.int rng vocab) []
    else begin
      let left = build (h - 1) in
      let right = build (h - 1) in
      (* The null word of a [vocab]-word model is id [vocab] (its Emb
         holds [vocab + 1] rows) — matching [sst_tree] below, not the
         default vocabulary's [null_word]. *)
      Node.make b ~payload:vocab [ left; right ]
    end
  in
  Structure.create ~kind:Tree ~max_children:2 [ build height ]

(* SST dev/test sentences average ~19 tokens with a long tail; a clipped
   gaussian reproduces the level-width statistics that drive dynamic
   batching. *)
let sst_sentence_length rng =
  let draw = Rng.gaussian rng ~mean:19.2 ~std:9.1 in
  Cortex_util.Stats.clamp_int ~lo:3 ~hi:60 (int_of_float (Float.round draw))

let sst_tree rng ?(vocab = vocab_size) ?len () =
  let len = match len with Some l -> l | None -> sst_sentence_length rng in
  if len < 1 then invalid_arg "Gen.sst_tree";
  let b = Node.builder () in
  let leaves = Array.init len (fun _ -> Node.make b ~payload:(Rng.int rng vocab) []) in
  (* Random binary bracketing: repeatedly merge a random adjacent pair,
     as a shift-reduce parser with random reduce positions would. *)
  let spans = ref (Array.to_list leaves) in
  while List.length !spans > 1 do
    let arr = Array.of_list !spans in
    let i = Rng.int rng (Array.length arr - 1) in
    let merged = Node.make b ~payload:vocab [ arr.(i); arr.(i + 1) ] in
    let out = ref [] in
    Array.iteri
      (fun j n ->
        if j = i then out := merged :: !out
        else if j <> i + 1 then out := n :: !out)
      arr;
    spans := List.rev !out
  done;
  match !spans with
  | [ root ] -> Structure.create ~kind:Tree ~max_children:2 [ root ]
  | _ -> assert false

let sst_batch rng ?vocab ~batch () =
  Structure.merge (List.init batch (fun _ -> sst_tree rng ?vocab ()))

let perfect_batch rng ?vocab ~batch ~height () =
  Structure.merge (List.init batch (fun _ -> perfect_tree rng ?vocab ~height ()))

let grid_dag ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid_dag";
  let b = Node.builder () in
  let grid = Array.make_matrix rows cols None in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let dep r c =
        if r < 0 || c < 0 then None
        else grid.(r).(c)
      in
      let children = List.filter_map Fun.id [ dep (i - 1) j; dep i (j - 1) ] in
      grid.(i).(j) <- Some (Node.make b ~payload:((i * cols) + j) children)
    done
  done;
  match grid.(rows - 1).(cols - 1) with
  | Some root -> Structure.create ~kind:Dag ~max_children:2 [ root ]
  | None -> assert false

let grid_batch ~batch ~rows ~cols =
  Structure.merge (List.init batch (fun _ -> grid_dag ~rows ~cols))

let sequence rng ?(vocab = vocab_size) ~len () =
  if len < 1 then invalid_arg "Gen.sequence";
  let b = Node.builder () in
  let rec build prev i =
    if i = len then prev
    else
      let n = Node.make b ~payload:(Rng.int rng vocab) [ prev ] in
      build n (i + 1)
  in
  let head = Node.make b ~payload:(Rng.int rng vocab) [] in
  Structure.create ~kind:Sequence ~max_children:1 [ build head 1 ]

(* ---------- incremental growth (sessions) ---------- *)

(* A growing conversation: each step appends nodes with [Structure.append]
   so successive structures share their prefix nodes physically — the
   property the serving engine's session table keys on. *)
type growth = {
  g_vocab : int;
  g_kind : Structure.kind;
  g_builder : Node.builder;
  mutable g_structure : Structure.t;
}

let growth_start rng ?(vocab = vocab_size) ~kind () =
  let b = Node.builder () in
  let leaf = Node.make b ~payload:(Rng.int rng vocab) [] in
  let max_children = match kind with Structure.Sequence -> 1 | _ -> 2 in
  let s = Structure.create ~kind ~max_children [ leaf ] in
  { g_vocab = vocab; g_kind = kind; g_builder = b; g_structure = s }

let growth_structure g = g.g_structure

let grow_one rng g =
  let root = List.hd g.g_structure.Structure.roots in
  let s' =
    match g.g_kind with
    | Structure.Sequence ->
      (* The conversation's new token becomes the new root of the chain. *)
      let n = Node.make g.g_builder ~payload:(Rng.int rng g.g_vocab) [ root ] in
      Structure.append g.g_structure ~roots:[ n ] ~added:[| n |]
    | Structure.Tree | Structure.Dag ->
      (* Left-branching growth: a new leaf and a new root over
         [old root; new leaf] — how an incremental parse extends. *)
      let leaf = Node.make g.g_builder ~payload:(Rng.int rng g.g_vocab) [] in
      let top = Node.make g.g_builder ~payload:g.g_vocab [ root; leaf ] in
      Structure.append g.g_structure ~roots:[ top ] ~added:[| leaf; top |]
  in
  g.g_structure <- s';
  s'

let random_tree rng ~max_nodes ~max_children =
  let n = 1 + Rng.int rng (max max_nodes 1) in
  let b = Node.builder () in
  (* Grow by attaching each new node under a random node with spare
     fanout; then invert so the attachment order builds leaves first. *)
  let rec build budget =
    if budget <= 1 then Node.make b ~payload:(Rng.int rng vocab_size) []
    else begin
      let fanout = 1 + Rng.int rng max_children in
      let fanout = min fanout (budget - 1) in
      let shares = Array.make fanout 1 in
      let remaining = ref (budget - 1 - fanout) in
      while !remaining > 0 do
        let i = Rng.int rng fanout in
        shares.(i) <- shares.(i) + 1;
        decr remaining
      done;
      let children = Array.to_list (Array.map build shares) in
      Node.make b ~payload:(Rng.int rng vocab_size) children
    end
  in
  Structure.create ~kind:Tree ~max_children [ build n ]

let random_dag rng ~max_nodes ~max_children =
  let n = 2 + Rng.int rng (max (max_nodes - 1) 1) in
  let b = Node.builder () in
  let made = ref [] in
  (* Children are chosen among already-made nodes, so the result is
     acyclic; every earlier node is reachable because node i always
     links to node i-1 when it has any children. *)
  for i = 0 to n - 1 do
    let prior = Array.of_list (List.rev !made) in
    let children =
      if i = 0 then []
      else begin
        let fanout = 1 + Rng.int rng max_children in
        let picks = List.init (fanout - 1) (fun _ -> prior.(Rng.int rng i)) in
        let uniq =
          List.sort_uniq (fun (a : Node.t) b -> compare a.id b.id) (prior.(i - 1) :: picks)
        in
        uniq
      end
    in
    made := Node.make b ~payload:(Rng.int rng vocab_size) children :: !made
  done;
  match !made with
  | root :: _ -> Structure.create ~kind:Dag ~max_children [ root ]
  | [] -> assert false
