(** Data structure linearization (§4.2 and Appendix B of the paper).

    At inference time the linearizer — the inspector of the
    inspector-executor pair — traverses the pointer-linked input
    structure on the host CPU and lays it out as arrays for the compiled
    loop nests to iterate over.  No tensor computation happens here
    (property P.1 lets all control flow be resolved from the structure
    alone).

    Numbering scheme (Appendix B): nodes are renumbered such that
    (i) every child is numbered strictly higher than each of its
    parents, (ii) nodes in a dynamic batch occupy a contiguous id range,
    and (iii) all leaves are numbered higher than all internal nodes.
    Consequence: a dynamic batch is representable as a
    [(batch_begin, batch_length)] pair and a leaf check is the single
    comparison [n >= leaf_begin] instead of a memory load. *)

type t = {
  structure : Cortex_ds.Structure.t;
  num_nodes : int;
  num_leaves : int;
  max_children : int;
  new_of_old : int array;  (** creation id -> linearized id *)
  old_of_new : int array;  (** linearized id -> creation id *)
  leaf_begin : int;  (** leaves are exactly [leaf_begin, num_nodes) *)
  child : int array array;
      (** [child.(k).(n)] is the linearized id of the [k]-th child of
          node [n], or [-1] past its fanout; [k < max_children]. *)
  num_children : int array;
  payload : int array;  (** model input payloads, by linearized id *)
  level_of : int array;
      (** dynamic-batching level by linearized id: 0 for leaves,
          [1 + max over children] otherwise. *)
  batches : (int * int) array;
      (** all dynamic batches in execution order — the leaf batch first,
          then internal levels bottom-up; each is
          [(batch_begin, batch_length)]. *)
  postorder : int array;
      (** linearized ids in the order the recursive program would visit
          them (children-first DFS) — the execution order when dynamic
          batching is off. *)
}

val run : Cortex_ds.Structure.t -> t
(** Linearize.  Cost is O(nodes * max_children); §7.5 measures its wall
    clock. *)

val leaf_batch : t -> int * int
(** The leaf partition produced for specialized leaf checks. *)

val internal_batches : t -> (int * int) array
(** Batches of internal nodes only, in execution order. *)

val is_leaf : t -> int -> bool
(** The single-comparison leaf check of Appendix B. *)

val check : t -> unit
(** Validates every invariant documented above against the original
    structure; raises [Failure] on violation.  Used by the test suite
    and cheap enough to run in examples. *)

val memory_bytes : t -> int
(** Footprint of the produced arrays (for the memory accounting). *)
