(** Data structure linearization (§4.2 and Appendix B of the paper).

    At inference time the linearizer — the inspector of the
    inspector-executor pair — traverses the pointer-linked input
    structure on the host CPU and lays it out as arrays for the compiled
    loop nests to iterate over.  No tensor computation happens here
    (property P.1 lets all control flow be resolved from the structure
    alone).

    Numbering scheme (Appendix B): nodes are renumbered such that
    (i) every child is numbered strictly higher than each of its
    parents, (ii) nodes in a dynamic batch occupy a contiguous id range,
    and (iii) all leaves are numbered higher than all internal nodes.
    Consequence: a dynamic batch is representable as a
    [(batch_begin, batch_length)] pair and a leaf check is the single
    comparison [n >= leaf_begin] instead of a memory load. *)

type t = {
  structure : Cortex_ds.Structure.t;
  num_nodes : int;
  num_leaves : int;
  max_children : int;
  new_of_old : int array;  (** creation id -> linearized id *)
  old_of_new : int array;  (** linearized id -> creation id *)
  leaf_begin : int;  (** leaves are exactly [leaf_begin, num_nodes) *)
  child : int array array;
      (** [child.(k).(n)] is the linearized id of the [k]-th child of
          node [n], or [-1] past its fanout; [k < max_children]. *)
  num_children : int array;
  payload : int array;  (** model input payloads, by linearized id *)
  level_of : int array;
      (** dynamic-batching level by linearized id: 0 for leaves,
          [1 + max over children] otherwise. *)
  batches : (int * int) array;
      (** all dynamic batches in execution order — the leaf batch first,
          then internal levels bottom-up; each is
          [(batch_begin, batch_length)]. *)
  postorder : int array;
      (** linearized ids in the order the recursive program would visit
          them (children-first DFS) — the execution order when dynamic
          batching is off. *)
}

type rejection =
  | Fanout_exceeded of { node : int; arity : int; max_children : int }
      (** A node's arity exceeds what the compiled model admits —
          running anyway would silently mis-number the child tables. *)
  | Mixed_kinds of Cortex_ds.Structure.kind * Cortex_ds.Structure.kind
      (** A forest mixes structure kinds. *)
  | Empty_forest
  | Empty_structure
      (** A structure with no nodes — linearizing it would emit a
          phantom [(0, 0)] batch (one kernel launch over nothing). *)
  | Empty_delta  (** A {!delta} with no nodes. *)
  | Bad_delta of string
      (** A {!delta} that does not describe pure growth of the cached
          forest — bad ids, foreign nodes, unreachable nodes, or a
          reordering of existing nodes.  The caller should fall back to
          a cold {!run_forest}. *)
  | Pack_incompatible of { member : int; reason : string }
      (** A member delta view cannot join a {!pack_views} merge — wrong
          child-table width, mixed structure kinds, no delta nodes, or a
          batch table that is not the contiguous ascending level tiling
          delta views guarantee.  The caller serves that member as its
          own size-1 window. *)

exception Rejected of rejection
(** Typed input-validation failure, raised by {!run} and {!run_forest}
    instead of crashing (or worse, silently mis-numbering) on malformed
    inputs. *)

val rejection_to_string : rejection -> string

val run : ?max_children:int -> Cortex_ds.Structure.t -> t
(** Linearize.  Cost is O(nodes * max_children); §7.5 measures its wall
    clock.

    [max_children] overrides the structure's declared fanout bound with
    the *model's* — the produced child tables then have exactly the
    width the compiled kernels index, which is what lets one compiled
    model serve structures built with differing declarations.  Raises
    {!Rejected} ([Fanout_exceeded]) if any node's actual arity exceeds
    the bound. *)

(** {2 Forest linearization (cross-request batching)}

    The serving engine merges the structures of several concurrent
    inference requests into one linearized {e forest} so a single kernel
    sequence covers the whole batch window.  The Appendix-B numbering
    already makes per-level dynamic batches contiguous; linearizing the
    merged forest therefore batches {e across} requests for free, and
    each request additionally occupies a contiguous id range {e within}
    every level (requests are merged in submission order). *)

type span = {
  span_structure : Cortex_ds.Structure.t;  (** the original request *)
  span_ids : int array;
      (** request-local node id -> linearized forest id *)
  span_levels : (int * int) array;
      (** per level, the [(begin, length)] range of this request's nodes
          within the forest numbering — contiguous by construction *)
}

type forest = {
  lin : t;  (** the linearization of the merged forest *)
  spans : span array;  (** one per request, in submission order *)
}

val run_forest : ?max_children:int -> Cortex_ds.Structure.t list -> forest
(** Merge the requests' structures and linearize the forest.  Raises
    {!Rejected} on an empty list, mixed structure kinds, or a fanout
    violation (checked per request, against the request's own node
    ids). *)

val shape_key : ?max_children:int -> Cortex_ds.Structure.t list -> string
(** The canonical shape encoding of a forest: the fanout bound, kinds,
    node counts, root ids and per-node children ids — everything the
    numbering depends on, payloads excluded.  Equal keys iff
    {!run_forest} under the same [max_children] produces identical
    numberings, so a shape-keyed cache needs no collision handling.
    [max_children] defaults as in {!run_forest} (the maximum declared
    bound across the requests); pass the model's bound when the cache
    serves compiled models — the bound is the child-table width, so
    equal shapes under different bounds are different layouts. *)

val rebind_forest : forest -> Cortex_ds.Structure.t list -> forest
(** [rebind_forest cached structures] reuses a cached numbering for a
    forest whose {!shape_key} equals the cached one: the requests are
    re-merged (an O(nodes) structure copy — [Structure.merge_mapped]'s
    id assignment depends on topology alone, so the cached numbering
    tables stay valid), payloads are re-bound through the span maps
    into a fresh payload table, the spans' [span_structure]s point at
    the new requests, and every other array is shared with the cached
    run (they are pure functions of the shape).  The result satisfies
    {!check_forest} and is indistinguishable from a cold {!run_forest}
    of the same requests; only the numbering/batching/span work is
    skipped.  Raises [Invalid_argument] on a request count or node
    count mismatch (the cheap prefix of shape equality — callers are
    expected to key on {!shape_key}). *)

(** {2 Delta linearization (incremental growth)}

    Interactive workloads grow structures incrementally — token by
    token for sequences, node by node for trees.  A cold {!run_forest}
    per token is O(tree) inspector work; {!extend} reuses the cached
    numbering instead: untouched levels keep their internal order and
    only pick up a block offset, numbering decisions are made per delta
    node, and the arrays are rebuilt by tight mapping passes (the
    numbering scheme's descending level blocks force the id shift, but
    not a re-traversal).  The serving engine amortizes even the mapping
    passes by materializing geometrically (see [Engine]). *)

type delta = {
  d_request : int;  (** which request of the forest grows *)
  d_roots : Cortex_ds.Node.t list;
      (** the grown request's new root list (new roots graft over old
          ones; an old root may remain a root) *)
  d_nodes : Cortex_ds.Node.t array;
      (** the appended nodes, ids continuing the request's dense range;
          children may be old nodes (physically) or earlier delta
          nodes *)
}

val extend : forest -> delta -> forest
(** [extend f delta] returns the forest of the grown requests —
    identical, array for array, to a cold {!run_forest} of them (same
    shape key, same numbering, satisfies {!check_forest}, cacheable and
    rebindable like any cold forest).  Raises {!Rejected}
    ([Empty_delta], [Bad_delta], [Fanout_exceeded]) when the delta is
    not pure growth; the caller falls back to a cold run. *)

val check_forest : forest -> unit
(** {!check} on the merged linearization, plus the span invariants:
    spans partition the id space, every request edge/payload/arity maps
    through [span_ids], and each request's per-level ranges are
    contiguous.  Raises [Failure] on violation. *)

val leaf_batch : t -> int * int
(** The leaf partition produced for specialized leaf checks. *)

val internal_batches : t -> (int * int) array
(** Batches of internal nodes only, in execution order. *)

val is_leaf : t -> int -> bool
(** The single-comparison leaf check of Appendix B. *)

val check : t -> unit
(** Validates every invariant documented above against the original
    structure; raises [Failure] on violation.  Used by the test suite
    and cheap enough to run in examples. *)

val memory_bytes : t -> int
(** Footprint of the produced arrays (for the memory accounting).
    Equal to [layout_bytes] over this linearization's node count, batch
    count and child-table width. *)

val layout_bytes : num_nodes:int -> num_batches:int -> max_children:int -> int
(** The closed form behind {!memory_bytes}: the device bytes of the four
    resolved tables for a layout of [num_nodes] nodes in [num_batches]
    level batches at child-table width [max_children].  A single
    structure of height [h] linearizes into [h + 1] batches, so the
    session table can price a conversation without linearizing it.
    0 when [num_nodes <= 0]. *)

val state_rows_bytes : num_nodes:int -> bytes_per_node:int -> int
(** Device bytes of the per-node hidden-state rows a pinned session
    keeps between tokens: [num_nodes * bytes_per_node], 0 for an empty
    conversation.  [bytes_per_node] is the sum over the model's state
    tensors of one node's row bytes. *)

(** {2 Packed delta merge (multi-session batching)}

    When several pinned conversations grow during the same drain tick,
    their per-token delta views (see [Engine]) can merge into one packed
    window: per level, the members' batch runs concatenate into a single
    contiguous packed batch, so the level launches once for the whole
    pack instead of once per session.  Ids below [pk_base] are the
    members' old prefixes laid end to end — never iterated by any batch,
    present only so each member's boundary state rows have a row to be
    pre-seeded into; ids at and above [pk_base] are the delta nodes
    grouped by level.  {!pack_id} translates a member's session id into
    the packed numbering on both sides of that boundary. *)

type packed = {
  pk_view : t;
      (** the merged window: batch table over the packed delta nodes,
          node-id space covering every member's whole conversation *)
  pk_members : int;  (** how many delta views were merged *)
  pk_base : int;  (** packed ids below this are old-prefix rows *)
  pk_old_off : int array;
      (** member -> offset of its old prefix in the packed numbering *)
  pk_delta_base : int array;
      (** member -> its first delta session id (= its old prefix size) *)
  pk_delta_of : int array array;
      (** member -> (session id - delta base) -> packed id *)
}

val pack_views : t list -> packed
(** Merge member delta views into one packed window.  Members keep
    their pack-order position within every level batch, so the merge —
    and everything priced or executed from it — is deterministic in the
    member order.  O(sum of member delta sizes + pack width * levels).
    Raises {!Rejected} ([Pack_incompatible]) when a member's view is
    not a delta-view-shaped tiling, names the member so the caller can
    serve it solo. *)

val pack_id : packed -> member:int -> int -> int
(** [pack_id p ~member sid] is the packed id of [member]'s session id
    [sid] — an old-prefix row below the member's delta base, a delta
    node at or above it. *)
