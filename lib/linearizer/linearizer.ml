module Structure = Cortex_ds.Structure
module Node = Cortex_ds.Node

type t = {
  structure : Structure.t;
  num_nodes : int;
  num_leaves : int;
  max_children : int;
  new_of_old : int array;
  old_of_new : int array;
  leaf_begin : int;
  child : int array array;
  num_children : int array;
  payload : int array;
  level_of : int array;
  batches : (int * int) array;
  postorder : int array;
}

type rejection =
  | Fanout_exceeded of { node : int; arity : int; max_children : int }
  | Mixed_kinds of Structure.kind * Structure.kind
  | Empty_forest
  | Empty_structure
  | Empty_delta
  | Bad_delta of string
  | Pack_incompatible of { member : int; reason : string }

exception Rejected of rejection

let kind_name = function
  | Structure.Sequence -> "sequence"
  | Structure.Tree -> "tree"
  | Structure.Dag -> "dag"

let rejection_to_string = function
  | Fanout_exceeded { node; arity; max_children } ->
    Printf.sprintf "node %d has %d children but the model admits at most %d" node
      arity max_children
  | Mixed_kinds (a, b) ->
    Printf.sprintf "forest mixes %s and %s structures" (kind_name a) (kind_name b)
  | Empty_forest -> "empty forest"
  | Empty_structure -> "empty structure"
  | Empty_delta -> "empty delta"
  | Bad_delta msg -> "bad delta: " ^ msg
  | Pack_incompatible { member; reason } ->
    Printf.sprintf "pack member %d incompatible: %s" member reason

let run ?max_children structure =
  let n = Structure.num_nodes structure in
  (* A structure with no nodes would fall through the numbering and
     emit a phantom (0, 0) batch — one launch over nothing. *)
  if n = 0 then raise (Rejected Empty_structure);
  let max_children =
    Option.value max_children ~default:structure.Structure.max_children
  in
  Array.iter
    (fun (node : Node.t) ->
      let arity = Array.length node.children in
      if arity > max_children then
        raise (Rejected (Fanout_exceeded { node = node.id; arity; max_children })))
    structure.Structure.nodes;
  let old_level = Structure.level structure in
  let height = Array.fold_left max 0 old_level in
  (* Count nodes per level, then hand out id ranges: the highest level
     (roots) gets the lowest ids and leaves (level 0) the highest, so
     children always outnumber their parents and each level is
     contiguous. *)
  let width = Array.make (height + 1) 0 in
  Array.iter (fun l -> width.(l) <- width.(l) + 1) old_level;
  let first_id = Array.make (height + 1) 0 in
  let running = ref 0 in
  for l = height downto 0 do
    first_id.(l) <- !running;
    running := !running + width.(l)
  done;
  let cursor = Array.copy first_id in
  let new_of_old = Array.make n (-1) in
  Array.iteri
    (fun old_id l ->
      new_of_old.(old_id) <- cursor.(l);
      cursor.(l) <- cursor.(l) + 1)
    old_level;
  let old_of_new = Array.make n (-1) in
  Array.iteri (fun old_id new_id -> old_of_new.(new_id) <- old_id) new_of_old;
  let child = Array.init max_children (fun _ -> Array.make n (-1)) in
  let num_children = Array.make n 0 in
  let payload = Array.make n (-1) in
  let level_of = Array.make n (-1) in
  Array.iter
    (fun (node : Node.t) ->
      let id = new_of_old.(node.id) in
      num_children.(id) <- Array.length node.children;
      payload.(id) <- node.payload;
      level_of.(id) <- old_level.(node.id);
      Array.iteri (fun k (c : Node.t) -> child.(k).(id) <- new_of_old.(c.id)) node.children)
    structure.Structure.nodes;
  (* Execution order is leaves first: batch index = level, so index 0 is
     the leaf batch and the last batch holds the roots. *)
  let batches = Array.init (height + 1) (fun l -> (first_id.(l), width.(l))) in
  let leaf_begin = first_id.(0) in
  (* Children-first DFS over the original traversal; in a DAG each node
     is visited once (first visit), matching the inspector pseudocode. *)
  let postorder = Array.make n (-1) in
  let filled = ref 0 in
  let seen = Array.make n false in
  let rec visit (node : Node.t) =
    if not seen.(node.id) then begin
      seen.(node.id) <- true;
      Array.iter visit node.children;
      postorder.(!filled) <- new_of_old.(node.id);
      incr filled
    end
  in
  List.iter visit structure.Structure.roots;
  assert (!filled = n);
  {
    structure;
    num_nodes = n;
    num_leaves = width.(0);
    max_children;
    new_of_old;
    old_of_new;
    leaf_begin;
    child;
    num_children;
    payload;
    level_of;
    batches;
    postorder;
  }

let leaf_batch t = t.batches.(0)

let internal_batches t = Array.sub t.batches 1 (Array.length t.batches - 1)

let is_leaf t n = n >= t.leaf_begin

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let n = t.num_nodes in
  if n <> Structure.num_nodes t.structure then fail "node count mismatch";
  (* Numbering is a permutation. *)
  let seen = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n then fail "numbering out of range";
      if seen.(id) then fail "numbering not injective";
      seen.(id) <- true)
    t.new_of_old;
  Array.iteri
    (fun new_id old_id ->
      if t.new_of_old.(old_id) <> new_id then fail "old_of_new is not the inverse")
    t.old_of_new;
  (* Children numbered higher than parents; payload and arity correct. *)
  Array.iter
    (fun (node : Node.t) ->
      let id = t.new_of_old.(node.id) in
      if t.num_children.(id) <> Array.length node.children then fail "arity mismatch";
      if t.payload.(id) <> node.payload then fail "payload mismatch";
      Array.iteri
        (fun k (c : Node.t) ->
          let cid = t.new_of_old.(c.id) in
          if t.child.(k).(id) <> cid then fail "child array mismatch";
          if cid <= id then fail "child %d not numbered higher than parent %d" cid id)
        node.children;
      for k = Array.length node.children to t.max_children - 1 do
        if t.child.(k).(id) <> -1 then fail "child array has ghost entry"
      done;
      (* Leaf check agrees with the structure. *)
      if is_leaf t id <> Node.is_leaf node then fail "leaf check disagrees for node %d" id)
    t.structure.Structure.nodes;
  (* Batches are contiguous, cover all nodes, and respect dependences:
     no node in a batch has a child in the same or a later batch. *)
  let covered = Array.make n false in
  Array.iteri
    (fun b (first, len) ->
      for id = first to first + len - 1 do
        if covered.(id) then fail "batches overlap at %d" id;
        covered.(id) <- true;
        if t.level_of.(id) <> b then fail "node %d in wrong batch" id;
        for k = 0 to t.max_children - 1 do
          let c = t.child.(k).(id) in
          if c >= 0 && t.level_of.(c) >= b then
            fail "dependence violated: child %d of %d in batch %d >= %d" c id t.level_of.(c) b
        done
      done)
    t.batches;
  Array.iteri (fun id c -> if not c then fail "node %d in no batch" id) covered;
  (* Postorder is a valid children-first order. *)
  let pos = Array.make n (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) t.postorder;
  Array.iteri
    (fun id _ ->
      for k = 0 to t.max_children - 1 do
        let c = t.child.(k).(id) in
        if c >= 0 && pos.(c) >= pos.(id) then fail "postorder violates dependences"
      done)
    pos

(* ---------- forest linearization (cross-request batching) ---------- *)

type span = {
  span_structure : Structure.t;
  span_ids : int array;
  span_levels : (int * int) array;
}

type forest = { lin : t; spans : span array }

let run_forest ?max_children structures =
  (match structures with
   | [] -> raise (Rejected Empty_forest)
   | first :: rest ->
     List.iter
       (fun (s : Structure.t) ->
         if Structure.num_nodes s = 0 then raise (Rejected Empty_structure);
         if s.Structure.kind <> first.Structure.kind then
           raise (Rejected (Mixed_kinds (first.Structure.kind, s.Structure.kind))))
       (first :: rest));
  (* Validate each request's fanout up front so a bad request is
     reported against its own node ids, not the merged renumbering. *)
  (match max_children with
   | None -> ()
   | Some mc ->
     List.iter
       (fun (s : Structure.t) ->
         Array.iter
           (fun (node : Node.t) ->
             let arity = Array.length node.children in
             if arity > mc then
               raise
                 (Rejected (Fanout_exceeded { node = node.id; arity; max_children = mc })))
           s.Structure.nodes)
       structures);
  let merged, maps = Structure.merge_mapped structures in
  let lin = run ?max_children merged in
  let span_of s map =
    let ids = Array.map (fun merged_id -> lin.new_of_old.(merged_id)) map in
    let height = Array.fold_left (fun m id -> max m lin.level_of.(id)) 0 ids in
    let lo = Array.make (height + 1) max_int in
    let hi = Array.make (height + 1) (-1) in
    let count = Array.make (height + 1) 0 in
    Array.iter
      (fun id ->
        let l = lin.level_of.(id) in
        lo.(l) <- min lo.(l) id;
        hi.(l) <- max hi.(l) id;
        count.(l) <- count.(l) + 1)
      ids;
    let span_levels =
      Array.init (height + 1) (fun l ->
          if hi.(l) - lo.(l) + 1 <> count.(l) then
            failwith "Linearizer.run_forest: request batch not contiguous";
          (lo.(l), count.(l)))
    in
    { span_structure = s; span_ids = ids; span_levels }
  in
  let spans =
    Array.of_list (List.map2 span_of structures (Array.to_list maps))
  in
  { lin; spans }

(* The canonical shape encoding: everything the numbering depends on —
   the fanout bound, structure kinds, node counts, root ids and per-node
   children ids — and nothing it doesn't (payloads).  Two forests
   produce equal keys iff [run_forest] would produce identical
   numberings for them, so a shape-keyed cache needs no collision
   handling: string equality on the key is shape equality.

   [max_children] must be in the key: it is the child-table width and
   the fanout-validation bound, so equal shapes linearized under
   different bounds are *different* layouts.  The default mirrors
   [run_forest]'s (the maximum declared bound across the requests). *)
let shape_key ?max_children structures =
  let b = Buffer.create 256 in
  let add_int n =
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ','
  in
  let mc =
    match max_children with
    | Some mc -> mc
    | None ->
      List.fold_left (fun m (s : Structure.t) -> max m s.Structure.max_children) 1
        structures
  in
  Buffer.add_char b 'm';
  add_int mc;
  Buffer.add_char b '!';
  List.iter
    (fun (s : Structure.t) ->
      Buffer.add_char b
        (match s.Structure.kind with
         | Structure.Sequence -> 's'
         | Structure.Tree -> 't'
         | Structure.Dag -> 'd');
      add_int (Structure.num_nodes s);
      List.iter (fun (r : Node.t) -> add_int r.Node.id) s.Structure.roots;
      Buffer.add_char b '|';
      Array.iter
        (fun (node : Node.t) ->
          Array.iter (fun (c : Node.t) -> add_int c.Node.id) node.Node.children;
          Buffer.add_char b ';')
        s.Structure.nodes;
      Buffer.add_char b '#')
    structures;
  Buffer.contents b

(* Reuse a cached numbering for a forest of identical shape: everything
   but the payload table is a pure function of the shape, so a cache hit
   re-binds payloads through the span maps and shares the rest.  The
   [structure] field of the result still names the shape-representative
   merged structure of the original cold run (its payloads are stale);
   nothing downstream reads payloads from it — the executor goes through
   the [payload] array rebound here. *)
let rebind_forest f structures =
  let spans = f.spans in
  if List.length structures <> Array.length spans then
    invalid_arg "Linearizer.rebind_forest: request count mismatch";
  (* Re-merge the new requests: [Structure.merge_mapped] assigns
     creation ids by topology alone, so an equal shape reproduces the
     cached merged structure exactly (modulo payloads) and the cached
     [new_of_old]/[old_of_new] tables remain valid against it.  This
     keeps every [check]/[check_forest] invariant true of a rebound
     forest, at O(nodes) — the expensive part of a cold run (numbering,
     batching, span building) is still skipped. *)
  let merged, _maps = Structure.merge_mapped structures in
  if Structure.num_nodes merged <> f.lin.num_nodes then
    invalid_arg "Linearizer.rebind_forest: shape mismatch";
  let payload = Array.copy f.lin.payload in
  let spans =
    Array.of_list
      (List.mapi
         (fun k (s : Structure.t) ->
           let span = spans.(k) in
           if Structure.num_nodes s <> Array.length span.span_ids then
             invalid_arg "Linearizer.rebind_forest: shape mismatch";
           Array.iter
             (fun (node : Node.t) ->
               payload.(span.span_ids.(node.Node.id)) <- node.Node.payload)
             s.Structure.nodes;
           { span with span_structure = s })
         structures)
  in
  { lin = { f.lin with structure = merged; payload }; spans }

let check_forest f =
  let fail fmt = Printf.ksprintf failwith fmt in
  check f.lin;
  (* The spans partition the forest's id space... *)
  let owner = Array.make f.lin.num_nodes (-1) in
  Array.iteri
    (fun k span ->
      Array.iter
        (fun id ->
          if id < 0 || id >= f.lin.num_nodes then fail "span id out of range";
          if owner.(id) >= 0 then fail "node %d claimed by two requests" id;
          owner.(id) <- k)
        span.span_ids)
    f.spans;
  Array.iteri (fun id k -> if k < 0 then fail "node %d in no request" id) owner;
  (* ... and each span is an isomorphic image of its request: payloads,
     arities and edges all map through span_ids. *)
  Array.iter
    (fun span ->
      Array.iter
        (fun (node : Node.t) ->
          let id = span.span_ids.(node.id) in
          if f.lin.payload.(id) <> node.payload then fail "span payload mismatch";
          if f.lin.num_children.(id) <> Array.length node.children then
            fail "span arity mismatch";
          Array.iteri
            (fun k (c : Node.t) ->
              if f.lin.child.(k).(id) <> span.span_ids.(c.id) then
                fail "span edge mismatch at node %d" node.id)
            node.children;
          let l = f.lin.level_of.(id) in
          let first, len = span.span_levels.(l) in
          if id < first || id >= first + len then
            fail "node %d outside its request's level range" id)
        span.span_structure.Structure.nodes)
    f.spans

(* ---------- delta linearization (incremental growth) ---------- *)

type delta = {
  d_request : int;
  d_roots : Node.t list;
  d_nodes : Node.t array;
}

(* Grow request [d_request] of an already-linearized forest without a
   cold [run_forest] of the whole thing.  The numbering scheme forces a
   global renumbering in the worst case — level blocks are laid out in
   descending level order, so grafting a new root shifts every id — but
   all the numbering *decisions* are made per delta node and per level:
   untouched levels keep their cached internal order and only pick up a
   block offset, and the rebuild is a handful of tight O(n) mapping
   passes instead of a cold run's graph merge, level DFS and span
   construction.  The result is *identical* (array for array) to
   [run_forest] of the grown structures, so it shares their shape key,
   satisfies [check_forest], and can be cached and rebound like any
   cold forest. *)
let extend f (dl : delta) =
  let lin = f.lin in
  let spans = f.spans in
  let r = Array.length spans in
  let k = dl.d_request in
  if k < 0 || k >= r then
    raise (Rejected (Bad_delta (Printf.sprintf "no request %d in a %d-request forest" k r)));
  let d = Array.length dl.d_nodes in
  if d = 0 then raise (Rejected Empty_delta);
  let span = spans.(k) in
  let base = span.span_structure in
  let bsize = Structure.num_nodes base in
  let n = lin.num_nodes in
  let n' = n + d in
  let mc = lin.max_children in
  (* The model's fanout bound applies to the new nodes too. *)
  Array.iter
    (fun (node : Node.t) ->
      let arity = Array.length node.children in
      if arity > mc then
        raise (Rejected (Fanout_exceeded { node = node.id; arity; max_children = mc })))
    dl.d_nodes;
  let grown =
    try Structure.append base ~roots:dl.d_roots ~added:dl.d_nodes
    with Structure.Invalid msg -> raise (Rejected (Bad_delta msg))
  in
  (* Request-local creation order of the grown structure: the order
     [Structure.merge_mapped] would copy it in (children-first DFS from
     the roots).  The cold numbering hands out per-level ids in creation
     order, so this ranking decides where each delta node lands in its
     level slice. *)
  let rank = Array.make (bsize + d) (-1) in
  let next = ref 0 in
  let rec visit (node : Node.t) =
    if rank.(node.id) = -1 then begin
      rank.(node.id) <- -2;
      Array.iter visit node.children;
      rank.(node.id) <- !next;
      incr next
    end
  in
  List.iter visit grown.Structure.roots;
  let order = Array.make (bsize + d) (-1) in
  Array.iteri (fun local rk -> order.(rk) <- local) rank;
  (* Merged creation-id block of request [k], and each old node's rank
     within it under the *base* roots. *)
  let off_k = ref 0 in
  for j = 0 to k - 1 do
    off_k := !off_k + Array.length spans.(j).span_ids
  done;
  let off_k = !off_k in
  let base_rank local = lin.old_of_new.(span.span_ids.(local)) - off_k in
  (* The cached numbering is only reusable if the delta preserves the
     old nodes' relative creation order (it appends; it does not
     reshuffle).  [tail_append] additionally means every delta node
     ranks after every old node — the only case a grow-by-one session
     produces, and the one that keeps delta batches contiguous. *)
  let tail_append = ref true in
  let prev = ref (-1) in
  Array.iter
    (fun local ->
      if local < bsize then begin
        let br = base_rank local in
        if br < !prev then
          raise (Rejected (Bad_delta "delta reorders existing nodes"));
        prev := br;
        if rank.(local) <> br then tail_append := false
      end)
    order;
  let tail_append = !tail_append in
  (* Levels of the delta nodes (children have smaller ids, so new
     children are already computed when their parent is). *)
  let new_level = Array.make d 0 in
  Array.iteri
    (fun i (node : Node.t) ->
      let lv =
        Array.fold_left
          (fun m (c : Node.t) ->
            let cl =
              if c.id < bsize then lin.level_of.(span.span_ids.(c.id))
              else new_level.(c.id - bsize)
            in
            max m cl)
          (-1) node.children
      in
      new_level.(i) <- lv + 1)
    dl.d_nodes;
  let old_height = Array.length lin.batches - 1 in
  let height' = Array.fold_left max old_height new_level in
  let ins = Array.make (height' + 1) 0 in
  Array.iter (fun lv -> ins.(lv) <- ins.(lv) + 1) new_level;
  let old_width l = if l <= old_height then snd lin.batches.(l) else 0 in
  let old_first l = fst lin.batches.(l) in
  let width' = Array.init (height' + 1) (fun l -> old_width l + ins.(l)) in
  let first' = Array.make (height' + 1) 0 in
  let running = ref 0 in
  for l = height' downto 0 do
    first'.(l) <- !running;
    running := !running + width'.(l)
  done;
  (* Where request [k]'s slice starts within each level, relative to the
     level's first id: unchanged where the request already has nodes;
     the sum of earlier requests' widths where it does not (requests
     occupy level slices in request order). *)
  let span_height = Array.length span.span_levels - 1 in
  let old_count l = if l <= span_height then snd span.span_levels.(l) else 0 in
  let rel_start l =
    if old_count l > 0 then fst span.span_levels.(l) - old_first l
    else begin
      let acc = ref 0 in
      for j = 0 to k - 1 do
        let sl = spans.(j).span_levels in
        if l < Array.length sl then acc := !acc + snd sl.(l)
      done;
      !acc
    end
  in
  (* Slice position of every request-[k] node (old and new) in its
     level, by grown creation rank — old relative order is preserved,
     delta nodes interleave where their rank puts them. *)
  let slice_pos = Array.make (bsize + d) 0 in
  let counters = Array.make (height' + 1) 0 in
  Array.iter
    (fun local ->
      let lv =
        if local < bsize then lin.level_of.(span.span_ids.(local))
        else new_level.(local - bsize)
      in
      slice_pos.(local) <- counters.(lv);
      counters.(lv) <- counters.(lv) + 1)
    order;
  (* New forest ids: [fmap] for survivors, [new_fid] for delta nodes. *)
  let fmap = Array.make n (-1) in
  Array.iteri
    (fun j sp ->
      if j <> k then
        Array.iter
          (fun x ->
            let l = lin.level_of.(x) in
            fmap.(x) <- x + (first'.(l) - old_first l) + (if j > k then ins.(l) else 0))
          sp.span_ids)
    spans;
  for local = 0 to bsize - 1 do
    let x = span.span_ids.(local) in
    let l = lin.level_of.(x) in
    fmap.(x) <- first'.(l) + rel_start l + slice_pos.(local)
  done;
  let new_fid =
    Array.init d (fun i ->
        let l = new_level.(i) in
        first'.(l) + rel_start l + slice_pos.(bsize + i))
  in
  (* Rebuild the tables by mapping passes. *)
  let child' = Array.init mc (fun _ -> Array.make n' (-1)) in
  let num_children' = Array.make n' 0 in
  let payload' = Array.make n' (-1) in
  let level_of' = Array.make n' (-1) in
  for x = 0 to n - 1 do
    let y = fmap.(x) in
    num_children'.(y) <- lin.num_children.(x);
    payload'.(y) <- lin.payload.(x);
    level_of'.(y) <- lin.level_of.(x);
    for c = 0 to mc - 1 do
      let ch = lin.child.(c).(x) in
      if ch >= 0 then child'.(c).(y) <- fmap.(ch)
    done
  done;
  let local_fid local =
    if local < bsize then fmap.(span.span_ids.(local)) else new_fid.(local - bsize)
  in
  Array.iteri
    (fun i (node : Node.t) ->
      let y = new_fid.(i) in
      num_children'.(y) <- Array.length node.children;
      payload'.(y) <- node.payload;
      level_of'.(y) <- new_level.(i);
      Array.iteri (fun c (ch : Node.t) -> child'.(c).(y) <- local_fid ch.id) node.children)
    dl.d_nodes;
  (* The grown merged structure.  When the grown request is last and the
     delta is a pure tail append, graft copies of the delta nodes onto
     the cached merged structure directly; otherwise fall back to a
     re-merge (creation ids come out the same either way). *)
  let structure' =
    if k = r - 1 && tail_append then begin
      let bld = Node.builder_from n in
      let copies = Array.make d None in
      let merged_of_local local =
        if local < bsize then lin.structure.Structure.nodes.(off_k + base_rank local)
        else
          match copies.(local - bsize) with
          | Some node -> node
          | None -> assert false
      in
      for rk = bsize to bsize + d - 1 do
        let local = order.(rk) in
        let node = dl.d_nodes.(local - bsize) in
        let children =
          Array.to_list (Array.map (fun (c : Node.t) -> merged_of_local c.id) node.children)
        in
        copies.(local - bsize) <- Some (Node.make bld ~payload:node.payload children)
      done;
      let added =
        Array.map (function Some node -> node | None -> assert false) copies
      in
      (* Re-sort into creation-id order (copies were made in rank order). *)
      Array.sort (fun (a : Node.t) (b : Node.t) -> compare a.id b.id) added;
      let prefix_roots = ref [] in
      let rest = ref lin.structure.Structure.roots in
      for j = 0 to k - 1 do
        List.iter
          (fun _ ->
            match !rest with
            | root :: tl ->
              prefix_roots := root :: !prefix_roots;
              rest := tl
            | [] -> assert false)
          spans.(j).span_structure.Structure.roots
      done;
      let new_roots = List.map (fun (rt : Node.t) -> merged_of_local rt.id) grown.Structure.roots in
      let roots = List.rev_append !prefix_roots new_roots in
      (try Structure.append lin.structure ~roots ~added
       with Structure.Invalid msg -> raise (Rejected (Bad_delta msg)))
    end
    else begin
      let structures =
        List.mapi
          (fun j sp -> if j = k then grown else sp.span_structure)
          (Array.to_list spans)
      in
      fst (Structure.merge_mapped structures)
    end
  in
  assert (Structure.num_nodes structure' = n');
  (* Creation-id maps: requests before [k] keep their block, request
     [k]'s block reorders by grown rank and absorbs the delta, requests
     after shift by [d]. *)
  let base_order = Array.make bsize (-1) in
  for local = 0 to bsize - 1 do
    base_order.(base_rank local) <- local
  done;
  let new_of_old' = Array.make n' (-1) in
  for m = 0 to n - 1 do
    let m' =
      if m < off_k then m
      else if m < off_k + bsize then off_k + rank.(base_order.(m - off_k))
      else m + d
    in
    new_of_old'.(m') <- fmap.(lin.new_of_old.(m))
  done;
  for i = 0 to d - 1 do
    new_of_old'.(off_k + rank.(bsize + i)) <- new_fid.(i)
  done;
  let old_of_new' = Array.make n' (-1) in
  Array.iteri (fun m y -> old_of_new'.(y) <- m) new_of_old';
  (* Children-first DFS over the new tables, in merged-root order —
     exactly the traversal a cold [run] performs. *)
  let root_fids =
    List.concat
      (List.mapi
         (fun j sp ->
           if j = k then List.map (fun (rt : Node.t) -> local_fid rt.id) grown.Structure.roots
           else
             List.map
               (fun (rt : Node.t) -> fmap.(sp.span_ids.(rt.id)))
               sp.span_structure.Structure.roots)
         (Array.to_list spans))
  in
  let postorder' = Array.make n' (-1) in
  let filled = ref 0 in
  let seen = Array.make n' false in
  let rec dfs y =
    if not seen.(y) then begin
      seen.(y) <- true;
      for c = 0 to num_children'.(y) - 1 do
        dfs child'.(c).(y)
      done;
      postorder'.(!filled) <- y;
      incr filled
    end
  in
  List.iter dfs root_fids;
  assert (!filled = n');
  let batches' = Array.init (height' + 1) (fun l -> (first'.(l), width'.(l))) in
  let lin' =
    {
      structure = structure';
      num_nodes = n';
      num_leaves = width'.(0);
      max_children = mc;
      new_of_old = new_of_old';
      old_of_new = old_of_new';
      leaf_begin = first'.(0);
      child = child';
      num_children = num_children';
      payload = payload';
      level_of = level_of';
      batches = batches';
      postorder = postorder';
    }
  in
  (* Rebuild the spans: untouched requests shift wholesale, the grown
     request extends. *)
  let height_k' =
    let h = ref 0 in
    for local = 0 to bsize - 1 do
      h := max !h lin.level_of.(span.span_ids.(local))
    done;
    Array.fold_left max !h new_level
  in
  let spans' =
    Array.mapi
      (fun j sp ->
        if j <> k then
          {
            sp with
            span_ids = Array.map (fun x -> fmap.(x)) sp.span_ids;
            span_levels = Array.map (fun (lo, c) -> (fmap.(lo), c)) sp.span_levels;
          }
        else begin
          let span_ids = Array.init (bsize + d) local_fid in
          let span_levels =
            Array.init (height_k' + 1) (fun l ->
                (first'.(l) + rel_start l, old_count l + ins.(l)))
          in
          { span_structure = grown; span_ids; span_levels }
        end)
      spans
  in
  { lin = lin'; spans = spans' }

let layout_bytes ~num_nodes ~num_batches ~max_children =
  (* ints are 8 bytes on this platform.  The dynamic-batching executor
     resolves exactly four tables on device ([Lower.bind]): the child
     tables ([max_children] x n, via [u_child]), the fanout counts
     (n, via [u_num_children]), the payloads (n, via [u_payload]) and
     the batch table (2 ints per batch, via [u_batch_begin]/[u_batch_len]).
     [postorder] and the numbering maps are host-side inspector state and
     are not billed — [Cost] only ever charges the resolved tables.
     Exposed in closed form so the session table can price a conversation
     it has not linearized yet (a single structure of n nodes and height h
     lays out as num_batches = h + 1). *)
  if num_nodes <= 0 then 0
  else
    let ints =
      (max_children * num_nodes) + num_nodes + num_nodes + (2 * num_batches)
    in
    8 * ints

let state_rows_bytes ~num_nodes ~bytes_per_node =
  (* The other half of a session's footprint: the per-node hidden-state
     rows its device pins between tokens.  [bytes_per_node] is the sum of
     one node's row bytes across the model's state tensors (0 when the
     engine serves shapes only). *)
  if num_nodes <= 0 then 0 else num_nodes * bytes_per_node

let memory_bytes t =
  layout_bytes ~num_nodes:t.num_nodes ~num_batches:(Array.length t.batches)
    ~max_children:t.max_children

(* ---------- packed delta merge (multi-session batching) ---------- *)

type packed = {
  pk_view : t;
  pk_members : int;
  pk_base : int;
  pk_old_off : int array;
  pk_delta_base : int array;
  pk_delta_of : int array array;
}

let pack_id p ~member sid =
  if sid < p.pk_delta_base.(member) then p.pk_old_off.(member) + sid
  else p.pk_delta_of.(member).(sid - p.pk_delta_base.(member))

let pack_views views =
  let reject member reason =
    raise (Rejected (Pack_incompatible { member; reason }))
  in
  if views = [] then reject 0 "empty member list";
  let views = Array.of_list views in
  let m = Array.length views in
  let first = views.(0) in
  let mc = first.max_children in
  (* Per member: validate the delta-view shape (a leaf batch at the
     delta base, then contiguous strictly-ascending level runs covering
     the whole tail) and collect its batch levels. *)
  let delta_base = Array.make m 0 in
  let member_batches = Array.make m [||] in
  let max_level = ref 0 in
  Array.iteri
    (fun i v ->
      if v.max_children <> mc then
        reject i
          (Printf.sprintf "child-table width %d, pack is %d" v.max_children mc);
      if v.structure.Structure.kind <> first.structure.Structure.kind then
        reject i "structure kind differs from the pack's";
      let nb = Array.length v.batches in
      if nb = 0 then reject i "no batches";
      let db = fst v.batches.(0) in
      if v.leaf_begin <> db then reject i "leaf batch not at the delta base";
      if v.num_nodes <= db then reject i "no delta nodes";
      (* The runs must tile [db, num_nodes) in order: that is what lets
         member blocks concatenate into contiguous packed batches. *)
      let cursor = ref db in
      let levels =
        Array.mapi
          (fun k (b, len) ->
            if b <> !cursor || len < 0 then reject i "non-contiguous delta batches";
            cursor := b + len;
            let l = if k = 0 then 0 else v.level_of.(b) in
            if k = 1 && l < 1 then reject i "internal batch at leaf level";
            if k > 1 && l <= v.level_of.(fst v.batches.(k - 1)) then
              reject i "batch levels not ascending";
            if l > !max_level then max_level := l;
            (l, b, len))
          v.batches
      in
      if !cursor <> v.num_nodes then reject i "batches do not cover the delta";
      delta_base.(i) <- db;
      member_batches.(i) <- levels)
    views;
  (* Region A: each member's old prefix, concatenated.  No batch covers
     these rows, but they are not inert: boundary state rows are
     pre-seeded here, and the setup kernels' precompute loops run over
     the whole id space [0, num_nodes), so the rows must carry the
     member's real payload/child data (like a single-session delta view,
     whose arrays cover the whole conversation). *)
  let old_off = Array.make m 0 in
  let base = ref 0 in
  Array.iteri
    (fun i db ->
      old_off.(i) <- !base;
      base := !base + db)
    delta_base;
  let base = !base in
  (* Region B: delta nodes grouped by level, members in pack order
     within each level, so every packed batch is one contiguous run. *)
  let delta_of =
    Array.init m (fun i -> Array.make (views.(i).num_nodes - delta_base.(i)) (-1))
  in
  let cursor = ref base in
  let batches = ref [] in
  for l = 0 to !max_level do
    let level_begin = !cursor in
    for i = 0 to m - 1 do
      Array.iter
        (fun (lv, b, len) ->
          if lv = l && len > 0 then begin
            for k = 0 to len - 1 do
              delta_of.(i).(b + k - delta_base.(i)) <- !cursor + k
            done;
            cursor := !cursor + len
          end)
        member_batches.(i)
    done;
    let width = !cursor - level_begin in
    (* The leaf batch is always present (possibly empty, like the member
       views'); higher levels only when some member reaches them. *)
    if l = 0 || width > 0 then batches := (level_begin, width) :: !batches
  done;
  let num_nodes = !cursor in
  let num_leaves =
    match List.rev !batches with (_, w) :: _ -> w | [] -> 0
  in
  let child = Array.init mc (fun _ -> Array.make num_nodes (-1)) in
  let num_children = Array.make num_nodes 0 in
  let payload = Array.make num_nodes (-1) in
  let level_of = Array.make num_nodes 0 in
  for i = 0 to m - 1 do
    let v = views.(i) in
    let db = delta_base.(i) in
    let remap c =
      if c < 0 then -1
      else if c < db then old_off.(i) + c
      else delta_of.(i).(c - db)
    in
    for s = 0 to db - 1 do
      let y = old_off.(i) + s in
      num_children.(y) <- v.num_children.(s);
      payload.(y) <- v.payload.(s);
      level_of.(y) <- v.level_of.(s);
      for k = 0 to mc - 1 do
        child.(k).(y) <- remap v.child.(k).(s)
      done
    done;
    for s = db to v.num_nodes - 1 do
      let y = delta_of.(i).(s - db) in
      num_children.(y) <- v.num_children.(s);
      payload.(y) <- v.payload.(s);
      level_of.(y) <- v.level_of.(s);
      for k = 0 to mc - 1 do
        child.(k).(y) <- remap v.child.(k).(s)
      done
    done
  done;
  let view =
    {
      structure = first.structure;
      num_nodes;
      num_leaves;
      max_children = mc;
      (* Host-side inspector state the executor never resolves — left
         empty like the member delta views, so packing stays O(delta). *)
      new_of_old = [||];
      old_of_new = [||];
      leaf_begin = base;
      child;
      num_children;
      payload;
      level_of;
      batches = Array.of_list (List.rev !batches);
      postorder = [||];
    }
  in
  {
    pk_view = view;
    pk_members = m;
    pk_base = base;
    pk_old_off = old_off;
    pk_delta_base = delta_base;
    pk_delta_of = delta_of;
  }
