module Structure = Cortex_ds.Structure
module Node = Cortex_ds.Node

type t = {
  structure : Structure.t;
  num_nodes : int;
  num_leaves : int;
  max_children : int;
  new_of_old : int array;
  old_of_new : int array;
  leaf_begin : int;
  child : int array array;
  num_children : int array;
  payload : int array;
  level_of : int array;
  batches : (int * int) array;
  postorder : int array;
}

type rejection =
  | Fanout_exceeded of { node : int; arity : int; max_children : int }
  | Mixed_kinds of Structure.kind * Structure.kind
  | Empty_forest
  | Empty_structure

exception Rejected of rejection

let kind_name = function
  | Structure.Sequence -> "sequence"
  | Structure.Tree -> "tree"
  | Structure.Dag -> "dag"

let rejection_to_string = function
  | Fanout_exceeded { node; arity; max_children } ->
    Printf.sprintf "node %d has %d children but the model admits at most %d" node
      arity max_children
  | Mixed_kinds (a, b) ->
    Printf.sprintf "forest mixes %s and %s structures" (kind_name a) (kind_name b)
  | Empty_forest -> "empty forest"
  | Empty_structure -> "empty structure"

let run ?max_children structure =
  let n = Structure.num_nodes structure in
  (* A structure with no nodes would fall through the numbering and
     emit a phantom (0, 0) batch — one launch over nothing. *)
  if n = 0 then raise (Rejected Empty_structure);
  let max_children =
    Option.value max_children ~default:structure.Structure.max_children
  in
  Array.iter
    (fun (node : Node.t) ->
      let arity = Array.length node.children in
      if arity > max_children then
        raise (Rejected (Fanout_exceeded { node = node.id; arity; max_children })))
    structure.Structure.nodes;
  let old_level = Structure.level structure in
  let height = Array.fold_left max 0 old_level in
  (* Count nodes per level, then hand out id ranges: the highest level
     (roots) gets the lowest ids and leaves (level 0) the highest, so
     children always outnumber their parents and each level is
     contiguous. *)
  let width = Array.make (height + 1) 0 in
  Array.iter (fun l -> width.(l) <- width.(l) + 1) old_level;
  let first_id = Array.make (height + 1) 0 in
  let running = ref 0 in
  for l = height downto 0 do
    first_id.(l) <- !running;
    running := !running + width.(l)
  done;
  let cursor = Array.copy first_id in
  let new_of_old = Array.make n (-1) in
  Array.iteri
    (fun old_id l ->
      new_of_old.(old_id) <- cursor.(l);
      cursor.(l) <- cursor.(l) + 1)
    old_level;
  let old_of_new = Array.make n (-1) in
  Array.iteri (fun old_id new_id -> old_of_new.(new_id) <- old_id) new_of_old;
  let child = Array.init max_children (fun _ -> Array.make n (-1)) in
  let num_children = Array.make n 0 in
  let payload = Array.make n (-1) in
  let level_of = Array.make n (-1) in
  Array.iter
    (fun (node : Node.t) ->
      let id = new_of_old.(node.id) in
      num_children.(id) <- Array.length node.children;
      payload.(id) <- node.payload;
      level_of.(id) <- old_level.(node.id);
      Array.iteri (fun k (c : Node.t) -> child.(k).(id) <- new_of_old.(c.id)) node.children)
    structure.Structure.nodes;
  (* Execution order is leaves first: batch index = level, so index 0 is
     the leaf batch and the last batch holds the roots. *)
  let batches = Array.init (height + 1) (fun l -> (first_id.(l), width.(l))) in
  let leaf_begin = first_id.(0) in
  (* Children-first DFS over the original traversal; in a DAG each node
     is visited once (first visit), matching the inspector pseudocode. *)
  let postorder = Array.make n (-1) in
  let filled = ref 0 in
  let seen = Array.make n false in
  let rec visit (node : Node.t) =
    if not seen.(node.id) then begin
      seen.(node.id) <- true;
      Array.iter visit node.children;
      postorder.(!filled) <- new_of_old.(node.id);
      incr filled
    end
  in
  List.iter visit structure.Structure.roots;
  assert (!filled = n);
  {
    structure;
    num_nodes = n;
    num_leaves = width.(0);
    max_children;
    new_of_old;
    old_of_new;
    leaf_begin;
    child;
    num_children;
    payload;
    level_of;
    batches;
    postorder;
  }

let leaf_batch t = t.batches.(0)

let internal_batches t = Array.sub t.batches 1 (Array.length t.batches - 1)

let is_leaf t n = n >= t.leaf_begin

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let n = t.num_nodes in
  if n <> Structure.num_nodes t.structure then fail "node count mismatch";
  (* Numbering is a permutation. *)
  let seen = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n then fail "numbering out of range";
      if seen.(id) then fail "numbering not injective";
      seen.(id) <- true)
    t.new_of_old;
  Array.iteri
    (fun new_id old_id ->
      if t.new_of_old.(old_id) <> new_id then fail "old_of_new is not the inverse")
    t.old_of_new;
  (* Children numbered higher than parents; payload and arity correct. *)
  Array.iter
    (fun (node : Node.t) ->
      let id = t.new_of_old.(node.id) in
      if t.num_children.(id) <> Array.length node.children then fail "arity mismatch";
      if t.payload.(id) <> node.payload then fail "payload mismatch";
      Array.iteri
        (fun k (c : Node.t) ->
          let cid = t.new_of_old.(c.id) in
          if t.child.(k).(id) <> cid then fail "child array mismatch";
          if cid <= id then fail "child %d not numbered higher than parent %d" cid id)
        node.children;
      for k = Array.length node.children to t.max_children - 1 do
        if t.child.(k).(id) <> -1 then fail "child array has ghost entry"
      done;
      (* Leaf check agrees with the structure. *)
      if is_leaf t id <> Node.is_leaf node then fail "leaf check disagrees for node %d" id)
    t.structure.Structure.nodes;
  (* Batches are contiguous, cover all nodes, and respect dependences:
     no node in a batch has a child in the same or a later batch. *)
  let covered = Array.make n false in
  Array.iteri
    (fun b (first, len) ->
      for id = first to first + len - 1 do
        if covered.(id) then fail "batches overlap at %d" id;
        covered.(id) <- true;
        if t.level_of.(id) <> b then fail "node %d in wrong batch" id;
        for k = 0 to t.max_children - 1 do
          let c = t.child.(k).(id) in
          if c >= 0 && t.level_of.(c) >= b then
            fail "dependence violated: child %d of %d in batch %d >= %d" c id t.level_of.(c) b
        done
      done)
    t.batches;
  Array.iteri (fun id c -> if not c then fail "node %d in no batch" id) covered;
  (* Postorder is a valid children-first order. *)
  let pos = Array.make n (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) t.postorder;
  Array.iteri
    (fun id _ ->
      for k = 0 to t.max_children - 1 do
        let c = t.child.(k).(id) in
        if c >= 0 && pos.(c) >= pos.(id) then fail "postorder violates dependences"
      done)
    pos

(* ---------- forest linearization (cross-request batching) ---------- *)

type span = {
  span_structure : Structure.t;
  span_ids : int array;
  span_levels : (int * int) array;
}

type forest = { lin : t; spans : span array }

let run_forest ?max_children structures =
  (match structures with
   | [] -> raise (Rejected Empty_forest)
   | first :: rest ->
     List.iter
       (fun (s : Structure.t) ->
         if Structure.num_nodes s = 0 then raise (Rejected Empty_structure);
         if s.Structure.kind <> first.Structure.kind then
           raise (Rejected (Mixed_kinds (first.Structure.kind, s.Structure.kind))))
       (first :: rest));
  (* Validate each request's fanout up front so a bad request is
     reported against its own node ids, not the merged renumbering. *)
  (match max_children with
   | None -> ()
   | Some mc ->
     List.iter
       (fun (s : Structure.t) ->
         Array.iter
           (fun (node : Node.t) ->
             let arity = Array.length node.children in
             if arity > mc then
               raise
                 (Rejected (Fanout_exceeded { node = node.id; arity; max_children = mc })))
           s.Structure.nodes)
       structures);
  let merged, maps = Structure.merge_mapped structures in
  let lin = run ?max_children merged in
  let span_of s map =
    let ids = Array.map (fun merged_id -> lin.new_of_old.(merged_id)) map in
    let height = Array.fold_left (fun m id -> max m lin.level_of.(id)) 0 ids in
    let lo = Array.make (height + 1) max_int in
    let hi = Array.make (height + 1) (-1) in
    let count = Array.make (height + 1) 0 in
    Array.iter
      (fun id ->
        let l = lin.level_of.(id) in
        lo.(l) <- min lo.(l) id;
        hi.(l) <- max hi.(l) id;
        count.(l) <- count.(l) + 1)
      ids;
    let span_levels =
      Array.init (height + 1) (fun l ->
          if hi.(l) - lo.(l) + 1 <> count.(l) then
            failwith "Linearizer.run_forest: request batch not contiguous";
          (lo.(l), count.(l)))
    in
    { span_structure = s; span_ids = ids; span_levels }
  in
  let spans =
    Array.of_list (List.map2 span_of structures (Array.to_list maps))
  in
  { lin; spans }

(* The canonical shape encoding: everything the numbering depends on —
   structure kinds, node counts, root ids and per-node children ids —
   and nothing it doesn't (payloads).  Two forests produce equal keys
   iff [run_forest] would produce identical numberings for them, so a
   shape-keyed cache needs no collision handling: string equality on
   the key is shape equality. *)
let shape_key structures =
  let b = Buffer.create 256 in
  let add_int n =
    Buffer.add_string b (string_of_int n);
    Buffer.add_char b ','
  in
  List.iter
    (fun (s : Structure.t) ->
      Buffer.add_char b
        (match s.Structure.kind with
         | Structure.Sequence -> 's'
         | Structure.Tree -> 't'
         | Structure.Dag -> 'd');
      add_int (Structure.num_nodes s);
      List.iter (fun (r : Node.t) -> add_int r.Node.id) s.Structure.roots;
      Buffer.add_char b '|';
      Array.iter
        (fun (node : Node.t) ->
          Array.iter (fun (c : Node.t) -> add_int c.Node.id) node.Node.children;
          Buffer.add_char b ';')
        s.Structure.nodes;
      Buffer.add_char b '#')
    structures;
  Buffer.contents b

(* Reuse a cached numbering for a forest of identical shape: everything
   but the payload table is a pure function of the shape, so a cache hit
   re-binds payloads through the span maps and shares the rest.  The
   [structure] field of the result still names the shape-representative
   merged structure of the original cold run (its payloads are stale);
   nothing downstream reads payloads from it — the executor goes through
   the [payload] array rebound here. *)
let rebind_forest f structures =
  let spans = f.spans in
  if List.length structures <> Array.length spans then
    invalid_arg "Linearizer.rebind_forest: request count mismatch";
  (* Re-merge the new requests: [Structure.merge_mapped] assigns
     creation ids by topology alone, so an equal shape reproduces the
     cached merged structure exactly (modulo payloads) and the cached
     [new_of_old]/[old_of_new] tables remain valid against it.  This
     keeps every [check]/[check_forest] invariant true of a rebound
     forest, at O(nodes) — the expensive part of a cold run (numbering,
     batching, span building) is still skipped. *)
  let merged, _maps = Structure.merge_mapped structures in
  if Structure.num_nodes merged <> f.lin.num_nodes then
    invalid_arg "Linearizer.rebind_forest: shape mismatch";
  let payload = Array.copy f.lin.payload in
  let spans =
    Array.of_list
      (List.mapi
         (fun k (s : Structure.t) ->
           let span = spans.(k) in
           if Structure.num_nodes s <> Array.length span.span_ids then
             invalid_arg "Linearizer.rebind_forest: shape mismatch";
           Array.iter
             (fun (node : Node.t) ->
               payload.(span.span_ids.(node.Node.id)) <- node.Node.payload)
             s.Structure.nodes;
           { span with span_structure = s })
         structures)
  in
  { lin = { f.lin with structure = merged; payload }; spans }

let check_forest f =
  let fail fmt = Printf.ksprintf failwith fmt in
  check f.lin;
  (* The spans partition the forest's id space... *)
  let owner = Array.make f.lin.num_nodes (-1) in
  Array.iteri
    (fun k span ->
      Array.iter
        (fun id ->
          if id < 0 || id >= f.lin.num_nodes then fail "span id out of range";
          if owner.(id) >= 0 then fail "node %d claimed by two requests" id;
          owner.(id) <- k)
        span.span_ids)
    f.spans;
  Array.iteri (fun id k -> if k < 0 then fail "node %d in no request" id) owner;
  (* ... and each span is an isomorphic image of its request: payloads,
     arities and edges all map through span_ids. *)
  Array.iter
    (fun span ->
      Array.iter
        (fun (node : Node.t) ->
          let id = span.span_ids.(node.id) in
          if f.lin.payload.(id) <> node.payload then fail "span payload mismatch";
          if f.lin.num_children.(id) <> Array.length node.children then
            fail "span arity mismatch";
          Array.iteri
            (fun k (c : Node.t) ->
              if f.lin.child.(k).(id) <> span.span_ids.(c.id) then
                fail "span edge mismatch at node %d" node.id)
            node.children;
          let l = f.lin.level_of.(id) in
          let first, len = span.span_levels.(l) in
          if id < first || id >= first + len then
            fail "node %d outside its request's level range" id)
        span.span_structure.Structure.nodes)
    f.spans

let memory_bytes t =
  (* ints are 8 bytes on this platform; the device-side arrays the
     executor consumes are the child tables, payloads and batch table. *)
  let ints =
    (t.max_children * t.num_nodes) + t.num_nodes + t.num_nodes + t.num_nodes
    + (2 * Array.length t.batches)
  in
  8 * ints
