type role = Child_phase | Parent_phase

type t = { batches : int array array; roles : role array }

let compute (lin : Linearizer.t) =
  (match lin.structure.Cortex_ds.Structure.kind with
   | Cortex_ds.Structure.Dag -> failwith "Unrolling.compute: unrolling is restricted to trees and sequences"
   | Cortex_ds.Structure.Tree | Cortex_ds.Structure.Sequence -> ());
  let n = lin.num_nodes in
  let parent = Array.make n (-1) in
  for id = 0 to n - 1 do
    for k = 0 to lin.max_children - 1 do
      let c = lin.child.(k).(id) in
      if c >= 0 then parent.(c) <- id
    done
  done;
  (* Depth from the root; parents are numbered lower than children, so a
     single ascending pass suffices. *)
  let depth = Array.make n 0 in
  for id = 0 to n - 1 do
    if parent.(id) >= 0 then depth.(id) <- depth.(parent.(id)) + 1
  done;
  let is_internal id = not (Linearizer.is_leaf lin id) in
  (* Group head of an internal node: itself at even depth, its parent at
     odd depth (the parent of an internal node is always internal). *)
  let head id = if depth.(id) mod 2 = 0 then id else parent.(id) in
  (* Group level: 1 + max level of the groups this group's members'
     internal children head.  Heads are numbered lower than all their
     descendants, so a descending pass over heads sees dependencies
     first. *)
  let level = Array.make n 0 in
  (* members listed per head *)
  let members = Array.make n [] in
  for id = n - 1 downto 0 do
    if is_internal id then members.(head id) <- id :: members.(head id)
  done;
  for id = n - 1 downto 0 do
    if is_internal id && depth.(id) mod 2 = 0 then begin
      let lvl = ref 1 in
      List.iter
        (fun m ->
          for k = 0 to lin.max_children - 1 do
            let c = lin.child.(k).(m) in
            if c >= 0 && is_internal c && head c <> id then
              lvl := max !lvl (level.(head c) + 1)
          done)
        members.(id);
      level.(id) <- !lvl
    end
  done;
  let max_level =
    Array.fold_left max 0
      (Array.mapi (fun id l -> if is_internal id && depth.(id) mod 2 = 0 then l else 0) level)
  in
  let batches = ref [] and roles = ref [] in
  for lvl = 1 to max_level do
    let child_phase = ref [] and parent_phase = ref [] in
    for id = 0 to n - 1 do
      if is_internal id && depth.(id) mod 2 = 0 && level.(id) = lvl then
        List.iter
          (fun m ->
            if m = id then parent_phase := m :: !parent_phase
            else child_phase := m :: !child_phase)
          members.(id)
    done;
    if !child_phase <> [] then begin
      batches := Array.of_list (List.rev !child_phase) :: !batches;
      roles := Child_phase :: !roles
    end;
    if !parent_phase <> [] then begin
      batches := Array.of_list (List.rev !parent_phase) :: !batches;
      roles := Parent_phase :: !roles
    end
  done;
  { batches = Array.of_list (List.rev !batches); roles = Array.of_list (List.rev !roles) }

let check (lin : Linearizer.t) t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let n = lin.num_nodes in
  if Array.length t.batches <> Array.length t.roles then fail "roles/batches length mismatch";
  let batch_of = Array.make n (-2) in
  for id = lin.leaf_begin to n - 1 do
    batch_of.(id) <- -1 (* leaf batch *)
  done;
  Array.iteri
    (fun b nodes ->
      Array.iter
        (fun id ->
          if Linearizer.is_leaf lin id then fail "leaf %d in an internal batch" id;
          if batch_of.(id) <> -2 then fail "node %d in two batches" id;
          batch_of.(id) <- b)
        nodes)
    t.batches;
  for id = 0 to n - 1 do
    if batch_of.(id) = -2 then fail "internal node %d missing from batches" id
  done;
  (* Dependences: children strictly earlier. *)
  for id = 0 to n - 1 do
    for k = 0 to lin.max_children - 1 do
      let c = lin.child.(k).(id) in
      if c >= 0 && batch_of.(c) >= batch_of.(id) then
        fail "node %d (batch %d) depends on %d (batch %d)" id batch_of.(id) c batch_of.(c)
    done
  done
