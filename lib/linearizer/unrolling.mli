(** Recursion unrolling groups (§3.1, Fig. 3 and §7.4 of the paper).

    Unrolling the recursion once makes one call process a node together
    with its children, moving a node's computation next to its
    children's.  On the linearized structure this becomes a regrouping
    of the dynamic batches: every internal node at even depth from its
    root heads a group that also contains its internal children (odd
    depth).  Execution then proceeds by group levels, each level in two
    phases — first the child-role members, then the heads, because the
    heads read the members computed in the same level.

    The second phase's synchronization can be block-local (free in the
    cost model) when the whole group is scheduled onto one thread block
    (the TreeRNN schedule of §7.4); with the GRNN-style TreeLSTM
    schedule it is a global barrier, which is why unrolling slows
    TreeLSTM down (Fig. 10b, Fig. 11).  The paper supports unrolling for
    trees and sequences only; so do we. *)

type role = Child_phase | Parent_phase

type t = {
  batches : int array array;
      (** internal-node batches in execution order (the linearizer's
          leaf batch still runs first); node ids are linearized ids. *)
  roles : role array;  (** one per batch *)
}

val compute : Linearizer.t -> t
(** Raises [Failure] for DAGs. *)

val check : Linearizer.t -> t -> unit
(** Validates: batches partition the internal nodes; every node appears
    after all its children (taking the leaf batch as index -1); heads'
    internal children sit in the immediately preceding child-phase
    batch or earlier. *)
