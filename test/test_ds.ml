(* Tests for the data-structure substrate: structure validation, the
   dataset generators of Table 2, and their shape statistics. *)

module Rng = Cortex_util.Rng
module Node = Cortex_ds.Node
module Structure = Cortex_ds.Structure
module Gen = Cortex_ds.Gen

let test_structure_validation () =
  let b = Node.builder () in
  let leaf = Node.make b [] in
  let root = Node.make b [ leaf; leaf ] in
  (* The same leaf under two edges means two parents: fine in a DAG,
     rejected in a tree. *)
  ignore (Structure.create ~kind:Structure.Dag ~max_children:2 [ root ]);
  (try
     ignore (Structure.create ~kind:Structure.Tree ~max_children:2 [ root ]);
     Alcotest.fail "shared child accepted in a tree"
   with Structure.Invalid _ -> ());
  (* fanout limit *)
  (try
     ignore (Structure.create ~kind:Structure.Tree ~max_children:1 [ root ]);
     Alcotest.fail "fanout violation accepted"
   with Structure.Invalid _ -> ());
  (* sequences must declare max_children = 1 *)
  (try
     ignore (Structure.create ~kind:Structure.Sequence ~max_children:2 [ root ]);
     Alcotest.fail "sequence with max_children 2 accepted"
   with Structure.Invalid _ -> ())

let test_perfect_tree () =
  let rng = Rng.create 1 in
  let t = Gen.perfect_tree rng ~height:7 () in
  Alcotest.(check int) "nodes" 127 (Structure.num_nodes t);
  Alcotest.(check int) "leaves" 64 (Structure.num_leaves t);
  Alcotest.(check int) "height (edges)" 6 (Structure.height t);
  let widths = Structure.level_widths t in
  Alcotest.(check (array int)) "level widths" [| 64; 32; 16; 8; 4; 2; 1 |] widths;
  (* internal nodes carry the null word; leaves carry real words *)
  Array.iter
    (fun (n : Node.t) ->
      if Node.is_leaf n then Alcotest.(check bool) "leaf word" true (n.Node.payload < Gen.vocab_size)
      else Alcotest.(check int) "null word" Gen.null_word n.Node.payload)
    t.Structure.nodes

let test_sst_tree () =
  let rng = Rng.create 2 in
  for _ = 1 to 50 do
    let len = 3 + Rng.int rng 40 in
    let t = Gen.sst_tree rng ~len () in
    Alcotest.(check int) "binary bracketing: n leaves" len (Structure.num_leaves t);
    Alcotest.(check int) "binary bracketing: 2n-1 nodes" ((2 * len) - 1) (Structure.num_nodes t)
  done

let test_sst_length_distribution () =
  let rng = Rng.create 3 in
  let lens = List.init 2000 (fun _ -> Gen.sst_sentence_length rng) in
  List.iter (fun l -> Alcotest.(check bool) "clipped" true (l >= 3 && l <= 60)) lens;
  let mean = Cortex_util.Stats.mean (List.map float_of_int lens) in
  Alcotest.(check bool) (Printf.sprintf "mean %.1f ~ 19" mean) true
    (mean > 17.0 && mean < 21.5)

let test_grid_dag () =
  let t = Gen.grid_dag ~rows:10 ~cols:10 in
  Alcotest.(check int) "cells" 100 (Structure.num_nodes t);
  Alcotest.(check int) "one leaf" 1 (Structure.num_leaves t);
  Alcotest.(check int) "anti-diagonal levels" 19 (Array.length (Structure.level_widths t));
  (* interior cells have two parents (right and down neighbours) *)
  let parents = Structure.parents_count t in
  let two_parents = Array.fold_left (fun a p -> if p = 2 then a + 1 else a) 0 parents in
  Alcotest.(check int) "interior cells" 81 two_parents

let test_sequence () =
  let rng = Rng.create 4 in
  let s = Gen.sequence rng ~len:10 () in
  Alcotest.(check int) "nodes" 10 (Structure.num_nodes s);
  Alcotest.(check int) "one leaf" 1 (Structure.num_leaves s);
  Alcotest.(check int) "height" 9 (Structure.height s)

let test_merge () =
  let rng = Rng.create 5 in
  let parts = List.init 4 (fun _ -> Gen.sst_tree rng ~len:5 ()) in
  let merged = Structure.merge parts in
  Alcotest.(check int) "roots" 4 (List.length merged.Structure.roots);
  Alcotest.(check int) "nodes" (4 * 9) (Structure.num_nodes merged);
  (* Dense ids after renumbering *)
  Array.iteri
    (fun i (n : Node.t) -> Alcotest.(check int) "dense id" i n.Node.id)
    merged.Structure.nodes

let test_random_generators_valid =
  QCheck.Test.make ~name:"random trees/DAGs construct valid structures" ~count:200
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, mc) ->
      let rng = Rng.create seed in
      let t = Gen.random_tree rng ~max_nodes:30 ~max_children:mc in
      let d = Gen.random_dag rng ~max_nodes:30 ~max_children:mc in
      (* Structure.create already validates; check level sanity too. *)
      Array.for_all (fun l -> l >= 0) (Structure.level t)
      && Array.for_all (fun l -> l >= 0) (Structure.level d))

let test_levels_respect_children =
  QCheck.Test.make ~name:"level(parent) > level(child)" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let d = Gen.random_dag rng ~max_nodes:40 ~max_children:3 in
      let lvl = Structure.level d in
      Array.for_all
        (fun (n : Node.t) ->
          Array.for_all (fun (c : Node.t) -> lvl.(n.Node.id) > lvl.(c.Node.id)) n.Node.children)
        d.Structure.nodes)

(* ---------- treebank parsing ---------- *)

module Treebank = Cortex_ds.Treebank

let test_treebank_parse () =
  let v = Treebank.vocab () in
  let t = Treebank.parse v "(3 (2 (2 The) (2 movie)) (4 (3 (2 was) (3 great)) (2 .)))" in
  Alcotest.(check int) "nodes (5 leaves, binary)" 9 (Structure.num_nodes t.Treebank.structure);
  Alcotest.(check int) "leaves" 5 (Structure.num_leaves t.Treebank.structure);
  (* vocabulary: null + 5 tokens *)
  Alcotest.(check int) "vocab" 6 (Treebank.vocab_size v);
  Alcotest.(check (option int)) "lookup" (Treebank.lookup v "movie")
    (Some (Treebank.word_id v "movie"));
  (* root label *)
  (match t.Treebank.structure.Structure.roots with
   | [ root ] -> Alcotest.(check int) "root label" 3 t.Treebank.labels.(root.Node.id)
   | _ -> Alcotest.fail "one root expected");
  (* internal nodes carry the reserved null word *)
  Array.iter
    (fun (n : Node.t) ->
      if not (Node.is_leaf n) then
        Alcotest.(check int) "null payload" (Treebank.null_word v) n.Node.payload)
    t.Treebank.structure.Structure.nodes

let test_treebank_roundtrip () =
  let v = Treebank.vocab () in
  let trees = Treebank.parse_many v Treebank.sample_sst in
  Alcotest.(check int) "8 samples" 8 (List.length trees);
  List.iter
    (fun t ->
      let printed = Treebank.to_string t in
      let v2 = Treebank.vocab () in
      let t2 = Treebank.parse v2 printed in
      Alcotest.(check int) "same node count"
        (Structure.num_nodes t.Treebank.structure)
        (Structure.num_nodes t2.Treebank.structure);
      Alcotest.(check string) "fixed point" printed (Treebank.to_string t2))
    trees

let test_treebank_merge () =
  let v = Treebank.vocab () in
  let trees = Treebank.parse_many v Treebank.sample_sst in
  let batch = Treebank.merge trees in
  Alcotest.(check int) "roots" 8 (List.length batch.Structure.roots);
  Alcotest.(check int) "nodes"
    (List.fold_left (fun a t -> a + Structure.num_nodes t.Treebank.structure) 0 trees)
    (Structure.num_nodes batch)

let test_treebank_unlabelled_and_nary () =
  let v = Treebank.vocab () in
  let t = Treebank.parse v "((a b) (c d e))" in
  Alcotest.(check int) "n-ary fanout accepted" 3 t.Treebank.structure.Structure.max_children;
  Alcotest.(check int) "nodes" 8 (Structure.num_nodes t.Treebank.structure);
  (match t.Treebank.structure.Structure.roots with
   | [ root ] -> Alcotest.(check int) "no label" (-1) t.Treebank.labels.(root.Node.id)
   | _ -> Alcotest.fail "one root expected")

let test_treebank_errors () =
  let v = Treebank.vocab () in
  let bad input =
    try
      ignore (Treebank.parse v input);
      Alcotest.failf "accepted %S" input
    with Treebank.Parse_error _ -> ()
  in
  bad "(2 (2 a)";
  bad "()";
  bad "(2 a) trailing";
  bad ""

let () =
  Alcotest.run "ds"
    [
      ( "structure",
        [
          Alcotest.test_case "validation" `Quick test_structure_validation;
          Alcotest.test_case "merge" `Quick test_merge;
          QCheck_alcotest.to_alcotest test_random_generators_valid;
          QCheck_alcotest.to_alcotest test_levels_respect_children;
        ] );
      ( "generators",
        [
          Alcotest.test_case "perfect-tree" `Quick test_perfect_tree;
          Alcotest.test_case "sst-tree" `Quick test_sst_tree;
          Alcotest.test_case "sst-lengths" `Quick test_sst_length_distribution;
          Alcotest.test_case "grid-dag" `Quick test_grid_dag;
          Alcotest.test_case "sequence" `Quick test_sequence;
        ] );
      ( "treebank",
        [
          Alcotest.test_case "parse" `Quick test_treebank_parse;
          Alcotest.test_case "roundtrip" `Quick test_treebank_roundtrip;
          Alcotest.test_case "merge" `Quick test_treebank_merge;
          Alcotest.test_case "unlabelled-nary" `Quick test_treebank_unlabelled_and_nary;
          Alcotest.test_case "errors" `Quick test_treebank_errors;
        ] );
    ]
