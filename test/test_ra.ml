(* Tests for the Recursive API layer: program validation error paths,
   evaluator semantics (missing children, init parameters, payload
   errors) and the §4.3 constant-propagation used by specialization. *)

module Rng = Cortex_util.Rng
module Tensor = Cortex_tensor.Tensor
module Node = Cortex_ds.Node
module Structure = Cortex_ds.Structure
open Cortex_ra

let h = 4

let base_ops =
  [
    Ra.op "cs" ~axes:[ ("i", h) ] (Ra.ChildSum (Ra.ChildState ("s", Ra.Current, [ Ra.IAxis "i" ])));
    Ra.op "out" ~axes:[ ("i", h) ] (Ra.tanh_ (Ra.Temp ("cs", [ Ra.IAxis "i" ])));
  ]

let base =
  {
    Ra.name = "base";
    kind = Structure.Tree;
    max_children = 2;
    params = [ ("v", [ h ]); ("m", [ h; h ]) ];
    rec_ops = base_ops;
    leaf_ops = None;
    states = [ { Ra.st_name = "s"; st_op = "out"; st_init = Ra.Zero } ];
    outputs = [ "s" ];
  }

let invalid label program =
  try
    Ra.validate program;
    Alcotest.failf "%s: accepted" label
  with Ra.Invalid_program _ -> ()

let test_validate_ok () = Ra.validate base

let test_validate_errors () =
  invalid "duplicate op" { base with Ra.rec_ops = base.Ra.rec_ops @ [ List.hd base_ops ] };
  invalid "temp before definition"
    { base with Ra.rec_ops = List.rev base.Ra.rec_ops };
  invalid "unbound axis"
    {
      base with
      Ra.rec_ops = [ Ra.op "out" ~axes:[ ("i", h) ] (Ra.Param ("v", [ Ra.IAxis "q" ])) ];
    };
  invalid "param arity"
    {
      base with
      Ra.rec_ops = [ Ra.op "out" ~axes:[ ("i", h) ] (Ra.Param ("m", [ Ra.IAxis "i" ])) ];
    };
  invalid "unknown param"
    {
      base with
      Ra.rec_ops = [ Ra.op "out" ~axes:[ ("i", h) ] (Ra.Param ("nope", [ Ra.IAxis "i" ])) ];
    };
  invalid "Current outside ChildSum"
    {
      base with
      Ra.rec_ops =
        [ Ra.op "out" ~axes:[ ("i", h) ] (Ra.ChildState ("s", Ra.Current, [ Ra.IAxis "i" ])) ];
    };
  invalid "nested ChildSum"
    {
      base with
      Ra.rec_ops =
        [
          Ra.op "out" ~axes:[ ("i", h) ]
            (Ra.ChildSum (Ra.ChildSum (Ra.ChildState ("s", Ra.Current, [ Ra.IAxis "i" ]))));
        ];
    };
  invalid "child index out of range"
    {
      base with
      Ra.rec_ops =
        [ Ra.op "out" ~axes:[ ("i", h) ] (Ra.ChildState ("s", Ra.Child 5, [ Ra.IAxis "i" ])) ];
    };
  invalid "leaf case references children"
    { base with Ra.leaf_ops = Some base_ops };
  invalid "precompute references children"
    {
      base with
      Ra.rec_ops =
        [
          Ra.op ~precompute:true "cs" ~axes:[ ("i", h) ]
            (Ra.ChildSum (Ra.ChildState ("s", Ra.Current, [ Ra.IAxis "i" ])));
          List.nth base_ops 1;
        ];
    };
  invalid "sparse phases"
    {
      base with
      Ra.rec_ops =
        [ List.hd base_ops; Ra.op ~phase:2 "out" ~axes:[ ("i", h) ] (Ra.Temp ("cs", [ Ra.IAxis "i" ])) ];
    };
  invalid "state op missing"
    { base with Ra.states = [ { Ra.st_name = "s"; st_op = "nope"; st_init = Ra.Zero } ] };
  invalid "init param dims"
    { base with Ra.states = [ { Ra.st_name = "s"; st_op = "out"; st_init = Ra.Init_param "m" } ] };
  invalid "unknown output" { base with Ra.outputs = [ "zzz" ] };
  invalid "no outputs" { base with Ra.outputs = [] };
  invalid "sequence arity" { base with Ra.kind = Structure.Sequence }

(* ---------- evaluator semantics ---------- *)

let line ?(payloads = [ 1; 2; 3 ]) () =
  let b = Node.builder () in
  let rec build prev = function
    | [] -> prev
    | p :: rest -> build (Node.make b ~payload:p [ prev ]) rest
  in
  match payloads with
  | [] -> invalid_arg "line"
  | p :: rest ->
    Structure.create ~kind:Structure.Tree ~max_children:2 [ build (Node.make b ~payload:p []) rest ]

let test_init_param_semantics () =
  (* A fixed-child reference below a leaf reads the declared initial
     parameter, not zero. *)
  let program =
    {
      base with
      Ra.params = [ ("init", [ h ]) ];
      rec_ops =
        [
          Ra.op "out" ~axes:[ ("i", h) ]
            (Ra.Binop
               (Ra.Add, Ra.ChildState ("s", Ra.Child 0, [ Ra.IAxis "i" ]), Ra.Const 1.0));
        ];
      states = [ { Ra.st_name = "s"; st_op = "out"; st_init = Ra.Init_param "init" } ];
    }
  in
  Ra.validate program;
  let init = Tensor.of_array [| h |] [| 10.0; 20.0; 30.0; 40.0 |] in
  let params = function
    | "init" -> init
    | p -> invalid_arg p
  in
  let s = line ~payloads:[ 1; 2 ] () in
  let result = Ra_eval.run program ~params s in
  (* leaf: init + 1; root: (init + 1) + 1 *)
  (match s.Structure.roots with
   | [ root ] ->
     Alcotest.(check (float 1e-9)) "root value" 12.0
       (Tensor.get (Ra_eval.state result "s" root) [| 0 |])
   | _ -> Alcotest.fail "one root");
  Array.iter
    (fun (n : Node.t) ->
      if Node.is_leaf n then
        Alcotest.(check (float 1e-9)) "leaf value" 21.0
          (Tensor.get (Ra_eval.state result "s" n) [| 1 |]))
    s.Structure.nodes

let test_missing_payload_error () =
  let program =
    {
      base with
      Ra.params = [ ("emb", [ 10; h ]) ];
      rec_ops =
        [ Ra.op "out" ~axes:[ ("i", h) ] (Ra.Param ("emb", [ Ra.IPayload; Ra.IAxis "i" ])) ];
    }
  in
  let b = Node.builder () in
  let root = Node.make b [] in
  (* default payload is -1 *)
  let s = Structure.create ~kind:Structure.Tree ~max_children:2 [ root ] in
  let params = function "emb" -> Tensor.zeros [| 10; h |] | p -> invalid_arg p in
  (try
     ignore (Ra_eval.run program ~params s);
     Alcotest.fail "payload -1 accepted"
   with Failure _ -> ())

let test_param_shape_check () =
  let params = function
    | "v" -> Tensor.zeros [| h + 1 |]
    | "m" -> Tensor.zeros [| h; h |]
    | p -> invalid_arg p
  in
  (try
     ignore (Ra_eval.run base ~params (line ()));
     Alcotest.fail "wrong param shape accepted"
   with Invalid_argument _ -> ())

(* ---------- Ra_simplify (§4.3) ---------- *)

let test_fold_identities () =
  let open Ra in
  let x = Param ("v", [ IAxis "i" ]) in
  let checks =
    [
      (Binop (Mul, x, Const 0.0), Const 0.0);
      (Binop (Add, Const 0.0, x), x);
      (Binop (Mul, Const 1.0, x), x);
      (Sum ("j", 8, Const 0.0), Const 0.0);
      (Sum ("j", 8, Const 2.0), Const 16.0);
      (ChildSum (Const 0.0), Const 0.0);
      (Math (Cortex_tensor.Nonlinear.Relu, Const (-1.0)), Const 0.0);
    ]
  in
  List.iter
    (fun (e, want) ->
      Alcotest.(check string)
        (Ra.rexpr_to_string e)
        (Ra.rexpr_to_string want)
        (Ra.rexpr_to_string (Ra_simplify.fold e)))
    checks

let test_leaf_substitution_folds_matvec () =
  (* sum_j m[i,j] * childsum(s)[j] must fold to the zero constant after
     leaf substitution — the §4.3 effect that deletes leaf matvecs. *)
  let open Ra in
  let body =
    Sum
      ( "j",
        h,
        Binop (Mul, Param ("m", [ IAxis "i"; IAxis "j" ]), Temp ("cs", [ IAxis "j" ])) )
  in
  let ops =
    [
      op "cs" ~axes:[ ("i", h) ] (ChildSum (ChildState ("s", Current, [ IAxis "i" ])));
      op "out" ~axes:[ ("i", h) ] body;
    ]
  in
  let substituted =
    List.map
      (fun (o : op) -> { o with op_body = Ra_simplify.leaf_substitute base o.op_body })
      ops
  in
  let propagated = Ra_simplify.const_propagate substituted in
  match List.map (fun (o : op) -> o.Ra.op_body) propagated with
  | [ Const 0.0; Const 0.0 ] -> ()
  | bodies ->
    Alcotest.failf "not folded: %s"
      (String.concat "; " (List.map Ra.rexpr_to_string bodies))

let test_node_dependent () =
  let open Ra in
  let ops = [ op "a" ~axes:[ ("i", h) ] (Const 1.0) ] in
  Alcotest.(check bool) "const is hoistable" false
    (Ra_simplify.node_dependent ~ops (Temp ("a", [ IAxis "i" ])));
  Alcotest.(check bool) "payload is node-dependent" true
    (Ra_simplify.node_dependent ~ops (Param ("emb", [ IPayload; IAxis "i" ])));
  Alcotest.(check bool) "children are node-dependent" true
    (Ra_simplify.node_dependent ~ops (ChildSum (Const 1.0)))

let () =
  Alcotest.run "ra"
    [
      ( "validate",
        [
          Alcotest.test_case "ok" `Quick test_validate_ok;
          Alcotest.test_case "errors" `Quick test_validate_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "init-param" `Quick test_init_param_semantics;
          Alcotest.test_case "missing-payload" `Quick test_missing_payload_error;
          Alcotest.test_case "param-shape" `Quick test_param_shape_check;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "fold" `Quick test_fold_identities;
          Alcotest.test_case "leaf-matvec-folds" `Quick test_leaf_substitution_folds_matvec;
          Alcotest.test_case "node-dependent" `Quick test_node_dependent;
        ] );
    ]
