(* Session-pinned serving: growing conversations served as deltas.

   The contract under test is the serving tentpole: a session's token
   is served by re-running only the grown tail with pre-seeded
   persistent states, and that must be bitwise indistinguishable from
   re-linearizing and re-executing the whole conversation cold — for
   every node's every state, at every step, across failovers and
   through AOT bundles.  The shape-cache tests pin the accounting
   satellites: counters move only after the work they account for
   succeeded, [put] moves none, epoch eviction drops entries but never
   history. *)

open Cortex
module M = Models.Common
module Q = QCheck

let gpu = Backend.gpu

(* The whole conversation, token by token: structures share their
   prefix nodes physically, which is what the session delta path
   keys on. *)
let conversation seed ~vocab ~kind ~tokens =
  let rng = Rng.create seed in
  let g = Gen.growth_start rng ~vocab ~kind () in
  let first = Gen.growth_structure g in
  first :: List.init tokens (fun _ -> Gen.grow_one rng g)

let engine_of spec ?devices ?faults ?seed params =
  Engine.of_spec
    ~config:
      (Engine.Config.make
         ?devices ?faults ?seed ~dispatch:Dispatch.Least_loaded ~params ())
    spec ~backend:gpu

(* Serve every token of [structs] under one session in a single drain
   (each session token is its own pinned window, played in arrival
   order) and return the summary. *)
let serve_session eng ?(session = "chat") structs =
  List.iteri
    (fun i s ->
      ignore
        (Engine.submit_exn eng ~arrival_us:(1000.0 *. float_of_int i) ~session s))
    structs;
  Engine.drain eng

let check_states_bitwise spec eng ~session compiled params s =
  let solo = Runtime.execute compiled ~params s in
  List.iter
    (fun (st : Ra.state) ->
      Array.iter
        (fun (node : Node.t) ->
          match Engine.session_state eng session st.Ra.st_name node with
          | None ->
            Alcotest.failf "no persisted state %s for node %d" st.Ra.st_name
              node.Node.id
          | Some v ->
            Alcotest.(check bool)
              (Printf.sprintf "node %d state %s bitwise" node.Node.id
                 st.Ra.st_name)
              true
              (Tensor.max_abs_diff v (Runtime.state solo st.Ra.st_name node)
              = 0.0))
        s.Structure.nodes)
    spec.M.program.Ra.states

(* ---------- delta serving is bitwise-identical to cold ---------- *)

let check_grow_bitwise spec ~vocab ~kind ~tokens seed =
  let params = spec.M.init_params (Rng.create (seed + 1)) in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let eng = engine_of spec params in
  let structs = conversation seed ~vocab ~kind ~tokens in
  let s = serve_session eng structs in
  Alcotest.(check int) "all tokens completed" (tokens + 1)
    s.Engine.slo.Engine.slo_completed;
  (* Every persisted state of the final conversation matches a cold
     full execution, and each token's root output matched its own
     prefix's cold run. *)
  let final = List.nth structs tokens in
  check_states_bitwise spec eng ~session:"chat" compiled params final;
  List.iteri
    (fun i st ->
      let solo = Runtime.execute compiled ~params st in
      let out = List.hd spec.M.program.Ra.outputs in
      let root = List.hd st.Structure.roots in
      let v = List.assoc i s.Engine.results in
      Alcotest.(check bool)
        (Printf.sprintf "token %d root output bitwise" i)
        true
        (Tensor.max_abs_diff v (Runtime.state solo out root) = 0.0))
    structs;
  (* The session actually served deltas: one cold window, the rest
     grow-by-one extensions. *)
  match Engine.sessions eng with
  | [ sn ] ->
    Alcotest.(check string) "session name" "chat" sn.Engine.sn_name;
    Alcotest.(check int) "windows" (tokens + 1) sn.Engine.sn_windows;
    Alcotest.(check int) "one cold window" 1 sn.Engine.sn_cold;
    Alcotest.(check int) "rest served as deltas" tokens sn.Engine.sn_extends;
    Alcotest.(check int) "final nodes" (Structure.num_nodes final)
      sn.Engine.sn_nodes;
    Alcotest.(check bool) "geometric materializations happened" true
      (sn.Engine.sn_materializations >= 1);
    Alcotest.(check bool) "device pinned" true (sn.Engine.sn_device >= 0)
  | l -> Alcotest.failf "expected one session, got %d" (List.length l)

let test_tree_bitwise () =
  check_grow_bitwise
    (Models.Tree_lstm.spec ~vocab:20 ~hidden:5 ())
    ~vocab:20 ~kind:Structure.Tree ~tokens:12 3

let test_sequence_bitwise () =
  check_grow_bitwise
    (Models.Tree_lstm.spec ~vocab:20 ~hidden:4 ~sequence:true ())
    ~vocab:20 ~kind:Structure.Sequence ~tokens:10 5

let test_dag_bitwise () =
  check_grow_bitwise
    (Models.Dag_rnn.spec ~rows:5 ~cols:5 ~hidden:4 ())
    (* [grow_one] stamps internal nodes with payload [vocab], and the
       DAG-RNN reads X[payload] at every node — keep vocab+1 <= cells. *)
    ~vocab:24 ~kind:Structure.Dag ~tokens:8 7

(* Property form: any kind, any length, same contract. *)
let prop_grow_bitwise =
  Q.Test.make ~count:8 ~name:"session delta serving == cold (all kinds)"
    Q.(pair (int_bound 2) (pair (1 -- 10) small_int))
    (fun (k, (tokens, seed)) ->
      let kind, spec, vocab =
        match k with
        | 0 ->
          (Structure.Tree, Models.Tree_lstm.spec ~vocab:15 ~hidden:3 (), 15)
        | 1 ->
          ( Structure.Sequence,
            Models.Tree_gru.spec ~vocab:15 ~hidden:3 ~sequence:true (),
            15 )
        | _ -> (Structure.Dag, Models.Dag_rnn.spec ~rows:4 ~cols:4 ~hidden:3 (), 15)
      in
      check_grow_bitwise spec ~vocab ~kind ~tokens (100 + seed);
      true)

(* ---------- per-token windows and interleaving ---------- *)

let test_session_windows () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 2) in
  let eng = engine_of spec params in
  (* Two sessions interleaved with regular one-off requests in the same
     drain: sessions get their own size-1 pinned windows, the one-offs
     batch as usual. *)
  let ca = conversation 21 ~vocab:20 ~kind:Structure.Tree ~tokens:3 in
  let cb = conversation 22 ~vocab:20 ~kind:Structure.Tree ~tokens:3 in
  let rng = Rng.create 23 in
  List.iteri
    (fun i (a, b) ->
      let at = 500.0 *. float_of_int i in
      ignore (Engine.submit_exn eng ~arrival_us:at ~session:"a" a);
      ignore (Engine.submit_exn eng ~arrival_us:(at +. 100.0) ~session:"b" b);
      ignore
        (Engine.submit_exn eng ~arrival_us:(at +. 200.0)
           (Gen.sst_tree rng ~vocab:20 ())))
    (List.combine ca cb);
  let s = Engine.drain eng in
  Alcotest.(check int) "everything completed" 12
    s.Engine.slo.Engine.slo_completed;
  let swin =
    List.filter (fun w -> w.Engine.wr_session <> None) s.Engine.windows
  in
  Alcotest.(check int) "one window per session token" 8 (List.length swin);
  List.iter
    (fun w -> Alcotest.(check int) "session windows are size 1" 1 w.Engine.wr_size)
    swin;
  (* Each session sticks to one device across its windows. *)
  List.iter
    (fun name ->
      match
        List.sort_uniq compare
          (List.filter_map
             (fun w ->
               if w.Engine.wr_session = Some name then Some w.Engine.wr_device
               else None)
             s.Engine.windows)
      with
      | [ _ ] -> ()
      | ds -> Alcotest.failf "session %s ran on %d devices" name (List.length ds))
    [ "a"; "b" ];
  Alcotest.(check int) "two live sessions" 2 (List.length (Engine.sessions eng));
  Engine.close_session eng "a";
  Alcotest.(check int) "closed session is gone" 1
    (List.length (Engine.sessions eng))

(* ---------- a different conversation under the same name ---------- *)

let test_session_replacement () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 4) in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let eng = engine_of spec params in
  ignore (serve_session eng (conversation 31 ~vocab:20 ~kind:Structure.Tree ~tokens:4));
  (* A brand-new conversation under the same name: served cold, the old
     persisted state dropped, and correctness unaffected. *)
  let fresh = conversation 32 ~vocab:20 ~kind:Structure.Tree ~tokens:2 in
  let s = serve_session eng fresh in
  Alcotest.(check int) "fresh tokens completed" 3
    s.Engine.slo.Engine.slo_completed;
  check_states_bitwise spec eng ~session:"chat" compiled params
    (List.nth fresh 2);
  match Engine.sessions eng with
  | [ sn ] ->
    Alcotest.(check int) "replacement went cold once more" 2 sn.Engine.sn_cold;
    Alcotest.(check int) "then kept extending" 6 sn.Engine.sn_extends
  | _ -> Alcotest.fail "expected one session"

(* ---------- failover: the pinned device dies mid-conversation ---------- *)

let failover_spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 ()

let run_failover ~faults ~seed =
  let params = failover_spec.M.init_params (Rng.create 9) in
  let eng = engine_of failover_spec ~devices:[ gpu; gpu ] ~faults ~seed params in
  let structs = conversation 41 ~vocab:20 ~kind:Structure.Tree ~tokens:8 in
  let s = serve_session eng structs in
  (eng, structs, s)

let test_session_failover () =
  (* Probe the fault-free run to learn which device the session pins,
     then kill exactly that device mid-conversation. *)
  let probe, _, _ = run_failover ~faults:[] ~seed:42 in
  let pinned =
    match Engine.sessions probe with
    | [ sn ] -> sn.Engine.sn_device
    | _ -> Alcotest.fail "expected one session"
  in
  let faults = [ Fault.Fail_stop { device = pinned; at_us = 3500.0 } ] in
  let eng, structs, s = run_failover ~faults ~seed:42 in
  Alcotest.(check int) "every token completed despite the fail-stop" 9
    s.Engine.slo.Engine.slo_completed;
  (match Engine.sessions eng with
   | [ sn ] ->
     Alcotest.(check bool) "failover re-bound the session layout" true
       (sn.Engine.sn_rebinds >= 1);
     Alcotest.(check bool) "re-pinned to the survivor" true
       (sn.Engine.sn_device >= 0 && sn.Engine.sn_device <> pinned)
   | _ -> Alcotest.fail "expected one session");
  (* Failing over cannot perturb the numbers: the re-bound layout
     serves the same deltas. *)
  let compiled =
    Runtime.compile
      ~options:(Runtime.options_for failover_spec)
      failover_spec.M.program
  in
  let params = failover_spec.M.init_params (Rng.create 9) in
  check_states_bitwise failover_spec eng ~session:"chat" compiled params
    (List.nth structs 8)

let render_sessions (s : Engine.summary) =
  String.concat ";"
    (List.map
       (fun (x : Engine.session_report) ->
         Printf.sprintf "%s:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d" x.Engine.sn_name
           x.Engine.sn_nodes x.Engine.sn_windows x.Engine.sn_delta_nodes
           x.Engine.sn_extends x.Engine.sn_cold x.Engine.sn_materializations
           x.Engine.sn_rebinds x.Engine.sn_device x.Engine.sn_packed
           x.Engine.sn_deadline_misses)
       s.Engine.sessions)

let test_session_chaos_determinism () =
  let faults = [ Fault.Fail_stop { device = 0; at_us = 2500.0 } ] in
  let run () =
    let _, _, s = run_failover ~faults ~seed:7 in
    Printf.sprintf "%d/%d/%.6f|%s" s.Engine.slo.Engine.slo_completed
      s.Engine.slo.Engine.slo_failovers s.Engine.aggregate.Engine.makespan_us
      (render_sessions s)
  in
  Alcotest.(check string) "same seed, same session history" (run ()) (run ())

(* ---------- sessions survive AOT bundles ---------- *)

let test_session_through_bundle () =
  let spec = Models.Tree_fc.spec ~vocab:12 ~hidden:4 () in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let weights = Checkpoint.of_spec spec ~seed:5 in
  let b =
    Bundle.create ~weights ~model:"TreeFC" ~size:"small"
      ~backend:gpu.Backend.short compiled
  in
  let eng =
    Engine.of_bundle
      ~config:(Engine.Config.make ~params:(Bundle.resolver b) ())
      b ~backend:gpu
  in
  let structs = conversation 51 ~vocab:12 ~kind:Structure.Tree ~tokens:6 in
  let s = serve_session eng structs in
  Alcotest.(check int) "bundle-served tokens completed" 7
    s.Engine.slo.Engine.slo_completed;
  (match Engine.sessions eng with
   | [ sn ] ->
     Alcotest.(check int) "bundle engine serves deltas" 6 sn.Engine.sn_extends
   | _ -> Alcotest.fail "expected one session");
  check_states_bitwise spec eng ~session:"chat" compiled
    (Checkpoint.resolver weights)
    (List.nth structs 6)

(* ---------- bounded session table: evict, spill, restore ---------- *)

let engine_bounded spec ?devices ?faults ?seed ?session_budget_bytes ?session_ttl_us
    ?session_spill_dir params =
  Engine.of_spec
    ~config:
      (Engine.Config.make ?devices ?faults ?seed ~dispatch:Dispatch.Least_loaded
         ~params ?session_budget_bytes ?session_ttl_us ?session_spill_dir ())
    spec ~backend:gpu

(* Submit tokens [from, upto) of a conversation (arrival = absolute
   token index, so later drains continue the same simulated timeline)
   and drain. *)
let serve_slice eng ?(session = "chat") ~from ~upto structs =
  List.iteri
    (fun i s ->
      if i >= from && i < upto then
        ignore
          (Engine.submit_exn eng
             ~arrival_us:(1000.0 *. float_of_int i)
             ~session s))
    structs;
  Engine.drain eng

(* The tentpole contract: evict mid-conversation, resume, and the
   restored run is bitwise the never-evicted run — every node's every
   state, via the spilled checkpoint section. *)
let test_evict_restore_bitwise () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 6) in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let structs = conversation 61 ~vocab:20 ~kind:Structure.Tree ~tokens:10 in
  let eng = engine_of spec params in
  let s1 = serve_slice eng ~from:0 ~upto:6 structs in
  Alcotest.(check int) "first half completed" 6 s1.Engine.slo.Engine.slo_completed;
  Alcotest.(check bool) "evicted" true (Engine.evict_session eng "chat");
  Alcotest.(check int) "no longer live" 0 (List.length (Engine.sessions eng));
  let st = Engine.session_table_stats eng in
  Alcotest.(check int) "spill held for re-admission" 1
    st.Session_store.st_spilled;
  Alcotest.(check int) "one eviction counted" 1 st.Session_store.st_evictions;
  (* Evicting what is already gone is a no-op. *)
  Alcotest.(check bool) "double evict refused" false
    (Engine.evict_session eng "chat");
  (* The conversation resumes: restore, then keep serving deltas. *)
  let s2 = serve_slice eng ~from:6 ~upto:11 structs in
  Alcotest.(check int) "second half completed" 5 s2.Engine.slo.Engine.slo_completed;
  let st = Engine.session_table_stats eng in
  Alcotest.(check int) "spill consumed" 0 st.Session_store.st_spilled;
  Alcotest.(check int) "one restore counted" 1 st.Session_store.st_restores;
  Alcotest.(check bool) "restore cost priced" true
    (st.Session_store.st_restore_us > 0.0);
  (match Engine.sessions eng with
   | [ sn ] ->
     (* The restored tokens all served as deltas — re-admission did not
        fall back to a cold replay. *)
     Alcotest.(check int) "no cold window after restore" 0 sn.Engine.sn_cold;
     Alcotest.(check int) "every restored token a delta" 5 sn.Engine.sn_extends;
     Alcotest.(check int) "one eviction in the report" 1 sn.Engine.sn_evictions;
     Alcotest.(check int) "one restore in the report" 1 sn.Engine.sn_restores;
     Alcotest.(check bool) "accounted bytes priced" true (sn.Engine.sn_bytes > 0)
   | l -> Alcotest.failf "expected one session, got %d" (List.length l));
  (* Bitwise: every persisted state of the final conversation equals a
     cold full execution — evict -> restore ≡ never evicted. *)
  check_states_bitwise spec eng ~session:"chat" compiled params
    (List.nth structs 10)

let test_ttl_expiry_and_return () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 8) in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let eng = engine_bounded spec ~session_ttl_us:2500.0 params in
  let a = conversation 71 ~vocab:20 ~kind:Structure.Tree ~tokens:12 in
  let b = conversation 72 ~vocab:20 ~kind:Structure.Tree ~tokens:12 in
  (* [b] speaks twice early, then goes quiet while [a] keeps talking
     past b's TTL horizon. *)
  List.iteri
    (fun i s ->
      ignore
        (Engine.submit_exn eng ~arrival_us:(1000.0 *. float_of_int i) ~session:"a" s))
    a;
  List.iteri
    (fun i s ->
      if i < 2 then
        ignore
          (Engine.submit_exn eng
             ~arrival_us:((1000.0 *. float_of_int i) +. 50.0)
             ~session:"b" s))
    b;
  ignore (Engine.drain eng);
  let st = Engine.session_table_stats eng in
  Alcotest.(check int) "the quiet session expired" 1 st.Session_store.st_expired;
  Alcotest.(check int) "its spill is held" 1 st.Session_store.st_spilled;
  Alcotest.(check (list string)) "only the talker stays live" [ "a" ]
    (List.map (fun (x : Engine.session_report) -> x.Engine.sn_name)
       (Engine.sessions eng));
  (* [b] comes back much later: restored from the spill, and its final
     states are bitwise the never-expired run.  Its own tokens arrive
     densely, so it does not re-expire mid-drain. *)
  List.iteri
    (fun i s ->
      if i >= 2 then
        ignore
          (Engine.submit_exn eng
             ~arrival_us:(20000.0 +. (300.0 *. float_of_int i))
             ~session:"b" s))
    b;
  ignore (Engine.drain eng);
  let st = Engine.session_table_stats eng in
  Alcotest.(check int) "the returner restored" 1 st.Session_store.st_restores;
  Alcotest.(check bool) "b is live again" true
    (List.exists (fun (x : Engine.session_report) -> x.Engine.sn_name = "b")
       (Engine.sessions eng));
  check_states_bitwise spec eng ~session:"b" compiled params (List.nth b 12)

(* Satellite: eviction x failover.  Evict, fail-stop the device the
   session was pinned to, resume — the restore must re-pin to the
   survivor and still be bitwise-correct. *)
let test_evict_failover_restore () =
  let params = failover_spec.M.init_params (Rng.create 9) in
  let structs = conversation 81 ~vocab:20 ~kind:Structure.Tree ~tokens:8 in
  let compiled =
    Runtime.compile
      ~options:(Runtime.options_for failover_spec)
      failover_spec.M.program
  in
  let run faults =
    let eng =
      engine_bounded failover_spec ~devices:[ gpu; gpu ] ~faults ~seed:11 params
    in
    ignore (serve_slice eng ~from:0 ~upto:5 structs);
    let pinned =
      match Engine.sessions eng with
      | [ sn ] -> sn.Engine.sn_device
      | _ -> Alcotest.fail "expected one session"
    in
    ignore (Engine.evict_session eng "chat");
    let s2 = serve_slice eng ~from:5 ~upto:9 structs in
    (eng, pinned, s2)
  in
  (* Probe the fault-free run to learn the pin, then kill exactly that
     device while the session sits evicted. *)
  let _, pinned, _ = run [] in
  let eng, pinned2, s2 =
    run [ Fault.Fail_stop { device = pinned; at_us = 6000.0 } ]
  in
  Alcotest.(check int) "probe and chaos run pin alike" pinned pinned2;
  Alcotest.(check int) "every resumed token completed" 4
    s2.Engine.slo.Engine.slo_completed;
  let st = Engine.session_table_stats eng in
  Alcotest.(check int) "restored despite the dead pin" 1
    st.Session_store.st_restores;
  (match Engine.sessions eng with
   | [ sn ] ->
     Alcotest.(check bool) "re-pinned to the survivor" true
       (sn.Engine.sn_device >= 0 && sn.Engine.sn_device <> pinned)
   | _ -> Alcotest.fail "expected one session");
  check_states_bitwise failover_spec eng ~session:"chat" compiled params
    (List.nth structs 8)

(* File-backed spills survive a full engine restart: a fresh engine
   (here: serving the same AOT bundle) finds its predecessor's .csx
   and resumes the conversation bitwise. *)
let test_restart_restore_from_disk () =
  let spec = Models.Tree_fc.spec ~vocab:12 ~hidden:4 () in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let weights = Checkpoint.of_spec spec ~seed:5 in
  let b =
    Bundle.create ~weights ~model:"TreeFC" ~size:"small"
      ~backend:gpu.Backend.short compiled
  in
  let dir = Filename.temp_file "cortex-spill" "" in
  Sys.remove dir;
  let mk () =
    Engine.of_bundle
      ~config:
        (Engine.Config.make ~params:(Bundle.resolver b) ~session_spill_dir:dir ())
      b ~backend:gpu
  in
  let structs = conversation 91 ~vocab:12 ~kind:Structure.Tree ~tokens:9 in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let eng1 = mk () in
      ignore (serve_slice eng1 ~from:0 ~upto:6 structs);
      ignore (Engine.evict_session eng1 "chat");
      Alcotest.(check bool) "spill file written" true
        (Array.exists
           (fun f -> Filename.check_suffix f ".csx")
           (Sys.readdir dir));
      (* The first engine is gone; a restarted one picks the file up. *)
      let eng2 = mk () in
      let s2 = serve_slice eng2 ~from:6 ~upto:10 structs in
      Alcotest.(check int) "resumed tokens completed" 4
        s2.Engine.slo.Engine.slo_completed;
      let st = Engine.session_table_stats eng2 in
      Alcotest.(check int) "restored across the restart" 1
        st.Session_store.st_restores;
      (match Engine.sessions eng2 with
       | [ sn ] ->
         Alcotest.(check int) "no cold replay after the restart" 0
           sn.Engine.sn_cold
       | _ -> Alcotest.fail "expected one session");
      Alcotest.(check bool) "spill file consumed" false
        (Array.exists
           (fun f -> Filename.check_suffix f ".csx")
           (Sys.readdir dir));
      check_states_bitwise spec eng2 ~session:"chat" compiled
        (Checkpoint.resolver weights)
        (List.nth structs 9))

(* Satellite: [close_session] frees the shape-cache entries the session
   published via [put] — they used to leak until the next epoch flush.
   Freeing is not an eviction epoch: hit/miss history is untouched. *)
let test_close_session_frees_cache_entries () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 3) in
  let eng = engine_of spec params in
  let structs = conversation 95 ~vocab:20 ~kind:Structure.Tree ~tokens:8 in
  ignore (serve_session eng structs);
  let mats =
    match Engine.sessions eng with
    | [ sn ] -> sn.Engine.sn_materializations
    | _ -> Alcotest.fail "expected one session"
  in
  Alcotest.(check bool) "session published layouts" true (mats >= 1);
  let before = Engine.cache_stats eng in
  Engine.close_session eng "chat";
  let after = Engine.cache_stats eng in
  Alcotest.(check int) "published entries freed on close"
    (before.Shape_cache.entries - mats)
    after.Shape_cache.entries;
  Alcotest.(check int) "hits untouched" before.Shape_cache.hits
    after.Shape_cache.hits;
  Alcotest.(check int) "misses untouched" before.Shape_cache.misses
    after.Shape_cache.misses

(* Satellite: the table's accounted bytes are exactly the linearizer's
   price of the session's own forest — layout plus state rows — after
   every grow step. *)
let prop_accounting_matches_linearizer =
  Q.Test.make ~count:15 ~name:"session accounting == linearizer pricing"
    Q.(pair (1 -- 8) small_int)
    (fun (tokens, seed) ->
      let spec = Models.Tree_lstm.spec ~vocab:15 ~hidden:3 () in
      let params = spec.M.init_params (Rng.create (seed + 1)) in
      let eng = engine_of spec params in
      let structs =
        conversation (200 + seed) ~vocab:15 ~kind:Structure.Tree ~tokens
      in
      let mc = spec.M.program.Ra.max_children in
      List.iteri
        (fun i s ->
          ignore
            (Engine.submit_exn eng
               ~arrival_us:(1000.0 *. float_of_int i)
               ~session:"chat" s);
          ignore (Engine.drain eng);
          let sn =
            match Engine.sessions eng with
            | [ sn ] -> sn
            | _ -> Alcotest.fail "expected one session"
          in
          (* Price the same structure cold: the scratch numbering the
             engine accounts with must agree batch-for-batch. *)
          let cold = (Linearizer.run_forest ~max_children:mc [ s ]).Linearizer.lin in
          let row_bytes =
            List.fold_left
              (fun acc (st : Ra.state) ->
                match
                  Engine.session_state eng "chat" st.Ra.st_name
                    (List.hd s.Structure.roots)
                with
                | Some v -> acc + (8 * Tensor.numel v)
                | None -> Alcotest.failf "missing root state %s" st.Ra.st_name)
              0 spec.M.program.Ra.states
          in
          let expected =
            Linearizer.layout_bytes ~num_nodes:cold.Linearizer.num_nodes
              ~num_batches:(Array.length cold.Linearizer.batches)
              ~max_children:mc
            + Linearizer.state_rows_bytes ~num_nodes:cold.Linearizer.num_nodes
                ~bytes_per_node:row_bytes
          in
          if sn.Engine.sn_bytes <> expected then
            Q.Test.fail_reportf
              "token %d: accounted %d bytes, linearizer prices %d" i
              sn.Engine.sn_bytes expected;
          let st = Engine.session_table_stats eng in
          if st.Session_store.st_bytes <> expected then
            Q.Test.fail_reportf "table total %d <> session %d"
              st.Session_store.st_bytes expected)
        structs;
      true)

(* ---------- the session-lifecycle property harness ---------- *)

(* Random interleavings of grow / explicit-evict / budget-shrink /
   budget-unbind over three conversations, one drain per op, asserting
   after every drain:
     (b) accounted bytes never exceed the budget in force;
     (c) live + spilled exactly partition the sessions that started;
   and at the end of the trace:
     (a) every conversation, grown to its full length through whatever
         evictions the trace forced, is bitwise a never-evicted cold
         execution;
     (d) the whole lifecycle (chaos mode, eviction enabled) replays
         byte-identically under the same seed. *)
type life_op = Grow of int | Evict_now of int | Budget of int option

let lifecycle_ops_arb =
  let open Q.Gen in
  let op =
    frequency
      [
        (6, map (fun i -> Grow i) (int_bound 2));
        (2, map (fun i -> Evict_now i) (int_bound 2));
        (1, map (fun k -> Budget (Some (1200 + (500 * k)))) (int_bound 4));
        (1, return (Budget None));
      ]
  in
  let print_op = function
    | Grow i -> Printf.sprintf "grow %d" i
    | Evict_now i -> Printf.sprintf "evict %d" i
    | Budget (Some b) -> Printf.sprintf "budget %d" b
    | Budget None -> "budget none"
  in
  Q.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    (list_size (5 -- 25) op)

let prop_session_lifecycle =
  Q.Test.make ~count:12 ~name:"session lifecycle invariants" lifecycle_ops_arb
    (fun ops ->
      let spec = Models.Tree_lstm.spec ~vocab:15 ~hidden:3 () in
      let params = spec.M.init_params (Rng.create 1) in
      let tokens = 10 in
      let names = [| "s0"; "s1"; "s2" |] in
      let convs =
        Array.init 3 (fun i ->
            conversation (300 + i) ~vocab:15 ~kind:Structure.Tree ~tokens)
      in
      let run () =
        (* Chaos mode (empty fault spec): every drain below is a pure
           function of the trace, which is what makes (d) a byte
           equality. The TTL adds background expiry churn on top of
           the explicit ops. *)
        let eng =
          engine_bounded spec ~faults:[] ~seed:5 ~session_ttl_us:12000.0 params
        in
        let next = Array.make 3 0 in
        let step = ref 0 in
        let log = Buffer.create 256 in
        let observe () =
          let st = Engine.session_table_stats eng in
          (* (b): the budget invariant holds after every drain. *)
          (match st.Session_store.st_budget_bytes with
           | Some budget ->
             if st.Session_store.st_bytes > budget then
               Q.Test.fail_reportf "accounted %d bytes over budget %d"
                 st.Session_store.st_bytes budget
           | None -> ());
          (* (c): live + spilled is exactly the set that ever grew. *)
          let started =
            Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 next
          in
          if st.Session_store.st_live + st.Session_store.st_spilled <> started
          then
            Q.Test.fail_reportf "%d live + %d spilled <> %d started"
              st.Session_store.st_live st.Session_store.st_spilled started;
          if List.length (Engine.sessions eng) <> st.Session_store.st_live then
            Q.Test.fail_report "live reports disagree with the table";
          Buffer.add_string log
            (Printf.sprintf "%d:%d:%d:%d:%d;" st.Session_store.st_live
               st.Session_store.st_spilled st.Session_store.st_bytes
               st.Session_store.st_evictions st.Session_store.st_restores)
        in
        let grow i =
          if next.(i) <= tokens then begin
            incr step;
            let s = List.nth convs.(i) next.(i) in
            next.(i) <- next.(i) + 1;
            ignore
              (Engine.submit_exn eng
                 ~arrival_us:(900.0 *. float_of_int !step)
                 ~session:names.(i) s);
            ignore (Engine.drain eng)
          end
        in
        List.iter
          (fun op ->
            (match op with
             | Grow i -> grow i
             | Evict_now i -> ignore (Engine.evict_session eng names.(i))
             | Budget b ->
               Engine.set_session_budget eng b;
               (* An empty drain runs the eviction pass, so a shrink
                  takes effect immediately. *)
               ignore (Engine.drain eng));
            observe ())
          ops;
        (* Unbind the budget and finish every conversation, round-robin
           so no session idles past the TTL while the others fill. *)
        Engine.set_session_budget eng None;
        let remaining () = Array.exists (fun n -> n <= tokens) next in
        while remaining () do
          Array.iteri (fun i _ -> grow i) names
        done;
        (eng, Buffer.contents log)
      in
      let eng, log1 = run () in
      (* (a): evict/restore churn included, the end state is bitwise a
         never-evicted cold execution of each full conversation. *)
      let compiled =
        Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
      in
      Array.iteri
        (fun i name ->
          check_states_bitwise spec eng ~session:name compiled params
            (List.nth convs.(i) tokens))
        names;
      (* (d): the whole lifecycle replays byte-identically. *)
      let _, log2 = run () in
      if log1 <> log2 then
        Q.Test.fail_report "lifecycle trace not reproducible under its seed";
      true)

(* ---------- multi-session packing ---------- *)

(* Packed windows merge several sessions' delta tokens into one forest
   launch.  The contract: enabling packing changes kernel-launch counts
   and nothing else — every token's results and every persisted state
   stay bitwise the unpacked (and therefore the cold) run. *)

let engine_packed spec ?devices ?faults ?seed ?(autotune = false)
    ?(pack = 8) ?(wait = 100.0) params =
  Engine.of_spec
    ~config:
      (Engine.Config.make ?devices ?faults ?seed ~autotune
         ~dispatch:Dispatch.Least_loaded ~params ~session_pack_window:pack
         ~session_pack_wait_us:wait ())
    spec ~backend:gpu

(* Token [j] of every conversation lands in the same tick (1000 us
   apart), staggered by a few us within the tick so packs have a
   deterministic member order; one drain serves the lot. *)
let submit_interleaved eng convs =
  List.iteri
    (fun i (name, structs) ->
      List.iteri
        (fun j s ->
          ignore
            (Engine.submit_exn eng
               ~arrival_us:
                 ((1000.0 *. float_of_int j) +. (3.0 *. float_of_int i))
               ~session:name s))
        structs)
    convs;
  Engine.drain eng

let check_pack_bitwise ?(autotune = false) spec ~vocab ~kind ~tokens ~members
    seed =
  let params = spec.M.init_params (Rng.create (seed + 1)) in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let convs =
    List.init members (fun i ->
        ( Printf.sprintf "chat-%d" i,
          conversation (seed + (17 * i)) ~vocab ~kind ~tokens ))
  in
  let packed = engine_packed ~autotune spec params in
  let sp = submit_interleaved packed convs in
  let unpacked = engine_of spec params in
  let su = submit_interleaved unpacked convs in
  Alcotest.(check int) "packed run completed everything"
    (members * (tokens + 1))
    sp.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "unpacked run completed everything"
    sp.Engine.slo.Engine.slo_completed su.Engine.slo.Engine.slo_completed;
  (* The packing actually happened: every delta token of every tick
     rode a packed window (tick 0 is the members' cold windows). *)
  Alcotest.(check int) "every delta token packed" (members * tokens)
    sp.Engine.packed_tokens;
  Alcotest.(check int) "one packed window per tick" tokens
    sp.Engine.packed_windows;
  Alcotest.(check bool) "packed windows name their members in order" true
    (List.exists
       (fun w -> w.Engine.wr_packed = List.map fst convs)
       sp.Engine.windows);
  (* Fewer launches: each packed window launches its merged levels
     once, not once per member. *)
  let launches (s : Engine.summary) =
    List.fold_left
      (fun acc w ->
        acc + w.Engine.wr_report.Runtime.latency.Backend.kernel_launches)
      0 s.Engine.windows
  in
  Alcotest.(check bool) "packing launched fewer kernels" true
    (launches sp < launches su);
  (* Bitwise: token for token against the unpacked run... *)
  List.iter2
    (fun (ida, va) (idb, vb) ->
      Alcotest.(check int) "same request served" ida idb;
      Alcotest.(check bool)
        (Printf.sprintf "request %d result bitwise" ida)
        true
        (Tensor.max_abs_diff va vb = 0.0))
    sp.Engine.results su.Engine.results;
  (* ...and every persisted state against a cold solo execution. *)
  List.iter
    (fun (name, structs) ->
      check_states_bitwise spec packed ~session:name compiled params
        (List.nth structs tokens))
    convs;
  (* The per-session packed counters agree with the summary's. *)
  Alcotest.(check int) "sn_packed sums to packed_tokens"
    sp.Engine.packed_tokens
    (List.fold_left
       (fun acc (x : Engine.session_report) -> acc + x.Engine.sn_packed)
       0 (Engine.sessions packed))

let test_pack_tree_bitwise () =
  check_pack_bitwise
    (Models.Tree_lstm.spec ~vocab:20 ~hidden:5 ())
    ~vocab:20 ~kind:Structure.Tree ~tokens:6 ~members:4 103

let test_pack_sequence_bitwise () =
  check_pack_bitwise
    (Models.Tree_lstm.spec ~vocab:20 ~hidden:4 ~sequence:true ())
    ~vocab:20 ~kind:Structure.Sequence ~tokens:5 ~members:3 105

let test_pack_dag_bitwise () =
  check_pack_bitwise
    (Models.Dag_rnn.spec ~rows:5 ~cols:5 ~hidden:4 ())
    ~vocab:24 ~kind:Structure.Dag ~tokens:5 ~members:3 107

let test_pack_autotuned_bitwise () =
  (* With autotune on, packed windows consult the plan cache in the
     packed key space; plans preserve semantics, so the contract is
     unchanged. *)
  check_pack_bitwise ~autotune:true
    (Models.Tree_lstm.spec ~vocab:20 ~hidden:4 ())
    ~vocab:20 ~kind:Structure.Tree ~tokens:5 ~members:4 109

(* Property form: random member counts, lengths and kinds — packed and
   unpacked runs serve identical results under arbitrary interleaved
   grow sequences (members' conversations differ in length, so late
   ticks thin out and packs shrink or demote to singles). *)
let prop_pack_bitwise =
  Q.Test.make ~count:8 ~name:"packed serving == unpacked (random interleavings)"
    Q.(pair (int_bound 2) (pair (2 -- 4) small_int))
    (fun (k, (members, seed)) ->
      let kind, spec, vocab =
        match k with
        | 0 ->
          (Structure.Tree, Models.Tree_lstm.spec ~vocab:15 ~hidden:3 (), 15)
        | 1 ->
          ( Structure.Sequence,
            Models.Tree_gru.spec ~vocab:15 ~hidden:3 ~sequence:true (),
            15 )
        | _ -> (Structure.Dag, Models.Dag_rnn.spec ~rows:4 ~cols:4 ~hidden:3 (), 15)
      in
      let params = spec.M.init_params (Rng.create (seed + 1)) in
      let compiled =
        Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
      in
      let rng = Rng.create (400 + seed) in
      let convs =
        List.init members (fun i ->
            let tokens = 1 + Rng.int rng 6 in
            ( Printf.sprintf "chat-%d" i,
              conversation (500 + seed + (17 * i)) ~vocab ~kind ~tokens ))
      in
      let packed = engine_packed spec params in
      let sp = submit_interleaved packed convs in
      let unpacked = engine_of spec params in
      let su = submit_interleaved unpacked convs in
      if sp.Engine.slo.Engine.slo_completed <> su.Engine.slo.Engine.slo_completed
      then
        Q.Test.fail_reportf "completions differ: %d packed, %d unpacked"
          sp.Engine.slo.Engine.slo_completed su.Engine.slo.Engine.slo_completed;
      List.iter2
        (fun (ida, va) (idb, vb) ->
          if ida <> idb then Q.Test.fail_reportf "ids differ: %d %d" ida idb;
          if Tensor.max_abs_diff va vb <> 0.0 then
            Q.Test.fail_reportf "request %d differs packed vs unpacked" ida)
        sp.Engine.results su.Engine.results;
      List.iter
        (fun (name, structs) ->
          check_states_bitwise spec packed ~session:name compiled params
            (List.nth structs (List.length structs - 1)))
        convs;
      true)

(* Fail-stop mid-drain on the device a pack is pinned to: every member
   re-pins to the survivor together, and the numbers cannot tell. *)
let test_pack_failover () =
  let spec = failover_spec in
  let params = spec.M.init_params (Rng.create 9) in
  let convs =
    List.init 3 (fun i ->
        ( Printf.sprintf "chat-%d" i,
          conversation (600 + (17 * i)) ~vocab:20 ~kind:Structure.Tree
            ~tokens:6 ))
  in
  let run faults =
    let eng = engine_packed spec ~devices:[ gpu; gpu ] ~faults ~seed:13 params in
    let s = submit_interleaved eng convs in
    (eng, s)
  in
  (* Probe the fault-free run for the device the packs landed on. *)
  let probe, sprobe = run [] in
  Alcotest.(check bool) "probe run packed" true (sprobe.Engine.packed_windows > 0);
  let pinned =
    match Engine.sessions probe with
    | sn :: _ -> sn.Engine.sn_device
    | [] -> Alcotest.fail "expected sessions"
  in
  let eng, s = run [ Fault.Fail_stop { device = pinned; at_us = 3500.0 } ] in
  Alcotest.(check int) "every token completed despite the fail-stop" 21
    s.Engine.slo.Engine.slo_completed;
  List.iter
    (fun (sn : Engine.session_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s re-pinned off the dead device" sn.Engine.sn_name)
        true
        (sn.Engine.sn_device >= 0 && sn.Engine.sn_device <> pinned))
    (Engine.sessions eng);
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  List.iter
    (fun (name, structs) ->
      check_states_bitwise spec eng ~session:name compiled params
        (List.nth structs 6))
    convs

(* Chaos mode with packing on stays byte-reproducible. *)
let test_pack_chaos_determinism () =
  let faults = [ Fault.Fail_stop { device = 0; at_us = 2500.0 } ] in
  let convs =
    List.init 3 (fun i ->
        ( Printf.sprintf "chat-%d" i,
          conversation (700 + (17 * i)) ~vocab:20 ~kind:Structure.Tree
            ~tokens:5 ))
  in
  let run () =
    let params = failover_spec.M.init_params (Rng.create 9) in
    let eng =
      engine_packed failover_spec ~devices:[ gpu; gpu ] ~faults ~seed:7 params
    in
    let s = submit_interleaved eng convs in
    Printf.sprintf "%d/%d/%d/%d/%.6f|%s" s.Engine.slo.Engine.slo_completed
      s.Engine.slo.Engine.slo_failovers s.Engine.packed_windows
      s.Engine.packed_tokens s.Engine.aggregate.Engine.makespan_us
      (render_sessions s)
  in
  Alcotest.(check string) "same seed, same packed history" (run ()) (run ())

(* Deadline misses are counted per session, packed or not. *)
let test_pack_deadline_misses () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 2) in
  let convs =
    List.init 2 (fun i ->
        ( Printf.sprintf "chat-%d" i,
          conversation (800 + (17 * i)) ~vocab:20 ~kind:Structure.Tree
            ~tokens:4 ))
  in
  let eng = engine_packed spec params in
  (* Deadlines a hair after arrival: every window's device time blows
     them, so every token misses. *)
  List.iteri
    (fun i (name, structs) ->
      List.iteri
        (fun j s ->
          let at = (1000.0 *. float_of_int j) +. (3.0 *. float_of_int i) in
          ignore
            (Engine.submit_exn eng ~arrival_us:at ~deadline_us:(at +. 0.01)
               ~session:name s))
        structs)
    convs;
  let s = Engine.drain eng in
  Alcotest.(check int) "all completed (late)" 10
    s.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "slo counted every miss" 10
    s.Engine.slo.Engine.slo_deadline_misses;
  Alcotest.(check int) "per-session misses sum to the slo count" 10
    (List.fold_left
       (fun acc (x : Engine.session_report) ->
         acc + x.Engine.sn_deadline_misses)
       0 (Engine.sessions eng))

(* ---------- shape-cache accounting ---------- *)

let test_cache_rejection_moves_no_counter () =
  let c = Shape_cache.create () in
  let wide =
    let b = Node.builder () in
    let kids = List.init 3 (fun p -> Node.make b ~payload:p []) in
    Structure.create ~kind:Structure.Tree ~max_children:3
      [ Node.make b ~payload:9 kids ]
  in
  (try
     ignore (Shape_cache.find_or_linearize c ~max_children:2 [ wide ]);
     Alcotest.fail "fanout 3 accepted with max_children 2"
   with Linearizer.Rejected _ -> ());
  let s = Shape_cache.stats c in
  Alcotest.(check int) "no hit" 0 s.Shape_cache.hits;
  Alcotest.(check int) "no miss" 0 s.Shape_cache.misses;
  Alcotest.(check int) "no entry" 0 s.Shape_cache.entries

let test_cache_raising_rebind_is_not_a_hit () =
  (* A forest [put] under a key it does not belong to makes the next
     lookup's rebind raise: the accounting satellite says that raising
     lookup must not count as a hit (it served nothing). *)
  let c = Shape_cache.create () in
  let rng = Rng.create 6 in
  let s1 = Gen.sst_tree rng ~vocab:10 () in
  let s2 = Gen.sst_tree rng ~vocab:10 () in
  let lone = Linearizer.run_forest ~max_children:2 [ s1 ] in
  ignore (Shape_cache.put c ~max_children:2 [ s1; s2 ] lone);
  Alcotest.(check int) "put counts nothing"
    0
    (Shape_cache.stats c).Shape_cache.hits;
  (try
     ignore (Shape_cache.find_or_linearize c ~max_children:2 [ s1; s2 ]);
     Alcotest.fail "rebind of a mismatched cached forest succeeded"
   with Invalid_argument _ -> ());
  let s = Shape_cache.stats c in
  Alcotest.(check int) "raising rebind is not a hit" 0 s.Shape_cache.hits;
  Alcotest.(check int) "nor a miss" 0 s.Shape_cache.misses

let test_cache_put_enables_hits () =
  let c = Shape_cache.create () in
  let rng = Rng.create 8 in
  let s1 = Gen.sst_tree rng ~vocab:10 () in
  let f = Linearizer.run_forest ~max_children:2 [ s1 ] in
  ignore (Shape_cache.put c ~max_children:2 [ s1 ] f);
  let _, hit = Shape_cache.find_or_linearize c ~max_children:2 [ s1 ] in
  Alcotest.(check bool) "outside forest serves hits" true hit;
  let s = Shape_cache.stats c in
  Alcotest.(check int) "one hit" 1 s.Shape_cache.hits;
  Alcotest.(check int) "no miss" 0 s.Shape_cache.misses;
  (* put at capacity 0 is a no-op. *)
  let c0 = Shape_cache.create ~capacity:0 () in
  ignore (Shape_cache.put c0 ~max_children:2 [ s1 ] f);
  Alcotest.(check int) "disabled cache stores nothing" 0
    (Shape_cache.stats c0).Shape_cache.entries

let test_cache_epoch_eviction_accounting () =
  let c = Shape_cache.create ~capacity:2 () in
  let chain n =
    let rng = Rng.create (100 + n) in
    Gen.sequence rng ~vocab:5 ~len:n ()
  in
  ignore (Shape_cache.find_or_linearize c ~max_children:1 [ chain 2 ]);
  ignore (Shape_cache.find_or_linearize c ~max_children:1 [ chain 3 ]);
  Alcotest.(check int) "full table" 2 (Shape_cache.stats c).Shape_cache.entries;
  (* The third distinct shape trips epoch eviction: the table is
     dropped wholesale, the counters are not. *)
  ignore (Shape_cache.find_or_linearize c ~max_children:1 [ chain 4 ]);
  let s = Shape_cache.stats c in
  Alcotest.(check int) "epoch evicted down to the newcomer" 1 s.Shape_cache.entries;
  Alcotest.(check int) "misses survive the epoch" 3 s.Shape_cache.misses;
  (* An evicted shape is a miss again, not a hit. *)
  let _, hit = Shape_cache.find_or_linearize c ~max_children:1 [ chain 2 ] in
  Alcotest.(check bool) "evicted shape misses" false hit;
  Alcotest.(check int) "hits unmoved" 0 (Shape_cache.stats c).Shape_cache.hits

let () =
  Alcotest.run "session"
    [
      ( "bitwise",
        [
          Alcotest.test_case "tree" `Quick test_tree_bitwise;
          Alcotest.test_case "sequence" `Quick test_sequence_bitwise;
          Alcotest.test_case "dag" `Quick test_dag_bitwise;
          QCheck_alcotest.to_alcotest prop_grow_bitwise;
        ] );
      ( "serving",
        [
          Alcotest.test_case "windows" `Quick test_session_windows;
          Alcotest.test_case "replacement" `Quick test_session_replacement;
          Alcotest.test_case "bundle" `Quick test_session_through_bundle;
        ] );
      ( "failover",
        [
          Alcotest.test_case "failstop" `Quick test_session_failover;
          Alcotest.test_case "determinism" `Quick test_session_chaos_determinism;
        ] );
      ( "table",
        [
          Alcotest.test_case "evict-restore-bitwise" `Quick
            test_evict_restore_bitwise;
          Alcotest.test_case "ttl-expiry" `Quick test_ttl_expiry_and_return;
          Alcotest.test_case "evict-failover" `Quick test_evict_failover_restore;
          Alcotest.test_case "restart-restore" `Quick
            test_restart_restore_from_disk;
          Alcotest.test_case "close-frees-cache" `Quick
            test_close_session_frees_cache_entries;
          QCheck_alcotest.to_alcotest prop_accounting_matches_linearizer;
          QCheck_alcotest.to_alcotest prop_session_lifecycle;
        ] );
      ( "packing",
        [
          Alcotest.test_case "tree" `Quick test_pack_tree_bitwise;
          Alcotest.test_case "sequence" `Quick test_pack_sequence_bitwise;
          Alcotest.test_case "dag" `Quick test_pack_dag_bitwise;
          Alcotest.test_case "autotuned" `Quick test_pack_autotuned_bitwise;
          Alcotest.test_case "failover" `Quick test_pack_failover;
          Alcotest.test_case "chaos-determinism" `Quick
            test_pack_chaos_determinism;
          Alcotest.test_case "deadline-misses" `Quick test_pack_deadline_misses;
          QCheck_alcotest.to_alcotest prop_pack_bitwise;
        ] );
      ( "shape-cache",
        [
          Alcotest.test_case "rejection" `Quick test_cache_rejection_moves_no_counter;
          Alcotest.test_case "raising-rebind" `Quick test_cache_raising_rebind_is_not_a_hit;
          Alcotest.test_case "put" `Quick test_cache_put_enables_hits;
          Alcotest.test_case "epoch-eviction" `Quick test_cache_epoch_eviction_accounting;
        ] );
    ]
