(* Session-pinned serving: growing conversations served as deltas.

   The contract under test is the serving tentpole: a session's token
   is served by re-running only the grown tail with pre-seeded
   persistent states, and that must be bitwise indistinguishable from
   re-linearizing and re-executing the whole conversation cold — for
   every node's every state, at every step, across failovers and
   through AOT bundles.  The shape-cache tests pin the accounting
   satellites: counters move only after the work they account for
   succeeded, [put] moves none, epoch eviction drops entries but never
   history. *)

open Cortex
module M = Models.Common
module Q = QCheck

let gpu = Backend.gpu

(* The whole conversation, token by token: structures share their
   prefix nodes physically, which is what the session delta path
   keys on. *)
let conversation seed ~vocab ~kind ~tokens =
  let rng = Rng.create seed in
  let g = Gen.growth_start rng ~vocab ~kind () in
  let first = Gen.growth_structure g in
  first :: List.init tokens (fun _ -> Gen.grow_one rng g)

let engine_of spec ?devices ?faults ?seed params =
  Engine.of_spec
    ~config:
      (Engine.Config.make
         ?devices ?faults ?seed ~dispatch:Dispatch.Least_loaded ~params ())
    spec ~backend:gpu

(* Serve every token of [structs] under one session in a single drain
   (each session token is its own pinned window, played in arrival
   order) and return the summary. *)
let serve_session eng ?(session = "chat") structs =
  List.iteri
    (fun i s ->
      ignore
        (Engine.submit_exn eng ~arrival_us:(1000.0 *. float_of_int i) ~session s))
    structs;
  Engine.drain eng

let check_states_bitwise spec eng ~session compiled params s =
  let solo = Runtime.execute compiled ~params s in
  List.iter
    (fun (st : Ra.state) ->
      Array.iter
        (fun (node : Node.t) ->
          match Engine.session_state eng session st.Ra.st_name node with
          | None ->
            Alcotest.failf "no persisted state %s for node %d" st.Ra.st_name
              node.Node.id
          | Some v ->
            Alcotest.(check bool)
              (Printf.sprintf "node %d state %s bitwise" node.Node.id
                 st.Ra.st_name)
              true
              (Tensor.max_abs_diff v (Runtime.state solo st.Ra.st_name node)
              = 0.0))
        s.Structure.nodes)
    spec.M.program.Ra.states

(* ---------- delta serving is bitwise-identical to cold ---------- *)

let check_grow_bitwise spec ~vocab ~kind ~tokens seed =
  let params = spec.M.init_params (Rng.create (seed + 1)) in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let eng = engine_of spec params in
  let structs = conversation seed ~vocab ~kind ~tokens in
  let s = serve_session eng structs in
  Alcotest.(check int) "all tokens completed" (tokens + 1)
    s.Engine.slo.Engine.slo_completed;
  (* Every persisted state of the final conversation matches a cold
     full execution, and each token's root output matched its own
     prefix's cold run. *)
  let final = List.nth structs tokens in
  check_states_bitwise spec eng ~session:"chat" compiled params final;
  List.iteri
    (fun i st ->
      let solo = Runtime.execute compiled ~params st in
      let out = List.hd spec.M.program.Ra.outputs in
      let root = List.hd st.Structure.roots in
      let v = List.assoc i s.Engine.results in
      Alcotest.(check bool)
        (Printf.sprintf "token %d root output bitwise" i)
        true
        (Tensor.max_abs_diff v (Runtime.state solo out root) = 0.0))
    structs;
  (* The session actually served deltas: one cold window, the rest
     grow-by-one extensions. *)
  match Engine.sessions eng with
  | [ sn ] ->
    Alcotest.(check string) "session name" "chat" sn.Engine.sn_name;
    Alcotest.(check int) "windows" (tokens + 1) sn.Engine.sn_windows;
    Alcotest.(check int) "one cold window" 1 sn.Engine.sn_cold;
    Alcotest.(check int) "rest served as deltas" tokens sn.Engine.sn_extends;
    Alcotest.(check int) "final nodes" (Structure.num_nodes final)
      sn.Engine.sn_nodes;
    Alcotest.(check bool) "geometric materializations happened" true
      (sn.Engine.sn_materializations >= 1);
    Alcotest.(check bool) "device pinned" true (sn.Engine.sn_device >= 0)
  | l -> Alcotest.failf "expected one session, got %d" (List.length l)

let test_tree_bitwise () =
  check_grow_bitwise
    (Models.Tree_lstm.spec ~vocab:20 ~hidden:5 ())
    ~vocab:20 ~kind:Structure.Tree ~tokens:12 3

let test_sequence_bitwise () =
  check_grow_bitwise
    (Models.Tree_lstm.spec ~vocab:20 ~hidden:4 ~sequence:true ())
    ~vocab:20 ~kind:Structure.Sequence ~tokens:10 5

let test_dag_bitwise () =
  check_grow_bitwise
    (Models.Dag_rnn.spec ~rows:5 ~cols:5 ~hidden:4 ())
    (* [grow_one] stamps internal nodes with payload [vocab], and the
       DAG-RNN reads X[payload] at every node — keep vocab+1 <= cells. *)
    ~vocab:24 ~kind:Structure.Dag ~tokens:8 7

(* Property form: any kind, any length, same contract. *)
let prop_grow_bitwise =
  Q.Test.make ~count:8 ~name:"session delta serving == cold (all kinds)"
    Q.(pair (int_bound 2) (pair (1 -- 10) small_int))
    (fun (k, (tokens, seed)) ->
      let kind, spec, vocab =
        match k with
        | 0 ->
          (Structure.Tree, Models.Tree_lstm.spec ~vocab:15 ~hidden:3 (), 15)
        | 1 ->
          ( Structure.Sequence,
            Models.Tree_gru.spec ~vocab:15 ~hidden:3 ~sequence:true (),
            15 )
        | _ -> (Structure.Dag, Models.Dag_rnn.spec ~rows:4 ~cols:4 ~hidden:3 (), 15)
      in
      check_grow_bitwise spec ~vocab ~kind ~tokens (100 + seed);
      true)

(* ---------- per-token windows and interleaving ---------- *)

let test_session_windows () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 2) in
  let eng = engine_of spec params in
  (* Two sessions interleaved with regular one-off requests in the same
     drain: sessions get their own size-1 pinned windows, the one-offs
     batch as usual. *)
  let ca = conversation 21 ~vocab:20 ~kind:Structure.Tree ~tokens:3 in
  let cb = conversation 22 ~vocab:20 ~kind:Structure.Tree ~tokens:3 in
  let rng = Rng.create 23 in
  List.iteri
    (fun i (a, b) ->
      let at = 500.0 *. float_of_int i in
      ignore (Engine.submit_exn eng ~arrival_us:at ~session:"a" a);
      ignore (Engine.submit_exn eng ~arrival_us:(at +. 100.0) ~session:"b" b);
      ignore
        (Engine.submit_exn eng ~arrival_us:(at +. 200.0)
           (Gen.sst_tree rng ~vocab:20 ())))
    (List.combine ca cb);
  let s = Engine.drain eng in
  Alcotest.(check int) "everything completed" 12
    s.Engine.slo.Engine.slo_completed;
  let swin =
    List.filter (fun w -> w.Engine.wr_session <> None) s.Engine.windows
  in
  Alcotest.(check int) "one window per session token" 8 (List.length swin);
  List.iter
    (fun w -> Alcotest.(check int) "session windows are size 1" 1 w.Engine.wr_size)
    swin;
  (* Each session sticks to one device across its windows. *)
  List.iter
    (fun name ->
      match
        List.sort_uniq compare
          (List.filter_map
             (fun w ->
               if w.Engine.wr_session = Some name then Some w.Engine.wr_device
               else None)
             s.Engine.windows)
      with
      | [ _ ] -> ()
      | ds -> Alcotest.failf "session %s ran on %d devices" name (List.length ds))
    [ "a"; "b" ];
  Alcotest.(check int) "two live sessions" 2 (List.length (Engine.sessions eng));
  Engine.close_session eng "a";
  Alcotest.(check int) "closed session is gone" 1
    (List.length (Engine.sessions eng))

(* ---------- a different conversation under the same name ---------- *)

let test_session_replacement () =
  let spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 () in
  let params = spec.M.init_params (Rng.create 4) in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let eng = engine_of spec params in
  ignore (serve_session eng (conversation 31 ~vocab:20 ~kind:Structure.Tree ~tokens:4));
  (* A brand-new conversation under the same name: served cold, the old
     persisted state dropped, and correctness unaffected. *)
  let fresh = conversation 32 ~vocab:20 ~kind:Structure.Tree ~tokens:2 in
  let s = serve_session eng fresh in
  Alcotest.(check int) "fresh tokens completed" 3
    s.Engine.slo.Engine.slo_completed;
  check_states_bitwise spec eng ~session:"chat" compiled params
    (List.nth fresh 2);
  match Engine.sessions eng with
  | [ sn ] ->
    Alcotest.(check int) "replacement went cold once more" 2 sn.Engine.sn_cold;
    Alcotest.(check int) "then kept extending" 6 sn.Engine.sn_extends
  | _ -> Alcotest.fail "expected one session"

(* ---------- failover: the pinned device dies mid-conversation ---------- *)

let failover_spec = Models.Tree_lstm.spec ~vocab:20 ~hidden:4 ()

let run_failover ~faults ~seed =
  let params = failover_spec.M.init_params (Rng.create 9) in
  let eng = engine_of failover_spec ~devices:[ gpu; gpu ] ~faults ~seed params in
  let structs = conversation 41 ~vocab:20 ~kind:Structure.Tree ~tokens:8 in
  let s = serve_session eng structs in
  (eng, structs, s)

let test_session_failover () =
  (* Probe the fault-free run to learn which device the session pins,
     then kill exactly that device mid-conversation. *)
  let probe, _, _ = run_failover ~faults:[] ~seed:42 in
  let pinned =
    match Engine.sessions probe with
    | [ sn ] -> sn.Engine.sn_device
    | _ -> Alcotest.fail "expected one session"
  in
  let faults = [ Fault.Fail_stop { device = pinned; at_us = 3500.0 } ] in
  let eng, structs, s = run_failover ~faults ~seed:42 in
  Alcotest.(check int) "every token completed despite the fail-stop" 9
    s.Engine.slo.Engine.slo_completed;
  (match Engine.sessions eng with
   | [ sn ] ->
     Alcotest.(check bool) "failover re-bound the session layout" true
       (sn.Engine.sn_rebinds >= 1);
     Alcotest.(check bool) "re-pinned to the survivor" true
       (sn.Engine.sn_device >= 0 && sn.Engine.sn_device <> pinned)
   | _ -> Alcotest.fail "expected one session");
  (* Failing over cannot perturb the numbers: the re-bound layout
     serves the same deltas. *)
  let compiled =
    Runtime.compile
      ~options:(Runtime.options_for failover_spec)
      failover_spec.M.program
  in
  let params = failover_spec.M.init_params (Rng.create 9) in
  check_states_bitwise failover_spec eng ~session:"chat" compiled params
    (List.nth structs 8)

let render_sessions (s : Engine.summary) =
  String.concat ";"
    (List.map
       (fun (x : Engine.session_report) ->
         Printf.sprintf "%s:%d:%d:%d:%d:%d:%d:%d:%d" x.Engine.sn_name
           x.Engine.sn_nodes x.Engine.sn_windows x.Engine.sn_delta_nodes
           x.Engine.sn_extends x.Engine.sn_cold x.Engine.sn_materializations
           x.Engine.sn_rebinds x.Engine.sn_device)
       s.Engine.sessions)

let test_session_chaos_determinism () =
  let faults = [ Fault.Fail_stop { device = 0; at_us = 2500.0 } ] in
  let run () =
    let _, _, s = run_failover ~faults ~seed:7 in
    Printf.sprintf "%d/%d/%.6f|%s" s.Engine.slo.Engine.slo_completed
      s.Engine.slo.Engine.slo_failovers s.Engine.aggregate.Engine.makespan_us
      (render_sessions s)
  in
  Alcotest.(check string) "same seed, same session history" (run ()) (run ())

(* ---------- sessions survive AOT bundles ---------- *)

let test_session_through_bundle () =
  let spec = Models.Tree_fc.spec ~vocab:12 ~hidden:4 () in
  let compiled =
    Runtime.compile ~options:(Runtime.options_for spec) spec.M.program
  in
  let weights = Checkpoint.of_spec spec ~seed:5 in
  let b =
    Bundle.create ~weights ~model:"TreeFC" ~size:"small"
      ~backend:gpu.Backend.short compiled
  in
  let eng =
    Engine.of_bundle
      ~config:(Engine.Config.make ~params:(Bundle.resolver b) ())
      b ~backend:gpu
  in
  let structs = conversation 51 ~vocab:12 ~kind:Structure.Tree ~tokens:6 in
  let s = serve_session eng structs in
  Alcotest.(check int) "bundle-served tokens completed" 7
    s.Engine.slo.Engine.slo_completed;
  (match Engine.sessions eng with
   | [ sn ] ->
     Alcotest.(check int) "bundle engine serves deltas" 6 sn.Engine.sn_extends
   | _ -> Alcotest.fail "expected one session");
  check_states_bitwise spec eng ~session:"chat" compiled
    (Checkpoint.resolver weights)
    (List.nth structs 6)

(* ---------- shape-cache accounting ---------- *)

let test_cache_rejection_moves_no_counter () =
  let c = Shape_cache.create () in
  let wide =
    let b = Node.builder () in
    let kids = List.init 3 (fun p -> Node.make b ~payload:p []) in
    Structure.create ~kind:Structure.Tree ~max_children:3
      [ Node.make b ~payload:9 kids ]
  in
  (try
     ignore (Shape_cache.find_or_linearize c ~max_children:2 [ wide ]);
     Alcotest.fail "fanout 3 accepted with max_children 2"
   with Linearizer.Rejected _ -> ());
  let s = Shape_cache.stats c in
  Alcotest.(check int) "no hit" 0 s.Shape_cache.hits;
  Alcotest.(check int) "no miss" 0 s.Shape_cache.misses;
  Alcotest.(check int) "no entry" 0 s.Shape_cache.entries

let test_cache_raising_rebind_is_not_a_hit () =
  (* A forest [put] under a key it does not belong to makes the next
     lookup's rebind raise: the accounting satellite says that raising
     lookup must not count as a hit (it served nothing). *)
  let c = Shape_cache.create () in
  let rng = Rng.create 6 in
  let s1 = Gen.sst_tree rng ~vocab:10 () in
  let s2 = Gen.sst_tree rng ~vocab:10 () in
  let lone = Linearizer.run_forest ~max_children:2 [ s1 ] in
  Shape_cache.put c ~max_children:2 [ s1; s2 ] lone;
  Alcotest.(check int) "put counts nothing"
    0
    (Shape_cache.stats c).Shape_cache.hits;
  (try
     ignore (Shape_cache.find_or_linearize c ~max_children:2 [ s1; s2 ]);
     Alcotest.fail "rebind of a mismatched cached forest succeeded"
   with Invalid_argument _ -> ());
  let s = Shape_cache.stats c in
  Alcotest.(check int) "raising rebind is not a hit" 0 s.Shape_cache.hits;
  Alcotest.(check int) "nor a miss" 0 s.Shape_cache.misses

let test_cache_put_enables_hits () =
  let c = Shape_cache.create () in
  let rng = Rng.create 8 in
  let s1 = Gen.sst_tree rng ~vocab:10 () in
  let f = Linearizer.run_forest ~max_children:2 [ s1 ] in
  Shape_cache.put c ~max_children:2 [ s1 ] f;
  let _, hit = Shape_cache.find_or_linearize c ~max_children:2 [ s1 ] in
  Alcotest.(check bool) "outside forest serves hits" true hit;
  let s = Shape_cache.stats c in
  Alcotest.(check int) "one hit" 1 s.Shape_cache.hits;
  Alcotest.(check int) "no miss" 0 s.Shape_cache.misses;
  (* put at capacity 0 is a no-op. *)
  let c0 = Shape_cache.create ~capacity:0 () in
  Shape_cache.put c0 ~max_children:2 [ s1 ] f;
  Alcotest.(check int) "disabled cache stores nothing" 0
    (Shape_cache.stats c0).Shape_cache.entries

let test_cache_epoch_eviction_accounting () =
  let c = Shape_cache.create ~capacity:2 () in
  let chain n =
    let rng = Rng.create (100 + n) in
    Gen.sequence rng ~vocab:5 ~len:n ()
  in
  ignore (Shape_cache.find_or_linearize c ~max_children:1 [ chain 2 ]);
  ignore (Shape_cache.find_or_linearize c ~max_children:1 [ chain 3 ]);
  Alcotest.(check int) "full table" 2 (Shape_cache.stats c).Shape_cache.entries;
  (* The third distinct shape trips epoch eviction: the table is
     dropped wholesale, the counters are not. *)
  ignore (Shape_cache.find_or_linearize c ~max_children:1 [ chain 4 ]);
  let s = Shape_cache.stats c in
  Alcotest.(check int) "epoch evicted down to the newcomer" 1 s.Shape_cache.entries;
  Alcotest.(check int) "misses survive the epoch" 3 s.Shape_cache.misses;
  (* An evicted shape is a miss again, not a hit. *)
  let _, hit = Shape_cache.find_or_linearize c ~max_children:1 [ chain 2 ] in
  Alcotest.(check bool) "evicted shape misses" false hit;
  Alcotest.(check int) "hits unmoved" 0 (Shape_cache.stats c).Shape_cache.hits

let () =
  Alcotest.run "session"
    [
      ( "bitwise",
        [
          Alcotest.test_case "tree" `Quick test_tree_bitwise;
          Alcotest.test_case "sequence" `Quick test_sequence_bitwise;
          Alcotest.test_case "dag" `Quick test_dag_bitwise;
          QCheck_alcotest.to_alcotest prop_grow_bitwise;
        ] );
      ( "serving",
        [
          Alcotest.test_case "windows" `Quick test_session_windows;
          Alcotest.test_case "replacement" `Quick test_session_replacement;
          Alcotest.test_case "bundle" `Quick test_session_through_bundle;
        ] );
      ( "failover",
        [
          Alcotest.test_case "failstop" `Quick test_session_failover;
          Alcotest.test_case "determinism" `Quick test_session_chaos_determinism;
        ] );
      ( "shape-cache",
        [
          Alcotest.test_case "rejection" `Quick test_cache_rejection_moves_no_counter;
          Alcotest.test_case "raising-rebind" `Quick test_cache_raising_rebind_is_not_a_hit;
          Alcotest.test_case "put" `Quick test_cache_put_enables_hits;
          Alcotest.test_case "epoch-eviction" `Quick test_cache_epoch_eviction_accounting;
        ] );
    ]
