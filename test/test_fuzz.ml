(* Pipeline fuzzing: generate random-but-valid RA programs (random
   operator DAGs with reductions, child-sums, fixed-child references,
   payload gathers and multiple states) over random structures, and
   check that the compiled loop-based execution matches direct recursive
   evaluation under several schedules.  This covers corners no
   hand-written model reaches. *)

module Rng = Cortex_util.Rng
module Tensor = Cortex_tensor.Tensor
module Gen = Cortex_ds.Gen
module Structure = Cortex_ds.Structure
module Linearizer = Cortex_linearizer.Linearizer
module Interp = Cortex_ilir.Interp
module Ra = Cortex_ra.Ra
module Ra_eval = Cortex_ra.Ra_eval
module Lower = Cortex_lower.Lower
module Nonlinear = Cortex_tensor.Nonlinear

let hidden = 4
let vocab = 12

(* ---------- random program generation ---------- *)

type gctx = {
  rng : Rng.t;
  states : string list;  (* state names, bound to the final ops *)
  mutable temps : string list;  (* ops defined so far *)
  max_children : int;
  allow_children : bool;
}

let pick ctx l = List.nth l (Rng.int ctx.rng (List.length l))

let idx_i = [ Ra.IAxis "i" ]

(* Atoms usable at the output axis [i]. *)
let atom ctx =
  let choices =
    [
      (fun () -> Ra.Const (Rng.float ctx.rng 2.0 -. 1.0));
      (fun () -> Ra.Param ("vec", idx_i));
      (fun () -> Ra.Param ("emb", [ Ra.IPayload; Ra.IAxis "i" ]));
    ]
    @ (if ctx.temps = [] then []
       else [ (fun () -> Ra.Temp (pick ctx ctx.temps, idx_i)) ])
    @
    if ctx.allow_children then
      [
        (fun () ->
          Ra.ChildState (pick ctx ctx.states, Ra.Child (Rng.int ctx.rng ctx.max_children), idx_i));
      ]
    else []
  in
  (pick ctx choices) ()

(* An expression in a reduction axis [j] (no nested reductions). *)
let atom_j ctx ~in_childsum =
  let choices =
    [
      (fun () -> Ra.Param ("vec", [ Ra.IAxis "j" ]));
      (fun () -> Ra.Param ("emb", [ Ra.IPayload; Ra.IAxis "j" ]));
    ]
    @ (if ctx.temps = [] then []
       else [ (fun () -> Ra.Temp (pick ctx ctx.temps, [ Ra.IAxis "j" ])) ])
    @
    if in_childsum then
      [ (fun () -> Ra.ChildState (pick ctx ctx.states, Ra.Current, [ Ra.IAxis "j" ])) ]
    else if ctx.allow_children then
      [
        (fun () ->
          Ra.ChildState
            (pick ctx ctx.states, Ra.Child (Rng.int ctx.rng ctx.max_children), [ Ra.IAxis "j" ]));
      ]
    else []
  in
  (pick ctx choices) ()

let matvec ctx ~in_childsum =
  Ra.Sum ("j", hidden, Ra.Binop (Ra.Mul, Ra.Param ("mat", [ Ra.IAxis "i"; Ra.IAxis "j" ]), atom_j ctx ~in_childsum))

let rec expr ctx ~depth ~in_childsum =
  if depth = 0 then atom ctx
  else
    match Rng.int ctx.rng 8 with
    | 0 | 1 ->
      Ra.Binop
        ( pick ctx [ Ra.Add; Ra.Sub; Ra.Mul ],
          expr ctx ~depth:(depth - 1) ~in_childsum,
          expr ctx ~depth:(depth - 1) ~in_childsum )
    | 2 ->
      Ra.Math
        (pick ctx [ Nonlinear.Tanh; Nonlinear.Sigmoid; Nonlinear.Relu ],
         expr ctx ~depth:(depth - 1) ~in_childsum)
    | 3 -> matvec ctx ~in_childsum
    | 4 when in_childsum -> Ra.ChildState (pick ctx ctx.states, Ra.Current, idx_i)
    | 4 | 5 when ctx.allow_children && not in_childsum ->
      (* ChildSum: body may reference the current child and contain one
         reduction level. *)
      Ra.ChildSum (expr ctx ~depth:(depth - 1) ~in_childsum:true)
    | _ -> atom ctx

let random_program seed =
  let rng = Rng.create seed in
  let kind, max_children =
    match Rng.int rng 3 with
    | 0 -> (Structure.Tree, 1 + Rng.int rng 3)
    | 1 -> (Structure.Dag, 1 + Rng.int rng 2)
    | _ -> (Structure.Sequence, 1)
  in
  let num_states = 1 + Rng.int rng 2 in
  let states = List.init num_states (fun i -> Printf.sprintf "s%d" i) in
  let num_aux = Rng.int rng 3 in
  let ctx = { rng; states; temps = []; max_children; allow_children = true } in
  let two_phase = Rng.bool rng in
  let ops = ref [] in
  for i = 0 to num_aux - 1 do
    let name = Printf.sprintf "aux%d" i in
    let body = expr ctx ~depth:2 ~in_childsum:false in
    ops := Ra.op name ~axes:[ ("i", hidden) ] body :: !ops;
    ctx.temps <- name :: ctx.temps
  done;
  List.iteri
    (fun i st ->
      let body =
        Ra.Math (Nonlinear.Tanh, expr ctx ~depth:2 ~in_childsum:false)
      in
      let phase =
        (* The last state op may sit in a second phase, but only when a
           phase-0 op exists (phases must be dense from 0). *)
        if two_phase && i = num_states - 1 && num_aux + num_states > 1 then 1 else 0
      in
      ops := Ra.op ~phase (st ^ "_op") ~axes:[ ("i", hidden) ] body :: !ops;
      ctx.temps <- (st ^ "_op") :: ctx.temps)
    states;
  let program =
    {
      Ra.name = Printf.sprintf "fuzz_%d" seed;
      kind;
      max_children;
      params =
        [
          ("vec", [ hidden ]);
          ("mat", [ hidden; hidden ]);
          ("emb", [ vocab + 1; hidden ]);
        ];
      rec_ops = List.rev !ops;
      leaf_ops = None;
      states =
        List.map
          (fun st -> { Ra.st_name = st; st_op = st ^ "_op"; st_init = Ra.Zero })
          states;
      outputs = states;
    }
  in
  Ra.validate program;
  program

let random_structure rng (program : Ra.t) =
  match program.Ra.kind with
  | Structure.Tree ->
    Structure.merge
      (List.init (1 + Rng.int rng 3) (fun _ ->
           Gen.random_tree rng ~max_nodes:12 ~max_children:program.Ra.max_children))
  | Structure.Dag -> Gen.random_dag rng ~max_nodes:15 ~max_children:program.Ra.max_children
  | Structure.Sequence -> Gen.sequence rng ~vocab ~len:(1 + Rng.int rng 12) ()

(* Structures carry payloads up to the generators' vocabulary; clamp to
   the program's embedding rows through the parameter table instead of
   regenerating: use a payload-safe embedding by taking ids modulo the
   table. We instead rebuild structures with payloads in range via the
   generators' ~vocab arguments where available; random_tree/dag payloads
   are full-range, so remap them here. *)
let clamp_payloads (s : Structure.t) =
  let b = Cortex_ds.Node.builder () in
  let memo = Hashtbl.create 32 in
  let rec copy (n : Cortex_ds.Node.t) =
    match Hashtbl.find_opt memo n.Cortex_ds.Node.id with
    | Some n' -> n'
    | None ->
      let children = Array.to_list (Array.map copy n.Cortex_ds.Node.children) in
      let payload = n.Cortex_ds.Node.payload mod (vocab + 1) in
      let n' = Cortex_ds.Node.make b ~payload children in
      Hashtbl.add memo n.Cortex_ds.Node.id n';
      n'
  in
  let roots = List.map copy s.Structure.roots in
  Structure.create ~kind:s.Structure.kind ~max_children:s.Structure.max_children roots

let schedules (program : Ra.t) =
  [
    Lower.default;
    Lower.baseline;
    { Lower.default with Lower.specialize = false };
    { Lower.default with Lower.dynamic_batch = false };
  ]
  @
  match program.Ra.kind with
  | Structure.Dag -> []
  | Structure.Tree | Structure.Sequence -> [ { Lower.default with Lower.unroll = true } ]

let check_seed seed =
  let program = random_program seed in
  let rng = Rng.create (seed + 7919) in
  let structure = clamp_payloads (random_structure rng program) in
  let params_table =
    List.map
      (fun (name, dims) ->
        (name, Tensor.rand_uniform rng (Array.of_list dims) ~lo:(-0.4) ~hi:0.4))
      program.Ra.params
  in
  let params name = List.assoc name params_table in
  let reference = Ra_eval.run program ~params structure in
  List.for_all
    (fun options ->
      let compiled = Lower.lower ~options program in
      let lin = Linearizer.run structure in
      let bound = Lower.bind ~count:true compiled lin in
      List.iter
        (fun (name, t) -> Interp.bind_tensor bound.Lower.ctx t (params name))
        compiled.Lower.param_tensors;
      Interp.run_program bound.Lower.ctx compiled.Lower.prog;
      let values_agree =
        Array.for_all
          (fun node ->
            List.for_all
              (fun st ->
                Tensor.approx_equal ~tol:1e-8
                  (Ra_eval.state reference st.Ra.st_name node)
                  (Lower.state_value bound compiled st.Ra.st_name node))
              program.Ra.states)
          structure.Structure.nodes
      in
      (* The static cost walker must reproduce the interpreter's exact
         dynamic FLOP / load / store counts. *)
      let dynamic = Interp.counters bound.Lower.ctx in
      let cost =
        Cortex_ilir.Cost.analyze ~uf:bound.Lower.uf_resolver
          ~num_internal_batches:bound.Lower.num_batch_launches compiled.Lower.prog
      in
      let total field =
        List.fold_left
          (fun acc (k : Cortex_ilir.Cost.kernel_cost) ->
            List.fold_left (fun acc s -> acc +. field s) acc k.Cortex_ilir.Cost.segments)
          0.0 cost.Cortex_ilir.Cost.kernels
      in
      let sum_spaces a = Array.fold_left ( +. ) 0.0 a /. 4.0 in
      let counts_agree =
        int_of_float (total (fun s -> s.Cortex_ilir.Cost.flops)) = dynamic.Interp.flops
        && int_of_float (total (fun s -> sum_spaces s.Cortex_ilir.Cost.reads))
           = dynamic.Interp.loads
        && int_of_float (total (fun s -> sum_spaces s.Cortex_ilir.Cost.writes))
           = dynamic.Interp.stores
      in
      values_agree && counts_agree)
    (schedules program)

let fuzz_test =
  QCheck.Test.make ~name:"random programs: compiled == recursive" ~count:150
    QCheck.(int_range 0 1_000_000)
    check_seed

let () =
  Alcotest.run "fuzz" [ ("pipeline", [ QCheck_alcotest.to_alcotest fuzz_test ]) ]
