(* End-to-end pipeline tests: the compiled loop-based execution must
   agree with the direct recursive evaluation of the RA program on
   every structure, for every combination of scheduling options. *)

module Rng = Cortex_util.Rng
module Tensor = Cortex_tensor.Tensor
module Gen = Cortex_ds.Gen
module Structure = Cortex_ds.Structure
module Linearizer = Cortex_linearizer.Linearizer
module Interp = Cortex_ilir.Interp
module Ra = Cortex_ra.Ra
module Ra_eval = Cortex_ra.Ra_eval
module Lower = Cortex_lower.Lower

let hidden = 8
let vocab1 = Gen.vocab_size + 1

(* A child-sum TreeRNN: h = tanh(Emb[word] + U . sum_k h_k). *)
let treernn_program =
  let open Ra in
  {
    name = "tiny_treernn";
    kind = Structure.Tree;
    max_children = 3;
    params = [ ("Emb", [ vocab1; hidden ]); ("U", [ hidden; hidden ]) ];
    rec_ops =
      [
        op "cs" ~axes:[ ("i", hidden) ]
          (ChildSum (ChildState ("h", Current, [ IAxis "i" ])));
        op "h" ~axes:[ ("i", hidden) ]
          (tanh_
             (Param ("Emb", [ IPayload; IAxis "i" ])
             + Sum ("j", hidden, Param ("U", [ IAxis "i"; IAxis "j" ]) * Temp ("cs", [ IAxis "j" ]))));
      ];
    leaf_ops = None;
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let random_params rng (program : Ra.t) =
  let tensors =
    List.map
      (fun (name, dims) ->
        (name, Tensor.rand_uniform rng (Array.of_list dims) ~lo:(-0.4) ~hi:0.4))
      program.Ra.params
  in
  fun name -> List.assoc name tensors

let run_compiled ?(options = Lower.default) program params structure =
  let compiled = Lower.lower ~options program in
  let lin = Linearizer.run structure in
  Linearizer.check lin;
  let bound = Lower.bind compiled lin in
  List.iter
    (fun (name, t) -> Interp.bind_tensor bound.Lower.ctx t (params name))
    compiled.Lower.param_tensors;
  Interp.run_program bound.Lower.ctx compiled.Lower.prog;
  (compiled, bound)

let check_agreement ?options program structure rng label =
  let params = random_params rng program in
  let reference = Ra_eval.run program ~params structure in
  let compiled, bound = run_compiled ?options program params structure in
  Array.iter
    (fun node ->
      List.iter
        (fun st ->
          let want = Ra_eval.state reference st.Ra.st_name node in
          let got = Lower.state_value bound compiled st.Ra.st_name node in
          if not (Tensor.approx_equal ~tol:1e-9 want got) then
            Alcotest.failf "%s: state %s differs at node %d (max diff %g)" label
              st.Ra.st_name node.Cortex_ds.Node.id (Tensor.max_abs_diff want got))
        program.Ra.states)
    structure.Structure.nodes

let option_combos =
  [
    ("default", Lower.default);
    ("baseline", Lower.baseline);
    ("nospec", { Lower.default with specialize = false });
    ("nofuse", { Lower.default with fuse = false });
    ("nobatch", { Lower.default with dynamic_batch = false });
    ("nobatch_nospec", { Lower.default with dynamic_batch = false; specialize = false });
    ("unroll", { Lower.default with unroll = true });
    ("unroll_block", { Lower.default with unroll = true; block_local_unroll = true });
    ( "conservative_barriers",
      { Lower.default with barrier_mode = Cortex_ilir.Barrier.Conservative } );
  ]

let test_treernn_combo (label, options) () =
  let rng = Rng.create 42 in
  for trial = 1 to 5 do
    let structure = Gen.random_tree rng ~max_nodes:25 ~max_children:3 in
    check_agreement ~options treernn_program structure rng
      (Printf.sprintf "%s/trial%d" label trial)
  done

let test_treernn_single_node () =
  let rng = Rng.create 7 in
  let b = Cortex_ds.Node.builder () in
  let root = Cortex_ds.Node.make b ~payload:3 [] in
  let structure = Structure.create ~kind:Structure.Tree ~max_children:3 [ root ] in
  check_agreement treernn_program structure rng "single-node"

let test_treernn_sst_batch () =
  let rng = Rng.create 11 in
  let program = { treernn_program with max_children = 2 } in
  let structure = Gen.sst_batch rng ~batch:4 () in
  check_agreement program structure rng "sst-batch"

(* ---------- race detection (§A.4 correctness) ---------- *)

module Races = Cortex_ilir.Races
module Ir = Cortex_ilir.Ir

let race_context ?(options = Lower.default) program params structure =
  let compiled = Lower.lower ~options program in
  let lin = Linearizer.run structure in
  let bound = Lower.bind compiled lin in
  List.iter
    (fun (name, t) -> Interp.bind_tensor bound.Lower.ctx t (params name))
    compiled.Lower.param_tensors;
  (compiled, bound)

let strip_barriers (p : Ir.program) =
  {
    p with
    Ir.kernels =
      List.map
        (fun k ->
          {
            k with
            Ir.body =
              Ir.map_stmt
                ~stmt:(function Ir.Barrier -> Some Ir.Nop | _ -> None)
                k.Ir.body;
          })
        p.Ir.kernels;
  }

let test_race_free_configs () =
  let rng = Rng.create 51 in
  let structure = Gen.sst_batch rng ~batch:3 () in
  let params = random_params rng { treernn_program with max_children = 2 } in
  List.iter
    (fun (label, options) ->
      let compiled, bound =
        race_context ~options { treernn_program with max_children = 2 } params structure
      in
      let races = Races.check_program ~ctx:bound.Lower.ctx compiled.Lower.prog in
      match races with
      | [] -> ()
      | r :: _ ->
        Alcotest.failf "%s: unexpected race: %s" label (Races.to_string r))
    [
      ("default", Lower.default);
      ("nospec", { Lower.default with specialize = false });
      ("nofuse", { Lower.default with fuse = false });
      ("nobatch", { Lower.default with dynamic_batch = false });
      ("unroll", { Lower.default with unroll = true });
      ("conservative", { Lower.default with barrier_mode = Cortex_ilir.Barrier.Conservative });
    ]

let test_races_without_barriers () =
  let rng = Rng.create 52 in
  let program = { treernn_program with max_children = 2 } in
  let structure = Gen.sst_batch rng ~batch:3 () in
  let params = random_params rng program in
  let compiled, bound = race_context program params structure in
  let stripped = strip_barriers compiled.Lower.prog in
  let races = Races.check_program ~ctx:bound.Lower.ctx stripped in
  Alcotest.(check bool)
    (Printf.sprintf "%d races detected" (List.length races))
    true
    (List.length races > 0);
  (* The race must involve the published state read through the child
     cache fill. *)
  List.iter
    (fun (r : Races.race) ->
      Alcotest.(check bool) "race involves a state or cache tensor" true
        (String.length r.Races.tensor > 0))
    races

let test_no_race_on_single_level () =
  (* A forest of single-node trees has no cross-node dependence, so even
     the barrier-free program is race-free. *)
  let b = Cortex_ds.Node.builder () in
  let roots = List.init 4 (fun i -> Cortex_ds.Node.make b ~payload:i []) in
  let structure = Structure.create ~kind:Structure.Tree ~max_children:2 roots in
  let rng = Rng.create 53 in
  let program = { treernn_program with max_children = 2 } in
  let params = random_params rng program in
  let compiled, bound = race_context program params structure in
  let stripped = strip_barriers compiled.Lower.prog in
  Alcotest.(check int) "no races" 0
    (List.length (Races.check_program ~ctx:bound.Lower.ctx stripped))

let () =
  Alcotest.run "pipeline"
    [
      ( "races",
        [
          Alcotest.test_case "compiled-configs-race-free" `Quick test_race_free_configs;
          Alcotest.test_case "stripped-barriers-race" `Quick test_races_without_barriers;
          Alcotest.test_case "single-level-safe" `Quick test_no_race_on_single_level;
        ] );
      ( "treernn",
        List.map
          (fun combo ->
            Alcotest.test_case (fst combo) `Quick (test_treernn_combo combo))
          option_combos
        @ [
            Alcotest.test_case "single-node" `Quick test_treernn_single_node;
            Alcotest.test_case "sst-batch" `Quick test_treernn_sst_batch;
          ] );
    ]
