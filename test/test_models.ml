(* Model-zoo correctness: for every model, three independent
   implementations must agree on every node of random inputs —
   (1) the hand-written reference (plain recursion + tensor ops),
   (2) the RA evaluator, and
   (3) the compiled pipeline (linearize + lowered ILIR interpreted). *)

module Rng = Cortex_util.Rng
module Tensor = Cortex_tensor.Tensor
module Gen = Cortex_ds.Gen
module Node = Cortex_ds.Node
module Structure = Cortex_ds.Structure
module Linearizer = Cortex_linearizer.Linearizer
module Interp = Cortex_ilir.Interp
module Ra = Cortex_ra.Ra
module Ra_eval = Cortex_ra.Ra_eval
module Lower = Cortex_lower.Lower
module M = Cortex_models.Models_common
module Reference = Cortex_models.Reference

let vocab = 50
let hidden = 8

let run_compiled ~options (spec : M.t) params structure =
  let compiled = Lower.lower ~options spec.M.program in
  let lin = Linearizer.run structure in
  let bound = Lower.bind compiled lin in
  List.iter
    (fun (name, t) -> Interp.bind_tensor bound.Lower.ctx t (params name))
    compiled.Lower.param_tensors;
  Interp.run_program bound.Lower.ctx compiled.Lower.prog;
  fun st node -> Lower.state_value bound compiled st node

let check_against_ra ~options (spec : M.t) structure params label =
  let reference = Ra_eval.run spec.M.program ~params structure in
  let compiled_state = run_compiled ~options spec params structure in
  Array.iter
    (fun node ->
      List.iter
        (fun st ->
          let want = Ra_eval.state reference st.Ra.st_name node in
          let got = compiled_state st.Ra.st_name node in
          if not (Tensor.approx_equal ~tol:1e-9 want got) then
            Alcotest.failf "%s: state %s differs at node %d (max %g)" label st.Ra.st_name
              node.Node.id (Tensor.max_abs_diff want got))
        spec.M.program.Ra.states)
    structure.Structure.nodes

let check_ra_against_reference (spec : M.t) structure params refs label =
  let ra = Ra_eval.run spec.M.program ~params structure in
  Array.iter
    (fun node ->
      List.iter
        (fun (st, f) ->
          let want : Tensor.t = f node in
          let got = Ra_eval.state ra st node in
          if not (Tensor.approx_equal ~tol:1e-9 want got) then
            Alcotest.failf "%s: RA %s disagrees with reference at node %d (max %g)" label st
              node.Node.id (Tensor.max_abs_diff want got))
        refs)
    structure.Structure.nodes

type case = {
  label : string;
  spec : M.t;
  refs : (string -> Tensor.t) -> Structure.t -> (string * (Node.t -> Tensor.t)) list;
}

let cases =
  [
    {
      label = "TreeFC";
      spec = Cortex_models.Tree_fc.spec ~height:3 ~hidden ();
      refs =
        (fun params s -> [ ("h", Reference.tree_fc ~params ~hidden s) ]);
    };
    {
      label = "TreeRNN";
      spec = Cortex_models.Tree_rnn.spec ~vocab ~hidden ();
      refs = (fun params s -> [ ("h", Reference.tree_rnn ~params ~hidden s) ]);
    };
    {
      label = "TreeLSTM-full";
      spec = Cortex_models.Tree_lstm.spec ~vocab ~hidden ();
      refs =
        (fun params s ->
          let f = Reference.tree_lstm ~params ~hidden ~with_x:true s in
          [ ("h", fun n -> fst (f n)); ("c", fun n -> snd (f n)) ]);
    };
    {
      label = "TreeLSTM-rec";
      spec = Cortex_models.Tree_lstm.spec ~vocab ~variant:M.Recursive_only ~hidden ();
      refs =
        (fun params s ->
          let f = Reference.tree_lstm ~params ~hidden ~with_x:false s in
          [ ("h", fun n -> fst (f n)) ]);
    };
    {
      label = "NaryTreeLSTM";
      spec = Cortex_models.Tree_lstm.nary_spec ~vocab ~hidden ();
      refs =
        (fun params s ->
          let f = Reference.nary_tree_lstm ~params ~hidden ~with_x:true s in
          [ ("h", fun n -> fst (f n)); ("c", fun n -> snd (f n)) ]);
    };
    {
      label = "NaryTreeLSTM-rec";
      spec = Cortex_models.Tree_lstm.nary_spec ~vocab ~variant:M.Recursive_only ~hidden ();
      refs =
        (fun params s ->
          let f = Reference.nary_tree_lstm ~params ~hidden ~with_x:false s in
          [ ("h", fun n -> fst (f n)) ]);
    };
    {
      label = "TreeGRU";
      spec = Cortex_models.Tree_gru.spec ~vocab ~hidden ();
      refs =
        (fun params s ->
          [ ("h", Reference.tree_gru ~params ~hidden ~with_x:true ~simple:false s) ]);
    };
    {
      label = "SimpleTreeGRU";
      spec = Cortex_models.Tree_gru.spec ~vocab ~simple:true ~hidden ();
      refs =
        (fun params s ->
          [ ("h", Reference.tree_gru ~params ~hidden ~with_x:true ~simple:true s) ]);
    };
    {
      label = "MV-RNN";
      spec = Cortex_models.Mv_rnn.spec ~vocab:16 ~hidden:6 ();
      refs =
        (fun params s ->
          let f = Reference.mv_rnn ~params ~hidden:6 s in
          [ ("p", fun n -> fst (f n)); ("A", fun n -> snd (f n)) ]);
    };
    {
      label = "DAG-RNN";
      spec = Cortex_models.Dag_rnn.spec ~rows:5 ~cols:5 ~hidden ();
      refs =
        (fun params s -> [ ("h", Reference.dag_rnn ~params ~hidden ~with_x:true s) ]);
    };
    {
      label = "LSTM-seq";
      spec = Cortex_models.Tree_lstm.spec ~vocab ~sequence:true ~seq_len:20 ~hidden ();
      refs =
        (fun params s ->
          let f = Reference.tree_lstm ~params ~hidden ~with_x:true s in
          [ ("h", fun n -> fst (f n)) ]);
    };
    {
      label = "GRU-seq";
      spec = Cortex_models.Tree_gru.spec ~vocab ~sequence:true ~seq_len:20 ~hidden ();
      refs =
        (fun params s ->
          [ ("h", Reference.tree_gru ~params ~hidden ~with_x:true ~simple:false s) ]);
    };
  ]

let structure_for (case : case) rng = case.spec.M.dataset rng ~batch:2

let test_reference_agreement (case : case) () =
  let rng = Rng.create 123 in
  let structure = structure_for case rng in
  let params = case.spec.M.init_params (Rng.split rng) in
  check_ra_against_reference case.spec structure params (case.refs params structure)
    case.label

let options_for (case : case) =
  let base =
    [
      ("default", Lower.default);
      ("baseline", Lower.baseline);
      ("nospec", { Lower.default with specialize = false });
      ("nofuse", { Lower.default with fuse = false });
      ("nobatch", { Lower.default with dynamic_batch = false });
    ]
  in
  let tree_like = case.spec.M.program.Ra.kind <> Structure.Dag in
  let extra =
    (if tree_like then
       [
         ( "unroll",
           {
             Lower.default with
             unroll = true;
             block_local_unroll = case.spec.M.block_local_unroll;
           } );
       ]
     else [])
    @
    if tree_like && Ra.num_phases case.spec.M.program.Ra.rec_ops > 1 then
      [
        ( "refactor",
          {
            Lower.default with
            refactor = true;
            refactor_publish = case.spec.M.refactor_publish;
          } );
      ]
    else []
  in
  base @ extra

let test_compiled_agreement (case : case) () =
  let rng = Rng.create 321 in
  let structure = structure_for case rng in
  let params = case.spec.M.init_params (Rng.split rng) in
  List.iter
    (fun (olabel, options) ->
      check_against_ra ~options case.spec structure params
        (Printf.sprintf "%s/%s" case.label olabel))
    (options_for case)

let () =
  Alcotest.run "models"
    [
      ( "reference-vs-ra",
        List.map
          (fun case ->
            Alcotest.test_case case.label `Quick (test_reference_agreement case))
          cases );
      ( "compiled-vs-ra",
        List.map
          (fun case ->
            Alcotest.test_case case.label `Quick (test_compiled_agreement case))
          cases );
    ]
