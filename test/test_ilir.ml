(* Tests for the ILIR: the simplifier/prover (the Z3 substitute, §A.1),
   scheduling transforms, barrier insertion (§A.4) and the bounds
   checker (§A.2). *)

open Cortex_ilir
module Rng = Cortex_util.Rng
module Tensor = Cortex_tensor.Tensor

(* ---------- simplifier: random-expression equivalence ---------- *)

(* Generate random integer expressions over two variables and check
   that simplification preserves their value. *)
let int_expr_gen =
  let open QCheck.Gen in
  let x = Ir.Var.fresh "x" and y = Ir.Var.fresh "y" in
  let rec gen depth =
    if depth = 0 then
      oneof [ map (fun n -> Ir.Int n) (int_range (-20) 20); return (Ir.Var x); return (Ir.Var y) ]
    else
      let sub = gen (depth - 1) in
      oneof
        [
          map (fun n -> Ir.Int n) (int_range (-20) 20);
          return (Ir.Var x);
          return (Ir.Var y);
          map2 (fun a b -> Ir.Binop (Ir.Add, a, b)) sub sub;
          map2 (fun a b -> Ir.Binop (Ir.Sub, a, b)) sub sub;
          map2 (fun a b -> Ir.Binop (Ir.Mul, a, Ir.Int b)) sub (int_range (-5) 5);
          map2 (fun a b -> Ir.Binop (Ir.Min, a, b)) sub sub;
          map2 (fun a b -> Ir.Binop (Ir.Max, a, b)) sub sub;
          map2 (fun a b -> Ir.Cmp (Ir.Lt, a, b)) sub sub;
          map3 (fun c a b -> Ir.Select (c, a, b)) sub sub sub;
        ]
  in
  QCheck.Gen.(pair (gen 4) (pair (int_range (-10) 10) (int_range (-10) 10)))
  |> QCheck.Gen.map (fun (e, (vx, vy)) -> (e, x, y, vx, vy))

let eval_int_expr e bindings =
  let ctx = Interp.create ~num_internal_batches:0 () in
  match Interp.eval_expr ctx bindings e with
  | Interp.Vi n -> n
  | Interp.Vf _ -> Alcotest.fail "expected int"

let test_simplify_preserves_value =
  QCheck.Test.make ~name:"Simplify.expr preserves value" ~count:1000
    (QCheck.make ~print:(fun (e, _, _, vx, vy) ->
         Printf.sprintf "%s with x=%d y=%d" (Ir.expr_to_string e) vx vy)
       int_expr_gen)
    (fun (e, x, y, vx, vy) ->
      let bindings = [ (x.Ir.Var.vid, Interp.Vi vx); (y.Ir.Var.vid, Interp.Vi vy) ] in
      eval_int_expr e bindings = eval_int_expr (Simplify.expr e) bindings)

let test_simplify_identities () =
  let x = Ir.Var (Ir.Var.fresh "x") in
  let checks =
    [
      (Ir.Binop (Ir.Add, x, Ir.Int 0), x);
      (Ir.Binop (Ir.Mul, x, Ir.Int 0), Ir.Int 0);
      (Ir.Binop (Ir.Mul, Ir.Int 1, x), x);
      (Ir.Binop (Ir.Add, Ir.Binop (Ir.Add, x, Ir.Int 2), Ir.Int 3), Ir.Binop (Ir.Add, x, Ir.Int 5));
      (Ir.Binop (Ir.Sub, x, x), Ir.Int 0);
      (Ir.Select (Ir.Int 1, x, Ir.Int 9), x);
      (Ir.Binop (Ir.Mul, Ir.Flt 0.0, Ir.Math (Cortex_tensor.Nonlinear.Tanh, x)), Ir.Flt 0.0);
      (Ir.Math (Cortex_tensor.Nonlinear.Relu, Ir.Flt (-3.0)), Ir.Flt 0.0);
    ]
  in
  List.iter
    (fun (e, want) ->
      Alcotest.(check string) (Ir.expr_to_string e) (Ir.expr_to_string want)
        (Ir.expr_to_string (Simplify.expr e)))
    checks

(* ---------- the prover: symbolic bound cancellation ---------- *)

let test_prove_loop_guard () =
  (* The loop-peeling fact: given 0 <= i <= batch_len(b) - 1, prove
     i < batch_len(b) — requires cancelling the symbolic UF term. *)
  let blen = Ir.Uf.fresh "batch_len" ~arity:1 in
  let b = Ir.Var.fresh "b" in
  let i = Ir.Var.fresh "i" in
  let len = Ir.UfCall (blen, [ Ir.Var b ]) in
  let env =
    Simplify.bind_range Simplify.empty_env i ~lo:(Ir.Int 0)
      ~hi:(Ir.Binop (Ir.Sub, len, Ir.Int 1))
  in
  Alcotest.(check (option bool)) "i < len" (Some true)
    (Simplify.prove env (Ir.Cmp (Ir.Lt, Ir.Var i, len)));
  Alcotest.(check (option bool)) "i >= 0" (Some true)
    (Simplify.prove env (Ir.Cmp (Ir.Ge, Ir.Var i, Ir.Int 0)));
  Alcotest.(check (option bool)) "i + 1 < len undecided" None
    (Simplify.prove env (Ir.Cmp (Ir.Lt, Ir.Binop (Ir.Add, Ir.Var i, Ir.Int 1), len)));
  Alcotest.(check (option bool)) "i < len + 1" (Some true)
    (Simplify.prove env (Ir.Cmp (Ir.Lt, Ir.Var i, Ir.Binop (Ir.Add, len, Ir.Int 1))));
  Alcotest.(check (option bool)) "i >= len false-able" (Some false)
    (Simplify.prove env (Ir.Cmp (Ir.Ge, Ir.Var i, len)))

let test_prove_uf_range () =
  let role = Ir.Uf.fresh "role" ~arity:1 ~range:(0, 1) in
  let b = Ir.Var.fresh "b" in
  let call = Ir.UfCall (role, [ Ir.Var b ]) in
  Alcotest.(check (option bool)) "role <= 1" (Some true)
    (Simplify.prove Simplify.empty_env (Ir.Cmp (Ir.Le, call, Ir.Int 1)));
  Alcotest.(check (option bool)) "role < 0 false" (Some false)
    (Simplify.prove Simplify.empty_env (Ir.Cmp (Ir.Lt, call, Ir.Int 0)));
  Alcotest.(check (option bool)) "role = 1 undecided" None
    (Simplify.prove Simplify.empty_env (Ir.Cmp (Ir.Eq, call, Ir.Int 1)))

let test_stmt_prunes_provable_branch () =
  (* for i = 0:8: if i < 8 then A  -->  guard removed *)
  let t = Ir.tensor "t" [ Ir.Dim.fresh "d" ] [ Ir.Int 8 ] in
  let i = Ir.Var.fresh "i" in
  let body = Ir.If (Ir.Cmp (Ir.Lt, Ir.Var i, Ir.Int 8), Ir.Store (t, [ Ir.Var i ], Ir.Flt 1.0), None) in
  let loop = Ir.for_ i (Ir.Int 8) body in
  match Simplify.stmt loop with
  | Ir.For { body = Ir.Store _; _ } -> ()
  | s -> Alcotest.failf "guard not removed:\n%s" (Ir.stmt_to_string s)

(* ---------- scheduling transforms preserve semantics ---------- *)

(* A small two-loop program: out[i,j] = i * 10 + j. *)
let make_prog () =
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "out" [ d; d ] [ Ir.Int 6; Ir.Int 5 ] in
  let i = Ir.Var.fresh "i" and j = Ir.Var.fresh "j" in
  let body =
    Ir.for_ i (Ir.Int 6)
      (Ir.for_ j (Ir.Int 5)
         (Ir.Store
            ( t,
              [ Ir.Var i; Ir.Var j ],
              Ir.Binop (Ir.Add, Ir.Binop (Ir.Mul, Ir.Var i, Ir.Int 10), Ir.Var j) )))
  in
  (t, body, Ir.Var.name i, Ir.Var.name j)

let run_body t body =
  let ctx = Interp.create ~num_internal_batches:0 () in
  Interp.run_stmt ctx [] body;
  Interp.get_tensor ctx t

let check_transform name transform =
  let t, body, iname, jname = make_prog () in
  let want = run_body t body in
  let t2, body2, iname2, jname2 = make_prog () in
  ignore (iname, jname);
  let got = run_body t2 (transform ~i:iname2 ~j:jname2 body2) in
  if not (Tensor.approx_equal want got) then Alcotest.failf "%s changed semantics" name

let test_schedule_split () =
  check_transform "split" (fun ~i ~j:_ s -> Schedule.split ~name:i ~factor:4 s)

let test_schedule_split_peeled () =
  check_transform "split_peeled" (fun ~i ~j:_ s -> Schedule.split_peeled ~name:i ~factor:4 s);
  check_transform "split_peeled exact" (fun ~i:_ ~j s -> Schedule.split_peeled ~name:j ~factor:5 s)

let test_schedule_unroll () =
  check_transform "unroll" (fun ~i:_ ~j s -> Schedule.unroll ~name:j s)

let test_schedule_reorder () =
  check_transform "reorder" (fun ~i ~j s -> Schedule.reorder ~outer:i ~inner:j s)

let test_schedule_peeled_guard_free () =
  (* split_peeled must not contain any If in the main chunk loop. *)
  let _, body, iname, _ = make_prog () in
  let s = Schedule.split_peeled ~name:iname ~factor:4 body in
  let rec has_if = function
    | Ir.If _ -> true
    | Ir.For { body; _ } -> has_if body
    | Ir.Let (_, _, b) -> has_if b
    | Ir.Seq ss -> List.exists has_if ss
    | Ir.Store _ | Ir.Barrier | Ir.Nop -> false
  in
  Alcotest.(check bool) "no guards after peeling" false (has_if s)

let test_schedule_errors () =
  let _, body, _, _ = make_prog () in
  (try
     ignore (Schedule.split ~name:"nope" ~factor:2 body);
     Alcotest.fail "missing loop accepted"
   with Schedule.Schedule_error _ -> ());
  Alcotest.(check int) "loop_names" 2 (List.length (Schedule.loop_names body))

let string_contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

(* An 8x8 variant whose extents tile evenly. *)
let make_prog8 () =
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "out8" [ d; d ] [ Ir.Int 8; Ir.Int 8 ] in
  let i = Ir.Var.fresh "i" and j = Ir.Var.fresh "j" in
  let body =
    Ir.for_ i (Ir.Int 8)
      (Ir.for_ j (Ir.Int 8)
         (Ir.Store
            ( t,
              [ Ir.Var i; Ir.Var j ],
              Ir.Binop (Ir.Add, Ir.Binop (Ir.Mul, Ir.Var i, Ir.Int 16), Ir.Var j) )))
  in
  (t, body, Ir.Var.name i, Ir.Var.name j)

let check_transform8 name transform =
  let t, body, _, _ = make_prog8 () in
  let want = run_body t body in
  let t2, body2, i2, j2 = make_prog8 () in
  let got = run_body t2 (transform ~i:i2 ~j:j2 body2) in
  if not (Tensor.approx_equal want got) then Alcotest.failf "%s changed semantics" name

let test_schedule_tile () =
  check_transform8 "tile 4x4" (fun ~i ~j s ->
      Schedule.tile ~outer:i ~inner:j ~factor_outer:4 ~factor_inner:4 s);
  check_transform8 "tile 2x8" (fun ~i ~j s ->
      Schedule.tile ~outer:i ~inner:j ~factor_outer:2 ~factor_inner:8 s);
  let _, body, i, j = make_prog8 () in
  try
    ignore (Schedule.tile ~outer:i ~inner:j ~factor_outer:3 ~factor_inner:4 body);
    Alcotest.fail "non-dividing tile factor accepted"
  with Schedule.Schedule_error _ -> ()

let test_schedule_bind () =
  check_transform "bind vec" (fun ~i:_ ~j s -> Schedule.bind ~name:j Ir.Vectorized s);
  check_transform "bind par" (fun ~i ~j:_ s -> Schedule.bind ~name:i Ir.Parallel s);
  (* the kind actually lands on the loop *)
  let _, body, _, jname = make_prog () in
  let s = Schedule.bind ~name:jname Ir.Vectorized body in
  let rec kinds acc = function
    | Ir.For r ->
      kinds ((Ir.Var.name r.v, r.kind) :: acc) r.body
    | Ir.Seq ss -> List.fold_left kinds acc ss
    | Ir.Let (_, _, b) -> kinds acc b
    | Ir.If (_, a, b) -> (
      let acc = kinds acc a in
      match b with Some b -> kinds acc b | None -> acc)
    | Ir.Store _ | Ir.Barrier | Ir.Nop -> acc
  in
  Alcotest.(check bool) "loop vectorized" true
    (List.mem_assoc jname (kinds [] s) && List.assoc jname (kinds [] s) = Ir.Vectorized);
  (* binding onto a sequential kind is meaningless and rejected *)
  let _, body, iname, _ = make_prog () in
  try
    ignore (Schedule.bind ~name:iname Ir.Serial body);
    Alcotest.fail "bind to Serial accepted"
  with Schedule.Schedule_error _ -> ()

let test_schedule_stage () =
  (* out[i,j] = w[i,j] + j with w initialized by a preceding loop nest;
     staging w on-chip under the compute loop must not change out. *)
  let d = Ir.Dim.fresh "d" in
  let w = Ir.tensor ~space:Ir.Global "w" [ d; d ] [ Ir.Int 6; Ir.Int 5 ] in
  let out = Ir.tensor "out" [ d; d ] [ Ir.Int 6; Ir.Int 5 ] in
  let mk () =
    let a = Ir.Var.fresh "a" and b = Ir.Var.fresh "b" in
    let i = Ir.Var.fresh "i" and j = Ir.Var.fresh "j" in
    let init =
      Ir.for_ a (Ir.Int 6)
        (Ir.for_ b (Ir.Int 5)
           (Ir.Store
              ( w,
                [ Ir.Var a; Ir.Var b ],
                Ir.Binop (Ir.Add, Ir.Var a, Ir.Binop (Ir.Mul, Ir.Var b, Ir.Int 7)) )))
    in
    let compute =
      Ir.for_ i (Ir.Int 6)
        (Ir.for_ j (Ir.Int 5)
           (Ir.Store
              ( out,
                [ Ir.Var i; Ir.Var j ],
                Ir.Binop (Ir.Add, Ir.Load (w, [ Ir.Var i; Ir.Var j ]), Ir.Var j) )))
    in
    (Ir.Seq [ init; compute ], Ir.Var.name i)
  in
  let body, _ = mk () in
  let want = run_body out body in
  let body2, iname = mk () in
  let staged, buf = Schedule.stage ~loop:iname ~tensor:"w" body2 in
  let got = run_body out staged in
  Alcotest.(check bool) "stage preserves values" true (Tensor.approx_equal want got);
  Alcotest.(check bool) "staging buffer is on-chip" true
    (buf.Ir.space = Ir.Shared || buf.Ir.space = Ir.Register);
  (* staging a tensor written inside the loop is rejected *)
  let body3, iname3 = mk () in
  try
    ignore (Schedule.stage ~loop:iname3 ~tensor:"out" body3);
    Alcotest.fail "staged a written tensor"
  with Schedule.Schedule_error _ -> ()

let test_schedule_fuse () =
  let d = Ir.Dim.fresh "d" in
  let t1 = Ir.tensor "f1" [ d ] [ Ir.Int 6 ] in
  let t2 = Ir.tensor "f2" [ d ] [ Ir.Int 6 ] in
  let mk () =
    let a = Ir.Var.fresh "a" and b = Ir.Var.fresh "b" in
    ( Ir.Seq
        [
          Ir.for_ a (Ir.Int 6)
            (Ir.Store (t1, [ Ir.Var a ], Ir.Binop (Ir.Mul, Ir.Var a, Ir.Int 3)));
          Ir.for_ b (Ir.Int 6)
            (Ir.Store (t2, [ Ir.Var b ], Ir.Binop (Ir.Add, Ir.Var b, Ir.Int 1)));
        ],
      Ir.Var.name a,
      Ir.Var.name b )
  in
  let run body =
    let ctx = Interp.create ~num_internal_batches:0 () in
    Interp.run_stmt ctx [] body;
    (Interp.get_tensor ctx t1, Interp.get_tensor ctx t2)
  in
  let body, _, _ = mk () in
  let w1, w2 = run body in
  let body2, a2, b2 = mk () in
  let fused = Schedule.fuse_loops ~first:a2 ~second:b2 body2 in
  (match fused with
   | Ir.Seq [ Ir.For _ ] -> ()
   | s -> Alcotest.failf "loops not fused into one:\n%s" (Ir.stmt_to_string s));
  let g1, g2 = run fused in
  Alcotest.(check bool) "first body preserved" true (Tensor.approx_equal w1 g1);
  Alcotest.(check bool) "second body preserved" true (Tensor.approx_equal w2 g2);
  (* fusing loops whose bodies communicate would reorder the accesses *)
  let c = Ir.Var.fresh "c" and e = Ir.Var.fresh "e" in
  let dep =
    Ir.Seq
      [
        Ir.for_ c (Ir.Int 6) (Ir.Store (t1, [ Ir.Var c ], Ir.Flt 1.0));
        Ir.for_ e (Ir.Int 6)
          (Ir.Store (t2, [ Ir.Var e ], Ir.Load (t1, [ Ir.Binop (Ir.Sub, Ir.Int 5, Ir.Var e) ])));
      ]
  in
  try
    ignore (Schedule.fuse_loops ~first:(Ir.Var.name c) ~second:(Ir.Var.name e) dep);
    Alcotest.fail "dependent loops fused"
  with Schedule.Schedule_error _ -> ()

let test_schedule_peel_keeps_kind () =
  (* split_peeled on a Parallel loop: both the chunk loop and the peeled
     tail must stay Parallel, or the tail would silently serialize. *)
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "pk" [ d ] [ Ir.Int 6 ] in
  let i = Ir.Var.fresh "i" in
  let body = Ir.for_ ~kind:Ir.Parallel i (Ir.Int 6) (Ir.Store (t, [ Ir.Var i ], Ir.Var i)) in
  let s = Schedule.split_peeled ~name:(Ir.Var.name i) ~factor:4 body in
  let rec fors acc = function
    | Ir.For r -> fors ((Simplify.expr r.extent, r.kind) :: acc) r.body
    | Ir.Seq ss -> List.fold_left fors acc ss
    | Ir.Let (_, _, b) -> fors acc b
    | Ir.If (_, a, b) -> (
      let acc = fors acc a in
      match b with Some b -> fors acc b | None -> acc)
    | Ir.Store _ | Ir.Barrier | Ir.Nop -> acc
  in
  let tail_kinds =
    List.filter_map (fun (e, k) -> if e = Ir.Int 2 then Some k else None) (fors [] s)
  in
  Alcotest.(check bool) "peeled tail present" true (tail_kinds <> []);
  List.iter
    (fun k -> Alcotest.(check bool) "tail keeps original kind" true (k = Ir.Parallel))
    tail_kinds;
  (* numeric equivalence of the parallel peel, for good measure *)
  let t2, body2, iname2, _ = make_prog () in
  let want = run_body t2 body2 in
  let t3, body3, iname3, _ = make_prog () in
  ignore iname2;
  let got = run_body t3 (Schedule.split_peeled ~name:iname3 ~factor:4 body3) in
  Alcotest.(check bool) "peel preserves values" true (Tensor.approx_equal want got)

let test_schedule_loop_names_order () =
  (* loop_names: duplicate-free, in program order; addressing a
     duplicated name reports every site. *)
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "ln" [ d ] [ Ir.Int 4 ] in
  let z1 = Ir.Var.fresh "z" and a = Ir.Var.fresh "a" and z2 = Ir.Var.fresh "z" in
  let loop v = Ir.for_ v (Ir.Int 4) (Ir.Store (t, [ Ir.Var v ], Ir.Var v)) in
  let body = Ir.Seq [ loop z1; loop a; loop z2 ] in
  Alcotest.(check (list string)) "deduped, program order" [ "z"; "a" ]
    (Schedule.loop_names body);
  try
    ignore (Schedule.split ~name:"z" ~factor:2 body);
    Alcotest.fail "ambiguous loop accepted"
  with Schedule.Schedule_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error lists duplicate sites: %s" msg)
      true
      (string_contains msg "2 sites")

let test_plan_roundtrip () =
  let plan =
    [
      Schedule.Split { loop = "a"; factor = 4 };
      Schedule.Split_peeled { loop = "b"; factor = 8 };
      Schedule.Unroll { loop = "c" };
      Schedule.Reorder { outer = "d"; inner = "e" };
      Schedule.Tile { outer = "f"; inner = "g"; factor_outer = 8; factor_inner = 16 };
      Schedule.Bind { loop = "h_j"; kind = Ir.Vectorized };
      Schedule.Bind { loop = "n"; kind = Ir.Parallel };
      Schedule.Stage { loop = "b2"; tensor = "W_f" };
      Schedule.Fuse { first = "p"; second = "q" };
    ]
  in
  let s = Schedule.plan_to_string plan in
  Alcotest.(check bool) "roundtrip" true (Schedule.plan_of_string s = plan);
  Alcotest.(check string) "empty plan prints default" "default" (Schedule.plan_to_string []);
  Alcotest.(check bool) "default parses to empty" true (Schedule.plan_of_string "default" = []);
  try
    ignore (Schedule.plan_of_string "warp(x,3)");
    Alcotest.fail "malformed plan accepted"
  with Schedule.Schedule_error _ -> ()

(* ---------- barrier insertion ---------- *)

(* Build the shape of a lowered batch loop: a serial loop whose body
   writes st[node] and reads st[child(node)]. *)
let batch_loop_shape () =
  let d = Ir.Dim.fresh "d" in
  let st = Ir.tensor "st" [ d ] [ Ir.Int 100 ] in
  let child = Ir.Uf.fresh "child" ~arity:1 in
  let b = Ir.Var.fresh "b" and n = Ir.Var.fresh "n" in
  let inner =
    Ir.for_ ~kind:Ir.Parallel n (Ir.Int 4)
      (Ir.Store (st, [ Ir.Var n ], Ir.Load (st, [ Ir.UfCall (child, [ Ir.Var n ]) ])))
  in
  Ir.for_ b (Ir.Int 3) inner

let test_barrier_carrier_vs_conservative () =
  let body = batch_loop_shape () in
  let carrier = Barrier.insert Barrier.Carrier body in
  let conservative = Barrier.insert Barrier.Conservative body in
  Alcotest.(check int) "one barrier stmt either way" 1 (Barrier.count carrier);
  Alcotest.(check int) "conservative has one too" 1 (Barrier.count conservative);
  (* Placement differs: carrier puts it directly under the outer loop,
     conservative under the inner one. *)
  (match carrier with
   | Ir.For { body = Ir.Seq (Ir.Barrier :: _); _ } -> ()
   | s -> Alcotest.failf "carrier placement wrong:\n%s" (Ir.stmt_to_string s));
  (match conservative with
   | Ir.For { body = Ir.For { body = Ir.Seq (Ir.Barrier :: _); _ }; _ } -> ()
   | s -> Alcotest.failf "conservative placement wrong:\n%s" (Ir.stmt_to_string s))

let test_barrier_skips_independent_loops () =
  (* No cross-node reads: no barrier should be inserted. *)
  let d = Ir.Dim.fresh "d" in
  let st = Ir.tensor "st" [ d ] [ Ir.Int 10 ] in
  let i = Ir.Var.fresh "i" in
  let body = Ir.for_ i (Ir.Int 10) (Ir.Store (st, [ Ir.Var i ], Ir.Flt 1.0)) in
  Alcotest.(check int) "no barrier" 0 (Barrier.count (Barrier.insert Barrier.Carrier body))

(* ---------- bounds checker ---------- *)

let test_bounds_checker () =
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "t" [ d ] [ Ir.Int 10 ] in
  let i = Ir.Var.fresh "i" in
  let ok =
    { Ir.pname = "ok"; params = []; inputs = []; temporaries = [ t ]; outputs = [];
      kernels =
        [ { Ir.kname = "k"; launch = Ir.Once;
            body = Ir.for_ i (Ir.Int 10) (Ir.Store (t, [ Ir.Var i ], Ir.Flt 0.0)) } ] }
  in
  Alcotest.(check int) "in bounds" 0
    (List.length (Bounds.check ~uf:(fun _ _ -> 0) ~num_internal_batches:0 ok));
  let j = Ir.Var.fresh "j" in
  let bad =
    { ok with
      Ir.kernels =
        [ { Ir.kname = "k"; launch = Ir.Once;
            body =
              Ir.for_ j (Ir.Int 11)
                (Ir.Store (t, [ Ir.Var j ], Ir.Flt 0.0)) } ] }
  in
  Alcotest.(check bool) "overflow detected" true
    (List.length (Bounds.check ~uf:(fun _ _ -> 0) ~num_internal_batches:0 bad) > 0)

let test_named_dims_arity () =
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "t" [ d; d ] [ Ir.Int 2; Ir.Int 2 ] in
  let bad =
    { Ir.pname = "p"; params = []; inputs = []; temporaries = [ t ]; outputs = [];
      kernels =
        [ { Ir.kname = "k"; launch = Ir.Once; body = Ir.Store (t, [ Ir.Int 0 ], Ir.Flt 1.0) } ] }
  in
  Alcotest.(check int) "arity mismatch flagged" 1 (List.length (Bounds.check_named_dims bad))

(* ---------- C emission ---------- *)

let test_emit_c_structure () =
  let d = Ir.Dim.fresh "d" in
  let n_uf = Ir.Uf.fresh "num_nodes" ~arity:0 in
  let child = Ir.Uf.fresh "child" ~arity:2 in
  let t = Ir.tensor ~space:Ir.Global "st" [ d; d ] [ Ir.UfCall (n_uf, []); Ir.Int 4 ] in
  let i = Ir.Var.fresh "i" and j = Ir.Var.fresh "j" in
  let body =
    Ir.for_ ~kind:Ir.Parallel i (Ir.UfCall (n_uf, []))
      (Ir.Seq
         [
           Ir.Barrier;
           Ir.for_ ~kind:Ir.Vectorized j (Ir.Int 4)
             (Ir.Store
                ( t,
                  [ Ir.Var i; Ir.Var j ],
                  Ir.Math
                    ( Cortex_tensor.Nonlinear.Sigmoid,
                      Ir.Load (t, [ Ir.UfCall (child, [ Ir.Int 0; Ir.Var i ]); Ir.Var j ]) ) ));
         ])
  in
  let prog =
    {
      Ir.pname = "emit_test";
      params = [];
      inputs = [];
      temporaries = [ t ];
      outputs = [];
      kernels = [ { Ir.kname = "main"; launch = Ir.Once; body } ];
    }
  in
  let out = Cortex_ilir.Emit_c.program prog in
  let contains needle =
    Alcotest.(check bool) ("emits " ^ needle) true
      (let nl = String.length needle and ol = String.length out in
       let rec scan i = i + nl <= ol && (String.sub out i nl = needle || scan (i + 1)) in
       scan 0)
  in
  List.iter contains
    [
      "grid.sync();";
      "ds_child(0, i)";
      "st[(i) * 4 + j]";
      "sigmoidf";
      "extern const int num_nodes;";
      "__global__ void main()";
    ];
  (* deterministic *)
  Alcotest.(check string) "deterministic" out (Cortex_ilir.Emit_c.program prog)

let () =
  Alcotest.run "ilir"
    [
      ( "simplify",
        [
          QCheck_alcotest.to_alcotest test_simplify_preserves_value;
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "branch-pruning" `Quick test_stmt_prunes_provable_branch;
        ] );
      ( "prover",
        [
          Alcotest.test_case "loop-guard" `Quick test_prove_loop_guard;
          Alcotest.test_case "uf-range" `Quick test_prove_uf_range;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "split" `Quick test_schedule_split;
          Alcotest.test_case "split-peeled" `Quick test_schedule_split_peeled;
          Alcotest.test_case "peeled-guard-free" `Quick test_schedule_peeled_guard_free;
          Alcotest.test_case "unroll" `Quick test_schedule_unroll;
          Alcotest.test_case "reorder" `Quick test_schedule_reorder;
          Alcotest.test_case "errors" `Quick test_schedule_errors;
          Alcotest.test_case "tile" `Quick test_schedule_tile;
          Alcotest.test_case "bind" `Quick test_schedule_bind;
          Alcotest.test_case "stage" `Quick test_schedule_stage;
          Alcotest.test_case "fuse" `Quick test_schedule_fuse;
          Alcotest.test_case "peel-keeps-kind" `Quick test_schedule_peel_keeps_kind;
          Alcotest.test_case "loop-names" `Quick test_schedule_loop_names_order;
          Alcotest.test_case "plan-roundtrip" `Quick test_plan_roundtrip;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "carrier-vs-conservative" `Quick test_barrier_carrier_vs_conservative;
          Alcotest.test_case "independent-loops" `Quick test_barrier_skips_independent_loops;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "checker" `Quick test_bounds_checker;
          Alcotest.test_case "named-dims" `Quick test_named_dims_arity;
        ] );
      ("emit-c", [ Alcotest.test_case "structure" `Quick test_emit_c_structure ]);
    ]
