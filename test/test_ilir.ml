(* Tests for the ILIR: the simplifier/prover (the Z3 substitute, §A.1),
   scheduling transforms, barrier insertion (§A.4) and the bounds
   checker (§A.2). *)

open Cortex_ilir
module Rng = Cortex_util.Rng
module Tensor = Cortex_tensor.Tensor

(* ---------- simplifier: random-expression equivalence ---------- *)

(* Generate random integer expressions over two variables and check
   that simplification preserves their value. *)
let int_expr_gen =
  let open QCheck.Gen in
  let x = Ir.Var.fresh "x" and y = Ir.Var.fresh "y" in
  let rec gen depth =
    if depth = 0 then
      oneof [ map (fun n -> Ir.Int n) (int_range (-20) 20); return (Ir.Var x); return (Ir.Var y) ]
    else
      let sub = gen (depth - 1) in
      oneof
        [
          map (fun n -> Ir.Int n) (int_range (-20) 20);
          return (Ir.Var x);
          return (Ir.Var y);
          map2 (fun a b -> Ir.Binop (Ir.Add, a, b)) sub sub;
          map2 (fun a b -> Ir.Binop (Ir.Sub, a, b)) sub sub;
          map2 (fun a b -> Ir.Binop (Ir.Mul, a, Ir.Int b)) sub (int_range (-5) 5);
          map2 (fun a b -> Ir.Binop (Ir.Min, a, b)) sub sub;
          map2 (fun a b -> Ir.Binop (Ir.Max, a, b)) sub sub;
          map2 (fun a b -> Ir.Cmp (Ir.Lt, a, b)) sub sub;
          map3 (fun c a b -> Ir.Select (c, a, b)) sub sub sub;
        ]
  in
  QCheck.Gen.(pair (gen 4) (pair (int_range (-10) 10) (int_range (-10) 10)))
  |> QCheck.Gen.map (fun (e, (vx, vy)) -> (e, x, y, vx, vy))

let eval_int_expr e bindings =
  let ctx = Interp.create ~num_internal_batches:0 () in
  match Interp.eval_expr ctx bindings e with
  | Interp.Vi n -> n
  | Interp.Vf _ -> Alcotest.fail "expected int"

let test_simplify_preserves_value =
  QCheck.Test.make ~name:"Simplify.expr preserves value" ~count:1000
    (QCheck.make ~print:(fun (e, _, _, vx, vy) ->
         Printf.sprintf "%s with x=%d y=%d" (Ir.expr_to_string e) vx vy)
       int_expr_gen)
    (fun (e, x, y, vx, vy) ->
      let bindings = [ (x.Ir.Var.vid, Interp.Vi vx); (y.Ir.Var.vid, Interp.Vi vy) ] in
      eval_int_expr e bindings = eval_int_expr (Simplify.expr e) bindings)

let test_simplify_identities () =
  let x = Ir.Var (Ir.Var.fresh "x") in
  let checks =
    [
      (Ir.Binop (Ir.Add, x, Ir.Int 0), x);
      (Ir.Binop (Ir.Mul, x, Ir.Int 0), Ir.Int 0);
      (Ir.Binop (Ir.Mul, Ir.Int 1, x), x);
      (Ir.Binop (Ir.Add, Ir.Binop (Ir.Add, x, Ir.Int 2), Ir.Int 3), Ir.Binop (Ir.Add, x, Ir.Int 5));
      (Ir.Binop (Ir.Sub, x, x), Ir.Int 0);
      (Ir.Select (Ir.Int 1, x, Ir.Int 9), x);
      (Ir.Binop (Ir.Mul, Ir.Flt 0.0, Ir.Math (Cortex_tensor.Nonlinear.Tanh, x)), Ir.Flt 0.0);
      (Ir.Math (Cortex_tensor.Nonlinear.Relu, Ir.Flt (-3.0)), Ir.Flt 0.0);
    ]
  in
  List.iter
    (fun (e, want) ->
      Alcotest.(check string) (Ir.expr_to_string e) (Ir.expr_to_string want)
        (Ir.expr_to_string (Simplify.expr e)))
    checks

(* ---------- the prover: symbolic bound cancellation ---------- *)

let test_prove_loop_guard () =
  (* The loop-peeling fact: given 0 <= i <= batch_len(b) - 1, prove
     i < batch_len(b) — requires cancelling the symbolic UF term. *)
  let blen = Ir.Uf.fresh "batch_len" ~arity:1 in
  let b = Ir.Var.fresh "b" in
  let i = Ir.Var.fresh "i" in
  let len = Ir.UfCall (blen, [ Ir.Var b ]) in
  let env =
    Simplify.bind_range Simplify.empty_env i ~lo:(Ir.Int 0)
      ~hi:(Ir.Binop (Ir.Sub, len, Ir.Int 1))
  in
  Alcotest.(check (option bool)) "i < len" (Some true)
    (Simplify.prove env (Ir.Cmp (Ir.Lt, Ir.Var i, len)));
  Alcotest.(check (option bool)) "i >= 0" (Some true)
    (Simplify.prove env (Ir.Cmp (Ir.Ge, Ir.Var i, Ir.Int 0)));
  Alcotest.(check (option bool)) "i + 1 < len undecided" None
    (Simplify.prove env (Ir.Cmp (Ir.Lt, Ir.Binop (Ir.Add, Ir.Var i, Ir.Int 1), len)));
  Alcotest.(check (option bool)) "i < len + 1" (Some true)
    (Simplify.prove env (Ir.Cmp (Ir.Lt, Ir.Var i, Ir.Binop (Ir.Add, len, Ir.Int 1))));
  Alcotest.(check (option bool)) "i >= len false-able" (Some false)
    (Simplify.prove env (Ir.Cmp (Ir.Ge, Ir.Var i, len)))

let test_prove_uf_range () =
  let role = Ir.Uf.fresh "role" ~arity:1 ~range:(0, 1) in
  let b = Ir.Var.fresh "b" in
  let call = Ir.UfCall (role, [ Ir.Var b ]) in
  Alcotest.(check (option bool)) "role <= 1" (Some true)
    (Simplify.prove Simplify.empty_env (Ir.Cmp (Ir.Le, call, Ir.Int 1)));
  Alcotest.(check (option bool)) "role < 0 false" (Some false)
    (Simplify.prove Simplify.empty_env (Ir.Cmp (Ir.Lt, call, Ir.Int 0)));
  Alcotest.(check (option bool)) "role = 1 undecided" None
    (Simplify.prove Simplify.empty_env (Ir.Cmp (Ir.Eq, call, Ir.Int 1)))

let test_stmt_prunes_provable_branch () =
  (* for i = 0:8: if i < 8 then A  -->  guard removed *)
  let t = Ir.tensor "t" [ Ir.Dim.fresh "d" ] [ Ir.Int 8 ] in
  let i = Ir.Var.fresh "i" in
  let body = Ir.If (Ir.Cmp (Ir.Lt, Ir.Var i, Ir.Int 8), Ir.Store (t, [ Ir.Var i ], Ir.Flt 1.0), None) in
  let loop = Ir.for_ i (Ir.Int 8) body in
  match Simplify.stmt loop with
  | Ir.For { body = Ir.Store _; _ } -> ()
  | s -> Alcotest.failf "guard not removed:\n%s" (Ir.stmt_to_string s)

(* ---------- scheduling transforms preserve semantics ---------- *)

(* A small two-loop program: out[i,j] = i * 10 + j. *)
let make_prog () =
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "out" [ d; d ] [ Ir.Int 6; Ir.Int 5 ] in
  let i = Ir.Var.fresh "i" and j = Ir.Var.fresh "j" in
  let body =
    Ir.for_ i (Ir.Int 6)
      (Ir.for_ j (Ir.Int 5)
         (Ir.Store
            ( t,
              [ Ir.Var i; Ir.Var j ],
              Ir.Binop (Ir.Add, Ir.Binop (Ir.Mul, Ir.Var i, Ir.Int 10), Ir.Var j) )))
  in
  (t, body, Ir.Var.name i, Ir.Var.name j)

let run_body t body =
  let ctx = Interp.create ~num_internal_batches:0 () in
  Interp.run_stmt ctx [] body;
  Interp.get_tensor ctx t

let check_transform name transform =
  let t, body, iname, jname = make_prog () in
  let want = run_body t body in
  let t2, body2, iname2, jname2 = make_prog () in
  ignore (iname, jname);
  let got = run_body t2 (transform ~i:iname2 ~j:jname2 body2) in
  if not (Tensor.approx_equal want got) then Alcotest.failf "%s changed semantics" name

let test_schedule_split () =
  check_transform "split" (fun ~i ~j:_ s -> Schedule.split ~name:i ~factor:4 s)

let test_schedule_split_peeled () =
  check_transform "split_peeled" (fun ~i ~j:_ s -> Schedule.split_peeled ~name:i ~factor:4 s);
  check_transform "split_peeled exact" (fun ~i:_ ~j s -> Schedule.split_peeled ~name:j ~factor:5 s)

let test_schedule_unroll () =
  check_transform "unroll" (fun ~i:_ ~j s -> Schedule.unroll ~name:j s)

let test_schedule_reorder () =
  check_transform "reorder" (fun ~i ~j s -> Schedule.reorder ~outer:i ~inner:j s)

let test_schedule_peeled_guard_free () =
  (* split_peeled must not contain any If in the main chunk loop. *)
  let _, body, iname, _ = make_prog () in
  let s = Schedule.split_peeled ~name:iname ~factor:4 body in
  let rec has_if = function
    | Ir.If _ -> true
    | Ir.For { body; _ } -> has_if body
    | Ir.Let (_, _, b) -> has_if b
    | Ir.Seq ss -> List.exists has_if ss
    | Ir.Store _ | Ir.Barrier | Ir.Nop -> false
  in
  Alcotest.(check bool) "no guards after peeling" false (has_if s)

let test_schedule_errors () =
  let _, body, _, _ = make_prog () in
  (try
     ignore (Schedule.split ~name:"nope" ~factor:2 body);
     Alcotest.fail "missing loop accepted"
   with Schedule.Schedule_error _ -> ());
  Alcotest.(check int) "loop_names" 2 (List.length (Schedule.loop_names body))

(* ---------- barrier insertion ---------- *)

(* Build the shape of a lowered batch loop: a serial loop whose body
   writes st[node] and reads st[child(node)]. *)
let batch_loop_shape () =
  let d = Ir.Dim.fresh "d" in
  let st = Ir.tensor "st" [ d ] [ Ir.Int 100 ] in
  let child = Ir.Uf.fresh "child" ~arity:1 in
  let b = Ir.Var.fresh "b" and n = Ir.Var.fresh "n" in
  let inner =
    Ir.for_ ~kind:Ir.Parallel n (Ir.Int 4)
      (Ir.Store (st, [ Ir.Var n ], Ir.Load (st, [ Ir.UfCall (child, [ Ir.Var n ]) ])))
  in
  Ir.for_ b (Ir.Int 3) inner

let test_barrier_carrier_vs_conservative () =
  let body = batch_loop_shape () in
  let carrier = Barrier.insert Barrier.Carrier body in
  let conservative = Barrier.insert Barrier.Conservative body in
  Alcotest.(check int) "one barrier stmt either way" 1 (Barrier.count carrier);
  Alcotest.(check int) "conservative has one too" 1 (Barrier.count conservative);
  (* Placement differs: carrier puts it directly under the outer loop,
     conservative under the inner one. *)
  (match carrier with
   | Ir.For { body = Ir.Seq (Ir.Barrier :: _); _ } -> ()
   | s -> Alcotest.failf "carrier placement wrong:\n%s" (Ir.stmt_to_string s));
  (match conservative with
   | Ir.For { body = Ir.For { body = Ir.Seq (Ir.Barrier :: _); _ }; _ } -> ()
   | s -> Alcotest.failf "conservative placement wrong:\n%s" (Ir.stmt_to_string s))

let test_barrier_skips_independent_loops () =
  (* No cross-node reads: no barrier should be inserted. *)
  let d = Ir.Dim.fresh "d" in
  let st = Ir.tensor "st" [ d ] [ Ir.Int 10 ] in
  let i = Ir.Var.fresh "i" in
  let body = Ir.for_ i (Ir.Int 10) (Ir.Store (st, [ Ir.Var i ], Ir.Flt 1.0)) in
  Alcotest.(check int) "no barrier" 0 (Barrier.count (Barrier.insert Barrier.Carrier body))

(* ---------- bounds checker ---------- *)

let test_bounds_checker () =
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "t" [ d ] [ Ir.Int 10 ] in
  let i = Ir.Var.fresh "i" in
  let ok =
    { Ir.pname = "ok"; params = []; inputs = []; temporaries = [ t ]; outputs = [];
      kernels =
        [ { Ir.kname = "k"; launch = Ir.Once;
            body = Ir.for_ i (Ir.Int 10) (Ir.Store (t, [ Ir.Var i ], Ir.Flt 0.0)) } ] }
  in
  Alcotest.(check int) "in bounds" 0
    (List.length (Bounds.check ~uf:(fun _ _ -> 0) ~num_internal_batches:0 ok));
  let j = Ir.Var.fresh "j" in
  let bad =
    { ok with
      Ir.kernels =
        [ { Ir.kname = "k"; launch = Ir.Once;
            body =
              Ir.for_ j (Ir.Int 11)
                (Ir.Store (t, [ Ir.Var j ], Ir.Flt 0.0)) } ] }
  in
  Alcotest.(check bool) "overflow detected" true
    (List.length (Bounds.check ~uf:(fun _ _ -> 0) ~num_internal_batches:0 bad) > 0)

let test_named_dims_arity () =
  let d = Ir.Dim.fresh "d" in
  let t = Ir.tensor "t" [ d; d ] [ Ir.Int 2; Ir.Int 2 ] in
  let bad =
    { Ir.pname = "p"; params = []; inputs = []; temporaries = [ t ]; outputs = [];
      kernels =
        [ { Ir.kname = "k"; launch = Ir.Once; body = Ir.Store (t, [ Ir.Int 0 ], Ir.Flt 1.0) } ] }
  in
  Alcotest.(check int) "arity mismatch flagged" 1 (List.length (Bounds.check_named_dims bad))

(* ---------- C emission ---------- *)

let test_emit_c_structure () =
  let d = Ir.Dim.fresh "d" in
  let n_uf = Ir.Uf.fresh "num_nodes" ~arity:0 in
  let child = Ir.Uf.fresh "child" ~arity:2 in
  let t = Ir.tensor ~space:Ir.Global "st" [ d; d ] [ Ir.UfCall (n_uf, []); Ir.Int 4 ] in
  let i = Ir.Var.fresh "i" and j = Ir.Var.fresh "j" in
  let body =
    Ir.for_ ~kind:Ir.Parallel i (Ir.UfCall (n_uf, []))
      (Ir.Seq
         [
           Ir.Barrier;
           Ir.for_ ~kind:Ir.Vectorized j (Ir.Int 4)
             (Ir.Store
                ( t,
                  [ Ir.Var i; Ir.Var j ],
                  Ir.Math
                    ( Cortex_tensor.Nonlinear.Sigmoid,
                      Ir.Load (t, [ Ir.UfCall (child, [ Ir.Int 0; Ir.Var i ]); Ir.Var j ]) ) ));
         ])
  in
  let prog =
    {
      Ir.pname = "emit_test";
      params = [];
      inputs = [];
      temporaries = [ t ];
      outputs = [];
      kernels = [ { Ir.kname = "main"; launch = Ir.Once; body } ];
    }
  in
  let out = Cortex_ilir.Emit_c.program prog in
  let contains needle =
    Alcotest.(check bool) ("emits " ^ needle) true
      (let nl = String.length needle and ol = String.length out in
       let rec scan i = i + nl <= ol && (String.sub out i nl = needle || scan (i + 1)) in
       scan 0)
  in
  List.iter contains
    [
      "grid.sync();";
      "ds_child(0, i)";
      "st[(i) * 4 + j]";
      "sigmoidf";
      "extern const int num_nodes;";
      "__global__ void main()";
    ];
  (* deterministic *)
  Alcotest.(check string) "deterministic" out (Cortex_ilir.Emit_c.program prog)

let () =
  Alcotest.run "ilir"
    [
      ( "simplify",
        [
          QCheck_alcotest.to_alcotest test_simplify_preserves_value;
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "branch-pruning" `Quick test_stmt_prunes_provable_branch;
        ] );
      ( "prover",
        [
          Alcotest.test_case "loop-guard" `Quick test_prove_loop_guard;
          Alcotest.test_case "uf-range" `Quick test_prove_uf_range;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "split" `Quick test_schedule_split;
          Alcotest.test_case "split-peeled" `Quick test_schedule_split_peeled;
          Alcotest.test_case "peeled-guard-free" `Quick test_schedule_peeled_guard_free;
          Alcotest.test_case "unroll" `Quick test_schedule_unroll;
          Alcotest.test_case "reorder" `Quick test_schedule_reorder;
          Alcotest.test_case "errors" `Quick test_schedule_errors;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "carrier-vs-conservative" `Quick test_barrier_carrier_vs_conservative;
          Alcotest.test_case "independent-loops" `Quick test_barrier_skips_independent_loops;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "checker" `Quick test_bounds_checker;
          Alcotest.test_case "named-dims" `Quick test_named_dims_arity;
        ] );
      ("emit-c", [ Alcotest.test_case "structure" `Quick test_emit_c_structure ]);
    ]
