(* Tests for the data structure linearizer (§4.2, Appendix B) and the
   unrolled grouping of §3.1/§7.4.  [Linearizer.check] verifies every
   documented invariant (numbering permutation, children numbered higher
   than parents, contiguous batches, dependence-respecting batch order,
   single-comparison leaf check, valid postorder); the property tests
   here drive it over random structures and add targeted cases. *)

module Rng = Cortex_util.Rng
module Structure = Cortex_ds.Structure
module Gen = Cortex_ds.Gen
module Linearizer = Cortex_linearizer.Linearizer
module Unrolling = Cortex_linearizer.Unrolling

let prop_check name gen =
  QCheck.Test.make ~name ~count:300 QCheck.small_int (fun seed ->
      let s = gen (Rng.create seed) in
      let lin = Linearizer.run s in
      Linearizer.check lin;
      true)

let random_tree rng = Gen.random_tree rng ~max_nodes:40 ~max_children:3
let random_dag rng = Gen.random_dag rng ~max_nodes:40 ~max_children:3
let random_seq rng = Gen.sequence rng ~len:(1 + Rng.int rng 40) ()
let random_forest rng =
  Structure.merge (List.init (1 + Rng.int rng 5) (fun _ -> random_tree rng))

let test_batches_are_levels () =
  let rng = Rng.create 9 in
  let s = Gen.perfect_tree rng ~height:5 () in
  let lin = Linearizer.run s in
  Alcotest.(check int) "one batch per level" 5 (Array.length lin.Linearizer.batches);
  let lens = Array.map snd lin.Linearizer.batches in
  Alcotest.(check (array int)) "leaf batch first" [| 16; 8; 4; 2; 1 |] lens;
  Alcotest.(check int) "leaf partition size" 16 (snd (Linearizer.leaf_batch lin));
  Alcotest.(check int) "internal batches" 4 (Array.length (Linearizer.internal_batches lin))

let test_leaf_check_is_single_comparison () =
  let rng = Rng.create 10 in
  let s = random_forest rng in
  let lin = Linearizer.run s in
  (* Appendix B: leaves are exactly the ids >= leaf_begin. *)
  for id = 0 to lin.Linearizer.num_nodes - 1 do
    Alcotest.(check bool) "leaf check" (lin.Linearizer.num_children.(id) = 0)
      (Linearizer.is_leaf lin id)
  done

let test_grid_dag_batches () =
  let lin = Linearizer.run (Gen.grid_dag ~rows:4 ~cols:6) in
  Linearizer.check lin;
  Alcotest.(check int) "anti-diagonals" 9 (Array.length lin.Linearizer.batches);
  Alcotest.(check int) "single leaf" 1 lin.Linearizer.num_leaves

let test_memory_accounting () =
  let rng = Rng.create 11 in
  let lin = Linearizer.run (random_tree rng) in
  Alcotest.(check bool) "positive footprint" true (Linearizer.memory_bytes lin > 0);
  (* The executor resolves exactly four tables on device: child tables
     (max_children x n), fanout counts (n), payloads (n) and the batch
     table (2 ints per batch) — 8 bytes per int.  Pin the formula so the
     accounting can't silently drift back to billing host-side arrays. *)
  let n = lin.Linearizer.num_nodes in
  let mc = lin.Linearizer.max_children in
  let b = Array.length lin.Linearizer.batches in
  Alcotest.(check int) "executor tables only"
    (8 * ((mc * n) + n + n + (2 * b)))
    (Linearizer.memory_bytes lin)

(* A corrupted linearization must be rejected by the checker. *)
let test_check_catches_corruption () =
  let rng = Rng.create 12 in
  let lin = Linearizer.run (Gen.perfect_tree rng ~height:4 ()) in
  let swap a i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  (* Swapping two entries of the postorder breaks the children-first
     property somewhere in a perfect tree. *)
  swap lin.Linearizer.postorder 0 (lin.Linearizer.num_nodes - 1);
  (try
     Linearizer.check lin;
     Alcotest.fail "corrupted postorder accepted"
   with Failure _ -> ());
  swap lin.Linearizer.postorder 0 (lin.Linearizer.num_nodes - 1);
  Linearizer.check lin

(* ---------- shape keys and payload re-binding ---------- *)

(* Same topology, different payloads: perfect trees are deterministic
   shapes, the rng only draws leaf payloads. *)
let perfect3 seed = Gen.perfect_tree (Rng.create seed) ~vocab:30 ~height:3 ()

let test_shape_key_is_shape_equality () =
  let a = [ perfect3 1; perfect3 2 ] and b = [ perfect3 3; perfect3 4 ] in
  Alcotest.(check string) "payloads don't enter the key"
    (Linearizer.shape_key a) (Linearizer.shape_key b);
  let c = [ perfect3 1; Gen.perfect_tree (Rng.create 2) ~vocab:30 ~height:4 () ] in
  Alcotest.(check bool) "different topology, different key" false
    (Linearizer.shape_key a = Linearizer.shape_key c);
  (* Order matters: a forest's numbering depends on submission order. *)
  Alcotest.(check bool) "request order enters the key" false
    (Linearizer.shape_key c = Linearizer.shape_key (List.rev c));
  (* The fanout bound is the child-table width, so it must enter the
     key: equal shapes under different bounds are different layouts. *)
  Alcotest.(check bool) "max_children enters the key" false
    (Linearizer.shape_key ~max_children:2 a = Linearizer.shape_key ~max_children:3 a);
  Alcotest.(check string) "default bound is the declared maximum"
    (Linearizer.shape_key ~max_children:2 a)
    (Linearizer.shape_key a)

let test_rebind_matches_cold_run () =
  (* Rebinding a forest to its own structures must be the identity... *)
  let cold_input = List.map (fun s -> Gen.sst_tree (Rng.create s) ~vocab:30 ()) [ 1; 2; 3 ] in
  let cached = Linearizer.run_forest cold_input in
  let rebound = Linearizer.rebind_forest cached cold_input in
  Linearizer.check_forest rebound;
  Alcotest.(check (array int)) "same numbering"
    cached.Linearizer.lin.Linearizer.new_of_old
    rebound.Linearizer.lin.Linearizer.new_of_old;
  Alcotest.(check (array int)) "same payloads"
    cached.Linearizer.lin.Linearizer.payload
    rebound.Linearizer.lin.Linearizer.payload;
  (* Different payloads, same shape: the rebound forest must equal a
     cold linearization of the new requests, array for array. *)
  let cached = Linearizer.run_forest [ perfect3 1; perfect3 2 ] in
  let fresh = [ perfect3 5; perfect3 6 ] in
  let rebound = Linearizer.rebind_forest cached fresh in
  let cold = Linearizer.run_forest fresh in
  Linearizer.check_forest rebound;
  Alcotest.(check (array int)) "numbering matches cold run"
    cold.Linearizer.lin.Linearizer.new_of_old
    rebound.Linearizer.lin.Linearizer.new_of_old;
  Alcotest.(check (array int)) "payloads match cold run"
    cold.Linearizer.lin.Linearizer.payload
    rebound.Linearizer.lin.Linearizer.payload;
  Alcotest.(check bool) "cold payload table untouched" false
    (cached.Linearizer.lin.Linearizer.payload = cold.Linearizer.lin.Linearizer.payload);
  Array.iteri
    (fun k (span : Linearizer.span) ->
      let cold_span = cold.Linearizer.spans.(k) in
      Alcotest.(check (array int)) "span ids match" cold_span.Linearizer.span_ids
        span.Linearizer.span_ids;
      Alcotest.(check bool) "span points at the new request" true
        (span.Linearizer.span_structure == List.nth fresh k))
    rebound.Linearizer.spans

let test_rebind_rejects_shape_mismatch () =
  let cached = Linearizer.run_forest [ perfect3 1; perfect3 2 ] in
  Alcotest.check_raises "request count mismatch"
    (Invalid_argument "Linearizer.rebind_forest: request count mismatch")
    (fun () -> ignore (Linearizer.rebind_forest cached [ perfect3 1 ]));
  let taller = Gen.perfect_tree (Rng.create 9) ~vocab:30 ~height:4 () in
  try
    ignore (Linearizer.rebind_forest cached [ perfect3 1; taller ]);
    Alcotest.fail "node-count mismatch accepted"
  with Invalid_argument _ -> ()

(* ---------- delta linearization ---------- *)

let forest_equal (a : Linearizer.forest) (b : Linearizer.forest) =
  let open Linearizer in
  let la = a.lin and lb = b.lin in
  la.num_nodes = lb.num_nodes
  && la.num_leaves = lb.num_leaves
  && la.max_children = lb.max_children
  && la.leaf_begin = lb.leaf_begin
  && la.new_of_old = lb.new_of_old
  && la.old_of_new = lb.old_of_new
  && la.child = lb.child
  && la.num_children = lb.num_children
  && la.payload = lb.payload
  && la.level_of = lb.level_of
  && la.batches = lb.batches
  && la.postorder = lb.postorder
  && Array.length a.spans = Array.length b.spans
  && Array.for_all2
       (fun (x : span) (y : span) ->
         x.span_ids = y.span_ids && x.span_levels = y.span_levels)
       a.spans b.spans

let delta_of ~prev ~grown =
  let b = Structure.num_nodes prev in
  let d = Structure.num_nodes grown - b in
  {
    Linearizer.d_request = 0;
    d_roots = grown.Structure.roots;
    d_nodes = Array.sub grown.Structure.nodes b d;
  }

(* The core tentpole property: over a random grow-by-one sequence,
   [extend] must equal a cold [run_forest] of the full structure, array
   for array — same numbering, same batches, same spans — and satisfy
   every check_forest invariant. *)
let prop_extend_equals_cold =
  QCheck.Test.make ~name:"extend = cold run over grow sequences" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1) in
      let kind = if Rng.int rng 2 = 0 then Structure.Sequence else Structure.Tree in
      let g = Gen.growth_start rng ~vocab:50 ~kind () in
      let f = ref (Linearizer.run_forest [ Gen.growth_structure g ]) in
      let steps = 2 + Rng.int rng 15 in
      for _ = 1 to steps do
        let prev = Gen.growth_structure g in
        let grown = Gen.grow_one rng g in
        let ext = Linearizer.extend !f (delta_of ~prev ~grown) in
        Linearizer.check_forest ext;
        let cold = Linearizer.run_forest [ grown ] in
        if not (forest_equal ext cold) then
          QCheck.Test.fail_report "extended forest differs from cold run";
        f := ext
      done;
      true)

(* Multi-request forests: growing any request — including one that is
   not last, which exercises the re-merge fallback — must still equal
   the cold run of the whole window. *)
let prop_extend_multi_request =
  QCheck.Test.make ~name:"extend inside a batched window" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 101) in
      let r = 2 + Rng.int rng 3 in
      let gs =
        Array.init r (fun _ ->
            let g = Gen.growth_start rng ~vocab:50 ~kind:Structure.Tree () in
            for _ = 1 to Rng.int rng 4 do
              ignore (Gen.grow_one rng g)
            done;
            g)
      in
      let structures () = Array.to_list (Array.map Gen.growth_structure gs) in
      let f = ref (Linearizer.run_forest (structures ())) in
      for _ = 1 to 6 do
        let k = Rng.int rng r in
        let prev = Gen.growth_structure gs.(k) in
        let grown = Gen.grow_one rng gs.(k) in
        let dl = { (delta_of ~prev ~grown) with Linearizer.d_request = k } in
        let ext = Linearizer.extend !f dl in
        Linearizer.check_forest ext;
        let cold = Linearizer.run_forest (structures ()) in
        if not (forest_equal ext cold) then
          QCheck.Test.fail_report "extended window differs from cold run";
        f := ext
      done;
      true)

(* The session-table pricing primitive: [memory_bytes] is the closed
   form [layout_bytes] over the forest's own dimensions, and growing a
   forest never shrinks it — so the engine's accounted bytes, which
   re-price the same formula after every grow step, are monotone over
   a conversation's life. *)
let prop_memory_bytes_monotone =
  QCheck.Test.make ~name:"memory_bytes monotone under extend" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 501) in
      let kind = if Rng.int rng 2 = 0 then Structure.Sequence else Structure.Tree in
      let g = Gen.growth_start rng ~vocab:50 ~kind () in
      let f = ref (Linearizer.run_forest [ Gen.growth_structure g ]) in
      let steps = 2 + Rng.int rng 12 in
      for _ = 1 to steps do
        let lin = (!f).Linearizer.lin in
        if
          Linearizer.memory_bytes lin
          <> Linearizer.layout_bytes ~num_nodes:lin.Linearizer.num_nodes
               ~num_batches:(Array.length lin.Linearizer.batches)
               ~max_children:lin.Linearizer.max_children
        then QCheck.Test.fail_report "memory_bytes disagrees with layout_bytes";
        let prev_bytes = Linearizer.memory_bytes lin in
        let prev = Gen.growth_structure g in
        let grown = Gen.grow_one rng g in
        let ext = Linearizer.extend !f (delta_of ~prev ~grown) in
        if Linearizer.memory_bytes ext.Linearizer.lin < prev_bytes then
          QCheck.Test.fail_report "memory_bytes shrank under extend";
        f := ext
      done;
      (* And the state-row half of the session price is exactly linear. *)
      let n = (!f).Linearizer.lin.Linearizer.num_nodes in
      Linearizer.state_rows_bytes ~num_nodes:n ~bytes_per_node:48 = 48 * n)

let test_extend_rejects_bad_deltas () =
  let rng = Rng.create 77 in
  let g = Gen.growth_start rng ~vocab:50 ~kind:Structure.Tree () in
  for _ = 1 to 4 do
    ignore (Gen.grow_one rng g)
  done;
  let s = Gen.growth_structure g in
  let f = Linearizer.run_forest [ s ] in
  let reject name dl expect =
    try
      ignore (Linearizer.extend f dl);
      Alcotest.fail (name ^ " accepted")
    with Linearizer.Rejected r ->
      if not (expect r) then
        Alcotest.fail
          (Printf.sprintf "%s rejected as %s" name (Linearizer.rejection_to_string r))
  in
  reject "empty delta"
    { Linearizer.d_request = 0; d_roots = s.Structure.roots; d_nodes = [||] }
    (function Linearizer.Empty_delta -> true | _ -> false);
  (* Wrong ids: nodes from a foreign builder starting at 0. *)
  let fb = Cortex_ds.Node.builder () in
  let foreign = Cortex_ds.Node.make fb ~payload:1 [] in
  reject "foreign ids"
    { Linearizer.d_request = 0; d_roots = [ foreign ]; d_nodes = [| foreign |] }
    (function Linearizer.Bad_delta _ -> true | _ -> false);
  (* A graft whose DFS visits the new leaf first merely interleaves —
     the old nodes keep their relative order, so extend handles it
     (exercising the non-tail insertion positions). *)
  let b = Structure.num_nodes s in
  let nb = Cortex_ds.Node.builder_from b in
  let old_root = List.hd s.Structure.roots in
  let leaf = Cortex_ds.Node.make nb ~payload:3 [] in
  let top = Cortex_ds.Node.make nb ~payload:50 [ leaf; old_root ] in
  let grown = Structure.append s ~roots:[ top ] ~added:[| leaf; top |] in
  let ext =
    Linearizer.extend f
      { Linearizer.d_request = 0; d_roots = [ top ]; d_nodes = [| leaf; top |] }
  in
  Linearizer.check_forest ext;
  Alcotest.(check bool) "leaf-first graft equals cold run" true
    (forest_equal ext (Linearizer.run_forest [ grown ]));
  (* A genuine reorder: a DAG edge into the middle of the old structure
     makes the grown DFS visit old nodes in a different relative order —
     the cached numbering is unusable and extend must refuse. *)
  let db = Cortex_ds.Node.builder () in
  let l1 = Cortex_ds.Node.make db ~payload:1 [] in
  let l2 = Cortex_ds.Node.make db ~payload:2 [] in
  let droot = Cortex_ds.Node.make db ~payload:9 [ l1; l2 ] in
  let dag = Structure.create ~kind:Structure.Dag ~max_children:2 [ droot ] in
  let df = Linearizer.run_forest [ dag ] in
  let nb = Cortex_ds.Node.builder_from 3 in
  let dtop = Cortex_ds.Node.make nb ~payload:9 [ l2; droot ] in
  (try
     ignore
       (Linearizer.extend df
          { Linearizer.d_request = 0; d_roots = [ dtop ]; d_nodes = [| dtop |] });
     Alcotest.fail "reordering DAG graft accepted"
   with Linearizer.Rejected (Linearizer.Bad_delta _) -> ());
  (* Fanout beyond the model's bound (the forest was linearized with
     max_children = 2). *)
  let nb = Cortex_ds.Node.builder_from b in
  let l1 = Cortex_ds.Node.make nb ~payload:1 [] in
  let l2 = Cortex_ds.Node.make nb ~payload:2 [] in
  let wide = Cortex_ds.Node.make nb ~payload:50 [ old_root; l1; l2 ] in
  reject "fanout violation"
    { Linearizer.d_request = 0; d_roots = [ wide ]; d_nodes = [| l1; l2; wide |] }
    (function Linearizer.Fanout_exceeded _ -> true | _ -> false)

(* An extended forest is a first-class forest: it can be cached under
   the grown structures' shape key and rebound like a cold one. *)
let test_extend_then_rebind () =
  let rng = Rng.create 78 in
  let g = Gen.growth_start rng ~vocab:50 ~kind:Structure.Sequence () in
  let f = ref (Linearizer.run_forest [ Gen.growth_structure g ]) in
  for _ = 1 to 5 do
    let prev = Gen.growth_structure g in
    let grown = Gen.grow_one rng g in
    f := Linearizer.extend !f (delta_of ~prev ~grown)
  done;
  let grown = Gen.growth_structure g in
  Alcotest.(check string) "extended forest shares the cold shape key"
    (Linearizer.shape_key [ grown ])
    (Linearizer.shape_key
       [ (Array.get !f.Linearizer.spans 0).Linearizer.span_structure ]);
  (* Rebind the extended layout onto a fresh same-shape conversation. *)
  let rng2 = Rng.create 79 in
  let g2 = Gen.growth_start rng2 ~vocab:50 ~kind:Structure.Sequence () in
  for _ = 1 to 5 do
    ignore (Gen.grow_one rng2 g2)
  done;
  let fresh = Gen.growth_structure g2 in
  let rebound = Linearizer.rebind_forest !f [ fresh ] in
  Linearizer.check_forest rebound;
  let cold = Linearizer.run_forest [ fresh ] in
  Alcotest.(check bool) "rebound extended forest = cold run" true
    (forest_equal rebound cold)

(* ---------- empty structures ---------- *)

(* [Structure.create] refuses rootless structures, so a node-free
   structure is unconstructible through the public API; forge one to
   pin down the linearizer's own guard (it would otherwise emit a
   phantom (0,0) batch — one kernel launch over nothing). *)
let forged_empty_structure () : Structure.t =
  let module Forged = struct
    type forged = {
      kind : Structure.kind;
      max_children : int;
      roots : Cortex_ds.Node.t list;
      nodes : Cortex_ds.Node.t array;
    }
  end in
  Obj.magic
    { Forged.kind = Structure.Tree; max_children = 2; roots = []; nodes = [||] }

let test_rejects_empty_structure () =
  let empty = forged_empty_structure () in
  (try
     ignore (Linearizer.run empty);
     Alcotest.fail "empty structure accepted by run"
   with Linearizer.Rejected Linearizer.Empty_structure -> ());
  let rng = Rng.create 15 in
  let tree = Gen.sst_tree rng ~vocab:10 () in
  (try
     ignore (Linearizer.run_forest [ tree; empty ]);
     Alcotest.fail "empty structure accepted by run_forest"
   with Linearizer.Rejected Linearizer.Empty_structure -> ());
  Alcotest.(check string) "rejection prints" "empty structure"
    (Linearizer.rejection_to_string Linearizer.Empty_structure)

(* ---------- unrolled grouping ---------- *)

let prop_unrolling name gen =
  QCheck.Test.make ~name ~count:300 QCheck.small_int (fun seed ->
      let s = gen (Rng.create seed) in
      let lin = Linearizer.run s in
      let u = Unrolling.compute lin in
      Unrolling.check lin u;
      true)

let test_unrolling_sequence_pairs () =
  let rng = Rng.create 13 in
  let lin = Linearizer.run (Gen.sequence rng ~len:9 ()) in
  let u = Unrolling.compute lin in
  Unrolling.check lin u;
  (* A chain of 8 internal nodes groups into pairs: 4 group levels, two
     phases each (the head-only deepest group has no child phase). *)
  let internal = Array.fold_left (fun a b -> a + Array.length b) 0 u.Unrolling.batches in
  Alcotest.(check int) "all internal nodes covered" 8 internal;
  Alcotest.(check bool) "more batches than trivial" true (Array.length u.Unrolling.batches >= 4)

let test_unrolling_rejects_dags () =
  let lin = Linearizer.run (Gen.grid_dag ~rows:3 ~cols:3) in
  (try
     ignore (Unrolling.compute lin);
     Alcotest.fail "unrolling accepted a DAG"
   with Failure _ -> ())

let test_unrolling_phase_structure () =
  let rng = Rng.create 14 in
  let lin = Linearizer.run (Gen.perfect_tree rng ~height:5 ()) in
  let u = Unrolling.compute lin in
  Unrolling.check lin u;
  (* phases alternate child-then-parent within each level *)
  Array.iteri
    (fun i role ->
      match role with
      | Unrolling.Parent_phase -> ()
      | Unrolling.Child_phase ->
        if i + 1 < Array.length u.Unrolling.roles then
          Alcotest.(check bool) "child phase precedes a parent phase" true
            (u.Unrolling.roles.(i + 1) = Unrolling.Parent_phase))
    u.Unrolling.roles

let () =
  Alcotest.run "linearizer"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest (prop_check "random trees" random_tree);
          QCheck_alcotest.to_alcotest (prop_check "random DAGs" random_dag);
          QCheck_alcotest.to_alcotest (prop_check "sequences" random_seq);
          QCheck_alcotest.to_alcotest (prop_check "forests (batches)" random_forest);
          QCheck_alcotest.to_alcotest
            (prop_check "SST batches" (fun rng -> Gen.sst_batch rng ~batch:3 ()));
        ] );
      ( "structure",
        [
          Alcotest.test_case "batches-are-levels" `Quick test_batches_are_levels;
          Alcotest.test_case "leaf-check" `Quick test_leaf_check_is_single_comparison;
          Alcotest.test_case "grid-batches" `Quick test_grid_dag_batches;
          Alcotest.test_case "memory" `Quick test_memory_accounting;
          Alcotest.test_case "checker-rejects-corruption" `Quick test_check_catches_corruption;
        ] );
      ( "shape-cache",
        [
          Alcotest.test_case "shape-key" `Quick test_shape_key_is_shape_equality;
          Alcotest.test_case "rebind" `Quick test_rebind_matches_cold_run;
          Alcotest.test_case "rebind-mismatch" `Quick test_rebind_rejects_shape_mismatch;
          Alcotest.test_case "empty-structure" `Quick test_rejects_empty_structure;
        ] );
      ( "delta",
        [
          QCheck_alcotest.to_alcotest prop_extend_equals_cold;
          QCheck_alcotest.to_alcotest prop_extend_multi_request;
          QCheck_alcotest.to_alcotest prop_memory_bytes_monotone;
          Alcotest.test_case "rejects-bad-deltas" `Quick test_extend_rejects_bad_deltas;
          Alcotest.test_case "extend-then-rebind" `Quick test_extend_then_rebind;
        ] );
      ( "unrolling",
        [
          QCheck_alcotest.to_alcotest (prop_unrolling "random trees" random_tree);
          QCheck_alcotest.to_alcotest (prop_unrolling "forests" random_forest);
          QCheck_alcotest.to_alcotest (prop_unrolling "sequences" random_seq);
          Alcotest.test_case "sequence-pairs" `Quick test_unrolling_sequence_pairs;
          Alcotest.test_case "rejects-dags" `Quick test_unrolling_rejects_dags;
          Alcotest.test_case "phase-structure" `Quick test_unrolling_phase_structure;
        ] );
    ]
