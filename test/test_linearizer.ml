(* Tests for the data structure linearizer (§4.2, Appendix B) and the
   unrolled grouping of §3.1/§7.4.  [Linearizer.check] verifies every
   documented invariant (numbering permutation, children numbered higher
   than parents, contiguous batches, dependence-respecting batch order,
   single-comparison leaf check, valid postorder); the property tests
   here drive it over random structures and add targeted cases. *)

module Rng = Cortex_util.Rng
module Structure = Cortex_ds.Structure
module Gen = Cortex_ds.Gen
module Linearizer = Cortex_linearizer.Linearizer
module Unrolling = Cortex_linearizer.Unrolling

let prop_check name gen =
  QCheck.Test.make ~name ~count:300 QCheck.small_int (fun seed ->
      let s = gen (Rng.create seed) in
      let lin = Linearizer.run s in
      Linearizer.check lin;
      true)

let random_tree rng = Gen.random_tree rng ~max_nodes:40 ~max_children:3
let random_dag rng = Gen.random_dag rng ~max_nodes:40 ~max_children:3
let random_seq rng = Gen.sequence rng ~len:(1 + Rng.int rng 40) ()
let random_forest rng =
  Structure.merge (List.init (1 + Rng.int rng 5) (fun _ -> random_tree rng))

let test_batches_are_levels () =
  let rng = Rng.create 9 in
  let s = Gen.perfect_tree rng ~height:5 () in
  let lin = Linearizer.run s in
  Alcotest.(check int) "one batch per level" 5 (Array.length lin.Linearizer.batches);
  let lens = Array.map snd lin.Linearizer.batches in
  Alcotest.(check (array int)) "leaf batch first" [| 16; 8; 4; 2; 1 |] lens;
  Alcotest.(check int) "leaf partition size" 16 (snd (Linearizer.leaf_batch lin));
  Alcotest.(check int) "internal batches" 4 (Array.length (Linearizer.internal_batches lin))

let test_leaf_check_is_single_comparison () =
  let rng = Rng.create 10 in
  let s = random_forest rng in
  let lin = Linearizer.run s in
  (* Appendix B: leaves are exactly the ids >= leaf_begin. *)
  for id = 0 to lin.Linearizer.num_nodes - 1 do
    Alcotest.(check bool) "leaf check" (lin.Linearizer.num_children.(id) = 0)
      (Linearizer.is_leaf lin id)
  done

let test_grid_dag_batches () =
  let lin = Linearizer.run (Gen.grid_dag ~rows:4 ~cols:6) in
  Linearizer.check lin;
  Alcotest.(check int) "anti-diagonals" 9 (Array.length lin.Linearizer.batches);
  Alcotest.(check int) "single leaf" 1 lin.Linearizer.num_leaves

let test_memory_accounting () =
  let rng = Rng.create 11 in
  let lin = Linearizer.run (random_tree rng) in
  Alcotest.(check bool) "positive footprint" true (Linearizer.memory_bytes lin > 0)

(* A corrupted linearization must be rejected by the checker. *)
let test_check_catches_corruption () =
  let rng = Rng.create 12 in
  let lin = Linearizer.run (Gen.perfect_tree rng ~height:4 ()) in
  let swap a i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  (* Swapping two entries of the postorder breaks the children-first
     property somewhere in a perfect tree. *)
  swap lin.Linearizer.postorder 0 (lin.Linearizer.num_nodes - 1);
  (try
     Linearizer.check lin;
     Alcotest.fail "corrupted postorder accepted"
   with Failure _ -> ());
  swap lin.Linearizer.postorder 0 (lin.Linearizer.num_nodes - 1);
  Linearizer.check lin

(* ---------- shape keys and payload re-binding ---------- *)

(* Same topology, different payloads: perfect trees are deterministic
   shapes, the rng only draws leaf payloads. *)
let perfect3 seed = Gen.perfect_tree (Rng.create seed) ~vocab:30 ~height:3 ()

let test_shape_key_is_shape_equality () =
  let a = [ perfect3 1; perfect3 2 ] and b = [ perfect3 3; perfect3 4 ] in
  Alcotest.(check string) "payloads don't enter the key"
    (Linearizer.shape_key a) (Linearizer.shape_key b);
  let c = [ perfect3 1; Gen.perfect_tree (Rng.create 2) ~vocab:30 ~height:4 () ] in
  Alcotest.(check bool) "different topology, different key" false
    (Linearizer.shape_key a = Linearizer.shape_key c);
  (* Order matters: a forest's numbering depends on submission order. *)
  Alcotest.(check bool) "request order enters the key" false
    (Linearizer.shape_key c = Linearizer.shape_key (List.rev c))

let test_rebind_matches_cold_run () =
  (* Rebinding a forest to its own structures must be the identity... *)
  let cold_input = List.map (fun s -> Gen.sst_tree (Rng.create s) ~vocab:30 ()) [ 1; 2; 3 ] in
  let cached = Linearizer.run_forest cold_input in
  let rebound = Linearizer.rebind_forest cached cold_input in
  Linearizer.check_forest rebound;
  Alcotest.(check (array int)) "same numbering"
    cached.Linearizer.lin.Linearizer.new_of_old
    rebound.Linearizer.lin.Linearizer.new_of_old;
  Alcotest.(check (array int)) "same payloads"
    cached.Linearizer.lin.Linearizer.payload
    rebound.Linearizer.lin.Linearizer.payload;
  (* Different payloads, same shape: the rebound forest must equal a
     cold linearization of the new requests, array for array. *)
  let cached = Linearizer.run_forest [ perfect3 1; perfect3 2 ] in
  let fresh = [ perfect3 5; perfect3 6 ] in
  let rebound = Linearizer.rebind_forest cached fresh in
  let cold = Linearizer.run_forest fresh in
  Linearizer.check_forest rebound;
  Alcotest.(check (array int)) "numbering matches cold run"
    cold.Linearizer.lin.Linearizer.new_of_old
    rebound.Linearizer.lin.Linearizer.new_of_old;
  Alcotest.(check (array int)) "payloads match cold run"
    cold.Linearizer.lin.Linearizer.payload
    rebound.Linearizer.lin.Linearizer.payload;
  Alcotest.(check bool) "cold payload table untouched" false
    (cached.Linearizer.lin.Linearizer.payload = cold.Linearizer.lin.Linearizer.payload);
  Array.iteri
    (fun k (span : Linearizer.span) ->
      let cold_span = cold.Linearizer.spans.(k) in
      Alcotest.(check (array int)) "span ids match" cold_span.Linearizer.span_ids
        span.Linearizer.span_ids;
      Alcotest.(check bool) "span points at the new request" true
        (span.Linearizer.span_structure == List.nth fresh k))
    rebound.Linearizer.spans

let test_rebind_rejects_shape_mismatch () =
  let cached = Linearizer.run_forest [ perfect3 1; perfect3 2 ] in
  Alcotest.check_raises "request count mismatch"
    (Invalid_argument "Linearizer.rebind_forest: request count mismatch")
    (fun () -> ignore (Linearizer.rebind_forest cached [ perfect3 1 ]));
  let taller = Gen.perfect_tree (Rng.create 9) ~vocab:30 ~height:4 () in
  try
    ignore (Linearizer.rebind_forest cached [ perfect3 1; taller ]);
    Alcotest.fail "node-count mismatch accepted"
  with Invalid_argument _ -> ()

(* ---------- empty structures ---------- *)

(* [Structure.create] refuses rootless structures, so a node-free
   structure is unconstructible through the public API; forge one to
   pin down the linearizer's own guard (it would otherwise emit a
   phantom (0,0) batch — one kernel launch over nothing). *)
let forged_empty_structure () : Structure.t =
  let module Forged = struct
    type forged = {
      kind : Structure.kind;
      max_children : int;
      roots : Cortex_ds.Node.t list;
      nodes : Cortex_ds.Node.t array;
    }
  end in
  Obj.magic
    { Forged.kind = Structure.Tree; max_children = 2; roots = []; nodes = [||] }

let test_rejects_empty_structure () =
  let empty = forged_empty_structure () in
  (try
     ignore (Linearizer.run empty);
     Alcotest.fail "empty structure accepted by run"
   with Linearizer.Rejected Linearizer.Empty_structure -> ());
  let rng = Rng.create 15 in
  let tree = Gen.sst_tree rng ~vocab:10 () in
  (try
     ignore (Linearizer.run_forest [ tree; empty ]);
     Alcotest.fail "empty structure accepted by run_forest"
   with Linearizer.Rejected Linearizer.Empty_structure -> ());
  Alcotest.(check string) "rejection prints" "empty structure"
    (Linearizer.rejection_to_string Linearizer.Empty_structure)

(* ---------- unrolled grouping ---------- *)

let prop_unrolling name gen =
  QCheck.Test.make ~name ~count:300 QCheck.small_int (fun seed ->
      let s = gen (Rng.create seed) in
      let lin = Linearizer.run s in
      let u = Unrolling.compute lin in
      Unrolling.check lin u;
      true)

let test_unrolling_sequence_pairs () =
  let rng = Rng.create 13 in
  let lin = Linearizer.run (Gen.sequence rng ~len:9 ()) in
  let u = Unrolling.compute lin in
  Unrolling.check lin u;
  (* A chain of 8 internal nodes groups into pairs: 4 group levels, two
     phases each (the head-only deepest group has no child phase). *)
  let internal = Array.fold_left (fun a b -> a + Array.length b) 0 u.Unrolling.batches in
  Alcotest.(check int) "all internal nodes covered" 8 internal;
  Alcotest.(check bool) "more batches than trivial" true (Array.length u.Unrolling.batches >= 4)

let test_unrolling_rejects_dags () =
  let lin = Linearizer.run (Gen.grid_dag ~rows:3 ~cols:3) in
  (try
     ignore (Unrolling.compute lin);
     Alcotest.fail "unrolling accepted a DAG"
   with Failure _ -> ())

let test_unrolling_phase_structure () =
  let rng = Rng.create 14 in
  let lin = Linearizer.run (Gen.perfect_tree rng ~height:5 ()) in
  let u = Unrolling.compute lin in
  Unrolling.check lin u;
  (* phases alternate child-then-parent within each level *)
  Array.iteri
    (fun i role ->
      match role with
      | Unrolling.Parent_phase -> ()
      | Unrolling.Child_phase ->
        if i + 1 < Array.length u.Unrolling.roles then
          Alcotest.(check bool) "child phase precedes a parent phase" true
            (u.Unrolling.roles.(i + 1) = Unrolling.Parent_phase))
    u.Unrolling.roles

let () =
  Alcotest.run "linearizer"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest (prop_check "random trees" random_tree);
          QCheck_alcotest.to_alcotest (prop_check "random DAGs" random_dag);
          QCheck_alcotest.to_alcotest (prop_check "sequences" random_seq);
          QCheck_alcotest.to_alcotest (prop_check "forests (batches)" random_forest);
          QCheck_alcotest.to_alcotest
            (prop_check "SST batches" (fun rng -> Gen.sst_batch rng ~batch:3 ()));
        ] );
      ( "structure",
        [
          Alcotest.test_case "batches-are-levels" `Quick test_batches_are_levels;
          Alcotest.test_case "leaf-check" `Quick test_leaf_check_is_single_comparison;
          Alcotest.test_case "grid-batches" `Quick test_grid_dag_batches;
          Alcotest.test_case "memory" `Quick test_memory_accounting;
          Alcotest.test_case "checker-rejects-corruption" `Quick test_check_catches_corruption;
        ] );
      ( "shape-cache",
        [
          Alcotest.test_case "shape-key" `Quick test_shape_key_is_shape_equality;
          Alcotest.test_case "rebind" `Quick test_rebind_matches_cold_run;
          Alcotest.test_case "rebind-mismatch" `Quick test_rebind_rejects_shape_mismatch;
          Alcotest.test_case "empty-structure" `Quick test_rejects_empty_structure;
        ] );
      ( "unrolling",
        [
          QCheck_alcotest.to_alcotest (prop_unrolling "random trees" random_tree);
          QCheck_alcotest.to_alcotest (prop_unrolling "forests" random_forest);
          QCheck_alcotest.to_alcotest (prop_unrolling "sequences" random_seq);
          Alcotest.test_case "sequence-pairs" `Quick test_unrolling_sequence_pairs;
          Alcotest.test_case "rejects-dags" `Quick test_unrolling_rejects_dags;
          Alcotest.test_case "phase-structure" `Quick test_unrolling_phase_structure;
        ] );
    ]
