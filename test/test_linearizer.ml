(* Tests for the data structure linearizer (§4.2, Appendix B) and the
   unrolled grouping of §3.1/§7.4.  [Linearizer.check] verifies every
   documented invariant (numbering permutation, children numbered higher
   than parents, contiguous batches, dependence-respecting batch order,
   single-comparison leaf check, valid postorder); the property tests
   here drive it over random structures and add targeted cases. *)

module Rng = Cortex_util.Rng
module Structure = Cortex_ds.Structure
module Gen = Cortex_ds.Gen
module Linearizer = Cortex_linearizer.Linearizer
module Unrolling = Cortex_linearizer.Unrolling

let prop_check name gen =
  QCheck.Test.make ~name ~count:300 QCheck.small_int (fun seed ->
      let s = gen (Rng.create seed) in
      let lin = Linearizer.run s in
      Linearizer.check lin;
      true)

let random_tree rng = Gen.random_tree rng ~max_nodes:40 ~max_children:3
let random_dag rng = Gen.random_dag rng ~max_nodes:40 ~max_children:3
let random_seq rng = Gen.sequence rng ~len:(1 + Rng.int rng 40) ()
let random_forest rng =
  Structure.merge (List.init (1 + Rng.int rng 5) (fun _ -> random_tree rng))

let test_batches_are_levels () =
  let rng = Rng.create 9 in
  let s = Gen.perfect_tree rng ~height:5 () in
  let lin = Linearizer.run s in
  Alcotest.(check int) "one batch per level" 5 (Array.length lin.Linearizer.batches);
  let lens = Array.map snd lin.Linearizer.batches in
  Alcotest.(check (array int)) "leaf batch first" [| 16; 8; 4; 2; 1 |] lens;
  Alcotest.(check int) "leaf partition size" 16 (snd (Linearizer.leaf_batch lin));
  Alcotest.(check int) "internal batches" 4 (Array.length (Linearizer.internal_batches lin))

let test_leaf_check_is_single_comparison () =
  let rng = Rng.create 10 in
  let s = random_forest rng in
  let lin = Linearizer.run s in
  (* Appendix B: leaves are exactly the ids >= leaf_begin. *)
  for id = 0 to lin.Linearizer.num_nodes - 1 do
    Alcotest.(check bool) "leaf check" (lin.Linearizer.num_children.(id) = 0)
      (Linearizer.is_leaf lin id)
  done

let test_grid_dag_batches () =
  let lin = Linearizer.run (Gen.grid_dag ~rows:4 ~cols:6) in
  Linearizer.check lin;
  Alcotest.(check int) "anti-diagonals" 9 (Array.length lin.Linearizer.batches);
  Alcotest.(check int) "single leaf" 1 lin.Linearizer.num_leaves

let test_memory_accounting () =
  let rng = Rng.create 11 in
  let lin = Linearizer.run (random_tree rng) in
  Alcotest.(check bool) "positive footprint" true (Linearizer.memory_bytes lin > 0)

(* A corrupted linearization must be rejected by the checker. *)
let test_check_catches_corruption () =
  let rng = Rng.create 12 in
  let lin = Linearizer.run (Gen.perfect_tree rng ~height:4 ()) in
  let swap a i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  (* Swapping two entries of the postorder breaks the children-first
     property somewhere in a perfect tree. *)
  swap lin.Linearizer.postorder 0 (lin.Linearizer.num_nodes - 1);
  (try
     Linearizer.check lin;
     Alcotest.fail "corrupted postorder accepted"
   with Failure _ -> ());
  swap lin.Linearizer.postorder 0 (lin.Linearizer.num_nodes - 1);
  Linearizer.check lin

(* ---------- unrolled grouping ---------- *)

let prop_unrolling name gen =
  QCheck.Test.make ~name ~count:300 QCheck.small_int (fun seed ->
      let s = gen (Rng.create seed) in
      let lin = Linearizer.run s in
      let u = Unrolling.compute lin in
      Unrolling.check lin u;
      true)

let test_unrolling_sequence_pairs () =
  let rng = Rng.create 13 in
  let lin = Linearizer.run (Gen.sequence rng ~len:9 ()) in
  let u = Unrolling.compute lin in
  Unrolling.check lin u;
  (* A chain of 8 internal nodes groups into pairs: 4 group levels, two
     phases each (the head-only deepest group has no child phase). *)
  let internal = Array.fold_left (fun a b -> a + Array.length b) 0 u.Unrolling.batches in
  Alcotest.(check int) "all internal nodes covered" 8 internal;
  Alcotest.(check bool) "more batches than trivial" true (Array.length u.Unrolling.batches >= 4)

let test_unrolling_rejects_dags () =
  let lin = Linearizer.run (Gen.grid_dag ~rows:3 ~cols:3) in
  (try
     ignore (Unrolling.compute lin);
     Alcotest.fail "unrolling accepted a DAG"
   with Failure _ -> ())

let test_unrolling_phase_structure () =
  let rng = Rng.create 14 in
  let lin = Linearizer.run (Gen.perfect_tree rng ~height:5 ()) in
  let u = Unrolling.compute lin in
  Unrolling.check lin u;
  (* phases alternate child-then-parent within each level *)
  Array.iteri
    (fun i role ->
      match role with
      | Unrolling.Parent_phase -> ()
      | Unrolling.Child_phase ->
        if i + 1 < Array.length u.Unrolling.roles then
          Alcotest.(check bool) "child phase precedes a parent phase" true
            (u.Unrolling.roles.(i + 1) = Unrolling.Parent_phase))
    u.Unrolling.roles

let () =
  Alcotest.run "linearizer"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest (prop_check "random trees" random_tree);
          QCheck_alcotest.to_alcotest (prop_check "random DAGs" random_dag);
          QCheck_alcotest.to_alcotest (prop_check "sequences" random_seq);
          QCheck_alcotest.to_alcotest (prop_check "forests (batches)" random_forest);
          QCheck_alcotest.to_alcotest
            (prop_check "SST batches" (fun rng -> Gen.sst_batch rng ~batch:3 ()));
        ] );
      ( "structure",
        [
          Alcotest.test_case "batches-are-levels" `Quick test_batches_are_levels;
          Alcotest.test_case "leaf-check" `Quick test_leaf_check_is_single_comparison;
          Alcotest.test_case "grid-batches" `Quick test_grid_dag_batches;
          Alcotest.test_case "memory" `Quick test_memory_accounting;
          Alcotest.test_case "checker-rejects-corruption" `Quick test_check_catches_corruption;
        ] );
      ( "unrolling",
        [
          QCheck_alcotest.to_alcotest (prop_unrolling "random trees" random_tree);
          QCheck_alcotest.to_alcotest (prop_unrolling "forests" random_forest);
          QCheck_alcotest.to_alcotest (prop_unrolling "sequences" random_seq);
          Alcotest.test_case "sequence-pairs" `Quick test_unrolling_sequence_pairs;
          Alcotest.test_case "rejects-dags" `Quick test_unrolling_rejects_dags;
          Alcotest.test_case "phase-structure" `Quick test_unrolling_phase_structure;
        ] );
    ]
