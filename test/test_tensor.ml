(* Unit and property tests for cortex.tensor: shapes, dense ops and the
   paper's rational nonlinearities (§A.5). *)

module Rng = Cortex_util.Rng
module Shape = Cortex_tensor.Shape
module Tensor = Cortex_tensor.Tensor
module Nonlinear = Cortex_tensor.Nonlinear

let shape_gen =
  QCheck.Gen.(list_size (int_range 0 3) (int_range 1 6) >|= Array.of_list)

let shape_arb = QCheck.make ~print:Shape.to_string shape_gen

let test_flatten_roundtrip =
  QCheck.Test.make ~name:"flatten/unflatten roundtrip" ~count:300 shape_arb (fun shape ->
      let n = Shape.numel shape in
      let ok = ref true in
      for off = 0 to n - 1 do
        let idx = Shape.unflatten_index shape off in
        if Shape.flatten_index shape idx <> off then ok := false
      done;
      !ok)

let test_strides_row_major () =
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Shape.strides [| 2; 3; 4 |]);
  Alcotest.(check int) "numel" 24 (Shape.numel [| 2; 3; 4 |]);
  Alcotest.(check int) "scalar numel" 1 (Shape.numel [||])

let test_flatten_bounds () =
  Alcotest.check_raises "oob" (Invalid_argument "Shape.flatten_index: index 3 out of [0,3) at dim 0")
    (fun () -> ignore (Shape.flatten_index [| 3 |] [| 3 |]))

let rand_tensor rng shape = Tensor.rand_uniform rng shape ~lo:(-2.0) ~hi:2.0

let test_matmul_identity () =
  let rng = Rng.create 3 in
  let a = rand_tensor rng [| 4; 5 |] in
  let id = Tensor.init [| 5; 5 |] (fun i -> if i.(0) = i.(1) then 1.0 else 0.0) in
  Alcotest.(check bool) "a * I = a" true (Tensor.approx_equal (Tensor.matmul a id) a)

let test_matmul_assoc =
  QCheck.Test.make ~name:"(ab)c = a(bc)" ~count:50 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let a = rand_tensor rng [| 3; 4 |] in
      let b = rand_tensor rng [| 4; 2 |] in
      let c = rand_tensor rng [| 2; 5 |] in
      Tensor.approx_equal ~tol:1e-9
        (Tensor.matmul (Tensor.matmul a b) c)
        (Tensor.matmul a (Tensor.matmul b c)))

let test_matvec_is_matmul_column =
  QCheck.Test.make ~name:"matvec = matmul with column" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let a = rand_tensor rng [| 4; 6 |] in
      let x = rand_tensor rng [| 6 |] in
      let col = Tensor.reshape x [| 6; 1 |] in
      let want = Tensor.reshape (Tensor.matmul a col) [| 4 |] in
      Tensor.approx_equal (Tensor.matvec a x) want)

let test_transpose_involution =
  QCheck.Test.make ~name:"transpose twice = id" ~count:100 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let a = rand_tensor rng [| 3; 7 |] in
      Tensor.approx_equal (Tensor.transpose (Tensor.transpose a)) a)

let test_transpose_matmul =
  QCheck.Test.make ~name:"(ab)^T = b^T a^T" ~count:50 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let a = rand_tensor rng [| 3; 4 |] in
      let b = rand_tensor rng [| 4; 5 |] in
      Tensor.approx_equal ~tol:1e-9
        (Tensor.transpose (Tensor.matmul a b))
        (Tensor.matmul (Tensor.transpose b) (Tensor.transpose a)))

let test_elementwise () =
  let rng = Rng.create 5 in
  let a = rand_tensor rng [| 2; 3 |] in
  let b = rand_tensor rng [| 2; 3 |] in
  Alcotest.(check bool) "a+b-b = a" true
    (Tensor.approx_equal ~tol:1e-9 (Tensor.sub (Tensor.add a b) b) a);
  Alcotest.(check bool) "2a = a+a" true
    (Tensor.approx_equal (Tensor.scale 2.0 a) (Tensor.add a a));
  let acc = Tensor.copy a in
  Tensor.add_ acc b;
  Alcotest.(check bool) "add_ = add" true (Tensor.approx_equal acc (Tensor.add a b))

let test_concat_row () =
  let a = Tensor.init [| 2; 2 |] (fun i -> float_of_int ((i.(0) * 2) + i.(1))) in
  let b = Tensor.scale 10.0 a in
  let cat = Tensor.concat ~axis:0 a b in
  Alcotest.(check int) "rows" 4 (Tensor.dim cat 0);
  Alcotest.(check bool) "row 2 = b row 0" true (Tensor.approx_equal (Tensor.row cat 2) (Tensor.row b 0));
  let cat1 = Tensor.concat ~axis:1 a b in
  Alcotest.(check int) "cols" 4 (Tensor.dim cat1 1);
  Alcotest.(check (float 1e-9)) "cell" 20.0 (Tensor.get cat1 [| 1; 2 |])

let test_dot_sum () =
  let a = Tensor.of_array [| 3 |] [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "sum" 6.0 (Tensor.sum a);
  Alcotest.(check (float 1e-9)) "dot" 14.0 (Tensor.dot a a)

let test_shape_errors () =
  let a = Tensor.zeros [| 2; 3 |] in
  let b = Tensor.zeros [| 3; 2 |] in
  Alcotest.check_raises "map2 mismatch" (Invalid_argument "Tensor.map2: (2,3) vs (3,2)")
    (fun () -> ignore (Tensor.map2 ( +. ) a b));
  Alcotest.check_raises "matvec mismatch" (Invalid_argument "Tensor.matvec: (2,3) x (2)")
    (fun () -> ignore (Tensor.matvec a (Tensor.zeros [| 2 |])))

(* §A.5: rational approximations must be close, bounded and odd/symmetric. *)

let test_tanh_rational_error () =
  let worst = ref 0.0 in
  for i = -6000 to 6000 do
    let x = float_of_int i /. 500.0 in
    let err = Float.abs (Nonlinear.tanh_rational x -. tanh x) in
    if err > !worst then worst := err
  done;
  Alcotest.(check bool)
    (Printf.sprintf "tanh error %.2g < 3e-3" !worst)
    true (!worst < 3e-3)

let test_tanh_rational_tight_near_zero () =
  let worst = ref 0.0 in
  for i = -1500 to 1500 do
    let x = float_of_int i /. 500.0 in
    let err = Float.abs (Nonlinear.tanh_rational x -. tanh x) in
    if err > !worst then worst := err
  done;
  Alcotest.(check bool) "error < 1e-4 on [-3,3]" true (!worst < 1e-4)

let test_nonlinear_properties =
  QCheck.Test.make ~name:"tanh/sigmoid rational: bounded, odd, monotone" ~count:300
    QCheck.(float_range (-30.0) 30.0)
    (fun x ->
      let t = Nonlinear.tanh_rational x in
      let s = Nonlinear.sigmoid_rational x in
      t >= -1.0 && t <= 1.0 && s >= 0.0 && s <= 1.0
      && Float.abs (Nonlinear.tanh_rational (-.x) +. t) < 1e-12
      && Float.abs (s +. Nonlinear.sigmoid_rational (-.x) -. 1.0) < 1e-9
      && Nonlinear.tanh_rational (x +. 0.1) >= t -. 1e-12)

let test_relu () =
  Alcotest.(check (float 0.0)) "relu+" 2.5 (Nonlinear.relu 2.5);
  Alcotest.(check (float 0.0)) "relu-" 0.0 (Nonlinear.relu (-2.5));
  Alcotest.(check (float 0.0)) "apply dispatch" (Nonlinear.tanh_rational 0.3)
    (Nonlinear.apply Nonlinear.Tanh 0.3)

let () =
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "strides" `Quick test_strides_row_major;
          Alcotest.test_case "bounds" `Quick test_flatten_bounds;
          QCheck_alcotest.to_alcotest test_flatten_roundtrip;
        ] );
      ( "ops",
        [
          Alcotest.test_case "matmul-id" `Quick test_matmul_identity;
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "concat-row" `Quick test_concat_row;
          Alcotest.test_case "dot-sum" `Quick test_dot_sum;
          Alcotest.test_case "shape-errors" `Quick test_shape_errors;
          QCheck_alcotest.to_alcotest test_matmul_assoc;
          QCheck_alcotest.to_alcotest test_matvec_is_matmul_column;
          QCheck_alcotest.to_alcotest test_transpose_involution;
          QCheck_alcotest.to_alcotest test_transpose_matmul;
        ] );
      ( "nonlinear",
        [
          Alcotest.test_case "tanh-error-global" `Quick test_tanh_rational_error;
          Alcotest.test_case "tanh-error-core" `Quick test_tanh_rational_tight_near_zero;
          Alcotest.test_case "relu" `Quick test_relu;
          QCheck_alcotest.to_alcotest test_nonlinear_properties;
        ] );
    ]
