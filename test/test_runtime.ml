(* End-to-end runtime tests + the paper's qualitative claims as
   executable assertions (the shapes every table/figure must show,
   regardless of the calibration constants). *)

open Cortex
module M = Models.Common

let gpu = Backend.gpu

let sim ?(base = Lower.default) (spec : M.t) ~batch =
  let compiled = Runtime.compile ~options:(Runtime.options_for ~base spec) spec.M.program in
  let structure = spec.M.dataset (Rng.create 21) ~batch in
  Runtime.simulate compiled ~backend:gpu structure

let ms r = Runtime.total_ms r

(* ---------- runtime plumbing ---------- *)

let test_execute_and_state () =
  let spec = Models.Tree_rnn.spec ~vocab:20 ~hidden:4 () in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  let structure = spec.M.dataset (Rng.create 1) ~batch:2 in
  let params = spec.M.init_params (Rng.create 2) in
  let e = Runtime.execute compiled ~params structure in
  List.iter
    (fun root ->
      let h = Runtime.state e "h" root in
      Alcotest.(check int) "state dims" 4 (Tensor.numel h);
      (* tanh output in (-1, 1) *)
      for i = 0 to 3 do
        let v = Tensor.get h [| i |] in
        Alcotest.(check bool) "bounded" true (v > -1.0 && v < 1.0)
      done)
    structure.Structure.roots

let test_grid_search () =
  let candidates =
    [ Lower.baseline; Lower.default; { Lower.default with Lower.specialize = false } ]
  in
  let eval o = if o = Lower.default then 1.0 else 2.0 in
  let best, t = Runtime.grid_search ~candidates ~eval in
  Alcotest.(check bool) "picks min" true (best = Lower.default);
  Alcotest.(check (float 0.0)) "min value" 1.0 t

let test_schedule_check_appd () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let r = sim spec ~batch:10 in
  let verdict options =
    Runtime.Schedule_check.check ~backend:gpu ~hidden:256 ~states:2
      (Runtime.options_for ~base:options spec)
      ~cost:r.Runtime.cost
  in
  (match verdict Lower.default with
   | Runtime.Schedule_check.Valid -> ()
   | Runtime.Schedule_check.Invalid m -> Alcotest.failf "default rejected: %s" m);
  (match verdict { Lower.default with Lower.unroll = true } with
   | Runtime.Schedule_check.Invalid _ -> ()
   | Runtime.Schedule_check.Valid -> Alcotest.fail "persist+unroll accepted (App. D)")

let test_tuner () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let structure = spec.M.dataset (Rng.create 9) ~batch:4 in
  let ranked = Tuner.tune spec ~backend:gpu structure in
  Alcotest.(check bool) "several valid schedules" true (List.length ranked >= 8);
  let best = List.hd ranked in
  (* The winner must include the paper's core optimizations. *)
  Alcotest.(check bool) "best fuses" true best.Tuner.options.Lower.fuse;
  Alcotest.(check bool) "best batches" true best.Tuner.options.Lower.dynamic_batch;
  Alcotest.(check bool) "best specializes" true best.Tuner.options.Lower.specialize;
  (* Ranking is sorted. *)
  let rec sorted = function
    | a :: (b :: _ as tl) ->
      Runtime.total_ms a.Tuner.report <= Runtime.total_ms b.Tuner.report && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted ranked);
  (* App. D: no candidate combines persistence with unrolling for
     TreeLSTM at h = 256. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "no persist+unroll survivor" false
        (c.Tuner.options.Lower.persist && c.Tuner.options.Lower.unroll))
    ranked

let test_checkpoint_roundtrip () =
  let spec = Models.Tree_gru.spec ~vocab:20 ~hidden:6 () in
  let table = Checkpoint.of_spec spec ~seed:99 in
  let path = Filename.temp_file "cortex" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Checkpoint.save path table;
      let restored = Checkpoint.load path in
      Alcotest.(check int) "same count" (List.length table) (List.length restored);
      List.iter
        (fun (name, t) ->
          let t' = Checkpoint.resolver restored name in
          Alcotest.(check bool) (name ^ " identical") true (Tensor.max_abs_diff t t' = 0.0))
        table;
      (* the restored table drives inference identically *)
      let structure = spec.M.dataset (Rng.create 3) ~batch:2 in
      let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
      let run params =
        let e = Runtime.execute compiled ~params structure in
        List.map (fun r -> Runtime.state e "h" r) structure.Structure.roots
      in
      List.iter2
        (fun a b -> Alcotest.(check bool) "same inference" true (Tensor.max_abs_diff a b = 0.0))
        (run (Checkpoint.resolver table))
        (run (Checkpoint.resolver restored)));
  (* corruption detection *)
  let path2 = Filename.temp_file "cortex" ".bad" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path2)
    (fun () ->
      let oc = open_out_bin path2 in
      output_string oc "NOTACKPT";
      close_out oc;
      try
        ignore (Checkpoint.load path2);
        Alcotest.fail "corrupt checkpoint accepted"
      with Checkpoint.Corrupt _ -> ())

(* Adversarial checkpoint headers: every length field is bounded against
   the bytes actually in the file before any allocation, so a truncated
   or bit-flipped checkpoint fails fast with [Corrupt] instead of
   attempting a huge [Tensor.zeros] or running a million-iteration
   loop over a hundred-byte file.  Byte offsets: magic [0,8), tensor
   count [8,16), first tensor's name length [16,24). *)
let test_checkpoint_adversarial_headers () =
  let table = Checkpoint.of_spec (Models.Tree_gru.spec ~vocab:20 ~hidden:6 ()) ~seed:7 in
  let bytes_of_table () =
    let path = Filename.temp_file "cortex" ".ckpt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Checkpoint.save path table;
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic)))
  in
  let good = bytes_of_table () in
  let load_bytes label s =
    let path = Filename.temp_file "cortex" ".adv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc;
        try
          ignore (Checkpoint.load path);
          Alcotest.failf "%s accepted" label
        with Checkpoint.Corrupt _ -> ())
  in
  let patch_i64 s pos v =
    let b = Bytes.of_string s in
    Bytes.set_int64_le b pos (Int64.of_int v);
    Bytes.to_string b
  in
  (* truncation anywhere past the header *)
  load_bytes "half a checkpoint" (String.sub good 0 (String.length good / 2));
  load_bytes "payload cut mid-tensor" (String.sub good 0 (String.length good - 9));
  (* a bit-flipped count past the static cap *)
  load_bytes "count above the cap" (patch_i64 good 8 2_000_000);
  (* a count under the static cap but far beyond the file's bytes *)
  load_bytes "count beyond the file" (patch_i64 good 8 1_000_000);
  (* a dim under the per-extent cap whose payload exceeds the file *)
  let name_len = Int64.to_int (Bytes.get_int64_le (Bytes.of_string good) 16) in
  let first_dim_pos = 16 + 8 + name_len + 8 in
  load_bytes "extent beyond the file" (patch_i64 good first_dim_pos 10_000_000);
  (* extents that individually pass the cap but whose product overflows *)
  let overflow =
    let buf = Buffer.create 128 in
    Buffer.add_string buf (String.sub good 0 8);
    let add_i64 v =
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int v);
      Buffer.add_bytes buf b
    in
    add_i64 1 (* count *);
    add_i64 1 (* name_len *);
    Buffer.add_char buf 'a';
    add_i64 8 (* rank *);
    for _ = 1 to 8 do add_i64 100_000_000 done;
    Buffer.contents buf
  in
  load_bytes "overflowing extent product" overflow;
  (* and the pristine bytes still load *)
  let path = Filename.temp_file "cortex" ".ok" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc good;
      close_out oc;
      Alcotest.(check int) "pristine copy loads" (List.length table)
        (List.length (Checkpoint.load path)))

(* Session-state sections (the bounded session table's spill format)
   ride the same hardened [src] walk as parameter checkpoints: every
   truncation, bit-flipped length, overflowing extent or wrong-model
   payload must raise the typed [Corrupt] — never a Marshal failure,
   a huge allocation, or a silent state graft onto the wrong model. *)
let test_session_section_adversarial () =
  let spec = Models.Tree_gru.spec ~vocab:20 ~hidden:6 () in
  let table = Checkpoint.of_spec spec ~seed:9 in
  let digest = String.make 32 'a' in
  let section model =
    Checkpoint.session_to_string
      { Checkpoint.ss_model = model; ss_nodes = 7; ss_digest = digest; ss_states = table }
  in
  let good = section "TreeGRU" in
  (* The pristine section round-trips bitwise. *)
  let back = Checkpoint.session_of_string ~expect_model:"TreeGRU" good in
  Alcotest.(check string) "model round-trips" "TreeGRU" back.Checkpoint.ss_model;
  Alcotest.(check int) "nodes round-trip" 7 back.Checkpoint.ss_nodes;
  Alcotest.(check string) "digest round-trips" digest back.Checkpoint.ss_digest;
  List.iter2
    (fun (na, ta) (nb, tb) ->
      Alcotest.(check string) "state name round-trips" na nb;
      Alcotest.(check bool) "state rows round-trip bitwise" true
        (Tensor.max_abs_diff ta tb = 0.0))
    table back.Checkpoint.ss_states;
  let reject label s =
    try
      ignore (Checkpoint.session_of_string ~expect_model:"TreeGRU" s);
      Alcotest.failf "%s accepted" label
    with Checkpoint.Corrupt _ -> ()
  in
  (* A spill from another model must raise the typed mismatch — grafting
     TreeLSTM rows into a TreeGRU engine is silent corruption. *)
  reject "wrong-model payload" (section "TreeLSTM");
  (* Truncation at every byte of the session header and into the first
     tensors of the embedded table, then coarser cuts through the
     payload region. *)
  for n = 0 to min 160 (String.length good - 1) do
    reject (Printf.sprintf "truncated at byte %d" n) (String.sub good 0 n)
  done;
  let len = String.length good in
  let rec deeper n =
    if n < len then begin
      reject (Printf.sprintf "truncated at byte %d" n) (String.sub good 0 n);
      deeper (n + 997)
    end
  in
  deeper 161;
  let patch_i64 s pos v =
    let b = Bytes.of_string s in
    Bytes.set_int64_le b pos (Int64.of_int v);
    Bytes.to_string b
  in
  (* Byte offsets: magic [0,8), model len [8,16), model [16,23)
     ("TreeGRU"), nodes [23,31), digest len [31,39), digest [39,71),
     embedded table magic [71,79), tensor count [79,87). *)
  reject "model length past the cap" (patch_i64 good 8 100_000);
  reject "model length beyond the file" (patch_i64 good 8 4096);
  reject "negative node count" (patch_i64 good 23 (-1));
  reject "node count past the cap" (patch_i64 good 23 2_000_000_000);
  reject "digest length past the cap" (patch_i64 good 31 1_000_000);
  reject "state count past the cap" (patch_i64 good 79 2_000_000);
  reject "state count beyond the file" (patch_i64 good 79 1_000_000);
  (* Extents that individually pass the per-extent cap but whose
     product overflows, spliced in as the embedded table. *)
  let overflow_table =
    let buf = Buffer.create 128 in
    Buffer.add_string buf (String.sub good 0 71);
    Buffer.add_string buf "CORTEXP1";
    let add_i64 v =
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int v);
      Buffer.add_bytes buf b
    in
    add_i64 1 (* count *);
    add_i64 1 (* name_len *);
    Buffer.add_char buf 'h';
    add_i64 8 (* rank *);
    for _ = 1 to 8 do
      add_i64 100_000_000
    done;
    Buffer.contents buf
  in
  reject "overflowing state extent product" overflow_table;
  (* And file round-trips use the same parser: save/load_session. *)
  let path = Filename.temp_file "cortex" ".csx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Checkpoint.save_session path
        { Checkpoint.ss_model = "TreeGRU"; ss_nodes = 7; ss_digest = digest; ss_states = table };
      let ss = Checkpoint.load_session ~expect_model:"TreeGRU" path in
      Alcotest.(check int) "file round-trip states" (List.length table)
        (List.length ss.Checkpoint.ss_states);
      try
        ignore (Checkpoint.load_session ~expect_model:"TreeLSTM" path);
        Alcotest.fail "wrong expect_model accepted from file"
      with Checkpoint.Corrupt _ -> ())

let test_bounds_clean () =
  (* The §A.2 bounds checker proves every access of the compiled
     programs in bounds for the concrete inputs. *)
  List.iter
    (fun name ->
      let spec = Models.Catalog.get name Models.Catalog.Small in
      List.iter
        (fun options ->
          let options = Runtime.options_for ~base:options spec in
          let compiled = Runtime.compile ~options spec.M.program in
          let structure = spec.M.dataset (Rng.create 14) ~batch:2 in
          let lin = Linearizer.run structure in
          let bound = Lower.bind compiled lin in
          let violations =
            Bounds.check ~uf:bound.Lower.uf_resolver
              ~num_internal_batches:bound.Lower.num_batch_launches compiled.Lower.prog
          in
          (match violations with
           | [] -> ()
           | v :: _ ->
             Alcotest.failf "%s: %s[%s]: %s" name v.Bounds.tensor v.Bounds.index
               v.Bounds.detail);
          Alcotest.(check int) (name ^ " named dims") 0
            (List.length (Bounds.check_named_dims compiled.Lower.prog)))
        [ Lower.default; Lower.baseline; { Lower.default with Lower.specialize = false } ])
    [ "TreeRNN"; "TreeLSTM"; "TreeGRU"; "TreeFC"; "DAG-RNN" ]

let test_device_memory_positive () =
  let spec = Models.Catalog.get "TreeGRU" Models.Catalog.Small in
  let r = sim spec ~batch:10 in
  Alcotest.(check bool) "device memory accounted" true (r.Runtime.device_memory_bytes > 1.0e6)

(* ---------- the paper's qualitative claims ---------- *)

let test_cortex_beats_frameworks () =
  (* Fig. 6 / Tables 4-5: on the GPU, Cortex beats PyTorch, DyNet and
     Cavs on every evaluated model, batch 1 and 10. *)
  List.iter
    (fun name ->
      let spec = Models.Catalog.get name Models.Catalog.Small in
      List.iter
        (fun batch ->
          let structure = spec.M.dataset (Rng.create 4) ~batch in
          let lin = Linearizer.run structure in
          let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
          let cortex = ms (Runtime.simulate compiled ~backend:gpu structure) in
          List.iter
            (fun kind ->
              let fw =
                (Frameworks.run kind ~backend:gpu spec.M.program lin).Frameworks.total_us /. 1000.0
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s beats %s (bs %d): %.3f vs %.3f" name
                   (Frameworks.name kind) batch cortex fw)
                true (cortex < fw))
            [ Frameworks.Pytorch; Frameworks.Dynet; Frameworks.Cavs ])
        [ 1; 10 ])
    Models.Catalog.evaluated

let test_fig10a_progression () =
  (* Fusion then specialization then persistence: latency must not
     increase along the chain, and fusion must be a big win. *)
  List.iter
    (fun name ->
      let spec = Models.Catalog.get name Models.Catalog.Small in
      let unfused = ms (sim ~base:{ Lower.baseline with Lower.dynamic_batch = true } spec ~batch:10) in
      let fused = ms (sim ~base:{ Lower.default with Lower.specialize = false; persist = false } spec ~batch:10) in
      let specd = ms (sim ~base:{ Lower.default with Lower.persist = false } spec ~batch:10) in
      Alcotest.(check bool) (name ^ ": fusion >= 2x") true (unfused /. fused >= 2.0);
      Alcotest.(check bool) (name ^ ": specialization does not hurt") true
        (specd <= fused *. 1.05))
    Models.Catalog.evaluated

let test_specialization_dag_vs_tree () =
  (* §7.3: specialization helps TreeLSTM a lot and DAG-RNN not at all. *)
  let gain name =
    let spec = Models.Catalog.get name Models.Catalog.Small in
    let off = ms (sim ~base:{ Lower.default with Lower.specialize = false } spec ~batch:10) in
    let on = ms (sim spec ~batch:10) in
    off /. on
  in
  let tree = gain "TreeLSTM" and dag = gain "DAG-RNN" in
  Alcotest.(check bool) (Printf.sprintf "TreeLSTM gain %.2f > 1.1" tree) true (tree > 1.1);
  Alcotest.(check bool) (Printf.sprintf "DAG-RNN gain %.2f ~ 1" dag) true
    (dag < 1.08 && dag > 0.92);
  Alcotest.(check bool) "tree gains more than DAG" true (tree > dag)

let test_fig10b_unrolling () =
  let run name block_local =
    let device r = r.Runtime.latency.Backend.total_us in
    let spec = Models.Catalog.get name Models.Catalog.Small in
    let base = device (sim ~base:{ Lower.default with Lower.persist = false } spec ~batch:10) in
    let unrolled =
      device
        (sim
           ~base:{ Lower.default with Lower.unroll = true; persist = false;
                   block_local_unroll = block_local }
           spec ~batch:10)
    in
    (base, unrolled)
  in
  let lstm_base, lstm_unrolled = run "TreeLSTM" false in
  let rnn_base, rnn_unrolled = run "TreeRNN" true in
  Alcotest.(check bool) "unrolling slows TreeLSTM" true (lstm_unrolled > lstm_base);
  Alcotest.(check bool) "unrolling speeds TreeRNN" true (rnn_unrolled < rnn_base)

let test_fig10c_refactoring () =
  let gain name =
    let spec = Models.Catalog.get name Models.Catalog.Small in
    let base = ms (sim spec ~batch:10) in
    let refactored = ms (sim ~base:{ Lower.default with Lower.refactor = true } spec ~batch:10) in
    (base -. refactored) /. base
  in
  let full = gain "TreeGRU" and simple = gain "SimpleTreeGRU" in
  Alcotest.(check bool) (Printf.sprintf "TreeGRU ~ flat (%.1f%%)" (full *. 100.)) true
    (Float.abs full < 0.08);
  Alcotest.(check bool) (Printf.sprintf "SimpleTreeGRU wins (%.1f%%)" (simple *. 100.)) true
    (simple > 0.12)

let test_fig12_memory_ordering () =
  (* PyTorch < CORTEX < DyNet for every model with 1-D states. *)
  List.iter
    (fun name ->
      let spec = Models.Catalog.get name Models.Catalog.Small in
      let structure = spec.M.dataset (Rng.create 5) ~batch:10 in
      let lin = Linearizer.run structure in
      let fw kind = (Frameworks.run kind ~backend:gpu spec.M.program lin).Frameworks.memory_bytes in
      let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
      let cortex = (Runtime.simulate compiled ~backend:gpu structure).Runtime.device_memory_bytes in
      Alcotest.(check bool) (name ^ ": cortex below DyNet") true (cortex < fw Frameworks.Dynet);
      (* PyTorch keeps the least (no batching scratch, temps freed); a
         2% tolerance absorbs accounting noise on embedding-dominated
         models. *)
      Alcotest.(check bool) (name ^ ": pytorch lowest") true
        (fw Frameworks.Pytorch < cortex *. 1.02))
    [ "TreeFC"; "TreeGRU"; "TreeLSTM" ]

let test_barrier_modes () =
  (* §A.4: conservative (stock-TVM) placement never uses fewer barriers
     than the dependence-carrying placement. *)
  List.iter
    (fun name ->
      let spec = Models.Catalog.get name Models.Catalog.Small in
      let b mode =
        (sim ~base:{ Lower.default with Lower.barrier_mode = mode } spec ~batch:10)
          .Runtime.latency.Backend.barriers
      in
      Alcotest.(check bool) (name ^ ": conservative >= carrier") true
        (b Barrier.Conservative >= b Barrier.Carrier))
    [ "TreeLSTM"; "TreeRNN"; "DAG-RNN" ]

let test_grnn_comparison () =
  (* Fig. 9: the lock-free barrier makes GRNN-style code strictly
     faster; Cortex with the same barrier matches it. *)
  let spec = Models.Catalog.get "LSTM" Models.Catalog.Small in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  let structure = spec.M.dataset (Rng.create 6) ~batch:1 in
  let grnn = Runtime.simulate ~lock_free:true compiled ~backend:gpu structure in
  let cortex = Runtime.simulate compiled ~backend:gpu structure in
  Alcotest.(check bool) "lock-free faster" true (ms grnn < ms cortex);
  Alcotest.(check bool) "within 2x" true (ms cortex /. ms grnn < 2.0)

let test_linearization_overhead_share () =
  (* §7.5: linearization is a small share of end-to-end latency for tree
     models on the GPU. *)
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let r = sim spec ~batch:10 in
  let share = r.Runtime.linearize_us /. (r.Runtime.latency.Backend.total_us +. r.Runtime.linearize_us) in
  Alcotest.(check bool) (Printf.sprintf "share %.1f%% < 35%%" (share *. 100.)) true (share < 0.35)

let () =
  Alcotest.run "runtime"
    [
      ( "plumbing",
        [
          Alcotest.test_case "execute-state" `Quick test_execute_and_state;
          Alcotest.test_case "grid-search" `Quick test_grid_search;
          Alcotest.test_case "schedule-check" `Quick test_schedule_check_appd;
          Alcotest.test_case "tuner" `Quick test_tuner;
          Alcotest.test_case "checkpoint" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "checkpoint-adversarial" `Quick
            test_checkpoint_adversarial_headers;
          Alcotest.test_case "session-section-adversarial" `Quick
            test_session_section_adversarial;
          Alcotest.test_case "bounds-clean" `Quick test_bounds_clean;
          Alcotest.test_case "device-memory" `Quick test_device_memory_positive;
        ] );
      ( "paper-claims",
        [
          Alcotest.test_case "cortex-beats-frameworks" `Quick test_cortex_beats_frameworks;
          Alcotest.test_case "fig10a-progression" `Quick test_fig10a_progression;
          Alcotest.test_case "specialization-dag-vs-tree" `Quick test_specialization_dag_vs_tree;
          Alcotest.test_case "fig10b-unrolling" `Quick test_fig10b_unrolling;
          Alcotest.test_case "fig10c-refactoring" `Quick test_fig10c_refactoring;
          Alcotest.test_case "fig12-memory" `Quick test_fig12_memory_ordering;
          Alcotest.test_case "barrier-modes" `Quick test_barrier_modes;
          Alcotest.test_case "grnn" `Quick test_grnn_comparison;
          Alcotest.test_case "linearization-share" `Quick test_linearization_overhead_share;
        ] );
    ]
